(** The benchmark and reproduction harness.

    Running [dune exec bench/main.exe] does three things, in order:

    1. regenerates every table and figure of the paper's evaluation from
       the synthetic corpus (paper numbers beside measured numbers);
    2. runs the static-vs-dynamic comparison behind the paper's
       motivation (Section 2) and the ablations DESIGN.md calls out;
    3. times the pipeline with Bechamel — one [Test.make] per table
       regeneration, plus per-checker, front-end, and simulator
       micro-benchmarks.

    Pass [tables] / [sim] / [ablations] / [bench] to run one part, or
    [tableN] for a single table. *)

let corpus = lazy (Corpus.generate ())

(* ------------------------------------------------------------------ *)
(* Host context, stamped into every BENCH_*.json this binary writes    *)
(* ------------------------------------------------------------------ *)

let git_rev =
  lazy
    (try
       let ic =
         Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
       in
       let line = try String.trim (input_line ic) with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

(* opens the JSON object and writes the "host" field; the caller's
   format string continues with the measurement fields *)
let write_host_header oc =
  Printf.fprintf oc
    "{\n  \"host\": { \"cores\": %d, \"ocaml\": %S, \"git_rev\": %S },\n"
    (Domain.recommended_domain_count ())
    Sys.ocaml_version (Lazy.force git_rev)

(* ------------------------------------------------------------------ *)
(* Part 1: tables                                                      *)
(* ------------------------------------------------------------------ *)

let print_table n =
  let c = Lazy.force corpus in
  let table =
    match n with
    | 1 -> Experiments.table1 c
    | 2 -> Experiments.table2 c
    | 3 -> Experiments.table3 c
    | 4 -> Experiments.table4 c
    | 5 -> Experiments.table5 c
    | 6 -> Experiments.table6 c
    | 7 -> Experiments.table7 c
    | _ -> invalid_arg "table number"
  in
  Table.print table;
  print_newline ()

let print_all_tables () =
  print_endline
    "================ paper tables (cells are paper/measured) \
     ================";
  print_newline ();
  let c = Lazy.force corpus in
  List.iter
    (fun t ->
      Table.print t;
      print_newline ())
    (Experiments.all c)

(* ------------------------------------------------------------------ *)
(* Part 2: the Section 2 motivation and the ablations                  *)
(* ------------------------------------------------------------------ *)

let print_sim_comparison () =
  print_endline
    "================ static checking vs FlashLite-style simulation \
     ================";
  print_newline ();
  let tus = Golden.program Golden.Buggy in
  print_endline "metal checkers on the buggy golden protocol:";
  List.iter
    (fun (c : Registry.checker) ->
      List.iter
        (fun d -> Format.printf "  %a@." Diag.pp d)
        (c.Registry.run ~spec:Golden.spec tus))
    Registry.all;
  print_newline ();
  List.iter
    (fun (variant, label) ->
      Printf.printf "simulation, %s protocol (4000 transactions):\n" label;
      let r =
        Sim.run
          { Sim.default_config with Sim.transactions = 4000; variant }
      in
      Format.printf "%a@.@." Sim.pp_result r)
    [ (Golden.Clean, "clean"); (Golden.Buggy, "buggy") ]

let print_ablations () =
  print_endline "================ ablations ================";
  print_newline ();
  let c = Lazy.force corpus in
  (* (a) the lanes checker's fixed-point rule *)
  let count_lanes fixed_point =
    List.fold_left
      (fun acc (p : Corpus.protocol) ->
        acc
        + List.length
            (Lane_checker.run ~fixed_point ~spec:p.Corpus.spec p.Corpus.tus))
      0 c.Corpus.protocols
  in
  Printf.printf
    "lanes checker reports, whole corpus:\n\
    \  with the fixed-point rule (paper):    %d\n\
    \  without it (every loop+send flagged): %d\n\n"
    (count_lanes true) (count_lanes false);
  (* (b) the directory checker's NAK pruning *)
  let count_dir nak_pruning =
    List.fold_left
      (fun acc (p : Corpus.protocol) ->
        acc
        + List.length
            (Dir_entry.run ~nak_pruning ~spec:p.Corpus.spec p.Corpus.tus))
      0 c.Corpus.protocols
  in
  Printf.printf
    "directory checker reports, whole corpus:\n\
    \  with speculative-NAK pruning (paper): %d\n\
    \  without it:                           %d\n\n"
    (count_dir true) (count_dir false)

(* ------------------------------------------------------------------ *)
(* Part 2b: rarity sensitivity                                         *)
(* ------------------------------------------------------------------ *)

(* The quantitative heart of the motivation: the rarer the corner
   condition, the longer dynamic testing needs to stumble on the bug
   (and below some rate it simply never does in the budget), while the
   static checkers are oblivious to rarity. *)
let print_sensitivity () =
  print_endline
    "================ rarity vs time-to-detection (buggy protocol)      ================";
  print_newline ();
  let budget = 8000 in
  let seeds = [ 11; 23; 37; 51; 73 ] in
  Printf.printf
    "corner-path probability swept; %d-transaction budget; cells are the\n\
     mean transaction of first manifestation over %d workload seeds\n\
     (n/m = only n of m seeds ever hit it)\n\n"
    budget (List.length seeds);
  Printf.printf "  %-8s %-12s %-12s %-14s\n" "corner%" "double free"
    "fill race" "len mismatch";
  List.iter
    (fun pct ->
      let runs =
        List.map
          (fun seed ->
            Sim.run
              {
                Sim.default_config with
                Sim.transactions = budget;
                variant = Golden.Buggy;
                seed;
                corner_flag_pct = pct;
                fill_delay_pct = pct;
                queue_pressure_pct = pct;
              })
          seeds
      in
      let cell cls =
        let hits =
          List.filter_map
            (fun (r : Sim.result) ->
              List.assoc_opt cls r.Sim.first_detection)
            runs
        in
        match hits with
        | [] -> "-"
        | _ when List.length hits < List.length seeds ->
          Printf.sprintf "%d/%d" (List.length hits) (List.length seeds)
        | _ ->
          string_of_int (List.fold_left ( + ) 0 hits / List.length hits)
      in
      Printf.printf "  %-8d %-12s %-12s %-14s\n" pct (cell "double free")
        (cell "fill race") (cell "length mismatch"))
    [ 20; 10; 5; 2; 1 ];
  print_newline ();
  print_endline
    "  (the static checkers flag all three sites in one pass regardless)";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2c: the Mcd parallel/incremental scheduler                     *)
(* ------------------------------------------------------------------ *)

(* Full-corpus wall-clock comparison: the sequential engine vs the Mcd
   work pool at 1/2/4/8 domains, then a warm-cache incremental re-check
   after editing one handler.  The numbers land in BENCH_PARALLEL.json
   so future PRs can track the perf trajectory. *)

(* the wiring helpers now live in Mcheck_api, shared with the bins *)
let mcd_jobs = Mcheck_api.corpus_jobs
let render_results = Mcheck_api.render_results
let time_ms = Mcheck_api.time_ms

(* the "one handler edited" workload: append a harmless statement to the
   first handler of the first protocol *)
let edit_one_handler (c : Corpus.t) : Mcd.job list * string =
  let p = List.hd c.Corpus.protocols in
  let target =
    (List.hd p.Corpus.spec.Flash_api.p_handlers).Flash_api.h_name
  in
  let edit (tu : Ast.tunit) =
    {
      tu with
      Ast.tu_globals =
        List.map
          (function
            | Ast.Gfunc f when String.equal f.Ast.f_name target ->
              Ast.Gfunc
                {
                  f with
                  Ast.f_body =
                    f.Ast.f_body
                    @ [ Ast.mk_stmt (Ast.Sexpr (Ast.int_lit 424242)) ];
                }
            | g -> g)
          tu.Ast.tu_globals;
    }
  in
  let jobs =
    List.map
      (fun (q : Corpus.protocol) ->
        if q == p then
          { Mcd.spec = q.Corpus.spec; tus = List.map edit q.Corpus.tus }
        else { Mcd.spec = q.Corpus.spec; tus = q.Corpus.tus })
      c.Corpus.protocols
  in
  (jobs, target)

let run_parallel () =
  print_endline
    "================ Mcd parallel/incremental scheduler ================";
  print_newline ();
  let c = Lazy.force corpus in
  let jobs = mcd_jobs c in
  Printf.printf "host: %d core(s) recommended by the runtime\n\n"
    (Domain.recommended_domain_count ());
  let seq_results, seq_ms =
    time_ms (fun () ->
        List.map
          (fun (p : Corpus.protocol) ->
            Registry.run_all ~spec:p.Corpus.spec p.Corpus.tus)
          c.Corpus.protocols)
  in
  let baseline = render_results seq_results in
  Printf.printf "  %-34s %8.0f ms\n" "sequential Registry.run_all" seq_ms;
  let all_identical = ref true in
  let cold_times =
    List.map
      (fun domains ->
        let (results, _), ms =
          time_ms (fun () -> Mcd.check_jobs ~jobs:domains jobs)
        in
        let same = String.equal (render_results results) baseline in
        if not same then all_identical := false;
        Printf.printf "  mcd --jobs %-24d %8.0f ms   (%.2fx, identical=%b)\n"
          domains ms (seq_ms /. ms) same;
        (domains, ms))
      [ 1; 2; 4; 8 ]
  in
  (* incremental: cold fill, then a one-handler edit, then warm *)
  let cache = Mcd_cache.create () in
  let (_, cold_stats), cold_ms =
    time_ms (fun () -> Mcd.check_jobs ~cache ~jobs:4 jobs)
  in
  let edited_jobs, edited = edit_one_handler c in
  let (warm_results, warm_stats), warm_ms =
    time_ms (fun () -> Mcd.check_jobs ~cache ~jobs:4 edited_jobs)
  in
  let warm_expected, _ =
    time_ms (fun () ->
        List.map
          (fun (j : Mcd.job) -> Registry.run_all ~spec:j.Mcd.spec j.Mcd.tus)
          edited_jobs)
  in
  let warm_same =
    String.equal (render_results warm_results) (render_results warm_expected)
  in
  if not warm_same then all_identical := false;
  let unit_pct =
    100.0
    *. float_of_int warm_stats.Mcd.units_run
    /. float_of_int cold_stats.Mcd.units_run
  in
  let hit_rate =
    100.0
    *. float_of_int warm_stats.Mcd.cache_hits
    /. float_of_int warm_stats.Mcd.units_total
  in
  Printf.printf
    "\n\
    \  cold cache fill (4 domains):        %8.0f ms   (%d units)\n\
    \  warm re-check after editing %s:\n\
    \    %8.0f ms — %d of %d units re-run (%.1f%% of cold work), \
     %.1f%% hit rate, identical=%b\n\n"
    cold_ms cold_stats.Mcd.units_run edited warm_ms
    warm_stats.Mcd.units_run cold_stats.Mcd.units_run unit_pct hit_rate
    warm_same;
  let speedup d =
    match List.assoc_opt d cold_times with
    | Some ms -> seq_ms /. ms
    | None -> 0.0
  in
  let oc = open_out "BENCH_PARALLEL.json" in
  write_host_header oc;
  Printf.fprintf oc
    "\
    \  \"cores\": %d,\n\
    \  \"sequential_ms\": %.1f,\n\
    \  \"mcd_1_ms\": %.1f,\n\
    \  \"mcd_2_ms\": %.1f,\n\
    \  \"mcd_4_ms\": %.1f,\n\
    \  \"mcd_8_ms\": %.1f,\n\
    \  \"speedup_4\": %.3f,\n\
    \  \"warm_units_run\": %d,\n\
    \  \"cold_units_run\": %d,\n\
    \  \"warm_unit_pct\": %.2f,\n\
    \  \"warm_hit_rate_pct\": %.2f,\n\
    \  \"warm_ms\": %.1f,\n\
    \  \"diagnostics_identical\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    seq_ms
    (List.assoc 1 cold_times)
    (List.assoc 2 cold_times)
    (List.assoc 4 cold_times)
    (List.assoc 8 cold_times)
    (speedup 4) warm_stats.Mcd.units_run cold_stats.Mcd.units_run unit_pct
    hit_rate warm_ms !all_identical;
  close_out oc;
  print_endline "  wrote BENCH_PARALLEL.json"

(* ------------------------------------------------------------------ *)
(* Part 2c': the fused engine                                          *)
(* ------------------------------------------------------------------ *)

(* The headline engine benchmark: the product-automaton driver (one
   fused walk per function over the composed machines, SoA event
   streams, dirty-machine rerun) and the fused sequential driver (one
   shared Prep per function, root-indexed rule dispatch) against the
   legacy per-checker path, plus the function-batched Mcd pool swept
   per jobs out to the measured core count.  The numbers — including
   the {jobs -> ms} scaling curve and the calibrated 2-domain parallel
   capacity — land in BENCH_ENGINE.json; the full run also fails when
   2-domain scaling falls short of 60% of the capacity the host
   measurably delivers.  [--quick] is the CI smoke gate — best of two
   repetitions, and a hard failure when the product driver regresses
   past 1.10x the fused time, the 2-domain run past 1.25x (noise-
   tolerant tripwires, not precision measurements), or any pipeline's
   diagnostics differ. *)

(* the PR-1 sequential full-corpus wall time (BENCH_PARALLEL.json at the
   time), the fixed yardstick the fused engine is measured against *)
let baseline_pr1_ms = 2711.3

(* Measured parallel capacity: how much speedup [d] compute-bound OCaml
   domains actually achieve on this host, runtime included.  Containers
   routinely advertise N cores but cap the cgroup's cpu shares below
   N (this is visible as two busy loops each running at ~70%), so
   [Domain.recommended_domain_count] alone cannot justify a scaling
   assertion.  The calibration loop is pure arithmetic — no allocation,
   so no GC rendezvous — which makes it an upper bound on what any
   allocating workload could scale to. *)
let parallel_capacity ~domains =
  let iters = 60_000_000 in
  let spin () =
    let x = ref 1 in
    for i = 1 to iters do
      x := (!x * 48271) + i
    done;
    ignore (Sys.opaque_identity !x)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  let together () =
    wall (fun () ->
        let others =
          Array.init (domains - 1) (fun _ -> Domain.spawn spin)
        in
        spin ();
        Array.iter Domain.join others)
  in
  (* interleaved repetitions, minimum of each: a host-scheduler burst
     during a single solo run would otherwise report an impossible
     capacity.  The ratio of the two burst-free minima is the honest
     figure, and no host delivers more than [domains]x. *)
  let reps = 3 in
  let solo_ms = ref infinity and together_ms = ref infinity in
  for _ = 1 to reps do
    solo_ms := min !solo_ms (wall spin);
    together_ms := min !together_ms (together ())
  done;
  Float.min
    (float_of_int domains)
    (max 1.0 (float_of_int domains *. !solo_ms /. !together_ms))

let run_engine ~quick () =
  print_endline
    "================ fused engine benchmark ================";
  print_newline ();
  let c = Lazy.force corpus in
  let jobs = mcd_jobs c in
  let iters = if quick then 2 else 5 in
  (* best-of-N: every repetition computes the same results, the fastest
     one is the measurement *)
  let best f =
    let rec go i best_r best_ms =
      if i >= iters then (Option.get best_r, best_ms)
      else
        let r, ms = time_ms f in
        if ms < best_ms then go (i + 1) (Some r) ms
        else go (i + 1) best_r best_ms
    in
    go 0 None infinity
  in
  Printf.printf "host: %d core(s); best of %d run(s)\n\n"
    (Domain.recommended_domain_count ())
    iters;
  let legacy_results, legacy_ms =
    best (fun () ->
        List.map
          (fun (p : Corpus.protocol) ->
            Registry.run_all ~spec:p.Corpus.spec p.Corpus.tus)
          c.Corpus.protocols)
  in
  let baseline = render_results legacy_results in
  let all_identical = ref true in
  let check_identical results =
    let same = String.equal (render_results results) baseline in
    if not same then all_identical := false;
    same
  in
  let fused_results, fused_ms =
    best (fun () ->
        List.map
          (fun (p : Corpus.protocol) ->
            Registry.run_all_fused ~spec:p.Corpus.spec p.Corpus.tus)
          c.Corpus.protocols)
  in
  let product_results, product_ms =
    best (fun () ->
        List.map
          (fun (p : Corpus.protocol) ->
            Registry.run_all_product ~spec:p.Corpus.spec p.Corpus.tus)
          c.Corpus.protocols)
  in
  Printf.printf "  %-34s %8.1f ms\n" "legacy per-checker run_all" legacy_ms;
  Printf.printf "  %-34s %8.1f ms   (%.2fx, identical=%b)\n"
    "fused run_all_fused" fused_ms (legacy_ms /. fused_ms)
    (check_identical fused_results);
  Printf.printf "  %-34s %8.1f ms   (%.2fx, identical=%b)\n"
    "product run_all_product" product_ms
    (legacy_ms /. product_ms)
    (check_identical product_results);
  let cores = Domain.recommended_domain_count () in
  (* per-jobs scaling sweep, out to the measured core count *)
  let jobs_list = List.sort_uniq compare (1 :: 2 :: 4 :: [ min cores 8 ]) in
  (* Interleaved repetitions: the container host has multi-second
     contention bursts, so measuring one jobs count's repetitions
     back-to-back lets a single burst poison that configuration's
     best-of.  Rotating through the jobs counts each repetition spreads
     every configuration across the whole sweep window; the per-count
     minimum then comes from whichever window was quiet. *)
  let sweep_iters = if quick then 2 else 7 in
  let mcd_ms =
    let best_of =
      List.map (fun d -> (d, (ref infinity, ref []))) jobs_list
    in
    for _rep = 1 to sweep_iters do
      List.iter
        (fun d ->
          let (results, _), ms =
            time_ms (fun () -> Mcd.check_jobs ~jobs:d jobs)
          in
          let best_ms, best_res = List.assoc d best_of in
          if ms < !best_ms then begin
            best_ms := ms;
            best_res := results
          end)
        jobs_list
    done;
    List.map
      (fun d ->
        let best_ms, best_res = List.assoc d best_of in
        Printf.printf
          "  mcd --jobs %-23d %8.1f ms   (%.2fx, identical=%b)\n" d
          !best_ms (fused_ms /. !best_ms)
          (check_identical !best_res);
        (d, !best_ms))
      jobs_list
  in
  let mcd_1_ms = List.assoc 1 mcd_ms in
  let mcd_2_ms = List.assoc 2 mcd_ms in
  (* calibrate what two domains can physically deliver here *)
  let capacity_2 =
    if cores > 1 then parallel_capacity ~domains:2 else 1.0
  in
  Printf.printf
    "\n  measured 2-domain parallel capacity: %.2fx (ideal 2.00x)\n"
    capacity_2;
  Printf.printf "  scaling (cores=%d):" cores;
  List.iter
    (fun (d, ms) -> Printf.printf "  jobs=%d %.2fx" d (mcd_1_ms /. ms))
    mcd_ms;
  print_newline ();
  Printf.printf
    "\n\
    \  vs PR-1 sequential baseline (%.1f ms): %.2fx\n\
    \  product vs fused sequential:             %.2fx\n\
    \  mcd --jobs 2 vs fused sequential:        %.2fx\n\n"
    baseline_pr1_ms
    (baseline_pr1_ms /. product_ms)
    (product_ms /. fused_ms)
    (mcd_2_ms /. fused_ms);
  if not quick then begin
    let scaling =
      String.concat ", "
        (List.map
           (fun (d, ms) ->
             Printf.sprintf "{ \"jobs\": %d, \"ms\": %.1f }" d ms)
           mcd_ms)
    in
    let oc = open_out "BENCH_ENGINE.json" in
    write_host_header oc;
    Printf.fprintf oc
      "\
      \  \"cores\": %d,\n\
      \  \"baseline_pr1_ms\": %.1f,\n\
      \  \"legacy_sequential_ms\": %.1f,\n\
      \  \"fused_ms\": %.1f,\n\
      \  \"sequential_ms\": %.1f,\n\
      \  \"mcd_1_ms\": %.1f,\n\
      \  \"mcd_2_ms\": %.1f,\n\
      \  \"mcd_4_ms\": %.1f,\n\
      \  \"parallel_capacity_2\": %.3f,\n\
      \  \"scaling\": [%s],\n\
      \  \"speedup_vs_pr1\": %.3f,\n\
      \  \"speedup_vs_legacy\": %.3f,\n\
      \  \"product_vs_fused\": %.3f,\n\
      \  \"mcd_2_vs_sequential\": %.3f,\n\
      \  \"diagnostics_identical\": %b\n\
       }\n"
      cores baseline_pr1_ms legacy_ms fused_ms product_ms
      (List.assoc 1 mcd_ms) mcd_2_ms
      (List.assoc 4 mcd_ms)
      capacity_2 scaling
      (baseline_pr1_ms /. product_ms)
      (legacy_ms /. product_ms)
      (product_ms /. fused_ms)
      (mcd_2_ms /. fused_ms)
      !all_identical;
    close_out oc;
    print_endline "  wrote BENCH_ENGINE.json"
  end;
  if not !all_identical then begin
    prerr_endline "FAIL: diagnostics differ between engine pipelines";
    exit 1
  end;
  (* Near-linear scaling gate, conditioned on what the host can
     actually deliver.  When two domains really run concurrently
     (capacity >= 1.6x, i.e. a second core is genuinely usable), Mcd
     with more than one domain must buy at least 60% of that measured
     capacity.  The gate judges the *best* jobs>1 configuration:
     requested jobs are clamped to the core count, so on a 2-core host
     jobs=2 and jobs=4 exercise the identical 2-domain pool, and a host
     contention burst can make one of them slow but can never make one
     spuriously fast.  On throttled containers that advertise cores
     they cannot schedule (capacity below 1.6x) no workload can scale,
     so the gate degrades to a no-pathology tripwire: the best multi-
     domain run must not be slower than jobs=1 past noise. *)
  if not quick then begin
    let best_d, best_multi_ms =
      List.fold_left
        (fun (bd, bm) (d, ms) ->
          if d > 1 && ms < bm then (d, ms) else (bd, bm))
        (2, mcd_2_ms) mcd_ms
    in
    let mcd_speedup = mcd_1_ms /. best_multi_ms in
    if cores > 1 && capacity_2 >= 1.6 then begin
      if mcd_speedup < 0.6 *. capacity_2 then begin
        Printf.eprintf
          "FAIL: mcd scaling is sub-linear on %d cores: best multi-\
           domain run (jobs=%d) is only %.2fx over jobs=1 (%.1f ms vs \
           %.1f ms) against a measured 2-domain capacity of %.2fx \
           (expected >= %.2fx)\n"
          cores best_d mcd_speedup best_multi_ms mcd_1_ms capacity_2
          (0.6 *. capacity_2);
        exit 1
      end
    end
    else begin
      Printf.printf
        "  note: host cannot demonstrate parallel scaling (%d core(s), \
         measured 2-domain capacity %.2fx); asserting no-regression \
         only\n"
        cores capacity_2;
      if mcd_speedup < 0.75 then begin
        Printf.eprintf
          "FAIL: mcd --jobs %d is pathologically slower than --jobs 1 \
           (%.1f ms vs %.1f ms, %.2fx) on a host with no parallel \
           headroom\n"
          best_d best_multi_ms mcd_1_ms mcd_speedup;
        exit 1
      end
    end
  end;
  if quick && product_ms > 1.10 *. fused_ms then begin
    Printf.eprintf
      "FAIL: product driver (%.1f ms) regressed past 1.10x the fused \
       sequential time (%.1f ms)\n"
      product_ms fused_ms;
    exit 1
  end;
  if quick && mcd_2_ms > 1.25 *. fused_ms then begin
    Printf.eprintf
      "FAIL: mcd --jobs 2 (%.1f ms) regressed past 1.25x the fused \
       sequential time (%.1f ms)\n"
      mcd_2_ms fused_ms;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2c': the metal compiler                                        *)
(* ------------------------------------------------------------------ *)

(* The three in-tree metal specs over the full corpus, interpreted
   ([Mdsl.load], string states, per-function dispatch) against compiled
   ([Mrun.compile]: typed IR -> transition tables -> prebuilt per-state
   dispatch, int states), both through the fused multi-machine driver —
   exactly what [mcheck --metal-interp] and [mcheck --metal-compiled]
   run.  Diagnostics must be byte-identical (the O7 invariant); the
   numbers land in BENCH_METALC.json.  Full mode (best of 7,
   interleaved) fails when compiled is slower than interpreted;
   [--quick] is the CI tripwire and — like the engine bench's — is
   noise-tolerant, failing only past 1.25x. *)

let run_metalc ~quick () =
  print_endline
    "================ metal compiler benchmark ================";
  print_newline ();
  let mc =
    match Fuzz_metalc.create () with
    | Ok t -> t
    | Error e ->
      prerr_endline ("FAIL: " ^ e);
      exit 1
  in
  let names = List.map (fun (n, _, _) -> n) mc.Fuzz_metalc.specs in
  let compiled_machines = List.map (fun (_, c, _) -> c) mc.Fuzz_metalc.specs in
  let interp_machines = List.map (fun (_, _, i) -> i) mc.Fuzz_metalc.specs in
  let c = Lazy.force corpus in
  let iters = if quick then 5 else 7 in
  Printf.printf "host: %d core(s); best of %d run(s); specs: %s\n\n"
    (Domain.recommended_domain_count ())
    iters (String.concat ", " names);
  let run machines () =
    List.map
      (fun (p : Corpus.protocol) ->
        Mrun.check_program_fused machines p.Corpus.tus)
      c.Corpus.protocols
  in
  let render rss =
    String.concat "\n"
      (List.concat_map
         (fun rs -> Fuzz_oracle.render (List.combine names rs))
         rss)
  in
  (* best-of-N with the two back ends interleaved in alternating order:
     heap growth and background load drift penalize whichever side runs
     later, so a measure-all-of-A-then-all-of-B loop reads as a phantom
     regression on a busy host *)
  let interp_best = ref infinity
  and compiled_best = ref infinity
  and interp_res = ref None
  and compiled_res = ref None in
  let measure machines best res =
    let r, ms = time_ms (run machines) in
    if ms < !best then begin
      best := ms;
      res := Some r
    end
  in
  for i = 0 to iters - 1 do
    let pair =
      if i mod 2 = 0 then
        [ (interp_machines, interp_best, interp_res);
          (compiled_machines, compiled_best, compiled_res) ]
      else
        [ (compiled_machines, compiled_best, compiled_res);
          (interp_machines, interp_best, interp_res) ]
    in
    List.iter (fun (m, b, r) -> measure m b r) pair
  done;
  let interp_results = Option.get !interp_res
  and interp_ms = !interp_best
  and compiled_results = Option.get !compiled_res
  and compiled_ms = !compiled_best in
  let identical =
    String.equal (render interp_results) (render compiled_results)
  in
  (* front-end cost: parse + IR + tables + prebuild for all three specs *)
  let _, compile_ms = time_ms (fun () -> Fuzz_metalc.create ()) in
  Printf.printf "  %-38s %8.1f ms\n" "interpreted (Mdsl, per-func dispatch)"
    interp_ms;
  Printf.printf "  %-38s %8.1f ms   (%.2fx, identical=%b)\n"
    "compiled (tables, prebuilt dispatch)" compiled_ms
    (interp_ms /. compiled_ms) identical;
  Printf.printf "  %-38s %8.1f ms\n\n" "compile all specs (both back ends)"
    compile_ms;
  let oc = open_out "BENCH_METALC.json" in
  write_host_header oc;
  Printf.fprintf oc
    "\
    \  \"cores\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"specs\": [%s],\n\
    \  \"interp_ms\": %.1f,\n\
    \  \"compiled_ms\": %.1f,\n\
    \  \"compile_all_ms\": %.1f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"diagnostics_identical\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    quick
    (String.concat ", " (List.map (Printf.sprintf "%S") names))
    interp_ms compiled_ms compile_ms
    (interp_ms /. compiled_ms)
    identical;
  close_out oc;
  print_endline "  wrote BENCH_METALC.json";
  if not identical then begin
    prerr_endline
      "FAIL: compiled and interpreted metal diagnostics differ";
    exit 1
  end;
  let budget = if quick then 1.25 *. interp_ms else interp_ms in
  if compiled_ms > budget then begin
    Printf.eprintf
      "FAIL: compiled metal (%.1f ms) slower than interpreted (%.1f ms%s)\n"
      compiled_ms interp_ms
      (if quick then " + 25% tripwire margin" else "");
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2d: Mcobs tracing overhead                                     *)
(* ------------------------------------------------------------------ *)

(* The observability layer must be close to free when idle and cheap
   when live: everything is gated on one atomic load, and the per-domain
   buffers never contend.  Measure the full-corpus Mcd run with tracing
   off and on, write BENCH_OBS.json, and fail the run if live tracing
   costs more than 5%. *)

(* the engine bench's fused sequential time, scraped from
   BENCH_ENGINE.json so the obs numbers are read against the engine
   they actually ran on (the recorded baseline went stale once before,
   when the fused pre-pass landed after BENCH_OBS.json did) *)
let engine_baseline_ms () =
  match open_in "BENCH_ENGINE.json" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let text = really_input_string ic (in_channel_length ic) in
        let key = "\"sequential_ms\":" in
        let rec find i =
          if i + String.length key > String.length text then None
          else if String.sub text i (String.length key) = key then
            let j = ref (i + String.length key) in
            let start = !j in
            while
              !j < String.length text
              && (match text.[!j] with
                 | '0' .. '9' | '.' | ' ' | '-' -> true
                 | _ -> false)
            do
              incr j
            done;
            float_of_string_opt
              (String.trim (String.sub text start (!j - start)))
          else find (i + 1)
        in
        find 0)

let run_obs () =
  print_endline
    "================ Mcobs tracing overhead ================";
  print_newline ();
  let engine_ms = engine_baseline_ms () in
  (match engine_ms with
  | Some ms ->
    Printf.printf "  engine baseline (BENCH_ENGINE.json fused): %.1f ms\n" ms
  | None ->
    print_endline
      "  engine baseline: BENCH_ENGINE.json not found (run bench engine)");
  let c = Lazy.force corpus in
  let jobs = mcd_jobs c in
  let workload () = ignore (Mcd.check_jobs ~jobs:4 jobs) in
  (* warm up allocators, code paths, and the domain pool once *)
  workload ();
  (* scale repetitions so one sample is comfortably above timer noise *)
  let _, probe_ms = time_ms workload in
  let reps = max 1 (int_of_float (ceil (500.0 /. max 1.0 probe_ms))) in
  let sample enabled =
    Mcobs.set_enabled enabled;
    Mcobs.reset ();
    let _, ms =
      time_ms (fun () ->
          for _ = 1 to reps do
            workload ()
          done)
    in
    Mcobs.reset ();
    ms
  in
  (* min-of-3 on an interleaved schedule so drift hits both sides *)
  let min3 f = List.fold_left min infinity [ f (); f (); f () ] in
  let off_ms = min3 (fun () -> sample false) in
  let on_ms = min3 (fun () -> sample true) in
  Mcobs.set_enabled false;
  let overhead_pct = 100.0 *. ((on_ms /. off_ms) -. 1.0) in
  Printf.printf
    "  workload: full-corpus Mcd.check_jobs ~jobs:4, %d rep(s)/sample, \
     min of 3\n\
    \  tracing off: %8.1f ms\n\
    \  tracing on:  %8.1f ms\n\
    \  overhead:    %+8.2f %%   (budget: < 5%%)\n\n"
    reps off_ms on_ms overhead_pct;
  let oc = open_out "BENCH_OBS.json" in
  write_host_header oc;
  Printf.fprintf oc
    "\
    \  \"workload\": \"mcd_check_jobs_4_domains_full_corpus\",\n\
    \  \"engine_baseline_sequential_ms\": %s,\n\
    \  \"reps_per_sample\": %d,\n\
    \  \"tracing_off_ms\": %.1f,\n\
    \  \"tracing_on_ms\": %.1f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"budget_pct\": 5.0,\n\
    \  \"within_budget\": %b\n\
     }\n"
    (match engine_ms with
    | Some ms -> Printf.sprintf "%.1f" ms
    | None -> "null")
    reps off_ms on_ms overhead_pct (overhead_pct < 5.0);
  close_out oc;
  print_endline "  wrote BENCH_OBS.json";
  if overhead_pct >= 5.0 then begin
    Printf.eprintf "FAIL: tracing overhead %.2f%% exceeds the 5%% budget\n"
      overhead_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2d': robustness — fault campaign and clean-path overhead       *)
(* ------------------------------------------------------------------ *)

(* Two measurements: (a) the fault-injection campaign (every seeded
   fault contained, no uncaught exception, deterministic remainder), and
   (b) what the fault barrier costs a clean run — full-corpus
   [run_all_fused] with and without [~guard].  The barrier is a
   per-(checker x function) try plus a DLS read, so the budget is tight:
   < 2% on the full run ([--quick] uses a 10% noise-tolerant tripwire
   and a 100-injection campaign). *)
let run_robust ~quick () =
  print_endline
    "================ robustness: fault campaign + barrier overhead \
     ================";
  print_newline ();
  let count = if quick then 100 else 500 in
  let s = Faultinject.campaign ~count () in
  Faultinject.pp_summary Format.std_formatter s;
  print_newline ();
  let c = Lazy.force corpus in
  let iters = if quick then 3 else 9 in
  let run_corpus ~guard () =
    List.map
      (fun (p : Corpus.protocol) ->
        Registry.run_all_fused ~guard ~spec:p.Corpus.spec p.Corpus.tus)
      c.Corpus.protocols
  in
  (* Host drift (GC state, CPU contention) between runs is several times
     the barrier's cost, so neither side's absolute time is trustworthy
     at 2% resolution.  The A/B is paired instead: each round times both
     sides back-to-back in alternating order and records the
     guarded/unguarded ratio — drift within a round hits both sides and
     cancels — and the overhead is the median ratio over the rounds. *)
  let unguarded_results = run_corpus ~guard:false () in
  let guarded_results = run_corpus ~guard:true () in
  let identical =
    String.equal
      (render_results guarded_results)
      (render_results unguarded_results)
  in
  let unguarded_ms = ref infinity and guarded_ms = ref infinity in
  let side guard =
    let _, ms = time_ms (run_corpus ~guard) in
    let best = if guard then guarded_ms else unguarded_ms in
    if ms < !best then best := ms;
    ms
  in
  let ratios =
    List.init iters (fun round ->
        if round land 1 = 0 then (
          let mu = side false in
          let mg = side true in
          mg /. mu)
        else
          let mg = side true in
          let mu = side false in
          mg /. mu)
  in
  let median =
    let a = List.sort compare ratios in
    List.nth a (List.length a / 2)
  in
  let unguarded_ms = !unguarded_ms and guarded_ms = !guarded_ms in
  let overhead_pct = 100.0 *. (median -. 1.0) in
  let budget_pct = if quick then 10.0 else 2.0 in
  Printf.printf
    "  clean-path barrier overhead (full corpus, median of %d paired \
     rounds):\n\
    \    unguarded run_all_fused: %8.1f ms (best)\n\
    \    guarded   run_all_fused: %8.1f ms (best)\n\
    \    overhead:                %+8.2f %%   (budget: < %.0f%%, \
     identical=%b)\n\n"
    iters unguarded_ms guarded_ms overhead_pct budget_pct identical;
  if not quick then begin
    let oc = open_out "BENCH_ROBUST.json" in
    write_host_header oc;
    Printf.fprintf oc
      "\
      \  \"campaign\": {\n\
      \    \"seed\": %d,\n\
      \    \"injections\": %d,\n\
      \    \"failures\": %d,\n\
      \    \"wall_ms\": %.1f\n\
      \  },\n\
      \  \"barrier_overhead\": {\n\
      \    \"unguarded_ms\": %.1f,\n\
      \    \"guarded_ms\": %.1f,\n\
      \    \"overhead_pct\": %.2f,\n\
      \    \"budget_pct\": %.1f,\n\
      \    \"within_budget\": %b,\n\
      \    \"diagnostics_identical\": %b\n\
      \  }\n\
       }\n"
      s.Faultinject.seed s.Faultinject.total s.Faultinject.failed
      s.Faultinject.wall_ms unguarded_ms guarded_ms overhead_pct budget_pct
      (overhead_pct < budget_pct)
      identical;
    close_out oc;
    print_endline "  wrote BENCH_ROBUST.json"
  end;
  if s.Faultinject.failed > 0 then begin
    Printf.eprintf "FAIL: %d fault injection(s) broke a containment invariant\n"
      s.Faultinject.failed;
    exit 1
  end;
  if not identical then begin
    prerr_endline "FAIL: the fault barrier changed clean-path diagnostics";
    exit 1
  end;
  if overhead_pct >= budget_pct then begin
    Printf.eprintf "FAIL: barrier overhead %.2f%% exceeds the %.0f%% budget\n"
      overhead_pct budget_pct;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2e: the Mcfuzz differential campaign                           *)
(* ------------------------------------------------------------------ *)

(* A mid-sized seeded campaign: every program through the four
   differential oracles, every mutation kind seeded and scored.  The
   per-checker recall/precision table lands in BENCH_FUZZ.json; the
   1000-seed acceptance run is [dune exec bin/mcfuzz.exe -- --count 1000
   --mutate -o BENCH_FUZZ.json]. *)
let run_fuzz () =
  print_endline
    "================ Mcfuzz differential campaign ================";
  print_newline ();
  let t0 = Unix.gettimeofday () in
  let { Fuzz_driver.score; failures } =
    Fuzz_driver.run ~base_seed:1 ~count:300 ~mutate:true ()
  in
  List.iter
    (fun f -> Format.eprintf "FAIL %a@." Fuzz_oracle.pp_failure f)
    failures;
  print_string (Fuzz_score.table score);
  Printf.printf "  (%.1fs)\n" (Unix.gettimeofday () -. t0);
  Fuzz_score.write_json score "BENCH_FUZZ.json";
  print_endline "  wrote BENCH_FUZZ.json";
  if failures <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* Part 2f: the mcheckd serving path                                   *)
(* ------------------------------------------------------------------ *)

(* The daemon's reason to exist, measured: per-request latency (p50/p99)
   and throughput against a warm in-process daemon, versus cold-spawning
   the mcheck binary per check — the editor-traffic comparison — plus a
   drain under concurrent load that must lose zero admitted responses.
   The numbers land in BENCH_SERVE.json; the acceptance gate is a warm
   p50 at least 5x below the cold spawn p50. *)

let percentile latencies p =
  let a = Array.of_list latencies in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then nan
  else a.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float n)) - 1)))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let plain_opts =
  {
    Serve.Proto.co_checkers = [];
    co_explain = false;
    co_verbose = false;
    co_quiet = true;
    co_strict = false;
    co_trace = "";
  }

let run_serve ~quick () =
  print_endline
    "================ mcheckd serving path ================";
  print_newline ();
  Mcobs.set_verbosity Mcobs.Quiet;
  (* corpus files on disk: the same inputs a cold mcheck spawn reads *)
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcheck-serve-bench-%d" (Unix.getpid ()))
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  Corpus.write_to_dir (Lazy.force corpus) dir;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  let daemon =
    Serve.Serve_oracle.start
      ~config:
        { Mcheck_api.default_config with jobs = 2; incremental = true }
      ()
  in
  let addr = Serve.Serve_oracle.addr daemon in
  let with_client f =
    match Serve.Client.connect addr with
    | Error e -> failwith ("bench serve: " ^ Serve.Client.err_to_string e)
    | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
  in
  let check_one c file =
    match Serve.Client.check_files c plain_opts [ file ] with
    | Ok (Serve.Client.Checked _) -> ()
    | Ok (Serve.Client.Refused msg) -> failwith ("refused: " ^ msg)
    | Ok (Serve.Client.Overloaded _) -> failwith "overloaded"
    | Error e -> failwith ("transport: " ^ Serve.Client.err_to_string e)
  in
  (* warm: first pass fills the daemon's content-hash cache *)
  with_client (fun c -> List.iter (check_one c) files);
  let n_requests = if quick then 60 else 300 in
  let latencies, total_ms =
    with_client (fun c ->
        time_ms (fun () ->
            List.init n_requests (fun i ->
                let file = List.nth files (i mod List.length files) in
                snd (time_ms (fun () -> check_one c file)))))
  in
  let warm_p50 = percentile latencies 50.0 in
  let warm_p99 = percentile latencies 99.0 in
  let checks_per_sec = float n_requests /. (total_ms /. 1000.0) in
  Printf.printf
    "  warm daemon (2 domains, incremental), %d request(s) over %d \
     file(s):\n\
    \    p50 %8.2f ms   p99 %8.2f ms   %8.1f checks/sec\n\n"
    n_requests (List.length files) warm_p50 warm_p99 checks_per_sec;
  (* cold: spawn the real mcheck binary per check, same single files *)
  let mcheck_exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/mcheck.exe"
  in
  let cold_p50 =
    if not (Sys.file_exists mcheck_exe) then begin
      Printf.printf
        "  cold spawn: %s not built, skipping the comparison\n\n" mcheck_exe;
      nan
    end
    else begin
      let spawns = if quick then 5 else 15 in
      let cold =
        List.init spawns (fun i ->
            let file = List.nth files (i mod List.length files) in
            snd
              (time_ms (fun () ->
                   let code =
                     Sys.command
                       (Printf.sprintf "%s -q %s >/dev/null 2>&1"
                          (Filename.quote mcheck_exe)
                          (Filename.quote file))
                   in
                   if code > 1 then
                     failwith
                       (Printf.sprintf "cold mcheck exited %d" code))))
      in
      let p50 = percentile cold 50.0 in
      Printf.printf
        "  cold mcheck spawn, %d run(s):\n\
        \    p50 %8.2f ms   (warm daemon is %.1fx faster at p50)\n\n"
        spawns p50 (p50 /. warm_p50);
      p50
    end
  in
  (* drain under load: concurrent checks in flight when the drain lands;
     every admitted request must complete, refusals must be explicit *)
  let n_threads = 8 in
  let completed = Atomic.make 0
  and refused = Atomic.make 0
  and lost = Atomic.make 0 in
  let worker i =
    match Serve.Client.connect addr with
    | Error _ -> Atomic.incr lost
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let file = List.nth files (i mod List.length files) in
          match Serve.Client.check_files c plain_opts [ file ] with
          | Ok (Serve.Client.Checked _) -> Atomic.incr completed
          | Ok (Serve.Client.Refused _) | Ok (Serve.Client.Overloaded _) ->
            Atomic.incr refused
          | Error _ -> Atomic.incr lost)
  in
  let threads = List.init n_threads (fun i -> Thread.create worker i) in
  Thread.delay 0.002;
  (* stop is a Drain plus a join of the daemon's accept loop: admitted
     requests finish first, by construction *)
  Serve.Serve_oracle.stop daemon;
  List.iter Thread.join threads;
  let zero_loss = Atomic.get lost = 0 in
  Printf.printf
    "  drain under load: %d concurrent client(s) -> %d completed, %d \
     refused, %d lost (zero-loss=%b)\n\n"
    n_threads (Atomic.get completed) (Atomic.get refused) (Atomic.get lost)
    zero_loss;
  let speedup_p50 =
    if Float.is_nan cold_p50 then nan else cold_p50 /. warm_p50
  in
  let oc = open_out "BENCH_SERVE.json" in
  write_host_header oc;
  Printf.fprintf oc
    "\
    \  \"cores\": %d,\n\
    \  \"files\": %d,\n\
    \  \"warm_requests\": %d,\n\
    \  \"warm_p50_ms\": %.3f,\n\
    \  \"warm_p99_ms\": %.3f,\n\
    \  \"checks_per_sec\": %.1f,\n\
    \  \"cold_spawn_p50_ms\": %.3f,\n\
    \  \"speedup_p50\": %.2f,\n\
    \  \"drain_clients\": %d,\n\
    \  \"drain_completed\": %d,\n\
    \  \"drain_refused\": %d,\n\
    \  \"drain_lost\": %d,\n\
    \  \"drain_zero_loss\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    (List.length files) n_requests warm_p50 warm_p99 checks_per_sec
    cold_p50 speedup_p50 n_threads (Atomic.get completed)
    (Atomic.get refused) (Atomic.get lost) zero_loss;
  close_out oc;
  print_endline "  wrote BENCH_SERVE.json";
  rm_rf dir;
  if not zero_loss then begin
    prerr_endline "FAIL: drain under load lost admitted responses";
    exit 1
  end;
  if (not (Float.is_nan speedup_p50)) && speedup_p50 < 5.0 then begin
    Printf.eprintf
      "FAIL: warm daemon p50 only %.1fx below the cold spawn p50 \
       (acceptance: >= 5x)\n"
      speedup_p50;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2f: serving-path telemetry overhead + flight validation        *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let find_sub s sub from =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.sub s i n = sub then Some i
    else go (i + 1)
  in
  if n = 0 then Some from else go from

(* The telemetry tentpole's claim: with tracing, the live metrics
   registry, the access log, and the flight recorder all on, the warm
   request p50 moves by less than 3% (~40 us at the recorded 1.4 ms
   p50).  Interleaved A/B between two in-process daemons — telemetry
   off and fully on — min-of-3 p50 per side; then one injected slow
   request is validated end-to-end in the flight recorder (its full
   server -> session -> Mcd span tree under the client-minted trace
   id), and the access log is checked for exactly one line per check
   request. *)
let run_serve_obs ~quick () =
  print_endline
    "================ mcheckd telemetry overhead ================";
  print_newline ();
  Mcobs.set_verbosity Mcobs.Quiet;
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcheck-serve-obs-%d" (Unix.getpid ()))
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  Corpus.write_to_dir (Lazy.force corpus) dir;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  let access_path = Filename.concat dir "access.jsonl" in
  let api_config =
    { Mcheck_api.default_config with jobs = 2; incremental = true }
  in
  let daemon_off =
    Serve.Serve_oracle.start ~config:api_config
      ~telemetry:
        { Serve.Server.default_telemetry with Serve.Server.tel_tracing = false }
      ()
  in
  let daemon_on =
    Serve.Serve_oracle.start ~config:api_config
      ~telemetry:
        {
          Serve.Server.tel_tracing = true;
          tel_access_log = Some access_path;
          tel_sample = 1;
          tel_flight_capacity = 64;
          (* low threshold: the injected slow request must be retained
             as notable, not merely recent *)
          tel_flight_threshold_ms = 5.0;
          tel_metrics_addr = None;
        }
      ()
  in
  let with_client addr f =
    match Serve.Client.connect addr with
    | Error e ->
      failwith ("bench serve-obs: " ^ Serve.Client.err_to_string e)
    | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
  in
  let checks_sent_on = ref 0 in
  let check_one addr_is_on c file =
    if addr_is_on then incr checks_sent_on;
    match Serve.Client.check_files c plain_opts [ file ] with
    | Ok (Serve.Client.Checked _) -> ()
    | Ok (Serve.Client.Refused msg) -> failwith ("refused: " ^ msg)
    | Ok (Serve.Client.Overloaded _) -> failwith "overloaded"
    | Error e -> failwith ("transport: " ^ Serve.Client.err_to_string e)
  in
  let addr_off = Serve.Serve_oracle.addr daemon_off in
  let addr_on = Serve.Serve_oracle.addr daemon_on in
  (* warm both caches so every measured request is the hot path *)
  with_client addr_off (fun c -> List.iter (check_one false c) files);
  with_client addr_on (fun c -> List.iter (check_one true c) files);
  let n_requests = if quick then 60 else 300 in
  let rounds = 3 in
  (* Paired per-request A/B: each iteration times one request against
     each daemon back-to-back (alternating which side goes first), with
     span recording toggled around the instrumented side only — the off
     side is the daemon as it was before the telemetry layer.  The
     overhead estimate is the median of the per-pair differences: on a
     shared host, independent p50s drift by several percent between
     batches (more than the effect being measured), while a pair runs
     within a few ms of itself, so drift cancels inside each pair. *)
  let sample_round off_all on_all diff_all =
    with_client addr_off (fun c_off ->
        with_client addr_on (fun c_on ->
            for i = 0 to n_requests - 1 do
              let file = List.nth files (i mod List.length files) in
              let time_off () =
                Mcobs.set_enabled false;
                snd (time_ms (fun () -> check_one false c_off file))
              in
              let time_on () =
                Mcobs.set_enabled true;
                snd (time_ms (fun () -> check_one true c_on file))
              in
              let off_ms, on_ms =
                if i land 1 = 0 then begin
                  let o = time_off () in
                  let n = time_on () in
                  (o, n)
                end
                else begin
                  let n = time_on () in
                  let o = time_off () in
                  (o, n)
                end
              in
              off_all := off_ms :: !off_all;
              on_all := on_ms :: !on_all;
              diff_all := (on_ms -. off_ms) :: !diff_all
            done))
  in
  let off_all = ref [] and on_all = ref [] and diff_all = ref [] in
  for _ = 1 to rounds do
    sample_round off_all on_all diff_all
  done;
  let off_p50 = percentile !off_all 50.0 in
  let on_p50 = percentile !on_all 50.0 in
  let diff_p50 = percentile !diff_all 50.0 in
  let overhead_pct = 100.0 *. (diff_p50 /. off_p50) in
  Printf.printf
    "  warm request latency, %d paired A/B request(s):\n\
    \    telemetry off p50:   %8.3f ms\n\
    \    telemetry on p50:    %8.3f ms   (tracing + metrics + access log \
     + flight)\n\
    \    paired diff p50:     %+8.3f ms\n\
    \    overhead:            %+8.2f %%   (budget: < 3%%)\n\n"
    (rounds * n_requests) off_p50 on_p50 diff_p50 overhead_pct;
  (* flight validation: a fresh (uncached) many-handler buffer is slow
     enough to cross the 5 ms notable threshold; its span tree must
     come back under the client-minted trace id on the same
     connection *)
  Mcobs.set_enabled true;
  let trace = Mctel.Trace.mint () in
  let slow_src =
    String.concat "\n"
      (List.init 40 (fun i ->
           Printf.sprintf
             "void slow_h%d(void) { int a; int b; a = 0; b = a; if (b) { \
              a = 1; } }"
             i))
  in
  let flight_tree_ok, metrics_ok =
    with_client addr_on (fun c ->
        (match
           Serve.Client.check_buffer c
             { plain_opts with Serve.Proto.co_trace = trace }
             ~name:"slow.c" ~contents:slow_src
         with
        | Ok (Serve.Client.Checked _) -> ()
        | Ok (Serve.Client.Refused msg) -> failwith ("refused: " ^ msg)
        | Ok (Serve.Client.Overloaded _) -> failwith "overloaded"
        | Error e -> failwith ("transport: " ^ Serve.Client.err_to_string e));
        let dump =
          match Serve.Client.flight c with
          | Ok d -> d
          | Error e -> failwith ("flight: " ^ Serve.Client.err_to_string e)
        in
        let tree_ok =
          match find_sub dump trace 0 with
          | None -> false
          | Some i ->
            let stop =
              match find_sub dump "{\"trace\":" (i + String.length trace) with
              | Some j -> j
              | None -> String.length dump
            in
            let entry = String.sub dump i (stop - i) in
            contains_sub entry "serve.request"
            && contains_sub entry "api.check_buffer"
            && contains_sub entry "mcd.schedule"
        in
        let metrics_ok =
          match Serve.Client.metrics c Serve.Proto.M_prom with
          | Ok text ->
            contains_sub text "mcheckd_request_ms_bucket"
            && contains_sub text "mcheckd_inflight"
            && contains_sub text "mcheck_unit_cache_hits_total"
          | Error _ -> false
        in
        (tree_ok, metrics_ok))
  in
  Printf.printf
    "  flight recorder: injected slow request's span tree under its \
     trace id: %s\n"
    (if flight_tree_ok then "ok" else "MISSING");
  Printf.printf "  metrics exposition over the wire: %s\n"
    (if metrics_ok then "ok" else "MISSING SERIES");
  Serve.Serve_oracle.stop daemon_off;
  Serve.Serve_oracle.stop daemon_on;
  Mcobs.set_enabled false;
  (* one access-log line per check request; the writer thread drains
     its queue at daemon shutdown, so the file is complete once the
     daemons have stopped *)
  let access_text =
    let ic = open_in access_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let count_lines sub =
    List.length
      (List.filter
         (fun l -> contains_sub l sub)
         (String.split_on_char '\n' access_text))
  in
  let files_lines = count_lines "\"kind\":\"check_files\"" in
  let buffer_lines = count_lines "\"kind\":\"check_buffer\"" in
  let access_ok = files_lines = !checks_sent_on && buffer_lines = 1 in
  Printf.printf
    "  access log: %d check_files line(s) for %d request(s), %d \
     check_buffer line(s) for 1 (%s)\n\n"
    files_lines !checks_sent_on buffer_lines
    (if access_ok then "ok" else "MISMATCH");
  let budget = 3.0 in
  let within = overhead_pct < budget in
  let oc = open_out "BENCH_SERVE_OBS.json" in
  write_host_header oc;
  Printf.fprintf oc
    "\
    \  \"cores\": %d,\n\
    \  \"paired_requests\": %d,\n\
    \  \"telemetry_off_p50_ms\": %.3f,\n\
    \  \"telemetry_on_p50_ms\": %.3f,\n\
    \  \"paired_diff_p50_ms\": %.4f,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"budget_pct\": %.1f,\n\
    \  \"within_budget\": %b,\n\
    \  \"flight_tree_ok\": %b,\n\
    \  \"metrics_exposition_ok\": %b,\n\
    \  \"access_log_check_files_lines\": %d,\n\
    \  \"access_log_expected\": %d,\n\
    \  \"access_log_ok\": %b\n\
     }\n"
    (Domain.recommended_domain_count ())
    (rounds * n_requests) off_p50 on_p50 diff_p50 overhead_pct budget within
    flight_tree_ok
    metrics_ok files_lines !checks_sent_on access_ok;
  close_out oc;
  print_endline "  wrote BENCH_SERVE_OBS.json";
  rm_rf dir;
  if not (flight_tree_ok && metrics_ok && access_ok) then begin
    prerr_endline "FAIL: telemetry validation (flight/metrics/access log)";
    exit 1
  end;
  (* --quick keeps a loose tripwire: 60-request p50s on a busy host are
     too noisy for the real 3% gate *)
  let gate = if quick then 15.0 else budget in
  if overhead_pct >= gate then begin
    Printf.eprintf
      "FAIL: telemetry overhead %.2f%% exceeds the %.0f%% gate\n"
      overhead_pct gate;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 2c: chaos campaign + supervised-dispatch overhead              *)
(* ------------------------------------------------------------------ *)

(* The service-tier robustness run: the full chaos campaign (worker
   kills mid-request, OOM/stack/CPU bombs, worker death, slowloris,
   garbage frames, cache-directory corruption under concurrent
   writers, overload bursts) gated on zero failed injections, zero
   daemon deaths, and zero lost in-flight requests at the drain
   finale; then a paired A/B of the warm request path against an
   in-process daemon and a supervised one — the supervision layer
   must cost under 10% p50 on the warm path.  Lands in
   BENCH_CHAOS.json. *)
let run_chaos ~quick () =
  print_endline
    "================ service-tier chaos ================";
  print_newline ();
  Mcobs.set_verbosity Mcobs.Quiet;
  let s = Chaos.campaign ~quick () in
  Chaos.pp_summary Format.std_formatter s;
  print_newline ();
  (* paired A/B: the same warm corpus-file stream, request latencies
     interleaved so host noise hits both sides equally *)
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcheck-chaos-bench-%d" (Unix.getpid ()))
    in
    rm_rf d;
    Unix.mkdir d 0o755;
    d
  in
  Corpus.write_to_dir (Lazy.force corpus) dir;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".c")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  let daemon_in = Serve.Serve_oracle.start () in
  let daemon_sup = Serve.Serve_oracle.start ~supervised:true () in
  let connect addr =
    match Serve.Client.connect addr with
    | Error e -> failwith ("bench chaos: " ^ Serve.Client.err_to_string e)
    | Ok c -> c
  in
  (* the measured request is batch-shaped — a client submits its file
     set in one request, which is how the service is actually driven;
     the fixed dispatch cost must disappear into the batch *)
  let check_one c files =
    match Serve.Client.check_files c plain_opts files with
    | Ok (Serve.Client.Checked _) -> ()
    | Ok (Serve.Client.Refused msg) -> failwith ("refused: " ^ msg)
    | Ok (Serve.Client.Overloaded _) -> failwith "overloaded"
    | Error e -> failwith ("transport: " ^ Serve.Client.err_to_string e)
  in
  let c_in = connect (Serve.Serve_oracle.addr daemon_in) in
  let c_sup = connect (Serve.Serve_oracle.addr daemon_sup) in
  let in_p50, sup_p50 =
    Fun.protect
      ~finally:(fun () ->
        Serve.Client.close c_in;
        Serve.Client.close c_sup;
        Serve.Serve_oracle.stop daemon_in;
        Serve.Serve_oracle.stop daemon_sup;
        rm_rf dir)
      (fun () ->
        (* warm both daemons (and the supervised workers\' own caches) *)
        check_one c_in files;
        check_one c_sup files;
        check_one c_sup files;
        Mctel.Metrics.reset_all ();
        let n = if quick then 30 else 120 in
        let lat_in = ref [] and lat_sup = ref [] in
        for _ = 1 to n do
          lat_in := snd (time_ms (fun () -> check_one c_in files)) :: !lat_in;
          lat_sup := snd (time_ms (fun () -> check_one c_sup files)) :: !lat_sup
        done;
        (percentile !lat_in 50.0, percentile !lat_sup 50.0))
  in
  let ratio = sup_p50 /. in_p50 in
  let ratio_gate = if quick then 1.5 else 1.10 in
  let ratio_ok = ratio <= ratio_gate in
  let count_floor = if quick then 0 else 300 in
  let count_ok = s.Chaos.total >= count_floor in
  Printf.printf
    "  warm-path dispatch: in-process p50 %.3f ms, supervised p50 %.3f \
     ms (%.2fx, gate %.2fx)\n"
    in_p50 sup_p50 ratio ratio_gate;
  Printf.printf "  campaign gates: %s (%d injection(s), floor %d)\n\n"
    (if Chaos.gates_ok s then "ok" else "FAILED")
    s.Chaos.total count_floor;
  let oc = open_out "BENCH_CHAOS.json" in
  write_host_header oc;
  Printf.fprintf oc "  \"campaign\": %s,\n"
    (String.trim (Chaos.summary_to_json s));
  Printf.fprintf oc
    "\
    \  \"supervised_overhead\": {\n\
    \    \"paired_requests\": %d,\n\
    \    \"inproc_p50_ms\": %.3f,\n\
    \    \"supervised_p50_ms\": %.3f,\n\
    \    \"ratio\": %.3f,\n\
    \    \"gate_ratio\": %.2f,\n\
    \    \"gate_ok\": %b\n\
    \  },\n"
    (if quick then 30 else 120)
    in_p50 sup_p50 ratio ratio_gate ratio_ok;
  Printf.fprintf oc "  \"injection_floor\": %d,\n" count_floor;
  Printf.fprintf oc "  \"gates_ok\": %b\n}\n"
    (Chaos.gates_ok s && ratio_ok && count_ok);
  close_out oc;
  print_endline "  wrote BENCH_CHAOS.json";
  if not (Chaos.gates_ok s) then begin
    prerr_endline
      "FAIL: chaos campaign (failed injections, daemon death, or lost \
       in-flight)";
    exit 1
  end;
  if not count_ok then begin
    Printf.eprintf "FAIL: %d injection(s) under the %d floor\n"
      s.Chaos.total count_floor;
    exit 1
  end;
  if not ratio_ok then begin
    Printf.eprintf
      "FAIL: supervised dispatch %.2fx over in-process exceeds the %.2fx \
       gate\n"
      ratio ratio_gate;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel timings                                            *)
(* ------------------------------------------------------------------ *)

let bitvector () = Option.get (Corpus.find (Lazy.force corpus) "bitvector")

let bench_tests () =
  let open Bechamel in
  let c = Lazy.force corpus in
  let bv = bitvector () in
  let bv_sources = List.map snd bv.Corpus.files in
  let table_tests =
    List.map
      (fun (name, f) -> Test.make ~name (Staged.stage (fun () -> ignore (f c))))
      [
        ("table1 (size metrics)", Experiments.table1);
        ("table2 (buffer race)", Experiments.table2);
        ("table3 (msg length)", Experiments.table3);
        ("table4 (buffer mgmt)", Experiments.table4);
        ("table5 (exec restrict)", Experiments.table5);
        ("table6 (three checks)", Experiments.table6);
        ("table7 (summary)", Experiments.table7);
      ]
  in
  let checker_tests =
    List.map
      (fun (ck : Registry.checker) ->
        Test.make
          ~name:("checker " ^ ck.Registry.name ^ " on bitvector")
          (Staged.stage (fun () ->
               ignore (ck.Registry.run ~spec:bv.Corpus.spec bv.Corpus.tus))))
      Registry.all
  in
  let infra_tests =
    [
      Test.make ~name:"parse bitvector sources"
        (Staged.stage (fun () ->
             List.iter
               (fun src ->
                 ignore (Parser.parse_string ~file:"bench.c" src))
               bv_sources));
      Test.make ~name:"cfg+paths for bitvector"
        (Staged.stage (fun () ->
             List.iter
               (fun tu ->
                 List.iter
                   (fun f -> ignore (Paths.analyze (Cfg.build f)))
                   (Ast.functions tu))
               bv.Corpus.tus));
      Test.make ~name:"corpus generation (all six protocols)"
        (Staged.stage (fun () -> ignore (Corpus.generate ())));
      Test.make ~name:"simulator, 200 transactions (clean)"
        (Staged.stage (fun () ->
             ignore
               (Sim.run
                  { Sim.default_config with Sim.transactions = 200 })));
      Test.make ~name:"metal DSL compile (Figure 2)"
        (Staged.stage (fun () ->
             ignore
               (Mdsl.load
                  "sm w { decl { scalar } a, b; start: { \
                   WAIT_FOR_DB_FULL(a); } ==> stop | { MISCBUS_READ_DB(a, \
                   b); } ==> { err(\"x\"); } ; }")));
      Test.make ~name:"auto-fix bitvector (hooks+races+leaks)"
        (Staged.stage (fun () ->
             ignore (Fixer.fix_all ~spec:bv.Corpus.spec bv.Corpus.tus)));
      Test.make ~name:"optimizer over bitvector"
        (Staged.stage (fun () -> ignore (Optimizer.optimize bv.Corpus.tus)));
    ]
  in
  Test.make_grouped ~name:"metal-flash"
    (table_tests @ checker_tests @ infra_tests)

let run_bench () =
  print_endline "================ Bechamel timings ================";
  print_newline ();
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (bench_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      let value, unit_ =
        if ns > 1e9 then (ns /. 1e9, "s")
        else if ns > 1e6 then (ns /. 1e6, "ms")
        else if ns > 1e3 then (ns /. 1e3, "us")
        else (ns, "ns")
      in
      Printf.printf "  %-45s %10.2f %s/run\n" name value unit_)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  Serve.Worker.exit_if_worker ();
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
    print_all_tables ();
    print_sim_comparison ();
    print_sensitivity ();
    print_ablations ();
    run_bench ()
  | [ "tables" ] -> print_all_tables ()
  | [ "sim" ] -> print_sim_comparison ()
  | [ "sensitivity" ] -> print_sensitivity ()
  | [ "ablations" ] -> print_ablations ()
  | [ "parallel" ] -> run_parallel ()
  | [ "engine" ] -> run_engine ~quick:false ()
  | [ "engine"; "--quick" ] -> run_engine ~quick:true ()
  | [ "metalc" ] -> run_metalc ~quick:false ()
  | [ "metalc"; "--quick" ] -> run_metalc ~quick:true ()
  | [ "obs" ] -> run_obs ()
  | [ "robust" ] -> run_robust ~quick:false ()
  | [ "robust"; "--quick" ] -> run_robust ~quick:true ()
  | [ "fuzz" ] -> run_fuzz ()
  | [ "serve" ] -> run_serve ~quick:false ()
  | [ "serve"; "--quick" ] -> run_serve ~quick:true ()
  | [ "serve-obs" ] -> run_serve_obs ~quick:false ()
  | [ "serve-obs"; "--quick" ] -> run_serve_obs ~quick:true ()
  | [ "chaos" ] -> run_chaos ~quick:false ()
  | [ "chaos"; "--quick" ] -> run_chaos ~quick:true ()
  | [ "bench" ] -> run_bench ()
  | [ arg ]
    when String.length arg = 6 && String.sub arg 0 5 = "table"
         && arg.[5] >= '1' && arg.[5] <= '7' ->
    print_table (Char.code arg.[5] - Char.code '0')
  | _ ->
    prerr_endline
      "usage: main.exe [tables | table1..table7 | sim | sensitivity | \
       ablations | parallel | engine [--quick] | metalc [--quick] | obs | \
       robust [--quick] | fuzz | serve [--quick] | serve-obs [--quick] | \
       chaos [--quick] | bench]";
    exit 2
