(** The mcheckd wire protocol: length-prefixed binary frames.

    Frame layout (network byte order throughout):

    {v
    +------+------+------+------+------+------+----------+-----------+
    | 'M'  | 'C'  | 'H'  | 'K'  |  version   | payload length (u32)  |
    +------+------+------+------+------+------+----------+-----------+
    | tag (u8) | tag-specific body ...                               |
    +---------------------------------------------------------------+
    v}

    — the 4-byte big-endian length-header idiom (the exact framing
    discipline our own [msg_length] checker polices on FLASH sends: the
    header's length claim and the payload the peer reads must agree).

    Decoding is total and strict: any magic/version mismatch, oversized
    length, truncated frame, unknown tag, out-of-bounds string, or
    trailing garbage yields [Error _] — never an exception, never a
    hang, and [decode (encode m) = Ok m] for every message. *)

val magic : string  (** ["MCHK"] *)

val version : int
(** [2] — v2 added the trace id to {!check_opts}, the {!Stats} format
    byte, and the {!Metrics}/{!Flight} requests.  Version mismatches
    are rejected at the frame layer; there is no cross-version
    negotiation (client and daemon ship together). *)

val header_len : int  (** bytes before the payload: 4 + 2 + 4 *)

val max_payload : int
(** frames claiming more than this many payload bytes are rejected
    before any allocation ([16 MiB]) *)

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

type check_opts = {
  co_checkers : string list;  (** report only these ([] = all) *)
  co_explain : bool;
  co_verbose : bool;
  co_quiet : bool;
  co_strict : bool;
  co_trace : string;
      (** client-minted request trace id ([""] = none; the daemon mints
          one).  Arbitrary bytes round-trip on the wire; the daemon
          sanitizes before use ({!Mctel.Trace.sanitize}). *)
}

val default_opts : check_opts

type stats_format = S_text | S_json
type metrics_format = M_prom  (** Prometheus text exposition *) | M_json

type request =
  | Check_files of check_opts * string list
      (** check server-side paths (daemon and client share a
          filesystem) *)
  | Check_buffer of check_opts * string * string
      (** [(opts, name, contents)] — check an in-memory buffer *)
  | Stats of stats_format
      (** one {!R_text} frame of daemon/session statistics *)
  | Metrics of metrics_format
      (** one {!R_text} frame of the live metrics registry *)
  | Flight
      (** one {!R_text} frame: the flight recorder's JSON dump *)
  | Drain
      (** finish in-flight requests, refuse new ones, shut down *)
  | Reload
      (** finish in-flight requests, then rebuild the session (re-read
          metal specs, fresh or re-loaded cache) *)
  | Ping

type diag_frame = {
  d_checker : string;
  d_severity : string;
  d_internal : bool;  (** containment-layer, not a protocol finding *)
  d_text : string;
      (** the rendered diagnostic, byte-identical to local [mcheck]
          output for the request's render options *)
}

type response =
  | R_diag of diag_frame  (** streamed, one per diagnostic *)
  | R_done of { rd_exit : int; rd_findings : int; rd_diags : int }
      (** terminates a check: the {!Robust} exit code, the non-internal
          finding count, and how many [R_diag] frames preceded *)
  | R_text of string  (** stats / info payload *)
  | R_ok
  | R_error of string
      (** the per-request fault barrier: the request failed inside the
          daemon, the daemon survives, the client applies exit-code-2
          (partial) semantics *)
  | R_overloaded of { ro_retry_after_ms : int }
      (** admission control shed the request before any work (or any
          output) happened; retry after the hinted delay — never sent
          after an [R_diag], so a client that sees it knows nothing
          partial was written *)

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_request : Format.formatter -> request -> unit

(* ------------------------------------------------------------------ *)
(* Payload codec                                                       *)
(* ------------------------------------------------------------------ *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

val frame : string -> string
(** wrap a payload in the magic/version/length header *)

val write_frame : Unix.file_descr -> string -> unit
(** write one framed payload, handling short writes
    @raise Unix.Unix_error on transport failure *)

val read_frame : Unix.file_descr -> (string, string) result
(** read exactly one frame; [Error _] on EOF, bad magic/version, a
    length over {!max_payload}, or truncation.  Blocks only as long as
    the descriptor does (honours [SO_RCVTIMEO]). *)

val split_frame :
  Bytes.t -> int -> int -> [ `Frame of string * int | `Need | `Bad of string ]
(** [split_frame buf off len] parses one frame from the byte window
    [buf.\[off .. off+len)]: [`Frame (payload, consumed)] on success,
    [`Need] when the window holds only a frame prefix, [`Bad _] on the
    same malformations {!read_frame} rejects.  The incremental face of
    the codec — a reader can drain a burst of frames from one bulk
    [read] instead of paying two syscalls per frame. *)

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

type addr =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["HOST:PORT"], or a bare socket path (anything
    without a colon — a TCP host alone is never a valid address) *)

val addr_to_string : addr -> string
