(** The mcheckd client library: one connection, synchronous
    request/response with streamed diagnostics.

    [mcheck --server ADDR] and the serve bench are thin wrappers over
    this; the printed bytes come straight from the daemon's
    {!Proto.diag_frame.d_text} fields, which the daemon renders with the
    same code the local CLI uses — that is what makes daemon and CLI
    output byte-identical. *)

type t

val connect : Proto.addr -> (t, string) result
val close : t -> unit

type check_result = {
  cr_exit : int;  (** the {!Robust} exit code computed server-side *)
  cr_findings : int;
  cr_diags : Proto.diag_frame list;  (** in arrival (= print) order *)
}

type check_outcome =
  | Checked of check_result
  | Refused of string
      (** the daemon's fault barrier answered [R_error]: exit-code-2
          (partial) semantics *)

val check_files :
  ?on_diag:(Proto.diag_frame -> unit) ->
  t ->
  Proto.check_opts ->
  string list ->
  (check_outcome, string) result
(** [on_diag] fires per streamed frame, before the result returns —
    the latency-hiding hook interactive callers print from *)

val check_buffer :
  ?on_diag:(Proto.diag_frame -> unit) ->
  t ->
  Proto.check_opts ->
  name:string ->
  contents:string ->
  (check_outcome, string) result

val stats : t -> (string, string) result
val stats_json : t -> (string, string) result

val metrics : t -> Proto.metrics_format -> (string, string) result
(** the daemon's live metrics registry, Prometheus text or JSON *)

val flight : t -> (string, string) result
(** the flight recorder's JSON dump; because the daemon commits a
    request's flight entry before reading the connection's next frame,
    a fetch on the same connection always sees the requests it just
    ran *)

val ping : t -> (unit, string) result

val drain : t -> (unit, string) result
(** ask the daemon to finish in-flight work and shut down *)

val reload : t -> (unit, string) result

val request : t -> Proto.request -> (Proto.response, string) result
(** escape hatch: send one raw request, read one raw response frame
    (protocol tests drive malformed traffic through this) *)
