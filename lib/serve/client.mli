(** The mcheckd client library: one connection, synchronous
    request/response with streamed diagnostics.

    [mcheck --server ADDR] and the serve bench are thin wrappers over
    this; the printed bytes come straight from the daemon's
    {!Proto.diag_frame.d_text} fields, which the daemon renders with the
    same code the local CLI uses — that is what makes daemon and CLI
    output byte-identical.

    Failures are typed ({!err}): a refused connection (daemon down) is
    distinct from a timeout (daemon wedged), a mid-stream transport
    break, and a protocol violation — retry policy hangs off that
    distinction.  {!with_retry} adds the service-client loop: exponential
    backoff with jitter, a Retry-After floor for {!Overloaded} sheds,
    and a per-endpoint circuit breaker that stops hammering a dead
    daemon. *)

type error_kind =
  | E_refused  (** connection refused / socket absent: daemon not there *)
  | E_timeout  (** connect or read deadline expired: daemon unreachable
                   or wedged *)
  | E_transport  (** established channel broke: EOF mid-stream, EPIPE,
                     reset *)
  | E_proto  (** the daemon answered, but with malformed or
                 out-of-contract frames *)

type err = { e_kind : error_kind; e_msg : string }

val err_to_string : err -> string

type t

val connect :
  ?connect_timeout:float -> ?read_timeout:float -> Proto.addr ->
  (t, err) result
(** non-blocking connect bounded by [connect_timeout] (default 10s);
    every later read is bounded by [read_timeout] (default 60s, via
    [SO_RCVTIMEO]).  A dead daemon is [E_refused], an unresponsive one
    [E_timeout]. *)

val close : t -> unit

type check_result = {
  cr_exit : int;  (** the {!Robust} exit code computed server-side *)
  cr_findings : int;
  cr_diags : Proto.diag_frame list;  (** in arrival (= print) order *)
}

type check_outcome =
  | Checked of check_result
  | Refused of string
      (** the daemon's fault barrier answered [R_error]: exit-code-2
          (partial) semantics *)
  | Overloaded of int
      (** admission control shed the request; retry after this many ms.
          Guaranteed to arrive before any diagnostic frame — an
          [Overloaded] result means nothing partial was written. *)

val check_files :
  ?on_diag:(Proto.diag_frame -> unit) ->
  t ->
  Proto.check_opts ->
  string list ->
  (check_outcome, err) result
(** [on_diag] fires per streamed frame, before the result returns —
    the latency-hiding hook interactive callers print from *)

val check_buffer :
  ?on_diag:(Proto.diag_frame -> unit) ->
  t ->
  Proto.check_opts ->
  name:string ->
  contents:string ->
  (check_outcome, err) result

val stats : t -> (string, err) result
val stats_json : t -> (string, err) result

val metrics : t -> Proto.metrics_format -> (string, err) result
(** the daemon's live metrics registry, Prometheus text or JSON *)

val flight : t -> (string, err) result
(** the flight recorder's JSON dump; because the daemon commits a
    request's flight entry before reading the connection's next frame,
    a fetch on the same connection always sees the requests it just
    ran *)

val ping : t -> (unit, err) result

val drain : t -> (unit, err) result
(** ask the daemon to finish in-flight work and shut down *)

val reload : t -> (unit, err) result

val request : t -> Proto.request -> (Proto.response, err) result
(** escape hatch: send one raw request, read one raw response frame
    (protocol tests drive malformed traffic through this) *)

(** {1 Retry, backoff, and the circuit breaker} *)

val with_retry :
  ?attempts:int ->
  ?base_backoff_ms:int ->
  ?connect_timeout:float ->
  ?read_timeout:float ->
  ?classify:('a -> int option) ->
  Proto.addr ->
  (t -> ('a, err) result) ->
  ('a, err) result
(** run [f] over a fresh connection, retrying transport-level failures
    (refused / timeout / transport — never [E_proto]) up to [attempts]
    times (default 4) with exponential backoff from [base_backoff_ms]
    (default 50) plus jitter.  [classify] may mark a *successful*
    result as retry-worthy and supply a minimum delay — the
    [Overloaded] Retry-After hook:
    [~classify:(function Overloaded ms -> Some ms | _ -> None)].

    Every attempt first consults the per-endpoint circuit breaker:
    after [threshold] consecutive failures the endpoint is open and
    calls fail fast ([E_refused]) for the cooldown, then a half-open
    probe decides.  Shed results ([classify = Some _]) count as breaker
    successes — an overloaded daemon is alive. *)

val set_breaker : ?threshold:int -> ?cooldown_ms:int -> unit -> unit
(** tune the breaker (process-wide; tests shrink the cooldown).
    Defaults: threshold 5, cooldown 2000ms. *)

val breaker_state : Proto.addr -> [ `Closed | `Open ]
val breaker_reset : unit -> unit
(** forget all breaker state (test isolation) *)
