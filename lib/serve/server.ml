(* The mcheckd daemon core.  One accept loop, one thread per
   connection, one shared warm session; the session itself is not
   thread-safe, so a mutex serializes check execution — concurrent
   clients multiplex onto the one Mcd pool rather than spawning rival
   pools.  All daemon state transitions (drain, reload, counters) go
   through [t.mu]. *)

type config = {
  addr : Proto.addr;
  api : Mcheck_api.config;
  metal_paths : string list;
  idle_timeout : float;
}

let default_config =
  {
    addr = Proto.Unix_sock "mcheckd.sock";
    api = { Mcheck_api.default_config with incremental = true };
    metal_paths = [];
    idle_timeout = 10.0;
  }

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  mu : Mutex.t;  (* flags and counters *)
  cond : Condition.t;  (* signalled when conns/inflight drop *)
  session_mu : Mutex.t;  (* serializes session use (checks, reload) *)
  mutable session : Mcheck_api.Session.t;
  mutable is_draining : bool;
  mutable conns : int;
  mutable requests : int;
  mutable refused : int;
  mutable errors : int;
  mutable inflight_n : int;
  started : float;
}

(* ------------------------------------------------------------------ *)
(* Session construction                                                *)
(* ------------------------------------------------------------------ *)

let build_session cfg =
  match Mcheck_api.load_metal cfg.metal_paths with
  | Error _ as e -> e
  | Ok metal ->
    let api = { cfg.api with Mcheck_api.metal } in
    Ok (Mcheck_api.Session.create ~config:api ())

let create cfg =
  match build_session cfg with
  | Error _ as e -> e
  | Ok session -> (
    let sock_of = function
      | Proto.Unix_sock path ->
        if Sys.file_exists path then (try Unix.unlink path with _ -> ());
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind s (Unix.ADDR_UNIX path);
        s
      | Proto.Tcp (host, port) ->
        let ip =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_of_string host
        in
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (ip, port));
        s
    in
    match sock_of cfg.addr with
    | exception e ->
      Mcheck_api.Session.close session;
      Error
        (Printf.sprintf "cannot listen on %s: %s"
           (Proto.addr_to_string cfg.addr)
           (Printexc.to_string e))
    | lsock ->
      Unix.listen lsock 64;
      Ok
        {
          cfg;
          lsock;
          mu = Mutex.create ();
          cond = Condition.create ();
          session_mu = Mutex.create ();
          session;
          is_draining = false;
          conns = 0;
          requests = 0;
          refused = 0;
          errors = 0;
          inflight_n = 0;
          started = Unix.gettimeofday ();
        })

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let initiate_drain t =
  locked t.mu (fun () ->
      t.is_draining <- true;
      Condition.broadcast t.cond)

let draining t = locked t.mu (fun () -> t.is_draining)
let inflight t = locked t.mu (fun () -> t.inflight_n)

let stats_text t =
  let s = Mcheck_api.Session.stats t.session in
  locked t.mu (fun () ->
      Format.asprintf
        "mcheckd %s: up %.1f s, %d conn(s), %d request(s) served, %d \
         refused, %d error(s), %d in flight%s@.session: %a@."
        (Proto.addr_to_string t.cfg.addr)
        (Unix.gettimeofday () -. t.started)
        t.conns t.requests t.refused t.errors t.inflight_n
        (if t.is_draining then " (draining)" else "")
        Mcheck_api.Session.pp_stats s)

let warm t =
  Mcobs.with_span "serve.warm" (fun () ->
      let corpus = Corpus.generate () in
      locked t.session_mu (fun () ->
          List.iter
            (fun (j : Mcd.job) ->
              ignore
                (Mcheck_api.Session.check_units t.session ~spec:j.Mcd.spec
                   j.Mcd.tus))
            (Mcheck_api.corpus_jobs corpus)))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let send fd resp = Proto.write_frame fd (Proto.encode_response resp)

(* admission: a check admitted before the drain flag flips always runs
   to completion — the drain-under-load zero-loss guarantee *)
let admit t =
  locked t.mu (fun () ->
      if t.is_draining then false
      else begin
        t.inflight_n <- t.inflight_n + 1;
        t.requests <- t.requests + 1;
        true
      end)

let finish_inflight t =
  locked t.mu (fun () ->
      t.inflight_n <- t.inflight_n - 1;
      Condition.broadcast t.cond)

let render_opts (o : Proto.check_opts) =
  {
    Mcheck_api.ro_explain = o.Proto.co_explain;
    ro_verbose = o.Proto.co_verbose;
    ro_quiet = o.Proto.co_quiet;
  }

let run_check t fd (opts : Proto.check_opts) work =
  if not (admit t) then begin
    locked t.mu (fun () -> t.refused <- t.refused + 1);
    send fd (Proto.R_error "draining: request refused")
  end
  else
    Fun.protect
      ~finally:(fun () -> finish_inflight t)
      (fun () ->
        match
          Mcobs.with_span "serve.check" (fun () ->
              locked t.session_mu (fun () -> work t.session))
        with
        | (report : Mcheck_api.report) ->
          Mcobs.count "serve.check.ok";
          let ropts = render_opts opts in
          let diags = Mcheck_api.report_diags report in
          List.iter
            (fun (d : Diag.t) ->
              send fd
                (Proto.R_diag
                   {
                     Proto.d_checker = d.Diag.checker;
                     d_severity = Diag.severity_string d.Diag.severity;
                     d_internal = Robust.is_internal d;
                     d_text = Mcheck_api.render_diag ropts d;
                   }))
            diags;
          send fd
            (Proto.R_done
               {
                 rd_exit = Robust.exit_code report.Mcheck_api.r_outcome;
                 rd_findings = report.Mcheck_api.r_findings;
                 rd_diags = List.length diags;
               })
        | exception Mcheck_api.Robust_exit outcome ->
          (* strict-mode input failure: the daemon printed the reason on
             its stderr, the wire carries the exit code *)
          send fd
            (Proto.R_done
               {
                 rd_exit = Robust.exit_code outcome;
                 rd_findings = 0;
                 rd_diags = 0;
               })
        | exception exn ->
          (* the per-request fault barrier: a poisoned request degrades
             to an error frame, never kills the daemon *)
          locked t.mu (fun () -> t.errors <- t.errors + 1);
          Mcobs.count "serve.check.fault";
          send fd (Proto.R_error (Engine.describe_fault exn)))

(* the per-request strictness knob is reserved on the wire; the daemon
   applies its configured parse mode (see Proto.check_opts docs) *)
let handle_request t fd = function
  | Proto.Ping -> send fd Proto.R_ok
  | Proto.Stats -> send fd (Proto.R_text (stats_text t))
  | Proto.Drain ->
    Mcobs.count "serve.drain";
    initiate_drain t;
    send fd Proto.R_ok
  | Proto.Reload -> (
    Mcobs.count "serve.reload";
    match build_session t.cfg with
    | Error msg ->
      locked t.mu (fun () -> t.errors <- t.errors + 1);
      send fd (Proto.R_error ("reload failed: " ^ msg))
    | Ok fresh ->
      (* waits for in-flight checks (they hold session_mu), then swaps *)
      locked t.session_mu (fun () ->
          let old = t.session in
          t.session <- fresh;
          Mcheck_api.Session.close old);
      send fd Proto.R_ok)
  | Proto.Check_files (opts, paths) ->
    (* the request's -c selection overrides the session's, per call, so
       findings counts and exit codes match a local run with the same
       flags *)
    run_check t fd opts (fun session ->
        Mcheck_api.Session.check_files ~checkers:opts.Proto.co_checkers
          session paths)
  | Proto.Check_buffer (opts, name, contents) ->
    run_check t fd opts (fun session ->
        Mcheck_api.Session.check_buffer ~checkers:opts.Proto.co_checkers
          session ~name ~contents)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let handle_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout
   with _ -> ());
  let rec loop () =
    match Proto.read_frame fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* idle past the timeout: reap the connection (clients
         reconnect cheaply); unconditional so a drain never waits on a
         silent peer *)
      ()
    | exception Unix.Unix_error _ -> ()
    | Error "eof" -> ()
    | Error msg ->
      (* framing is broken; answer once and hang up *)
      (try send fd (Proto.R_error ("protocol error: " ^ msg)) with _ -> ());
      locked t.mu (fun () -> t.errors <- t.errors + 1)
    | Ok payload -> (
      match Proto.decode_request payload with
      | Error msg ->
        (try send fd (Proto.R_error ("protocol error: " ^ msg))
         with _ -> ());
        locked t.mu (fun () -> t.errors <- t.errors + 1)
      | Ok req -> (
        Mcobs.count "serve.request";
        match handle_request t fd req with
        | () -> loop ()
        | exception Unix.Unix_error _ ->
          (* client went away mid-reply *)
          ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      locked t.mu (fun () ->
          t.conns <- t.conns - 1;
          Condition.broadcast t.cond))
    loop

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  Mcobs.logf Mcobs.Normal "mcheckd: listening on %s"
    (Proto.addr_to_string t.cfg.addr);
  let rec loop () =
    let finished =
      locked t.mu (fun () ->
          t.is_draining && t.conns = 0 && t.inflight_n = 0)
    in
    if not finished then begin
      (match Unix.select [ t.lsock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.lsock with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | fd, _ ->
          if locked t.mu (fun () -> t.is_draining) then (
            (* refuse politely rather than leaving the peer hanging *)
            (try send fd (Proto.R_error "draining: connection refused")
             with _ -> ());
            try Unix.close fd with _ -> ())
          else begin
            locked t.mu (fun () -> t.conns <- t.conns + 1);
            ignore (Thread.create (fun () -> handle_conn t fd) ())
          end)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.lsock with _ -> ());
  (match t.cfg.addr with
  | Proto.Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Proto.Tcp _ -> ());
  locked t.session_mu (fun () -> Mcheck_api.Session.close t.session);
  Mcobs.logf Mcobs.Normal "mcheckd: drained, %d request(s) served"
    t.requests
