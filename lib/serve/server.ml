(* The mcheckd daemon core.  One accept loop, one thread per
   connection, one shared warm session; the session itself is not
   thread-safe, so a mutex serializes check execution — concurrent
   clients multiplex onto the one Mcd pool rather than spawning rival
   pools.  All daemon state transitions (drain, reload, counters) go
   through [t.mu].

   Telemetry rides every request: a trace id (client-minted or ours)
   is installed as the ambient Mcobs context for the duration of the
   check, the request's spans are harvested into the flight recorder,
   latency/byte/outcome metrics feed the always-on Mctel registry, and
   one JSONL access-log line is written per request. *)

type telemetry = {
  tel_tracing : bool;
  tel_access_log : string option;
  tel_sample : int;
  tel_flight_capacity : int;
  tel_flight_threshold_ms : float;
  tel_metrics_addr : Proto.addr option;
}

let default_telemetry =
  {
    tel_tracing = true;
    tel_access_log = None;
    tel_sample = 1;
    tel_flight_capacity = 64;
    tel_flight_threshold_ms = 250.;
    tel_metrics_addr = None;
  }

type supervise = {
  sv_workers : int;
  sv_mem_mb : int option;
  sv_cpu_s : int option;
  sv_wall_ms : float option;
  sv_cache_dir : string option;
  sv_allow_chaos : bool;
}

let default_supervise =
  {
    sv_workers = 2;
    sv_mem_mb = Some 1024;
    sv_cpu_s = Some 30;
    sv_wall_ms = Some 30_000.;
    sv_cache_dir = None;
    sv_allow_chaos = false;
  }

type config = {
  addr : Proto.addr;
  api : Mcheck_api.config;
  metal_paths : string list;
  idle_timeout : float;
  telemetry : telemetry;
  supervise : supervise option;
  max_inflight : int;
}

let default_config =
  {
    addr = Proto.Unix_sock "mcheckd.sock";
    api = { Mcheck_api.default_config with incremental = true };
    metal_paths = [];
    idle_timeout = 10.0;
    telemetry = default_telemetry;
    supervise = None;
    max_inflight = 64;
  }

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  msock : Unix.file_descr option;  (* metrics exposition listener *)
  access : Mctel.Accesslog.t;
  flight : Mctel.Flight.t;
  mu : Mutex.t;  (* flags and counters *)
  cond : Condition.t;  (* signalled when conns/inflight drop *)
  session_mu : Mutex.t;  (* serializes session use (checks, reload) *)
  mutable session : Mcheck_api.Session.t;
  sup : Mcsup.t option;  (* the worker pool, in supervised mode *)
  mutable is_draining : bool;
  mutable conns : int;
  mutable requests : int;
  mutable refused : int;
  mutable errors : int;
  mutable inflight_n : int;
  started : float;
}

(* ------------------------------------------------------------------ *)
(* Live metrics                                                        *)
(* ------------------------------------------------------------------ *)

(* module-level registration: the series exist (at zero) in any binary
   linking the server, so exposition-presence checks never race the
   first request *)
let m_requests =
  Mctel.Metrics.counter ~help:"requests admitted" "mcheckd_requests_total"

let m_refused =
  Mctel.Metrics.counter ~help:"requests refused while draining"
    "mcheckd_refused_total"

let m_faults =
  Mctel.Metrics.counter ~help:"requests ended by the fault barrier"
    "mcheckd_faults_total"

let m_proto_errors =
  Mctel.Metrics.counter ~help:"malformed frames and requests"
    "mcheckd_protocol_errors_total"

let m_bytes_in =
  Mctel.Metrics.counter ~help:"request bytes read (frames incl. headers)"
    "mcheckd_bytes_in_total"

let m_bytes_out =
  Mctel.Metrics.counter ~help:"response bytes written (frames incl. headers)"
    "mcheckd_bytes_out_total"

let m_inflight =
  Mctel.Metrics.gauge ~help:"admitted check requests not yet answered"
    "mcheckd_inflight"

let m_queue =
  Mctel.Metrics.gauge ~help:"admitted requests waiting for the session"
    "mcheckd_queue_depth"

let m_conns = Mctel.Metrics.gauge ~help:"open connections" "mcheckd_connections"
let m_draining = Mctel.Metrics.gauge ~help:"1 while draining" "mcheckd_draining"

let m_flight_notable =
  Mctel.Metrics.counter ~help:"flight-recorder entries retained as notable"
    "mcheckd_flight_notable_total"

let m_req_ms =
  Mctel.Metrics.hist ~help:"request wall time (all request kinds), ms"
    "mcheckd_request_ms"

let m_shed =
  Mctel.Metrics.counter ~help:"requests shed by admission control"
    "mcheckd_shed_total"

let m_client_aborts =
  Mctel.Metrics.counter
    ~help:"response writes that found the client gone (EPIPE/ECONNRESET)"
    "mcheckd_client_aborts_total"

(* ------------------------------------------------------------------ *)
(* Session construction                                                *)
(* ------------------------------------------------------------------ *)

let build_session cfg =
  match Mcheck_api.load_metal cfg.metal_paths with
  | Error _ as e -> e
  | Ok metal ->
    let api = { cfg.api with Mcheck_api.metal } in
    Ok (Mcheck_api.Session.create ~config:api ())

(* listeners are close-on-exec: spawned workers must not inherit them
   (an inherited listener keeps the port bound past the daemon's own
   death) *)
let sock_of = function
  | Proto.Unix_sock path ->
    if Sys.file_exists path then (try Unix.unlink path with _ -> ());
    let s = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    s
  | Proto.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (ip, port));
    s

(* what each fresh worker process needs to rebuild the server's session
   on its side of the exec: paths and scalars only, no closures *)
let wconfig_of cfg sv =
  {
    Worker.wc_jobs = cfg.api.Mcheck_api.jobs;
    wc_incremental = cfg.api.Mcheck_api.incremental;
    wc_strict = cfg.api.Mcheck_api.strict;
    wc_fuel = cfg.api.Mcheck_api.budget.Engine.fuel;
    wc_deadline_ms = cfg.api.Mcheck_api.budget.Engine.deadline_ms;
    wc_checkers = cfg.api.Mcheck_api.checkers;
    wc_metal_paths = cfg.metal_paths;
    wc_cache_dir = sv.sv_cache_dir;
    wc_mem_mb = sv.sv_mem_mb;
    wc_cpu_s = sv.sv_cpu_s;
    wc_allow_chaos = sv.sv_allow_chaos;
  }

let build_pool cfg =
  match cfg.supervise with
  | None -> Ok None
  | Some sv -> (
    let pool_cfg =
      Worker.pool_config ~size:sv.sv_workers ~wall_ms:sv.sv_wall_ms
        (wconfig_of cfg sv)
    in
    match Mcsup.create pool_cfg with
    | Ok pool -> Ok (Some pool)
    | Error msg -> Error ("cannot start worker pool: " ^ msg))

let create cfg =
  match build_session cfg with
  | Error _ as e -> e
  | Ok session -> (
    match sock_of cfg.addr with
    | exception e ->
      Mcheck_api.Session.close session;
      Error
        (Printf.sprintf "cannot listen on %s: %s"
           (Proto.addr_to_string cfg.addr)
           (Printexc.to_string e))
    | lsock -> (
      Unix.listen lsock 64;
      let msock =
        match cfg.telemetry.tel_metrics_addr with
        | None -> Ok None
        | Some addr -> (
          match sock_of addr with
          | s ->
            Unix.listen s 16;
            Ok (Some s)
          | exception e ->
            Error
              (Printf.sprintf "cannot expose metrics on %s: %s"
                 (Proto.addr_to_string addr)
                 (Printexc.to_string e)))
      in
      match msock with
      | Error msg ->
        (try Unix.close lsock with _ -> ());
        Mcheck_api.Session.close session;
        Error msg
      | Ok msock ->
      match build_pool cfg with
      | Error msg ->
        (try Unix.close lsock with _ -> ());
        (match msock with
        | Some s -> ( try Unix.close s with _ -> ())
        | None -> ());
        Mcheck_api.Session.close session;
        Error msg
      | Ok sup ->
        (* spans are the raw material for the flight recorder; turn
           recording on when the telemetry wants them (never off — a
           test harness may have enabled tracing for its own ends) *)
        if cfg.telemetry.tel_tracing then Mcobs.set_enabled true;
        Ok
          {
            cfg;
            lsock;
            msock;
            sup;
            access =
              Mctel.Accesslog.create ~sample:cfg.telemetry.tel_sample
                ~path:cfg.telemetry.tel_access_log ();
            flight =
              Mctel.Flight.create ~capacity:cfg.telemetry.tel_flight_capacity
                ~threshold_ms:cfg.telemetry.tel_flight_threshold_ms ();
            mu = Mutex.create ();
            cond = Condition.create ();
            session_mu = Mutex.create ();
            session;
            is_draining = false;
            conns = 0;
            requests = 0;
            refused = 0;
            errors = 0;
            inflight_n = 0;
            started = Unix.gettimeofday ();
          }))

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let initiate_drain t =
  locked t.mu (fun () ->
      t.is_draining <- true;
      Mctel.Metrics.set m_draining 1;
      Condition.broadcast t.cond)

let draining t = locked t.mu (fun () -> t.is_draining)
let inflight t = locked t.mu (fun () -> t.inflight_n)
let supervisor t = t.sup
let access_log t = t.access
let flight_recorder t = t.flight
let reopen_access_log t = Mctel.Accesslog.reopen t.access

let stats_text t =
  let s = Mcheck_api.Session.stats t.session in
  locked t.mu (fun () ->
      Format.asprintf
        "mcheckd %s: up %.1f s, %d conn(s), %d request(s) served, %d \
         refused, %d error(s), %d in flight%s@.session: %a@."
        (Proto.addr_to_string t.cfg.addr)
        (Unix.gettimeofday () -. t.started)
        t.conns t.requests t.refused t.errors t.inflight_n
        (if t.is_draining then " (draining)" else "")
        Mcheck_api.Session.pp_stats s)

let stats_json t =
  let s = Mcheck_api.Session.stats t.session in
  locked t.mu (fun () ->
      Printf.sprintf
        "{\"addr\":\"%s\",\"uptime_s\":%.1f,\"conns\":%d,\"requests\":%d,\"refused\":%d,\"errors\":%d,\"inflight\":%d,\"draining\":%b,\"access_log_lines\":%d,\"flight_notable\":%d,\"session\":{\"requests\":%d,\"files_checked\":%d,\"diags_emitted\":%d,\"findings\":%d,\"units_run\":%d,\"cache_hits\":%d,\"cache_entries\":%d,\"check_wall_ms\":%.1f,\"uptime_s\":%.1f}}\n"
        (Mcobs.json_escape (Proto.addr_to_string t.cfg.addr))
        (Unix.gettimeofday () -. t.started)
        t.conns t.requests t.refused t.errors t.inflight_n t.is_draining
        (Mctel.Accesslog.lines_written t.access)
        (Mctel.Flight.retained t.flight)
        s.Mcheck_api.Session.requests s.Mcheck_api.Session.files_checked
        s.Mcheck_api.Session.diags_emitted s.Mcheck_api.Session.findings
        s.Mcheck_api.Session.units_run s.Mcheck_api.Session.cache_hits
        s.Mcheck_api.Session.cache_entries
        s.Mcheck_api.Session.check_wall_ms s.Mcheck_api.Session.uptime_s)

let warm t =
  Mcobs.with_span "serve.warm" (fun () ->
      let corpus = Corpus.generate () in
      locked t.session_mu (fun () ->
          List.iter
            (fun (j : Mcd.job) ->
              ignore
                (Mcheck_api.Session.check_units t.session ~spec:j.Mcd.spec
                   j.Mcd.tus))
            (Mcheck_api.corpus_jobs corpus)))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let send fd resp = Proto.write_frame fd (Proto.encode_response resp)

(* the Retry-After hint for shed requests: roughly how long the
   backlog ahead of the client will take, from the live p50 — clamped
   so a cold histogram still produces a sane hint *)
let retry_after_ms t inflight =
  let p50 =
    Option.value ~default:50.
      (Mcobs.quantile_hist (Mctel.Metrics.hist_snapshot m_req_ms) 0.5)
  in
  let lanes =
    match t.sup with Some pool -> max 1 (Mcsup.size pool) | None -> 1
  in
  let ms = p50 *. float_of_int inflight /. float_of_int lanes in
  max 25 (min 5000 (int_of_float ms))

(* admission: a check admitted before the drain flag flips always runs
   to completion — the drain-under-load zero-loss guarantee.  Beyond
   [max_inflight] the request is shed with a Retry-After hint instead
   of queueing without bound (fail fast beats slow-everything). *)
let admit t =
  locked t.mu (fun () ->
      if t.is_draining then `Draining
      else if t.inflight_n >= t.cfg.max_inflight then
        `Shed (retry_after_ms t t.inflight_n)
      else begin
        t.inflight_n <- t.inflight_n + 1;
        t.requests <- t.requests + 1;
        Mctel.Metrics.inc m_requests;
        Mctel.Metrics.set m_inflight t.inflight_n;
        `Admitted
      end)

let finish_inflight t =
  locked t.mu (fun () ->
      t.inflight_n <- t.inflight_n - 1;
      Mctel.Metrics.set m_inflight t.inflight_n;
      Condition.broadcast t.cond)

let render_opts (o : Proto.check_opts) =
  {
    Mcheck_api.ro_explain = o.Proto.co_explain;
    ro_verbose = o.Proto.co_verbose;
    ro_quiet = o.Proto.co_quiet;
  }

(* the request trace id: the client's, when well-formed; ours
   otherwise — every request is traceable either way *)
let request_trace (opts : Proto.check_opts) =
  match Mctel.Trace.sanitize opts.Proto.co_trace with
  | Some id -> id
  | None -> Mctel.Trace.mint ()

let req_seq = Atomic.make 0

(* al_outcome for a supervised check, recovered from the worker's own
   R_done exit code (the report object never crosses the process line) *)
let outcome_of_exit = function
  | 0 -> "clean"
  | 1 -> "findings"
  | 2 -> "partial"
  | _ -> "unusable"

let run_check t fd ~peer ~kind ~bytes_in ~req (opts : Proto.check_opts) work =
  let begin_us = Mcobs.now_us () in
  let t0 = Unix.gettimeofday () in
  let trace = request_trace opts in
  let bytes_out = ref 0 in
  let send_counted resp =
    let payload = Proto.encode_response resp in
    bytes_out := !bytes_out + Proto.header_len + String.length payload;
    Proto.write_frame fd payload
  in
  let outcome = ref "fault" in
  let findings = ref 0 in
  let diags_n = ref 0 in
  let cache_hits = ref 0 in
  let harvested = ref [] in
  let logged = ref false in
  (* one terminal accounting step per request, wherever the request
     exits: latency histogram, byte counters, access-log line, flight
     entry — committed after the reply frames, so a client that has
     seen R_done can fetch its own flight entry on the same
     connection *)
  let finish_log () =
    if not !logged then begin
      logged := true;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Mctel.Metrics.observe m_req_ms wall_ms;
      Mctel.Metrics.inc ~by:bytes_in m_bytes_in;
      Mctel.Metrics.inc ~by:!bytes_out m_bytes_out;
      ignore
        (Mctel.Accesslog.log t.access
           {
             Mctel.Accesslog.al_trace = trace;
             al_peer = peer;
             al_kind = kind;
             al_bytes_in = bytes_in;
             al_bytes_out = !bytes_out;
             al_wall_ms = wall_ms;
             al_outcome = !outcome;
             al_findings = !findings;
             al_diags = !diags_n;
             al_cache_hits = !cache_hits;
           });
      let notable0 = Mctel.Flight.retained t.flight in
      Mctel.Flight.record t.flight ~trace ~kind ~peer ~begin_us ~wall_ms
        ~outcome:!outcome ~spans:!harvested;
      let kept = Mctel.Flight.retained t.flight - notable0 in
      if kept > 0 then Mctel.Metrics.inc ~by:kept m_flight_notable
    end
  in
  (* the supervised path: ship the encoded request to a pooled worker
     process and forward its response frames verbatim — byte-identical
     to what the worker (sharing the in-process rendering code) wrote,
     while this address space never touches request data.  On worker
     failure (already retried once inside the pool) degrade to a
     structured R_error. *)
  let run_supervised pool =
    match Mcsup.dispatch pool (Proto.encode_request req) with
    | Ok frames ->
      Mcobs.count "serve.check.ok";
      (* one coalesced write: the whole frame list is already in hand
         (nothing was streamed during dispatch), so forwarding it frame
         by frame would only pay a syscall per diagnostic *)
      let buf = Buffer.create 65536 in
      List.iter
        (fun payload ->
          bytes_out := !bytes_out + Proto.header_len + String.length payload;
          Buffer.add_string buf (Proto.frame payload))
        frames;
      let b = Buffer.to_bytes buf in
      let n = Bytes.length b in
      let rec wall off =
        if off < n then wall (off + Unix.write fd b off (n - off))
      in
      wall 0;
      let last = List.nth frames (List.length frames - 1) in
      (match Proto.decode_response last with
      | Ok (Proto.R_done { rd_exit; rd_findings; rd_diags }) ->
        outcome := outcome_of_exit rd_exit;
        findings := rd_findings;
        diags_n := rd_diags
      | Ok (Proto.R_error _) ->
        locked t.mu (fun () -> t.errors <- t.errors + 1);
        Mcobs.count "serve.check.fault";
        Mctel.Metrics.inc m_faults;
        outcome := "fault"
      | _ -> outcome := "ok")
    | Error f ->
      locked t.mu (fun () -> t.errors <- t.errors + 1);
      Mcobs.count "serve.check.fault";
      Mctel.Metrics.inc m_faults;
      outcome := "fault";
      send_counted
        (Proto.R_error ("worker failed: " ^ Mcsup.describe_failure f))
  in
  match admit t with
  | `Draining ->
    locked t.mu (fun () -> t.refused <- t.refused + 1);
    Mctel.Metrics.inc m_refused;
    outcome := "refused";
    Fun.protect ~finally:finish_log (fun () ->
        send_counted (Proto.R_error "draining: request refused"))
  | `Shed ms ->
    locked t.mu (fun () -> t.refused <- t.refused + 1);
    Mctel.Metrics.inc m_shed;
    outcome := "overloaded";
    Fun.protect ~finally:finish_log (fun () ->
        send_counted (Proto.R_overloaded { ro_retry_after_ms = ms }))
  | `Admitted ->
    Mctel.Metrics.add m_queue 1;
    Fun.protect
      ~finally:(fun () ->
        finish_inflight t;
        finish_log ())
      (fun () ->
        match t.sup with
        | Some pool ->
          Mctel.Metrics.add m_queue (-1);
          Mcobs.with_span "serve.check" (fun () -> run_supervised pool)
        | None ->
        match
          Mcobs.with_span "serve.check" (fun () ->
              locked t.session_mu (fun () ->
                  Mctel.Metrics.add m_queue (-1);
                  let hits0 =
                    (Mcheck_api.Session.stats t.session)
                      .Mcheck_api.Session.cache_hits
                  in
                  (* the ambient trace context attributes every span the
                     check records — across the session and the Mcd
                     worker domains — to this request; session_mu is
                     what makes the process-global context sound *)
                  Fun.protect
                    ~finally:(fun () ->
                      Mcobs.set_trace "";
                      Mcobs.record_span ~trace ~name:"serve.request"
                        ~args:[ ("kind", kind); ("peer", peer) ]
                        ~begin_us
                        ~dur_us:(Mcobs.now_us () -. begin_us)
                        ();
                      harvested := Mcobs.drain_trace trace;
                      (* periodically sweep spans recorded outside any
                         trace so a long-lived daemon's buffers stay
                         bounded without a coordinated reset *)
                      if Atomic.fetch_and_add req_seq 1 land 0xff = 0xff
                      then ignore (Mcobs.drain_trace ""))
                    (fun () ->
                      Mcobs.set_trace trace;
                      let r = work t.session in
                      cache_hits :=
                        (Mcheck_api.Session.stats t.session)
                          .Mcheck_api.Session.cache_hits - hits0;
                      r)))
        with
        | (report : Mcheck_api.report) ->
          Mcobs.count "serve.check.ok";
          outcome := Robust.to_string report.Mcheck_api.r_outcome;
          findings := report.Mcheck_api.r_findings;
          let ropts = render_opts opts in
          let diags = Mcheck_api.report_diags report in
          diags_n := List.length diags;
          List.iter
            (fun (d : Diag.t) ->
              send_counted
                (Proto.R_diag
                   {
                     Proto.d_checker = d.Diag.checker;
                     d_severity = Diag.severity_string d.Diag.severity;
                     d_internal = Robust.is_internal d;
                     d_text = Mcheck_api.render_diag ropts d;
                   }))
            diags;
          send_counted
            (Proto.R_done
               {
                 rd_exit = Robust.exit_code report.Mcheck_api.r_outcome;
                 rd_findings = report.Mcheck_api.r_findings;
                 rd_diags = List.length diags;
               })
        | exception Mcheck_api.Robust_exit out ->
          (* strict-mode input failure: the daemon printed the reason on
             its stderr, the wire carries the exit code *)
          outcome := Robust.to_string out;
          send_counted
            (Proto.R_done
               {
                 rd_exit = Robust.exit_code out;
                 rd_findings = 0;
                 rd_diags = 0;
               })
        | exception exn ->
          (* the per-request fault barrier: a poisoned request degrades
             to an error frame, never kills the daemon *)
          locked t.mu (fun () -> t.errors <- t.errors + 1);
          Mcobs.count "serve.check.fault";
          Mctel.Metrics.inc m_faults;
          outcome := "fault";
          send_counted (Proto.R_error (Engine.describe_fault exn)))

(* control requests get the same accounting as checks — a trace id,
   the latency histogram, and an access-log line — without the
   admission/session machinery *)
let answer t fd ~peer ~kind ~bytes_in resp =
  let t0 = Unix.gettimeofday () in
  let payload = Proto.encode_response resp in
  Fun.protect
    ~finally:(fun () ->
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Mctel.Metrics.observe m_req_ms wall_ms;
      Mctel.Metrics.inc ~by:bytes_in m_bytes_in;
      Mctel.Metrics.inc
        ~by:(Proto.header_len + String.length payload)
        m_bytes_out;
      ignore
        (Mctel.Accesslog.log t.access
           {
             Mctel.Accesslog.al_trace = Mctel.Trace.mint ();
             al_peer = peer;
             al_kind = kind;
             al_bytes_in = bytes_in;
             al_bytes_out = Proto.header_len + String.length payload;
             al_wall_ms = wall_ms;
             al_outcome =
               (match resp with Proto.R_error _ -> "error" | _ -> "ok");
             al_findings = 0;
             al_diags = 0;
             al_cache_hits = 0;
           }))
    (fun () -> Proto.write_frame fd payload)

(* the per-request strictness knob is reserved on the wire; the daemon
   applies its configured parse mode (see Proto.check_opts docs) *)
let handle_request t fd ~peer ~bytes_in req =
  match req with
  | Proto.Ping -> answer t fd ~peer ~kind:"ping" ~bytes_in Proto.R_ok
  | Proto.Stats Proto.S_text ->
    answer t fd ~peer ~kind:"stats" ~bytes_in (Proto.R_text (stats_text t))
  | Proto.Stats Proto.S_json ->
    answer t fd ~peer ~kind:"stats" ~bytes_in (Proto.R_text (stats_json t))
  | Proto.Metrics Proto.M_prom ->
    answer t fd ~peer ~kind:"metrics" ~bytes_in
      (Proto.R_text (Mctel.Metrics.to_prometheus ()))
  | Proto.Metrics Proto.M_json ->
    answer t fd ~peer ~kind:"metrics" ~bytes_in
      (Proto.R_text (Mctel.Metrics.to_json ()))
  | Proto.Flight ->
    answer t fd ~peer ~kind:"flight" ~bytes_in
      (Proto.R_text (Mctel.Flight.dump_json t.flight))
  | Proto.Drain ->
    Mcobs.count "serve.drain";
    initiate_drain t;
    answer t fd ~peer ~kind:"drain" ~bytes_in Proto.R_ok
  | Proto.Reload -> (
    Mcobs.count "serve.reload";
    match build_session t.cfg with
    | Error msg ->
      locked t.mu (fun () -> t.errors <- t.errors + 1);
      answer t fd ~peer ~kind:"reload" ~bytes_in
        (Proto.R_error ("reload failed: " ^ msg))
    | Ok fresh ->
      (* waits for in-flight checks (they hold session_mu), then swaps *)
      locked t.session_mu (fun () ->
          let old = t.session in
          t.session <- fresh;
          Mcheck_api.Session.close old);
      (* supervised mode: roll every worker too — each retiring worker
         publishes its warm cache on EOF, each fresh one reloads specs
         from disk *)
      Option.iter Mcsup.retire_all t.sup;
      answer t fd ~peer ~kind:"reload" ~bytes_in Proto.R_ok)
  | Proto.Check_files (opts, paths) ->
    (* the request's -c selection overrides the session's, per call, so
       findings counts and exit codes match a local run with the same
       flags *)
    run_check t fd ~peer ~kind:"check_files" ~bytes_in ~req opts
      (fun session ->
        Mcheck_api.Session.check_files ~checkers:opts.Proto.co_checkers
          session paths)
  | Proto.Check_buffer (opts, name, contents) ->
    run_check t fd ~peer ~kind:"check_buffer" ~bytes_in ~req opts
      (fun session ->
        Mcheck_api.Session.check_buffer ~checkers:opts.Proto.co_checkers
          session ~name ~contents)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | exception _ -> "unknown"

let handle_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout
   with _ -> ());
  let peer = peer_string fd in
  let rec loop () =
    match Proto.read_frame fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* idle past the timeout: reap the connection (clients
         reconnect cheaply); unconditional so a drain never waits on a
         silent peer *)
      ()
    | exception Unix.Unix_error _ -> ()
    | Error "eof" -> ()
    | Error msg ->
      (* framing is broken; answer once and hang up *)
      (try send fd (Proto.R_error ("protocol error: " ^ msg)) with _ -> ());
      Mctel.Metrics.inc m_proto_errors;
      locked t.mu (fun () -> t.errors <- t.errors + 1)
    | Ok payload -> (
      let bytes_in = Proto.header_len + String.length payload in
      match Proto.decode_request payload with
      | Error msg ->
        (try send fd (Proto.R_error ("protocol error: " ^ msg))
         with _ -> ());
        Mctel.Metrics.inc m_proto_errors;
        locked t.mu (fun () -> t.errors <- t.errors + 1)
      | Ok req -> (
        Mcobs.count "serve.request";
        match handle_request t fd ~peer ~bytes_in req with
        | () -> loop ()
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
          ->
          (* the client hung up mid-reply: a per-connection event worth
             counting, never a fault-barrier trip *)
          Mctel.Metrics.inc m_client_aborts
        | exception Unix.Unix_error _ ->
          (* client went away mid-reply *)
          ()))
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with _ -> ());
      locked t.mu (fun () ->
          t.conns <- t.conns - 1;
          Mctel.Metrics.set m_conns t.conns;
          Condition.broadcast t.cond))
    loop

(* ------------------------------------------------------------------ *)
(* Metrics exposition                                                  *)
(* ------------------------------------------------------------------ *)

let rec http_write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    http_write_all fd s (off + n) (len - n)
  end

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* liveness vs readiness: /healthz answers 200 while the process can
   answer at all (an orchestrator restarts on failure); /readyz goes
   503 once draining or when the worker pool has no live workers (a
   balancer stops routing, the process keeps finishing in-flight
   work) *)
let ready t =
  (not (draining t))
  && match t.sup with None -> true | Some pool -> Mcsup.alive pool >= 1

(* the smallest useful scrape endpoint: HTTP/1.0, four routes, close
   after each response — enough for Prometheus, curl, an orchestrator
   probe, and the CI smoke *)
let serve_metrics_http t sock =
  let handle fd =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        try
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with _ -> ());
          let buf = Bytes.create 2048 in
          let n = try Unix.read fd buf 0 2048 with _ -> 0 in
          let req = Bytes.sub_string buf 0 n in
          let line =
            match String.index_opt req '\r' with
            | Some i -> String.sub req 0 i
            | None -> req
          in
          let status, ctype, body =
            if contains_sub line "/healthz" then ("200 OK", "text/plain", "ok\n")
            else if contains_sub line "/readyz" then
              if ready t then ("200 OK", "text/plain", "ready\n")
              else ("503 Service Unavailable", "text/plain", "not ready\n")
            else if contains_sub line ".json" then
              ("200 OK", "application/json", Mctel.Metrics.to_json ())
            else
              ( "200 OK",
                "text/plain; version=0.0.4",
                Mctel.Metrics.to_prometheus () )
          in
          let resp =
            Printf.sprintf
              "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: \
               %d\r\nConnection: close\r\n\r\n%s"
              status ctype (String.length body) body
          in
          http_write_all fd resp 0 (String.length resp)
        with _ -> ())
  in
  let rec loop () =
    if not (draining t) then begin
      (match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true sock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> handle fd)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close sock with _ -> ())

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  Mcobs.logf Mcobs.Normal "mcheckd: listening on %s"
    (Proto.addr_to_string t.cfg.addr);
  let metrics_thread =
    Option.map
      (fun sock ->
        Mcobs.logf Mcobs.Normal "mcheckd: metrics on %s"
          (Proto.addr_to_string
             (Option.get t.cfg.telemetry.tel_metrics_addr));
        Thread.create (fun () -> serve_metrics_http t sock) ())
      t.msock
  in
  let rec loop () =
    let finished =
      locked t.mu (fun () ->
          t.is_draining && t.conns = 0 && t.inflight_n = 0)
    in
    if not finished then begin
      (match Unix.select [ t.lsock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.lsock with
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
        | fd, _ ->
          if locked t.mu (fun () -> t.is_draining) then (
            (* refuse politely rather than leaving the peer hanging *)
            (try send fd (Proto.R_error "draining: connection refused")
             with _ -> ());
            try Unix.close fd with _ -> ())
          else begin
            locked t.mu (fun () ->
                t.conns <- t.conns + 1;
                Mctel.Metrics.set m_conns t.conns);
            ignore (Thread.create (fun () -> handle_conn t fd) ())
          end)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.lsock with _ -> ());
  (match t.cfg.addr with
  | Proto.Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Proto.Tcp _ -> ());
  Option.iter Thread.join metrics_thread;
  (match t.cfg.telemetry.tel_metrics_addr with
  | Some (Proto.Unix_sock path) -> ( try Unix.unlink path with _ -> ())
  | _ -> ());
  (* every in-flight request has finished (the drain condition above),
     so this only retires idle workers — each publishes its cache on
     EOF and exits cleanly *)
  Option.iter Mcsup.close t.sup;
  locked t.session_mu (fun () -> Mcheck_api.Session.close t.session);
  Mctel.Accesslog.close t.access;
  Mcobs.logf Mcobs.Normal "mcheckd: drained, %d request(s) served"
    t.requests
