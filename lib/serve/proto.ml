(* The mcheckd wire protocol.  Hand-rolled binary codec: every read is
   bounds-checked, every decode is total, and a decoded message must
   consume its payload exactly — the strictness the protocol fuzz
   oracle (and the decode∘encode = id law) leans on. *)

let magic = "MCHK"

(* v2: check_opts carries a client-minted trace id; Stats takes a
   format byte; Metrics and Flight expose the live telemetry.
   v3: R_overloaded — admission-control shed with a Retry-After hint *)
let version = 3
let header_len = 4 + 2 + 4
let max_payload = 16 * 1024 * 1024

type check_opts = {
  co_checkers : string list;
  co_explain : bool;
  co_verbose : bool;
  co_quiet : bool;
  co_strict : bool;
  co_trace : string;
}

let default_opts =
  {
    co_checkers = [];
    co_explain = false;
    co_verbose = false;
    co_quiet = false;
    co_strict = false;
    co_trace = "";
  }

type stats_format = S_text | S_json
type metrics_format = M_prom | M_json

type request =
  | Check_files of check_opts * string list
  | Check_buffer of check_opts * string * string
  | Stats of stats_format
  | Metrics of metrics_format
  | Flight
  | Drain
  | Reload
  | Ping

type diag_frame = {
  d_checker : string;
  d_severity : string;
  d_internal : bool;
  d_text : string;
}

type response =
  | R_diag of diag_frame
  | R_done of { rd_exit : int; rd_findings : int; rd_diags : int }
  | R_text of string
  | R_ok
  | R_error of string
  | R_overloaded of { ro_retry_after_ms : int }

(* messages are trees of strings / ints / bools: structural equality is
   exactly message equality *)
let equal_request (a : request) (b : request) = a = b
let equal_response (a : response) (b : response) = a = b

let pp_request ppf = function
  | Check_files (_, paths) ->
    Format.fprintf ppf "check-files [%s]" (String.concat "; " paths)
  | Check_buffer (_, name, contents) ->
    Format.fprintf ppf "check-buffer %s (%d bytes)" name
      (String.length contents)
  | Stats S_text -> Format.pp_print_string ppf "stats"
  | Stats S_json -> Format.pp_print_string ppf "stats-json"
  | Metrics M_prom -> Format.pp_print_string ppf "metrics"
  | Metrics M_json -> Format.pp_print_string ppf "metrics-json"
  | Flight -> Format.pp_print_string ppf "flight"
  | Drain -> Format.pp_print_string ppf "drain"
  | Reload -> Format.pp_print_string ppf "reload"
  | Ping -> Format.pp_print_string ppf "ping"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  w_u8 b (v lsr 24);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 8);
  w_u8 b v

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

let w_opts b o =
  let flags =
    (if o.co_explain then 1 else 0)
    lor (if o.co_verbose then 2 else 0)
    lor (if o.co_quiet then 4 else 0)
    lor if o.co_strict then 8 else 0
  in
  w_u8 b flags;
  w_list w_str b o.co_checkers;
  w_str b o.co_trace

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type reader = { buf : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.buf then
    raise (Bad "truncated payload")

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v =
    (Char.code r.buf.[r.pos] lsl 24)
    lor (Char.code r.buf.[r.pos + 1] lsl 16)
    lor (Char.code r.buf.[r.pos + 2] lsl 8)
    lor Char.code r.buf.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Bad (Printf.sprintf "bad bool byte %d" n))

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list rd r =
  let n = r_u32 r in
  (* each element costs at least one byte; reject absurd counts before
     allocating *)
  need r n;
  List.init n (fun _ -> rd r)

let r_opts r =
  let flags = r_u8 r in
  if flags land lnot 0xf <> 0 then
    raise (Bad (Printf.sprintf "unknown option flags 0x%x" flags));
  let co_checkers = r_list r_str r in
  let co_trace = r_str r in
  {
    co_checkers;
    co_explain = flags land 1 <> 0;
    co_verbose = flags land 2 <> 0;
    co_quiet = flags land 4 <> 0;
    co_strict = flags land 8 <> 0;
    co_trace;
  }

(* a decode must consume the payload exactly *)
let finish r v =
  if r.pos <> String.length r.buf then
    raise (Bad "trailing garbage after message")
  else v

let run_decode f s =
  match f { buf = s; pos = 0 } with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Message codecs                                                      *)
(* ------------------------------------------------------------------ *)

(* request tags *)
let t_check_files = 1
let t_check_buffer = 2
let t_stats = 3
let t_drain = 4
let t_reload = 5
let t_ping = 6
let t_metrics = 7
let t_flight = 8

(* response tags *)
let t_diag = 0x81
let t_done = 0x82
let t_text = 0x83
let t_ok = 0x84
let t_error = 0x85
let t_overloaded = 0x86

let encode_request req =
  let b = Buffer.create 64 in
  (match req with
  | Check_files (opts, paths) ->
    w_u8 b t_check_files;
    w_opts b opts;
    w_list w_str b paths
  | Check_buffer (opts, name, contents) ->
    w_u8 b t_check_buffer;
    w_opts b opts;
    w_str b name;
    w_str b contents
  | Stats fmt ->
    w_u8 b t_stats;
    w_u8 b (match fmt with S_text -> 0 | S_json -> 1)
  | Metrics fmt ->
    w_u8 b t_metrics;
    w_u8 b (match fmt with M_prom -> 0 | M_json -> 1)
  | Flight -> w_u8 b t_flight
  | Drain -> w_u8 b t_drain
  | Reload -> w_u8 b t_reload
  | Ping -> w_u8 b t_ping);
  Buffer.contents b

let decode_request s =
  run_decode
    (fun r ->
      let tag = r_u8 r in
      let req =
        if tag = t_check_files then
          let opts = r_opts r in
          let paths = r_list r_str r in
          Check_files (opts, paths)
        else if tag = t_check_buffer then
          let opts = r_opts r in
          let name = r_str r in
          let contents = r_str r in
          Check_buffer (opts, name, contents)
        else if tag = t_stats then
          Stats
            (match r_u8 r with
            | 0 -> S_text
            | 1 -> S_json
            | n -> raise (Bad (Printf.sprintf "bad stats format %d" n)))
        else if tag = t_metrics then
          Metrics
            (match r_u8 r with
            | 0 -> M_prom
            | 1 -> M_json
            | n -> raise (Bad (Printf.sprintf "bad metrics format %d" n)))
        else if tag = t_flight then Flight
        else if tag = t_drain then Drain
        else if tag = t_reload then Reload
        else if tag = t_ping then Ping
        else raise (Bad (Printf.sprintf "unknown request tag %d" tag))
      in
      finish r req)
    s

let encode_response resp =
  let b = Buffer.create 64 in
  (match resp with
  | R_diag d ->
    w_u8 b t_diag;
    w_str b d.d_checker;
    w_str b d.d_severity;
    w_bool b d.d_internal;
    w_str b d.d_text
  | R_done { rd_exit; rd_findings; rd_diags } ->
    w_u8 b t_done;
    w_u8 b rd_exit;
    w_u32 b rd_findings;
    w_u32 b rd_diags
  | R_text s ->
    w_u8 b t_text;
    w_str b s
  | R_ok -> w_u8 b t_ok
  | R_error msg ->
    w_u8 b t_error;
    w_str b msg
  | R_overloaded { ro_retry_after_ms } ->
    w_u8 b t_overloaded;
    w_u32 b ro_retry_after_ms);
  Buffer.contents b

let decode_response s =
  run_decode
    (fun r ->
      let tag = r_u8 r in
      let resp =
        if tag = t_diag then
          let d_checker = r_str r in
          let d_severity = r_str r in
          let d_internal = r_bool r in
          let d_text = r_str r in
          R_diag { d_checker; d_severity; d_internal; d_text }
        else if tag = t_done then
          let rd_exit = r_u8 r in
          let rd_findings = r_u32 r in
          let rd_diags = r_u32 r in
          if rd_exit > 3 then
            raise (Bad (Printf.sprintf "bad exit code %d" rd_exit));
          R_done { rd_exit; rd_findings; rd_diags }
        else if tag = t_text then R_text (r_str r)
        else if tag = t_ok then R_ok
        else if tag = t_error then R_error (r_str r)
        else if tag = t_overloaded then
          R_overloaded { ro_retry_after_ms = r_u32 r }
        else raise (Bad (Printf.sprintf "unknown response tag %d" tag))
      in
      finish r resp)
    s

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  w_u8 b (version lsr 8);
  w_u8 b version;
  w_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_frame fd payload =
  let f = frame payload in
  write_all fd f 0 (String.length f)

(* read exactly [n] bytes; [Error] on EOF mid-read *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error (if off = 0 then "eof" else "truncated frame")
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match read_exact fd header_len with
  | Error _ as e -> e
  | Ok hdr ->
    if String.sub hdr 0 4 <> magic then Error "bad magic"
    else
      let v = (Char.code hdr.[4] lsl 8) lor Char.code hdr.[5] in
      if v <> version then Error (Printf.sprintf "bad version %d" v)
      else
        let len =
          (Char.code hdr.[6] lsl 24)
          lor (Char.code hdr.[7] lsl 16)
          lor (Char.code hdr.[8] lsl 8)
          lor Char.code hdr.[9]
        in
        if len > max_payload then
          Error (Printf.sprintf "oversized frame (%d bytes)" len)
        else if len = 0 then Ok ""
        else (
          match read_exact fd len with
          | Ok _ as ok -> ok
          | Error _ -> Error "truncated frame")

(* incremental splitter over a byte window — lets a reader drain a
   whole burst of frames with one bulk [read] instead of two syscalls
   per frame.  Validation matches [read_frame] exactly. *)
let split_frame buf off len =
  if len < header_len then `Need
  else if Bytes.sub_string buf off 4 <> magic then `Bad "bad magic"
  else
    let b i = Char.code (Bytes.get buf (off + i)) in
    let v = (b 4 lsl 8) lor b 5 in
    if v <> version then `Bad (Printf.sprintf "bad version %d" v)
    else
      let plen = (b 6 lsl 24) lor (b 7 lsl 16) lor (b 8 lsl 8) lor b 9 in
      if plen > max_payload then
        `Bad (Printf.sprintf "oversized frame (%d bytes)" plen)
      else if len < header_len + plen then `Need
      else
        `Frame
          (Bytes.sub_string buf (off + header_len) plen, header_len + plen)

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

type addr = Unix_sock of string | Tcp of string * int

let parse_addr s =
  if String.length s = 0 then Error "empty address"
  else if String.length s > 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.contains s '/' then Ok (Unix_sock s)
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
        Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad port %S" port))
    | None ->
      (* no colon, no slash: a TCP host without a port is never valid,
         so a bare token like "mcheckd.sock" is a socket path *)
      Ok (Unix_sock s)

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
