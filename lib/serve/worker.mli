(** Worker — the serve tier's instantiation of {!Mcsup}.

    [Mcsup] is protocol-agnostic; this module supplies the [Proto]
    codec, the worker-process main loop, and the init-frame
    configuration record the supervisor ships to each fresh worker.
    The worker mirrors {!Server}'s response generation exactly —
    [R_diag] frames rendered with {!Mcheck_api.render_diag}, then
    [R_done]; strict-mode input failures as [R_done]; the fault
    barrier as [R_error] — so the supervisor can forward its frames to
    the client verbatim and stay byte-identical to in-process
    dispatch. *)

val env_key : string
(** the environment gate ([MCSUP_WORKER]) that turns a re-exec of the
    hosting binary into a worker *)

type wconfig = {
  wc_jobs : int;
  wc_incremental : bool;
  wc_strict : bool;
  wc_fuel : int option;
  wc_deadline_ms : float option;  (** per-unit engine deadline *)
  wc_checkers : string list;
  wc_metal_paths : string list;  (** workers re-load specs by path —
                                     closures cannot cross [exec] *)
  wc_cache_dir : string option;  (** shared multi-writer cache dir *)
  wc_mem_mb : int option;  (** RLIMIT_AS, set by the worker at birth *)
  wc_cpu_s : int option;  (** RLIMIT_CPU *)
  wc_allow_chaos : bool;
      (** recognize [__chaos_*__] buffer names as fault injections
          (spin / oom / stack / exit / kill / sleep); a production
          worker treats them as ordinary file names *)
}

val default_wconfig : wconfig
(** jobs 1, incremental, non-strict, no budget, no limits, no chaos *)

val codec : Mcsup.codec
(** [Proto] framing: [R_diag] is [More], every other response is
    [Final], an undecodable payload is [Garbage] *)

val pool_config :
  ?name:string -> size:int -> wall_ms:float option -> wconfig -> Mcsup.config
(** a ready {!Mcsup.config}: [Proto] codec, {!env_key}, the encoded
    init frame for [wconfig] *)

val encode_init : wconfig -> string
(** the init-frame payload (shipped to a fresh worker as its first
    frame); [pool_config] calls this — exposed for [retire_all ~init]
    config swaps *)

val exit_if_worker : unit -> unit
(** the hosting binary's first statement: when the environment gate is
    set, run the worker main loop on fd 0 and [exit] — never returns
    in a worker process, a no-op otherwise *)
