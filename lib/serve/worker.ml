(* Worker — the Mcsup instantiation for the serve tier.  See the
   interface.  The main loop lives here rather than in lib/supervise
   because it needs Proto and Mcheck_api; Mcsup stays protocol-
   agnostic underneath. *)

let env_key = "MCSUP_WORKER"

type wconfig = {
  wc_jobs : int;
  wc_incremental : bool;
  wc_strict : bool;
  wc_fuel : int option;
  wc_deadline_ms : float option;
  wc_checkers : string list;
  wc_metal_paths : string list;
  wc_cache_dir : string option;
  wc_mem_mb : int option;
  wc_cpu_s : int option;
  wc_allow_chaos : bool;
}

let default_wconfig =
  {
    wc_jobs = 1;
    wc_incremental = true;
    wc_strict = false;
    wc_fuel = None;
    wc_deadline_ms = None;
    wc_checkers = [];
    wc_metal_paths = [];
    wc_cache_dir = None;
    wc_mem_mb = None;
    wc_cpu_s = None;
    wc_allow_chaos = false;
  }

(* The init frame crosses exec between two instances of the *same*
   binary, so Marshal is sound; a version marker catches the only way
   that can go wrong (a stale supervisor exec'ing a newer binary). *)
let init_tag = "mcw1"
let encode_init wc = Marshal.to_string (init_tag, wc) []

let decode_init s =
  match (Marshal.from_string s 0 : string * wconfig) with
  | tag, wc when String.equal tag init_tag -> Ok wc
  | _ -> Error "worker init: version mismatch"
  | exception _ -> Error "worker init: undecodable"

(* ------------------------------------------------------------------ *)
(* The codec                                                           *)
(* ------------------------------------------------------------------ *)

let codec =
  {
    Mcsup.cd_read = Proto.read_frame;
    cd_write = Proto.write_frame;
    cd_class =
      (fun payload ->
        match Proto.decode_response payload with
        | Ok (Proto.R_diag _) -> Mcsup.More
        | Ok _ -> Mcsup.Final
        | Error _ -> Mcsup.Garbage);
    cd_split = Some Proto.split_frame;
  }

let pool_config ?(name = "mcheckd") ~size ~wall_ms wc =
  {
    (Mcsup.default_config codec) with
    Mcsup.sp_size = size;
    sp_env_key = env_key;
    sp_init = encode_init wc;
    sp_wall_ms = wall_ms;
    sp_name = name;
  }

(* ------------------------------------------------------------------ *)
(* Chaos units                                                         *)
(* ------------------------------------------------------------------ *)

(* In-band fault injections, recognized by buffer name only when the
   init config allows them.  They model the pathological translation
   units the supervisor exists for: a spin the fuel budget misses, an
   allocation storm, a blown stack, and outright death mid-request.
   [__chaos_sleep_<ms>__*] is not a fault at all — it stretches an
   otherwise-normal check so campaigns can kill workers mid-request
   deterministically (the local mirror session checks the same buffer
   without sleeping and must produce identical diagnostics). *)

let chaos_sleep_prefix = "__chaos_sleep_"

let sleep_ms_of_name name =
  let p = chaos_sleep_prefix in
  let pl = String.length p in
  if String.length name > pl && String.sub name 0 pl = p then
    match String.index_from_opt name pl '_' with
    | Some i -> int_of_string_opt (String.sub name pl (i - pl))
    | None -> None
  else None

let chaos_spin () =
  (* non-allocating, so RLIMIT_AS never saves us: only the supervisor
     deadline (SIGTERM) or RLIMIT_CPU (SIGXCPU/SIGKILL) ends this *)
  let r = ref 0 in
  while !r >= 0 do
    r := (!r + 1) land max_int
  done

let chaos_oom () =
  let rec go acc = go (String.make 65536 'x' :: acc) in
  ignore (go [])

let chaos_stack () =
  let rec f n = if n = 0 then 0 else 1 + f (n + 1) in
  ignore (f 1)

(* ------------------------------------------------------------------ *)
(* The worker main loop                                                *)
(* ------------------------------------------------------------------ *)

let render_opts (o : Proto.check_opts) =
  {
    Mcheck_api.ro_explain = o.Proto.co_explain;
    ro_verbose = o.Proto.co_verbose;
    ro_quiet = o.Proto.co_quiet;
  }

(* Diag frames are batched and flushed with the final frame rather than
   written one syscall at a time: the supervisor collects a request's
   whole frame list before forwarding any of it, so write granularity
   is invisible to the client — but per-frame writes cost a cross-
   process wakeup each, which dominates warm-path dispatch latency on
   diag-heavy batches.  A size cap bounds worker memory; a partial
   flush mid-stream is just stream bytes arriving early. *)
let out_buf = Buffer.create 65536
let out_flush_bytes = 262_144

let flush_out () =
  let n = Buffer.length out_buf in
  if n > 0 then begin
    let b = Buffer.to_bytes out_buf in
    Buffer.clear out_buf;
    let rec go off =
      if off < n then go (off + Unix.write Unix.stdin b off (n - off))
    in
    go 0
  end

let reply resp =
  Buffer.add_string out_buf (Proto.frame (Proto.encode_response resp));
  match resp with
  | Proto.R_diag _ -> if Buffer.length out_buf >= out_flush_bytes then flush_out ()
  | _ -> flush_out ()

(* exactly Server.run_check's frame generation: the supervisor forwards
   these payloads verbatim, so any divergence here is a wire-visible
   byte difference the differential oracle would catch *)
let run_and_reply opts work =
  match work () with
  | (report : Mcheck_api.report) ->
    let ropts = render_opts opts in
    let diags = Mcheck_api.report_diags report in
    List.iter
      (fun (d : Diag.t) ->
        reply
          (Proto.R_diag
             {
               Proto.d_checker = d.Diag.checker;
               d_severity = Diag.severity_string d.Diag.severity;
               d_internal = Robust.is_internal d;
               d_text = Mcheck_api.render_diag ropts d;
             }))
      diags;
    reply
      (Proto.R_done
         {
           rd_exit = Robust.exit_code report.Mcheck_api.r_outcome;
           rd_findings = report.Mcheck_api.r_findings;
           rd_diags = List.length diags;
         })
  | exception Mcheck_api.Robust_exit out ->
    reply
      (Proto.R_done
         { rd_exit = Robust.exit_code out; rd_findings = 0; rd_diags = 0 })
  | exception exn -> reply (Proto.R_error (Engine.describe_fault exn))

let handle_request wc session req =
  match req with
  | Proto.Ping -> reply Proto.R_ok
  | Proto.Check_files (opts, paths) ->
    run_and_reply opts (fun () ->
        Mcheck_api.Session.check_files ~checkers:opts.Proto.co_checkers
          session paths)
  | Proto.Check_buffer (opts, name, contents) ->
    if wc.wc_allow_chaos then begin
      (* death injections happen outside the fault barrier — that is
         their entire point *)
      if String.equal name "__chaos_exit__" then exit 7;
      if String.equal name "__chaos_kill__" then
        Unix.kill (Unix.getpid ()) Sys.sigkill
    end;
    run_and_reply opts (fun () ->
        if wc.wc_allow_chaos then begin
          if String.equal name "__chaos_spin__" then chaos_spin ();
          if String.equal name "__chaos_oom__" then chaos_oom ();
          if String.equal name "__chaos_stack__" then chaos_stack ();
          match sleep_ms_of_name name with
          | Some ms -> Thread.delay (float_of_int ms /. 1000.)
          | None -> ()
        end;
        Mcheck_api.Session.check_buffer ~checkers:opts.Proto.co_checkers
          session ~name ~contents)
  | Proto.Stats _ | Proto.Metrics _ | Proto.Flight | Proto.Drain
  | Proto.Reload ->
    reply (Proto.R_error "request kind not supported in a worker")

let worker_main () : unit =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  Mcobs.set_verbosity Mcobs.Quiet;
  match Proto.read_frame Unix.stdin with
  | Error _ | (exception _) -> exit 2
  | Ok init -> (
    match decode_init init with
    | Error _ -> exit 2
    | Ok wc -> (
      (* hard OS limits before any request data is touched; failures
         are advisory (the supervisor's wall deadline backstops) *)
      Option.iter (fun mb -> ignore (Mcsup.set_mem_limit_mb mb)) wc.wc_mem_mb;
      Option.iter (fun s -> ignore (Mcsup.set_cpu_limit_s s)) wc.wc_cpu_s;
      match Mcheck_api.load_metal wc.wc_metal_paths with
      | Error msg ->
        (try reply (Proto.R_error ("worker: " ^ msg)) with _ -> ());
        exit 1
      | Ok metal ->
        let api =
          {
            Mcheck_api.default_config with
            Mcheck_api.jobs = wc.wc_jobs;
            incremental = wc.wc_incremental;
            strict = wc.wc_strict;
            budget =
              { Engine.fuel = wc.wc_fuel; deadline_ms = wc.wc_deadline_ms };
            checkers = wc.wc_checkers;
            cache_dir = wc.wc_cache_dir;
            metal;
          }
        in
        let session = Mcheck_api.Session.create ~config:api () in
        reply Proto.R_ok;
        let served = ref 0 in
        let rec loop () =
          match Proto.read_frame Unix.stdin with
          | Error _ | (exception _) ->
            (* EOF: graceful retirement — publish the warm cache for
               the workers that come after us, then leave cleanly *)
            Mcheck_api.Session.close session;
            exit 0
          | Ok payload ->
            (match Proto.decode_request payload with
            | Error msg ->
              reply (Proto.R_error ("worker protocol error: " ^ msg))
            | Ok req -> handle_request wc session req);
            incr served;
            (* periodic publication keeps the shared directory warm
               even if this worker later dies mid-request *)
            if !served land 7 = 7 then Mcheck_api.Session.publish_cache session;
            loop ()
        in
        loop ()))

let exit_if_worker () =
  if Mcsup.is_worker ~key:env_key then begin
    (try worker_main () with _ -> exit 3);
    exit 0
  end
