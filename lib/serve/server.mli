(** The mcheckd daemon core: a listening socket, one thread per client
    connection, all check requests multiplexed onto one shared warm
    {!Mcheck_api.Session}.

    Containment mirrors the pipeline's own fault barriers: a request
    that fails inside the daemon (decode error, poisoned input, checker
    crash that escapes the engine's own barriers) becomes an
    {!Proto.R_error} frame — exit-code-2 semantics on the wire — and
    the daemon keeps serving.

    Lifecycle: {!run} accepts until a drain is initiated (a
    {!Proto.Drain} request, {!initiate_drain}, or a SIGINT/SIGTERM the
    driver routes there), then stops admitting new requests, finishes
    every admitted one, closes the listener, persists the session cache,
    and returns.  {!Proto.Reload} waits for in-flight requests, then
    swaps the session (metal specs re-read, cache rebuilt) without
    dropping connections. *)

type telemetry = {
  tel_tracing : bool;
      (** install each request's trace id as the ambient {!Mcobs}
          context and harvest its spans into the flight recorder.
          [true] turns span recording on; [false] never turns it off
          (the embedding harness may want it for its own ends). *)
  tel_access_log : string option;  (** JSONL path; [None] disables *)
  tel_sample : int;  (** write every n-th access-log line *)
  tel_flight_capacity : int;  (** entries per flight-recorder ring *)
  tel_flight_threshold_ms : float;
      (** requests at least this slow are always retained *)
  tel_metrics_addr : Proto.addr option;
      (** when set, serve the live metrics over HTTP on this address:
          [GET /metrics] (Prometheus text) and [GET /metrics.json] *)
}

val default_telemetry : telemetry
(** tracing on, no access log, flight ring of 64 with a 250 ms
    threshold, no HTTP exposition *)

type supervise = {
  sv_workers : int;  (** pool size (a hot spare rides on top) *)
  sv_mem_mb : int option;  (** per-worker RLIMIT_AS *)
  sv_cpu_s : int option;  (** per-worker RLIMIT_CPU *)
  sv_wall_ms : float option;  (** per-request wall deadline *)
  sv_cache_dir : string option;
      (** shared multi-writer cache directory (see {!Mcd_cache}) *)
  sv_allow_chaos : bool;
      (** let workers recognize [__chaos_*__] fault-injection buffer
          names — campaigns only, never production *)
}

val default_supervise : supervise
(** 2 workers, 1 GiB / 30 s limits, 30 s wall deadline, no shared
    cache dir, chaos off *)

type config = {
  addr : Proto.addr;
  api : Mcheck_api.config;
  metal_paths : string list;
      (** metal spec files, re-read on [Reload]; compiled into
          [api.metal] at session build time *)
  idle_timeout : float;
      (** per-connection receive timeout in seconds; an idle client is
          kept, but during a drain its connection is closed once the
          timeout fires *)
  telemetry : telemetry;
  supervise : supervise option;
      (** [Some _] dispatches every check into a {!Mcsup} pool of
          worker processes: a poisoned unit can kill a worker (one
          request pays one transparent retry) but never this daemon.
          [None] keeps the historical in-process path. *)
  max_inflight : int;
      (** admission bound: past this many in-flight checks new ones
          are shed with [R_overloaded] + Retry-After instead of
          queueing without bound *)
}

val default_config : config
(** unix socket ["mcheckd.sock"], incremental in-memory cache, 1 job,
    {!default_telemetry}, in-process dispatch, [max_inflight = 64] *)

type t

val create : config -> (t, string) result
(** bind and listen (stale unix-socket files are replaced); the session
    is built — and its cache loaded — here, so the daemon is warm
    before the first accept *)

val run : t -> unit
(** the blocking accept loop; returns after a completed drain *)

val warm : t -> unit
(** pre-warm the session before serving: run the builtin corpus
    through it once, so the Mcd cache, pattern tables, and code paths
    are hot when the first real request lands *)

val initiate_drain : t -> unit
(** same effect as a wire [Drain]: safe from a signal handler or
    another thread *)

val draining : t -> bool

val supervisor : t -> Mcsup.t option
(** the worker pool in supervised mode — chaos campaigns pick their
    kill victims here *)

val stats_text : t -> string
(** the [Stats S_text] reply: server counters plus
    {!Mcheck_api.Session} statistics *)

val stats_json : t -> string
(** the [Stats S_json] reply: the same counters as one JSON object *)

val inflight : t -> int
(** admitted check requests not yet answered (drain-under-load tests
    observe this) *)

val access_log : t -> Mctel.Accesslog.t
(** the daemon's access log (tests and drivers read counters off it) *)

val flight_recorder : t -> Mctel.Flight.t

val reopen_access_log : t -> unit
(** close and reopen the access-log file — what the SIGHUP handler in
    [bin/mcheckd] routes here for log rotation *)
