(** The daemon ≡ CLI differential oracle (Mcfuzz's sixth): every
    generated program is checked twice — through a plain sequential
    local {!Mcheck_api.Session} and over the wire against a live
    in-process daemon running the warm parallel/incremental
    configuration — and the rendered diagnostics, findings count, and
    exit code must be byte-for-byte identical.

    Plug {!check} into [Fuzz_driver.run ~extra_oracle]; failures carry
    the reproducing seed like every other Mcfuzz oracle. *)

type t
(** a running in-process daemon plus its local mirror session *)

val start :
  ?config:Mcheck_api.config ->
  ?telemetry:Server.telemetry ->
  ?supervised:bool ->
  unit ->
  t
(** spawn the daemon on a fresh temp unix socket and wait until it
    answers pings.  [config] is the daemon's (default: 2 domains,
    incremental — the warm path worth differencing); [telemetry]
    defaults to {!Server.default_telemetry} (tracing on), so the
    differential exercises the fully instrumented path.
    [supervised] (default false) routes every check through a
    {!Mcsup} worker-process pool instead — the ninth oracle: the
    supervised wire path must still be byte-identical to the CLI.
    Failures are tagged ["serve-sup"] instead of ["serve"].
    @raise Failure if the daemon cannot start *)

val server : t -> Server.t
(** the in-process daemon itself — telemetry tests read its access log
    and flight recorder directly *)

val addr : t -> Proto.addr

val check : t -> Fuzz_gen.program -> Fuzz_oracle.failure list

val stop : t -> unit
(** drain the daemon, join its thread, close the mirror session *)
