(* The daemon-vs-CLI differential: one in-process daemon (parallel +
   incremental — the interesting warm path), one plain sequential local
   session, every generated program through both.  Anything that is not
   byte-identical — diagnostic text, findings count, exit code — is an
   oracle failure carrying the reproducing seed. *)

type t = {
  srv : Server.t;
  thread : Thread.t;
  o_addr : Proto.addr;
  o_name : string;
  local : Mcheck_api.Session.t;
}

let next_id = Atomic.make 0

let fresh_addr () =
  Proto.Unix_sock
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "mcheckd-%d-%d.sock" (Unix.getpid ())
          (Atomic.fetch_and_add next_id 1)))

let start
    ?(config =
      { Mcheck_api.default_config with jobs = 2; incremental = true })
    ?(telemetry = Server.default_telemetry) ?(supervised = false) () =
  let o_addr = fresh_addr () in
  let cfg =
    { Server.default_config with Server.addr = o_addr; api = config;
      telemetry }
  in
  let cfg =
    if supervised then
      { cfg with Server.supervise = Some Server.default_supervise }
    else cfg
  in
  match Server.create cfg with
  | Error msg -> failwith ("serve_oracle: " ^ msg)
  | Ok srv ->
    let thread = Thread.create Server.run srv in
    (* create has already bound the socket; wait for the accept loop *)
    let rec wait n =
      let again () =
        if n = 0 then failwith "serve_oracle: daemon did not come up"
        else begin
          Thread.delay 0.05;
          wait (n - 1)
        end
      in
      match Client.connect o_addr with
      | Error _ -> again ()
      | Ok c -> (
        let r = Client.ping c in
        Client.close c;
        match r with Ok () -> () | Error _ -> again ())
    in
    wait 100;
    {
      srv;
      thread;
      o_addr;
      o_name = (if supervised then "serve-sup" else "serve");
      local = Mcheck_api.Session.create ~config:Mcheck_api.default_config ();
    }

let addr t = t.o_addr
let server t = t.srv

let stop t =
  (match Client.connect t.o_addr with
  | Ok c ->
    ignore (Client.drain c);
    Client.close c
  | Error _ -> Server.initiate_drain t.srv);
  Thread.join t.thread;
  Mcheck_api.Session.close t.local

let ropts =
  { Mcheck_api.ro_explain = false; ro_verbose = false; ro_quiet = false }

let plain_opts =
  {
    Proto.co_checkers = [];
    co_explain = false;
    co_verbose = false;
    co_quiet = false;
    co_strict = false;
    co_trace = "";
  }

let fail t (p : Fuzz_gen.program) detail =
  { Fuzz_oracle.f_seed = p.Fuzz_gen.seed; f_oracle = t.o_name;
    f_detail = detail }

let check t (p : Fuzz_gen.program) =
  let fail = fail t in
  let name = "fz.c" in
  (* the prelude-free body: both sides' check_buffer prepend the
     prelude themselves, exactly like a file read *)
  let contents = Pp.tunit_to_string p.Fuzz_gen.raw in
  let local = Mcheck_api.Session.check_buffer t.local ~name ~contents in
  let local_text =
    String.concat ""
      (List.map
         (Mcheck_api.render_diag ropts)
         (Mcheck_api.report_diags local))
  in
  let local_exit = Robust.exit_code local.Mcheck_api.r_outcome in
  match Client.connect t.o_addr with
  | Error e -> [ fail p ("connect: " ^ Client.err_to_string e) ]
  | Ok c -> (
    let r = Client.check_buffer c plain_opts ~name ~contents in
    Client.close c;
    match r with
    | Error e -> [ fail p ("transport: " ^ Client.err_to_string e) ]
    | Ok (Client.Refused msg) -> [ fail p ("refused: " ^ msg) ]
    | Ok (Client.Overloaded ms) ->
      [ fail p (Printf.sprintf "overloaded (retry after %dms)" ms) ]
    | Ok (Client.Checked res) ->
      let remote_text =
        String.concat ""
          (List.map (fun d -> d.Proto.d_text) res.Client.cr_diags)
      in
      List.filter_map Fun.id
        [
          (if String.equal remote_text local_text then None
           else
             Some
               (fail p
                  (Printf.sprintf
                     "daemon output differs from CLI (%d vs %d bytes)"
                     (String.length remote_text)
                     (String.length local_text))));
          (if res.Client.cr_findings = local.Mcheck_api.r_findings then None
           else
             Some
               (fail p
                  (Printf.sprintf "findings %d on the wire, %d locally"
                     res.Client.cr_findings local.Mcheck_api.r_findings)));
          (if res.Client.cr_exit = local_exit then None
           else
             Some
               (fail p
                  (Printf.sprintf "exit %d on the wire, %d locally"
                     res.Client.cr_exit local_exit)));
        ])
