(* The mcheckd client library.  Synchronous: write one request frame,
   read frames until the terminator.  All transport and protocol
   failures surface as typed [err]s — callers map them onto Robust
   exit semantics, and [with_retry] maps them onto retry policy. *)

type error_kind = E_refused | E_timeout | E_transport | E_proto
type err = { e_kind : error_kind; e_msg : string }

let err kind msg = Error { e_kind = kind; e_msg = msg }

let err_to_string e =
  let k =
    match e.e_kind with
    | E_refused -> "refused"
    | E_timeout -> "timeout"
    | E_transport -> "transport"
    | E_proto -> "protocol"
  in
  Printf.sprintf "%s (%s)" e.e_msg k

type t = { fd : Unix.file_descr; mutable open_ : bool }

let m_retries =
  Mctel.Metrics.counter ~help:"client request attempts retried"
    "mcheck_client_retries_total"

let m_timeouts =
  Mctel.Metrics.counter ~help:"client connect/read timeouts"
    "mcheck_client_timeouts_total"

let m_breaker_opens =
  Mctel.Metrics.counter ~help:"circuit breaker open transitions"
    "mcheck_client_breaker_opens_total"

let m_breaker_open =
  Mctel.Metrics.gauge ~help:"1 while any endpoint breaker is open"
    "mcheck_client_breaker_open"

(* ------------------------------------------------------------------ *)
(* Connecting                                                          *)
(* ------------------------------------------------------------------ *)

let sockaddr_of = function
  | Proto.Unix_sock path ->
    (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
  | Proto.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (ip, port))

(* a daemon that is not there answers instantly (ECONNREFUSED/ENOENT);
   one that is unreachable or wedged answers never — the non-blocking
   connect + select distinguishes the two, which is what lets retry
   policy treat them differently *)
let connect ?(connect_timeout = 10.) ?(read_timeout = 60.) addr =
  match sockaddr_of addr with
  | exception e ->
    err E_refused
      (Printf.sprintf "cannot resolve %s: %s"
         (Proto.addr_to_string addr)
         (Printexc.to_string e))
  | sock, sockaddr -> (
    let fail kind msg =
      (try Unix.close sock with _ -> ());
      err kind
        (Printf.sprintf "cannot connect to %s: %s"
           (Proto.addr_to_string addr)
           msg)
    in
    let finish () =
      (try Unix.clear_nonblock sock with _ -> ());
      (try Unix.setsockopt_float sock Unix.SO_RCVTIMEO read_timeout
       with _ -> ());
      Ok { fd = sock; open_ = true }
    in
    Unix.set_nonblock sock;
    match Unix.connect sock sockaddr with
    | () -> finish ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      -> (
      match Unix.select [] [ sock ] [] connect_timeout with
      | _, [], _ ->
        Mctel.Metrics.inc m_timeouts;
        fail E_timeout
          (Printf.sprintf "timed out after %.1fs" connect_timeout)
      | _, _ :: _, _ -> (
        match Unix.getsockopt_error sock with
        | None -> finish ()
        | Some (Unix.ECONNREFUSED | Unix.ENOENT) ->
          fail E_refused "connection refused"
        | Some e -> fail E_transport (Unix.error_message e))
      | exception Unix.Unix_error (e, _, _) ->
        fail E_transport (Unix.error_message e))
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      fail E_refused "connection refused"
    | exception Unix.Unix_error (e, _, _) ->
      fail E_transport (Unix.error_message e))

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Request / response                                                  *)
(* ------------------------------------------------------------------ *)

let send t req =
  match Proto.write_frame t.fd (Proto.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    err E_transport ("send failed: " ^ Unix.error_message e)

let read_response t =
  match Proto.read_frame t.fd with
  | Error msg -> err E_transport ("read failed: " ^ msg)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Mctel.Metrics.inc m_timeouts;
    err E_timeout "read timed out"
  | exception Unix.Unix_error (e, _, _) ->
    err E_transport ("read failed: " ^ Unix.error_message e)
  | Ok payload -> (
    match Proto.decode_response payload with
    | Error msg -> err E_proto msg
    | Ok _ as ok -> ok)

let request t req =
  match send t req with Error _ as e -> e | Ok () -> read_response t

type check_result = {
  cr_exit : int;
  cr_findings : int;
  cr_diags : Proto.diag_frame list;
}

type check_outcome =
  | Checked of check_result
  | Refused of string
  | Overloaded of int

let run_check ?(on_diag = fun _ -> ()) t req =
  match send t req with
  | Error _ as e -> e
  | Ok () ->
    let rec collect acc =
      match read_response t with
      | Error _ as e -> e
      | Ok (Proto.R_diag d) ->
        on_diag d;
        collect (d :: acc)
      | Ok (Proto.R_done { rd_exit; rd_findings; rd_diags }) ->
        let diags = List.rev acc in
        if List.length diags <> rd_diags then
          err E_proto
            (Printf.sprintf
               "stream out of sync: %d diagnostic frame(s), trailer \
                claims %d"
               (List.length diags) rd_diags)
        else
          Ok
            (Checked
               {
                 cr_exit = rd_exit;
                 cr_findings = rd_findings;
                 cr_diags = diags;
               })
      | Ok (Proto.R_error msg) -> Ok (Refused msg)
      | Ok (Proto.R_overloaded { ro_retry_after_ms }) ->
        (* a shed after diagnostics started would mean partial output
           got written — the server never does that, so treat it as a
           protocol violation rather than mask it *)
        if acc <> [] then err E_proto "overloaded after diagnostics began"
        else Ok (Overloaded ro_retry_after_ms)
      | Ok (Proto.R_ok | Proto.R_text _) ->
        err E_proto "unexpected response kind mid-check"
    in
    collect []

let check_files ?on_diag t opts paths =
  run_check ?on_diag t (Proto.Check_files (opts, paths))

let check_buffer ?on_diag t opts ~name ~contents =
  run_check ?on_diag t (Proto.Check_buffer (opts, name, contents))

let expect_ok = function
  | Error _ as e -> e
  | Ok Proto.R_ok -> Ok ()
  | Ok (Proto.R_error msg) -> err E_proto msg
  | Ok _ -> err E_proto "unexpected response kind"

let expect_text = function
  | Error _ as e -> e
  | Ok (Proto.R_text s) -> Ok s
  | Ok (Proto.R_error msg) -> err E_proto msg
  | Ok _ -> err E_proto "unexpected response kind"

let stats t = expect_text (request t (Proto.Stats Proto.S_text))
let stats_json t = expect_text (request t (Proto.Stats Proto.S_json))
let metrics t fmt = expect_text (request t (Proto.Metrics fmt))
let flight t = expect_text (request t Proto.Flight)
let ping t = expect_ok (request t Proto.Ping)
let drain t = expect_ok (request t Proto.Drain)
let reload t = expect_ok (request t Proto.Reload)

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-endpoint, process-wide: consecutive transport failures open the
   breaker; while open, calls fail fast instead of stacking connect
   timeouts against a dead daemon.  After the cooldown one half-open
   probe is allowed through and its outcome decides. *)
module Breaker = struct
  type state = {
    mutable fails : int;
    mutable opened_until : float;  (* 0. = closed *)
    mutable probing : bool;
  }

  let mu = Mutex.create ()
  let table : (string, state) Hashtbl.t = Hashtbl.create 8
  let threshold = ref 5
  let cooldown_ms = ref 2000

  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

  let state_of key =
    match Hashtbl.find_opt table key with
    | Some s -> s
    | None ->
      let s = { fails = 0; opened_until = 0.; probing = false } in
      Hashtbl.add table key s;
      s

  let any_open () =
    let now = Unix.gettimeofday () in
    Hashtbl.fold (fun _ s acc -> acc || s.opened_until > now) table false

  let sync_gauge () =
    Mctel.Metrics.set m_breaker_open (if any_open () then 1 else 0)

  (* [`Pass] = go ahead (closed, or the half-open probe slot);
     [`Fail_fast ms] = open, come back in ms *)
  let admit key =
    locked (fun () ->
        let s = state_of key in
        let now = Unix.gettimeofday () in
        if s.opened_until = 0. then `Pass
        else if now >= s.opened_until then
          if s.probing then
            `Fail_fast !cooldown_ms (* someone else holds the probe slot *)
          else begin
            s.probing <- true;
            `Pass
          end
        else `Fail_fast (int_of_float ((s.opened_until -. now) *. 1000.)))

  let on_success key =
    locked (fun () ->
        let s = state_of key in
        s.fails <- 0;
        s.opened_until <- 0.;
        s.probing <- false;
        sync_gauge ())

  let on_failure key =
    locked (fun () ->
        let s = state_of key in
        s.fails <- s.fails + 1;
        s.probing <- false;
        if s.fails >= !threshold then begin
          if s.opened_until = 0. then Mctel.Metrics.inc m_breaker_opens;
          s.opened_until <-
            Unix.gettimeofday () +. (float_of_int !cooldown_ms /. 1000.)
        end;
        sync_gauge ())

  let reset () =
    locked (fun () ->
        Hashtbl.reset table;
        sync_gauge ())
end

let set_breaker ?threshold ?cooldown_ms () =
  Option.iter (fun v -> Breaker.threshold := v) threshold;
  Option.iter (fun v -> Breaker.cooldown_ms := v) cooldown_ms

let breaker_state addr =
  let key = Proto.addr_to_string addr in
  Breaker.locked (fun () ->
      let s = Breaker.state_of key in
      if s.Breaker.opened_until > Unix.gettimeofday () then `Open else `Closed)

let breaker_reset () = Breaker.reset ()

(* ------------------------------------------------------------------ *)
(* Retry with backoff                                                  *)
(* ------------------------------------------------------------------ *)

let rng = lazy (Random.State.make_self_init ())
let rng_mu = Mutex.create ()

let jitter ms =
  Mutex.lock rng_mu;
  let j = Random.State.int (Lazy.force rng) (max 1 (ms / 2)) in
  Mutex.unlock rng_mu;
  (ms / 2) + j

let retryable = function
  | E_refused | E_timeout | E_transport -> true
  | E_proto -> false

let with_retry ?(attempts = 4) ?(base_backoff_ms = 50) ?connect_timeout
    ?read_timeout ?(classify = fun _ -> None) addr f =
  let key = Proto.addr_to_string addr in
  let sleep_ms ms = if ms > 0 then Thread.delay (float_of_int ms /. 1000.) in
  let rec go i last =
    if i >= attempts then last
    else begin
      if i > 0 then Mctel.Metrics.inc m_retries;
      let backoff () = jitter (base_backoff_ms * (1 lsl i)) in
      let attempt_result =
        match Breaker.admit key with
        | `Fail_fast ms ->
          `Failed
            ( { e_kind = E_refused;
                e_msg =
                  Printf.sprintf "circuit open for %s (retry in ~%dms)" key
                    ms
              },
              ms )
        | `Pass -> (
          match connect ?connect_timeout ?read_timeout addr with
          | Error e ->
            Breaker.on_failure key;
            `Failed (e, 0)
          | Ok c -> (
            let r =
              Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
            in
            match r with
            | Ok v -> (
              Breaker.on_success key;
              match classify v with
              | None -> `Done (Ok v)
              | Some retry_after_ms ->
                (* the daemon is alive but shedding: honour its floor *)
                `Shed (Ok v, retry_after_ms))
            | Error e ->
              if retryable e.e_kind then Breaker.on_failure key
              else Breaker.on_success key;
              if retryable e.e_kind then `Failed (e, 0)
              else `Done (Error e)))
      in
      match attempt_result with
      | `Done r -> r
      | `Shed (r, floor_ms) ->
        if i + 1 >= attempts then r
        else begin
          sleep_ms (max floor_ms (backoff ()));
          go (i + 1) r
        end
      | `Failed (e, floor_ms) ->
        if i + 1 >= attempts then Error e
        else begin
          sleep_ms (max floor_ms (backoff ()));
          go (i + 1) (Error e)
        end
    end
  in
  go 0 (err E_refused "no attempts made")
