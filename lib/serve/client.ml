(* The mcheckd client library.  Synchronous: write one request frame,
   read frames until the terminator.  All transport and protocol
   failures surface as [Error _] — callers map them onto Robust exit
   semantics. *)

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect addr =
  let sock, sockaddr =
    match addr with
    | Proto.Unix_sock path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Proto.Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (ip, port))
  in
  match Unix.connect sock sockaddr with
  | () -> Ok { fd = sock; open_ = true }
  | exception e ->
    (try Unix.close sock with _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s"
         (Proto.addr_to_string addr)
         (match e with
         | Unix.Unix_error (err, _, _) -> Unix.error_message err
         | e -> Printexc.to_string e))

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with _ -> ()
  end

let send t req =
  match Proto.write_frame t.fd (Proto.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
    Error ("send failed: " ^ Unix.error_message err)

let read_response t =
  match Proto.read_frame t.fd with
  | Error msg -> Error ("read failed: " ^ msg)
  | exception Unix.Unix_error (err, _, _) ->
    Error ("read failed: " ^ Unix.error_message err)
  | Ok payload -> Proto.decode_response payload

let request t req =
  match send t req with Error _ as e -> e | Ok () -> read_response t

type check_result = {
  cr_exit : int;
  cr_findings : int;
  cr_diags : Proto.diag_frame list;
}

type check_outcome = Checked of check_result | Refused of string

let run_check ?(on_diag = fun _ -> ()) t req =
  match send t req with
  | Error _ as e -> e
  | Ok () ->
    let rec collect acc =
      match read_response t with
      | Error _ as e -> e
      | Ok (Proto.R_diag d) ->
        on_diag d;
        collect (d :: acc)
      | Ok (Proto.R_done { rd_exit; rd_findings; rd_diags }) ->
        let diags = List.rev acc in
        if List.length diags <> rd_diags then
          Error
            (Printf.sprintf
               "stream out of sync: %d diagnostic frame(s), trailer \
                claims %d"
               (List.length diags) rd_diags)
        else
          Ok
            (Checked
               {
                 cr_exit = rd_exit;
                 cr_findings = rd_findings;
                 cr_diags = diags;
               })
      | Ok (Proto.R_error msg) -> Ok (Refused msg)
      | Ok (Proto.R_ok | Proto.R_text _) ->
        Error "unexpected response kind mid-check"
    in
    collect []

let check_files ?on_diag t opts paths =
  run_check ?on_diag t (Proto.Check_files (opts, paths))

let check_buffer ?on_diag t opts ~name ~contents =
  run_check ?on_diag t (Proto.Check_buffer (opts, name, contents))

let expect_ok = function
  | Error _ as e -> e
  | Ok Proto.R_ok -> Ok ()
  | Ok (Proto.R_error msg) -> Error msg
  | Ok _ -> Error "unexpected response kind"

let expect_text = function
  | Error _ as e -> e
  | Ok (Proto.R_text s) -> Ok s
  | Ok (Proto.R_error msg) -> Error msg
  | Ok _ -> Error "unexpected response kind"

let stats t = expect_text (request t (Proto.Stats Proto.S_text))
let stats_json t = expect_text (request t (Proto.Stats Proto.S_json))
let metrics t fmt = expect_text (request t (Proto.Metrics fmt))
let flight t = expect_text (request t Proto.Flight)
let ping t = expect_ok (request t Proto.Ping)
let drain t = expect_ok (request t Proto.Drain)
let reload t = expect_ok (request t Proto.Reload)
