(** Running metal checkers: compiled tables or the interpreter.

    A {!t} is a loaded metal checker in either back end.  [Compiled]
    carries the codegen tables lowered onto an {!Engine.table} — an
    [int Sm.t] whose per-state rule lists are precomputed arrays of
    single-branch rules and whose root-dispatch index is prebuilt once
    per machine ({!Engine.prebuild}) instead of once per checked
    function.  Both back ends run the same engine traversal over the
    same {!Prep.t} events with the same action semantics
    ([Sm.err ~checker:name] then the outcome, exactly
    {!Mdsl.to_sm}'s), and compiled state ids render back to their metal
    names, so diagnostics — messages, locations, witnesses — are
    byte-identical; the seventh Mcfuzz oracle holds the two to that. *)

type compiled = { c_gen : Mcodegen.t; c_table : Engine.table }

type t = Interp of string Sm.t | Compiled of compiled

(** which back end {!load} builds *)
type mode = Mode_compiled | Mode_interp

let name = function
  | Interp sm -> sm.Sm.name
  | Compiled c -> c.c_gen.Mcodegen.g_name

(* ------------------------------------------------------------------ *)
(* Lowering tables onto the engine                                     *)
(* ------------------------------------------------------------------ *)

let sm_of_tables (g : Mcodegen.t) : int Sm.t =
  let msgs = g.Mcodegen.g_msgs in
  let branch_rule (i : int) : int Sm.rule =
    let next = g.Mcodegen.g_next.(i) in
    let err =
      let e = g.Mcodegen.g_err.(i) in
      if e >= 0 then Some msgs.(e) else None
    in
    Sm.rule g.Mcodegen.g_pats.(i) (fun ctx ->
        (match err with
        | Some msg -> Sm.err ~checker:g.Mcodegen.g_name ctx "%s" msg
        | None -> ());
        if next = Mcodegen.stay then Sm.Stay
        else if next = Mcodegen.stop then Sm.Stop
        else Sm.Goto next)
  in
  (* per-state rule lists, precomputed once: state rules' branches then
     the [all] branches, already in priority order in the tables *)
  let per_state =
    Array.map
      (fun ids -> List.map branch_rule (Array.to_list ids))
      g.Mcodegen.g_state_branches
  in
  Sm.make ~name:g.Mcodegen.g_name
    ~start:(fun _ -> Some g.Mcodegen.g_start)
    ~rules:(fun s -> per_state.(s))
    ~state_to_string:(fun s -> g.Mcodegen.g_states.(s))
    ()

let of_tables (g : Mcodegen.t) : t =
  Compiled
    {
      c_gen = g;
      c_table =
        Engine.prebuild
          ~n_states:(Array.length g.Mcodegen.g_states)
          (sm_of_tables g);
    }

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let compile ?file (src : string) : (t, Mir.error list) result =
  match Mparse.parse ?file src with
  | exception Mdsl.Parse_error (e_msg, e_loc) ->
    Error [ { Mir.e_class = "parse error"; e_msg; e_loc } ]
  | surface -> (
    match Mir.of_surface surface with
    | Error es -> Error es
    | Ok ir -> Ok (of_tables (Mcodegen.of_ir ir)))

let interp ?file (src : string) : (t, Mir.error list) result =
  match Mdsl.load ?file src with
  | sm -> Ok (Interp sm)
  | exception Mdsl.Parse_error (e_msg, e_loc) ->
    Error [ { Mir.e_class = "parse error"; e_msg; e_loc } ]

let load ~mode ?file (src : string) : (t, Mir.error list) result =
  match mode with
  | Mode_compiled -> compile ?file src
  | Mode_interp -> interp ?file src

let load_file ~mode (path : string) : (t, Mir.error list) result =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load ~mode ~file:path src

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let check_prep (t : t) (prep : Prep.t) : Diag.t list =
  match t with
  | Interp sm -> Engine.check_prep sm prep
  | Compiled c -> Engine.check_prep_table c.c_table prep

let check (t : t) (target : Engine.target) : Diag.t list =
  match t with
  | Interp sm -> Engine.check sm target
  | Compiled _ -> (
    let check_func f = check_prep t (Prep.build f) in
    match target with
    | `Func f -> check_func f
    | `Unit tu -> List.concat_map check_func (Ast.functions tu)
    | `Program tus ->
      List.concat_map
        (fun tu -> List.concat_map check_func (Ast.functions tu))
        tus)

(** Run several machines over a program, building one {!Prep.t} per
    function and sharing it across all of them — the metal analogue of
    [Registry.run_all_fused].  Results are per machine in input order,
    each identical to what [check m (`Program tus)] would return (the
    engine normalizes per function, so sharing preps cannot change the
    output). *)
let check_program_fused (ms : t list) (tus : Ast.tunit list) :
    Diag.t list list =
  match ms with
  | [] -> []
  | _ ->
    let n = List.length ms in
    let accs = Array.make n [] in
    List.iter
      (fun tu ->
        List.iter
          (fun f ->
            let prep = Prep.build f in
            List.iteri
              (fun i m -> accs.(i) <- check_prep m prep :: accs.(i))
              ms)
          (Ast.functions tu))
      tus;
    Array.to_list (Array.map (fun l -> List.concat (List.rev l)) accs)
