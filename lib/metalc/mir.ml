(** The metal compiler's typed intermediate form.

    {!of_surface} lowers the located surface AST into resolved form —
    state names become dense integer ids, named patterns are inlined,
    pattern code is parsed into {!Pattern.t} branches with their
    wildcard declarations — and rejects bad programs with located,
    classified diagnostics instead of leaving them to fail (or worse,
    silently misbehave) at checking time.  The interpreter tolerates two
    of the defects found here: a transition to an undefined state simply
    never fires its rules, and a rule shadowed by an identical earlier
    pattern is dead weight.  The compiler makes both errors.

    Error classes ([e_class]):
    - [parse error] — a syntax error from the shared front end
    - [bad-pattern] — pattern code that does not parse, or a reference
      to an unknown named pattern
    - [bad-binding] — an unknown wildcard kind, a conflicting wildcard
      redeclaration, a duplicate [pat] name, or a wildcard applied as a
      function (binding-arity misuse: the interpreter would silently
      bind the callee)
    - [bad-action] — an action that is not [err("...")]
    - [unknown-state] — a transition to a state never defined
    - [duplicate-state] — a state section defined twice (the second is
      silently dead under the interpreter)
    - [unreachable-state] — a state no chain of transitions reaches
    - [overlapping-rules] — a later rule's pattern equal (modulo
      wildcard renaming) to an earlier one's in the same scope with a
      different effect, so it can never fire
    - [duplicate-transition] — same, with the identical effect
    - [no-states] — a machine with no states and no [all] rules *)

type error = { e_class : string; e_msg : string; e_loc : Loc.t }

let render_error (e : error) : string =
  if Loc.is_none e.e_loc then
    Printf.sprintf "metal %s: %s" e.e_class e.e_msg
  else
    Printf.sprintf "%s: metal %s: %s" (Loc.to_string e.e_loc) e.e_class
      e.e_msg

(** a rule's transition, with the state resolved *)
type target = Stay | Goto of int | Stop

type branch = { b_expr : Ast.expr; b_decls : Pattern.decl list }
(** one [Alt] branch of a rule's pattern — the granularity the
    transition tables work at *)

type rule = {
  r_branches : branch list;  (** in match order *)
  r_target : target;
  r_err : string option;
  r_loc : Loc.t;
}

type t = {
  ir_name : string;
  ir_states : string array;  (** state names; the index is the id *)
  ir_start : int;
  ir_rules : rule list array;  (** per state, in declaration order *)
  ir_all : rule list;
}

(* ------------------------------------------------------------------ *)
(* Pattern equality modulo wildcard renaming                           *)
(* ------------------------------------------------------------------ *)

(* Two branches are alpha-equal when their expressions coincide up to a
   kind-preserving bijection between their wildcard names: such patterns
   match exactly the same events, so in one scope the later of the two
   can never fire. *)
let branch_alpha_equal (b1 : branch) (b2 : branch) : bool =
  let fwd : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let bwd : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let wildcard decls n = List.assoc_opt n decls in
  let rec eq (p : Ast.expr) (q : Ast.expr) : bool =
    match (p.Ast.edesc, q.Ast.edesc) with
    | Ast.Ident a, Ast.Ident b -> (
      match (wildcard b1.b_decls a, wildcard b2.b_decls b) with
      | Some ka, Some kb -> (
        ka = kb
        &&
        match (Hashtbl.find_opt fwd a, Hashtbl.find_opt bwd b) with
        | None, None ->
          Hashtbl.add fwd a b;
          Hashtbl.add bwd b a;
          true
        | Some b', Some a' -> String.equal b' b && String.equal a' a
        | _ -> false)
      | None, None -> String.equal a b
      | _ -> false)
    | Ast.Ident a, _ when wildcard b1.b_decls a <> None -> false
    | _, Ast.Ident b when wildcard b2.b_decls b <> None -> false
    | Ast.Int_lit (a, _), Ast.Int_lit (c, _) -> Int64.equal a c
    | Ast.Float_lit (a, _), Ast.Float_lit (c, _) -> Float.equal a c
    | Ast.Str_lit a, Ast.Str_lit c -> String.equal a c
    | Ast.Char_lit a, Ast.Char_lit c -> Char.equal a c
    | Ast.Call (f, args), Ast.Call (g, brgs) ->
      List.length args = List.length brgs
      && eq f g
      && List.for_all2 eq args brgs
    | Ast.Unop (o, a), Ast.Unop (o', a') -> o = o' && eq a a'
    | Ast.Binop (o, a, b), Ast.Binop (o', a', b') ->
      o = o' && eq a a' && eq b b'
    | Ast.Assign (a, b), Ast.Assign (a', b') -> eq a a' && eq b b'
    | Ast.Op_assign (o, a, b), Ast.Op_assign (o', a', b') ->
      o = o' && eq a a' && eq b b'
    | Ast.Cond (a, b, c), Ast.Cond (a', b', c') ->
      eq a a' && eq b b' && eq c c'
    | Ast.Cast (t, a), Ast.Cast (t', a') -> Ctype.equal t t' && eq a a'
    | Ast.Field (a, f), Ast.Field (a', f') -> String.equal f f' && eq a a'
    | Ast.Arrow (a, f), Ast.Arrow (a', f') -> String.equal f f' && eq a a'
    | Ast.Index (a, b), Ast.Index (a', b') -> eq a a' && eq b b'
    | Ast.Comma (a, b), Ast.Comma (a', b') -> eq a a' && eq b b'
    | Ast.Sizeof_expr a, Ast.Sizeof_expr a' -> eq a a'
    | Ast.Sizeof_type t, Ast.Sizeof_type t' -> Ctype.equal t t'
    | _ -> false
  in
  eq b1.b_expr b2.b_expr

(* ------------------------------------------------------------------ *)
(* Lowering with semantic analysis                                     *)
(* ------------------------------------------------------------------ *)

let of_surface (s : Mparse.t) : (t, error list) result =
  let errors = ref [] in
  let err e_class e_loc fmt =
    Printf.ksprintf
      (fun e_msg -> errors := { e_class; e_msg; e_loc } :: !errors)
      fmt
  in
  (* state table: first occurrence wins an id, duplicates are errors *)
  let surface_states =
    List.filter_map
      (function
        | Mparse.I_state st when st.Mparse.s_name <> "all" -> Some st
        | _ -> None)
      s.Mparse.p_items
  in
  let has_all =
    List.exists
      (function
        | Mparse.I_state { Mparse.s_name = "all"; _ } -> true
        | _ -> false)
      s.Mparse.p_items
  in
  let state_names = ref [] in
  List.iter
    (fun (st : Mparse.state) ->
      if List.mem_assoc st.Mparse.s_name !state_names then
        err "duplicate-state" st.Mparse.s_name_loc
          "state %s is defined twice; the second definition would be \
           silently ignored"
          st.Mparse.s_name
      else
        state_names :=
          (st.Mparse.s_name, st.Mparse.s_name_loc) :: !state_names)
    surface_states;
  let state_names = List.rev !state_names in
  (* a machine of only [all:] rules gets the interpreter's vacuous
     start state; one with nothing at all is rejected *)
  let state_names =
    if state_names = [] && has_all then [ ("start", s.Mparse.p_name_loc) ]
    else state_names
  in
  if state_names = [] then
    err "no-states" s.Mparse.p_name_loc "%s defines no states"
      s.Mparse.p_name;
  let ir_states = Array.of_list (List.map fst state_names) in
  let state_locs = Array.of_list (List.map snd state_names) in
  let state_id name =
    let n = Array.length ir_states in
    let rec go i =
      if i >= n then None
      else if String.equal ir_states.(i) name then Some i
      else go (i + 1)
    in
    go 0
  in
  (* the incremental environments, exactly as the interpreter builds
     them: a pattern only sees the decls and pats above it *)
  let decls : Pattern.decl list ref = ref [] in
  let named : (string * branch list) list ref = ref [] in
  let kind_of d =
    match Mdsl.kind_of_string d.Mparse.d_kind with
    | k -> Some k
    | exception Mdsl.Parse_error (msg, _) ->
      err "bad-binding" d.Mparse.d_kind_loc "%s" msg;
      None
  in
  (* binding-arity misuse: a declared wildcard in callee position would
     make the interpreter bind the *callee*, which is never what the
     spec author meant *)
  let rec check_arity ~ds ~loc (e : Ast.expr) =
    (match e.Ast.edesc with
    | Ast.Call ({ Ast.edesc = Ast.Ident f; _ }, args)
      when List.mem_assoc f ds ->
      err "bad-binding" loc
        "wildcard %s is applied to %d argument%s; a wildcard matches an \
         expression, not a function name"
        f (List.length args)
        (if List.length args = 1 then "" else "s")
    | _ -> ());
    match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Ident _ | Ast.Sizeof_type _ ->
      ()
    | Ast.Call (f, args) ->
      check_arity ~ds ~loc f;
      List.iter (check_arity ~ds ~loc) args
    | Ast.Unop (_, a)
    | Ast.Cast (_, a)
    | Ast.Field (a, _)
    | Ast.Arrow (a, _)
    | Ast.Sizeof_expr a ->
      check_arity ~ds ~loc a
    | Ast.Binop (_, a, b)
    | Ast.Assign (a, b)
    | Ast.Op_assign (_, a, b)
    | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      check_arity ~ds ~loc a;
      check_arity ~ds ~loc b
    | Ast.Cond (a, b, c) ->
      check_arity ~ds ~loc a;
      check_arity ~ds ~loc b;
      check_arity ~ds ~loc c
  in
  let rec resolve_pattern (p : Mparse.pattern) : branch list =
    match p with
    | Mparse.P_alt ps -> List.concat_map resolve_pattern ps
    | Mparse.P_name (name, loc) -> (
      match List.assoc_opt name !named with
      | Some bs -> bs
      | None ->
        err "bad-pattern" loc "unknown pattern name %s" name;
        [])
    | Mparse.P_code (code, loc) -> (
      let code = String.trim code in
      let code =
        if String.length code > 0 && code.[String.length code - 1] = ';'
        then String.sub code 0 (String.length code - 1)
        else code
      in
      let ds = !decls in
      match Pattern.expr_located ~decls:ds code with
      | Error (msg, line, col) ->
        err "bad-pattern" (Mdsl.rebase_snippet_pos loc ~line ~col) "%s" msg;
        []
      | Ok pat ->
        List.map
          (fun (b_expr, b_decls) ->
            check_arity ~ds:b_decls ~loc b_expr;
            { b_expr; b_decls })
          (Pattern.branches pat))
  in
  let resolve_rule (r : Mparse.rule) : rule =
    let r_branches = resolve_pattern r.Mparse.r_pattern in
    let r_target =
      match r.Mparse.r_target.Mparse.t_goto with
      | None -> Stay
      | Some ("stop", _) -> Stop
      | Some (name, loc) -> (
        match state_id name with
        | Some id -> Goto id
        | None ->
          err "unknown-state" loc
            "transition to unknown state %s; under the interpreter its \
             rules would silently never fire"
            name;
          Stay)
    in
    let r_err =
      match r.Mparse.r_target.Mparse.t_action with
      | None -> None
      | Some (code, loc) -> (
        match Mdsl.parse_action code with
        | a -> a
        | exception Mdsl.Parse_error (msg, _) ->
          err "bad-action" loc "%s" msg;
          None)
    in
    { r_branches; r_target; r_err; r_loc = r.Mparse.r_loc }
  in
  let ir_rules = Array.make (Array.length ir_states) [] in
  let seen_state : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let ir_all = ref [] in
  List.iter
    (function
      | Mparse.I_decl ds ->
        List.iter
          (fun (d : Mparse.decl) ->
            match kind_of d with
            | None -> ()
            | Some kind -> (
              match List.assoc_opt d.Mparse.d_name !decls with
              | Some prior when prior <> kind ->
                err "bad-binding" d.Mparse.d_name_loc
                  "wildcard %s redeclared with a different kind"
                  d.Mparse.d_name
              | Some _ -> ()
              | None -> decls := !decls @ [ (d.Mparse.d_name, kind) ]))
          ds
      | Mparse.I_pat np ->
        let bs = resolve_pattern np.Mparse.n_pattern in
        if List.mem_assoc np.Mparse.n_name !named then
          err "bad-binding" np.Mparse.n_name_loc
            "pattern %s is defined twice" np.Mparse.n_name
        else named := (np.Mparse.n_name, bs) :: !named
      | Mparse.I_state st ->
        let rules = List.map resolve_rule st.Mparse.s_rules in
        if String.equal st.Mparse.s_name "all" then
          (* several all: sections concatenate, like the interpreter *)
          ir_all := !ir_all @ rules
        else if not (Hashtbl.mem seen_state st.Mparse.s_name) then begin
          Hashtbl.replace seen_state st.Mparse.s_name ();
          match state_id st.Mparse.s_name with
          | Some id -> ir_rules.(id) <- rules
          | None -> ()
        end)
    s.Mparse.p_items;
  let ir_all = !ir_all in
  (* dead rules: within one scope (a state's own rule list, or the [all]
     list — not across the two, since a state rule shadowing an [all]
     rule is the legitimate override idiom), a branch alpha-equal to an
     earlier one can never fire *)
  let effect_of (r : rule) = (r.r_target, r.r_err) in
  let check_scope (scope : string) (rules : rule list) =
    let earlier : (branch * rule) list ref = ref [] in
    List.iter
      (fun r ->
        List.iter
          (fun b ->
            (match
               List.find_opt
                 (fun (b', _) -> branch_alpha_equal b' b)
                 !earlier
             with
            | Some (_, r') when r' != r ->
              let cls, how =
                if effect_of r' = effect_of r then
                  ("duplicate-transition", "the same effect")
                else ("overlapping-rules", "a different effect")
              in
              err cls r.r_loc
                "rule in %s repeats an earlier rule's pattern %s (with \
                 %s); it can never fire"
                scope
                (Pp.expr_to_string b.b_expr)
                how
            | Some _ ->
              (* duplicate branch within one rule's alternation *)
              err "duplicate-transition" r.r_loc
                "pattern %s is repeated within one rule's alternation"
                (Pp.expr_to_string b.b_expr)
            | None -> ());
            earlier := !earlier @ [ (b, r) ])
          r.r_branches)
      rules
  in
  Array.iteri
    (fun id rules ->
      check_scope (Printf.sprintf "state %s" ir_states.(id)) rules)
    ir_rules;
  check_scope "all" ir_all;
  (* reachability: from the start state through rule transitions; [all]
     targets are reachable from every state *)
  let n = Array.length ir_states in
  if n > 0 then begin
    let reachable = Array.make n false in
    let rec mark id =
      if not reachable.(id) then begin
        reachable.(id) <- true;
        List.iter
          (fun r -> match r.r_target with Goto t -> mark t | _ -> ())
          (ir_rules.(id) @ ir_all)
      end
    in
    mark 0;
    Array.iteri
      (fun id ok ->
        if not ok then
          err "unreachable-state" state_locs.(id)
            "state %s is unreachable from the start state" ir_states.(id))
      reachable
  end;
  match !errors with
  | [] ->
    Ok
      {
        ir_name = s.Mparse.p_name;
        ir_states;
        ir_start = 0;
        ir_rules;
        ir_all;
      }
  | es ->
    Error
      (List.stable_sort
         (fun a b -> Loc.compare a.e_loc b.e_loc)
         (List.rev es))
