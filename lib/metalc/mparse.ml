(** The metal compiler's front end: a located surface AST.

    Built on the same offset-tracked lexer and phase-1 splitter the
    interpreter uses ({!Mdsl.tokenize} / {!Mdsl.split_source}), so both
    front ends agree byte-for-byte on the concrete syntax and on where
    every token sits.  Unlike the interpreter's parser, nothing is
    resolved here: named-pattern references stay names, code blocks stay
    unparsed text, and every construct carries the location of its first
    token — the raw material {!Mir.of_surface} needs to report located,
    classified diagnostics instead of failing mid-parse. *)

(** an unresolved pattern *)
type pattern =
  | P_code of string * Loc.t
      (** a [{ code }] block; the location is its first content char *)
  | P_name of string * Loc.t  (** a reference to a [pat] by name *)
  | P_alt of pattern list  (** ordered disjunction *)

type target = {
  t_goto : (string * Loc.t) option;  (** the optional state name *)
  t_action : (string * Loc.t) option;
      (** the optional action block, unparsed *)
}

type rule = {
  r_pattern : pattern;
  r_target : target;
  r_loc : Loc.t;  (** where the rule's pattern starts *)
}

type decl = {
  d_name : string;
  d_name_loc : Loc.t;
  d_kind : string;  (** the raw [decl { kind }] keyword, unvalidated *)
  d_kind_loc : Loc.t;
}

type named_pat = { n_name : string; n_name_loc : Loc.t; n_pattern : pattern }

type state = {
  s_name : string;  (** may be ["all"] *)
  s_name_loc : Loc.t;
  s_rules : rule list;
}

(** one top-level statement, in document order — order matters because
    the interpreter resolves wildcards and named patterns incrementally
    (a [pat] only sees the [decl]s and [pat]s above it), and the
    compiler must agree *)
type item = I_decl of decl list | I_pat of named_pat | I_state of state

type t = { p_name : string; p_name_loc : Loc.t; p_items : item list }

(* ------------------------------------------------------------------ *)
(* The parser: the interpreter's grammar, locations kept               *)
(* ------------------------------------------------------------------ *)

type pstate = {
  mutable toks : (Mdsl.token * int) list;
  loc : int -> Loc.t;
}

let peek p = match p.toks with (t, _) :: _ -> t | [] -> Mdsl.Eof
let cur_loc p = match p.toks with (_, off) :: _ -> p.loc off | [] -> Loc.none
let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let fail p msg = raise (Mdsl.Parse_error (msg, cur_loc p))

let expect p tok what =
  if peek p = tok then advance p
  else fail p (Printf.sprintf "expected %s" what)

let expect_ident p what =
  match peek p with
  | Mdsl.Ident s ->
    let loc = cur_loc p in
    advance p;
    (s, loc)
  | _ -> fail p (Printf.sprintf "expected %s" what)

let rec parse_pattern_alt p : pattern =
  let one () =
    match peek p with
    | Mdsl.Code code ->
      let loc = cur_loc p in
      advance p;
      P_code (code, loc)
    | Mdsl.Ident name ->
      let loc = cur_loc p in
      advance p;
      P_name (name, loc)
    | _ -> fail p "expected a pattern ({ code } or a name)"
  in
  let first = one () in
  if peek p = Mdsl.Bar then begin
    advance p;
    match parse_pattern_alt p with
    | P_alt rest -> P_alt (first :: rest)
    | other -> P_alt [ first; other ]
  end
  else first

let parse_target p : target =
  let t_goto =
    match peek p with
    | Mdsl.Ident s ->
      let loc = cur_loc p in
      advance p;
      Some (s, loc)
    | _ -> None
  in
  let t_action =
    match peek p with
    | Mdsl.Code code ->
      let loc = cur_loc p in
      advance p;
      Some (code, loc)
    | _ -> None
  in
  if t_goto = None && t_action = None then
    fail p "==> needs a state, an action, or both";
  { t_goto; t_action }

let parse_rules p : rule list =
  let rec rules acc =
    let r_loc = cur_loc p in
    let r_pattern = parse_pattern_alt p in
    expect p Mdsl.Arrow "'==>'";
    let r_target = parse_target p in
    let acc = { r_pattern; r_target; r_loc } :: acc in
    if peek p = Mdsl.Bar then begin
      advance p;
      rules acc
    end
    else begin
      expect p Mdsl.Semi "';' after the state's rules";
      List.rev acc
    end
  in
  rules []

(** Parse a whole metal source into the located surface form.
    @raise Mdsl.Parse_error on syntax errors — the same errors, at the
    same locations, the interpreter's parser reports *)
let parse ?(file = "<metal>") (src : string) : t =
  let s = Mdsl.split_source ~file src in
  let p =
    { toks = Mdsl.tokenize ~loc:s.Mdsl.src_loc s.Mdsl.src_body;
      loc = s.Mdsl.src_loc }
  in
  let items = ref [] in
  let rec toplevel () =
    match peek p with
    | Mdsl.Eof -> ()
    | Mdsl.Ident "decl" ->
      advance p;
      let d_kind, d_kind_loc =
        match peek p with
        | Mdsl.Code k ->
          let loc = cur_loc p in
          advance p;
          (String.trim k, loc)
        | _ -> fail p "decl needs a '{ kind }'"
      in
      let decls = ref [] in
      let rec names () =
        let d_name, d_name_loc = expect_ident p "a wildcard name" in
        decls := { d_name; d_name_loc; d_kind; d_kind_loc } :: !decls;
        if peek p = Mdsl.Comma then begin
          advance p;
          names ()
        end
      in
      names ();
      expect p Mdsl.Semi "';' after decl";
      items := I_decl (List.rev !decls) :: !items;
      toplevel ()
    | Mdsl.Ident "pat" ->
      advance p;
      let n_name, n_name_loc = expect_ident p "a pattern name" in
      expect p Mdsl.Equals "'='";
      let n_pattern = parse_pattern_alt p in
      expect p Mdsl.Semi "';' after pat";
      items := I_pat { n_name; n_name_loc; n_pattern } :: !items;
      toplevel ()
    | Mdsl.Ident s_name ->
      let s_name_loc = cur_loc p in
      advance p;
      expect p Mdsl.Colon "':' after the state name";
      let s_rules = parse_rules p in
      items := I_state { s_name; s_name_loc; s_rules } :: !items;
      toplevel ()
    | _ -> fail p "expected decl, pat, or a state definition"
  in
  toplevel ();
  { p_name = s.Mdsl.src_name;
    p_name_loc = s.Mdsl.src_name_loc;
    p_items = List.rev !items }
