(** Table codegen: lowering the IR into flat integer arrays.

    A compiled machine is pure data — dense arrays indexed by interned
    ids, the paper's "metal extensions are compiled, not interpreted"
    made literal:

    - states are ids [0 .. n-1] ({!t.g_states} maps back to names);
    - event classes are interned: classes [0 .. Pattern.n_tags-1] are
      the head-constructor tags of {!Pattern.tag_of_expr}, and each call
      name any pattern roots on gets a class of its own above them;
    - every pattern branch (one [Alt] arm of one rule) has an id, with
      its next-state ({!t.g_next}: {!stay} / {!stop} / a state id) and
      its action ({!t.g_err}: an interned message id or -1) in parallel
      arrays;
    - {!t.g_rows} is the dispatch table proper: for (state, class), the
      branch ids an event of that class must be offered to, in priority
      order — the state's own rules' branches first, then the [all]
      rules', exactly the interpreter's [rules state @ all].

    Splitting a rule's alternation across per-class rows preserves
    first-match semantics because root classification is conservative
    ({!Pattern.root_shapes}): a branch missing from an event's row
    cannot match that event, so skipping it never changes which branch
    fires first.  Every array is built in deterministic (declaration /
    first-encounter) order, so codegen is reproducible byte-for-byte —
    pinned by the {!to_string} round-trip test. *)

type t = {
  g_name : string;
  g_states : string array;
  g_start : int;
  g_calls : string array;
      (** interned call names; name [i] is event class [n_tags + i] *)
  g_n_classes : int;
  g_pats : Pattern.t array;  (** per branch: the single-branch pattern *)
  g_decls : Pattern.decl list array;  (** per branch: its wildcards *)
  g_next : int array;  (** per branch: {!stay}, {!stop}, or a state id *)
  g_err : int array;  (** per branch: message id, or -1 for no action *)
  g_msgs : string array;
  g_state_branches : int array array;
      (** per state: all its branch ids in priority order *)
  g_rows : int array array;
      (** dispatch: [(state * g_n_classes) + class] → branch ids *)
}

let stay = -1
let stop = -2

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let of_ir (ir : Mir.t) : t =
  let n_states = Array.length ir.Mir.ir_states in
  (* enumerate branches: each state's own rules first (so their ids are
     dense per state), then the shared [all] rules once *)
  let pats = ref [] in
  let decls = ref [] in
  let nexts = ref [] in
  let errs = ref [] in
  let n_branches = ref 0 in
  let msgs = ref [] in
  let n_msgs = ref 0 in
  let msg_id m =
    match List.assoc_opt m !msgs with
    | Some i -> i
    | None ->
      let i = !n_msgs in
      msgs := (m, i) :: !msgs;
      incr n_msgs;
      i
  in
  let add_rule (r : Mir.rule) : int list =
    let next =
      match r.Mir.r_target with
      | Mir.Stay -> stay
      | Mir.Stop -> stop
      | Mir.Goto s -> s
    in
    let e = match r.Mir.r_err with Some m -> msg_id m | None -> -1 in
    List.map
      (fun (b : Mir.branch) ->
        let id = !n_branches in
        incr n_branches;
        pats := Pattern.of_branch (b.Mir.b_expr, b.Mir.b_decls) :: !pats;
        decls := b.Mir.b_decls :: !decls;
        nexts := next :: !nexts;
        errs := e :: !errs;
        id)
      r.Mir.r_branches
  in
  let per_state_own =
    Array.map (fun rules -> List.concat_map add_rule rules) ir.Mir.ir_rules
  in
  let all_ids = List.concat_map add_rule ir.Mir.ir_all in
  let g_state_branches =
    Array.map (fun own -> Array.of_list (own @ all_ids)) per_state_own
  in
  let rev_arr l = Array.of_list (List.rev l) in
  let g_pats = rev_arr !pats in
  let g_decls = rev_arr !decls in
  let g_next = rev_arr !nexts in
  let g_err = rev_arr !errs in
  let g_msgs =
    let a = Array.make !n_msgs "" in
    List.iter (fun (m, i) -> a.(i) <- m) !msgs;
    a
  in
  (* per-branch root shape; single-branch patterns have exactly one *)
  let shapes =
    Array.map
      (fun p ->
        match Pattern.root_shapes p with
        | [ s ] -> s
        | _ -> Pattern.Root_any)
      g_pats
  in
  (* intern call-name classes in branch-id (first-encounter) order *)
  let calls = ref [] in
  let n_calls = ref 0 in
  Array.iter
    (function
      | Pattern.Root_call f ->
        if not (List.mem_assoc f !calls) then begin
          calls := (f, Pattern.n_tags + !n_calls) :: !calls;
          incr n_calls
        end
      | Pattern.Root_tag _ | Pattern.Root_any -> ())
    shapes;
  let g_calls =
    let a = Array.make !n_calls "" in
    List.iter (fun (f, c) -> a.(c - Pattern.n_tags) <- f) !calls;
    a
  in
  let g_n_classes = Pattern.n_tags + !n_calls in
  (* the rows: which classes each branch is a candidate for.  Mirrors
     the engine's dispatch index: a [Root_call] branch serves only its
     name's class; a generic-call branch ([Root_tag tag_call]) serves
     the anonymous-call class and every named-call class; [Root_any]
     serves everything. *)
  let admits shape cls =
    match shape with
    | Pattern.Root_any -> true
    | Pattern.Root_call f ->
      cls >= Pattern.n_tags && String.equal g_calls.(cls - Pattern.n_tags) f
    | Pattern.Root_tag t ->
      cls = t || (t = Pattern.tag_call && cls >= Pattern.n_tags)
  in
  let g_rows =
    Array.init (n_states * g_n_classes) (fun idx ->
        let s = idx / g_n_classes and cls = idx mod g_n_classes in
        let row =
          Array.to_list g_state_branches.(s)
          |> List.filter (fun b -> admits shapes.(b) cls)
        in
        Array.of_list row)
  in
  {
    g_name = ir.Mir.ir_name;
    g_states = ir.Mir.ir_states;
    g_start = ir.Mir.ir_start;
    g_calls;
    g_n_classes;
    g_pats;
    g_decls;
    g_next;
    g_err;
    g_msgs;
    g_state_branches;
    g_rows;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic pretty-printing and re-reading                        *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Pattern.Any -> "any"
  | Pattern.Scalar -> "scalar"
  | Pattern.Unsigned_int -> "unsigned"
  | Pattern.Floating -> "float"
  | Pattern.Constant -> "const"

let ints a =
  String.concat " " (List.map string_of_int (Array.to_list a))

(** A complete, deterministic dump of the tables — the compiled artifact
    in the flesh, and what {!of_string} reads back. *)
let to_string (g : t) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "metalc-table v1\n";
  pf "sm %s\n" g.g_name;
  pf "start %d\n" g.g_start;
  pf "states %d\n" (Array.length g.g_states);
  Array.iteri (fun i s -> pf "  %d %s\n" i s) g.g_states;
  pf "calls %d\n" (Array.length g.g_calls);
  Array.iteri (fun i f -> pf "  %d %s\n" (Pattern.n_tags + i) f) g.g_calls;
  pf "msgs %d\n" (Array.length g.g_msgs);
  Array.iteri (fun i m -> pf "  %d %S\n" i m) g.g_msgs;
  pf "branches %d\n" (Array.length g.g_pats);
  Array.iteri
    (fun i p ->
      let ds =
        match g.g_decls.(i) with
        | [] -> "-"
        | ds ->
          String.concat ","
            (List.map
               (fun (n, k) -> Printf.sprintf "%s:%s" n (kind_to_string k))
               ds)
      in
      pf "  %d next=%d err=%d decls=%s pat=%s\n" i g.g_next.(i) g.g_err.(i)
        ds
        (match Pattern.branches p with
        | [ (e, _) ] -> Pp.expr_to_string e
        | _ -> "?"))
    g.g_pats;
  Array.iteri
    (fun s own -> pf "state %d branches %s\n" s (ints own))
    g.g_state_branches;
  pf "rows %d\n" g.g_n_classes;
  Array.iteri
    (fun idx row ->
      if Array.length row > 0 then
        pf "  %d %d : %s\n" (idx / g.g_n_classes) (idx mod g.g_n_classes)
          (ints row))
    g.g_rows;
  pf "end\n";
  Buffer.contents b

let kind_of_string = function
  | "any" -> Pattern.Any
  | "scalar" -> Pattern.Scalar
  | "unsigned" -> Pattern.Unsigned_int
  | "float" -> Pattern.Floating
  | "const" -> Pattern.Constant
  | k -> failwith ("metalc table: unknown wildcard kind " ^ k)

(** Re-read a {!to_string} dump.  Patterns are re-parsed from their
    printed source, so [to_string (of_string (to_string g))] is
    [to_string g] — the round-trip law the tests pin.
    @raise Failure on malformed input *)
let of_string (s : string) : t =
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> failwith "metalc table: truncated"
    | l :: rest ->
      lines := rest;
      String.trim l
  in
  let expect_line what =
    let l = next () in
    if l <> what then failwith ("metalc table: expected " ^ what);
    ()
  in
  let scan1 fmt l = Scanf.sscanf l fmt (fun x -> x) in
  expect_line "metalc-table v1";
  let g_name = scan1 "sm %s" (next ()) in
  let g_start = scan1 "start %d" (next ()) in
  let n_states = scan1 "states %d" (next ()) in
  let g_states =
    Array.init n_states (fun _ ->
        Scanf.sscanf (next ()) "%d %s" (fun _ s -> s))
  in
  let n_calls = scan1 "calls %d" (next ()) in
  (* canonicalize through the interner so a dump round trip keeps the
     pointer-equality fast paths of the pattern matcher and the symbol
     dispatch index *)
  let g_calls =
    Array.init n_calls (fun _ ->
        Scanf.sscanf (next ()) "%d %s" (fun _ s -> Symtab.canon s))
  in
  let n_msgs = scan1 "msgs %d" (next ()) in
  let g_msgs =
    Array.init n_msgs (fun _ ->
        Scanf.sscanf (next ()) "%d %S" (fun _ s -> s))
  in
  let n_branches = scan1 "branches %d" (next ()) in
  let g_pats = Array.make n_branches (Pattern.expr "0") in
  let g_decls = Array.make n_branches [] in
  let g_next = Array.make n_branches stay in
  let g_err = Array.make n_branches (-1) in
  for _ = 1 to n_branches do
    let l = next () in
    Scanf.sscanf l "%d next=%d err=%d decls=%s pat=%[^\n]"
      (fun i nx er ds pat ->
        let decls =
          if ds = "-" then []
          else
            List.map
              (fun s ->
                match String.index_opt s ':' with
                | Some k ->
                  ( String.sub s 0 k,
                    kind_of_string
                      (String.sub s (k + 1) (String.length s - k - 1)) )
                | None -> failwith "metalc table: bad decl")
              (String.split_on_char ',' ds)
        in
        g_pats.(i) <- Pattern.expr ~decls (String.trim pat);
        g_decls.(i) <- decls;
        g_next.(i) <- nx;
        g_err.(i) <- er)
  done;
  let g_state_branches =
    Array.init n_states (fun _ ->
        let l = next () in
        (* a state with no branches prints as the bare prefix *)
        match
          Scanf.sscanf l "state %d branches %[^\n]" (fun _ rest -> rest)
        with
        | rest ->
          Array.of_list
            (List.map int_of_string
               (String.split_on_char ' ' (String.trim rest)))
        | exception Scanf.Scan_failure _ -> [||])
  in
  let g_n_classes = scan1 "rows %d" (next ()) in
  let g_rows = Array.make (n_states * g_n_classes) [||] in
  let rec read_rows () =
    let l = next () in
    if l = "end" then ()
    else begin
      Scanf.sscanf l "%d %d : %[^\n]" (fun s c rest ->
          g_rows.((s * g_n_classes) + c) <-
            Array.of_list
              (List.map int_of_string
                 (String.split_on_char ' ' (String.trim rest))));
      read_rows ()
    end
  in
  read_rows ();
  {
    g_name;
    g_states;
    g_start;
    g_calls;
    g_n_classes;
    g_pats;
    g_decls;
    g_next;
    g_err;
    g_msgs;
    g_state_branches;
    g_rows;
  }
