(** Service-tier chaos campaigns against a live supervised [mcheckd].

    Where {!Faultinject} plants faults inside one in-process pipeline,
    a chaos campaign boots a real daemon dispatching into supervised
    worker processes and attacks the service surface: workers killed
    mid-request, memory/stack/CPU bombs inside a worker, outright
    worker death, slowloris and garbage framing on the wire, cache
    directory corruption under concurrent writers, and admission-
    control overload bursts.

    The containment invariants are service-grade: the daemon process
    never dies, a drain under load loses zero admitted requests, and
    every answered check is byte-identical to the local CLI pipeline —
    the supervision layer must be invisible in the output.

    Campaigns are deterministic in their seed; a failure names a
    reproducible [(seed, index)] pair. *)

type klass =
  | Worker_kill  (** SIGKILL a busy worker mid-request *)
  | Worker_oom  (** allocation storm against RLIMIT_AS *)
  | Worker_stack  (** unbounded recursion *)
  | Worker_spin  (** non-allocating CPU spin against the wall deadline *)
  | Worker_death  (** the unit itself exits / SIGKILLs its process *)
  | Slowloris  (** a stalled partial frame header holds a connection *)
  | Garbage_frames  (** well-framed junk and raw byte soup *)
  | Cache_corrupt
      (** concurrent cache-directory writers plus corrupted segments *)
  | Overload  (** a burst past [max_inflight]: fast sheds, honest hints *)

val klass_name : klass -> string
val all_classes : klass list

type outcome = {
  o_class : klass;
  index : int;  (** position in the campaign, for reproduction *)
  ok : bool;
  detail : string;  (** violated invariant, [""] when ok *)
  wall_ms : float;
}

type summary = {
  seed : int;
  total : int;  (** injections executed *)
  failed : int;
  daemon_deaths : int;  (** must be 0: the gate *)
  lost_inflight : int;  (** admitted requests lost at drain: must be 0 *)
  sheds : int;  (** [R_overloaded] responses observed *)
  retries : int;  (** supervisor-level transparent retries *)
  respawns : int;  (** workers respawned after loss *)
  by_class : (string * int * int) list;  (** class, injections, failures *)
  failures : outcome list;
  wall_ms : float;
}

val campaign : ?seed:int -> ?count:int -> ?quick:bool -> unit -> summary
(** boot a supervised daemon (2 workers + spare, chaos units enabled,
    1 GiB / 10 s rlimits, 1.2 s wall deadline, [max_inflight = 4],
    shared cache directory) and run [count] (default 340) injections,
    then a drain-under-load finale.  [quick] caps the campaign at 60
    injections and trims the slowest classes — the CI smoke shape. *)

val gates_ok : summary -> bool
(** the service-tier acceptance gate: zero failed injections, zero
    daemon deaths, zero lost in-flight requests *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_json : summary -> string
(** one JSON object: the counts, per-class table, failed injections,
    and the host context (hostname, cores, OCaml version) the campaign
    ran under *)
