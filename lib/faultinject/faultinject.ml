(** Fault-injection campaigns against the hardened checking pipeline.

    Each injection plants one seeded fault — source truncation or garbage
    splice, cache corruption at an arbitrary offset, a checker exception
    via the engine's test hook, a starved unit budget, a killed pool
    worker — runs the pipeline, and asserts the containment invariants:

    - no uncaught exception ever escapes the pipeline entry points;
    - no hang (a generous per-injection wall cap);
    - diagnostics on the unaffected remainder are deterministic — a
      function whose content hash is unchanged by the fault gets exactly
      the diagnostics the clean run gave it;
    - the containment layer *reports* what it dropped (parse/lex
      diagnostics, an ["internal"] entry for degraded units);
    - a corrupted or truncated cache loads as a cold cache and a re-check
      from it reproduces the clean run's output byte for byte.

    The campaign is deterministic in its seed ({!Rng} is splitmix64), so
    a failure report names a reproducible [(seed, index)] pair.

    Injections run against a small synthetic protocol (three files,
    functions with known violations) so a 500-injection campaign stays
    fast; the clean-path overhead measurements in [bench robust] use the
    real corpus. *)

(* ------------------------------------------------------------------ *)
(* The target program                                                  *)
(* ------------------------------------------------------------------ *)

(* Three files with seeded violations (a leak, a missing handler
   prologue) plus clean functions, so both the findings and the
   no-finding remainder are exercised.  Each file gets the prelude, as
   mcheck gives real inputs. *)
let synth_sources : (string * string) list =
  [
    ( "fi_alpha.c",
      "void handler_alpha(void) {\n  long b;\n  b = ALLOCATE_BUF();\n\
      \  FREE_BUF(b);\n}\n\
       void handler_beta(void) {\n  long b;\n  b = ALLOCATE_BUF();\n}\n" );
    ( "fi_gamma.c",
      "void handler_gamma(void) {\n  long b;\n  b = ALLOCATE_BUF();\n\
      \  if (b) {\n    FREE_BUF(b);\n  }\n}\n\
       void helper_delta(void) {\n  long x;\n  x = 1;\n  x = x + 1;\n}\n" );
    ( "fi_epsilon.c",
      "void handler_epsilon(void) {\n  long b;\n  b = ALLOCATE_BUF();\n\
      \  FREE_BUF(b);\n}\n\
       void handler_zeta(void) {\n  long y;\n  y = 2;\n  y = y * 3;\n}\n" );
  ]

let with_prelude files =
  List.map (fun (name, src) -> (name, Prelude.text ^ src)) files

(* the CLI's default spec: void/no-arg functions are handlers *)
let spec_of_tus (tus : Ast.tunit list) : Flash_api.spec =
  {
    Flash_api.p_name = "<faultinject>";
    p_handlers =
      List.concat_map
        (fun tu ->
          List.filter_map
            (fun (f : Ast.func) ->
              if Ctype.equal f.Ast.f_ret Ctype.Void && f.Ast.f_params = []
              then
                Some
                  {
                    Flash_api.h_name = f.Ast.f_name;
                    h_kind = Flash_api.Hw_handler;
                    h_lane_allowance = [| 1; 1; 1; 1 |];
                    h_no_stack = false;
                  }
              else None)
            (Ast.functions tu))
        tus;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

(* ------------------------------------------------------------------ *)
(* Faults and plans                                                    *)
(* ------------------------------------------------------------------ *)

type fault =
  | Truncate_source of { file_idx : int; at : int }
  | Splice_garbage of { file_idx : int; at : int }
  | Flip_cache_byte of { at : int }
  | Truncate_cache of { at : int }
  | Clean_cache_control  (** no mutation: the load must be warm *)
  | Raise_in_checker of { checker : string; func : string }
  | Kill_worker of { task : int }
  | Exhaust_fuel of { fuel : int }
  | Exhaust_deadline

type klass = Parser | Cache | Checker | Budget

let klass_of_fault = function
  | Truncate_source _ | Splice_garbage _ -> Parser
  | Flip_cache_byte _ | Truncate_cache _ | Clean_cache_control -> Cache
  | Raise_in_checker _ | Kill_worker _ -> Checker
  | Exhaust_fuel _ | Exhaust_deadline -> Budget

let klass_name = function
  | Parser -> "parser"
  | Cache -> "cache"
  | Checker -> "checker"
  | Budget -> "budget"

let fault_to_string = function
  | Truncate_source { file_idx; at } ->
    Printf.sprintf "truncate-source file=%d at=%d" file_idx at
  | Splice_garbage { file_idx; at } ->
    Printf.sprintf "splice-garbage file=%d at=%d" file_idx at
  | Flip_cache_byte { at } -> Printf.sprintf "flip-cache-byte at=%d" at
  | Truncate_cache { at } -> Printf.sprintf "truncate-cache at=%d" at
  | Clean_cache_control -> "clean-cache-control"
  | Raise_in_checker { checker; func } ->
    Printf.sprintf "raise-in-checker %s/%s" checker func
  | Kill_worker { task } -> Printf.sprintf "kill-worker task=%d" task
  | Exhaust_fuel { fuel } -> Printf.sprintf "exhaust-fuel fuel=%d" fuel
  | Exhaust_deadline -> "exhaust-deadline"

type outcome = {
  fault : fault;
  index : int;  (** position in the campaign, for reproduction *)
  ok : bool;
  detail : string;  (** violated invariant, [""] when ok *)
  wall_ms : float;
}

type summary = {
  seed : int;
  total : int;
  failed : int;
  by_class : (string * int * int) list;  (** class, injections, failures *)
  failures : outcome list;
  wall_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Invariant plumbing                                                  *)
(* ------------------------------------------------------------------ *)

(* Diagnostics that count as containment reporting, not findings. *)
let excluded_checker name =
  List.mem name Robust.internal_checkers || String.equal name "lanes"

(* one comparable line per diagnostic *)
let diag_line (d : Diag.t) = Diag.to_string d

(* per-checker results as sorted comparable lines, for full equality *)
let snapshot (results : (string * Diag.t list) list) : string list =
  results
  |> List.concat_map (fun (name, ds) ->
         List.map (fun d -> name ^ "|" ^ diag_line d) ds)
  |> List.sort String.compare

(* (file, func) -> content digest, over every function of a parsed run *)
let digests (tus : Ast.tunit list) : (string * string, string) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (tu : Ast.tunit) ->
      List.iter
        (fun (f : Ast.func) ->
          Hashtbl.replace h
            (tu.Ast.tu_file, f.Ast.f_name)
            (Mcd.func_digest tu.Ast.tu_file f))
        (Ast.functions tu))
    tus;
  h

(* findings grouped per (checker, file, func), sorted *)
let grouped (results : (string * Diag.t list) list) :
    (string * string * string, string list) Hashtbl.t =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (name, ds) ->
      if not (excluded_checker name) then
        List.iter
          (fun (d : Diag.t) ->
            let key = (name, d.Diag.loc.Loc.file, d.Diag.func) in
            let prev = Option.value (Hashtbl.find_opt h key) ~default:[] in
            Hashtbl.replace h key (diag_line d :: prev))
          ds)
    results;
  Hashtbl.iter (fun k v -> Hashtbl.replace h k (List.sort String.compare v)) h;
  h

(* The remainder invariant: every function whose content hash survived
   the fault must carry exactly its baseline diagnostics.  [except] is
   the injected (checker, function) pair itself, which is *supposed* to
   change (it degrades). *)
let check_remainder ?except ~base_digests ~base_groups ~tus ~results () :
    string option =
  let now_digests = digests tus in
  let now_groups = grouped results in
  let bad = ref None in
  let checker_names =
    List.filter (fun n -> not (excluded_checker n)) Registry.names
  in
  Hashtbl.iter
    (fun (file, func) digest ->
      if !bad = None then
        match Hashtbl.find_opt base_digests (file, func) with
        | Some base_digest when String.equal base_digest digest ->
          List.iter
            (fun cname ->
              if !bad = None && except <> Some (cname, func) then
                let get h =
                  Option.value
                    (Hashtbl.find_opt h (cname, file, func))
                    ~default:[]
                in
                let b = get base_groups and n = get now_groups in
                if b <> n then
                  bad :=
                    Some
                      (Printf.sprintf
                         "remainder drift: %s on %s/%s changed (%d -> %d \
                          diagnostic(s))"
                         cname file func (List.length b) (List.length n)))
            checker_names
        | _ -> ())
    now_digests;
  !bad

exception Hang of float

let wall_cap_ms = 60_000.

let timed f =
  let t0 = Mcobs.now_us () in
  let r = f () in
  let dt = (Mcobs.now_us () -. t0) /. 1000. in
  if dt > wall_cap_ms then raise (Hang dt);
  (r, dt)

(* ------------------------------------------------------------------ *)
(* Campaign state: baseline and cache container, built once            *)
(* ------------------------------------------------------------------ *)

type target = {
  t_files : (string * string) list;  (** with prelude *)
  t_tus : Ast.tunit list;
  t_spec : Flash_api.spec;
  t_base : (string * Diag.t list) list;  (** clean fused run *)
  t_base_snap : string list;
  t_base_digests : (string * string, string) Hashtbl.t;
  t_base_groups : (string * string * string, string list) Hashtbl.t;
  t_container : string;  (** a saved, valid cache file's bytes *)
}

let build_target () : target =
  let files = with_prelude synth_sources in
  let tus = Frontend.of_strings files in
  let spec = spec_of_tus tus in
  let base = Registry.run_all_fused ~spec tus in
  (* populate a cache and capture its on-disk container *)
  let cache = Mcd_cache.create () in
  let _ = Mcd.check_corpus ~cache ~jobs:1 ~spec tus in
  let tmp = Filename.temp_file "faultinject" ".cache" in
  Mcd_cache.save cache tmp;
  let container =
    let ic = open_in_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove tmp;
  {
    t_files = files;
    t_tus = tus;
    t_spec = spec;
    t_base = base;
    t_base_snap = snapshot base;
    t_base_digests = digests tus;
    t_base_groups = grouped base;
    t_container = container;
  }

(* ------------------------------------------------------------------ *)
(* Running one injection                                               *)
(* ------------------------------------------------------------------ *)

let garbage = " @#$ {{{ ;; )) \"unterminated /* nope "

let mutate_file (files : (string * string) list) idx f =
  List.mapi (fun i (name, src) -> if i = idx then (name, f src) else (name, src)) files

let run_parser_fault (t : target) fault : string option =
  let files =
    match fault with
    | Truncate_source { file_idx; at } ->
      mutate_file t.t_files file_idx (fun src ->
          String.sub src 0 (min at (String.length src)))
    | Splice_garbage { file_idx; at } ->
      mutate_file t.t_files file_idx (fun src ->
          let at = min at (String.length src) in
          String.sub src 0 at ^ garbage
          ^ String.sub src at (String.length src - at))
    | _ -> assert false
  in
  (* totality: parse never raises, checking completes *)
  let tus, _parse_diags = Frontend.parse_strings files in
  let results = Registry.run_all_fused ~spec:t.t_spec tus in
  check_remainder ~base_digests:t.t_base_digests ~base_groups:t.t_base_groups
    ~tus ~results ()

let run_cache_fault (t : target) fault : string option =
  let data =
    match fault with
    | Flip_cache_byte { at } ->
      let b = Bytes.of_string t.t_container in
      let at = at mod Bytes.length b in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0xFF));
      Bytes.to_string b
    | Truncate_cache { at } ->
      String.sub t.t_container 0 (at mod String.length t.t_container)
    | Clean_cache_control -> t.t_container
    | _ -> assert false
  in
  let tmp = Filename.temp_file "faultinject" ".cache" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      output_string oc data;
      close_out oc;
      (* the guarded load: never raises, cold on any corruption *)
      let cache = Mcd_cache.load tmp in
      let mutated = fault <> Clean_cache_control in
      if mutated && Mcd_cache.size cache <> 0 then
        Some
          (Printf.sprintf "corrupt cache loaded %d entries instead of 0"
             (Mcd_cache.size cache))
      else if (not mutated) && Mcd_cache.size cache = 0 then
        Some "pristine cache loaded cold"
      else begin
        (* a re-check from whatever loaded must reproduce the clean run *)
        let results, _ =
          Mcd.check_corpus ~cache ~jobs:1 ~spec:t.t_spec t.t_tus
        in
        if snapshot results <> t.t_base_snap then
          Some "output after cache fault differs from the clean run"
        else None
      end)

let run_checker_fault (t : target) fault : string option =
  match fault with
  | Raise_in_checker { checker; func } ->
    (* [fired] distinguishes a real injection from one planted on a path
       the pipeline never reaches (a checker that does not traverse that
       function): the latter must leave the output untouched *)
    let fired = ref false in
    Engine.set_fault_hook
      (Some
         (fun ~checker:c ~func:f ->
           let hit = c = checker && f = func in
           if hit then fired := true;
           hit));
    Fun.protect
      ~finally:(fun () -> Engine.set_fault_hook None)
      (fun () ->
        let results, stats =
          Mcd.check_corpus ~jobs:2 ~spec:t.t_spec t.t_tus
        in
        if not !fired then
          if snapshot results <> t.t_base_snap then
            Some "unreached fault site still changed the output"
          else None
        else if stats.Mcd.units_faulted = 0 then
          Some "injected checker fault was not reported as a faulted unit"
        else
          let internal =
            Option.value (List.assoc_opt "internal" results) ~default:[]
          in
          if internal = [] then
            Some "faulted unit produced no internal diagnostic"
          else
            check_remainder ~except:(checker, func)
              ~base_digests:t.t_base_digests ~base_groups:t.t_base_groups
              ~tus:t.t_tus ~results ()
            |> Option.map (fun m -> "with injected checker fault: " ^ m))
  | Kill_worker { task } ->
    Mcd_pool.set_test_kill (Some (fun ~worker ~task:ti -> worker = 1 && ti = task));
    Fun.protect
      ~finally:(fun () -> Mcd_pool.set_test_kill None)
      (fun () ->
        let results, _stats = Mcd.check_corpus ~jobs:2 ~spec:t.t_spec t.t_tus in
        (* the coordinator re-claims the dead worker's units, so the
           output is the clean run's, exactly *)
        if snapshot results <> t.t_base_snap then
          Some "output after worker kill differs from the clean run"
        else None)
  | _ -> assert false

let run_budget_fault (t : target) fault : string option =
  let budget =
    match fault with
    | Exhaust_fuel { fuel } ->
      { Engine.fuel = Some fuel; deadline_ms = None }
    | Exhaust_deadline -> { Engine.fuel = None; deadline_ms = Some 0.0001 }
    | _ -> assert false
  in
  let results, stats =
    Mcd.check_corpus ~budget ~jobs:1 ~spec:t.t_spec t.t_tus
  in
  (* totality is the main invariant; when a unit did blow the budget,
     the run must say so *)
  let internal =
    Option.value (List.assoc_opt "internal" results) ~default:[]
  in
  if stats.Mcd.units_faulted > 0 && internal = [] then
    Some "budget exhaustion was not reported as an internal diagnostic"
  else if stats.Mcd.units_faulted = 0 && internal <> [] then
    Some "internal diagnostics without any faulted unit"
  else None

let run_one (t : target) ~index fault : outcome =
  let run () =
    match klass_of_fault fault with
    | Parser -> run_parser_fault t fault
    | Cache -> run_cache_fault t fault
    | Checker -> run_checker_fault t fault
    | Budget -> run_budget_fault t fault
  in
  match timed run with
  | Some detail, wall_ms -> { fault; index; ok = false; detail; wall_ms }
  | None, wall_ms -> { fault; index; ok = true; detail = ""; wall_ms }
  | exception Hang dt ->
    {
      fault;
      index;
      ok = false;
      detail = Printf.sprintf "hang: injection took %.0f ms" dt;
      wall_ms = dt;
    }
  | exception exn ->
    {
      fault;
      index;
      ok = false;
      detail = "uncaught exception: " ^ Printexc.to_string exn;
      wall_ms = 0.;
    }

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let per_function_checkers =
  List.filter_map
    (fun (c : Registry.checker) ->
      match c.Registry.phase with
      | Registry.Per_function _ -> Some c.Registry.name
      | Registry.Whole_program _ -> None)
    Registry.all

let synth_funcs (t : target) =
  List.concat_map (fun tu -> Ast.functions tu) t.t_tus
  |> List.map (fun (f : Ast.func) -> f.Ast.f_name)

(* one fault of the given class, drawn from [rng] *)
let draw (t : target) rng (k : klass) : fault =
  match k with
  | Parser ->
    let file_idx = Rng.int rng (List.length t.t_files) in
    let len = String.length (List.nth t.t_files file_idx |> snd) in
    if Rng.bool rng then Truncate_source { file_idx; at = Rng.int rng len }
    else Splice_garbage { file_idx; at = Rng.int rng len }
  | Cache ->
    let len = String.length t.t_container in
    (match Rng.int rng 10 with
    | 0 -> Clean_cache_control
    | r when r < 6 -> Flip_cache_byte { at = Rng.int rng len }
    | _ -> Truncate_cache { at = Rng.int rng len })
  | Checker ->
    if Rng.percent rng 20 then Kill_worker { task = Rng.int rng 8 }
    else
      Raise_in_checker
        {
          checker = Rng.choose rng per_function_checkers;
          func = Rng.choose rng (synth_funcs t);
        }
  | Budget ->
    if Rng.percent rng 25 then Exhaust_deadline
    else Exhaust_fuel { fuel = 1 + Rng.int rng 50 }

let all_classes = [ Parser; Cache; Checker; Budget ]

let klass_of_name = function
  | "parser" -> Some Parser
  | "cache" -> Some Cache
  | "checker" -> Some Checker
  | "budget" -> Some Budget
  | _ -> None

(* the default mix: parser and cache faults dominate (they are the
   cheap, high-surface classes), checker and budget ride along *)
let class_at i =
  match i mod 10 with
  | 0 | 1 | 2 | 3 -> Parser
  | 4 | 5 | 6 | 7 -> Cache
  | 8 -> Checker
  | _ -> Budget

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

let campaign ?(seed = 0xFA17) ?(count = 500) ?(classes = all_classes) () :
    summary =
  let t0 = Mcobs.now_us () in
  let t = build_target () in
  let rng = Rng.create ~seed in
  let outcomes = ref [] in
  let planned = ref 0 in
  let i = ref 0 in
  while !planned < count do
    let k = class_at !i in
    incr i;
    if List.mem k classes then begin
      let fault = draw t rng k in
      outcomes := run_one t ~index:!planned fault :: !outcomes;
      incr planned
    end
  done;
  let outcomes = List.rev !outcomes in
  let failures = List.filter (fun o -> not o.ok) outcomes in
  let by_class =
    List.map
      (fun k ->
        let mine =
          List.filter (fun o -> klass_of_fault o.fault = k) outcomes
        in
        ( klass_name k,
          List.length mine,
          List.length (List.filter (fun o -> not o.ok) mine) ))
      all_classes
  in
  {
    seed;
    total = List.length outcomes;
    failed = List.length failures;
    by_class;
    failures;
    wall_ms = (Mcobs.now_us () -. t0) /. 1000.;
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "fault campaign: %d injection(s), %d failure(s), seed %#x, %.0f ms@."
    s.total s.failed s.seed s.wall_ms;
  List.iter
    (fun (name, n, bad) ->
      Format.fprintf ppf "  %-8s %4d injected, %d failed@." name n bad)
    s.by_class;
  List.iter
    (fun o ->
      Format.fprintf ppf "  FAIL #%d [%s] %s: %s@." o.index
        (klass_name (klass_of_fault o.fault))
        (fault_to_string o.fault) o.detail)
    s.failures

let summary_to_json (s : summary) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" s.seed);
  Buffer.add_string b (Printf.sprintf "  \"injections\": %d,\n" s.total);
  Buffer.add_string b (Printf.sprintf "  \"failures\": %d,\n" s.failed);
  Buffer.add_string b (Printf.sprintf "  \"wall_ms\": %.1f,\n" s.wall_ms);
  Buffer.add_string b "  \"by_class\": {\n";
  List.iteri
    (fun i (name, n, bad) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": { \"injected\": %d, \"failed\": %d }%s\n"
           name n bad
           (if i = List.length s.by_class - 1 then "" else ",")))
    s.by_class;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"failed_injections\": [";
  List.iteri
    (fun i o ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    { \"index\": %d, \"fault\": %S, \
                         \"detail\": %S }"
           (if i = 0 then "" else ",")
           o.index (fault_to_string o.fault) o.detail))
    s.failures;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
