(** Fault-injection campaigns against the hardened checking pipeline.

    A campaign plants [count] seeded faults one at a time — source
    truncation / garbage splices, cache corruption at arbitrary offsets,
    checker exceptions via the engine's test hook, starved unit budgets,
    killed pool workers — runs the pipeline under each, and asserts the
    containment invariants: no uncaught exception, no hang, deterministic
    diagnostics on the unaffected remainder (functions whose content hash
    the fault did not change), coverage loss reported (["parse"] /
    ["lex"] / ["internal"] entries), and cold-never-crash cache loads.

    Campaigns are deterministic in their seed; a failure names a
    reproducible [(seed, index)] pair. *)

type fault =
  | Truncate_source of { file_idx : int; at : int }
      (** cut the file at byte [at] *)
  | Splice_garbage of { file_idx : int; at : int }
      (** insert an unlexable token soup at byte [at] *)
  | Flip_cache_byte of { at : int }  (** XOR one container byte *)
  | Truncate_cache of { at : int }  (** cut the container at byte [at] *)
  | Clean_cache_control
      (** no mutation — the load must come back warm (detects an
          over-eager validator) *)
  | Raise_in_checker of { checker : string; func : string }
      (** {!Engine.set_fault_hook}: raise inside that (checker, function)
          unit *)
  | Kill_worker of { task : int }
      (** {!Mcd_pool.set_test_kill}: worker 1 dies before claiming
          [task]; the coordinator must re-claim its orphans *)
  | Exhaust_fuel of { fuel : int }  (** a unit budget of [fuel] nodes *)
  | Exhaust_deadline  (** a unit deadline that has already passed *)

type klass = Parser | Cache | Checker | Budget

val klass_of_fault : fault -> klass
val klass_name : klass -> string
val klass_of_name : string -> klass option
val all_classes : klass list
val fault_to_string : fault -> string

type outcome = {
  fault : fault;
  index : int;  (** position in the campaign, for reproduction *)
  ok : bool;
  detail : string;  (** violated invariant, [""] when ok *)
  wall_ms : float;
}

type summary = {
  seed : int;
  total : int;
  failed : int;
  by_class : (string * int * int) list;  (** class, injections, failures *)
  failures : outcome list;
  wall_ms : float;
}

val campaign : ?seed:int -> ?count:int -> ?classes:klass list -> unit -> summary
(** run [count] (default 500) injections with the default 4:4:1:1
    parser / cache / checker / budget mix, restricted to [classes]
    (default: all).  Leaves no global state behind: the engine fault hook
    and the pool kill hook are cleared after each injection. *)

val pp_summary : Format.formatter -> summary -> unit
val summary_to_json : summary -> string
