(* Service-tier chaos: a real supervised daemon under attack.  See the
   interface for the invariants.  Everything here goes over the same
   wire a production client uses; the only privileged access is
   [Server.supervisor], which the worker-kill class uses to pick a
   busy victim pid. *)

module Server = Serve.Server
module Client = Serve.Client
module Proto = Serve.Proto

type klass =
  | Worker_kill
  | Worker_oom
  | Worker_stack
  | Worker_spin
  | Worker_death
  | Slowloris
  | Garbage_frames
  | Cache_corrupt
  | Overload

let klass_name = function
  | Worker_kill -> "worker_kill"
  | Worker_oom -> "worker_oom"
  | Worker_stack -> "worker_stack"
  | Worker_spin -> "worker_spin"
  | Worker_death -> "worker_death"
  | Slowloris -> "slowloris"
  | Garbage_frames -> "garbage_frames"
  | Cache_corrupt -> "cache_corrupt"
  | Overload -> "overload"

let all_classes =
  [
    Worker_kill; Worker_oom; Worker_stack; Worker_spin; Worker_death;
    Slowloris; Garbage_frames; Cache_corrupt; Overload;
  ]

type outcome = {
  o_class : klass;
  index : int;
  ok : bool;
  detail : string;
  wall_ms : float;
}

type summary = {
  seed : int;
  total : int;
  failed : int;
  daemon_deaths : int;
  lost_inflight : int;
  sheds : int;
  retries : int;
  respawns : int;
  by_class : (string * int * int) list;
  failures : outcome list;
  wall_ms : float;
}

(* ------------------------------------------------------------------ *)
(* The daemon under attack                                             *)
(* ------------------------------------------------------------------ *)

(* known-verdict sources: the buggy handler yields findings (so the
   byte-identity check compares non-empty diagnostics), the clean one
   none *)
let buggy_src =
  "void H(void) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; \
   NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"

let clean_src =
  "void H2(void) { HANDLER_GLOBALS(header.nh.len) = LEN_WORD; \
   NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0); }"

type env = {
  srv : Server.t;
  thread : Thread.t;
  addr : Proto.addr;
  cache_dir : string;
  local : Mcheck_api.Session.t;  (* the CLI mirror *)
}

let next_id = Atomic.make 0

let temp_path prefix =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ())
       (Atomic.fetch_and_add next_id 1))

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with _ -> ())
  | _ -> ( try Sys.remove path with _ -> ())
  | exception _ -> ()

let boot () =
  let cache_dir = temp_path "mchaos-cache" in
  (try Unix.mkdir cache_dir 0o755 with _ -> ());
  let addr = Proto.Unix_sock (temp_path "mchaos" ^ ".sock") in
  let cfg =
    {
      Server.default_config with
      Server.addr;
      idle_timeout = 2.0;
      max_inflight = 4;
      supervise =
        Some
          {
            Server.sv_workers = 2;
            sv_mem_mb = Some 1024;
            sv_cpu_s = Some 10;
            sv_wall_ms = Some 1200.;
            sv_cache_dir = Some cache_dir;
            sv_allow_chaos = true;
          };
    }
  in
  match Server.create cfg with
  | Error msg -> failwith ("chaos: daemon did not start: " ^ msg)
  | Ok srv ->
    let thread = Thread.create Server.run srv in
    let rec wait n =
      if n = 0 then failwith "chaos: daemon did not answer pings";
      match Client.connect addr with
      | Error _ ->
        Thread.delay 0.05;
        wait (n - 1)
      | Ok c -> (
        let r = Client.ping c in
        Client.close c;
        match r with
        | Ok () -> ()
        | Error _ ->
          Thread.delay 0.05;
          wait (n - 1))
    in
    wait 100;
    {
      srv;
      thread;
      addr;
      cache_dir;
      local = Mcheck_api.Session.create ~config:Mcheck_api.default_config ();
    }

let shutdown env =
  (match Client.connect env.addr with
  | Ok c ->
    ignore (Client.drain c);
    Client.close c
  | Error _ -> Server.initiate_drain env.srv);
  Thread.join env.thread;
  Mcheck_api.Session.close env.local;
  rm_rf env.cache_dir

(* ------------------------------------------------------------------ *)
(* Invariant checks                                                    *)
(* ------------------------------------------------------------------ *)

let ropts =
  { Mcheck_api.ro_explain = false; ro_verbose = false; ro_quiet = false }

let mirror env ~name ~contents =
  let r = Mcheck_api.Session.check_buffer env.local ~name ~contents in
  ( String.concat ""
      (List.map (Mcheck_api.render_diag ropts) (Mcheck_api.report_diags r)),
    r.Mcheck_api.r_findings,
    Robust.exit_code r.Mcheck_api.r_outcome )

let with_conn env f =
  match Client.connect ~connect_timeout:5. ~read_timeout:30. env.addr with
  | Error e -> Error e
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let remote_check env ~name ~contents =
  with_conn env (fun c ->
      Client.check_buffer c Proto.default_opts ~name ~contents)

(* the core invariant: an answered check is byte-identical to the
   local CLI pipeline — supervision must be invisible *)
let check_identical env ~name ~contents =
  let l_text, l_findings, l_exit = mirror env ~name ~contents in
  match remote_check env ~name ~contents with
  | Error e -> Error ("transport: " ^ Client.err_to_string e)
  | Ok (Client.Refused msg) -> Error ("refused: " ^ msg)
  | Ok (Client.Overloaded ms) ->
    Error (Printf.sprintf "unexpected shed (retry after %dms)" ms)
  | Ok (Client.Checked r) ->
    let r_text =
      String.concat ""
        (List.map (fun d -> d.Proto.d_text) r.Client.cr_diags)
    in
    if not (String.equal r_text l_text) then
      Error
        (Printf.sprintf "diagnostics differ (%d vs %d bytes)"
           (String.length r_text) (String.length l_text))
    else if r.Client.cr_findings <> l_findings then
      Error
        (Printf.sprintf "findings %d on the wire, %d locally"
           r.Client.cr_findings l_findings)
    else if r.Client.cr_exit <> l_exit then
      Error
        (Printf.sprintf "exit %d on the wire, %d locally" r.Client.cr_exit
           l_exit)
    else Ok ()

(* a chaos unit must be contained as a structured refusal (its worker
   died or its fault was caught), never a hang, never a daemon death *)
let expect_refusal env ~name =
  match remote_check env ~name ~contents:clean_src with
  | Ok (Client.Refused _) -> Ok ()
  | Ok (Client.Checked _) -> Error "chaos unit completed a check"
  | Ok (Client.Overloaded ms) ->
    Error (Printf.sprintf "unexpected shed (retry after %dms)" ms)
  | Error e -> Error ("transport: " ^ Client.err_to_string e)

let daemon_alive env =
  match with_conn env Client.ping with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Injection classes                                                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* kill a busy worker mid-request: the sleep unit stretches the check
   so the victim is reliably in flight; the supervisor must retry on a
   fresh worker and the client must see one identical answer *)
let inject_kill env i =
  let name = Printf.sprintf "__chaos_sleep_300__k%d.c" (i land 7) in
  let result = ref (Error "no result") in
  let th =
    Thread.create
      (fun () -> result := check_identical env ~name ~contents:buggy_src)
      ()
  in
  Thread.delay 0.08;
  (match Server.supervisor env.srv with
  | Some pool -> (
    match Mcsup.busy_pids pool with
    | pid :: _ -> ignore (Mcsup.kill_pid pool pid)
    | [] -> ())
  | None -> ());
  Thread.join th;
  !result

let inject_unit_fault env kind =
  let* () = expect_refusal env ~name:kind in
  (* and the pool has recovered: the next ordinary check is identical *)
  check_identical env ~name:"after_fault.c" ~contents:buggy_src

let inject_death env i =
  let name = if i land 1 = 0 then "__chaos_exit__" else "__chaos_kill__" in
  let* () = expect_refusal env ~name in
  check_identical env ~name:"after_death.c" ~contents:buggy_src

(* a stalled client holding a half-written frame header must not
   starve the daemon: a well-behaved check on another connection
   completes, identically, while the slow one hangs *)
let inject_slowloris env =
  let path =
    match env.addr with
    | Proto.Unix_sock p -> p
    | Proto.Tcp _ -> failwith "chaos: unix socket expected"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      ignore (Unix.write_substring fd (Proto.magic ^ "\x00") 0 5);
      check_identical env ~name:"during_loris.c" ~contents:buggy_src)

let inject_garbage env rng =
  let path =
    match env.addr with
    | Proto.Unix_sock p -> p
    | Proto.Tcp _ -> failwith "chaos: unix socket expected"
  in
  (* a well-framed payload that decodes to no request: must be
     answered with R_error on the same connection *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let framed =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX path);
        Proto.write_frame fd "\xff\xfe\xfd\xfc";
        match Proto.read_frame fd with
        | Ok payload -> (
          match Proto.decode_response payload with
          | Ok (Proto.R_error _) -> Ok ()
          | Ok _ -> Error "garbage frame answered with a non-error"
          | Error e -> Error ("garbage frame reply undecodable: " ^ e))
        | Error e -> Error ("no reply to garbage frame: " ^ e))
  in
  let* () = framed in
  (* raw byte soup, sometimes behind valid magic: the connection may
     just be dropped, but the daemon survives *)
  let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd2 (Unix.ADDR_UNIX path);
     let len = 1 + Random.State.int rng 48 in
     let junk =
       String.init len (fun _ -> Char.chr (Random.State.int rng 256))
     in
     let payload =
       if Random.State.bool rng then Proto.magic ^ junk else junk
     in
     ignore (Unix.write_substring fd2 payload 0 (String.length payload))
   with _ -> ());
  (try Unix.close fd2 with _ -> ());
  if daemon_alive env then Ok () else Error "daemon dead after byte soup"

(* concurrent writers racing into the shared cache directory, with
   corrupt segments planted among them: every publish succeeds or
   skips, a load sees only valid segments, and a worker respawned
   against the corrupted directory still answers identically *)
let inject_cache_corrupt env rng i =
  let writer k () =
    let cfg =
      {
        Mcheck_api.default_config with
        Mcheck_api.incremental = true;
        cache_dir = Some env.cache_dir;
      }
    in
    let s = Mcheck_api.Session.create ~config:cfg () in
    ignore
      (Mcheck_api.Session.check_buffer s
         ~name:(Printf.sprintf "w%d_%d.c" k (i land 15))
         ~contents:(if k land 1 = 0 then buggy_src else clean_src));
    Mcheck_api.Session.close s
  in
  let threads = List.init 3 (fun k -> Thread.create (writer k) ()) in
  (* plant corruption while the writers run *)
  let plant name bytes =
    let path = Filename.concat env.cache_dir name in
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  plant
    (Printf.sprintf "seg-%08x.mc" (Random.State.int rng 0xFFFFFF))
    (String.init 40 (fun _ -> Char.chr (Random.State.int rng 256)));
  plant
    (Printf.sprintf "seg-%08x.mc" (Random.State.int rng 0xFFFFFF))
    "MCDCACH1truncated";
  List.iter Thread.join threads;
  (* a cold load over the corrupted directory must not raise *)
  (match Mcd_cache.load_dir env.cache_dir with
  | (_ : Mcd_cache.t) -> ()
  | exception exn ->
    failwith ("load_dir raised: " ^ Printexc.to_string exn));
  (* force a respawn against the corrupted directory, then prove the
     fresh worker still answers byte-identically *)
  let* () = expect_refusal env ~name:"__chaos_exit__" in
  check_identical env ~name:"after_corrupt.c" ~contents:buggy_src

(* a burst past max_inflight: sheds must be fast, honest (Retry-After
   within the daemon's clamp), and strictly before any diagnostic
   byte; a retrying client must eventually land *)
let inject_overload env i sheds =
  let name = Printf.sprintf "__chaos_sleep_150__ov%d.c" (i land 3) in
  let l_text, l_findings, l_exit = mirror env ~name ~contents:buggy_src in
  let n = 16 in
  let errors = ref [] in
  let mu = Mutex.create () in
  let fail msg =
    Mutex.lock mu;
    errors := msg :: !errors;
    Mutex.unlock mu
  in
  let identical (r : Client.check_result) =
    let text =
      String.concat "" (List.map (fun d -> d.Proto.d_text) r.Client.cr_diags)
    in
    String.equal text l_text
    && r.Client.cr_findings = l_findings
    && r.Client.cr_exit = l_exit
  in
  let plain_worker _ =
    match remote_check env ~name ~contents:buggy_src with
    | Ok (Client.Checked r) ->
      if not (identical r) then fail "admitted burst check not identical"
    | Ok (Client.Overloaded ms) ->
      Atomic.incr sheds;
      if ms < 1 || ms > 60_000 then
        fail (Printf.sprintf "retry-after hint out of range: %dms" ms)
    | Ok (Client.Refused msg) -> fail ("burst refused: " ^ msg)
    | Error e -> fail ("burst transport: " ^ Client.err_to_string e)
  in
  let retry_worker _ =
    let r =
      Client.with_retry ~attempts:10 ~base_backoff_ms:30
        ~classify:(function
          | Client.Overloaded ms -> Some ms
          | _ -> None)
        env.addr
        (fun c ->
          Client.check_buffer c Proto.default_opts ~name ~contents:buggy_src)
    in
    match r with
    | Ok (Client.Checked r) ->
      if not (identical r) then fail "retried check not identical"
    | Ok (Client.Overloaded _) -> fail "with_retry never admitted"
    | Ok (Client.Refused msg) -> fail ("retried check refused: " ^ msg)
    | Error e -> fail ("retry transport: " ^ Client.err_to_string e)
  in
  let threads =
    List.init n (fun k ->
        Thread.create (if k < 2 then retry_worker else plain_worker) k)
  in
  List.iter Thread.join threads;
  match !errors with [] -> Ok () | msg :: _ -> Error msg

(* ------------------------------------------------------------------ *)
(* The drain finale                                                    *)
(* ------------------------------------------------------------------ *)

(* a drain fired into live traffic: every request either completes
   (identically) or is explicitly refused/shed — an admitted request
   that vanishes is a lost in-flight, the second hard gate *)
let drain_finale env =
  let name = "__chaos_sleep_200__drain.c" in
  let l_text, l_findings, l_exit = mirror env ~name ~contents:buggy_src in
  let n = 8 in
  let completed = Atomic.make 0
  and refused = Atomic.make 0
  and lost = Atomic.make 0
  and mismatched = Atomic.make 0 in
  let worker _ =
    match Client.connect ~connect_timeout:5. ~read_timeout:30. env.addr with
    | Error { Client.e_kind = Client.E_refused; _ } ->
      (* the listener closed before we connected: an explicit refusal,
         nothing admitted, nothing lost *)
      Atomic.incr refused
    | Error _ -> Atomic.incr lost
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match
            Client.check_buffer c Proto.default_opts ~name
              ~contents:buggy_src
          with
          | Ok (Client.Checked r) ->
            let text =
              String.concat ""
                (List.map (fun d -> d.Proto.d_text) r.Client.cr_diags)
            in
            if
              String.equal text l_text
              && r.Client.cr_findings = l_findings
              && r.Client.cr_exit = l_exit
            then Atomic.incr completed
            else Atomic.incr mismatched
          | Ok (Client.Refused _) | Ok (Client.Overloaded _) ->
            Atomic.incr refused
          | Error _ -> Atomic.incr lost)
  in
  let threads = List.init n (fun k -> Thread.create worker k) in
  Thread.delay 0.05;
  Server.initiate_drain env.srv;
  List.iter Thread.join threads;
  Thread.join env.thread;
  ( Atomic.get completed,
    Atomic.get refused,
    Atomic.get lost + Atomic.get mismatched )

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

(* weights tuned so a full campaign keeps the expensive classes (spin
   burns the whole wall deadline twice) rare but present *)
let mix ~quick =
  [
    (Worker_kill, 20);
    (Worker_oom, 15);
    (Worker_stack, 15);
    (Worker_spin, (if quick then 2 else 4));
    (Worker_death, 12);
    (Slowloris, 8);
    (Garbage_frames, 12);
    (Cache_corrupt, 6);
    (Overload, 8);
  ]

let pick_class rng ~quick =
  let m = mix ~quick in
  let total = List.fold_left (fun a (_, w) -> a + w) 0 m in
  let r = Random.State.int rng total in
  let rec go acc = function
    | [] -> Worker_kill
    | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 m

let campaign ?(seed = 0xC4A0) ?(count = 340) ?(quick = false) () : summary =
  let count = if quick then min count 60 else count in
  let t0 = Unix.gettimeofday () in
  let rng = Random.State.make [| seed |] in
  Client.breaker_reset ();
  let retries0 =
    Mctel.Metrics.counter_value (Mctel.Metrics.counter "mcsup_retries_total")
  and respawns0 =
    Mctel.Metrics.counter_value (Mctel.Metrics.counter "mcsup_respawns_total")
  in
  let env = boot () in
  let sheds = Atomic.make 0 in
  let outcomes = ref [] in
  let daemon_deaths = ref 0 in
  (try
     for i = 0 to count - 1 do
       if !daemon_deaths = 0 then begin
         let k = pick_class rng ~quick in
         let it0 = Unix.gettimeofday () in
         let r =
           try
             match k with
             | Worker_kill -> inject_kill env i
             | Worker_oom -> inject_unit_fault env "__chaos_oom__"
             | Worker_stack -> inject_unit_fault env "__chaos_stack__"
             | Worker_spin -> inject_unit_fault env "__chaos_spin__"
             | Worker_death -> inject_death env i
             | Slowloris -> inject_slowloris env
             | Garbage_frames -> inject_garbage env rng
             | Cache_corrupt -> inject_cache_corrupt env rng i
             | Overload -> inject_overload env i sheds
           with exn -> Error ("raised: " ^ Printexc.to_string exn)
         in
         let r =
           match r with
           | Error _ when not (daemon_alive env) ->
             incr daemon_deaths;
             Error "daemon died"
           | r -> r
         in
         let o =
           {
             o_class = k;
             index = i;
             ok = Result.is_ok r;
             detail = (match r with Ok () -> "" | Error d -> d);
             wall_ms = (Unix.gettimeofday () -. it0) *. 1000.;
           }
         in
         outcomes := o :: !outcomes;
         if not o.ok then
           Mcobs.logf Mcobs.Verbose "chaos: #%d %s: %s\n" i (klass_name k)
             o.detail
       end
     done
   with exn ->
     Mcobs.logf Mcobs.Normal "chaos: campaign aborted: %s\n"
       (Printexc.to_string exn));
  let _completed, _refused, lost_inflight =
    if !daemon_deaths = 0 then drain_finale env
    else begin
      (try shutdown env with _ -> ());
      (0, 0, 0)
    end
  in
  if !daemon_deaths = 0 then begin
    Mcheck_api.Session.close env.local;
    rm_rf env.cache_dir
  end;
  let outcomes = List.rev !outcomes in
  let failures = List.filter (fun o -> not o.ok) outcomes in
  let by_class =
    List.filter_map
      (fun k ->
        let inj = List.filter (fun o -> o.o_class = k) outcomes in
        if inj = [] then None
        else
          Some
            ( klass_name k,
              List.length inj,
              List.length (List.filter (fun o -> not o.ok) inj) ))
      all_classes
  in
  {
    seed;
    total = List.length outcomes;
    failed = List.length failures;
    daemon_deaths = !daemon_deaths;
    lost_inflight;
    sheds = Atomic.get sheds;
    retries =
      Mctel.Metrics.counter_value (Mctel.Metrics.counter "mcsup_retries_total")
      - retries0;
    respawns =
      Mctel.Metrics.counter_value
        (Mctel.Metrics.counter "mcsup_respawns_total")
      - respawns0;
    by_class;
    failures;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
  }

let gates_ok s = s.failed = 0 && s.daemon_deaths = 0 && s.lost_inflight = 0

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "chaos campaign: seed %#x, %d injection(s), %d failure(s), %d daemon \
     death(s), %d lost in-flight, %d shed(s), %d retry(ies), %d \
     respawn(s), %.1fs@."
    s.seed s.total s.failed s.daemon_deaths s.lost_inflight s.sheds
    s.retries s.respawns (s.wall_ms /. 1000.);
  List.iter
    (fun (name, n, bad) ->
      Format.fprintf ppf "  %-16s %4d injected  %d failed@." name n bad)
    s.by_class;
  List.iter
    (fun o ->
      Format.fprintf ppf "  FAIL #%d %s: %s@." o.index (klass_name o.o_class)
        o.detail)
    s.failures

let summary_to_json (s : summary) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" s.seed);
  Buffer.add_string b (Printf.sprintf "  \"injections\": %d,\n" s.total);
  Buffer.add_string b (Printf.sprintf "  \"failures\": %d,\n" s.failed);
  Buffer.add_string b
    (Printf.sprintf "  \"daemon_deaths\": %d,\n" s.daemon_deaths);
  Buffer.add_string b
    (Printf.sprintf "  \"lost_inflight\": %d,\n" s.lost_inflight);
  Buffer.add_string b (Printf.sprintf "  \"sheds\": %d,\n" s.sheds);
  Buffer.add_string b (Printf.sprintf "  \"retries\": %d,\n" s.retries);
  Buffer.add_string b (Printf.sprintf "  \"respawns\": %d,\n" s.respawns);
  Buffer.add_string b
    (Printf.sprintf "  \"gates_ok\": %b,\n" (gates_ok s));
  Buffer.add_string b (Printf.sprintf "  \"wall_ms\": %.1f,\n" s.wall_ms);
  Buffer.add_string b "  \"host\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"hostname\": %S,\n" (Unix.gethostname ()));
  Buffer.add_string b
    (Printf.sprintf "    \"cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "    \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string b (Printf.sprintf "    \"os\": %S\n" Sys.os_type);
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"by_class\": {\n";
  List.iteri
    (fun i (name, n, bad) ->
      Buffer.add_string b
        (Printf.sprintf
           "    \"%s\": { \"injected\": %d, \"failed\": %d }%s\n" name n bad
           (if i = List.length s.by_class - 1 then "" else ",")))
    s.by_class;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"failed_injections\": [";
  List.iteri
    (fun i o ->
      Buffer.add_string b
        (Printf.sprintf
           "%s\n    { \"index\": %d, \"class\": %S, \"detail\": %S }"
           (if i = 0 then "" else ",")
           o.index (klass_name o.o_class) o.detail))
    s.failures;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
