(** Mctel — service-grade telemetry on top of {!Mcobs}.

    Mcobs answers the profiling question ("where did this process spend
    its time?"): enable up front, snapshot at exit.  A long-running
    daemon needs the operational questions answered while it serves —
    which request was slow, what the live cache hit rate is, whether it
    is healthy — so Mctel adds the four service-shaped pieces:

    - {!Trace}: request trace ids, minted by the client (or the daemon
      when absent) and carried end-to-end through {!Mcobs}'s ambient
      span context;
    - {!Metrics}: an always-on registry of counters, gauges, and
      latency histograms, continuously aggregated and exposed as
      Prometheus text or JSON;
    - {!Accesslog}: a structured JSONL access log, one line per
      request, with sampling and SIGHUP-safe reopen;
    - {!Flight}: a bounded flight recorder of recent request span
      trees with tail-based retention (slow or failed requests are
      always kept), so p99 debugging needs no pre-enabled tracing.

    Everything degrades rather than fails under volume — bounded
    rings, sampling, drop-on-contention-free atomics — the XCheck
    tolerance model applied to telemetry. *)

(** {1 Trace ids} *)

module Trace : sig
  val mint : unit -> string
  (** a fresh process-unique trace id (time + pid + sequence, hex) *)

  val sanitize : string -> string option
  (** accept a wire-supplied trace id: 1-64 chars drawn from
      [A-Za-z0-9._:-], else [None] (the daemon then mints its own) *)
end

(** {1 Live metrics registry} *)

module Metrics : sig
  type counter
  type gauge
  type hist

  (** Registration is idempotent by name — looking up an existing
      metric of the same kind returns the same handle, so modules can
      declare their handles at init in any order.
      @raise Invalid_argument if the name is registered as another kind *)

  val counter : ?help:string -> string -> counter
  val gauge : ?help:string -> string -> gauge

  val hist : ?help:string -> string -> hist
  (** log-scale latency histogram over {!Mcobs.hist_bounds_ms} (ms) *)

  val counter_labeled : ?help:string -> string -> label:string * string -> counter
  (** one series of a labeled counter family:
      [counter_labeled "kills_total" ~label:("sig", "term")] registers
      the series [kills_total{sig="term"}].  Exposition emits HELP/TYPE
      once per family (the name before ['{']) so Prometheus scrapes the
      series as one family *)

  val inc : ?by:int -> counter -> unit
  val counter_value : counter -> int

  val set : gauge -> int -> unit
  val add : gauge -> int -> unit
  val gauge_value : gauge -> int

  val observe : hist -> float -> unit
  (** add a sample in milliseconds *)

  val hist_snapshot : hist -> Mcobs.hist_snapshot

  val to_prometheus : unit -> string
  (** Prometheus text exposition (version 0.0.4): HELP/TYPE comments,
      cumulative [_bucket{le=...}] series plus [_sum]/[_count] for
      histograms, sorted by metric name *)

  val to_json : unit -> string
  (** one JSON object keyed by metric name; histograms carry count,
      sum, max, buckets, and interpolated p50/p90/p99 *)

  val reset_all : unit -> unit
  (** zero every registered metric (benchmarks isolate phases with
      this; a serving daemon never calls it) *)
end

(** {1 Structured access log} *)

module Accesslog : sig
  type entry = {
    al_trace : string;
    al_peer : string;
    al_kind : string;  (** request kind: [check_files], [ping], ... *)
    al_bytes_in : int;
    al_bytes_out : int;
    al_wall_ms : float;
    al_outcome : string;
        (** [clean]/[findings]/[partial]/[unusable] from {!Robust},
            or [fault]/[refused]/[ok]/[error] for the server paths *)
    al_findings : int;
    al_diags : int;
    al_cache_hits : int;
  }

  type t

  val create : ?sample:int -> path:string option -> unit -> t
  (** [path = None] disables the log entirely; [sample = n] writes
      every n-th entry (default 1 = all).  The file is opened in
      append mode; open failures disable the log with a warning rather
      than killing the daemon.  A live log owns one writer thread: the
      request path only enqueues, and the formatting, write, and flush
      happen off it. *)

  val log : t -> entry -> bool
  (** hand one entry to the writer thread (it lands as a flushed JSONL
      line, so tailing works); [false] when disabled, sampled out, or
      dropped because the bounded queue is full — requests are never
      stalled on the filesystem *)

  val request_reopen : t -> unit
  (** async-signal-safe: mark the log for reopen; the writer closes
      and reopens the file before its next batch — log-rotation via
      SIGHUP *)

  val reopen : t -> unit
  (** mark for reopen and wake the writer now (from a normal thread) *)

  val lines_written : t -> int
  (** lines the writer has flushed to disk (trails {!log} by the queue
      depth; {!close} drains first, so it is exact afterwards) *)

  val dropped : t -> int
  (** entries discarded because the writer queue was full *)

  val path : t -> string option
  val close : t -> unit
  val entry_to_json : entry -> string
end

(** {1 Flight recorder} *)

module Flight : sig
  type entry = {
    fl_trace : string;
    fl_kind : string;
    fl_peer : string;
    fl_begin_us : float;
    fl_wall_ms : float;
    fl_outcome : string;
    fl_notable : bool;
        (** retained by the tail-based rule, not just recency *)
    fl_spans : Mcobs.span list;  (** the request's span tree *)
  }

  type t

  val create : ?capacity:int -> ?threshold_ms:float -> unit -> t
  (** two bounded rings of [capacity] entries each (default 64): every
      request enters the recent ring; requests slower than
      [threshold_ms] (default 250) or whose outcome is not clean /
      findings / ok are notable and survive in their own ring after
      recency would have evicted them *)

  val record :
    t ->
    trace:string ->
    kind:string ->
    peer:string ->
    begin_us:float ->
    wall_ms:float ->
    outcome:string ->
    spans:Mcobs.span list ->
    unit

  val entries : t -> entry list
  (** notable entries then recent ones, oldest first, deduplicated *)

  val retained : t -> int
  (** how many notable entries the tail-based rule has kept (total
      over the recorder's lifetime, not just those still in the ring) *)

  val threshold_ms : t -> float
  val dump_json : t -> string
  (** [{"threshold_ms":...,"entries":[...]}] — each entry carries its
      span tree as JSONL-style span objects *)

  val clear : t -> unit
end
