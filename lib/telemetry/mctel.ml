(* Mctel — service-grade telemetry on top of Mcobs.  See the interface
   for the design; the implementation rules are (a) the hot path is an
   atomic increment or a short critical section, never I/O under a
   registry lock, and (b) bounded everything: rings, sampling, and
   drop-don't-die on log open failure. *)

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  let seq = Atomic.make 0

  (* time + pid + sequence: unique within a process, overwhelmingly
     unlikely to collide across the client/daemon pair that shares a
     request — and cheap enough to mint per request *)
  let mint () =
    let t_ms =
      Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1000.))
    in
    Printf.sprintf "t-%08x%04x%04x"
      (t_ms land 0xffffffff)
      (Unix.getpid () land 0xffff)
      (Atomic.fetch_and_add seq 1 land 0xffff)

  let id_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '.' || c = '_' || c = ':' || c = '-'

  let sanitize s =
    let n = String.length s in
    if n = 0 || n > 64 then None
    else if String.for_all id_char s then Some s
    else None
end

(* ------------------------------------------------------------------ *)
(* Live metrics registry                                               *)
(* ------------------------------------------------------------------ *)

module Metrics = struct
  type counter = int Atomic.t
  type gauge = int Atomic.t

  type hist = {
    h_mu : Mutex.t;
    mutable h_count : int;
    mutable h_sum_ms : float;
    mutable h_max_ms : float;
    h_buckets : int array;  (* length hist_bounds_ms + 1; last overflows *)
  }

  type metric = M_counter of counter | M_gauge of gauge | M_hist of hist

  let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 64
  let registry_mu = Mutex.create ()

  let locked f =
    Mutex.lock registry_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

  let register name help make match_kind =
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (_, m) -> (
          match match_kind m with
          | Some h -> h
          | None ->
            invalid_arg
              (Printf.sprintf "Mctel.Metrics: %s registered as another kind"
                 name))
        | None ->
          let h = make () in
          Hashtbl.add registry name (help, h);
          (match match_kind h with Some v -> v | None -> assert false))

  let counter ?(help = "") name =
    register name help
      (fun () -> M_counter (Atomic.make 0))
      (function M_counter c -> Some c | _ -> None)

  let gauge ?(help = "") name =
    register name help
      (fun () -> M_gauge (Atomic.make 0))
      (function M_gauge g -> Some g | _ -> None)

  let make_hist () =
    {
      h_mu = Mutex.create ();
      h_count = 0;
      h_sum_ms = 0.;
      h_max_ms = 0.;
      h_buckets = Array.make (Array.length Mcobs.hist_bounds_ms + 1) 0;
    }

  let hist ?(help = "") name =
    register name help
      (fun () -> M_hist (make_hist ()))
      (function M_hist h -> Some h | _ -> None)

  (* One series of a labeled family.  The registry key carries the
     rendered label pair (["name{key=\"value\"}"]); exposition groups
     HELP/TYPE lines under the family (base) name so Prometheus sees
     one family with several series. *)
  let series_name name (k, v) = Printf.sprintf "%s{%s=%S}" name k v

  let counter_labeled ?(help = "") name ~label =
    register (series_name name label) help
      (fun () -> M_counter (Atomic.make 0))
      (function M_counter c -> Some c | _ -> None)

  let base_of name =
    match String.index_opt name '{' with
    | Some i -> String.sub name 0 i
    | None -> name

  let inc ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
  let counter_value c = Atomic.get c
  let set g v = Atomic.set g v
  let add g by = ignore (Atomic.fetch_and_add g by)
  let gauge_value g = Atomic.get g

  let observe h ms =
    Mutex.lock h.h_mu;
    h.h_count <- h.h_count + 1;
    h.h_sum_ms <- h.h_sum_ms +. ms;
    if ms > h.h_max_ms then h.h_max_ms <- ms;
    let bounds = Mcobs.hist_bounds_ms in
    let rec bucket i =
      if i >= Array.length bounds || ms <= bounds.(i) then i else bucket (i + 1)
    in
    let i = bucket 0 in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    Mutex.unlock h.h_mu

  let hist_snapshot h : Mcobs.hist_snapshot =
    Mutex.lock h.h_mu;
    let s =
      {
        Mcobs.count = h.h_count;
        sum_ms = h.h_sum_ms;
        max_ms = h.h_max_ms;
        buckets = Array.copy h.h_buckets;
      }
    in
    Mutex.unlock h.h_mu;
    s

  (* a consistent-enough listing: names sorted, values read after the
     registry lock is dropped (each read is individually atomic) *)
  let listing () =
    locked (fun () ->
        Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc)
          registry [])
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

  let to_prometheus () =
    let b = Buffer.create 1024 in
    let last_base = ref "" in
    List.iter
      (fun (name, help, m) ->
        let base = base_of name in
        let head kind =
          if !last_base <> base then begin
            if help <> "" then Printf.bprintf b "# HELP %s %s\n" base help;
            Printf.bprintf b "# TYPE %s %s\n" base kind;
            last_base := base
          end
        in
        match m with
        | M_counter c ->
          head "counter";
          Printf.bprintf b "%s %d\n" name (Atomic.get c)
        | M_gauge g ->
          head "gauge";
          Printf.bprintf b "%s %d\n" name (Atomic.get g)
        | M_hist h ->
          let s = hist_snapshot h in
          head "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              if i < Array.length Mcobs.hist_bounds_ms then
                Printf.bprintf b "%s_bucket{le=\"%g\"} %d\n" name
                  Mcobs.hist_bounds_ms.(i) !cum)
            s.Mcobs.buckets;
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name s.Mcobs.count;
          Printf.bprintf b "%s_sum %.6f\n" name s.Mcobs.sum_ms;
          Printf.bprintf b "%s_count %d\n" name s.Mcobs.count)
      (listing ());
    Buffer.contents b

  let to_json () =
    let b = Buffer.create 1024 in
    Buffer.add_char b '{';
    let first = ref true in
    List.iter
      (fun (name, help, m) ->
        if !first then first := false else Buffer.add_char b ',';
        Printf.bprintf b "\n  \"%s\": {" (Mcobs.json_escape name);
        if help <> "" then
          Printf.bprintf b "\"help\":\"%s\"," (Mcobs.json_escape help);
        (match m with
        | M_counter c ->
          Printf.bprintf b "\"type\":\"counter\",\"value\":%d" (Atomic.get c)
        | M_gauge g ->
          Printf.bprintf b "\"type\":\"gauge\",\"value\":%d" (Atomic.get g)
        | M_hist h ->
          let s = hist_snapshot h in
          let q p =
            Option.value ~default:0. (Mcobs.quantile_hist s p)
          in
          Printf.bprintf b
            "\"type\":\"histogram\",\"count\":%d,\"sum_ms\":%.3f,\"max_ms\":%.3f,\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\"buckets\":[%s]"
            s.Mcobs.count s.Mcobs.sum_ms s.Mcobs.max_ms (q 0.5) (q 0.9)
            (q 0.99)
            (String.concat ","
               (Array.to_list (Array.map string_of_int s.Mcobs.buckets))));
        Buffer.add_char b '}')
      (listing ());
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  let reset_all () =
    List.iter
      (fun (_, _, m) ->
        match m with
        | M_counter c | M_gauge c -> Atomic.set c 0
        | M_hist h ->
          Mutex.lock h.h_mu;
          h.h_count <- 0;
          h.h_sum_ms <- 0.;
          h.h_max_ms <- 0.;
          Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0;
          Mutex.unlock h.h_mu)
      (listing ())
end

(* ------------------------------------------------------------------ *)
(* Structured access log                                               *)
(* ------------------------------------------------------------------ *)

module Accesslog = struct
  type entry = {
    al_trace : string;
    al_peer : string;
    al_kind : string;
    al_bytes_in : int;
    al_bytes_out : int;
    al_wall_ms : float;
    al_outcome : string;
    al_findings : int;
    al_diags : int;
    al_cache_hits : int;
  }

  (* The request path only formats nothing and writes nothing: [log]
     enqueues the entry under the mutex and a dedicated writer thread
     does the JSON formatting, the write, and the flush.  The queue is
     bounded; under overload entries are dropped (and counted) rather
     than stalling request service — degrade, don't fail. *)
  type t = {
    a_mu : Mutex.t;
    a_path : string option;
    a_sample : int;
    a_queue : entry Queue.t;
    a_limit : int;
    mutable a_dropped : int;
    mutable a_seq : int;
    mutable a_written : int;
    mutable a_closing : bool;
    mutable a_oc : out_channel option;
    a_reopen : bool Atomic.t;
    mutable a_writer : Thread.t option;
  }

  let open_channel path =
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | oc -> Some oc
    | exception Sys_error msg ->
      Mcobs.logf Mcobs.Normal "mcheckd: cannot open access log %s: %s" path
        msg;
      None

  let entry_to_json e =
    Printf.sprintf
      "{\"trace\":\"%s\",\"peer\":\"%s\",\"kind\":\"%s\",\"bytes_in\":%d,\"bytes_out\":%d,\"wall_ms\":%.3f,\"outcome\":\"%s\",\"findings\":%d,\"diags\":%d,\"cache_hits\":%d}"
      (Mcobs.json_escape e.al_trace)
      (Mcobs.json_escape e.al_peer)
      (Mcobs.json_escape e.al_kind)
      e.al_bytes_in e.al_bytes_out e.al_wall_ms
      (Mcobs.json_escape e.al_outcome)
      e.al_findings e.al_diags e.al_cache_hits

  let do_reopen t =
    (match t.a_oc with
    | Some oc -> ( try close_out oc with Sys_error _ -> ())
    | None -> ());
    t.a_oc <- Option.bind t.a_path open_channel

  (* one pass of the writer: called with the mutex held, returns with
     it held; drains the queue to a local batch and writes it with the
     lock released so [log] never waits on the filesystem *)
  let drain_batch t =
    let batch = ref [] in
    Queue.iter (fun e -> batch := e :: !batch) t.a_queue;
    Queue.clear t.a_queue;
    let batch = List.rev !batch in
    Mutex.unlock t.a_mu;
    if Atomic.get t.a_reopen then begin
      Atomic.set t.a_reopen false;
      do_reopen t
    end;
    let wrote = ref 0 in
    (match t.a_oc with
    | None -> ()
    | Some oc -> (
      try
        List.iter
          (fun e ->
            output_string oc (entry_to_json e);
            output_char oc '\n';
            incr wrote)
          batch;
        if !wrote > 0 then flush oc
      with Sys_error _ -> ()));
    Mutex.lock t.a_mu;
    t.a_written <- t.a_written + !wrote

  (* the writer ticks rather than waking per entry: a per-[log]
     [Condition.signal] would bounce the runtime lock between the
     serving thread and the writer on every request, which costs more
     than the write it was hiding.  A 25 ms tick keeps tail -f honest
     and the shutdown drain prompt. *)
  let tick_s = 0.025

  let writer_loop t () =
    let rec loop () =
      Mutex.lock t.a_mu;
      drain_batch t;
      if t.a_closing && Queue.is_empty t.a_queue then begin
        (match t.a_oc with
        | Some oc -> ( try close_out oc with Sys_error _ -> ())
        | None -> ());
        t.a_oc <- None;
        Mutex.unlock t.a_mu
      end
      else begin
        Mutex.unlock t.a_mu;
        Thread.delay tick_s;
        loop ()
      end
    in
    loop ()

  let create ?(sample = 1) ~path () =
    let t =
      {
        a_mu = Mutex.create ();
        a_path = path;
        a_sample = max 1 sample;
        a_queue = Queue.create ();
        a_limit = 4096;
        a_dropped = 0;
        a_seq = 0;
        a_written = 0;
        a_closing = false;
        a_oc = Option.bind path open_channel;
        a_reopen = Atomic.make false;
        a_writer = None;
      }
    in
    (* open failures disable the log with a warning; only a live
       channel earns a writer thread *)
    if t.a_oc <> None then t.a_writer <- Some (Thread.create (writer_loop t) ());
    t

  let log t e =
    match t.a_writer with
    | None -> false
    | Some _ ->
      Mutex.lock t.a_mu;
      let queued =
        if t.a_closing then false
        else begin
          t.a_seq <- t.a_seq + 1;
          if t.a_seq mod t.a_sample <> 0 then false
          else if Queue.length t.a_queue >= t.a_limit then begin
            t.a_dropped <- t.a_dropped + 1;
            false
          end
          else begin
            Queue.push e t.a_queue;
            true
          end
        end
      in
      Mutex.unlock t.a_mu;
      queued

  let request_reopen t = Atomic.set t.a_reopen true

  let reopen t = Atomic.set t.a_reopen true

  let lines_written t =
    Mutex.lock t.a_mu;
    let n = t.a_written in
    Mutex.unlock t.a_mu;
    n

  let dropped t =
    Mutex.lock t.a_mu;
    let n = t.a_dropped in
    Mutex.unlock t.a_mu;
    n

  let path t = t.a_path

  let close t =
    Mutex.lock t.a_mu;
    t.a_closing <- true;
    Mutex.unlock t.a_mu;
    match t.a_writer with
    | Some th ->
      Thread.join th;
      t.a_writer <- None
    | None -> ()
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Flight = struct
  type entry = {
    fl_trace : string;
    fl_kind : string;
    fl_peer : string;
    fl_begin_us : float;
    fl_wall_ms : float;
    fl_outcome : string;
    fl_notable : bool;
    fl_spans : Mcobs.span list;
  }

  type t = {
    f_mu : Mutex.t;
    f_capacity : int;
    f_threshold_ms : float;
    f_recent : entry Queue.t;
    f_notable : entry Queue.t;
    mutable f_retained : int;
  }

  let create ?(capacity = 64) ?(threshold_ms = 250.) () =
    {
      f_mu = Mutex.create ();
      f_capacity = max 1 capacity;
      f_threshold_ms = threshold_ms;
      f_recent = Queue.create ();
      f_notable = Queue.create ();
      f_retained = 0;
    }

  (* a clean verdict is unremarkable; everything else — slow, faulted,
     refused, degraded — is what post-hoc debugging needs *)
  let unremarkable = [ "clean"; "findings"; "ok" ]

  let push_bounded t q e =
    Queue.push e q;
    while Queue.length q > t.f_capacity do
      ignore (Queue.pop q)
    done

  let record t ~trace ~kind ~peer ~begin_us ~wall_ms ~outcome ~spans =
    let notable =
      wall_ms >= t.f_threshold_ms
      || not (List.mem outcome unremarkable)
    in
    let e =
      {
        fl_trace = trace;
        fl_kind = kind;
        fl_peer = peer;
        fl_begin_us = begin_us;
        fl_wall_ms = wall_ms;
        fl_outcome = outcome;
        fl_notable = notable;
        fl_spans = spans;
      }
    in
    Mutex.lock t.f_mu;
    push_bounded t t.f_recent e;
    if notable then begin
      t.f_retained <- t.f_retained + 1;
      push_bounded t t.f_notable e
    end;
    Mutex.unlock t.f_mu

  let entries t =
    Mutex.lock t.f_mu;
    let notable = List.of_seq (Queue.to_seq t.f_notable) in
    let recent = List.of_seq (Queue.to_seq t.f_recent) in
    Mutex.unlock t.f_mu;
    (* the recent ring re-lists a still-recent notable entry; drop the
       duplicate by physical identity *)
    notable @ List.filter (fun e -> not (List.memq e notable)) recent

  let retained t =
    Mutex.lock t.f_mu;
    let n = t.f_retained in
    Mutex.unlock t.f_mu;
    n

  let threshold_ms t = t.f_threshold_ms

  let span_json (sp : Mcobs.span) =
    Printf.sprintf
      "{\"name\":\"%s\",\"tid\":%d,\"begin_us\":%.1f,\"dur_us\":%.1f,\"depth\":%d,\"args\":{%s}}"
      (Mcobs.json_escape sp.Mcobs.sp_name)
      sp.Mcobs.sp_tid sp.Mcobs.sp_begin_us sp.Mcobs.sp_dur_us
      sp.Mcobs.sp_depth
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (Mcobs.json_escape k)
                (Mcobs.json_escape v))
            sp.Mcobs.sp_args))

  let entry_json e =
    Printf.sprintf
      "{\"trace\":\"%s\",\"kind\":\"%s\",\"peer\":\"%s\",\"begin_us\":%.1f,\"wall_ms\":%.3f,\"outcome\":\"%s\",\"notable\":%b,\"spans\":[%s]}"
      (Mcobs.json_escape e.fl_trace)
      (Mcobs.json_escape e.fl_kind)
      (Mcobs.json_escape e.fl_peer)
      e.fl_begin_us e.fl_wall_ms
      (Mcobs.json_escape e.fl_outcome)
      e.fl_notable
      (String.concat "," (List.map span_json e.fl_spans))

  let dump_json t =
    Printf.sprintf "{\"threshold_ms\":%.1f,\"retained\":%d,\"entries\":[%s]}\n"
      t.f_threshold_ms (retained t)
      (String.concat ",\n" (List.map entry_json (entries t)))

  let clear t =
    Mutex.lock t.f_mu;
    Queue.clear t.f_recent;
    Queue.clear t.f_notable;
    Mutex.unlock t.f_mu
end
