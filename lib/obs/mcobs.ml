(** Mcobs — the unified tracing, metrics, and logging layer.

    One structured-observability core shared by every stage of the
    checking pipeline (cfront, engine, mcd, sim).  The design constraint
    is the [Mcd_pool]: instrumentation must be safe — and cheap — inside
    worker domains, so every recording operation writes only to a
    *domain-local* buffer obtained through [Domain.DLS].  No lock is
    taken on the hot path; the global registry mutex is touched exactly
    once per domain, when its buffer is first created.  Merging happens
    at {!snapshot} time, from the coordinating domain, after the workers
    have joined — which is the only moment the scheduler reads them
    anyway.

    Everything is gated on one atomic flag: with tracing disabled (the
    default) a span is a single boolean load around the traced thunk, so
    instrumented code paths cost nothing measurable (the bench harness
    asserts < 5% overhead even with tracing enabled).

    Three exporters read a snapshot:
    - {!pp_summary} — a human-readable metric/span digest;
    - {!export_jsonl} — one JSON object per line (spans, counters,
      histograms), easy to post-process;
    - {!export_chrome} — Chrome [chrome://tracing] / Perfetto trace-event
      format ("X" complete events, per-domain tracks). *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* One process-wide origin so timestamps from every domain share a
   timeline.  [Unix.gettimeofday] is the only clock the vendored
   toolchain offers; sampling both ends of a span on the same domain
   keeps durations monotonic in practice. *)
let t_origin = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. t_origin) *. 1e6

(* ------------------------------------------------------------------ *)
(* Enable flag and verbosity                                           *)
(* ------------------------------------------------------------------ *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "OBS_TRACE" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type level = Quiet | Normal | Verbose | Debug

let level_rank = function Quiet -> 0 | Normal -> 1 | Verbose -> 2 | Debug -> 3

let level_of_rank = function
  | 0 -> Quiet
  | 1 -> Normal
  | 2 -> Verbose
  | _ -> Debug

let verbosity = Atomic.make (level_rank Normal)
let set_verbosity l = Atomic.set verbosity (level_rank l)
let get_verbosity () = level_of_rank (Atomic.get verbosity)

(* The log sink: where [logf] lines land.  Defaults to stderr so logs
   never pollute diagnostic output on stdout. *)
let sink : (level -> string -> unit) ref =
  ref (fun _ line ->
      prerr_string line;
      prerr_newline ())

let set_sink f = sink := f

let logf lvl fmt =
  Format.kasprintf
    (fun line ->
      if level_rank lvl <= Atomic.get verbosity && lvl <> Quiet then
        !sink lvl line)
    fmt

(* ------------------------------------------------------------------ *)
(* Domain-local buffers                                                *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_tid : int;  (** domain id — one track per domain in the trace UI *)
  sp_trace : string;  (** request trace id; [""] = no trace context *)
  sp_begin_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** nesting depth within its domain at record time *)
  sp_args : (string * string) list;
}

(* The ambient trace context.  One process-global cell rather than a
   DLS slot, deliberately: Mcd worker domains are spawned fresh for
   each scheduling pass, and a DLS value would not cross the spawn.
   The daemon serializes checks on its session mutex, so at most one
   traced request is in flight when workers run — the same discipline
   [snapshot] already leans on. *)
let ambient_trace = Atomic.make ""

let set_trace trace = Atomic.set ambient_trace trace
let current_trace () = Atomic.get ambient_trace

let with_trace trace f =
  let prev = Atomic.get ambient_trace in
  Atomic.set ambient_trace trace;
  Fun.protect ~finally:(fun () -> Atomic.set ambient_trace prev) f

(* Log-scale latency histogram; bucket [i] counts samples <= bounds.(i),
   the last bucket is the overflow. *)
let hist_bounds_ms = [| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0; 10000.0 |]

type hist = {
  mutable h_count : int;
  mutable h_sum_ms : float;
  mutable h_max_ms : float;
  h_buckets : int array;  (* length hist_bounds_ms + 1 *)
}

type buffer = {
  b_tid : int;
  mutable b_spans : span list;  (* reverse completion order *)
  mutable b_nspans : int;
  mutable b_dropped : int;
  mutable b_depth : int;
  b_counters : (string, int ref) Hashtbl.t;
  b_hists : (string, hist) Hashtbl.t;
}

(* Buffers stay registered after their domain joins; [snapshot] reads
   them from the coordinating domain once the workers are quiet. *)
let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

(* A runaway tracer must not take the process down with it: each domain
   keeps at most this many spans and counts the rest as dropped. *)
let max_spans_per_domain = 500_000

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_spans = [];
          b_nspans = 0;
          b_dropped = 0;
          b_depth = 0;
          b_counters = Hashtbl.create 32;
          b_hists = Hashtbl.create 16;
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let count ?(by = 1) name =
  if enabled () then begin
    let b = buffer () in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add b.b_counters name (ref by)
  end

let observe name ms =
  if enabled () then begin
    let b = buffer () in
    let h =
      match Hashtbl.find_opt b.b_hists name with
      | Some h -> h
      | None ->
        let h =
          {
            h_count = 0;
            h_sum_ms = 0.;
            h_max_ms = 0.;
            h_buckets = Array.make (Array.length hist_bounds_ms + 1) 0;
          }
        in
        Hashtbl.add b.b_hists name h;
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum_ms <- h.h_sum_ms +. ms;
    if ms > h.h_max_ms then h.h_max_ms <- ms;
    let rec bucket i =
      if i >= Array.length hist_bounds_ms || ms <= hist_bounds_ms.(i) then i
      else bucket (i + 1)
    in
    let i = bucket 0 in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1
  end

let push_span b sp =
  if b.b_nspans >= max_spans_per_domain then b.b_dropped <- b.b_dropped + 1
  else begin
    b.b_spans <- sp :: b.b_spans;
    b.b_nspans <- b.b_nspans + 1
  end

(** Record a span whose endpoints were measured by the caller (with
    {!now_us}) — used when one measurement must feed both a span and a
    derived statistic, so the wall time is sampled exactly once. *)
let record_span ?trace ?(args = []) ~name ~begin_us ~dur_us () =
  if enabled () then begin
    let b = buffer () in
    let sp_trace =
      match trace with Some tr -> tr | None -> Atomic.get ambient_trace
    in
    push_span b
      {
        sp_name = name;
        sp_tid = b.b_tid;
        sp_trace;
        sp_begin_us = begin_us;
        sp_dur_us = dur_us;
        sp_depth = b.b_depth;
        sp_args = args;
      }
  end

let with_span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let b = buffer () in
    let depth = b.b_depth in
    b.b_depth <- depth + 1;
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now_us () -. t0 in
        b.b_depth <- depth;
        push_span b
          {
            sp_name = name;
            sp_tid = b.b_tid;
            (* read at completion: workers inherit whatever request
               context was ambient while they ran *)
            sp_trace = Atomic.get ambient_trace;
            sp_begin_us = t0;
            sp_dur_us = dur;
            sp_depth = depth;
            sp_args = args;
          })
      f
  end

(* ------------------------------------------------------------------ *)
(* Snapshots and merging                                               *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  count : int;
  sum_ms : float;
  max_ms : float;
  buckets : int array;
}

type snapshot = {
  spans : span list;  (** every domain, ascending begin time *)
  counters : (string * int) list;  (** merged across domains, by name *)
  hists : (string * hist_snapshot) list;
  dropped_spans : int;
}

(* Counter merge: an associative, commutative union-with-(+) over
   name-sorted association lists.  Factored out (and exported) because
   the per-domain buffers are merged pairwise in arbitrary order, so
   associativity is exactly the property the qcheck suite pins down. *)
let merge_counters (a : (string * int) list) (b : (string * int) list) :
    (string * int) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some r -> r := !r + v
      | None -> Hashtbl.add tbl k (ref v))
    (a @ b);
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)

let merge_hist (a : hist_snapshot) (b : hist_snapshot) : hist_snapshot =
  {
    count = a.count + b.count;
    sum_ms = a.sum_ms +. b.sum_ms;
    max_ms = Float.max a.max_ms b.max_ms;
    buckets = Array.init (Array.length a.buckets) (fun i ->
        a.buckets.(i) + b.buckets.(i));
  }

let hist_snapshot_of (h : hist) : hist_snapshot =
  {
    count = h.h_count;
    sum_ms = h.h_sum_ms;
    max_ms = h.h_max_ms;
    buckets = Array.copy h.h_buckets;
  }

(** Merge every domain's buffer into one immutable snapshot.  Call from
    the coordinating domain while no instrumented worker is running —
    the same discipline [Mcd] already imposes on its result slots. *)
let snapshot () : snapshot =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  let spans =
    List.concat_map (fun b -> List.rev b.b_spans) buffers
    |> List.sort (fun a b ->
           let c = Float.compare a.sp_begin_us b.sp_begin_us in
           if c <> 0 then c else Int.compare a.sp_tid b.sp_tid)
  in
  let counters =
    List.fold_left
      (fun acc b ->
        merge_counters acc
          (Hashtbl.fold (fun k r l -> (k, !r) :: l) b.b_counters []))
      [] buffers
  in
  let hists =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k h ->
            let s = hist_snapshot_of h in
            match Hashtbl.find_opt tbl k with
            | Some prev -> Hashtbl.replace tbl k (merge_hist prev s)
            | None -> Hashtbl.add tbl k s)
          b.b_hists)
      buffers;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
  in
  let dropped =
    List.fold_left (fun acc b -> acc + b.b_dropped) 0 buffers
  in
  { spans; counters; hists; dropped_spans = dropped }

(** Clear every registered buffer.  Same calling discipline as
    {!snapshot}. *)
let reset () =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun b ->
      b.b_spans <- [];
      b.b_nspans <- 0;
      b.b_dropped <- 0;
      b.b_depth <- 0;
      Hashtbl.reset b.b_counters;
      Hashtbl.reset b.b_hists)
    buffers

(** Remove and return every span recorded under [trace], across all
    domains, leaving everything else (other traces' spans, counters,
    histograms) in place — unlike {!reset}, this is safe to interleave
    with other requests' aggregate metrics.  Same calling discipline as
    {!snapshot}: no domain may be concurrently recording under this
    trace. *)
let drain_trace trace =
  Mutex.lock registry_mutex;
  let buffers = !registry in
  Mutex.unlock registry_mutex;
  let matched = ref [] in
  List.iter
    (fun b ->
      let mine, rest =
        List.partition (fun sp -> String.equal sp.sp_trace trace) b.b_spans
      in
      if mine <> [] then begin
        b.b_spans <- rest;
        b.b_nspans <- List.length rest;
        matched := List.rev_append mine !matched
      end)
    buffers;
  List.sort
    (fun a b ->
      let c = Float.compare a.sp_begin_us b.sp_begin_us in
      if c <> 0 then c else Int.compare a.sp_tid b.sp_tid)
    !matched

(* ------------------------------------------------------------------ *)
(* Quantiles                                                           *)
(* ------------------------------------------------------------------ *)

(* Estimate the p-quantile of a log-scale histogram: walk the
   cumulative counts to the bucket holding the ceil(p*n)-th sample and
   interpolate linearly inside it.  Monotone in p by construction (the
   target rank is monotone, interpolation within a bucket is monotone,
   and consecutive buckets share their boundary), and always bracketed
   by the bucket's bounds; the overflow bucket is capped at the
   recorded max. *)
let quantile_hist (h : hist_snapshot) p =
  if h.count = 0 || Float.is_nan p || p < 0. || p > 1. then None
  else begin
    let target = p *. float_of_int h.count in
    let nb = Array.length h.buckets in
    let rec go i cum =
      if i >= nb then Some h.max_ms
      else
        let n = h.buckets.(i) in
        let cum' = cum + n in
        if n > 0 && float_of_int cum' >= target then begin
          let lo = if i = 0 then 0. else hist_bounds_ms.(i - 1) in
          let hi =
            if i < Array.length hist_bounds_ms then hist_bounds_ms.(i)
            else Float.max lo h.max_ms
          in
          let frac = (target -. float_of_int cum) /. float_of_int n in
          let frac = Float.min 1. (Float.max 0. frac) in
          Some (lo +. (frac *. (hi -. lo)))
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

let quantile (s : snapshot) name p =
  match List.assoc_opt name s.hists with
  | None -> None
  | Some h -> quantile_hist h p

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_args args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

(* Chrome trace-event format: one "X" (complete) event per span, one
   process, one track (tid) per domain.  Loadable in chrome://tracing
   and Perfetto. *)
let export_chrome oc (s : snapshot) =
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun sp ->
      if !first then first := false else output_string oc ",";
      let args =
        if sp.sp_trace = "" then sp.sp_args
        else ("trace", sp.sp_trace) :: sp.sp_args
      in
      Printf.fprintf oc
        "\n\
         {\"name\":\"%s\",\"cat\":\"mcheck\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
        (json_escape sp.sp_name) sp.sp_begin_us sp.sp_dur_us sp.sp_tid
        (json_args args))
    s.spans;
  (* counters ride along as metadata-style counter events at the end of
     the timeline so the numbers are visible in the UI too *)
  let t_end =
    List.fold_left
      (fun acc sp -> Float.max acc (sp.sp_begin_us +. sp.sp_dur_us))
      0. s.spans
  in
  List.iter
    (fun (name, v) ->
      if !first then first := false else output_string oc ",";
      Printf.fprintf oc
        "\n\
         {\"name\":\"%s\",\"cat\":\"mcheck\",\"ph\":\"C\",\"ts\":%.1f,\"pid\":1,\"tid\":0,\"args\":{\"value\":%d}}"
        (json_escape name) t_end v)
    s.counters;
  output_string oc "\n]}\n"

let export_chrome_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_chrome oc s)

(* JSON Lines: one self-describing object per line. *)
let export_jsonl oc (s : snapshot) =
  List.iter
    (fun sp ->
      Printf.fprintf oc
        "{\"type\":\"span\",\"name\":\"%s\",\"tid\":%d,\"trace\":\"%s\",\"begin_us\":%.1f,\"dur_us\":%.1f,\"depth\":%d,\"args\":{%s}}\n"
        (json_escape sp.sp_name) sp.sp_tid (json_escape sp.sp_trace)
        sp.sp_begin_us sp.sp_dur_us sp.sp_depth (json_args sp.sp_args))
    s.spans;
  List.iter
    (fun (name, v) ->
      Printf.fprintf oc "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
        (json_escape name) v)
    s.counters;
  List.iter
    (fun (name, h) ->
      Printf.fprintf oc
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum_ms\":%.3f,\"max_ms\":%.3f,\"buckets\":[%s]}\n"
        (json_escape name) h.count h.sum_ms h.max_ms
        (String.concat ","
           (Array.to_list (Array.map string_of_int h.buckets))))
    s.hists

let export_jsonl_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_jsonl oc s)

(* Human-readable digest: counters, histograms, and spans aggregated by
   name (count / total / mean) — the Table 5/6-style timing breakdown. *)
let pp_summary ppf (s : snapshot) =
  Format.fprintf ppf "@[<v>== mcobs summary ==";
  if s.counters <> [] then begin
    Format.fprintf ppf "@,counters:";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "@,  %-36s %10d" name v)
      s.counters
  end;
  if s.hists <> [] then begin
    Format.fprintf ppf "@,histograms (ms):";
    List.iter
      (fun (name, h) ->
        let q p = Option.value ~default:0. (quantile_hist h p) in
        Format.fprintf ppf
          "@,  %-36s n=%-8d mean=%-8.3f p50=%-8.3f p90=%-8.3f p99=%-8.3f \
           max=%.2f"
          name h.count
          (if h.count = 0 then 0. else h.sum_ms /. float_of_int h.count)
          (q 0.5) (q 0.9) (q 0.99) h.max_ms)
      s.hists
  end;
  if s.spans <> [] then begin
    let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun sp ->
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some (n, total) ->
          incr n;
          total := !total +. sp.sp_dur_us
        | None -> Hashtbl.add tbl sp.sp_name (ref 1, ref sp.sp_dur_us))
      s.spans;
    Format.fprintf ppf "@,spans (by name):";
    Hashtbl.fold (fun name (n, total) acc -> (name, !n, !total) :: acc) tbl []
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
    |> List.iter (fun (name, n, total_us) ->
           Format.fprintf ppf "@,  %-36s n=%-8d total=%8.2f ms  mean=%8.3f ms"
             name n (total_us /. 1000.)
             (total_us /. 1000. /. float_of_int n))
  end;
  if s.dropped_spans > 0 then
    Format.fprintf ppf "@,dropped spans: %d" s.dropped_spans;
  Format.fprintf ppf "@]"
