(** Mcobs — the unified tracing, metrics, and logging layer of the
    checking pipeline.

    Recording is domain-local and lock-free on the hot path: each domain
    owns a buffer (via [Domain.DLS]) into which spans, counters, and
    histogram samples are written; the one global mutex is taken only
    when a domain first creates its buffer and when the coordinating
    domain takes a {!snapshot} after the workers have joined.  That makes
    every instrumentation point safe inside [Mcd_pool] workers.

    Everything is gated on a single enable flag ({!set_enabled}, or the
    [OBS_TRACE=1] environment variable): with tracing off, a span costs
    one boolean load. *)

(** {1 Clock} *)

val now_us : unit -> float
(** microseconds since the process-wide trace origin; every domain shares
    the same timeline *)

(** {1 Enabling} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** default: [true] iff the [OBS_TRACE] environment variable is [1],
    [true], or [yes] at startup *)

(** {1 Log sink and verbosity} *)

type level = Quiet | Normal | Verbose | Debug

val set_verbosity : level -> unit
val get_verbosity : unit -> level

val logf : level -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** log a line at the given level; printed through the sink (stderr by
    default) when the level is within the current verbosity.  [Quiet]
    lines are never printed — it is the verbosity floor, not a level to
    log at. *)

val set_sink : (level -> string -> unit) -> unit
(** redirect log lines (e.g. into a file, or to drop them) *)

(** {1 Recording} *)

type span = {
  sp_name : string;
  sp_tid : int;  (** domain id — one trace track per domain *)
  sp_trace : string;  (** request trace id; [""] = no trace context *)
  sp_begin_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** nesting depth within its domain *)
  sp_args : (string * string) list;
}

(** {2 Trace context}

    The ambient trace id is a process-global cell (not domain-local, so
    freshly spawned [Mcd_pool] workers inherit it): every span records
    the ambient id at completion time, which attributes one request's
    spans end-to-end across server thread, session, and worker domains.
    The caller must serialize traced regions — the daemon's session
    mutex already does. *)

val set_trace : string -> unit
(** set the ambient trace id ([""] clears it) *)

val current_trace : unit -> string

val with_trace : string -> (unit -> 'a) -> 'a
(** run the thunk with the ambient trace id set, restoring the previous
    id afterwards (exceptions included) *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** run the thunk inside a named span; with tracing disabled this is just
    the thunk call.  Exceptions propagate; the span is recorded either
    way. *)

val record_span :
  ?trace:string ->
  ?args:(string * string) list ->
  name:string ->
  begin_us:float ->
  dur_us:float ->
  unit ->
  unit
(** record a span whose endpoints the caller measured with {!now_us} —
    for sites that must feed one measurement into both a span and a
    derived statistic (e.g. [Mcd_pool] worker wall time).  [?trace]
    overrides the ambient trace id (the daemon's root request span is
    recorded after the ambient context is cleared). *)

val count : ?by:int -> string -> unit
(** bump a named counter (domain-local; merged at snapshot) *)

val observe : string -> float -> unit
(** add a sample (in milliseconds) to a named log-scale histogram *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum_ms : float;
  max_ms : float;
  buckets : int array;  (** log-scale buckets; last is overflow *)
}

type snapshot = {
  spans : span list;  (** every domain, ascending begin time *)
  counters : (string * int) list;  (** merged across domains, by name *)
  hists : (string * hist_snapshot) list;
  dropped_spans : int;  (** spans discarded by the per-domain cap *)
}

val snapshot : unit -> snapshot
(** merge every domain's buffer; call from the coordinating domain while
    no instrumented worker is running *)

val reset : unit -> unit
(** clear every buffer (same calling discipline as {!snapshot}) *)

val drain_trace : string -> span list
(** remove and return every span recorded under the given trace id
    (ascending begin time), leaving other traces' spans and all
    counters/histograms untouched — the flight recorder's per-request
    harvest.  Same calling discipline as {!snapshot} with respect to
    the drained trace. *)

val merge_counters :
  (string * int) list -> (string * int) list -> (string * int) list
(** union-with-(+), result sorted by name — associative and commutative
    (the qcheck suite pins this down), which is what makes the pairwise
    per-domain merge order-insensitive *)

val hist_bounds_ms : float array
(** upper bounds of the histogram buckets, in milliseconds *)

val quantile : snapshot -> string -> float -> float option
(** [quantile s name p] estimates the [p]-quantile (p in [0,1]) of the
    named histogram by linear interpolation inside the bucket holding
    the target rank: monotone in [p], bracketed by the bucket's bounds
    (the overflow bucket is capped at the recorded max).  [None] for an
    unknown name, an empty histogram, or [p] outside [0,1]. *)

val quantile_hist : hist_snapshot -> float -> float option
(** the same estimate on a bare histogram snapshot (what the live
    metrics registry aggregates) *)

(** {1 Exporters} *)

val json_escape : string -> string
(** escape a string for inclusion inside a JSON string literal (used by
    every JSON-shaped exporter here and in [Mctel]) *)

val pp_summary : Format.formatter -> snapshot -> unit
(** human-readable digest: counters, histograms, spans aggregated by
    name *)

val export_chrome : out_channel -> snapshot -> unit
(** Chrome trace-event JSON (["X"] complete events, one track per
    domain) — loadable in [chrome://tracing] and Perfetto *)

val export_chrome_file : string -> snapshot -> unit

val export_jsonl : out_channel -> snapshot -> unit
(** one self-describing JSON object per line (spans, counters,
    histograms) *)

val export_jsonl_file : string -> snapshot -> unit
