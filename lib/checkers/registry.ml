(** The eight FLASH checkers, with the metadata Table 7 reports. *)

type checker = {
  name : string;
  description : string;
  metal_loc : int;  (** size of the paper's metal extension (Table 7) *)
  run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list;
  applied : Ast.tunit list -> int;
}

let all : checker list =
  [
    {
      name = Buffer_mgmt.name;
      description = "buffer allocation/free discipline (Section 6)";
      metal_loc = Buffer_mgmt.metal_loc;
      run = Buffer_mgmt.run;
      applied = Buffer_mgmt.applied;
    };
    {
      name = Msg_length.name;
      description = "message length vs has-data consistency (Section 5)";
      metal_loc = Msg_length.metal_loc;
      run = Msg_length.run;
      applied = Msg_length.applied;
    };
    {
      name = Lane_checker.name;
      description = "per-lane send allowances, inter-procedural (Section 7)";
      metal_loc = Lane_checker.metal_loc;
      run = (fun ~spec tus -> Lane_checker.run ~spec tus);
      applied = Lane_checker.applied;
    };
    {
      name = Buffer_race.name;
      description = "data-buffer fill synchronisation (Section 4)";
      metal_loc = Buffer_race.metal_loc;
      run = Buffer_race.run;
      applied = Buffer_race.applied;
    };
    {
      name = Alloc_check.name;
      description = "allocation failure checked before use (Section 9)";
      metal_loc = Alloc_check.metal_loc;
      run = Alloc_check.run;
      applied = Alloc_check.applied;
    };
    {
      name = Dir_entry.name;
      description = "directory entry load/writeback discipline (Section 9)";
      metal_loc = Dir_entry.metal_loc;
      run = (fun ~spec tus -> Dir_entry.run ~spec tus);
      applied = Dir_entry.applied;
    };
    {
      name = Send_wait.name;
      description = "synchronous send/wait pairing (Section 9)";
      metal_loc = Send_wait.metal_loc;
      run = Send_wait.run;
      applied = Send_wait.applied;
    };
    {
      name = Exec_restrict.name;
      description = "handler execution restrictions and hooks (Section 8)";
      metal_loc = Exec_restrict.metal_loc;
      run = Exec_restrict.run;
      applied = Exec_restrict.applied;
    };
    {
      name = No_float.name;
      description = "no floating point in protocol code (Section 8)";
      metal_loc = No_float.metal_loc;
      run = No_float.run;
      applied = No_float.applied;
    };
  ]

let find name = List.find_opt (fun c -> String.equal c.name name) all

let names = List.map (fun c -> c.name) all

(** Run every checker on one protocol. *)
let run_all ~spec (tus : Ast.tunit list) : (string * Diag.t list) list =
  List.map (fun c -> (c.name, c.run ~spec tus)) all
