(** The nine FLASH checkers, with the metadata Table 7 reports, behind
    the two-phase checker interface the [Mcd] scheduler drives. *)

type ctx = {
  all_units : Ast.tunit list;
  callgraph : Callgraph.t Lazy.t;
}

let make_ctx tus = { all_units = tus; callgraph = lazy (Callgraph.build tus) }

type check_fn = spec:Flash_api.spec -> ctx:ctx -> Prep.t -> Diag.t list
type check_global = spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

type phase =
  | Per_function of {
      check_fn : check_fn;
      finalize : Diag.t list -> Diag.t list;
      product : spec:Flash_api.spec -> Engine.pmachine option;
    }
  | Whole_program of check_global

type checker = {
  name : string;
  description : string;
  metal_loc : int;
  phase : phase;
  run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list;
  applied : Ast.tunit list -> int;
}

let run_of_phase (phase : phase) : spec:Flash_api.spec -> Ast.tunit list ->
  Diag.t list =
  match phase with
  | Per_function { check_fn; finalize; _ } ->
    fun ~spec tus ->
      let ctx = make_ctx tus in
      let fn = check_fn ~spec ~ctx in
      finalize
        (List.concat_map
           (fun tu ->
             List.concat_map
               (fun f -> fn (Prep.build f))
               (Ast.functions tu))
           tus)
  | Whole_program g -> fun ~spec tus -> g ~spec tus

let make ~name ~description ~metal_loc ~phase ~applied =
  { name; description; metal_loc; phase; run = run_of_phase phase; applied }

(* lift a checker module's [check_prep ~spec] (staged on the spec alone)
   into the registry signature *)
let fn staged : check_fn = fun ~spec ~ctx -> let _ = ctx in staged ~spec

let all : checker list =
  [
    make ~name:Buffer_mgmt.name
      ~description:"buffer allocation/free discipline (Section 6)"
      ~metal_loc:Buffer_mgmt.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Buffer_mgmt.check_prep;
             finalize = Fun.id;
             product = Buffer_mgmt.product;
           })
      ~applied:Buffer_mgmt.applied;
    make ~name:Msg_length.name
      ~description:"message length vs has-data consistency (Section 5)"
      ~metal_loc:Msg_length.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Msg_length.check_prep;
             finalize = Fun.id;
             product = Msg_length.product;
           })
      ~applied:Msg_length.applied;
    make ~name:Lane_checker.name
      ~description:"per-lane send allowances, inter-procedural (Section 7)"
      ~metal_loc:Lane_checker.metal_loc
      ~phase:
        (Whole_program (fun ~spec tus -> Lane_checker.run ~spec tus))
      ~applied:Lane_checker.applied;
    make ~name:Buffer_race.name
      ~description:"data-buffer fill synchronisation (Section 4)"
      ~metal_loc:Buffer_race.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Buffer_race.check_prep;
             finalize = Fun.id;
             product = Buffer_race.product;
           })
      ~applied:Buffer_race.applied;
    make ~name:Alloc_check.name
      ~description:"allocation failure checked before use (Section 9)"
      ~metal_loc:Alloc_check.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Alloc_check.check_prep;
             finalize = Fun.id;
             product = Alloc_check.product;
           })
      ~applied:Alloc_check.applied;
    make ~name:Dir_entry.name
      ~description:"directory entry load/writeback discipline (Section 9)"
      ~metal_loc:Dir_entry.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn (fun ~spec -> Dir_entry.check_prep ?nak_pruning:None ~spec);
             finalize = Fun.id;
             product = (fun ~spec -> Dir_entry.product ~spec ());
           })
      ~applied:Dir_entry.applied;
    make ~name:Send_wait.name
      ~description:"synchronous send/wait pairing (Section 9)"
      ~metal_loc:Send_wait.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Send_wait.check_prep;
             finalize = Fun.id;
             product = Send_wait.product;
           })
      ~applied:Send_wait.applied;
    make ~name:Exec_restrict.name
      ~description:"handler execution restrictions and hooks (Section 8)"
      ~metal_loc:Exec_restrict.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn Exec_restrict.check_prep;
             finalize = Diag.normalize;
             product = Exec_restrict.product;
           })
      ~applied:Exec_restrict.applied;
    make ~name:No_float.name
      ~description:"no floating point in protocol code (Section 8)"
      ~metal_loc:No_float.metal_loc
      ~phase:
        (Per_function
           {
             check_fn = fn No_float.check_prep;
             finalize = Diag.normalize;
             product = No_float.product;
           })
      ~applied:No_float.applied;
  ]

let find name = List.find_opt (fun c -> String.equal c.name name) all

let names = List.map (fun c -> c.name) all

(** Run every checker on one protocol. *)
let run_all ~spec (tus : Ast.tunit list) : (string * Diag.t list) list =
  List.map (fun c -> (c.name, c.run ~spec tus)) all

(** Run every checker on one protocol, building each function's [Prep]
    exactly once and sharing it across all per-function checkers — the
    fused sequential driver.  Per-checker results accumulate in source
    order, so the output is exactly [run_all]'s.

    With [guard] (the default), each (checker, function) pair runs
    behind a fault barrier: an exception is converted into a
    Warning-severity ["internal"] diagnostic plus a degraded
    flow-insensitive retry, and the run completes — a non-empty fault
    collection appends one extra [("internal", _)] entry to the result
    list.  [~guard:false] drops the barrier (and its [try]), which is
    what the overhead benchmark A/Bs against. *)
let run_all_fused ?(guard = true) ~spec (tus : Ast.tunit list) :
    (string * Diag.t list) list =
  let ctx = make_ctx tus in
  let faults = ref [] in
  let fault ~loc ~func msg =
    faults :=
      Diag.make ~severity:Diag.Warning ~checker:"internal" ~loc ~func msg
      :: !faults
  in
  let staged =
    List.map
      (fun c ->
        match c.phase with
        | Per_function { check_fn; finalize; _ } ->
          `Pf (c.name, check_fn ~spec ~ctx, finalize, ref [])
        | Whole_program g -> `Wp g)
      all
  in
  let run_one name fn prep (f : Ast.func) =
    if not guard then fn prep
    else
      try fn prep
      with exn ->
        fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          (Printf.sprintf
             "checker %s failed (%s); a degraded flow-insensitive pass \
              was substituted"
             name (Engine.describe_fault exn));
        (try Engine.with_degraded (fun () -> fn prep) with _ -> [])
  in
  List.iter
    (fun tu ->
      List.iter
        (fun f ->
          match Prep.build f with
          | exception exn when guard ->
            fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
              (Printf.sprintf
                 "function could not be prepared (%s); all checkers \
                  skipped for this function"
                 (Engine.describe_fault exn))
          | prep ->
            List.iter
              (function
                | `Pf (name, fn, _, acc) -> acc := run_one name fn prep f :: !acc
                | `Wp _ -> ())
              staged)
        (Ast.functions tu))
    tus;
  let entries =
    List.map2
      (fun c st ->
        match st with
        | `Pf (_, _, finalize, acc) ->
          (c.name, finalize (List.concat (List.rev !acc)))
        | `Wp g ->
          if not guard then (c.name, g ~spec tus)
          else (
            match g ~spec tus with
            | slice -> (c.name, slice)
            | exception exn ->
              fault ~loc:Loc.none ~func:"<whole-program>"
                (Printf.sprintf
                   "whole-program checker %s failed (%s); a degraded \
                    flow-insensitive pass was substituted"
                   c.name (Engine.describe_fault exn));
              ( c.name,
                try Engine.with_degraded (fun () -> g ~spec tus)
                with _ -> [] )))
      all staged
  in
  match !faults with
  | [] -> entries
  | fs -> entries @ [ ("internal", Diag.normalize fs) ]

(* A per-function checker staged for the product driver. *)
type staged_pf = {
  s_name : string;
  s_fn : Prep.t -> Diag.t list;
  s_finalize : Diag.t list -> Diag.t list;
  s_machine : Engine.pmachine option;
  s_acc : Diag.t list list ref;
}

(** [run_all_fused] with the per-checker traversals replaced by one
    product-automaton walk per function.  The scan only detects: a
    machine flagged dirty (it could emit on this function) re-runs
    through its ordinary per-checker traversal, whose output — witnesses
    included — is authoritative; a clean machine's result is [] by
    construction.  Checkers without a machine (the pure AST walkers)
    always run directly; they are linear single passes already.

    Containment (budgets, degraded mode, fault injection) delegates to
    [run_all_fused] wholesale so those paths keep their exact
    per-checker semantics.  A scan that overflows ([Product_overflow])
    or crashes falls back to re-running every machine on that function —
    same output, no walk saved. *)
let run_all_product ?(guard = true) ~spec (tus : Ast.tunit list) :
    (string * Diag.t list) list =
  if Engine.containment_active () then run_all_fused ~guard ~spec tus
  else begin
    let ctx = make_ctx tus in
    let faults = ref [] in
    let fault ~loc ~func msg =
      faults :=
        Diag.make ~severity:Diag.Warning ~checker:"internal" ~loc ~func msg
        :: !faults
    in
    let staged =
      List.map
        (fun c ->
          match c.phase with
          | Per_function { check_fn; finalize; product } ->
            `Pf
              {
                s_name = c.name;
                s_fn = check_fn ~spec ~ctx;
                s_finalize = finalize;
                s_machine = product ~spec;
                s_acc = ref [];
              }
          | Whole_program g -> `Wp g)
        all
    in
    let pfs =
      Array.of_list
        (List.filter_map (function `Pf p -> Some p | `Wp _ -> None) staged)
    in
    (* the packed machines, in [pfs] order, skipping machine-less
       checkers *)
    let machines =
      Array.of_list
        (List.filter_map
           (fun p -> p.s_machine)
           (Array.to_list pfs))
    in
    let run_one name fn prep (f : Ast.func) =
      if not guard then fn prep
      else
        try fn prep
        with exn ->
          fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
            (Printf.sprintf
               "checker %s failed (%s); a degraded flow-insensitive pass \
                was substituted"
               name (Engine.describe_fault exn));
          (try Engine.with_degraded (fun () -> fn prep) with _ -> [])
    in
    List.iter
      (fun tu ->
        List.iter
          (fun f ->
            match Prep.build f with
            | exception exn when guard ->
              fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
                (Printf.sprintf
                   "function could not be prepared (%s); all checkers \
                    skipped for this function"
                   (Engine.describe_fault exn))
            | prep ->
              let dirty =
                if Array.length machines = 0 then [||]
                else
                  try Engine.product_scan prep machines
                  with _ ->
                    (* overflow or a machine crash: rerun everything;
                       the guarded per-checker path reproduces (and
                       contains) any crash *)
                    Array.map (fun _ -> true) machines
              in
              let mi = ref 0 in
              Array.iter
                (fun p ->
                  let rerun =
                    match p.s_machine with
                    | None -> true
                    | Some _ ->
                      let d = dirty.(!mi) in
                      incr mi;
                      d
                  in
                  if rerun then
                    p.s_acc := run_one p.s_name p.s_fn prep f :: !(p.s_acc))
                pfs)
          (Ast.functions tu))
      tus;
    let entries =
      List.map2
        (fun c st ->
          match st with
          | `Pf p -> (c.name, p.s_finalize (List.concat (List.rev !(p.s_acc))))
          | `Wp g ->
            if not guard then (c.name, g ~spec tus)
            else (
              match g ~spec tus with
              | slice -> (c.name, slice)
              | exception exn ->
                fault ~loc:Loc.none ~func:"<whole-program>"
                  (Printf.sprintf
                     "whole-program checker %s failed (%s); a degraded \
                      flow-insensitive pass was substituted"
                     c.name (Engine.describe_fault exn));
                ( c.name,
                  try Engine.with_degraded (fun () -> g ~spec tus)
                  with _ -> [] )))
        all staged
    in
    match !faults with
    | [] -> entries
    | fs -> entries @ [ ("internal", Diag.normalize fs) ]
  end
