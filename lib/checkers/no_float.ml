(** The no-floating-point checker — the paper's separate 7-line metal
    extension (Table 7).

    The MAGIC protocol processor has no floating-point unit, so FLASH code
    must never touch a float.  The published extension "registers a
    function with xg++ that is invoked on every tree node and checks that
    no tree node has a floating point type"; this is the same walk over
    the type-annotated AST. *)

let name = "no_float"
let metal_loc = 7

let diag ~loc ~func msg = Diag.make ~checker:name ~loc ~func msg

let check_func (f : Ast.func) : Diag.t list =
  let diags = ref [] in
  let on_expr (e : Ast.expr) =
    let is_float =
      match e.Ast.edesc with
      | Ast.Float_lit _ -> true
      | _ -> (
        match e.Ast.ety with
        | Some t -> Ctype.is_floating t
        | None -> false)
    in
    if is_float then
      diags :=
        diag ~loc:e.Ast.eloc ~func:f.Ast.f_name
          "floating point operation in protocol code"
        :: !diags
  in
  List.iter
    (fun s ->
      Ast.iter_stmt
        (fun s ->
          match s.Ast.sdesc with
          | Ast.Sdecl v when Ctype.is_floating v.Ast.v_type ->
            diags :=
              diag ~loc:s.Ast.sloc ~func:f.Ast.f_name
                "floating point variable in protocol code"
              :: !diags
          | _ -> ())
        s)
    f.Ast.f_body;
  List.iter
    (fun s -> Ast.iter_stmt_exprs (fun e -> Ast.iter_expr on_expr e) s)
    f.Ast.f_body;
  (* float-typed parameters and return values are just as illegal *)
  if Ctype.is_floating f.Ast.f_ret then
    diags :=
      diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
        "handler returns a floating point value"
      :: !diags;
  List.iter
    (fun (pname, ty) ->
      if Ctype.is_floating ty then
        diags :=
          diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
            (Printf.sprintf "floating point parameter %s" pname)
          :: !diags)
    f.Ast.f_params;
  !diags

let check_fn ~spec (f : Ast.func) : Diag.t list =
  let _ = spec in
  check_func f

(* Pure AST walker: the prep's CFG is unused, only the function. *)
let check_prep ~spec (prep : Prep.t) : Diag.t list =
  let _ = spec in
  check_func prep.Prep.func

(* Not a state machine — nothing to compose into the product scan. *)
let product ~spec : Engine.pmachine option =
  let _ = spec in
  None

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let _ = spec in
  Diag.normalize
    (List.concat_map
       (fun tu -> List.concat_map check_func (Ast.functions tu))
       tus)

(** Expressions examined. *)
let applied (tus : Ast.tunit list) : int =
  let count = ref 0 in
  List.iter
    (fun tu ->
      List.iter
        (fun (f : Ast.func) ->
          List.iter
            (fun s ->
              Ast.iter_stmt_exprs
                (fun e -> Ast.iter_expr (fun _ -> incr count) e)
                s)
            f.Ast.f_body)
        (Ast.functions tu))
    tus;
  !count
