(** The nine FLASH checkers, with the metadata Table 7 reports. *)

type checker = {
  name : string;
  description : string;
  metal_loc : int;  (** size of the paper's metal extension (Table 7) *)
  run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list;
  applied : Ast.tunit list -> int;
      (** the "number of times the check was applied" metric *)
}

val all : checker list
val find : string -> checker option
val names : string list
val run_all : spec:Flash_api.spec -> Ast.tunit list -> (string * Diag.t list) list
