(** The nine FLASH checkers, with the metadata Table 7 reports.

    Checkers expose a two-phase interface so a scheduler (the [Mcd]
    daemon core) can dispatch *(checker x function)* work units:

    - intra-procedural checkers provide a per-function phase
      [check_fn : spec -> ctx -> Prep.t -> Diag.t list] whose results,
      concatenated in source order and passed through the checker's
      [finalize], are exactly what the whole-program [run] produces;
    - inter-procedural checkers ([lanes]) provide a whole-program phase
      [check_global : spec -> tunits -> Diag.t list].

    The derived [run] field keeps the original one-shot signature working
    for every caller. *)

type ctx = {
  all_units : Ast.tunit list;  (** the whole program being checked *)
  callgraph : Callgraph.t Lazy.t;
      (** forced on demand; schedulers that share a [ctx] across domains
          must force it before spawning *)
}

val make_ctx : Ast.tunit list -> ctx

type check_fn = spec:Flash_api.spec -> ctx:ctx -> Prep.t -> Diag.t list
(** Partial application [check_fn ~spec ~ctx] stages any spec-dependent
    setup (pattern compilation, state-machine construction) so the
    returned closure can be applied to many prepared functions cheaply.
    The per-function analysis (CFG, event arrays) comes in via {!Prep.t}
    so a driver running several checkers over one function builds it
    once.  The closure must not be shared across domains. *)

type check_global = spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

type phase =
  | Per_function of {
      check_fn : check_fn;
      finalize : Diag.t list -> Diag.t list;
          (** applied to the in-order concatenation of per-function
              results; [Fun.id] for most checkers, [Diag.normalize] for
              the ones that historically sorted globally *)
      product : spec:Flash_api.spec -> Engine.pmachine option;
          (** the checker's state machine packed for
              {!Engine.product_scan}; [None] for pure AST walkers *)
    }
  | Whole_program of check_global

type checker = {
  name : string;
  description : string;
  metal_loc : int;  (** size of the paper's metal extension (Table 7) *)
  phase : phase;
  run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list;
      (** derived from [phase]; the backward-compatible one-shot entry *)
  applied : Ast.tunit list -> int;
      (** the "number of times the check was applied" metric *)
}

val run_of_phase :
  phase -> spec:Flash_api.spec -> Ast.tunit list -> Diag.t list
(** the derivation used for the [run] field: stage, map over every
    function in source order, finalize (or delegate to the global
    phase) *)

val all : checker list
val find : string -> checker option
val names : string list
val run_all : spec:Flash_api.spec -> Ast.tunit list -> (string * Diag.t list) list

val run_all_fused :
  ?guard:bool ->
  spec:Flash_api.spec ->
  Ast.tunit list ->
  (string * Diag.t list) list
(** [run_all] with each function's {!Prep.t} built exactly once and
    shared across all per-function checkers; identical output, one CFG
    construction per function instead of eight.

    [guard] (default [true]) puts a fault barrier around each
    (checker, function) pair: an exception becomes a Warning-severity
    ["internal"] diagnostic plus a degraded flow-insensitive retry, and
    a non-empty fault collection appends one [("internal", _)] entry to
    the result list.  The clean path is unchanged either way;
    [~guard:false] exists so the overhead benchmark can A/B the
    barrier. *)

val run_all_product :
  ?guard:bool ->
  spec:Flash_api.spec ->
  Ast.tunit list ->
  (string * Diag.t list) list
(** [run_all_fused] with the per-checker traversals replaced by one
    {!Engine.product_scan} walk per function.  The scan detects which
    machines could emit on the function; only those (plus the pure AST
    walkers, which have no machine) re-run per checker, so output —
    witnesses included — stays byte-identical to [run_all_fused] while a
    clean function costs one walk instead of seven.

    Delegates to [run_all_fused] outright whenever
    {!Engine.containment_active}, so budgets, degraded mode, and fault
    injection keep their exact per-checker semantics; a scan that
    overflows or crashes falls back to the per-checker path for that
    function. *)
