(** A meta-level optimisation pass — MC's third pillar.

    Removes [WAIT_FOR_DB_FULL] calls that are provably redundant: a wait
    whose every visit (on every path) happens with the buffer already
    synchronised is pure critical-path overhead.  Waits reachable in the
    unsynchronised state are kept.  The test suite asserts the race
    checker's verdict is unchanged by optimisation. *)

val redundant_waits : Ast.func -> Loc.t list
(** wait sites redundant on every path through them *)

val redundant_waits_prep : Prep.t -> Loc.t list
(** [redundant_waits] over an already-prepared function — drivers that
    have a shared {!Prep.t} in hand avoid rebuilding the CFG *)

type report = { functions_changed : int; waits_removed : int }

val optimize : Ast.tunit list -> Ast.tunit list * report
