(** The network-send deadlock checker — Section 7.

    Each handler is assigned a per-lane send allowance when the protocol is
    designed; the hardware only dispatches the handler once that much
    output-queue space is available.  Sending beyond the allowance without
    an explicit [WAIT_FOR_OUTPUT_SPACE] can deadlock the machine.

    This is the paper's inter-procedural checker: a local pass annotates
    every send with its lane, a global pass links per-function flow graphs
    through the call graph and computes, per handler, the worst-case
    per-lane send burst on any path.  Loops and recursion use the paper's
    fixed-point rule: a cycle whose body cannot grow the burst (no sends,
    or every send covered by its own space check) is ignored; anything
    else is flagged.  Diagnostics carry an inter-procedural back trace. *)

let name = "lanes"
let metal_loc = 220

(* Per-lane effect: [sum] is the net (sends − space checks) and [peak] the
   maximum prefix value, i.e. the largest burst of sends not covered by
   explicit space checks.  A handler is safe iff [peak <= allowance] on
   every lane. *)
module Lane_domain = struct
  type lane = { sum : int; peak : int }

  type t = lane array

  let lane_zero = { sum = 0; peak = min_int }

  let zero = Array.make Flash_api.n_lanes lane_zero

  let seq a b =
    Array.init Flash_api.n_lanes (fun i ->
        {
          sum = a.(i).sum + b.(i).sum;
          peak = max a.(i).peak (a.(i).sum + b.(i).peak);
        })

  let join a b =
    Array.init Flash_api.n_lanes (fun i ->
        { sum = max a.(i).sum b.(i).sum; peak = max a.(i).peak b.(i).peak })

  let equal a b =
    Array.for_all2 (fun x y -> x.sum = y.sum && x.peak = y.peak) a b

  (* a loop is a fixed point when iterating cannot grow the burst *)
  let loop_safe t = Array.for_all (fun l -> l.sum <= 0) t

  let send lane =
    Array.init Flash_api.n_lanes (fun i ->
        if i = lane then { sum = 1; peak = 1 } else lane_zero)

  let space_check lane =
    Array.init Flash_api.n_lanes (fun i ->
        if i = lane then { sum = -1; peak = -1 } else lane_zero)

  let pp ppf t =
    Array.iteri
      (fun i l ->
        if l.sum <> 0 || l.peak > min_int then
          Format.fprintf ppf "lane%d(sum=%d,peak=%d) " i l.sum l.peak)
      t
end

module Client = struct
  module D = Lane_domain

  (* effect of one CFG node: sends and space checks, in order *)
  let event (_func : Ast.func) (node : Cfg.node) : D.t =
    let acc = ref D.zero in
    let on_expr e =
      Ast.iter_expr
        (fun e ->
          match Cutil.send_macro e with
          | Some macro ->
            let lane =
              Flash_api.lane_of_send ~macro ~opcode:(Cutil.ni_opcode e)
            in
            Option.iter (fun l -> acc := D.seq !acc (D.send l)) lane
          | None -> (
            match e.Ast.edesc with
            | Ast.Call ({ edesc = Ast.Ident w; _ }, [ arg ])
              when String.equal w Flash_api.wait_for_output_space -> (
              match arg.Ast.edesc with
              | Ast.Int_lit (l, _) ->
                acc := D.seq !acc (D.space_check (Int64.to_int l))
              | _ -> ())
            | _ -> ()))
        e
    in
    (match node.Cfg.kind with
    | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ }
    | Cfg.Branch e | Cfg.Switch e
    | Cfg.Return (Some e) ->
      on_expr e
    | Cfg.Stmt { Ast.sdesc = Ast.Sdecl { Ast.v_init = Some e; _ }; _ } ->
      on_expr e
    | _ -> ());
    !acc
end

module Analysis = Interproc.Make (Client)

let lane_name = function
  | 0 -> "PI"
  | 1 -> "IO"
  | 2 -> "NET-request"
  | 3 -> "NET-reply"
  | n -> string_of_int n

let run ?(fixed_point = true) ~(spec : Flash_api.spec) (tus : Ast.tunit list)
    : Diag.t list =
  let callgraph = Callgraph.build tus in
  let ctx = Analysis.create callgraph in
  let diags = ref [] in
  List.iter
    (fun (h : Flash_api.handler_spec) ->
      match Callgraph.find_func callgraph h.Flash_api.h_name with
      | None -> ()
      | Some func -> (
        match Analysis.summarize ctx h.Flash_api.h_name with
        | None -> ()
        | Some summary ->
          Array.iteri
            (fun lane (l : Lane_domain.lane) ->
              let allowance = h.Flash_api.h_lane_allowance.(lane) in
              if l.Lane_domain.peak > allowance then begin
                (* the textual back trace the paper calls crucial *)
                let trace =
                  List.filter_map
                    (fun (site : Analysis.site) ->
                      if
                        site.Analysis.site_effect.(lane).Lane_domain.sum <> 0
                      then Some site.Analysis.site_loc
                      else None)
                    summary.Analysis.witness
                in
                (* witness: the same sites as the back trace, annotated
                   with the running send balance they drive — the
                   inter-procedural analogue of the engine's state
                   transitions *)
                let witness =
                  let sent = ref 0 in
                  List.filter_map
                    (fun (site : Analysis.site) ->
                      let sum =
                        site.Analysis.site_effect.(lane).Lane_domain.sum
                      in
                      if sum <> 0 then begin
                        let from_state = Printf.sprintf "sent=%d" !sent in
                        sent := !sent + sum;
                        Some
                          (Diag.step ~loc:site.Analysis.site_loc
                             ~event:
                               (Printf.sprintf "%s: %+d on the %s lane"
                                  site.Analysis.site_func sum
                                  (lane_name lane))
                             ~from_state
                             ~to_state:(Printf.sprintf "sent=%d" !sent))
                      end
                      else None)
                    summary.Analysis.witness
                in
                diags :=
                  Diag.make ~checker:name ~loc:func.Ast.f_loc
                    ~func:h.Flash_api.h_name ~trace ~witness
                    (Printf.sprintf
                       "handler can send %d message(s) on the %s lane but \
                        its allowance is %d"
                       l.Lane_domain.peak (lane_name lane) allowance)
                  :: !diags
              end)
            summary.Analysis.effect_))
    spec.Flash_api.p_handlers;
  (* recursion that is not a send fixed point *)
  List.iter
    (fun (fname, loc) ->
      match Analysis.summary_of ctx fname with
      | Some s when not (Lane_domain.loop_safe s.Analysis.effect_) ->
        diags :=
          Diag.make ~severity:Diag.Warning ~checker:name ~loc ~func:fname
            "recursive cycle performs sends: possible unbounded bursts"
          :: !diags
      | _ -> ())
    (Analysis.cycles ctx);
  (* intra-procedural loops whose body sends without space checks; with
     the fixed-point rule disabled (ablation), every loop that touches a
     lane at all is flagged, reproducing the naive checker's FP storm *)
  List.iter
    (fun (fname, loc) ->
      diags :=
        Diag.make ~severity:Diag.Warning ~checker:name ~loc ~func:fname
          "loop body performs sends not covered by space checks"
        :: !diags)
    (Analysis.effectful_loops ctx);
  if not fixed_point then
    List.iter
      (fun (p : Flash_api.handler_spec) ->
        match Callgraph.find_func callgraph p.Flash_api.h_name with
        | None -> ()
        | Some func ->
          let cfg = Cfg.build func in
          let sends_in_loops =
            List.exists
              (fun (_, head) ->
                (* any loop in a handler that sends anywhere *)
                ignore head;
                Array.exists
                  (fun (n : Cfg.node) ->
                    not (Lane_domain.equal (Client.event func n)
                           Lane_domain.zero))
                  cfg.Cfg.nodes)
              (Cfg.back_edges cfg)
          in
          if sends_in_loops then
            diags :=
              Diag.make ~severity:Diag.Warning ~checker:name
                ~loc:func.Ast.f_loc ~func:p.Flash_api.h_name
                "(no fixed point rule) handler contains loops and sends"
              :: !diags)
      spec.Flash_api.p_handlers;
  Diag.normalize !diags

(** Sends examined by the lane analysis. *)
let applied (tus : Ast.tunit list) : int =
  Cutil.count_calls tus Flash_api.send_macros
