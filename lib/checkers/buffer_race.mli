(** The buffer fill-race checker — the paper's Figure 2, Section 4:
    [WAIT_FOR_DB_FULL] must precede [MISCBUS_READ_DB] on every path. *)

val name : string
val metal_loc : int
(** size of the paper's metal version (Table 7) *)

type state = Start

val sm : state Sm.t
(** the transliterated Figure 2 machine, reusable directly *)

val check_prep : spec:Flash_api.spec -> Prep.t -> Diag.t list
(** staged: check one prepared function — the fused per-function
    phase the scheduler drives *)

val product : spec:Flash_api.spec -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan}, [None] for pure AST
    walkers with nothing to compose *)

val check_fn : spec:Flash_api.spec -> Ast.func -> Diag.t list
(** check one function — the per-function phase the scheduler drives *)

val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

val applied : Ast.tunit list -> int
(** number of data-buffer reads — Table 2's Applied column *)
