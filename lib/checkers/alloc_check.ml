(** The buffer-allocation failure checker — Section 9.

    [ALLOCATE_DB()] can fail when no buffers are available, so every
    allocation must be checked with [ALLOC_FAILED] before the buffer is
    written (or otherwise used).  The state machine tracks the variable
    the allocation was stored into; the check is cleared by an
    [ALLOC_FAILED] test of that same variable on the path. *)

let name = "alloc_check"
let metal_loc = 16

type state =
  | Idle
  | Unchecked of Ast.expr  (** allocation stored here, not yet checked *)

let x = ("x", Pattern.Scalar)

let alloc_assign =
  Pattern.expr ~decls:[ x ] ("x = " ^ Flash_api.allocate_db ^ "()")

let failed_test = Pattern.expr ~decls:[ x ] (Flash_api.alloc_failed ^ "(x)")

(* uses of the raw buffer value before the check *)
let uses =
  [
    Pattern.expr ~decls:[ x; ("_o", Pattern.Any); ("_v", Pattern.Any) ]
      (Flash_api.miscbus_write_db ^ "(x, _o, _v)");
    Pattern.expr ~decls:[ ("_f", Pattern.Any); x ] "DEBUG_PRINT(_f, x)";
  ]

let bound ctx = Binding.find ctx.Sm.bindings "x"

let sm : state Sm.t =
  Sm.make ~name
    ~start:(fun _ -> Some Idle)
    ~all:
      [
        Sm.rule alloc_assign (fun ctx ->
            match bound ctx with
            | Some var -> Sm.Goto (Unchecked var)
            | None -> Sm.Stay);
      ]
    ~rules:(function
      | Idle -> []
      | Unchecked var ->
        [
          Sm.rule failed_test (fun ctx ->
              match bound ctx with
              | Some tested when Ast.equal_expr tested var -> Sm.Goto Idle
              | _ -> Sm.Stay);
          Sm.rule (Pattern.alt uses) (fun ctx ->
              match bound ctx with
              | Some used when Ast.equal_expr used var ->
                Sm.err ~checker:name ctx
                  "buffer used before checking ALLOC_FAILED";
                Sm.Goto Idle
              | _ -> Sm.Stay);
        ])
    ~state_to_string:(function
      | Idle -> "idle"
      | Unchecked _ -> "unchecked")
    ()

let check_prep ~spec : Prep.t -> Diag.t list =
  let _ = spec in
  fun prep -> Engine.check_prep sm prep

(* [Unchecked] carries the stored-into expression, so the state space is
   not statically enumerable; the product scan interns states
   dynamically. *)
let product ~spec : Engine.pmachine option =
  let _ = spec in
  Some (Engine.pack sm)

let check_fn ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ~spec in
  fun f -> staged (Prep.build f)

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let _ = spec in
  Engine.check sm (`Program tus)

(** Number of allocations — the Applied column of Table 6. *)
let applied (tus : Ast.tunit list) : int =
  Cutil.count_calls tus [ Flash_api.allocate_db ]
