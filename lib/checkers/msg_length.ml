(** The message-length/data-flag consistency checker — Figure 3, Section 5.

    The length field in the outgoing header and the has-data parameter of
    the send macro are decoupled by the hardware; this checker tracks the
    last length assignment along each path and flags data sends with a
    zero length and no-data sends with a non-zero length.  As in the
    paper's published figure, it does not consult a table for each
    handler's initial length value: it starts in an [all]-style state that
    does not warn until the first explicit assignment. *)

let name = "msg_length"
let metal_loc = 29

type state = Unknown | Zero_len | Nonzero_len

let u = Pattern.Unsigned_int

let decls =
  [ ("keep", u); ("swap", u); ("wait", u); ("dec", u); ("null", u);
    ("type", u) ]

let zero_assign = Cutil.len_assign_pattern Flash_api.len_nodata

let nonzero_assign =
  Pattern.alt
    [
      Cutil.len_assign_pattern Flash_api.len_word;
      Cutil.len_assign_pattern Flash_api.len_cacheline;
    ]

let send_data =
  Pattern.alt
    [
      Pattern.expr ~decls "PI_SEND(F_DATA, keep, swap, wait, dec, null)";
      Pattern.expr ~decls "IO_SEND(F_DATA, keep, swap, wait, dec, null)";
      Pattern.expr ~decls "NI_SEND(type, F_DATA, keep, wait, dec, null)";
    ]

let send_nodata =
  Pattern.alt
    [
      Pattern.expr ~decls "PI_SEND(F_NODATA, keep, swap, wait, dec, null)";
      Pattern.expr ~decls "IO_SEND(F_NODATA, keep, swap, wait, dec, null)";
      Pattern.expr ~decls "NI_SEND(type, F_NODATA, keep, wait, dec, null)";
    ]

let sm : state Sm.t =
  Sm.make ~name
    ~start:(fun _ -> Some Unknown)
    ~all:
      [
        Sm.goto_rule zero_assign Zero_len;
        Sm.goto_rule nonzero_assign Nonzero_len;
      ]
    ~rules:(function
      | Unknown -> []
      | Zero_len ->
        [ Sm.err_rule ~checker:name send_data "data send, zero len" ]
      | Nonzero_len ->
        [ Sm.err_rule ~checker:name send_nodata "nodata send, nonzero len" ])
    ~state_to_string:(function
      | Unknown -> "all"
      | Zero_len -> "zero_len"
      | Nonzero_len -> "nonzero_len")
    ()

let check_prep ~spec : Prep.t -> Diag.t list =
  let _ = spec in
  fun prep -> Engine.check_prep sm prep

(* Three states, so the machine lowers onto the transition-table shape
   and the product scan gets array-load dispatch. *)
let table =
  Engine.prebuild ~n_states:3
    (Engine.reindex [| Unknown; Zero_len; Nonzero_len |] sm)

let product ~spec : Engine.pmachine option =
  let _ = spec in
  Some (Engine.pack_table table)

let check_fn ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ~spec in
  fun f -> staged (Prep.build f)

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let _ = spec in
  Engine.check sm (`Program tus)

(** Number of sends — the Applied column of Table 3. *)
let applied (tus : Ast.tunit list) : int =
  Cutil.count_calls tus Flash_api.send_macros
