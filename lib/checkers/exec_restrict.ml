(** The handler execution-restriction checker — Section 8.

    FLASH's execution environment is more restrictive than C; without
    compiler support programmers stray into illegal territory silently.
    Checks, per the paper:

    - handlers take no parameters and return no results;
    - deprecated macros are flagged;
    - "no stack" handlers must carry exactly one [NO_STACK()] annotation
      at the top, must not take the address of locals, must not declare
      aggregates larger than 64 bits or too many locals, and must pair
      every call to another handler with a preceding [SET_STACKPTR()];
    - simulator hooks: the first statement of every handler must be
      [HANDLER_DEFS()] and the second the matching
      [SIM_HANDLER_HOOK]/[SIM_SWHANDLER_HOOK]; every ordinary routine must
      begin with [SIM_PROCEDURE_HOOK()]. *)

let name = "exec_restrict"
let metal_loc = 84 (* grouped with the paper's execution-restriction SMs *)

let max_no_stack_locals = 12

let diag ?(severity = Diag.Error) ~loc ~func fmt =
  Format.kasprintf
    (fun message -> Diag.make ~severity ~checker:name ~loc ~func message)
    fmt

let is_call_to stmt names =
  match stmt.Ast.sdesc with
  | Ast.Sexpr e -> (
    match Ast.callee_name e with
    | Some n when List.mem n names -> Some n
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-function checks                                                 *)
(* ------------------------------------------------------------------ *)

let check_signature ~(spec : Flash_api.spec) (f : Ast.func) : Diag.t list =
  if not (Flash_api.is_handler spec f.Ast.f_name) then []
  else
    let d = ref [] in
    if not (Ctype.equal f.Ast.f_ret Ctype.Void) then
      d :=
        diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          "handler returns a result (handlers must be void)"
        :: !d;
    if f.Ast.f_params <> [] then
      d :=
        diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          "handler takes parameters (handlers cannot take parameters)"
        :: !d;
    !d

(* every expression of every statement, with locations *)
let iter_all_exprs (f : Ast.func) (fn : Ast.expr -> unit) =
  List.iter
    (fun s -> Ast.iter_stmt_exprs (fun e -> Ast.iter_expr fn e) s)
    f.Ast.f_body

let check_deprecated (f : Ast.func) : Diag.t list =
  let d = ref [] in
  iter_all_exprs f (fun e ->
      match Ast.callee_name e with
      | Some n when List.mem n Flash_api.deprecated_macros ->
        d :=
          diag ~severity:Diag.Warning ~loc:e.Ast.eloc ~func:f.Ast.f_name
            "use of deprecated macro %s" n
          :: !d
      | _ -> ());
  !d

let check_no_stack ~(spec : Flash_api.spec) (f : Ast.func) : Diag.t list =
  match Flash_api.find_handler spec f.Ast.f_name with
  | Some h when h.Flash_api.h_no_stack ->
    let d = ref [] in
    let add ~loc fmt = Format.kasprintf
        (fun m -> d := Diag.make ~checker:name ~loc ~func:f.Ast.f_name m :: !d)
        fmt
    in
    (* exactly one NO_STACK() among the first three statements *)
    let heads =
      List.filteri (fun i _ -> i < 3) f.Ast.f_body
      |> List.filter_map (fun s -> is_call_to s [ Flash_api.no_stack ])
    in
    let total = Cutil.count_calls [ { Ast.tu_file = ""; tu_globals = [ Ast.Gfunc f ] } ] [ Flash_api.no_stack ]
    in
    if List.length heads <> 1 || total <> 1 then
      add ~loc:f.Ast.f_loc
        "no-stack handler must have exactly one NO_STACK() annotation at \
         the beginning";
    (* no address-of locals, no big aggregates, bounded local count *)
    let locals = ref 0 in
    List.iter
      (fun s ->
        Ast.iter_stmt
          (fun s ->
            match s.Ast.sdesc with
            | Ast.Sdecl v ->
              incr locals;
              if Ctype.sizeof v.Ast.v_type > 8 then
                add ~loc:s.Ast.sloc
                  "no-stack handler declares an aggregate larger than 64 \
                   bits";
            | _ -> ())
          s)
      f.Ast.f_body;
    if !locals > max_no_stack_locals then
      add ~loc:f.Ast.f_loc "no-stack handler declares too many locals (%d)"
        !locals;
    iter_all_exprs f (fun e ->
        match e.Ast.edesc with
        | Ast.Unop (Ast.Addrof, _) ->
          add ~loc:e.Ast.eloc
            "no-stack handler takes the address of a local"
        | _ -> ());
    (* SET_STACKPTR pairing: every call to another handler must be
       preceded by SET_STACKPTR, and every SET_STACKPTR must be followed
       by a call *)
    let rec scan armed stmts =
      match stmts with
      | [] -> ()
      | s :: rest -> (
        match s.Ast.sdesc with
        | Ast.Sexpr e -> (
          match Ast.callee_name e with
          | Some n when String.equal n Flash_api.set_stackptr ->
            if armed then
              add ~loc:s.Ast.sloc "spurious SET_STACKPTR (not followed by \
                                   a call)";
            scan true rest
          | Some n when Flash_api.is_handler spec n ->
            if not armed then
              add ~loc:s.Ast.sloc
                "call to handler %s without preceding SET_STACKPTR" n;
            scan false rest
          | _ -> scan false rest)
        | _ -> scan false rest)
    in
    scan false f.Ast.f_body;
    !d
  | _ -> []

let check_hooks ~(spec : Flash_api.spec) (f : Ast.func) : Diag.t list =
  let stmt n = List.nth_opt f.Ast.f_body n in
  let starts_with n names =
    match stmt n with
    | Some s -> is_call_to s names <> None
    | None -> false
  in
  match Flash_api.handler_kind spec f.Ast.f_name with
  | Flash_api.Hw_handler | Flash_api.Sw_handler ->
    let hook =
      match Flash_api.handler_kind spec f.Ast.f_name with
      | Flash_api.Hw_handler -> Flash_api.sim_handler_hook
      | _ -> Flash_api.sim_swhandler_hook
    in
    let d = ref [] in
    if not (starts_with 0 [ Flash_api.handler_defs ]) then
      d :=
        diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          "handler does not begin with HANDLER_DEFS()"
        :: !d;
    if
      not
        (starts_with 1 [ hook; Flash_api.handler_prologue ])
    then
      d :=
        diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          "simulator hook omitted (second statement must call %s)" hook
        :: !d;
    !d
  | Flash_api.Procedure ->
    if starts_with 0 [ Flash_api.sim_procedure_hook ] then []
    else
      [
        diag ~loc:f.Ast.f_loc ~func:f.Ast.f_name
          "simulator hook omitted (routine must begin with \
           SIM_PROCEDURE_HOOK())";
      ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let check_fn ~spec (f : Ast.func) : Diag.t list =
  check_signature ~spec f @ check_deprecated f @ check_no_stack ~spec f
  @ check_hooks ~spec f

(* Pure AST walker: the prep's CFG is unused, only the function. *)
let check_prep ~spec (prep : Prep.t) : Diag.t list =
  check_fn ~spec prep.Prep.func

(* Not a state machine — nothing to compose into the product scan. *)
let product ~spec : Engine.pmachine option =
  let _ = spec in
  None

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let diags =
    List.concat_map
      (fun tu -> List.concat_map (check_fn ~spec) (Ast.functions tu))
      tus
  in
  Diag.normalize diags

(** Routines examined (the Handlers column of Table 5). *)
let applied (tus : Ast.tunit list) : int =
  List.fold_left
    (fun acc tu -> acc + List.length (Ast.functions tu))
    0 tus

(** Local variables examined (the Vars column of Table 5). *)
let vars_checked = Cutil.count_local_vars
