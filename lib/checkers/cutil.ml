(** Shared helpers for the FLASH checkers. *)

(** Count the static occurrences of calls to any of [names] in a program —
    the "number of times the check was applied" metric of Tables 2/3/6. *)
let count_calls (tus : Ast.tunit list) (names : string list) : int =
  let count = ref 0 in
  List.iter
    (fun tu ->
      List.iter
        (fun f ->
          List.iter
            (fun s ->
              Ast.iter_stmt_exprs
                (fun e ->
                  Ast.iter_expr
                    (fun e ->
                      match Ast.callee_name e with
                      | Some n when List.mem n names -> incr count
                      | _ -> ())
                    e)
                s)
            f.Ast.f_body)
        (Ast.functions tu))
    tus;
  !count

(** The opcode constant of an NI_SEND's first argument, when literal. *)
let ni_opcode (e : Ast.expr) : string option =
  match e.Ast.edesc with
  | Ast.Call ({ edesc = Ast.Ident n; _ }, first :: _)
    when String.equal n Flash_api.ni_send -> (
    match first.Ast.edesc with Ast.Ident op -> Some op | _ -> None)
  | _ -> None

(** Is [e] a call to one of the three send macros? *)
let send_macro (e : Ast.expr) : string option =
  match Ast.callee_name e with
  | Some n when List.mem n Flash_api.send_macros -> Some n
  | _ -> None

(** The wait-flag argument of a send call: argument index 3 for
    [PI_SEND]/[IO_SEND] and [NI_SEND] alike. *)
let send_wait_flag (e : Ast.expr) : string option =
  match e.Ast.edesc with
  | Ast.Call ({ edesc = Ast.Ident n; _ }, args)
    when List.mem n Flash_api.send_macros -> (
    match List.nth_opt args 3 with
    | Some { Ast.edesc = Ast.Ident flag; _ } -> Some flag
    | _ -> None)
  | _ -> None

(** Pattern for an assignment of constant [value] to the message length
    field: [HANDLER_GLOBALS(header.nh.len) = value]. *)
let len_assign_pattern value =
  Pattern.expr (Printf.sprintf "%s = %s" Flash_api.len_field value)

(** Does the expression tree of [e] reference the handler-globals field
    path [root.field...] (e.g. dirEntry)? *)
let refs_handler_global (e : Ast.expr) ~(root : string) : bool =
  let found = ref false in
  Ast.iter_expr
    (fun e ->
      match e.Ast.edesc with
      | Ast.Call ({ edesc = Ast.Ident hg; _ }, [ arg ])
        when String.equal hg Flash_api.handler_globals ->
        let rec base a =
          match a.Ast.edesc with
          | Ast.Field (inner, _) -> base inner
          | Ast.Ident r -> Some r
          | _ -> None
        in
        if base arg = Some root then found := true
      | _ -> ())
    e;
  !found

(** Number of local-variable declarations across a program (the Vars
    column of Table 5). *)
let count_local_vars (tus : Ast.tunit list) : int =
  let count = ref 0 in
  List.iter
    (fun tu ->
      List.iter
        (fun f ->
          List.iter
            (fun s ->
              Ast.iter_stmt
                (fun s ->
                  match s.Ast.sdesc with
                  | Ast.Sdecl _ -> incr count
                  | _ -> ())
                s)
            f.Ast.f_body)
        (Ast.functions tu))
    tus;
  !count
