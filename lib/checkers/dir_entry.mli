(** The manual directory-entry update checker — Section 9: entries are
    loaded before use and written back after modification, with the
    speculative-NAK paths pruned and hand-computed entry addresses
    flagged as abstraction errors. *)

val name : string
val metal_loc : int

val check_prep :
  ?nak_pruning:bool -> spec:Flash_api.spec -> Prep.t -> Diag.t list
(** staged: [check_prep ~spec] compiles the spec's state machine once and
    returns the fused per-function phase the scheduler drives *)

val product :
  ?nak_pruning:bool -> spec:Flash_api.spec -> unit -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan} *)

val check_fn :
  ?nak_pruning:bool -> spec:Flash_api.spec -> Ast.func -> Diag.t list
(** staged: [check_fn ~spec] compiles the spec's state machine once and
    returns the per-function phase the scheduler drives *)

val run :
  ?nak_pruning:bool ->
  spec:Flash_api.spec ->
  Ast.tunit list ->
  Diag.t list
(** [~nak_pruning:false] disables the speculative-NAK pruning (ablation) *)

val applied : Ast.tunit list -> int
(** directory operations — Table 6's Applied column *)
