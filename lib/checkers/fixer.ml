(** Automatic repair for checker findings — the "transform" half of MC.

    The paper frames meta-level compilation as a framework to "check,
    transform, and optimize system-level operations"; the FLASH case study
    only checks.  This module closes the loop for the three most
    mechanical findings: missing simulator hooks, unsynchronised buffer
    reads, and buffer leaks at returns.  Each fix is a source-to-source
    AST rewrite; the test suite re-runs the corresponding checker on the
    result and demands silence.

    Double frees are deliberately NOT auto-fixed: the paper's Section 11
    war story is exactly an implementor doing the "obvious fix" of
    deleting the second free — and unbooting the machine, because a
    manual refcount bump a few lines up was the real culprit.  Tools
    should point at double frees, not delete them. *)

(* rewrite every statement list in a function, innermost blocks first;
   [f] maps one statement to its replacement list *)
let rec map_stmt_list (f : Ast.stmt -> Ast.stmt list) (stmts : Ast.stmt list)
    : Ast.stmt list =
  List.concat_map
    (fun s ->
      let s =
        let mk sdesc = { s with Ast.sdesc } in
        match s.Ast.sdesc with
        | Ast.Sblock body -> mk (Ast.Sblock (map_stmt_list f body))
        | Ast.Sif (c, t, e) ->
          mk
            (Ast.Sif
               ( c,
                 block_map f t,
                 Option.map (block_map f) e ))
        | Ast.Swhile (c, body) -> mk (Ast.Swhile (c, block_map f body))
        | Ast.Sdo (body, c) -> mk (Ast.Sdo (block_map f body, c))
        | Ast.Sfor (i, c, st, body) ->
          mk (Ast.Sfor (i, c, st, block_map f body))
        | Ast.Sswitch (e, body) -> mk (Ast.Sswitch (e, block_map f body))
        | _ -> s
      in
      f s)
    stmts

and block_map f (s : Ast.stmt) : Ast.stmt =
  match s.Ast.sdesc with
  | Ast.Sblock body -> { s with Ast.sdesc = Ast.Sblock (map_stmt_list f body) }
  | _ -> (
    match map_stmt_list f [ s ] with
    | [ one ] -> one
    | many -> { s with Ast.sdesc = Ast.Sblock many })

let map_funcs (f : Ast.func -> Ast.func) (tu : Ast.tunit) : Ast.tunit =
  {
    tu with
    Ast.tu_globals =
      List.map
        (function Ast.Gfunc fn -> Ast.Gfunc (f fn) | g -> g)
        tu.Ast.tu_globals;
  }

let stmt_is_call (s : Ast.stmt) names =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> (
    match Ast.callee_name e with Some n -> List.mem n names | None -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Fix 1: missing simulator hooks (Section 8 / Table 5)                *)
(* ------------------------------------------------------------------ *)

(** Insert the mandated prologue calls where the execution-restriction
    checker would flag their absence. *)
let fix_hooks ~(spec : Flash_api.spec) (tu : Ast.tunit) : Ast.tunit =
  map_funcs
    (fun fn ->
      match Flash_api.handler_kind spec fn.Ast.f_name with
      | Flash_api.Procedure ->
        if stmt_is_call (List.nth_opt fn.Ast.f_body 0 |> Option.value
                           ~default:Cb.sreturn)
             [ Flash_api.sim_procedure_hook ]
           && fn.Ast.f_body <> []
        then fn
        else
          { fn with
            Ast.f_body =
              Cb.do_call Flash_api.sim_procedure_hook [] :: fn.Ast.f_body }
      | kind ->
        let hook =
          match kind with
          | Flash_api.Hw_handler -> Flash_api.sim_handler_hook
          | _ -> Flash_api.sim_swhandler_hook
        in
        let body = fn.Ast.f_body in
        let has n i =
          match List.nth_opt body i with
          | Some s -> stmt_is_call s n
          | None -> false
        in
        (* peel whatever prologue is present, then rebuild it in full *)
        let rest =
          body
          |> (fun b -> if has [ Flash_api.handler_defs ] 0 then List.tl b else b)
          |> fun b ->
          if
            b <> []
            && stmt_is_call (List.hd b)
                 [ hook; Flash_api.handler_prologue;
                   Flash_api.sim_handler_hook; Flash_api.sim_swhandler_hook ]
          then List.tl b
          else b
        in
        {
          fn with
          Ast.f_body =
            Cb.do_call Flash_api.handler_defs []
            :: Cb.do_call hook []
            :: rest;
        })
    tu

(* ------------------------------------------------------------------ *)
(* Fix 2: unsynchronised buffer reads (Section 4 / Table 2)            *)
(* ------------------------------------------------------------------ *)

(* does this statement contain a read flagged at one of [locs]? if so,
   return the read's address argument *)
let flagged_read_in (s : Ast.stmt) (locs : Loc.t list) : Ast.expr option =
  let found = ref None in
  Ast.iter_stmt_exprs
    (fun e ->
      Ast.iter_expr
        (fun e ->
          match e.Ast.edesc with
          | Ast.Call ({ edesc = Ast.Ident n; _ }, addr :: _)
            when (String.equal n Flash_api.miscbus_read_db
                 || String.equal n Flash_api.miscbus_read_db_old)
                 && List.exists (Loc.equal e.Ast.eloc) locs ->
            if !found = None then found := Some addr
          | _ -> ())
        e)
    s;
  !found

(** Insert a [WAIT_FOR_DB_FULL] immediately before each statement
    containing a read the buffer-race checker flagged. *)
let fix_races ~(diags : Diag.t list) (tu : Ast.tunit) : Ast.tunit =
  let locs =
    List.filter_map
      (fun (d : Diag.t) ->
        if String.equal d.Diag.checker Buffer_race.name then Some d.Diag.loc
        else None)
      diags
  in
  if locs = [] then tu
  else
    map_funcs
      (fun fn ->
        {
          fn with
          Ast.f_body =
            map_stmt_list
              (fun s ->
                match flagged_read_in s locs with
                | Some addr -> [ Cb.wait_db addr; s ]
                | None -> [ s ])
              fn.Ast.f_body;
        })
      tu

(* ------------------------------------------------------------------ *)
(* Fix 3: buffer leaks at returns (Section 6 / Table 4)                *)
(* ------------------------------------------------------------------ *)

(** Insert a [FREE_DB()] before the return statements on paths the
    buffer-management checker reported as leaking.  The leak diagnostic's
    back trace pins down which return. *)
let fix_leaks ~(spec : Flash_api.spec) ~(diags : Diag.t list)
    (tu : Ast.tunit) : Ast.tunit =
  let leaks =
    List.filter
      (fun (d : Diag.t) ->
        String.equal d.Diag.checker Buffer_mgmt.name
        && String.length d.Diag.message >= 4
        && String.sub d.Diag.message 0 4 = "buff"
        (* "buffer not freed on this path (leak)" *))
      diags
  in
  if leaks = [] then tu
  else
    map_funcs
      (fun fn ->
        let fn_leaks =
          List.filter
            (fun (d : Diag.t) -> String.equal d.Diag.func fn.Ast.f_name)
            leaks
        in
        if fn_leaks = [] then fn
        else begin
          let trace_locs =
            List.concat_map (fun (d : Diag.t) -> d.Diag.trace) fn_leaks
          in
          let patched = ref false in
          let body =
            map_stmt_list
              (fun s ->
                match s.Ast.sdesc with
                | Ast.Sreturn _
                  when List.exists (Loc.equal s.Ast.sloc) trace_locs ->
                  patched := true;
                  [ Cb.free_db (); s ]
                | _ -> [ s ])
              fn.Ast.f_body
          in
          (* a leak on the implicit fall-off-the-end path *)
          let body =
            if !patched then body else body @ [ Cb.free_db () ]
          in
          ignore spec;
          { fn with Ast.f_body = body }
        end)
      tu

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** Apply every supported fix to a program: run the relevant checkers,
    patch what they flag, and return the rewritten units.  Iterates once
    — the test suite asserts that one round silences the three fixed
    checkers. *)
let fix_all ~(spec : Flash_api.spec) (tus : Ast.tunit list) : Ast.tunit list
    =
  let race_diags = Buffer_race.run ~spec tus in
  let buf_diags = Buffer_mgmt.run ~spec tus in
  List.map
    (fun tu ->
      tu |> fix_hooks ~spec |> fix_races ~diags:race_diags
      |> fix_leaks ~spec ~diags:buf_diags)
    tus
