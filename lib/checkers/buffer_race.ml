(** The buffer fill-race checker — the paper's Figure 2, Section 4.

    When a message arrives, the handler starts on the header while the
    hardware is still filling the data buffer.  Any [MISCBUS_READ_DB] must
    therefore be preceded on the same path by a synchronising
    [WAIT_FOR_DB_FULL].  As in the paper, the deployed version also
    recognises the older-style read macros.

    Transliterated metal (Figure 2):
    {v
      sm wait_for_db {
        decl { scalar } addr, buf;
        start:
          { WAIT_FOR_DB_FULL(addr); } ==> stop
        | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); } ;
      }
    v} *)

let name = "wait_for_db"
let metal_loc = 12 (* the paper's Table 7 size for this checker *)

type state = Start

let addr = ("addr", Pattern.Scalar)
let buf = ("buf", Pattern.Scalar)

let wait_pattern =
  Pattern.expr ~decls:[ addr ] (Flash_api.wait_for_db_full ^ "(addr)")

let read_pattern =
  Pattern.alt
    [
      Pattern.expr ~decls:[ addr; buf ]
        (Flash_api.miscbus_read_db ^ "(addr, buf)");
      (* the equivalent older-style macro, as in the deployed checker *)
      Pattern.expr ~decls:[ addr; buf ]
        (Flash_api.miscbus_read_db_old ^ "(addr, buf)");
    ]

let rules =
  [
    Sm.stop_rule wait_pattern;
    Sm.err_rule ~checker:name read_pattern "Buffer not synchronized";
  ]

let sm : state Sm.t =
  Sm.make ~name ~start:(fun _ -> Some Start) ~rules:(fun Start -> rules) ()

let check_prep ~spec : Prep.t -> Diag.t list =
  let _ = spec in
  fun prep -> Engine.check_prep sm prep

let check_fn ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ~spec in
  fun f -> staged (Prep.build f)

(* One state, so the machine lowers onto the transition-table shape and
   the product scan gets array-load dispatch. *)
let table = Engine.prebuild ~n_states:1 (Engine.reindex [| Start |] sm)

let product ~spec : Engine.pmachine option =
  let _ = spec in
  Some (Engine.pack_table table)

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let _ = spec in
  Engine.check sm (`Program tus)

(** Number of data-buffer reads — the Applied column of Table 2. *)
let applied (tus : Ast.tunit list) : int =
  Cutil.count_calls tus
    [ Flash_api.miscbus_read_db; Flash_api.miscbus_read_db_old ]
