(** The message-length/data-flag consistency checker — Figure 3,
    Section 5: data sends need a non-zero length field, no-data sends a
    zero one; the last assignment on the path decides. *)

val name : string
val metal_loc : int

type state = Unknown | Zero_len | Nonzero_len

val sm : state Sm.t

val check_prep : spec:Flash_api.spec -> Prep.t -> Diag.t list
(** staged: check one prepared function — the fused per-function
    phase the scheduler drives *)

val product : spec:Flash_api.spec -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan}, [None] for pure AST
    walkers with nothing to compose *)

val check_fn : spec:Flash_api.spec -> Ast.func -> Diag.t list
(** check one function — the per-function phase the scheduler drives *)

val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

val applied : Ast.tunit list -> int
(** number of sends — Table 3's Applied column *)
