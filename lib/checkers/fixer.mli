(** Automatic repair for checker findings — the "transform" half of MC.

    Fixes the three most mechanical findings: missing simulator hooks,
    unsynchronised buffer reads, and buffer leaks at returns.  Double
    frees are deliberately NOT auto-fixed — the paper's Section 11 war
    story is an implementor deleting the "obviously redundant" second
    free and unbooting the machine. *)

val map_stmt_list :
  (Ast.stmt -> Ast.stmt list) -> Ast.stmt list -> Ast.stmt list
(** generic statement-list rewriter, innermost blocks first (shared with
    {!Optimizer}) *)

val fix_hooks : spec:Flash_api.spec -> Ast.tunit -> Ast.tunit
(** insert the mandated prologue/hook calls (Section 8) *)

val fix_races : diags:Diag.t list -> Ast.tunit -> Ast.tunit
(** insert [WAIT_FOR_DB_FULL] before each statement containing a read the
    buffer-race checker flagged *)

val fix_leaks :
  spec:Flash_api.spec -> diags:Diag.t list -> Ast.tunit -> Ast.tunit
(** insert [FREE_DB()] before the returns on paths the buffer-management
    checker reported as leaking *)

val fix_all : spec:Flash_api.spec -> Ast.tunit list -> Ast.tunit list
(** run the relevant checkers, apply every supported fix once *)
