(** The network-send deadlock checker — Section 7, the paper's
    inter-procedural extension: per-handler lane allowances against the
    worst-case send burst on any path, with the fixed-point rule for
    loops and recursion and inter-procedural back traces. *)

val name : string
val metal_loc : int

val run :
  ?fixed_point:bool ->
  spec:Flash_api.spec ->
  Ast.tunit list ->
  Diag.t list
(** [~fixed_point:false] disables the cycle rule (the ablation) *)

val applied : Ast.tunit list -> int
