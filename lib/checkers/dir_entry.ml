(** The manual directory-entry update checker — Section 9.

    Unlike ordinary variables, directory entries must be explicitly
    loaded, modified in the handler-globals copy, and explicitly written
    back.  The checker enforces, within handlers:

    + the entry is loaded before any [dirEntry] access;
    + a modified entry is written back before the handler exits —
      except on speculative paths that back out by sending a NAK, which
      the checker recognises through the [MSG_NAK] header constant
      (the paper's false-positive pruning);
    + the entry address passed to [LOAD_DIR_ENTRY]/[WRITEBACK_DIR_ENTRY]
      comes from [DIR_ADDR] (hand-computed addresses are the paper's
      "abstraction errors").

    In subroutines the load rule is relaxed (the caller usually holds the
    entry), but modifications are reported because the subroutine depends
    on its caller writing the entry back — these are the "subroutine"
    false positives that dominate the paper's Table 6 and that manual
    annotation would turn into checked documentation. *)

let name = "dir_entry"
let metal_loc = 51

type state = {
  in_handler : bool;
  loaded : bool;
  modified : bool;
  nak : bool;  (** a NAK reply was prepared after the modification *)
}

let a = ("a", Pattern.Scalar)

let load_any = Pattern.expr ~decls:[ a ] (Flash_api.load_dir_entry ^ "(a)")

let load_abstract =
  Pattern.expr ~decls:[ a ]
    (Flash_api.load_dir_entry ^ "(" ^ Flash_api.dir_addr_macro ^ "(a))")

let writeback_any =
  Pattern.expr ~decls:[ a ] (Flash_api.writeback_dir_entry ^ "(a)")

let nak_assign =
  Pattern.expr
    ("HANDLER_GLOBALS(header.nh.type) = " ^ Flash_api.msg_nak)

(* a dirEntry access at the root of the event: HANDLER_GLOBALS(dirEntry.f)
   reads, or assignments whose LHS is such an access *)
let dir_access (e : Ast.expr) : [ `Read | `Write ] option =
  let is_dir_hg e =
    match e.Ast.edesc with
    | Ast.Call ({ edesc = Ast.Ident hg; _ }, [ arg ])
      when String.equal hg Flash_api.handler_globals ->
      let rec base a =
        match a.Ast.edesc with
        | Ast.Field (inner, _) -> base inner
        | Ast.Ident r -> Some r
        | _ -> None
      in
      base arg = Some Flash_api.dir_entry_prefix
    | _ -> false
  in
  match e.Ast.edesc with
  | Ast.Assign (lhs, _) when is_dir_hg lhs -> Some `Write
  | Ast.Op_assign (_, lhs, _) when is_dir_hg lhs -> Some `Write
  | _ -> if is_dir_hg e then Some `Read else None

(* assignments in all the spellings protocol code uses *)
let any_assign =
  let d = [ ("_l", Pattern.Any); ("_r", Pattern.Any) ] in
  Pattern.alt
    (List.map (Pattern.expr ~decls:d)
       [ "_l = _r"; "_l |= _r"; "_l &= _r"; "_l += _r"; "_l -= _r";
         "_l ^= _r" ])

let sm ?(nak_pruning = true) ~(spec : Flash_api.spec) () : state Sm.t =
  Sm.make ~name
    ~start:(fun f ->
      let kind = Flash_api.handler_kind spec f.Ast.f_name in
      let in_handler = kind <> Flash_api.Procedure in
      Some { in_handler; loaded = false; modified = false; nak = false })
    ~rules:(fun st ->
      [
        (* the abstraction check comes first: a well-formed load leaves
           the state loaded quietly, a hand-computed one warns *)
        Sm.rule load_abstract (fun _ ->
            Sm.Goto { st with loaded = true; modified = false });
        Sm.rule load_any (fun ctx ->
            Sm.err ~severity:Diag.Warning ~checker:name ctx
              "directory entry address computed by hand (use DIR_ADDR)";
            Sm.Goto { st with loaded = true; modified = false });
        Sm.rule writeback_any (fun _ -> Sm.Goto { st with modified = false });
        Sm.rule nak_assign (fun _ ->
            if nak_pruning then Sm.Goto { st with nak = true } else Sm.Stay);
        (* any other event: classify dirEntry reads/writes by hand *)
        Sm.rule any_assign
          (fun ctx ->
            match dir_access ctx.Sm.matched with
            | Some `Write ->
              if st.in_handler && not st.loaded then begin
                Sm.err ~checker:name ctx
                  "directory entry modified before being loaded";
                Sm.Stop
              end
              else if not st.in_handler then begin
                Sm.err ~severity:Diag.Warning ~checker:name ctx
                  "subroutine modifies the directory entry; the caller \
                   must write it back";
                Sm.Stop
              end
              else Sm.Goto { st with modified = true; nak = false }
            | Some `Read | None -> Sm.Stay);
        Sm.rule
          (Pattern.expr ~decls:[ ("_e", Pattern.Any) ] "HANDLER_GLOBALS(_e)")
          (fun ctx ->
            match dir_access ctx.Sm.matched with
            | Some `Read when st.in_handler && not st.loaded ->
              Sm.err ~checker:name ctx
                "directory entry read before being loaded";
              Sm.Stop
            | _ -> Sm.Stay);
      ])
    ~state_to_string:(fun st ->
      Printf.sprintf "loaded=%b modified=%b nak=%b" st.loaded st.modified
        st.nak)
    ()

let exit_hook : state Engine.exit_hook =
  fun ctx st ->
  if st.in_handler && st.modified && not st.nak then
    Sm.err ~checker:name ctx
      "modified directory entry not written back on this path"

(* Staged: [check_prep ~spec] compiles the spec-dependent state machine
   once, the returned closure checks one prepared function at a time. *)
let check_prep ?nak_pruning ~spec : Prep.t -> Diag.t list =
  let sm = sm ?nak_pruning ~spec () in
  fun prep -> Engine.check_prep ~at_exit:exit_hook sm prep

let check_fn ?nak_pruning ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ?nak_pruning ~spec in
  fun f -> staged (Prep.build f)

let product ?nak_pruning ~spec () : Engine.pmachine option =
  Some (Engine.pack ~at_exit:exit_hook (sm ?nak_pruning ~spec ()))

let run ?nak_pruning ~spec (tus : Ast.tunit list) : Diag.t list =
  Engine.check ~at_exit:exit_hook (sm ?nak_pruning ~spec ()) (`Program tus)

(** Directory operations examined: loads, writebacks and dirEntry
    accesses — the Applied column of Table 6. *)
let applied (tus : Ast.tunit list) : int =
  let count = ref 0 in
  List.iter
    (fun tu ->
      List.iter
        (fun f ->
          List.iter
            (fun s ->
              Ast.iter_stmt_exprs
                (fun e ->
                  Ast.iter_expr
                    (fun e ->
                      match Ast.callee_name e with
                      | Some n
                        when String.equal n Flash_api.load_dir_entry
                             || String.equal n Flash_api.writeback_dir_entry
                        ->
                        incr count
                      | Some n when String.equal n Flash_api.handler_globals
                        ->
                        if
                          Cutil.refs_handler_global e
                            ~root:Flash_api.dir_entry_prefix
                        then incr count
                      | _ -> ())
                    e)
                s)
            f.Ast.f_body)
        (Ast.functions tu))
    tus;
  !count
