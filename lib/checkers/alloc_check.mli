(** The buffer-allocation failure checker — Section 9: every
    [ALLOCATE_DB()] must be checked with [ALLOC_FAILED] before the buffer
    is used. *)

val name : string
val metal_loc : int
val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

val applied : Ast.tunit list -> int
(** allocation sites — Table 6's Applied column *)
