(** The buffer-allocation failure checker — Section 9: every
    [ALLOCATE_DB()] must be checked with [ALLOC_FAILED] before the buffer
    is used. *)

val name : string
val metal_loc : int
val check_prep : spec:Flash_api.spec -> Prep.t -> Diag.t list
(** staged: check one prepared function — the fused per-function
    phase the scheduler drives *)

val product : spec:Flash_api.spec -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan}, [None] for pure AST
    walkers with nothing to compose *)

val check_fn : spec:Flash_api.spec -> Ast.func -> Diag.t list
(** check one function — the per-function phase the scheduler drives *)

val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

val applied : Ast.tunit list -> int
(** allocation sites — Table 6's Applied column *)
