(** The buffer-management checker — Section 6.

    FLASH data buffers are manually reference-counted; this checker
    enforces the paper's four conservative rules:

    + hardware handlers begin execution with a data buffer they must free;
    + software handlers begin without one and must allocate before sending;
    + after a free, no send can occur until another buffer is allocated;
    + once a buffer is allocated it must be freed before allocating again.

    Frees can be explicit ([FREE_DB]) or through routines listed in the
    protocol spec as expecting-and-freeing; uses likewise.  Those listed
    routines are themselves checked for consistency with their table
    entry.  The two annotation functions [has_buffer()] and
    [no_free_needed()] suppress warnings and are tracked so unused
    annotations can be reported (Section 6.1).  The checker is also
    path-sensitive in the value of the spec's conditional-free routines
    (the paper's twelve-line refinement), and — after the Section 11
    incident — aggressively objects to any use of [DB_INC_REFCOUNT]. *)

let name = "buffer_mgmt"
let metal_loc = 94

type state = Has_buf | No_buf

(* What must hold at function exit, per the spec's tables. *)
type role =
  | R_hw_handler
  | R_sw_handler
  | R_free_func  (** must end without the buffer *)
  | R_use_func  (** must end still holding the buffer *)
  | R_cond_free  (** may end either way *)

type outcome = {
  diags : Diag.t list;
  useful_annotations : int;
  unused_annotations : int;
}

let role_of (spec : Flash_api.spec) fname : role option =
  match Flash_api.handler_kind spec fname with
  | Flash_api.Hw_handler -> Some R_hw_handler
  | Flash_api.Sw_handler -> Some R_sw_handler
  | Flash_api.Procedure ->
    if List.mem fname spec.Flash_api.p_free_funcs then Some R_free_func
    else if List.mem fname spec.Flash_api.p_use_funcs then Some R_use_func
    else if List.mem fname spec.Flash_api.p_cond_free_funcs then
      Some R_cond_free
    else None

let wild = ("_x", Pattern.Any)

let call0 name = Pattern.expr (name ^ "()")
let call_any name = Pattern.alt [ call0 name; Pattern.call name ~arity:1 ]

(* any of the three send macros, any arguments *)
let send_pattern =
  let d =
    [ ("a1", Pattern.Any); ("a2", Pattern.Any); ("a3", Pattern.Any);
      ("a4", Pattern.Any); ("a5", Pattern.Any); ("a6", Pattern.Any) ]
  in
  Pattern.alt
    (List.map
       (fun m -> Pattern.expr ~decls:d (m ^ "(a1, a2, a3, a4, a5, a6)"))
       Flash_api.send_macros)

let use_pattern =
  Pattern.alt
    [
      Pattern.expr ~decls:[ wild; ("_y", Pattern.Any) ]
        (Flash_api.miscbus_read_db ^ "(_x, _y)");
      Pattern.expr ~decls:[ wild; ("_y", Pattern.Any); ("_z", Pattern.Any) ]
        (Flash_api.miscbus_write_db ^ "(_x, _y, _z)");
    ]

let alloc_pattern = call0 Flash_api.allocate_db
let free_pattern = call0 Flash_api.free_db

let make_sm ~(spec : Flash_api.spec) ~(suppress : Suppress.t) : state Sm.t =
  let free_calls =
    Pattern.alt
      (free_pattern :: List.map call_any spec.Flash_api.p_free_funcs)
  in
  let use_calls =
    Pattern.alt (use_pattern :: List.map call_any spec.Flash_api.p_use_funcs)
  in
  let annot pat_name next_state_if_used =
    Sm.rule (call0 pat_name) (fun ctx ->
        let ann =
          Suppress.record suppress ~name:pat_name ~loc:ctx.Sm.loc
            ~func:ctx.Sm.func.Ast.f_name
        in
        (* an annotation that changes the checker's mind is "useful" *)
        Suppress.mark_used ann;
        next_state_if_used)
  in
  let refcount_rule =
    (* the Section 11 lesson: a manual refcount bump blinds the checker,
       so it now objects loudly *)
    Sm.rule (call0 Flash_api.db_inc_refcount) (fun ctx ->
        Sm.err ~severity:Diag.Warning ~checker:name ctx
          "manual reference-count manipulation (DB_INC_REFCOUNT): checker \
           cannot track this buffer";
        Sm.Stay)
  in
  let err_stop ctx msg =
    Sm.err ~checker:name ctx "%s" msg;
    Sm.Stop
  in
  Sm.make ~name
    ~start:(fun f ->
      match role_of spec f.Ast.f_name with
      | Some (R_hw_handler | R_free_func | R_use_func | R_cond_free) ->
        Some Has_buf
      | Some R_sw_handler -> Some No_buf
      | None -> None)
    ~all:[ refcount_rule ]
    ~rules:(function
      | Has_buf ->
        [
          Sm.goto_rule free_calls No_buf;
          Sm.rule alloc_pattern (fun ctx ->
              err_stop ctx
                "buffer allocated while the current buffer is still held");
          annot Flash_api.ann_no_free_needed (Sm.Goto No_buf);
          (* has_buffer() in the has-buffer state is a no-op; it is
             recorded (unused) so spurious annotations get flagged *)
          Sm.rule (call0 Flash_api.ann_has_buffer) (fun ctx ->
              ignore
                (Suppress.record suppress ~name:Flash_api.ann_has_buffer
                   ~loc:ctx.Sm.loc ~func:ctx.Sm.func.Ast.f_name);
              Sm.Stay);
          Sm.rule use_calls (fun _ -> Sm.Stay);
        ]
      | No_buf ->
        [
          Sm.goto_rule alloc_pattern Has_buf;
          annot Flash_api.ann_has_buffer (Sm.Goto Has_buf);
          Sm.rule free_calls (fun ctx -> err_stop ctx "double free of buffer");
          Sm.rule send_pattern (fun ctx ->
              err_stop ctx "send without a data buffer");
          Sm.rule use_calls (fun ctx ->
              err_stop ctx "use of buffer after free");
        ])
    ~branch:(fun state cond direction ->
      (* path sensitivity on tests whose outcome decides buffer ownership:
         the true branch of `if (TryFreeBuffer())` has freed the buffer,
         and the true branch of `if (ALLOC_FAILED(buf))` never got one *)
      let is_cond_free e =
        match Ast.callee_name e with
        | Some n -> List.mem n spec.Flash_api.p_cond_free_funcs
        | None -> false
      in
      let is_alloc_failed e =
        Ast.callee_name e = Some Flash_api.alloc_failed
      in
      let rec classify e =
        if is_cond_free e || is_alloc_failed e then Some direction
        else
          match e.Ast.edesc with
          | Ast.Unop (Ast.Not, inner) -> Option.map not (classify inner)
          | _ -> None
      in
      match classify cond with
      | Some true -> No_buf
      | Some false -> state
      | None -> state)
    ~state_to_string:(function Has_buf -> "has_buf" | No_buf -> "no_buf")
    ()

let exit_hook ~spec (suppress : Suppress.t) : state Engine.exit_hook =
  let _ = suppress in
  fun ctx state ->
    match (role_of spec ctx.Sm.func.Ast.f_name, state) with
    | Some (R_hw_handler | R_sw_handler), Has_buf ->
      Sm.err ~checker:name ctx "buffer not freed on this path (leak)"
    | Some R_free_func, Has_buf ->
      Sm.err ~checker:name ctx
        "listed as freeing the buffer but does not free it on this path"
    | Some R_use_func, No_buf ->
      Sm.err ~checker:name ctx
        "listed as only using the buffer but frees it on this path"
    | _ -> ()

let run_with_annotations ~spec (tus : Ast.tunit list) : outcome =
  let suppress =
    Suppress.create
      ~reserved:[ Flash_api.ann_has_buffer; Flash_api.ann_no_free_needed ]
  in
  let sm = make_sm ~spec ~suppress in
  let diags =
    Engine.check ~at_exit:(exit_hook ~spec suppress) sm (`Program tus)
  in
  {
    diags;
    useful_annotations = List.length (Suppress.useful suppress);
    unused_annotations = List.length (Suppress.unused suppress);
  }

(* Staged: the spec-dependent state machine (and the annotation table,
   which only feeds the Table 4 counters, never the diagnostics) is built
   once per [check_fn ~spec] application. *)
let check_prep ~spec : Prep.t -> Diag.t list =
  let suppress =
    Suppress.create
      ~reserved:[ Flash_api.ann_has_buffer; Flash_api.ann_no_free_needed ]
  in
  let sm = make_sm ~spec ~suppress in
  fun prep -> Engine.check_prep ~at_exit:(exit_hook ~spec suppress) sm prep

let check_fn ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ~spec in
  fun f -> staged (Prep.build f)

(* The product pack gets its own annotation table: the table only feeds
   the Table 4 counters of [run_with_annotations] (which builds its own),
   never the diagnostics, so scan-time recording is inert. *)
let product ~spec : Engine.pmachine option =
  let suppress =
    Suppress.create
      ~reserved:[ Flash_api.ann_has_buffer; Flash_api.ann_no_free_needed ]
  in
  Some (Engine.pack ~at_exit:(exit_hook ~spec suppress) (make_sm ~spec ~suppress))

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  (run_with_annotations ~spec tus).diags

(** Buffer operations examined (frees, allocations, sends). *)
let applied (tus : Ast.tunit list) : int =
  Cutil.count_calls tus
    (Flash_api.free_db :: Flash_api.allocate_db :: Flash_api.send_macros)
