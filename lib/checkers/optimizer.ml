(** A meta-level optimisation pass — MC's third pillar.

    The paper's framing: MC can "check, transform, and optimize
    system-level operations"; the FLASH study only checks.  This pass
    demonstrates the optimise leg on the same invariant Figure 2 checks:
    [WAIT_FOR_DB_FULL] spins until the hardware finishes filling the data
    buffer, so a wait that executes only on paths that have *already*
    waited is pure overhead in the handler's critical path — exactly the
    kind of cycle-shaving FLASH implementors did by hand when they pushed
    waits "as late as possible".

    The analysis is the checker's state machine read in the opposite
    direction: walk every path tracking whether the buffer is already
    synchronised; a wait site whose every visit happens in the
    synchronised state is redundant and can be deleted.  Sites reachable
    in both states are kept (they are the synchronisation point of some
    path). *)

type sync = Unsynced | Synced

(** Wait sites that are redundant on every path through them. *)
let redundant_waits_prep (prep : Prep.t) : Loc.t list =
  (* per wait site: the set of states it was visited in *)
  let visits : (Loc.t, bool * bool) Hashtbl.t = Hashtbl.create 8 in
  let record loc state =
    let in_unsynced, in_synced =
      Option.value ~default:(false, false) (Hashtbl.find_opt visits loc)
    in
    match state with
    | Unsynced -> Hashtbl.replace visits loc (true, in_synced)
    | Synced -> Hashtbl.replace visits loc (in_unsynced, true)
  in
  let wait_pattern =
    Pattern.expr
      ~decls:[ ("a", Pattern.Scalar) ]
      (Flash_api.wait_for_db_full ^ "(a)")
  in
  let sm : sync Sm.t =
    Sm.make ~name:"redundant_wait"
      ~start:(fun _ -> Some Unsynced)
      ~rules:(fun state ->
        [
          Sm.rule wait_pattern (fun ctx ->
              record ctx.Sm.loc state;
              Sm.Goto Synced);
        ])
      ()
  in
  ignore (Engine.check_prep sm prep);
  Hashtbl.fold
    (fun loc (in_unsynced, in_synced) acc ->
      if in_synced && not in_unsynced then loc :: acc else acc)
    visits []
  |> List.sort Loc.compare

let redundant_waits (func : Ast.func) : Loc.t list =
  redundant_waits_prep (Prep.build func)

(* drop statements that are exactly a wait at one of [locs] *)
let remove_waits (locs : Loc.t list) (fn : Ast.func) : Ast.func =
  {
    fn with
    Ast.f_body =
      Fixer.map_stmt_list
        (fun s ->
          match s.Ast.sdesc with
          | Ast.Sexpr e -> (
            match (Ast.callee_name e, e.Ast.eloc) with
            | Some n, loc
              when String.equal n Flash_api.wait_for_db_full
                   && List.exists (Loc.equal loc) locs ->
              []
            | _ -> [ s ])
          | _ -> [ s ])
        fn.Ast.f_body;
  }

type report = {
  functions_changed : int;
  waits_removed : int;
}

(** Optimise a whole program; returns the rewritten units and a count of
    what was removed.  Safety: the buffer-race checker accepts the output
    whenever it accepted the input, which the test suite asserts. *)
let optimize (tus : Ast.tunit list) : Ast.tunit list * report =
  let functions_changed = ref 0 in
  let waits_removed = ref 0 in
  let out =
    List.map
      (fun tu ->
        {
          tu with
          Ast.tu_globals =
            List.map
              (function
                | Ast.Gfunc fn ->
                  let locs = redundant_waits fn in
                  if locs = [] then Ast.Gfunc fn
                  else begin
                    incr functions_changed;
                    waits_removed := !waits_removed + List.length locs;
                    Ast.Gfunc (remove_waits locs fn)
                  end
                | g -> g)
              tu.Ast.tu_globals;
        })
      tus
  in
  (out, { functions_changed = !functions_changed;
          waits_removed = !waits_removed })
