(** The no-floating-point checker — the paper's separate 7-line extension
    (Table 7): the protocol processor has no FPU. *)

val name : string
val metal_loc : int
val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list
val applied : Ast.tunit list -> int
