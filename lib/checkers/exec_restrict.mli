(** The handler execution-restriction checker — Section 8: handler
    signatures, deprecated macros, the no-stack rules
    (NO_STACK/SET_STACKPTR, address-of, aggregates), and the mandatory
    simulator hooks (Table 5). *)

val name : string
val metal_loc : int

val check_fn : spec:Flash_api.spec -> Ast.func -> Diag.t list
(** check one function — results are unnormalized; the registry's
    finalizer sorts and deduplicates the whole-program list *)

val check_prep : spec:Flash_api.spec -> Prep.t -> Diag.t list
(** [check_fn] over a prepared function (the CFG is unused — this checker
    walks the AST directly) *)

val product : spec:Flash_api.spec -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan}, [None] for pure AST
    walkers with nothing to compose *)

val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list

val applied : Ast.tunit list -> int
(** routines examined — Table 5's Handlers column *)

val vars_checked : Ast.tunit list -> int
(** local variables examined — Table 5's Vars column *)
