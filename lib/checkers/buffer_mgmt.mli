(** The buffer-management checker — Section 6: the four allocate/free
    rules, the spec's free/use/conditional-free routine tables, and the
    [has_buffer()]/[no_free_needed()] annotations (tracked so unused ones
    can be flagged). *)

val name : string
val metal_loc : int

type outcome = {
  diags : Diag.t list;
  useful_annotations : int;  (** Table 4's "useful" column *)
  unused_annotations : int;
}

val run_with_annotations : spec:Flash_api.spec -> Ast.tunit list -> outcome

val check_prep : spec:Flash_api.spec -> Prep.t -> Diag.t list
(** staged: [check_prep ~spec] compiles the spec's state machine once and
    returns the fused per-function phase the scheduler drives *)

val product : spec:Flash_api.spec -> Engine.pmachine option
(** the machine packed for {!Engine.product_scan}, [None] for pure AST
    walkers with nothing to compose *)

val check_fn : spec:Flash_api.spec -> Ast.func -> Diag.t list
(** staged: [check_fn ~spec] compiles the spec's state machine once and
    returns the per-function phase the scheduler drives *)

val run : spec:Flash_api.spec -> Ast.tunit list -> Diag.t list
val applied : Ast.tunit list -> int
