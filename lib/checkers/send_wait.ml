(** The send/wait pairing checker — Section 9.

    Intervention handlers send to the processor or I/O interface with the
    "wait" bit set and must then wait for the reply with the matching
    interface macro; missing or mismatched waits deadlock the machine.
    The checker enforces that (1) every send with [W_WAIT] is followed on
    the path by the proper wait, and (2) no second synchronous send is
    issued before the first has been waited for. *)

let name = "send_wait"
let metal_loc = 40

type iface = PI | IO

type state = Idle | Waiting of iface

let decls =
  [ ("flag", Pattern.Any); ("keep", Pattern.Any); ("swap", Pattern.Any);
    ("dec", Pattern.Any); ("null", Pattern.Any) ]

let pi_send_wait =
  Pattern.expr ~decls "PI_SEND(flag, keep, swap, W_WAIT, dec, null)"

let io_send_wait =
  Pattern.expr ~decls "IO_SEND(flag, keep, swap, W_WAIT, dec, null)"

let pi_wait = Pattern.expr (Flash_api.wait_for_pi_reply ^ "()")
let io_wait = Pattern.expr (Flash_api.wait_for_io_reply ^ "()")

let iface_name = function PI -> "PI" | IO -> "IO"

let sm : state Sm.t =
  Sm.make ~name
    ~start:(fun _ -> Some Idle)
    ~rules:(function
      | Idle ->
        [
          Sm.goto_rule pi_send_wait (Waiting PI);
          Sm.goto_rule io_send_wait (Waiting IO);
          (* a stray wait with nothing outstanding is harmless for
             deadlock but flagged at warning level *)
          Sm.rule (Pattern.alt [ pi_wait; io_wait ]) (fun _ -> Sm.Stay);
        ]
      | Waiting iface ->
        [
          Sm.rule pi_wait (fun ctx ->
              if iface = PI then Sm.Goto Idle
              else begin
                Sm.err ~checker:name ctx
                  "waiting on the PI interface but the outstanding send \
                   was on %s"
                  (iface_name iface);
                Sm.Goto Idle
              end);
          Sm.rule io_wait (fun ctx ->
              if iface = IO then Sm.Goto Idle
              else begin
                Sm.err ~checker:name ctx
                  "waiting on the IO interface but the outstanding send \
                   was on %s"
                  (iface_name iface);
                Sm.Goto Idle
              end);
          Sm.rule
            (Pattern.alt [ pi_send_wait; io_send_wait ])
            (fun ctx ->
              Sm.err ~checker:name ctx
                "second synchronous send before waiting for the first";
              Sm.Stay);
        ])
    ~state_to_string:(function
      | Idle -> "idle"
      | Waiting i -> "waiting_" ^ iface_name i)
    ()

let exit_hook : state Engine.exit_hook =
  fun ctx state ->
  match state with
  | Waiting iface ->
    Sm.err ~checker:name ctx
      "synchronous %s send is never waited for on this path \
       (or waits without the interface macro)"
      (iface_name iface)
  | Idle -> ()

let check_prep ~spec : Prep.t -> Diag.t list =
  let _ = spec in
  fun prep -> Engine.check_prep ~at_exit:exit_hook sm prep

(* Three reachable states, so the machine lowers onto the
   transition-table shape; the exit hook translates back through the
   state array. *)
let product_states = [| Idle; Waiting PI; Waiting IO |]

let table =
  Engine.prebuild ~n_states:3 (Engine.reindex product_states sm)

let product ~spec : Engine.pmachine option =
  let _ = spec in
  Some
    (Engine.pack_table
       ~at_exit:(fun ctx i -> exit_hook ctx product_states.(i))
       table)

let check_fn ~spec : Ast.func -> Diag.t list =
  let staged = check_prep ~spec in
  fun f -> staged (Prep.build f)

let run ~spec (tus : Ast.tunit list) : Diag.t list =
  let _ = spec in
  Engine.check ~at_exit:exit_hook sm (`Program tus)

(** Synchronous sends plus interface waits — the Applied column of
    Table 6. *)
let applied (tus : Ast.tunit list) : int =
  let waits =
    Cutil.count_calls tus
      [ Flash_api.wait_for_pi_reply; Flash_api.wait_for_io_reply ]
  in
  let sync_sends = ref 0 in
  List.iter
    (fun tu ->
      List.iter
        (fun f ->
          List.iter
            (fun s ->
              Ast.iter_stmt_exprs
                (fun e ->
                  Ast.iter_expr
                    (fun e ->
                      match Cutil.send_wait_flag e with
                      | Some flag when String.equal flag Flash_api.w_wait ->
                        incr sync_sends
                      | _ -> ())
                    e)
                s)
            f.Ast.f_body)
        (Ast.functions tu))
    tus;
  waits + !sync_sends
