(** The numbers published in the paper's tables, for side-by-side
    comparison with our measurements.  Protocol order follows Table 1. *)

let protocols = [ "bitvector"; "dyn_ptr"; "sci"; "coma"; "rac"; "common" ]

(** Table 1: LOC, number of paths, average/max path length. *)
let table1 : (string * (int * int * int * int)) list =
  [
    ("bitvector", (10386, 486, 87, 563));
    ("dyn_ptr", (18438, 2322, 135, 399));
    ("sci", (11473, 1051, 73, 330));
    ("coma", (17031, 1131, 135, 244));
    ("rac", (14396, 1364, 133, 516));
    ("common", (8783, 1165, 183, 461));
  ]

(** Table 2 (buffer race): errors, false positives, applied. *)
let table2 : (string * (int * int * int)) list =
  [
    ("bitvector", (4, 0, 14));
    ("dyn_ptr", (0, 0, 16));
    ("sci", (0, 0, 2));
    ("coma", (0, 0, 0));
    ("rac", (0, 0, 10));
    ("common", (0, 1, 17));
  ]

(** Table 3 (message length): errors, false positives, applied. *)
let table3 : (string * (int * int * int)) list =
  [
    ("bitvector", (3, 0, 205));
    ("dyn_ptr", (7, 0, 316));
    ("sci", (0, 0, 308));
    ("coma", (0, 2, 302));
    ("rac", (8, 0, 346));
    ("common", (0, 0, 73));
  ]

(** Table 4 (buffer management): errors, minor, useful annotations,
    useless annotations. *)
let table4 : (string * (int * int * int * int)) list =
  [
    ("dyn_ptr", (2, 2, 3, 3));
    ("bitvector", (2, 1, 0, 1));
    ("sci", (3, 2, 10, 10));
    ("coma", (0, 0, 0, 0));
    ("rac", (2, 0, 2, 4));
    ("common", (0, 1, 3, 7));
  ]

(** Section 7 (lanes): serious bugs per protocol, zero false positives. *)
let lanes : (string * int) list =
  [
    ("bitvector", 1);
    ("dyn_ptr", 1);
    ("sci", 0);
    ("coma", 0);
    ("rac", 0);
    ("common", 0);
  ]

(** Table 5 (execution restrictions): violations, handlers, vars. *)
let table5 : (string * (int * int * int)) list =
  [
    ("dyn_ptr", (4, 227, 768));
    ("bitvector", (2, 168, 489));
    ("sci", (0, 214, 794));
    ("coma", (3, 193, 648));
    ("rac", (2, 200, 668));
    ("common", (0, 62, 398));
  ]

(** Table 6: (buffer alloc FP, applied), (directory FP, applied),
    (send-wait FP, applied). *)
let table6 : (string * ((int * int) * (int * int) * (int * int))) list =
  [
    ("bitvector", ((0, 17), (3, 214), (2, 32)));
    ("dyn_ptr", ((2, 19), (13, 382), (2, 38)));
    ("sci", ((0, 5), (1, 88), (0, 11)));
    ("coma", ((0, 32), (5, 659), (0, 7)));
    ("rac", ((0, 20), (9, 424), (2, 35)));
    ("common", ((0, 4), (0, 1), (2, 2)));
  ]

(** Table 7 (summary): checker -> metal LOC, errors, false positives. *)
let table7 : (string * (int * int * int)) list =
  [
    ("buffer_mgmt", (94, 9, 25));
    ("msg_length", (29, 18, 2));
    ("lanes", (220, 2, 0));
    ("wait_for_db", (12, 4, 1));
    ("alloc_check", (16, 0, 2));
    ("dir_entry", (51, 1, 31));
    ("send_wait", (40, 0, 8));
    ("exec_restrict", (84, 0, 0));
    ("no_float", (7, 0, 0));
  ]

let table7_totals = (553, 34, 69)
