(** Regenerates every table of the paper's evaluation from the synthetic
    corpus, with paper-published and measured values side by side
    (cells read "paper/measured"). *)

type class_counts = { bugs : int; minors : int; fps : int }

val classify_diags :
  Corpus.protocol -> checker:string -> Diag.t list -> class_counts
(** classify against the protocol's seeded-fault manifest; a diagnostic
    at an unseeded site counts as a false positive so regressions are
    visible *)

val table1 : Corpus.t -> Table.t
(** protocol size: LOC, paths, average/max path length *)

val table2 : Corpus.t -> Table.t
(** buffer race-condition checker *)

val table3 : Corpus.t -> Table.t
(** message-length checker *)

val table4 : Corpus.t -> Table.t
(** buffer management: errors, minor, useful/useless annotations *)

val lanes_table : Corpus.t -> Table.t
(** Section 7's lane-allowance checker *)

val table5 : Corpus.t -> Table.t
(** execution restrictions: violations, handlers, vars *)

val table6 : Corpus.t -> Table.t
(** the three lower-yield checks *)

val table7 : Corpus.t -> Table.t
(** the summary: per-checker LOC, errors, false positives *)

val all : Corpus.t -> Table.t list
