(** Plain-text table rendering for the experiment harness. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ?(notes = []) ~title ~header rows = { title; header; rows; notes }

let render (t : t) : string =
  let all_rows = t.header :: t.rows in
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all_rows
  in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all_rows;
  let pad i cell =
    let w = widths.(i) in
    let extra = w - String.length cell in
    (* numbers right-aligned, text left-aligned *)
    let is_num =
      cell <> ""
      && String.for_all
           (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '/')
           cell
    in
    if is_num then String.make extra ' ' ^ cell
    else cell ^ String.make extra ' '
  in
  let line row =
    "  " ^ String.concat "  " (List.mapi pad row)
  in
  let sep =
    "  "
    ^ String.concat "  "
        (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (line t.header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) t.rows;
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    t.notes;
  Buffer.contents buf

let print t = print_string (render t)
