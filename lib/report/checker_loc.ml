(** Source sizes of our checker implementations, for the Table 7
    comparison against the paper's metal extensions.

    Measured at release time with [wc -l] equivalents over the checker
    sources (doc comments excluded); kept as constants so the bench
    harness needs no filesystem access to the source tree. *)

let by_name : (string * int) list =
  [
    ("buffer_mgmt", 175);
    ("msg_length", 60);
    ("lanes", 150);
    ("wait_for_db", 40);
    ("alloc_check", 55);
    ("dir_entry", 120);
    ("send_wait", 85);
    ("exec_restrict", 185);
    ("no_float", 45);
  ]
