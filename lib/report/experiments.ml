(** Regenerates every table of the paper's evaluation from the synthetic
    corpus, printing paper-published and measured values side by side
    ("paper/ours" cells, or separate columns where that reads better). *)

type class_counts = { bugs : int; minors : int; fps : int }

let classify_diags (p : Corpus.protocol) ~checker (diags : Diag.t list) :
    class_counts =
  List.fold_left
    (fun acc (d : Diag.t) ->
      match
        Manifest.classify p.Corpus.manifest ~checker ~protocol:p.Corpus.name
          ~func:d.Diag.func
      with
      | Some e -> (
        match e.Manifest.kind with
        | Manifest.Bug -> { acc with bugs = acc.bugs + 1 }
        | Manifest.Minor -> { acc with minors = acc.minors + 1 }
        | Manifest.False_positive -> { acc with fps = acc.fps + 1 })
      | None ->
        (* a diagnostic at an unseeded site would be a true false positive
           of our reproduction; count it so regressions are visible *)
        { acc with fps = acc.fps + 1 })
    { bugs = 0; minors = 0; fps = 0 }
    diags

let run_checker (p : Corpus.protocol) name : Diag.t list =
  match Registry.find name with
  | Some c -> c.Registry.run ~spec:p.Corpus.spec p.Corpus.tus
  | None -> []

let applied (p : Corpus.protocol) name : int =
  match Registry.find name with
  | Some c -> c.Registry.applied p.Corpus.tus
  | None -> 0

let fraction a b = Printf.sprintf "%d/%d" a b

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 (corpus : Corpus.t) : Table.t =
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let stats =
          List.concat_map
            (fun tu ->
              List.map
                (fun f -> Paths.analyze (Cfg.build f))
                (Ast.functions tu))
            p.Corpus.tus
        in
        let agg = Paths.aggregate stats in
        let ploc, ppaths, pavg, pmax =
          List.assoc p.Corpus.name Paper_data.table1
        in
        [
          p.Corpus.name;
          fraction ploc p.Corpus.loc;
          fraction ppaths agg.Paths.paths;
          fraction pavg (int_of_float (Float.round agg.Paths.avg_length));
          fraction pmax agg.Paths.max_path_length;
        ])
      corpus.Corpus.protocols
  in
  Table.make
    ~title:
      "Table 1: protocol size (cells are paper/measured; LOC excludes \
       headers)"
    ~header:[ "protocol"; "LOC"; "# of paths"; "ave path"; "max path" ]
    rows
    ~notes:
      [
        "path counts use the acyclic-path convention (back edges cut \
         once), as a path profiler would";
      ]

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3 share a shape                                        *)
(* ------------------------------------------------------------------ *)

let errors_fp_applied ~checker ~title ~paper (corpus : Corpus.t) : Table.t =
  let totals = ref (0, 0, 0) in
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let diags = run_checker p checker in
        let c = classify_diags p ~checker diags in
        let ap = applied p checker in
        let perr, pfp, pap = List.assoc p.Corpus.name paper in
        let te, tf, ta = !totals in
        totals := (te + c.bugs, tf + c.fps, ta + ap);
        [
          p.Corpus.name;
          fraction perr c.bugs;
          fraction pfp c.fps;
          fraction pap ap;
        ])
      corpus.Corpus.protocols
  in
  let sum_paper f = List.fold_left (fun acc (_, t) -> acc + f t) 0 paper in
  let te, tf, ta = !totals in
  let total_row =
    [
      "total";
      fraction (sum_paper (fun (e, _, _) -> e)) te;
      fraction (sum_paper (fun (_, f, _) -> f)) tf;
      fraction (sum_paper (fun (_, _, a) -> a)) ta;
    ]
  in
  Table.make ~title
    ~header:[ "protocol"; "errors"; "false pos"; "applied" ]
    (rows @ [ total_row ])

let table2 corpus =
  errors_fp_applied ~checker:"wait_for_db"
    ~title:
      "Table 2: buffer race-condition checker (paper/measured)"
    ~paper:Paper_data.table2 corpus

let table3 corpus =
  errors_fp_applied ~checker:"msg_length"
    ~title:"Table 3: message-length checker (paper/measured)"
    ~paper:Paper_data.table3 corpus

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 (corpus : Corpus.t) : Table.t =
  let checker = "buffer_mgmt" in
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let outcome =
          Buffer_mgmt.run_with_annotations ~spec:p.Corpus.spec p.Corpus.tus
        in
        let c = classify_diags p ~checker outcome.Buffer_mgmt.diags in
        let perr, pminor, puseful, puseless =
          List.assoc p.Corpus.name Paper_data.table4
        in
        [
          p.Corpus.name;
          fraction perr c.bugs;
          fraction pminor c.minors;
          fraction puseful outcome.Buffer_mgmt.useful_annotations;
          fraction puseless c.fps;
        ])
      corpus.Corpus.protocols
  in
  Table.make
    ~title:"Table 4: buffer management checker (paper/measured)"
    ~header:[ "protocol"; "errors"; "minor"; "useful"; "useless" ]
    rows
    ~notes:
      [
        "useful = annotations that suppressed a warning; useless = false \
         positives an annotation would silence";
      ]

(* ------------------------------------------------------------------ *)
(* Lanes (Section 7)                                                   *)
(* ------------------------------------------------------------------ *)

let lanes_table (corpus : Corpus.t) : Table.t =
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let diags = run_checker p "lanes" in
        let c = classify_diags p ~checker:"lanes" diags in
        let pbugs = List.assoc p.Corpus.name Paper_data.lanes in
        [ p.Corpus.name; fraction pbugs c.bugs; fraction 0 c.fps ])
      corpus.Corpus.protocols
  in
  Table.make
    ~title:
      "Section 7: lane-allowance (deadlock) checker (paper/measured)"
    ~header:[ "protocol"; "errors"; "false pos" ]
    rows
    ~notes:
      [ "loops whose sends are covered by space checks are fixed points" ]

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let table5 (corpus : Corpus.t) : Table.t =
  let checker = "exec_restrict" in
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let diags = run_checker p checker in
        let c = classify_diags p ~checker diags in
        let handlers = applied p checker in
        let vars = Exec_restrict.vars_checked p.Corpus.tus in
        let pviol, phandlers, pvars =
          List.assoc p.Corpus.name Paper_data.table5
        in
        [
          p.Corpus.name;
          fraction pviol c.bugs;
          fraction phandlers handlers;
          fraction pvars vars;
        ])
      corpus.Corpus.protocols
  in
  Table.make
    ~title:
      "Table 5: execution-restriction checker (paper/measured)"
    ~header:[ "protocol"; "violations"; "handlers"; "vars" ]
    rows
    ~notes:
      [
        "sci's three hook omissions sit in unimplemented routines and are \
         not counted, as in the paper";
      ]

(* ------------------------------------------------------------------ *)
(* Table 6                                                             *)
(* ------------------------------------------------------------------ *)

let table6 (corpus : Corpus.t) : Table.t =
  let cell p checker (pfp, pap) =
    let diags = run_checker p checker in
    let c = classify_diags p ~checker diags in
    (* the directory checker's single real bug is reported in the text,
       not the FP column, exactly as the paper footnotes it *)
    [ fraction pfp c.fps; fraction pap (applied p checker) ]
  in
  let rows =
    List.map
      (fun (p : Corpus.protocol) ->
        let alloc_p, dir_p, sw_p =
          List.assoc p.Corpus.name Paper_data.table6
        in
        (p.Corpus.name
         :: (cell p "alloc_check" alloc_p
            @ cell p "dir_entry" dir_p
            @ cell p "send_wait" sw_p)))
      corpus.Corpus.protocols
  in
  Table.make
    ~title:
      "Table 6: the three lower-yield checks (paper/measured)"
    ~header:
      [
        "protocol"; "alloc FP"; "applied"; "dir FP"; "applied"; "sw FP";
        "applied";
      ]
    rows
    ~notes:[ "the directory-entry check also found 1 bug in bitvector" ]

(* ------------------------------------------------------------------ *)
(* Table 7                                                             *)
(* ------------------------------------------------------------------ *)

let table7 (corpus : Corpus.t) : Table.t =
  let count_all checker =
    (* the paper's Table 7 reports hook violations in Table 5 only: the
       execution-restriction row shows zero errors there *)
    if String.equal checker "exec_restrict" then (0, 0)
    else
      List.fold_left
        (fun (bugs, fps) (p : Corpus.protocol) ->
          let diags = run_checker p checker in
          let c = classify_diags p ~checker diags in
          (bugs + c.bugs, fps + c.fps))
        (0, 0) corpus.Corpus.protocols
  in
  let ours_loc = Checker_loc.by_name in
  let rows =
    List.map
      (fun (c : Registry.checker) ->
        let bugs, fps = count_all c.Registry.name in
        let ploc, perr, pfp =
          match List.assoc_opt c.Registry.name Paper_data.table7 with
          | Some t -> t
          | None -> (0, 0, 0)
        in
        let our_loc =
          match List.assoc_opt c.Registry.name ours_loc with
          | Some n -> n
          | None -> 0
        in
        [
          c.Registry.name;
          string_of_int ploc;
          string_of_int our_loc;
          fraction perr bugs;
          fraction pfp fps;
        ])
      Registry.all
  in
  let tot_bugs, tot_fps =
    List.fold_left
      (fun (b, f) (c : Registry.checker) ->
        let bugs, fps = count_all c.Registry.name in
        ignore c;
        (b + bugs, f + fps))
      (0, 0) Registry.all
  in
  let ploc, perr, pfp = Paper_data.table7_totals in
  let total_row =
    [
      "total";
      string_of_int ploc;
      string_of_int (List.fold_left (fun a (_, n) -> a + n) 0 ours_loc);
      fraction perr tot_bugs;
      fraction pfp tot_fps;
    ]
  in
  Table.make
    ~title:"Table 7: checker summary (errors and FPs are paper/measured)"
    ~header:
      [ "checker"; "metal LOC"; "our LOC"; "errors"; "false pos" ]
    (rows @ [ total_row ])
    ~notes:
      [
        "hook violations appear in Table 5, not in the error column, as \
         in the paper";
      ]

(* ------------------------------------------------------------------ *)
(* Everything                                                          *)
(* ------------------------------------------------------------------ *)

let all (corpus : Corpus.t) : Table.t list =
  [
    table1 corpus;
    table2 corpus;
    table3 corpus;
    table4 corpus;
    lanes_table corpus;
    table5 corpus;
    table6 corpus;
    table7 corpus;
  ]
