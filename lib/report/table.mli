(** Plain-text table rendering for the experiment harness. *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  ?notes:string list -> title:string -> header:string list ->
  string list list -> t

val render : t -> string
(** columns aligned; numeric cells right-aligned *)

val print : t -> unit
