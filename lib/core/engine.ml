(** The path-sensitive checking engine — the xg++ analogue.

    [check sm (`Func f)] applies the state machine [sm] down every
    execution path of [f]'s control-flow graph.  Traversal is
    depth-first; a [(node, state)] pair already visited is not
    re-explored, which keeps the engine linear in (nodes x distinct
    states) while still distinguishing every state the machine can be in
    at every program point — the same trick xg++ used to make exhaustive
    path checking tractable in the presence of loops.

    Within a node, sub-expressions are offered to the rules in evaluation
    order, so a pattern for [FREE_BUF()] fires before the pattern for the
    enclosing send in [NI_SEND(FREE_BUF(), ...)].

    {2 The fused fast path}

    All per-function analysis the engine needs — the CFG and each node's
    flattened event array — comes from a {!Prep.t}, so a driver checking
    one function with several machines builds that work once and calls
    {!check_prep} per machine ([Registry.run_all_fused] and the [Mcd]
    function-batched units do exactly that).  {!check} remains the
    convenient entry point and builds a private prep per call.

    Rules are not scanned linearly per event: each state's rule list is
    compiled once (per checked function) into a {!Pattern.root_shapes}
    index, so an event is only offered to rules whose pattern root could
    match it — for most events (plain identifiers, arithmetic) that is
    the empty list.

    Witness steps are recorded as raw (location, expression, state)
    tuples and only rendered to strings when a diagnostic is actually
    emitted, so a match on a clean path costs no pretty-printing.

    Statistics are immutable snapshots accumulated into a caller-supplied
    [stats ref]: the engine itself only touches domain-local counters, so
    concurrent checks from several domains are race-free as long as each
    domain passes its own ref (merge the per-domain records with
    {!stats_add} at join — that is what [Mcd] does). *)

type stats = {
  nodes_visited : int;
  events_matched : int;
  paths_stopped : int;
}

let stats_zero = { nodes_visited = 0; events_matched = 0; paths_stopped = 0 }

let stats_add a b =
  {
    nodes_visited = a.nodes_visited + b.nodes_visited;
    events_matched = a.events_matched + b.events_matched;
    paths_stopped = a.paths_stopped + b.paths_stopped;
  }

let fresh_stats () = ref stats_zero

(* Sub-expressions in evaluation (post-) order — now owned by [Prep],
   re-exported here because the engine is where callers historically
   found it. *)
let subexprs_post = Prep.subexprs_post

type 'state exit_hook = Sm.action_ctx -> 'state -> unit

(* ------------------------------------------------------------------ *)
(* Containment: budgets, degraded mode, fault injection                *)
(* ------------------------------------------------------------------ *)

exception Budget_exhausted of string
(** raised from inside a traversal when the installed unit budget runs
    out; schedulers catch it at the unit boundary *)

exception Injected_fault of string
(** raised at [check_prep] entry when the test-only fault hook matches —
    the fault-injection harness's stand-in for a checker bug *)

(* The per-unit resource budget.  [fuel] bounds node visits — the same
   guard [Paths.enumerate]'s [limit] gives path enumeration, extended to
   the engine's (node x state) traversal, where pathological machines
   (unbounded state growth) could otherwise run away.  [deadline_ms]
   bounds wall time; it is checked every 256 visits so the clock is
   off the hot path. *)
type budget = { fuel : int option; deadline_ms : float option }

let no_budget = { fuel = None; deadline_ms = None }

type limiter = { mutable fuel_left : int; deadline_us : float }

(* Domain-local: the budget reaches every checker through the engine
   without threading a parameter through the nine [check_fn] closures,
   and two domains never share a limiter. *)
let limiter_key : limiter option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let degraded_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(** Run [f] with [b] installed as the current domain's traversal budget;
    any [check_prep] within raises {!Budget_exhausted} once the budget
    runs out.  Budgets do not nest meaningfully: the innermost wins. *)
let with_budget (b : budget) f =
  match b with
  | { fuel = None; deadline_ms = None } -> f ()
  | _ ->
    let lim =
      {
        fuel_left = Option.value b.fuel ~default:max_int;
        deadline_us =
          (match b.deadline_ms with
          | Some ms -> Mcobs.now_us () +. (ms *. 1000.)
          | None -> infinity);
      }
    in
    let prev = Domain.DLS.get limiter_key in
    Domain.DLS.set limiter_key (Some lim);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set limiter_key prev)
      f

(** Run [f] in degraded, flow-insensitive mode: every [check_prep]
    within runs the machine once over the function's events in source
    order (single state thread, branches not explored) — linear in event
    count, hence total.  The budget is suspended: the flat pass cannot
    run away.  This is the fallback a fault-isolated unit retries with
    after a crash or a blown budget. *)
let with_degraded f =
  let prev_d = Domain.DLS.get degraded_key in
  let prev_l = Domain.DLS.get limiter_key in
  Domain.DLS.set degraded_key true;
  Domain.DLS.set limiter_key None;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set degraded_key prev_d;
      Domain.DLS.set limiter_key prev_l)
    f

(* Test-only: the fault-injection harness installs a predicate and the
   matching (checker, function) pair raises at [check_prep] entry.
   Installed before worker domains spawn, cleared after the run. *)
let fault_hook : (checker:string -> func:string -> bool) option ref =
  ref None

let set_fault_hook h = fault_hook := h

let check_fault_hook ~checker ~func =
  match !fault_hook with
  | Some h when h ~checker ~func ->
    raise (Injected_fault (Printf.sprintf "%s/%s" checker func))
  | _ -> ()

(* How a contained failure reads in an ["internal"] diagnostic. *)
let describe_fault = function
  | Budget_exhausted msg -> "budget exhausted: " ^ msg
  | Injected_fault what -> "injected fault: " ^ what
  | exn -> "exception: " ^ Printexc.to_string exn

let consume_fuel (lim : limiter) =
  lim.fuel_left <- lim.fuel_left - 1;
  if lim.fuel_left <= 0 then begin
    Mcobs.count "engine.budget_exhausted";
    raise (Budget_exhausted "step fuel exhausted")
  end;
  if lim.fuel_left land 255 = 0 && Mcobs.now_us () > lim.deadline_us then begin
    Mcobs.count "engine.budget_exhausted";
    raise (Budget_exhausted "unit deadline exceeded")
  end

(* A compact source rendering of the matched event for witness steps. *)
let event_string (e : Ast.expr) : string =
  let s = Pp.expr_to_string e in
  let s =
    String.map (function '\n' | '\t' -> ' ' | c -> c) s
  in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

(* ------------------------------------------------------------------ *)
(* Rule dispatch: the pattern root-index                               *)
(* ------------------------------------------------------------------ *)

(* Candidate rules per event root shape, in original rule order (state
   rules before [all] rules), so "first matching rule fires" is
   preserved exactly.  A call event with an identifier callee looks its
   name up in [d_by_name]; names no pattern mentions — and calls through
   non-identifier callees — fall back to the generic [Ast.Call] bucket
   of [d_by_tag], which holds only callee-wildcard call patterns and
   root-wildcard patterns. *)
type 'state dispatch = {
  d_by_name : (string, 'state Sm.rule list) Hashtbl.t;
  d_by_sym : (int, 'state Sm.rule list) Hashtbl.t;
      (** the same buckets keyed by interned callee symbol — what the
          SoA product scan probes, an int hash instead of a string
          hash *)
  d_by_tag : 'state Sm.rule list array;
}

let build_dispatch (rules : 'state Sm.rule list) : 'state dispatch =
  let classified =
    List.map (fun (r : 'state Sm.rule) -> (r, Pattern.root_shapes r.Sm.pattern)) rules
  in
  let admits_tag shapes tag =
    List.exists
      (function
        | Pattern.Root_any -> true
        | Pattern.Root_tag t -> t = tag
        | Pattern.Root_call _ -> false)
      shapes
  in
  let d_by_tag =
    Array.init Pattern.n_tags (fun tag ->
        List.filter_map
          (fun (r, shapes) -> if admits_tag shapes tag then Some r else None)
          classified)
  in
  let names = Hashtbl.create 8 in
  List.iter
    (fun (_, shapes) ->
      List.iter
        (function
          | Pattern.Root_call n -> Hashtbl.replace names n ()
          | Pattern.Root_tag _ | Pattern.Root_any -> ())
        shapes)
    classified;
  let d_by_name = Hashtbl.create (Hashtbl.length names) in
  let d_by_sym = Hashtbl.create (Hashtbl.length names) in
  Hashtbl.iter
    (fun n () ->
      let admits shapes =
        List.exists
          (function
            | Pattern.Root_any -> true
            | Pattern.Root_tag t -> t = Pattern.tag_call
            | Pattern.Root_call m -> String.equal m n)
          shapes
      in
      let bucket =
        List.filter_map
          (fun (r, shapes) -> if admits shapes then Some r else None)
          classified
      in
      Hashtbl.replace d_by_name n bucket;
      Hashtbl.replace d_by_sym (Symtab.intern n) bucket)
    names;
  { d_by_name; d_by_sym; d_by_tag }

let candidates (d : 'state dispatch) (e : Ast.expr) : 'state Sm.rule list =
  match e.Ast.edesc with
  | Ast.Call ({ Ast.edesc = Ast.Ident name; _ }, _) -> (
    match Hashtbl.find_opt d.d_by_name name with
    | Some rules -> rules
    | None -> d.d_by_tag.(Pattern.tag_call))
  | _ -> d.d_by_tag.(Pattern.tag_of_expr e)

(* ------------------------------------------------------------------ *)
(* Lazy witness steps                                                  *)
(* ------------------------------------------------------------------ *)

(* The traversal threads raw steps — matched expression and the states
   around the transition, unrendered.  [event_string]/[state_to_string]
   run only when a diagnostic is actually emitted (or the exit hook
   fires one), which is where [mcheck --explain] gets its witness. *)
type 'state raw_step = {
  r_loc : Loc.t;
  r_event : Ast.expr option;  (** [None] = the synthetic return event *)
  r_from : 'state;
  r_to : 'state option;  (** [None] = the path was stopped *)
}

let render_steps (state_str : 'state -> string)
    (steps : 'state raw_step list) : Diag.step list =
  (* [steps] is newest-first; the witness reads oldest-first *)
  List.rev_map
    (fun rs ->
      Diag.step ~loc:rs.r_loc
        ~event:
          (match rs.r_event with Some e -> event_string e | None -> "return")
        ~from_state:(state_str rs.r_from)
        ~to_state:
          (match rs.r_to with Some s -> state_str s | None -> "stop"))
    steps

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

(* Run one state machine over one prepared function.  [at_exit] is
   invoked once per distinct state in which a path reaches the function
   exit.  All counters are local; the optional [stats] ref is touched
   exactly once, at the end. *)
(* Default per-state dispatch: compiled on first encounter into a cache
   private to this call — this also hoists the [rules state @ all]
   allocation out of the event loop.  Compiled tables (see {!prebuild})
   pass their own provider instead, built once per machine rather than
   once per checked function. *)
let cached_dispatch_for (sm : 'state Sm.t) : 'state -> 'state dispatch =
  let dispatch_cache : ('state, 'state dispatch) Hashtbl.t =
    Hashtbl.create 16
  in
  fun state ->
    match Hashtbl.find_opt dispatch_cache state with
    | Some d -> d
    | None ->
      let d = build_dispatch (sm.Sm.rules state @ sm.Sm.all) in
      Hashtbl.add dispatch_cache state d;
      d

let check_prep_full ?(stats : stats ref option)
    ?(at_exit : 'state exit_hook option)
    ?(dispatch_for : ('state -> 'state dispatch) option) (sm : 'state Sm.t)
    (prep : Prep.t) : Diag.t list =
  let func = prep.Prep.func in
  match sm.Sm.start func with
  | None -> []
  | Some start_state ->
    let limiter = Domain.DLS.get limiter_key in
    let cfg = prep.Prep.cfg in
    let events =
      Prep.events prep ~observe_branches:sm.Sm.observe_branches
    in
    let nodes_visited = ref 0 in
    let events_matched = ref 0 in
    let paths_stopped = ref 0 in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let state_str = sm.Sm.state_to_string in
    (* sized from the CFG: most functions see a handful of states per
       node, so 4x nodes keeps the load factor low without rehashing *)
    let visited : (int * 'state, unit) Hashtbl.t =
      Hashtbl.create (max 16 (4 * Array.length cfg.Cfg.nodes))
    in
    let exit_states : ('state, unit) Hashtbl.t = Hashtbl.create 8 in
    let dispatch_for =
      match dispatch_for with
      | Some f -> f
      | None -> cached_dispatch_for sm
    in
    (* Process all events of node [id] starting from [state]; returns
       the resulting (state, dispatch, witness), or [None] when a rule
       stopped the path. *)
    let step (id : int) (state : 'state) (disp : 'state dispatch)
        (trace : Loc.t list) (steps : 'state raw_step list) :
        ('state * 'state dispatch * 'state raw_step list) option =
      let evs = events.(id) in
      let n = Array.length evs in
      let rec consume i state disp steps =
        if i >= n then Some (state, disp, steps)
        else begin
          let event = evs.(i) in
          let fired =
            List.find_map
              (fun (r : 'state Sm.rule) ->
                match Pattern.match_expr r.Sm.pattern event with
                | Some bindings -> Some (r, bindings)
                | None -> None)
              (candidates disp event)
          in
          match fired with
          | None -> consume (i + 1) state disp steps
          | Some (r, bindings) ->
            incr events_matched;
            (* buffer emissions during the action so the completed step
               (whose to-state is only known from the outcome) can be
               attached to them *)
            let pending = ref [] in
            let ctx =
              {
                Sm.func;
                matched = event;
                loc = event.Ast.eloc;
                bindings;
                trace = List.rev trace;
                emit = (fun d -> pending := d :: !pending);
              }
            in
            let outcome = r.Sm.action ctx in
            let r_to =
              match outcome with
              | Sm.Stay -> Some state
              | Sm.Goto next -> Some next
              | Sm.Stop -> None
            in
            let steps =
              { r_loc = event.Ast.eloc; r_event = Some event;
                r_from = state; r_to }
              :: steps
            in
            (match !pending with
            | [] -> ()
            | pending ->
              let witness = render_steps state_str steps in
              List.iter
                (fun d -> emit (Diag.with_witness witness d))
                (List.rev pending));
            (match outcome with
            | Sm.Stay -> consume (i + 1) state disp steps
            | Sm.Goto next -> consume (i + 1) next (dispatch_for next) steps
            | Sm.Stop ->
              incr paths_stopped;
              None)
        end
      in
      consume 0 state disp steps
    in
    let rec visit (id : int) (state : 'state) (disp : 'state dispatch)
        (trace : Loc.t list) (steps : 'state raw_step list) =
      (* single hash probe: [replace] adds iff the key is new, which the
         length reveals — the old [mem]-then-[replace] hashed twice *)
      let before = Hashtbl.length visited in
      Hashtbl.replace visited (id, state) ();
      if Hashtbl.length visited > before then begin
        incr nodes_visited;
        (match limiter with Some lim -> consume_fuel lim | None -> ());
        let node = Cfg.node cfg id in
        let trace = node.Cfg.loc :: trace in
        match step id state disp trace steps with
        | None -> ()
        | Some (state, disp, steps) ->
          if id = cfg.Cfg.exit then begin
            if not (Hashtbl.mem exit_states state) then begin
              Hashtbl.replace exit_states state ();
              match at_exit with
              | Some hook ->
                (* diagnostics from the exit hook witness the whole path
                   plus a synthetic return step *)
                let ret_step =
                  { r_loc = node.Cfg.loc; r_event = None; r_from = state;
                    r_to = Some state }
                in
                let witness = render_steps state_str (ret_step :: steps) in
                let ctx =
                  {
                    Sm.func;
                    matched = Ast.ident "return";
                    loc = node.Cfg.loc;
                    bindings = Binding.empty;
                    trace = List.rev trace;
                    emit = (fun d -> emit (Diag.with_witness witness d));
                  }
                in
                hook ctx state
              | None -> ()
            end
          end
          else
            List.iter
              (fun (label, succ) ->
                let state' =
                  match (sm.Sm.branch, node.Cfg.kind, label) with
                  | Some refine, Cfg.Branch cond, Cfg.True ->
                    refine state cond true
                  | Some refine, Cfg.Branch cond, Cfg.False ->
                    refine state cond false
                  | _ -> state
                in
                let disp' =
                  if state' == state then disp else dispatch_for state'
                in
                visit succ state' disp' trace steps)
              node.Cfg.succs
      end
    in
    let traverse () =
      visit cfg.Cfg.entry start_state (dispatch_for start_state) [] [];
      (match stats with
      | Some r ->
        r :=
          stats_add !r
            {
              nodes_visited = !nodes_visited;
              events_matched = !events_matched;
              paths_stopped = !paths_stopped;
            }
      | None -> ());
      Mcobs.count ~by:!nodes_visited "engine.nodes_visited";
      Mcobs.count ~by:!events_matched "engine.events_matched";
      Mcobs.count ~by:!paths_stopped "engine.paths_stopped";
      Mcobs.count ~by:(Hashtbl.length exit_states) "engine.exit_states";
      Diag.normalize !diags
    in
    if Mcobs.enabled () then
      Mcobs.with_span "engine.check_fn"
        ~args:
          [
            ("checker", sm.Sm.name);
            ("func", func.Ast.f_name);
            ("cfg_nodes", string_of_int (Array.length cfg.Cfg.nodes));
            ("cfg_edges", string_of_int prep.Prep.n_edges);
          ]
        traverse
    else traverse ()

(* ------------------------------------------------------------------ *)
(* The degraded (flow-insensitive) traversal                           *)
(* ------------------------------------------------------------------ *)

(* One pass over the nodes in id (roughly source) order, threading a
   single machine state; branches are not explored and [branch]
   refinement is skipped.  Linear in event count, hence total — the
   fallback when the path-sensitive traversal crashed or blew its
   budget.  Diagnostics it emits are real (every event it matches is in
   the function), it can only miss path-dependent ones. *)
let check_prep_flat ?(stats : stats ref option)
    ?(at_exit : 'state exit_hook option)
    ?(dispatch_for : ('state -> 'state dispatch) option) (sm : 'state Sm.t)
    (prep : Prep.t) : Diag.t list =
  let func = prep.Prep.func in
  match sm.Sm.start func with
  | None -> []
  | Some start_state ->
    let cfg = prep.Prep.cfg in
    let events =
      Prep.events prep ~observe_branches:sm.Sm.observe_branches
    in
    let nodes_visited = ref 0 in
    let events_matched = ref 0 in
    let paths_stopped = ref 0 in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let state_str = sm.Sm.state_to_string in
    let dispatch_for =
      match dispatch_for with
      | Some f -> f
      | None -> cached_dispatch_for sm
    in
    let state = ref start_state in
    let disp = ref (dispatch_for start_state) in
    let steps = ref ([] : 'state raw_step list) in
    let stopped = ref false in
    let n_nodes = Array.length cfg.Cfg.nodes in
    (try
       for id = 0 to n_nodes - 1 do
         incr nodes_visited;
         let evs = events.(id) in
         for i = 0 to Array.length evs - 1 do
           let event = evs.(i) in
           let fired =
             List.find_map
               (fun (r : 'state Sm.rule) ->
                 match Pattern.match_expr r.Sm.pattern event with
                 | Some bindings -> Some (r, bindings)
                 | None -> None)
               (candidates !disp event)
           in
           match fired with
           | None -> ()
           | Some (r, bindings) ->
             incr events_matched;
             let pending = ref [] in
             let ctx =
               {
                 Sm.func;
                 matched = event;
                 loc = event.Ast.eloc;
                 bindings;
                 trace = [];
                 emit = (fun d -> pending := d :: !pending);
               }
             in
             let outcome = r.Sm.action ctx in
             let r_to =
               match outcome with
               | Sm.Stay -> Some !state
               | Sm.Goto next -> Some next
               | Sm.Stop -> None
             in
             steps :=
               { r_loc = event.Ast.eloc; r_event = Some event;
                 r_from = !state; r_to }
               :: !steps;
             (match !pending with
             | [] -> ()
             | pending ->
               let witness = render_steps state_str !steps in
               List.iter
                 (fun d -> emit (Diag.with_witness witness d))
                 (List.rev pending));
             (match outcome with
             | Sm.Stay -> ()
             | Sm.Goto next ->
               state := next;
               disp := dispatch_for next
             | Sm.Stop ->
               incr paths_stopped;
               stopped := true;
               raise Exit)
         done
       done
     with Exit -> ());
    (if not !stopped then
       match at_exit with
       | Some hook ->
         let exit_loc = (Cfg.node cfg cfg.Cfg.exit).Cfg.loc in
         let ret_step =
           { r_loc = exit_loc; r_event = None; r_from = !state;
             r_to = Some !state }
         in
         let witness = render_steps state_str (ret_step :: !steps) in
         let ctx =
           {
             Sm.func;
             matched = Ast.ident "return";
             loc = exit_loc;
             bindings = Binding.empty;
             trace = [];
             emit = (fun d -> emit (Diag.with_witness witness d));
           }
         in
         hook ctx !state
       | None -> ());
    (match stats with
    | Some r ->
      r :=
        stats_add !r
          {
            nodes_visited = !nodes_visited;
            events_matched = !events_matched;
            paths_stopped = !paths_stopped;
          }
    | None -> ());
    Mcobs.count "engine.degraded_runs";
    Diag.normalize !diags

(** Run one machine over one prepared function.  Honours the domain's
    containment context: raises {!Injected_fault} if the test hook
    matches, runs flow-insensitively inside {!with_degraded}, and
    raises {!Budget_exhausted} when a {!with_budget} limit runs out. *)
let check_prep ?stats ?at_exit (sm : 'state Sm.t) (prep : Prep.t) :
    Diag.t list =
  check_fault_hook ~checker:sm.Sm.name ~func:prep.Prep.func.Ast.f_name;
  if Domain.DLS.get degraded_key then check_prep_flat ?stats ?at_exit sm prep
  else check_prep_full ?stats ?at_exit sm prep

(* ------------------------------------------------------------------ *)
(* Prebuilt dispatch tables                                            *)
(* ------------------------------------------------------------------ *)

(* A machine over dense integer states with every state's dispatch index
   compiled up front — once per machine, not once per checked function.
   This is what the metal compiler's transition tables plug into: same
   traversal, same containment context, but the per-function
   [dispatch_cache] hashing is replaced by an array load. *)
type table = { t_sm : int Sm.t; t_dispatch : int dispatch array }

let prebuild ~(n_states : int) (sm : int Sm.t) : table =
  {
    t_sm = sm;
    t_dispatch =
      Array.init n_states (fun s -> build_dispatch (sm.Sm.rules s @ sm.Sm.all));
  }

let table_sm (t : table) : int Sm.t = t.t_sm

(** [check_prep] for a prebuilt table — honours the same fault hook,
    degraded mode, and budget as the generic path. *)
let check_prep_table ?stats ?at_exit (t : table) (prep : Prep.t) :
    Diag.t list =
  check_fault_hook ~checker:t.t_sm.Sm.name ~func:prep.Prep.func.Ast.f_name;
  let dispatch_for s = t.t_dispatch.(s) in
  if Domain.DLS.get degraded_key then
    check_prep_flat ?stats ?at_exit ~dispatch_for t.t_sm prep
  else check_prep_full ?stats ?at_exit ~dispatch_for t.t_sm prep

(* ------------------------------------------------------------------ *)
(* Generic reindexing: a finite machine lowered onto dense int states   *)
(* ------------------------------------------------------------------ *)

(** Lower a machine whose reachable states are exactly the entries of
    [states] onto dense integer states — the transition-table shape the
    metal compiler emits — so it can be {!prebuild}-compiled once per
    machine.  Actions are wrapped to translate their outcomes;
    [action_ctx] is state-independent, so behaviour is unchanged. *)
let reindex (states : 'state array) (sm : 'state Sm.t) : int Sm.t =
  let n = Array.length states in
  let id_of (s : 'state) : int =
    let rec go i =
      if i >= n then
        invalid_arg
          (Printf.sprintf "Engine.reindex: %s reached a state outside its \
                           declared set"
             sm.Sm.name)
      else if states.(i) = s then i
      else go (i + 1)
    in
    go 0
  in
  let wrap (r : 'state Sm.rule) : int Sm.rule =
    {
      Sm.pattern = r.Sm.pattern;
      action =
        (fun ctx ->
          match r.Sm.action ctx with
          | Sm.Stay -> Sm.Stay
          | Sm.Goto s -> Sm.Goto (id_of s)
          | Sm.Stop -> Sm.Stop);
    }
  in
  Sm.make ~name:sm.Sm.name
    ~start:(fun f -> Option.map id_of (sm.Sm.start f))
    ~rules:(fun i -> List.map wrap (sm.Sm.rules states.(i)))
    ~all:(List.map wrap sm.Sm.all)
    ~observe_branches:sm.Sm.observe_branches
    ?branch:
      (Option.map
         (fun refine i cond dir -> id_of (refine states.(i) cond dir))
         sm.Sm.branch)
    ~state_to_string:(fun i -> sm.Sm.state_to_string states.(i))
    ()

(* ------------------------------------------------------------------ *)
(* The product scan: one walk per function, all machines               *)
(* ------------------------------------------------------------------ *)

(** Is any containment context armed on this domain?  Product drivers
    delegate to the per-checker path when it is, so budgets, degraded
    mode, and fault injection keep their exact per-checker semantics. *)
let containment_active () =
  Domain.DLS.get degraded_key
  || Option.is_some (Domain.DLS.get limiter_key)
  || Option.is_some !fault_hook

(** A machine packed for the product scan, its state type hidden. *)
type pmachine =
  | Pmachine : {
      p_sm : 'state Sm.t;
      p_at_exit : 'state exit_hook option;
      p_dispatch : ('state -> 'state dispatch) option;
    }
      -> pmachine

let pack ?at_exit (sm : 'state Sm.t) : pmachine =
  Pmachine { p_sm = sm; p_at_exit = at_exit; p_dispatch = None }

let pack_table ?at_exit (t : table) : pmachine =
  Pmachine
    {
      p_sm = t.t_sm;
      p_at_exit = at_exit;
      p_dispatch = Some (fun s -> t.t_dispatch.(s));
    }

exception Product_overflow
(** the product vector space of this function blew the scan's visit cap;
    callers fall back to per-checker traversals *)

(* Sentinel for a machine with no live state on this path: inactive on
   the function, stopped by a rule, or already known dirty. *)
let p_stopped = -1

(* The per-machine runtime: monomorphic closures over dense dynamic
   state ids, so the scan's driver never sees the state type.

   The scan detects, it does not report: it walks the product automaton
   once and flags each machine that could emit a diagnostic (from a rule
   action or its exit hook).  A clean machine's per-checker result is []
   by construction; a dirty machine re-runs through the ordinary
   traversal, whose output — witnesses included — is the per-checker
   path's, byte for byte.

   Why detection is exact: per-checker, emissions fire exactly at fresh
   [(node, state)] configurations of that machine's DFS visited set
   (plus fresh exit states).  The product DFS reaches every reachable
   product vector, and the projection of those vectors onto machine [i]
   is machine [i]'s full reachable configuration set — each per-machine
   path is the projection of a product path.  The per-machine memo runs
   actions exactly once per fresh configuration, so the scan fires a
   superset-of-nothing and misses nothing: dirty here iff ≥1 diagnostic
   there.  Once a machine is dirty its evolution no longer matters; it
   collapses to [p_stopped], which only merges product vectors (more
   pruning for the others, never less coverage — the remaining product
   still reaches every sub-vector). *)
type pinst = {
  i_start : int option;
  i_observe : bool;
  i_has_branch : bool;
  i_step : int -> int -> int;  (** node -> state id -> out id / stopped *)
  i_refine : int -> Ast.expr -> bool -> int;
  i_record_exit : int -> unit;
  i_finish : unit -> unit;  (** replay the exit hook over exit states *)
  i_dirty : unit -> bool;
}

let inactive_inst : pinst =
  {
    i_start = None;
    i_observe = true;
    i_has_branch = false;
    i_step = (fun _ s -> s);
    i_refine = (fun s _ _ -> s);
    i_record_exit = ignore;
    i_finish = ignore;
    i_dirty = (fun () -> false);
  }

let make_inst (prep : Prep.t) (pm : pmachine) : pinst =
  match pm with
  | Pmachine { p_sm = sm; p_at_exit; p_dispatch } -> (
    let func = prep.Prep.func in
    match sm.Sm.start func with
    | None -> inactive_inst
    | Some start_state ->
      let soa = prep.Prep.soa in
      let cfg = prep.Prep.cfg in
      let n_nodes = Array.length cfg.Cfg.nodes in
      let dirty = ref false in
      let emit _ = dirty := true in
      let dispatch_for =
        match p_dispatch with
        | Some f -> f
        | None -> cached_dispatch_for sm
      in
      (* dynamic state interning: dense ids under structural equality —
         the same equality the per-checker visited set uses *)
      let states = ref (Array.make 8 start_state) in
      let ids = Hashtbl.create 8 in
      let n_states = ref 0 in
      let id_of s =
        match Hashtbl.find_opt ids s with
        | Some id -> id
        | None ->
          let id = !n_states in
          if id >= Array.length !states then begin
            let bigger = Array.make (2 * Array.length !states) s in
            Array.blit !states 0 bigger 0 (Array.length !states);
            states := bigger
          end;
          !states.(id) <- s;
          Hashtbl.add ids s id;
          incr n_states;
          id
      in
      let start_id = id_of start_state in
      (* whole-node step memo: state-in -> state-out per node, actions
         run exactly once per fresh (node, state-in) configuration *)
      let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let observe = sm.Sm.observe_branches in
      let step node s_id =
        let key = (s_id * n_nodes) + node in
        match Hashtbl.find_opt memo key with
        | Some out -> out
        | None ->
          let off = soa.Prep.node_off.(node) in
          let stop_at = off + soa.Prep.node_len.(node) in
          let rec consume j state disp =
            if j >= stop_at then id_of state
            else if
              (not observe)
              && soa.Prep.ev_flags.(j) land Prep.soa_hidden_bit <> 0
            then consume (j + 1) state disp
            else begin
              (* int screening over the SoA columns before any pattern
                 or expression is touched *)
              let cls = soa.Prep.ev_class.(j) in
              let rules =
                if cls = Pattern.tag_call then begin
                  let callee = soa.Prep.ev_callee.(j) in
                  if callee >= 0 then
                    match Hashtbl.find_opt disp.d_by_sym callee with
                    | Some rs -> rs
                    | None -> disp.d_by_tag.(Pattern.tag_call)
                  else disp.d_by_tag.(Pattern.tag_call)
                end
                else disp.d_by_tag.(cls)
              in
              match rules with
              | [] -> consume (j + 1) state disp
              | rules -> (
                let event = soa.Prep.ev_expr.(j) in
                let fired =
                  List.find_map
                    (fun (r : _ Sm.rule) ->
                      match Pattern.match_expr r.Sm.pattern event with
                      | Some bindings -> Some (r, bindings)
                      | None -> None)
                    rules
                in
                match fired with
                | None -> consume (j + 1) state disp
                | Some (r, bindings) ->
                  let ctx =
                    {
                      Sm.func;
                      matched = event;
                      loc = event.Ast.eloc;
                      bindings;
                      trace = [];
                      emit;
                    }
                  in
                  (match r.Sm.action ctx with
                  | Sm.Stay -> consume (j + 1) state disp
                  | Sm.Goto next -> consume (j + 1) next (dispatch_for next)
                  | Sm.Stop -> p_stopped))
            end
          in
          let state = !states.(s_id) in
          let out = consume off state (dispatch_for state) in
          Hashtbl.add memo key out;
          out
      in
      let refine =
        match sm.Sm.branch with
        | None -> fun s _ _ -> s
        | Some f -> fun s_id cond dir -> id_of (f !states.(s_id) cond dir)
      in
      let exit_seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let finish () =
        match p_at_exit with
        | Some hook when not !dirty ->
          let exit_loc = (Cfg.node cfg cfg.Cfg.exit).Cfg.loc in
          Hashtbl.iter
            (fun s_id () ->
              let ctx =
                {
                  Sm.func;
                  matched = Ast.ident "return";
                  loc = exit_loc;
                  bindings = Binding.empty;
                  trace = [];
                  emit;
                }
              in
              hook ctx !states.(s_id))
            exit_seen
        | _ -> ()
      in
      {
        i_start = Some start_id;
        i_observe = observe;
        i_has_branch = Option.is_some sm.Sm.branch;
        i_step = step;
        i_refine = refine;
        i_record_exit = (fun s_id -> Hashtbl.replace exit_seen s_id ());
        i_finish = finish;
        i_dirty = (fun () -> !dirty);
      })

exception Pack_overflow
(* internal to [product_scan]: a dynamic machine outgrew the 8-bit
   state field of the packed visited key; the scan restarts with
   structural keys *)

(* Open-addressing set of non-negative ints, linear probing, zero
   allocation per insert: the packed-key fast path of [product_scan]
   tests ~80k configurations per corpus run, and a generic [Hashtbl]
   would allocate a bucket (and hash a key array) for each. *)
module Iset = struct
  type t = { mutable slots : int array; mutable mask : int; mutable n : int }

  (* slots hold key+1, 0 means empty *)
  let create () = { slots = Array.make 512 0; mask = 511; n = 0 }

  let mix k = (k * 0x9E3779B1) lxor (k lsr 24)

  (* probe for [v] (non-zero); insert if absent; true when fresh *)
  let rec insert slots mask h v =
    let s = slots.(h) in
    if s = 0 then begin
      slots.(h) <- v;
      true
    end
    else if s = v then false
    else insert slots mask ((h + 1) land mask) v

  let grow t =
    let old = t.slots in
    let size = 2 * Array.length old in
    t.slots <- Array.make size 0;
    t.mask <- size - 1;
    Array.iter
      (fun v ->
        if v <> 0 then ignore (insert t.slots t.mask (mix v land t.mask) v))
      old

  let add t key =
    let v = key + 1 in
    let fresh = insert t.slots t.mask (mix v land t.mask) v in
    if fresh then begin
      t.n <- t.n + 1;
      (* keep load under 1/2 *)
      if 2 * t.n > t.mask then grow t
    end;
    fresh
end

(** One fused walk of the product automaton over a prepared function.
    Returns a per-machine flag: [false] means the machine provably emits
    nothing on this function (its per-checker result is []); [true]
    means it may emit and must re-run through {!check_prep}.

    Honours an installed budget ({!Budget_exhausted} propagates).
    @raise Product_overflow when the function's product vector space
    exceeds the visit cap — callers fall back per checker. *)
let product_scan (prep : Prep.t) (machines : pmachine array) : bool array =
  let m = Array.length machines in
  let cfg = prep.Prep.cfg in
  let n_nodes = Array.length cfg.Cfg.nodes in
  (* Visited-set representation.  Packed mode folds (node, vector) into
     one tagged int — 14 bits of node, 8 bits per machine state — and
     dedups through the allocation-free [Iset]; it covers every real
     function (6 machines, <16k nodes, <255 live states per machine).
     The structural-key path remains both as the fallback when packing
     overflows mid-scan and as the shape for degenerate inputs. *)
  let packed_ok = m <= 6 && n_nodes <= 0x3FFF in
  let run ~packed =
  let insts = Array.map (make_inst prep) machines in
  if not (Array.exists (fun i -> Option.is_some i.i_start) insts) then
    Array.make m false
  else begin
    let limiter = Domain.DLS.get limiter_key in
    let iset = Iset.create () in
    let visited : (int array, unit) Hashtbl.t =
      if packed then Hashtbl.create 1
      else Hashtbl.create (max 16 (4 * n_nodes))
    in
    let fresh_visit node (vec : int array) =
      if packed then begin
        let key = ref node in
        for i = 0 to m - 1 do
          let s = vec.(i) + 1 in
          if s > 0xFF then raise Pack_overflow;
          key := !key lor (s lsl (14 + (8 * i)))
        done;
        Iset.add iset !key
      end
      else begin
        let key = Array.make (m + 1) node in
        Array.blit vec 0 key 1 m;
        let before = Hashtbl.length visited in
        Hashtbl.replace visited key ();
        Hashtbl.length visited > before
      end
    in
    let visits = ref 0 in
    (* generous: clean protocol code sees a handful of distinct vectors
       per node; a function that blows this is cheaper per checker *)
    let cap = 256 * (n_nodes + 4) in
    let rec visit node (vec : int array) =
      if fresh_visit node vec then begin
        incr visits;
        if !visits > cap then raise Product_overflow;
        (match limiter with Some lim -> consume_fuel lim | None -> ());
        let out = Array.make m p_stopped in
        for i = 0 to m - 1 do
          let inst = insts.(i) in
          if vec.(i) >= 0 && not (inst.i_dirty ()) then
            out.(i) <- inst.i_step node vec.(i)
        done;
        let node_r = Cfg.node cfg node in
        if node = cfg.Cfg.exit then
          for i = 0 to m - 1 do
            if out.(i) >= 0 && not (insts.(i).i_dirty ()) then
              insts.(i).i_record_exit out.(i)
          done
        else
          List.iter
            (fun (label, succ) ->
              let vec' =
                match (node_r.Cfg.kind, label) with
                | Cfg.Branch cond, (Cfg.True | Cfg.False) ->
                  let dir = label = Cfg.True in
                  let refined = ref out in
                  for i = 0 to m - 1 do
                    if out.(i) >= 0 && insts.(i).i_has_branch then begin
                      let s' = insts.(i).i_refine out.(i) cond dir in
                      if s' <> out.(i) then begin
                        if !refined == out then refined := Array.copy out;
                        !refined.(i) <- s'
                      end
                    end
                  done;
                  !refined
                | _ -> out
              in
              visit succ vec')
            node_r.Cfg.succs
      end
    in
    let entry_vec =
      Array.map
        (fun i -> match i.i_start with Some s -> s | None -> p_stopped)
        insts
    in
    visit cfg.Cfg.entry entry_vec;
    Array.iter (fun i -> i.i_finish ()) insts;
    Mcobs.count "engine.product_scans";
    Mcobs.count ~by:!visits "engine.product_nodes_visited";
    Array.map (fun i -> i.i_dirty ()) insts
  end
  in
  if packed_ok then
    try run ~packed:true
    with Pack_overflow ->
      Mcobs.count "engine.product_pack_fallbacks";
      run ~packed:false
  else run ~packed:false

let check_func ?stats ?at_exit (sm : 'state Sm.t) (func : Ast.func) :
    Diag.t list =
  check_prep ?stats ?at_exit sm (Prep.build func)

type target =
  [ `Func of Ast.func | `Unit of Ast.tunit | `Program of Ast.tunit list ]

(** The single entry point: check a function, a translation unit, or a
    whole program. *)
let check ?stats ?at_exit (sm : 'state Sm.t) (target : target) : Diag.t list
    =
  match target with
  | `Func f -> check_func ?stats ?at_exit sm f
  | `Unit tu ->
    List.concat_map
      (fun f -> check_func ?stats ?at_exit sm f)
      (Ast.functions tu)
  | `Program tus ->
    List.concat_map
      (fun tu ->
        List.concat_map
          (fun f -> check_func ?stats ?at_exit sm f)
          (Ast.functions tu))
      tus

(* Deprecated aliases for the old three-entry-point API. *)

let run ?stats ?at_exit sm func = check ?stats ?at_exit sm (`Func func)
let run_unit ?stats ?at_exit sm tu = check ?stats ?at_exit sm (`Unit tu)

let run_program ?stats ?at_exit sm tus =
  check ?stats ?at_exit sm (`Program tus)
