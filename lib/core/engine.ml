(** The path-sensitive checking engine — the xg++ analogue.

    [check sm (`Func f)] applies the state machine [sm] down every
    execution path of [f]'s control-flow graph.  Traversal is
    depth-first; a [(node, state)] pair already visited is not
    re-explored, which keeps the engine linear in (nodes x distinct
    states) while still distinguishing every state the machine can be in
    at every program point — the same trick xg++ used to make exhaustive
    path checking tractable in the presence of loops.

    Within a node, sub-expressions are offered to the rules in evaluation
    order, so a pattern for [FREE_BUF()] fires before the pattern for the
    enclosing send in [NI_SEND(FREE_BUF(), ...)].

    The one entry point is {!check} over a {!target} variant; the old
    [run]/[run_unit]/[run_program] triple survives as thin aliases.
    Statistics are immutable snapshots accumulated into a caller-supplied
    [stats ref]: the engine itself only touches domain-local counters, so
    concurrent checks from several domains are race-free as long as each
    domain passes its own ref (merge the per-domain records with
    {!stats_add} at join — that is what [Mcd] does). *)

type stats = {
  nodes_visited : int;
  events_matched : int;
  paths_stopped : int;
}

let stats_zero = { nodes_visited = 0; events_matched = 0; paths_stopped = 0 }

let stats_add a b =
  {
    nodes_visited = a.nodes_visited + b.nodes_visited;
    events_matched = a.events_matched + b.events_matched;
    paths_stopped = a.paths_stopped + b.paths_stopped;
  }

let fresh_stats () = ref stats_zero

(* Sub-expressions of [e] in evaluation (post-) order, including [e]. *)
let subexprs_post (e : Ast.expr) : Ast.expr list =
  let acc = ref [] in
  let rec post e =
    (match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Ident _ | Ast.Sizeof_type _ ->
      ()
    | Ast.Call (f, args) ->
      post f;
      List.iter post args
    | Ast.Unop (_, a)
    | Ast.Cast (_, a)
    | Ast.Field (a, _)
    | Ast.Arrow (a, _)
    | Ast.Sizeof_expr a ->
      post a
    | Ast.Binop (_, a, b)
    | Ast.Assign (a, b)
    | Ast.Op_assign (_, a, b)
    | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      post a;
      post b
    | Ast.Cond (a, b, c) ->
      post a;
      post b;
      post c);
    acc := e :: !acc
  in
  post e;
  List.rev !acc

(* The expressions a CFG node exposes to the state machine. *)
let node_exprs ~observe_branches (node : Cfg.node) : Ast.expr list =
  match node.Cfg.kind with
  | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ } -> [ e ]
  | Cfg.Stmt { Ast.sdesc = Ast.Sdecl d; _ } -> (
    match d.Ast.v_init with Some e -> [ e ] | None -> [])
  | Cfg.Branch e | Cfg.Switch e -> if observe_branches then [ e ] else []
  | Cfg.Return (Some e) -> [ e ]
  | Cfg.Stmt _ | Cfg.Return None | Cfg.Entry | Cfg.Exit | Cfg.Join -> []

type 'state exit_hook = Sm.action_ctx -> 'state -> unit

(* A compact source rendering of the matched event for witness steps. *)
let event_string (e : Ast.expr) : string =
  let s = Pp.expr_to_string e in
  let s =
    String.map (function '\n' | '\t' -> ' ' | c -> c) s
  in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

(* Run one state machine over one function.  [at_exit] is invoked once per
   distinct state in which a path reaches the function exit.  All counters
   are local; the optional [stats] ref is touched exactly once, at the
   end.

   Alongside the state, the traversal threads the *witness* — the
   (location, matched event, state transition) steps fired so far on this
   path, newest first.  Every diagnostic an action emits gets the witness
   up to and including the step being fired, which is what
   [mcheck --explain] prints. *)
let check_func ?(stats : stats ref option) ?(at_exit : 'state exit_hook option)
    (sm : 'state Sm.t) (func : Ast.func) : Diag.t list =
  match sm.Sm.start func with
  | None -> []
  | Some start_state ->
    let cfg = Cfg.build func in
    let nodes_visited = ref 0 in
    let events_matched = ref 0 in
    let paths_stopped = ref 0 in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    let state_str = sm.Sm.state_to_string in
    let visited : (int * 'state, unit) Hashtbl.t = Hashtbl.create 256 in
    let exit_states : ('state, unit) Hashtbl.t = Hashtbl.create 8 in
    (* Process all events of [node] starting from [state]; returns the
       resulting state and extended witness, or [None] when a rule
       stopped the path. *)
    let step (node : Cfg.node) (state : 'state) (trace : Loc.t list)
        (steps : Diag.step list) : ('state * Diag.step list) option =
      let exprs = node_exprs ~observe_branches:sm.Sm.observe_branches node in
      let events = List.concat_map subexprs_post exprs in
      let rec consume state steps = function
        | [] -> Some (state, steps)
        | event :: rest -> (
          let rules = sm.Sm.rules state @ sm.Sm.all in
          let fired =
            List.find_map
              (fun (r : 'state Sm.rule) ->
                match Pattern.match_expr r.Sm.pattern event with
                | Some bindings -> Some (r, bindings)
                | None -> None)
              rules
          in
          match fired with
          | None -> consume state steps rest
          | Some (r, bindings) ->
            incr events_matched;
            (* buffer emissions during the action so the completed step
               (whose to-state is only known from the outcome) can be
               attached to them *)
            let pending = ref [] in
            let ctx =
              {
                Sm.func;
                matched = event;
                loc = event.Ast.eloc;
                bindings;
                trace = List.rev trace;
                emit = (fun d -> pending := d :: !pending);
              }
            in
            let outcome = r.Sm.action ctx in
            let to_state =
              match outcome with
              | Sm.Stay -> state_str state
              | Sm.Goto next -> state_str next
              | Sm.Stop -> "stop"
            in
            let fired_step =
              Diag.step ~loc:event.Ast.eloc ~event:(event_string event)
                ~from_state:(state_str state) ~to_state
            in
            let steps = fired_step :: steps in
            let witness = List.rev steps in
            List.iter
              (fun d -> emit (Diag.with_witness witness d))
              (List.rev !pending);
            (match outcome with
            | Sm.Stay -> consume state steps rest
            | Sm.Goto next -> consume next steps rest
            | Sm.Stop ->
              incr paths_stopped;
              None))
      in
      consume state steps events
    in
    let rec visit (id : int) (state : 'state) (trace : Loc.t list)
        (steps : Diag.step list) =
      if not (Hashtbl.mem visited (id, state)) then begin
        Hashtbl.replace visited (id, state) ();
        incr nodes_visited;
        let node = Cfg.node cfg id in
        let trace = node.Cfg.loc :: trace in
        match step node state trace steps with
        | None -> ()
        | Some (state, steps) ->
          if id = cfg.Cfg.exit then begin
            if not (Hashtbl.mem exit_states state) then begin
              Hashtbl.replace exit_states state ();
              match at_exit with
              | Some hook ->
                (* diagnostics from the exit hook witness the whole path
                   plus a synthetic return step *)
                let ret_step =
                  Diag.step ~loc:node.Cfg.loc ~event:"return"
                    ~from_state:(state_str state)
                    ~to_state:(state_str state)
                in
                let witness = List.rev (ret_step :: steps) in
                let ctx =
                  {
                    Sm.func;
                    matched = Ast.ident "return";
                    loc = node.Cfg.loc;
                    bindings = Binding.empty;
                    trace = List.rev trace;
                    emit = (fun d -> emit (Diag.with_witness witness d));
                  }
                in
                hook ctx state
              | None -> ()
            end
          end
          else
            List.iter
              (fun (label, succ) ->
                let state =
                  match (sm.Sm.branch, node.Cfg.kind, label) with
                  | Some refine, Cfg.Branch cond, Cfg.True ->
                    refine state cond true
                  | Some refine, Cfg.Branch cond, Cfg.False ->
                    refine state cond false
                  | _ -> state
                in
                visit succ state trace steps)
              node.Cfg.succs
      end
    in
    let traverse () =
      visit cfg.Cfg.entry start_state [] [];
      (match stats with
      | Some r ->
        r :=
          stats_add !r
            {
              nodes_visited = !nodes_visited;
              events_matched = !events_matched;
              paths_stopped = !paths_stopped;
            }
      | None -> ());
      Mcobs.count ~by:!nodes_visited "engine.nodes_visited";
      Mcobs.count ~by:!events_matched "engine.events_matched";
      Mcobs.count ~by:!paths_stopped "engine.paths_stopped";
      Mcobs.count ~by:(Hashtbl.length exit_states) "engine.exit_states";
      Diag.normalize !diags
    in
    if Mcobs.enabled () then
      let edges =
        Array.fold_left
          (fun acc (n : Cfg.node) -> acc + List.length n.Cfg.succs)
          0 cfg.Cfg.nodes
      in
      Mcobs.with_span "engine.check_fn"
        ~args:
          [
            ("checker", sm.Sm.name);
            ("func", func.Ast.f_name);
            ("cfg_nodes", string_of_int (Array.length cfg.Cfg.nodes));
            ("cfg_edges", string_of_int edges);
          ]
        traverse
    else traverse ()

type target =
  [ `Func of Ast.func | `Unit of Ast.tunit | `Program of Ast.tunit list ]

(** The single entry point: check a function, a translation unit, or a
    whole program. *)
let check ?stats ?at_exit (sm : 'state Sm.t) (target : target) : Diag.t list
    =
  match target with
  | `Func f -> check_func ?stats ?at_exit sm f
  | `Unit tu ->
    List.concat_map
      (fun f -> check_func ?stats ?at_exit sm f)
      (Ast.functions tu)
  | `Program tus ->
    List.concat_map
      (fun tu ->
        List.concat_map
          (fun f -> check_func ?stats ?at_exit sm f)
          (Ast.functions tu))
      tus

(* Deprecated aliases for the old three-entry-point API. *)

let run ?stats ?at_exit sm func = check ?stats ?at_exit sm (`Func func)
let run_unit ?stats ?at_exit sm tu = check ?stats ?at_exit sm (`Unit tu)

let run_program ?stats ?at_exit sm tus =
  check ?stats ?at_exit sm (`Program tus)
