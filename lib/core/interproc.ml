(** Inter-procedural analysis framework — the xg++ global-analysis analogue.

    The paper's flow is: a local pass walks each function and annotates
    events (e.g. "this call site sends on lane 2"), emitting per-function
    flow graphs; a global pass links the graphs through call edges and does
    a depth-first traversal computing a path property (e.g. maximum sends
    per lane), with fixed-point detection for cycles that do not change the
    abstract state.

    Here the client supplies an abstract domain [S] (a bounded join
    semilattice with a sequencing operator) and an event function mapping
    each CFG node of each function to an effect.  [summarize] computes, per
    function, the join over all paths of the sequential composition of
    effects, where call sites splice in the callee's summary.  Cycles in
    the call graph are cut exactly as the paper describes: a recursive
    call whose effect so far is the identity is a fixed point and
    contributes nothing; otherwise [on_cycle] is told about the potential
    unbounded repetition. *)

module type DOMAIN = sig
  type t

  val zero : t
  (** identity for {!seq} — "no effect" *)

  val seq : t -> t -> t
  (** sequential composition along a path *)

  val join : t -> t -> t
  (** least upper bound across alternative paths *)

  val equal : t -> t -> bool

  val loop_safe : t -> bool
  (** is repeating this effect a fixed point? (the paper's "cycles that do
      not send" rule; e.g. for the lanes domain, a loop body whose net
      effect does not grow the send count) *)

  val pp : Format.formatter -> t -> unit
end

(** A traced effect: the domain value plus the event sites that produced
    it, so clients can print the paper's inter-procedural "back traces". *)
module type CLIENT = sig
  module D : DOMAIN

  val event : Ast.func -> Cfg.node -> D.t
  (** local effect of one CFG node (identity for most nodes) *)
end

module Make (C : CLIENT) = struct
  module D = C.D

  type site = { site_func : string; site_loc : Loc.t; site_effect : D.t }

  (** A summary is the worst-case effect plus the witness path achieving
      it (for diagnostics). *)
  type summary = { effect_ : D.t; witness : site list }

  let zero_summary = { effect_ = D.zero; witness = [] }

  let seq_summary a b =
    { effect_ = D.seq a.effect_ b.effect_; witness = a.witness @ b.witness }

  (* join keeps the witness of whichever side "wins"; when the two sides
     are equal the first is kept, making results deterministic *)
  let join_summary a b =
    let joined = D.join a.effect_ b.effect_ in
    if D.equal joined a.effect_ then { effect_ = joined; witness = a.witness }
    else if D.equal joined b.effect_ then
      { effect_ = joined; witness = b.witness }
    else { effect_ = joined; witness = a.witness @ b.witness }

  type ctx = {
    callgraph : Callgraph.t;
    mutable summaries : (string * summary) list;
    mutable in_progress : string list;  (** call stack for cycle detection *)
    mutable cycle_warnings : (string * Loc.t) list;
        (** function, call-site loc of a recursive cycle *)
    mutable loop_warnings : (string * Loc.t) list;
        (** function, loop-head loc of an intra-procedural loop whose body
            has a non-identity effect (not a fixed point) *)
  }

  let create callgraph =
    {
      callgraph;
      summaries = [];
      in_progress = [];
      cycle_warnings = [];
      loop_warnings = [];
    }

  (* Effects of the call sites inside one expression, left to right. *)
  let rec call_effects ctx (func : Ast.func) (e : Ast.expr) : summary =
    let sub =
      match e.Ast.edesc with
      | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
      | Ast.Ident _ | Ast.Sizeof_type _ ->
        zero_summary
      | Ast.Call (f, args) ->
        List.fold_left
          (fun acc a -> seq_summary acc (call_effects ctx func a))
          (call_effects ctx func f)
          args
      | Ast.Unop (_, a)
      | Ast.Cast (_, a)
      | Ast.Field (a, _)
      | Ast.Arrow (a, _)
      | Ast.Sizeof_expr a ->
        call_effects ctx func a
      | Ast.Binop (_, a, b)
      | Ast.Assign (a, b)
      | Ast.Op_assign (_, a, b)
      | Ast.Index (a, b)
      | Ast.Comma (a, b) ->
        seq_summary (call_effects ctx func a) (call_effects ctx func b)
      | Ast.Cond (a, b, c) ->
        seq_summary
          (call_effects ctx func a)
          (join_summary (call_effects ctx func b) (call_effects ctx func c))
    in
    match e.Ast.edesc with
    | Ast.Call ({ edesc = Ast.Ident callee; _ }, _) -> (
      match summarize_name ctx ~loc:e.Ast.eloc callee with
      | Some callee_summary -> seq_summary sub callee_summary
      | None -> sub)
    | _ -> sub

  (* Summary of one CFG node: the client's local event plus effects of any
     calls it contains. *)
  and node_summary ctx (func : Ast.func) (node : Cfg.node) : summary =
    let local = C.event func node in
    let local_summary =
      if D.equal local D.zero then zero_summary
      else
        {
          effect_ = local;
          witness =
            [ { site_func = func.Ast.f_name; site_loc = node.Cfg.loc;
                site_effect = local } ];
        }
    in
    let calls =
      match node.Cfg.kind with
      | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ }
      | Cfg.Branch e | Cfg.Switch e | Cfg.Return (Some e) ->
        call_effects ctx func e
      | Cfg.Stmt { Ast.sdesc = Ast.Sdecl { Ast.v_init = Some e; _ }; _ } ->
        call_effects ctx func e
      | _ -> zero_summary
    in
    seq_summary calls local_summary

  (* Worst-case path summary of a whole function: DP over the acyclic
     CFG.  Loop bodies (back-edge regions) with a non-identity effect are
     *not* a fixed point; the paper warns in the intra-procedural case too,
     which we surface through [cycle_warnings]. *)
  and func_summary ctx (func : Ast.func) : summary =
    let cfg = Cfg.build func in
    let backs = Cfg.back_edges cfg in
    let is_back a b = List.exists (fun (x, y) -> x = a && y = b) backs in
    let memo : (int, summary) Hashtbl.t = Hashtbl.create 64 in
    let rec solve id =
      match Hashtbl.find_opt memo id with
      | Some s -> s
      | None ->
        let node = Cfg.node cfg id in
        let own = node_summary ctx func node in
        let fwd =
          List.filter (fun (_, s) -> not (is_back id s)) node.Cfg.succs
        in
        let rest =
          match fwd with
          | [] -> zero_summary
          | (_, first) :: others ->
            List.fold_left
              (fun acc (_, s) -> join_summary acc (solve s))
              (solve first) others
        in
        let s = seq_summary own rest in
        Hashtbl.replace memo id s;
        s
    in
    (* the paper's fixed-point rule: a cycle whose body has no effect can
       be ignored; a cycle that *does* have an effect may repeat it an
       unbounded number of times, so flag it *)
    let reachable_from start =
      let seen = Hashtbl.create 32 in
      let rec go id =
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          List.iter (fun (_, s) -> go s) (Cfg.succs cfg id)
        end
      in
      go start;
      seen
    in
    List.iter
      (fun (src, head) ->
        let from_head = reachable_from head in
        (* body = nodes reachable from head that can reach src; test the
           second half by checking src's reachability from each candidate *)
        let body =
          Hashtbl.fold
            (fun id () acc ->
              if id = src || Hashtbl.mem (reachable_from id) src then
                id :: acc
              else acc)
            from_head []
        in
        let body_effect =
          List.fold_left
            (fun acc id ->
              D.seq acc (node_summary ctx func (Cfg.node cfg id)).effect_)
            D.zero body
        in
        if not (D.loop_safe body_effect) then
          ctx.loop_warnings <-
            (func.Ast.f_name, (Cfg.node cfg head).Cfg.loc)
            :: ctx.loop_warnings)
      backs;
    solve cfg.Cfg.entry

  and summarize_name ctx ~loc (name : string) : summary option =
    match Callgraph.find_func ctx.callgraph name with
    | None -> None
    | Some func ->
      if List.mem name ctx.in_progress then begin
        (* recursive cycle: fixed point iff the recursion adds nothing,
           which we approximate by treating the recursive call as zero
           and warning so the client can decide (the paper: "if there
           were sends, warn of a possible error") *)
        ctx.cycle_warnings <- (name, loc) :: ctx.cycle_warnings;
        Some zero_summary
      end
      else begin
        match List.assoc_opt name ctx.summaries with
        | Some s -> Some s
        | None ->
          ctx.in_progress <- name :: ctx.in_progress;
          let s = func_summary ctx func in
          ctx.in_progress <- List.tl ctx.in_progress;
          ctx.summaries <- (name, s) :: ctx.summaries;
          Some s
      end

  (** Worst-case effect of running [root], splicing in callees
      transitively.  Returns [None] if [root] is not defined. *)
  let summarize ctx (root : string) : summary option =
    summarize_name ctx ~loc:Loc.none root

  (** Recursive call-graph cycles encountered (treated as fixed points);
      a client should warn when the involved function's final summary has
      a non-identity effect. *)
  let cycles ctx = ctx.cycle_warnings

  (** Intra-procedural loops whose body has a non-identity effect. *)
  let effectful_loops ctx = ctx.loop_warnings

  (** Final summary of [name], if it was computed. *)
  let summary_of ctx name = List.assoc_opt name ctx.summaries
end
