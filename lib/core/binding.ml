(** Wildcard bindings produced by pattern matching.

    When a metal pattern such as [{ MISCBUS_READ_DB(addr, buf); }] matches,
    the declared wildcards [addr] and [buf] are bound to the concrete
    expressions they matched.  A wildcard that occurs twice in one pattern
    must match structurally equal expressions. *)

type t = (string * Ast.expr) list

let empty : t = []

let find (t : t) name = List.assoc_opt name t

(** Add a binding; returns [None] when [name] is already bound to a
    structurally different expression. *)
let add (t : t) name expr : t option =
  match find t name with
  | None -> Some ((name, expr) :: t)
  | Some prior -> if Ast.equal_expr prior expr then Some t else None

let names (t : t) = List.map fst t

let pp ppf (t : t) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, e) ->
      Format.fprintf ppf "%s=%s" name (Pp.expr_to_string e))
    ppf (List.rev t)
