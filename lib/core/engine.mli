(** The path-sensitive checking engine — the xg++ analogue.

    [run sm func] applies the state machine down every execution path of
    the function's control-flow graph.  Traversal is depth-first; a
    [(node, state)] pair already visited is not re-explored, which keeps
    the engine linear in (nodes x distinct states) while still
    distinguishing every state the machine can be in at every program
    point — the trick that made exhaustive path checking tractable for
    xg++ in the presence of loops.

    Within a node, sub-expressions are offered to the rules in evaluation
    order; the first matching rule (state rules before [all] rules)
    fires. *)

type stats = {
  mutable nodes_visited : int;
  mutable events_matched : int;
  mutable paths_stopped : int;
}

val fresh_stats : unit -> stats

type 'state exit_hook = Sm.action_ctx -> 'state -> unit
(** called once per distinct state in which a path reaches the function
    exit; used for "must do X before returning" rules *)

val run :
  ?stats:stats ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.func ->
  Diag.t list
(** check one function; diagnostics come back sorted and deduplicated *)

val run_unit :
  ?stats:stats -> ?at_exit:'state exit_hook -> 'state Sm.t -> Ast.tunit ->
  Diag.t list

val run_program :
  ?stats:stats ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.tunit list ->
  Diag.t list

val subexprs_post : Ast.expr -> Ast.expr list
(** sub-expressions in evaluation (post-) order, including the root —
    the event order rules see *)
