(** The path-sensitive checking engine — the xg++ analogue.

    [check sm (`Func f)] applies the state machine down every execution
    path of the function's control-flow graph.  Traversal is depth-first;
    a [(node, state)] pair already visited is not re-explored, which
    keeps the engine linear in (nodes x distinct states) while still
    distinguishing every state the machine can be in at every program
    point — the trick that made exhaustive path checking tractable for
    xg++ in the presence of loops.

    Within a node, sub-expressions are offered to the rules in evaluation
    order; the first matching rule (state rules before [all] rules)
    fires. *)

type stats = {
  nodes_visited : int;
  events_matched : int;
  paths_stopped : int;
}
(** An immutable statistics snapshot.  The engine never mutates shared
    state: counts are accumulated domain-locally and folded into the
    caller's [stats ref] once per checked function, so concurrent domains
    each passing their own ref are race-free.  Merge per-domain records
    with {!stats_add} at join. *)

val stats_zero : stats
val stats_add : stats -> stats -> stats

val fresh_stats : unit -> stats ref
(** a fresh accumulator, [ref stats_zero] *)

type 'state exit_hook = Sm.action_ctx -> 'state -> unit
(** called once per distinct state in which a path reaches the function
    exit; used for "must do X before returning" rules *)

type target =
  [ `Func of Ast.func | `Unit of Ast.tunit | `Program of Ast.tunit list ]
(** what to check: one function, every function of a translation unit, or
    a whole program *)

val check :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  target ->
  Diag.t list
(** the single entry point; diagnostics come back sorted and deduplicated
    per function, concatenated in source order across functions *)

val check_prep :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Prep.t ->
  Diag.t list
(** the fused fast path: check one prepared function, reusing its CFG
    and event arrays — [check sm (`Func f)] is
    [check_prep sm (Prep.build f)].  Drivers running several machines
    over the same function build the prep once and call this per
    machine. *)

val run :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.func ->
  Diag.t list
(** @deprecated alias for [check sm (`Func f)] *)

val run_unit :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.tunit ->
  Diag.t list
(** @deprecated alias for [check sm (`Unit tu)] *)

val run_program :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.tunit list ->
  Diag.t list
(** @deprecated alias for [check sm (`Program tus)] *)

val subexprs_post : Ast.expr -> Ast.expr list
(** sub-expressions in evaluation (post-) order, including the root —
    the event order rules see *)
