(** The path-sensitive checking engine — the xg++ analogue.

    [check sm (`Func f)] applies the state machine down every execution
    path of the function's control-flow graph.  Traversal is depth-first;
    a [(node, state)] pair already visited is not re-explored, which
    keeps the engine linear in (nodes x distinct states) while still
    distinguishing every state the machine can be in at every program
    point — the trick that made exhaustive path checking tractable for
    xg++ in the presence of loops.

    Within a node, sub-expressions are offered to the rules in evaluation
    order; the first matching rule (state rules before [all] rules)
    fires. *)

type stats = {
  nodes_visited : int;
  events_matched : int;
  paths_stopped : int;
}
(** An immutable statistics snapshot.  The engine never mutates shared
    state: counts are accumulated domain-locally and folded into the
    caller's [stats ref] once per checked function, so concurrent domains
    each passing their own ref are race-free.  Merge per-domain records
    with {!stats_add} at join. *)

val stats_zero : stats
val stats_add : stats -> stats -> stats

val fresh_stats : unit -> stats ref
(** a fresh accumulator, [ref stats_zero] *)

type 'state exit_hook = Sm.action_ctx -> 'state -> unit
(** called once per distinct state in which a path reaches the function
    exit; used for "must do X before returning" rules *)

(** {2 Containment: budgets, degraded mode, fault injection}

    Fault-isolated units (see [Mcd]) wrap each (checker x function-batch)
    in a budget and, when a traversal crashes or the budget blows, retry
    it under {!with_degraded}.  All containment context is domain-local:
    concurrent workers never share a limiter. *)

exception Budget_exhausted of string
(** raised from inside a traversal when the installed unit budget runs
    out; schedulers catch it at the unit boundary *)

exception Injected_fault of string
(** raised at {!check_prep} entry when the test-only fault hook matches
    — the fault-injection harness's stand-in for a checker bug *)

type budget = { fuel : int option; deadline_ms : float option }
(** a per-unit resource budget: [fuel] bounds engine node visits (the
    [Paths.enumerate] limit idea extended to the (node x state)
    traversal), [deadline_ms] bounds wall-clock time *)

val no_budget : budget

val with_budget : budget -> (unit -> 'a) -> 'a
(** run with the budget installed for the current domain; traversals
    within raise {!Budget_exhausted} once it runs out *)

val with_degraded : (unit -> 'a) -> 'a
(** run in degraded, flow-insensitive mode: {!check_prep} makes a single
    pass over each function's events in source order (no branch
    exploration, no path sensitivity) — linear, hence total.  Budgets
    are suspended inside.  Diagnostics it emits are real; it can only
    miss path-dependent ones. *)

val set_fault_hook : (checker:string -> func:string -> bool) option -> unit
(** test-only: install a predicate that makes the matching
    (checker, function) pair raise {!Injected_fault} at {!check_prep}
    entry; [None] clears it.  Install before worker domains spawn. *)

val describe_fault : exn -> string
(** how a contained failure reads in an ["internal"] diagnostic *)

type target =
  [ `Func of Ast.func | `Unit of Ast.tunit | `Program of Ast.tunit list ]
(** what to check: one function, every function of a translation unit, or
    a whole program *)

val check :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  target ->
  Diag.t list
(** the single entry point; diagnostics come back sorted and deduplicated
    per function, concatenated in source order across functions *)

val check_prep :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Prep.t ->
  Diag.t list
(** the fused fast path: check one prepared function, reusing its CFG
    and event arrays — [check sm (`Func f)] is
    [check_prep sm (Prep.build f)].  Drivers running several machines
    over the same function build the prep once and call this per
    machine.

    Honours the domain's containment context: raises {!Injected_fault}
    if the fault hook matches, runs flow-insensitively inside
    {!with_degraded}, raises {!Budget_exhausted} under an exhausted
    {!with_budget}. *)

(** {2 Prebuilt dispatch tables}

    A machine over dense integer states [0 .. n_states-1] can have every
    state's root-dispatch index compiled up front — once per machine
    instead of once per checked function.  This is what the metal
    compiler ([lib/metalc]) plugs its transition tables into: same
    traversal and containment semantics as {!check_prep}, with the
    per-function dispatch cache replaced by an array load. *)

type table
(** an [int Sm.t] with prebuilt per-state dispatch *)

val prebuild : n_states:int -> int Sm.t -> table
(** compile the dispatch index of every state in [0 .. n_states-1]; the
    machine must only ever reach states in that range *)

val table_sm : table -> int Sm.t
(** the underlying machine *)

val check_prep_table :
  ?stats:stats ref ->
  ?at_exit:int exit_hook ->
  table ->
  Prep.t ->
  Diag.t list
(** {!check_prep} for a prebuilt table — honours the same fault hook,
    degraded mode, and budget *)

(** {2 The product automaton}

    [product_scan] composes every packed machine into one automaton over
    state vectors and walks the function's CFG once, instead of once per
    machine.  The walk only {e detects}: it returns, per machine, whether
    the machine could emit at least one diagnostic on this function.
    Clean machines (the overwhelmingly common case on real protocol
    code) are done — their per-checker result is [] by construction.
    Dirty machines re-run through {!check_prep}, whose output (witnesses
    included) is byte-identical to the per-checker path.

    Drivers must delegate to the per-checker path whenever
    {!containment_active} — budgets, degraded mode and fault injection
    keep their exact per-checker semantics that way. *)

type pmachine
(** a state machine packed for the product scan, state type hidden *)

val pack : ?at_exit:'state exit_hook -> 'state Sm.t -> pmachine

val pack_table : ?at_exit:int exit_hook -> table -> pmachine
(** pack a prebuilt table; per-state dispatch is an array load *)

val reindex : 'state array -> 'state Sm.t -> int Sm.t
(** [reindex states sm] lowers a machine whose reachable states are
    exactly the entries of [states] onto dense integer states — the
    transition-table shape — so it can be {!prebuild}-compiled once.
    @raise Invalid_argument if the machine leaves the declared set *)

exception Product_overflow
(** the product vector space of a function blew the scan's visit cap;
    callers fall back to per-checker traversals *)

val containment_active : unit -> bool
(** is a budget, degraded mode, or fault hook armed on this domain? *)

val product_scan : Prep.t -> pmachine array -> bool array
(** one fused walk; [result.(i)] is [true] iff machine [i] may emit on
    this function and must re-run per checker.  Honours an installed
    budget. @raise Product_overflow when the visit cap blows *)

val run :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.func ->
  Diag.t list
(** @deprecated alias for [check sm (`Func f)] *)

val run_unit :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.tunit ->
  Diag.t list
(** @deprecated alias for [check sm (`Unit tu)] *)

val run_program :
  ?stats:stats ref ->
  ?at_exit:'state exit_hook ->
  'state Sm.t ->
  Ast.tunit list ->
  Diag.t list
(** @deprecated alias for [check sm (`Program tus)] *)

val subexprs_post : Ast.expr -> Ast.expr list
(** sub-expressions in evaluation (post-) order, including the root —
    the event order rules see *)
