(** The exit-code policy of the hardened pipeline.

    Checking is degrade-don't-abort: malformed input regions, crashed
    checkers, and blown budgets are contained, reported, and the rest of
    the corpus is still checked.  The exit code is then the one-word
    summary of how much of the answer the caller can trust:

    {v
      0  clean      every unit checked path-sensitively, no diagnostics
      1  findings   checking completed in full, diagnostics were emitted
      2  partial    some region was skipped or some unit degraded —
                    parse/lex recovery fired, a checker crashed, or a
                    budget blew; remaining results are complete and exact
      3  unusable   no input survived (or the spec itself is broken):
                    nothing meaningful was checked
    v}

    Partial takes precedence over findings: a caller scripting [mcheck]
    must know that an exit-1 diagnostic list is exhaustive, and an
    exit-2 one may not be. *)

type outcome =
  | Clean
  | Findings  (** complete run, diagnostics emitted *)
  | Partial
      (** parse recovery, a degraded unit, or a skipped file reduced
          coverage; surviving results are exact *)
  | Unusable  (** nothing meaningful was checked *)

let exit_code = function
  | Clean -> 0
  | Findings -> 1
  | Partial -> 2
  | Unusable -> 3

let to_string = function
  | Clean -> "clean"
  | Findings -> "findings"
  | Partial -> "partial"
  | Unusable -> "unusable"

(** Classify a finished run.  [degraded] is true when any containment
    event fired: a parse/lex diagnostic, a skipped input file, a faulted
    ([degraded]) unit, or a crashed worker.  [usable] is false when no
    input survived at all. *)
let classify ~usable ~degraded ~has_findings =
  if not usable then Unusable
  else if degraded then Partial
  else if has_findings then Findings
  else Clean

(* The containment checkers' pseudo-names: diagnostics under these do
   not count as protocol findings — they count as coverage loss. *)
let internal_checkers = [ "lex"; "parse"; "internal" ]

let is_internal (d : Diag.t) = List.mem d.Diag.checker internal_checkers
