(** The exit-code policy of the hardened pipeline: a one-word summary of
    how much of the answer the caller can trust.

    0 clean / 1 findings / 2 partial (some region skipped or unit
    degraded; remaining results exact) / 3 unusable.  Partial takes
    precedence over findings: an exit-1 diagnostic list is exhaustive,
    an exit-2 one may not be. *)

type outcome =
  | Clean
  | Findings  (** complete run, diagnostics emitted *)
  | Partial
      (** parse recovery, a degraded unit, or a skipped file reduced
          coverage; surviving results are exact *)
  | Unusable  (** nothing meaningful was checked *)

val exit_code : outcome -> int
val to_string : outcome -> string

val classify : usable:bool -> degraded:bool -> has_findings:bool -> outcome
(** [degraded]: any containment event fired (parse/lex diagnostic,
    skipped input file, faulted unit, crashed worker); [usable]: some
    input survived to be checked *)

val internal_checkers : string list
(** the containment layer's pseudo-checker names: ["lex"], ["parse"],
    ["internal"] *)

val is_internal : Diag.t -> bool
(** diagnostics from the containment layer itself (checkers ["lex"],
    ["parse"], ["internal"]) — coverage loss, not protocol findings *)
