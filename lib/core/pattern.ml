(** Source-code patterns, metal style.

    A pattern is written in the base language (Clite) with some identifiers
    declared as typed wildcards, mirroring metal's

    {v
      decl { scalar } addr, buf;
      ...
      { WAIT_FOR_DB_FULL(addr); }
    v}

    which here reads

    {[
      let addr = ("addr", Pattern.Scalar) in
      Pattern.expr ~decls:[ addr ] "WAIT_FOR_DB_FULL(addr)"
    ]}

    Patterns match abstract-syntax subtrees structurally; wildcards match
    any expression whose inferred type satisfies the wildcard's kind, and
    repeated wildcards must match structurally equal expressions.
    Disjunction ([|] in metal) is {!alt}; named patterns ([pat x = ...])
    are plain OCaml [let]s. *)

type wildcard_kind =
  | Any  (** matches any expression *)
  | Scalar  (** integers and pointers — metal's [scalar] *)
  | Unsigned_int  (** metal's [unsigned] *)
  | Floating  (** float/double-typed expressions *)
  | Constant  (** literal constants only *)

type decl = string * wildcard_kind

type t =
  | Alt of t list  (** ordered disjunction *)
  | Expr of Ast.expr * decl list
      (** pattern expression, with the wildcards declared for it *)

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(** [expr_located ~decls src] parses [src] as a Clite expression and
    treats each identifier named in [decls] as a wildcard.  On failure
    the error carries the (1-based) line and column of the offending
    token *within the snippet*, so callers embedding patterns in a
    larger source (the metal front ends) can rebase it onto the file. *)
let expr_located ?(decls : decl list = []) (src : string) :
    (t, string * int * int) result =
  let fail msg (loc : Loc.t) =
    Error
      ( Printf.sprintf "bad pattern %S: %s" src msg,
        max 1 loc.Loc.line,
        max 1 loc.Loc.col )
  in
  match Parser.parse_expr_string ~file:"<pattern>" src with
  | e -> Ok (Expr (e, decls))
  | exception Parser.Error (msg, loc) -> fail msg loc
  | exception Lexer.Error (msg, loc) -> fail msg loc

(** [expr ~decls src] parses [src] as a Clite expression and treats each
    identifier named in [decls] as a wildcard.
    @raise Parse_error if [src] is not a valid expression. *)
let expr ?(decls : decl list = []) (src : string) : t =
  match expr_located ~decls src with
  | Ok t -> t
  | Error (msg, _, _) -> raise (Parse_error msg)

(** Ordered disjunction of patterns — metal's [p1 | p2]. *)
let alt (ps : t list) : t =
  Alt
    (List.concat_map (function Alt inner -> inner | p -> [ p ]) ps)

(** [call name ~args] matches a call to [name] with exactly [args]
    wildcards, each matching anything.  Convenience for the common
    macro-call shape. *)
let call name ~arity : t =
  let args =
    List.init arity (fun i -> Printf.sprintf "_w%d" i)
  in
  let src = Printf.sprintf "%s(%s)" name (String.concat ", " args) in
  expr ~decls:(List.map (fun a -> (a, Any)) args) src

(* ------------------------------------------------------------------ *)
(* Root classification                                                 *)
(* ------------------------------------------------------------------ *)

(* The engine dispatches each event through a hashtable of candidate
   rules instead of linearly scanning every rule per sub-expression;
   this classification is what the index is keyed on.  It must be
   conservative: a pattern may only be classified [Root_call name] /
   [Root_tag t] if it can match *no* expression outside that bucket. *)

type root_shape =
  | Root_call of string
      (** a call whose callee is literally this identifier *)
  | Root_tag of int  (** any expression with this head constructor *)
  | Root_any  (** wildcard at the root — a candidate for every event *)

(* the tag space is defined once in [Ast] so the cfg-level SoA event
   buffers and this index agree by construction *)
let n_tags = Ast.n_expr_tags
let tag_of_expr (e : Ast.expr) : int = Ast.expr_tag e
let tag_call = Ast.tag_call

let root_shape_of (p : Ast.expr) (decls : decl list) : root_shape =
  match p.Ast.edesc with
  | Ast.Ident name when List.mem_assoc name decls -> Root_any
  | Ast.Call ({ Ast.edesc = Ast.Ident f; _ }, _)
    when not (List.mem_assoc f decls) ->
    Root_call f
  | _ -> Root_tag (tag_of_expr p)

(** The root shapes a pattern can match — one entry per [Alt] branch
    (duplicates possible, harmless).  An event whose own root key is in
    none of them cannot match the pattern. *)
let root_shapes (t : t) : root_shape list =
  let rec go acc = function
    | Expr (p, decls) -> root_shape_of p decls :: acc
    | Alt ps -> List.fold_left go acc ps
  in
  go [] t

(* ------------------------------------------------------------------ *)
(* Branch introspection (the metal compiler's view)                    *)
(* ------------------------------------------------------------------ *)

(** The [Alt] branches of a pattern, in match order — the granularity the
    metal compiler's transition tables work at. *)
let branches (t : t) : (Ast.expr * decl list) list =
  let rec go acc = function
    | Expr (p, decls) -> (p, decls) :: acc
    | Alt ps -> List.fold_left go acc ps
  in
  List.rev (go [] t)

(** Rebuild a single-branch pattern from a {!branches} entry. *)
let of_branch ((p, decls) : Ast.expr * decl list) : t = Expr (p, decls)

let kind_admits (kind : wildcard_kind) (e : Ast.expr) : bool =
  match kind with
  | Any -> true
  | Scalar -> (
    match e.Ast.ety with
    | Some t -> Ctype.is_scalar t
    | None -> true (* unannotated code: be permissive, as xg++ was *))
  | Unsigned_int -> (
    match e.Ast.ety with
    | Some t -> Ctype.is_unsigned t || Ctype.is_integer t
    | None -> true)
  | Floating -> (
    match e.Ast.ety with Some t -> Ctype.is_floating t | None -> false)
  | Constant -> (
    match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Char_lit _ | Ast.Str_lit _ ->
      true
    | _ -> false)

(* Match pattern expression [p] against concrete expression [e]. *)
let rec match_e (decls : decl list) (p : Ast.expr) (e : Ast.expr)
    (b : Binding.t) : Binding.t option =
  match p.Ast.edesc with
  | Ast.Ident name when List.mem_assoc name decls ->
    let kind = List.assoc name decls in
    if kind_admits kind e then Binding.add b name e else None
  | _ -> (
    match (p.Ast.edesc, e.Ast.edesc) with
    | Ast.Int_lit (a, _), Ast.Int_lit (c, _) ->
      if Int64.equal a c then Some b else None
    | Ast.Float_lit (a, _), Ast.Float_lit (c, _) ->
      if Float.equal a c then Some b else None
    | Ast.Str_lit a, Ast.Str_lit c -> if String.equal a c then Some b else None
    | Ast.Char_lit a, Ast.Char_lit c -> if Char.equal a c then Some b else None
    (* pattern and event identifiers both come out of the lexer
       canonicalized through [Symtab], so pointer equality decides the
       common case; the [String.equal] fallback keeps synthesized ASTs
       (fuzz generators, fixers) correct *)
    | Ast.Ident a, Ast.Ident c ->
      if a == c || String.equal a c then Some b else None
    | Ast.Call (pf, pargs), Ast.Call (ef, eargs) ->
      if List.length pargs <> List.length eargs then None
      else
        Option.bind (match_e decls pf ef b) (fun b ->
            match_list decls pargs eargs b)
    | Ast.Unop (po, pa), Ast.Unop (eo, ea) ->
      if po = eo then match_e decls pa ea b else None
    | Ast.Binop (po, pa, pb), Ast.Binop (eo, ea, eb) ->
      if po = eo then
        Option.bind (match_e decls pa ea b) (fun b -> match_e decls pb eb b)
      else None
    | Ast.Assign (pl, pr), Ast.Assign (el, er) ->
      Option.bind (match_e decls pl el b) (fun b -> match_e decls pr er b)
    | Ast.Op_assign (po, pl, pr), Ast.Op_assign (eo, el, er) ->
      if po = eo then
        Option.bind (match_e decls pl el b) (fun b -> match_e decls pr er b)
      else None
    | Ast.Cond (pc, pt, pf), Ast.Cond (ec, et, ef) ->
      Option.bind (match_e decls pc ec b) (fun b ->
          Option.bind (match_e decls pt et b) (fun b -> match_e decls pf ef b))
    | Ast.Cast (pt, pa), Ast.Cast (et, ea) ->
      if Ctype.equal pt et then match_e decls pa ea b else None
    | Ast.Field (pa, pf), Ast.Field (ea, ef)
    | Ast.Arrow (pa, pf), Ast.Arrow (ea, ef) ->
      if pf == ef || String.equal pf ef then match_e decls pa ea b else None
    | Ast.Index (pa, pi), Ast.Index (ea, ei) ->
      Option.bind (match_e decls pa ea b) (fun b -> match_e decls pi ei b)
    | Ast.Comma (pa, pb), Ast.Comma (ea, eb) ->
      Option.bind (match_e decls pa ea b) (fun b -> match_e decls pb eb b)
    | Ast.Sizeof_expr pa, Ast.Sizeof_expr ea -> match_e decls pa ea b
    | Ast.Sizeof_type pt, Ast.Sizeof_type et ->
      if Ctype.equal pt et then Some b else None
    | _ -> None)

and match_list decls ps es b =
  match (ps, es) with
  | [], [] -> Some b
  | p :: ps, e :: es ->
    Option.bind (match_e decls p e b) (fun b -> match_list decls ps es b)
  | _ -> None

(** Match [t] against expression [e] at its root. *)
let rec match_expr (t : t) (e : Ast.expr) : Binding.t option =
  match t with
  | Expr (p, decls) -> match_e decls p e Binding.empty
  | Alt ps ->
    List.fold_left
      (fun acc p -> match acc with Some _ -> acc | None -> match_expr p e)
      None ps

(** All root-matches of [t] within [e] (including [e] itself), with the
    matched sub-expression, in evaluation (post-) order. *)
let find_all (t : t) (e : Ast.expr) : (Ast.expr * Binding.t) list =
  let hits = ref [] in
  let rec post e =
    (match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Ident _ | Ast.Sizeof_type _ ->
      ()
    | Ast.Call (f, args) ->
      post f;
      List.iter post args
    | Ast.Unop (_, a) | Ast.Cast (_, a) | Ast.Field (a, _) | Ast.Arrow (a, _)
    | Ast.Sizeof_expr a ->
      post a
    | Ast.Binop (_, a, b)
    | Ast.Assign (a, b)
    | Ast.Op_assign (_, a, b)
    | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      post a;
      post b
    | Ast.Cond (a, b, c) ->
      post a;
      post b;
      post c);
    match match_expr t e with
    | Some b -> hits := (e, b) :: !hits
    | None -> ()
  in
  post e;
  List.rev !hits

(** First match of [t] anywhere within [e]. *)
let find (t : t) (e : Ast.expr) : (Ast.expr * Binding.t) option =
  match find_all t e with [] -> None | hit :: _ -> Some hit

(** Does [t] match anywhere within [e]? *)
let occurs (t : t) (e : Ast.expr) : bool = find t e <> None
