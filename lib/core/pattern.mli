(** Source-code patterns, metal style.

    A pattern is written in the base language (Clite) with some
    identifiers declared as typed wildcards, mirroring metal's

    {v
      decl { scalar } addr, buf;
      { WAIT_FOR_DB_FULL(addr); }
    v}

    which here reads

    {[
      Pattern.expr ~decls:[ ("addr", Pattern.Scalar) ] "WAIT_FOR_DB_FULL(addr)"
    ]}

    Patterns match abstract-syntax subtrees structurally; wildcards match
    any expression whose inferred type satisfies the wildcard's kind, and
    repeated wildcards must match structurally equal expressions. *)

(** Typed wildcard kinds — metal's [decl { kind }]. *)
type wildcard_kind =
  | Any  (** matches any expression *)
  | Scalar  (** integers and pointers — metal's [scalar] *)
  | Unsigned_int  (** metal's [unsigned] *)
  | Floating  (** float/double-typed expressions *)
  | Constant  (** literal constants only *)

type decl = string * wildcard_kind

type t

exception Parse_error of string

val expr : ?decls:decl list -> string -> t
(** [expr ~decls src] parses [src] as a Clite expression, treating each
    identifier named in [decls] as a wildcard.
    @raise Parse_error when [src] is not a valid expression. *)

val expr_located :
  ?decls:decl list -> string -> (t, string * int * int) result
(** [expr] with a structured failure: the message plus the 1-based line
    and column of the offending token within the snippet, so callers
    embedding patterns in a larger source (the metal front ends) can
    rebase the position onto the enclosing file *)

val alt : t list -> t
(** ordered disjunction — metal's [p1 | p2] *)

val call : string -> arity:int -> t
(** [call name ~arity] matches any call to [name] with [arity] arguments. *)

(** {2 Root classification}

    The engine indexes rules by the shape of their pattern root so an
    event is only offered to rules that could possibly match it.  The
    classification is conservative: [Root_call name] / [Root_tag t]
    promise the pattern matches nothing outside that bucket, and
    anything uncertain is [Root_any]. *)

type root_shape =
  | Root_call of string
      (** a call whose callee is literally this identifier *)
  | Root_tag of int  (** any expression with this head constructor *)
  | Root_any  (** wildcard at the root — a candidate for every event *)

val n_tags : int
(** number of distinct head-constructor tags (the [Root_tag] range) *)

val tag_call : int
(** the tag of [Ast.Call] — the bucket call events without an indexed
    callee name fall back to *)

val tag_of_expr : Ast.expr -> int
(** head-constructor tag of an expression, in [0 .. n_tags-1] *)

val root_shapes : t -> root_shape list
(** the shapes a pattern can match at its root, one per [Alt] branch *)

val branches : t -> (Ast.expr * decl list) list
(** the [Alt] branches in match order, each with its wildcard
    declarations — the granularity the metal compiler's transition
    tables work at *)

val of_branch : Ast.expr * decl list -> t
(** rebuild a single-branch pattern from a {!branches} entry *)

val match_expr : t -> Ast.expr -> Binding.t option
(** match at the root of an expression *)

val find_all : t -> Ast.expr -> (Ast.expr * Binding.t) list
(** all root-matches within an expression (including itself), in
    evaluation (post-) order *)

val find : t -> Ast.expr -> (Ast.expr * Binding.t) option
(** first match anywhere within an expression *)

val occurs : t -> Ast.expr -> bool
