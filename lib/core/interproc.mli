(** Inter-procedural analysis framework — the xg++ global-analysis
    analogue behind the lanes checker (Section 7).

    The client supplies an abstract domain (a join semilattice with a
    sequencing operator and a loop-safety predicate) and a function giving
    the local effect of each CFG node; the framework computes per-function
    worst-case path summaries, splicing callee summaries in at call sites,
    with the paper's fixed-point rule for cycles. *)

module type DOMAIN = sig
  type t

  val zero : t
  (** identity for {!seq} — "no effect" *)

  val seq : t -> t -> t
  (** sequential composition along a path *)

  val join : t -> t -> t
  (** least upper bound across alternative paths *)

  val equal : t -> t -> bool

  val loop_safe : t -> bool
  (** is repeating this effect a fixed point? (the paper's "cycles that
      do not send" rule) *)

  val pp : Format.formatter -> t -> unit
end

module type CLIENT = sig
  module D : DOMAIN

  val event : Ast.func -> Cfg.node -> D.t
  (** local effect of one CFG node (identity for most nodes) *)
end

module Make (C : CLIENT) : sig
  module D : DOMAIN with type t = C.D.t

  type site = { site_func : string; site_loc : Loc.t; site_effect : D.t }

  (** worst-case effect plus the witness path achieving it (for the
      paper's inter-procedural back traces) *)
  type summary = { effect_ : D.t; witness : site list }

  type ctx

  val create : Callgraph.t -> ctx

  val summarize : ctx -> string -> summary option
  (** worst-case effect of running the named function, callees spliced in
      transitively; [None] when the function is not defined *)

  val summary_of : ctx -> string -> summary option
  (** a previously computed summary, if any *)

  val cycles : ctx -> (string * Loc.t) list
  (** recursive call-graph cycles encountered (treated as fixed points);
      warn when the involved function's summary is not loop-safe *)

  val effectful_loops : ctx -> (string * Loc.t) list
  (** intra-procedural loops whose body is not a fixed point *)
end
