(** A parser for the metal concrete syntax, as published.

    Accepts checkers written in the syntax of the paper's Figures 2 and 3
    — prelude block, [decl { kind } names;], [pat name = ...;], state
    sections with [pattern ==> target] rules, the [all] state and the
    [stop] target — and compiles them to engine-ready state machines.
    The files under [metal/] are the paper's figures verbatim. *)

exception Parse_error of string * Loc.t
(** the location points at the offending token ([Loc.none] when no
    position is known), so metal-spec errors print file:line:col *)

type target = { goto : string option; err : string option }
type rule = { rule_pattern : Pattern.t; target : target }

type t = {
  sm_name : string;
  decls : Pattern.decl list;
  named_patterns : (string * Pattern.t) list;
  states : (string * rule list) list;  (** in declaration order *)
  all_rules : rule list;
}

val parse : ?file:string -> string -> t
(** @raise Parse_error on malformed metal source *)

val to_sm : t -> string Sm.t
(** compile to a runnable machine; states are their metal names and
    execution starts in the first state defined, as in metal *)

val load : ?file:string -> string -> string Sm.t
(** [to_sm (parse ?file src)] *)

val load_file : string -> string Sm.t
(** parse errors carry [path:line:col] *)

(** {2 Front-end internals, shared with the metal compiler}

    [lib/metalc] builds its located surface AST on the same
    offset-tracked lexer the interpreter uses, so both front ends agree
    byte-for-byte on what the concrete syntax means and where every
    token sits. *)

type token =
  | Ident of string
  | Code of string  (** the inside of a balanced [{ ... }] block *)
  | Colon
  | Semi
  | Bar
  | Comma
  | Equals
  | Arrow  (** [==>] *)
  | Eof

val tokenize : loc:(int -> Loc.t) -> string -> (token * int) list
(** token stream with start offsets; [Code] tokens point at the block's
    first non-blank content character (or its opening brace when empty)
    so diagnostics inside a block land on the offending text *)

val loc_of_offset : file:string -> string -> int -> Loc.t
(** line/col of a byte offset within a source string *)

(** the result of the textual phase 1: the machine's name and its
    brace-delimited body, plus the offset→location map phase 2 needs *)
type source = {
  src_name : string;  (** the [sm] name *)
  src_name_loc : Loc.t;
  src_body : string;  (** the text between the machine's braces *)
  src_loc : int -> Loc.t;
      (** body-relative byte offset → file location *)
}

val split_source : ?file:string -> string -> source
(** comment-strip (offset-preserving), skip the optional prelude block,
    and isolate [sm <name> { body }].
    @raise Parse_error on malformed top-level structure *)

val rebase_snippet_pos : Loc.t -> line:int -> col:int -> Loc.t
(** rebase a 1-based (line, col) position inside a snippet onto the file
    location of the snippet's first character *)

val kind_of_string : string -> Pattern.wildcard_kind
(** [decl { kind }] keyword → wildcard kind.
    @raise Parse_error (with [Loc.none]) on an unknown kind *)

val parse_action : string -> string option
(** the [err("...")] action inside a code block; [None] for an empty
    block.  @raise Parse_error (with [Loc.none]) on anything else *)

val at_loc : Loc.t -> (unit -> 'a) -> 'a
(** run [f], re-raising location-free [Parse_error]s (and
    [Pattern.Parse_error]s) with the given location attached *)
