(** A parser for the metal concrete syntax, as published.

    Accepts checkers written in the syntax of the paper's Figures 2 and 3
    — prelude block, [decl { kind } names;], [pat name = ...;], state
    sections with [pattern ==> target] rules, the [all] state and the
    [stop] target — and compiles them to engine-ready state machines.
    The files under [metal/] are the paper's figures verbatim. *)

exception Parse_error of string * Loc.t
(** the location points at the offending token ([Loc.none] when no
    position is known), so metal-spec errors print file:line:col *)

type target = { goto : string option; err : string option }
type rule = { rule_pattern : Pattern.t; target : target }

type t = {
  sm_name : string;
  decls : Pattern.decl list;
  named_patterns : (string * Pattern.t) list;
  states : (string * rule list) list;  (** in declaration order *)
  all_rules : rule list;
}

val parse : ?file:string -> string -> t
(** @raise Parse_error on malformed metal source *)

val to_sm : t -> string Sm.t
(** compile to a runnable machine; states are their metal names and
    execution starts in the first state defined, as in metal *)

val load : ?file:string -> string -> string Sm.t
(** [to_sm (parse ?file src)] *)

val load_file : string -> string Sm.t
(** parse errors carry [path:line:col] *)
