(** Metal state machines.

    A checker is a state machine applied down every execution path of each
    function.  States are ordinary OCaml values (typically a variant type);
    rules pair a {!Pattern.t} with an action that inspects the match and
    decides the transition.  The special [all] rules are implicitly active
    in every state, mirroring metal's [all:] state. *)

(** What the action asks the engine to do next on this path. *)
type 'state outcome =
  | Stay  (** remain in the current state *)
  | Goto of 'state  (** transition *)
  | Stop  (** stop checking this path — metal's [stop] state *)

(** Context available to rule actions. *)
type action_ctx = {
  func : Ast.func;  (** function being checked *)
  matched : Ast.expr;  (** the expression the pattern matched *)
  loc : Loc.t;  (** its location *)
  bindings : Binding.t;
  trace : Loc.t list;  (** execution path from function entry, entry first *)
  emit : Diag.t -> unit;  (** report a diagnostic *)
}

type 'state rule = {
  pattern : Pattern.t;
  action : action_ctx -> 'state outcome;
}

type 'state t = {
  name : string;
  start : Ast.func -> 'state option;
      (** initial state; [None] skips the function entirely (e.g. a checker
          that only applies to handlers) *)
  rules : 'state -> 'state rule list;  (** rules active in a state *)
  all : 'state rule list;  (** rules active in every state *)
  state_to_string : 'state -> string;  (** for traces and debugging *)
  observe_branches : bool;
      (** when true, branch/switch conditions are also offered to rules *)
  branch : ('state -> Ast.expr -> bool -> 'state) option;
      (** refine the state when the engine follows the true/false edge of
          a conditional — how checkers become sensitive to tests such as
          [if (ALLOC_FAILED(buf))] or the paper's 0/1-returning
          conditional-free routines *)
}

let rule pattern action = { pattern; action }

(** A rule that reports an error and stays in the current state — the
    common [==> { err("...") }] shape. *)
let err_rule ~checker pattern message =
  rule pattern (fun ctx ->
      ctx.emit
        (Diag.make ~checker ~loc:ctx.loc ~func:ctx.func.Ast.f_name
           ~trace:ctx.trace message);
      Stay)

(** A rule that unconditionally transitions — the [==> state] shape. *)
let goto_rule pattern state = rule pattern (fun _ -> Goto state)

(** A rule that stops checking the current path — the [==> stop] shape. *)
let stop_rule pattern = rule pattern (fun _ -> Stop)

let make ?(all = []) ?(observe_branches = true) ?branch
    ?(state_to_string = fun _ -> "<state>") ~name ~start ~rules () =
  { name; start; rules; all; state_to_string; observe_branches; branch }

(** Helper for [emit] inside actions. *)
let err ?severity ~checker (ctx : action_ctx) fmt =
  Format.kasprintf
    (fun message ->
      ctx.emit
        (Diag.make ?severity ~checker ~loc:ctx.loc ~func:ctx.func.Ast.f_name
           ~trace:ctx.trace message))
    fmt
