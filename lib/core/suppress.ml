(** Annotation functions — the paper's false-positive mechanism.

    An aggressive static checker produces false positives; the paper's
    answer is a set of reserved functions (e.g. [has_buffer()],
    [no_free_needed()]) that the protocol writer calls to assert a
    condition the checker cannot see.  The checker honours the assertion
    and, crucially, keeps score: an annotation that never suppresses a
    warning is itself flagged, turning annotations into checkable
    comments. *)

type annotation = {
  ann_name : string;  (** reserved function name *)
  ann_loc : Loc.t;
  ann_func : string;  (** enclosing protocol function *)
  mutable ann_used : bool;  (** did it suppress a would-be warning? *)
}

type t = {
  reserved : string list;
  mutable seen : annotation list;
}

let create ~reserved = { reserved; seen = [] }

let is_reserved t name = List.mem name t.reserved

(** Record an annotation call encountered during checking; returns the
    record so the checker can later mark it used.  The same source site
    may be reached along many paths (and in several checker states), so
    records are deduplicated by location. *)
let record t ~name ~loc ~func : annotation =
  match
    List.find_opt
      (fun a ->
        String.equal a.ann_name name && Loc.equal a.ann_loc loc
        && String.equal a.ann_func func)
      t.seen
  with
  | Some existing -> existing
  | None ->
    let ann =
      { ann_name = name; ann_loc = loc; ann_func = func; ann_used = false }
    in
    t.seen <- ann :: t.seen;
    ann

let mark_used ann = ann.ann_used <- true

(** Annotations that suppressed at least one warning — the paper's
    "useful" count. *)
let useful t = List.filter (fun a -> a.ann_used) t.seen

(** Annotations that never fired — candidates for "this assertion is not
    needed on any path" warnings. *)
let unused t = List.filter (fun a -> not a.ann_used) t.seen

let unused_diags t ~checker : Diag.t list =
  List.map
    (fun a ->
      Diag.make ~severity:Diag.Warning ~checker ~loc:a.ann_loc
        ~func:a.ann_func
        (Printf.sprintf "annotation %s() not needed on any path" a.ann_name))
    (unused t)
