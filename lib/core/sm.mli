(** Metal state machines.

    A checker is a state machine applied down every execution path of each
    function (by {!Engine}).  States are ordinary OCaml values — typically
    a variant type; rules pair a {!Pattern.t} with an action that inspects
    the match and decides the transition.  The [all] rules are implicitly
    active in every state, mirroring metal's [all:] state. *)

(** What an action asks the engine to do next on this path. *)
type 'state outcome =
  | Stay  (** remain in the current state *)
  | Goto of 'state  (** transition *)
  | Stop  (** stop checking this path — metal's [stop] state *)

(** Context available to rule actions. *)
type action_ctx = {
  func : Ast.func;  (** function being checked *)
  matched : Ast.expr;  (** the expression the pattern matched *)
  loc : Loc.t;  (** its location *)
  bindings : Binding.t;
  trace : Loc.t list;  (** execution path from function entry, entry first *)
  emit : Diag.t -> unit;  (** report a diagnostic *)
}

type 'state rule = {
  pattern : Pattern.t;
  action : action_ctx -> 'state outcome;
}

type 'state t = {
  name : string;
  start : Ast.func -> 'state option;
      (** initial state; [None] skips the function entirely (e.g. a
          checker that only applies to handlers) *)
  rules : 'state -> 'state rule list;  (** rules active in a state *)
  all : 'state rule list;  (** rules active in every state *)
  state_to_string : 'state -> string;
  observe_branches : bool;
      (** when true (the default), branch and switch conditions are also
          offered to rules *)
  branch : ('state -> Ast.expr -> bool -> 'state) option;
      (** refine the state when the engine follows the true/false edge of
          a conditional — how checkers become sensitive to tests such as
          [if (ALLOC_FAILED(buf))] or the paper's 0/1-returning
          conditional-free routines *)
}

val make :
  ?all:'state rule list ->
  ?observe_branches:bool ->
  ?branch:('state -> Ast.expr -> bool -> 'state) ->
  ?state_to_string:('state -> string) ->
  name:string ->
  start:(Ast.func -> 'state option) ->
  rules:('state -> 'state rule list) ->
  unit ->
  'state t

val rule : Pattern.t -> (action_ctx -> 'state outcome) -> 'state rule

val err_rule : checker:string -> Pattern.t -> string -> 'state rule
(** report an error and stay — the common [==> { err("...") }] shape *)

val goto_rule : Pattern.t -> 'state -> 'state rule
(** unconditional transition — the [==> state] shape *)

val stop_rule : Pattern.t -> 'state rule
(** abandon the path — the [==> stop] shape *)

val err :
  ?severity:Diag.severity ->
  checker:string ->
  action_ctx ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** emit a diagnostic at the matched location from inside an action *)
