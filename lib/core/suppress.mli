(** Annotation functions — the paper's false-positive mechanism.

    An aggressive static checker produces false positives; the paper's
    answer is a set of reserved assertion functions ([has_buffer()],
    [no_free_needed()]) the protocol writer calls to tell the checker
    something it cannot see.  The checker honours the assertion and keeps
    score: an annotation that never suppresses a warning is itself flagged,
    turning annotations into checkable comments (Section 6.1). *)

type annotation = {
  ann_name : string;
  ann_loc : Loc.t;
  ann_func : string;
  mutable ann_used : bool;
}

type t

val create : reserved:string list -> t
val is_reserved : t -> string -> bool

val record : t -> name:string -> loc:Loc.t -> func:string -> annotation
(** record an annotation call seen during checking; the checker marks it
    {!mark_used} when it actually changes a verdict *)

val mark_used : annotation -> unit

val useful : t -> annotation list
(** annotations that suppressed at least one warning (Table 4 "useful") *)

val unused : t -> annotation list

val unused_diags : t -> checker:string -> Diag.t list
(** "annotation not needed on any path" warnings *)
