(** Wildcard bindings produced by pattern matching.

    When a metal pattern such as [{ MISCBUS_READ_DB(addr, buf); }] matches,
    its declared wildcards are bound to the concrete expressions they
    matched.  A wildcard that occurs twice in one pattern must match
    structurally equal expressions. *)

type t

val empty : t

val find : t -> string -> Ast.expr option
(** the expression bound to a wildcard name, if any *)

val add : t -> string -> Ast.expr -> t option
(** [add t name expr] binds [name]; [None] when [name] is already bound to
    a structurally different expression. *)

val names : t -> string list
(** bound wildcard names, most recent first *)

val pp : Format.formatter -> t -> unit
