(** A parser for the metal concrete syntax, as published.

    The paper writes checkers in metal, "a language for writing MC
    extensions" whose state-machine part is "syntactically similar to a
    yacc specification".  This module accepts the syntax the paper's
    Figures 2 and 3 use — verbatim — and compiles it to a runnable
    {!Sm.t}:

    {v
      { #include "flash-includes.h" }
      sm wait_for_db {
        decl { scalar } addr, buf;

        pat send_data = { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
                      | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;

        start:
          { WAIT_FOR_DB_FULL(addr); } ==> stop
        | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); } ;
      }
    v}

    Supported:
    - an optional leading [{ ... }] prelude block (includes; skipped — our
      front end inlines the prelude into the checked sources);
    - [decl { kind } names;] wildcard declarations with the kinds
      [scalar], [unsigned], [float], [const] and [any];
    - [pat name = alternatives;] named patterns;
    - state sections [name: rule | rule | ... ;] with rules of the form
      [pattern ==> target], where the target is an optional state name
      (or [stop]) followed by an optional [{ err("..."); }] action —
      exactly the paper's "transition to the (optional) state ... and
      then execute the (optional) action";
    - the special [all] state whose rules apply in every state.

    The first ordinary state defined is the start state, as in metal. *)

exception Parse_error of string * Loc.t
(** the location points at the offending token (or [Loc.none] when no
    position is known), so metal-spec errors print file:line *)

(* line/col of a byte offset; metal sources are small, so a scan per
   reported error is fine *)
let loc_of_offset ~file (src : string) (off : int) : Loc.t =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 in
  let bol = ref 0 in
  for k = 0 to off - 1 do
    if src.[k] = '\n' then begin
      incr line;
      bol := k + 1
    end
  done;
  Loc.make ~file ~line:!line ~col:(off - !bol + 1)

(* attach [loc] to location-free errors raised by helpers below *)
let at_loc (loc : Loc.t) f =
  try f () with
  | Parse_error (msg, l) when Loc.is_none l -> raise (Parse_error (msg, loc))
  | Pattern.Parse_error msg -> raise (Parse_error (msg, loc))

type target = { goto : string option; err : string option }

type rule = { rule_pattern : Pattern.t; target : target }

type t = {
  sm_name : string;
  decls : Pattern.decl list;
  named_patterns : (string * Pattern.t) list;
  states : (string * rule list) list;  (** in declaration order *)
  all_rules : rule list;
}

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Code of string  (** the inside of a balanced [{ ... }] block *)
  | Colon
  | Semi
  | Bar
  | Comma
  | Equals
  | Arrow  (** [==>] *)
  | Eof

(* [loc] maps a body-relative byte offset to a source location; every
   token carries its start offset so the parser can point errors at the
   offending token *)
let tokenize ~(loc : int -> Loc.t) (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (msg, loc !i)) in
  let emit tok start = toks := (tok, start) :: !toks in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment *)
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail "unterminated comment in metal source"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' then begin
      (* balanced code block; braces inside strings are not expected in
         metal patterns *)
      let brace = !i in
      let depth = ref 1 in
      let start = !i + 1 in
      incr i;
      while !depth > 0 && !i < n do
        (match src.[!i] with
        | '{' -> incr depth
        | '}' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then begin
        i := brace;
        fail "unbalanced { in metal source"
      end;
      (* the token points at the first non-blank content character, so
         errors inside the block (a bad pattern, a bad action) land on
         the offending text rather than on the opening brace *)
      let stop = !i - 1 in
      let content_start = ref start in
      while
        !content_start < stop
        &&
        match src.[!content_start] with
        | ' ' | '\t' | '\n' | '\r' -> true
        | _ -> false
      do
        incr content_start
      done;
      let off = if !content_start >= stop then brace else !content_start in
      emit (Code (String.trim (String.sub src start (stop - start)))) off
    end
    else if c = '=' && !i + 2 < n && src.[!i + 1] = '=' && src.[!i + 2] = '>'
    then begin
      emit Arrow !i;
      i := !i + 3
    end
    else if c = '=' then begin
      emit Equals !i;
      incr i
    end
    else if c = ':' then begin
      emit Colon !i;
      incr i
    end
    else if c = ';' then begin
      emit Semi !i;
      incr i
    end
    else if c = '|' then begin
      emit Bar !i;
      incr i
    end
    else if c = ',' then begin
      emit Comma !i;
      incr i
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      emit (Ident (String.sub src start (!i - start))) start
    end
    else fail (Printf.sprintf "unexpected character %C in metal source" c)
  done;
  List.rev ((Eof, n) :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type pstate = {
  mutable toks : (token * int) list;
  loc : int -> Loc.t;  (** body-relative offset to source location *)
}

let peek p = match p.toks with (t, _) :: _ -> t | [] -> Eof

let cur_loc p =
  match p.toks with (_, off) :: _ -> p.loc off | [] -> Loc.none

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let expect p tok what =
  if peek p = tok then advance p
  else raise (Parse_error (Printf.sprintf "expected %s" what, cur_loc p))

let expect_ident p what =
  match peek p with
  | Ident s ->
    advance p;
    s
  | _ -> raise (Parse_error (Printf.sprintf "expected %s" what, cur_loc p))

(* the helpers below have no token position; they raise with [Loc.none]
   and the call sites re-attach the current token's location via
   [at_loc] *)
let kind_of_string = function
  | "scalar" -> Pattern.Scalar
  | "unsigned" -> Pattern.Unsigned_int
  | "float" | "double" -> Pattern.Floating
  | "const" -> Pattern.Constant
  | "any" -> Pattern.Any
  | k -> raise (Parse_error ("unknown wildcard kind " ^ k, Loc.none))

(* the err("...") action inside a code block *)
let parse_action (code : string) : string option =
  let code = String.trim code in
  if code = "" then None
  else
    (* accept   err("message");   possibly with surrounding whitespace *)
    let open_paren =
      try Some (String.index code '(') with Not_found -> None
    in
    match open_paren with
    | Some op when String.length code >= 3 && String.sub code 0 3 = "err" ->
      let rest = String.sub code (op + 1) (String.length code - op - 1) in
      let q1 = try Some (String.index rest '"') with Not_found -> None in
      (match q1 with
      | Some q1 -> (
        match String.index_from_opt rest (q1 + 1) '"' with
        | Some q2 -> Some (String.sub rest (q1 + 1) (q2 - q1 - 1))
        | None -> raise (Parse_error ("unterminated string in err()", Loc.none)))
      | None -> raise (Parse_error ("err() needs a string literal", Loc.none)))
    | _ ->
      raise
        (Parse_error
           ( "unsupported action (only err(\"...\") is supported): " ^ code,
             Loc.none ))

(* Rebase a (line, col) position relative to a snippet onto the file
   location of the snippet's first character. *)
let rebase_snippet_pos (loc : Loc.t) ~line ~col : Loc.t =
  if Loc.is_none loc then loc
  else if line <= 1 then
    Loc.make ~file:loc.Loc.file ~line:loc.Loc.line ~col:(loc.Loc.col + col - 1)
  else Loc.make ~file:loc.Loc.file ~line:(loc.Loc.line + line - 1) ~col

(* a code block used as a pattern: strip a trailing ';' and parse as a
   Clite expression with the declared wildcards.  [loc] is the location
   of the block's first content character; a parse failure inside the
   pattern is rebased onto it, so the error points at the offending
   token of the .metal file (line:col), not at the whole block. *)
let code_to_pattern ~decls ~(loc : Loc.t) (code : string) : Pattern.t =
  let code = String.trim code in
  let code =
    if String.length code > 0 && code.[String.length code - 1] = ';' then
      String.sub code 0 (String.length code - 1)
    else code
  in
  match Pattern.expr_located ~decls code with
  | Ok p -> p
  | Error (msg, line, col) ->
    raise (Parse_error (msg, rebase_snippet_pos loc ~line ~col))

(* pattern alternation: {code} | {code} | name ... *)
let rec parse_pattern_alt p ~decls ~named : Pattern.t =
  let one () =
    match peek p with
    | Code code ->
      let loc = cur_loc p in
      advance p;
      at_loc loc (fun () -> code_to_pattern ~decls ~loc code)
    | Ident name -> (
      let loc = cur_loc p in
      advance p;
      match List.assoc_opt name named with
      | Some pat -> pat
      | None -> raise (Parse_error ("unknown pattern name " ^ name, loc)))
    | _ ->
      raise
        (Parse_error ("expected a pattern ({ code } or a name)", cur_loc p))
  in
  let first = one () in
  if peek p = Bar then begin
    advance p;
    Pattern.alt [ first; parse_pattern_alt p ~decls ~named ]
  end
  else first

(* the right-hand side of ==> : optional state, optional action *)
let parse_target p : target =
  let goto =
    match peek p with
    | Ident s ->
      advance p;
      Some s
    | _ -> None
  in
  let err =
    match peek p with
    | Code code ->
      let loc = cur_loc p in
      advance p;
      at_loc loc (fun () -> parse_action code)
    | _ -> None
  in
  if goto = None && err = None then
    raise
      (Parse_error ("==> needs a state, an action, or both", cur_loc p));
  { goto; err }

(* the result of phase 1: the machine's name and its brace-delimited
   body, plus the offset→location maps the later phases need *)
type source = {
  src_name : string;  (** the [sm] name *)
  src_name_loc : Loc.t;
  src_body : string;  (** the text between the machine's braces *)
  src_loc : int -> Loc.t;
      (** body-relative byte offset → file location *)
}

let split_source ?(file = "<metal>") (src : string) : source =
  (* Phase 1 is textual: strip comments, skip an optional prelude block,
     find "sm <name> { ... }" by brace matching.  Phase 2 (the parsers,
     interpreted and compiled alike) tokenises the body, where every
     remaining { ... } is a pattern or an action.  Comment-stripping
     preserves length and newlines, so byte offsets — and the locations
     derived from them — survive phase 1. *)
  let n = String.length src in
  let no_comments = Bytes.of_string src in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && src.[!i] = '/' && src.[!i + 1] = '*' then begin
      let j = ref (!i + 2) in
      while !j + 1 < n && not (src.[!j] = '*' && src.[!j + 1] = '/') do
        incr j
      done;
      if !j + 1 >= n then
        raise
          (Parse_error
             ("unterminated comment", loc_of_offset ~file src !i));
      for k = !i to !j + 1 do
        if src.[k] <> '\n' then Bytes.set no_comments k ' '
      done;
      i := !j + 2
    end
    else incr i
  done;
  let src = Bytes.to_string no_comments in
  let floc off = loc_of_offset ~file src off in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && (src.[!pos] = ' ' || src.[!pos] = '\t' || src.[!pos] = '\n'
        || src.[!pos] = '\r')
    do
      incr pos
    done
  in
  let match_brace start =
    (* start points at '{'; returns the index just past the matching '}' *)
    let depth = ref 0 in
    let j = ref start in
    let finish = ref (-1) in
    while !finish < 0 && !j < n do
      (match src.[!j] with
      | '{' -> incr depth
      | '}' ->
        decr depth;
        if !depth = 0 then finish := !j + 1
      | _ -> ());
      incr j
    done;
    if !finish < 0 then
      raise (Parse_error ("unbalanced braces", floc start));
    !finish
  in
  skip_ws ();
  (* optional prelude block *)
  if !pos < n && src.[!pos] = '{' then pos := match_brace !pos;
  skip_ws ();
  if not (!pos + 2 <= n && String.sub src !pos 2 = "sm") then
    raise (Parse_error ("expected 'sm'", floc !pos));
  pos := !pos + 2;
  skip_ws ();
  let name_start = !pos in
  while
    !pos < n
    &&
    let c = src.[!pos] in
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  do
    incr pos
  done;
  let sm_name = String.sub src name_start (!pos - name_start) in
  if sm_name = "" then
    raise (Parse_error ("expected the state machine name", floc !pos));
  skip_ws ();
  if !pos >= n || src.[!pos] <> '{' then
    raise
      (Parse_error ("expected '{' after the state machine name", floc !pos));
  let body_end = match_brace !pos in
  let body_start = !pos + 1 in
  let body = String.sub src body_start (body_end - !pos - 2) in
  let body_loc off = floc (body_start + off) in
  {
    src_name = sm_name;
    src_name_loc = floc name_start;
    src_body = body;
    src_loc = body_loc;
  }

let parse ?(file = "<metal>") (src : string) : t =
  let s = split_source ~file src in
  (* phase 2: token stream over the body; token offsets are
     body-relative, [s.src_loc] rebases them onto the whole file *)
  let p = { toks = tokenize ~loc:s.src_loc s.src_body; loc = s.src_loc } in
  let decls = ref [] in
  let named = ref [] in
  let states : (string * rule list) list ref = ref [] in
  let all_rules = ref [] in
  let parse_rules () : rule list =
    let rec rules acc =
      let pat = parse_pattern_alt p ~decls:!decls ~named:!named in
      expect p Arrow "'==>'";
      let target = parse_target p in
      let acc = { rule_pattern = pat; target } :: acc in
      if peek p = Bar then begin
        advance p;
        rules acc
      end
      else begin
        expect p Semi "';' after the state's rules";
        List.rev acc
      end
    in
    rules []
  in
  let rec toplevel () =
    match peek p with
    | Eof -> ()
    | Ident "decl" ->
      advance p;
      let kind =
        match peek p with
        | Code k ->
          let loc = cur_loc p in
          advance p;
          at_loc loc (fun () -> kind_of_string (String.trim k))
        | _ -> raise (Parse_error ("decl needs a '{ kind }'", cur_loc p))
      in
      let rec names () =
        let name = expect_ident p "a wildcard name" in
        decls := (name, kind) :: !decls;
        if peek p = Comma then begin
          advance p;
          names ()
        end
      in
      names ();
      expect p Semi "';' after decl";
      toplevel ()
    | Ident "pat" ->
      advance p;
      let name = expect_ident p "a pattern name" in
      expect p Equals "'='";
      let pat = parse_pattern_alt p ~decls:!decls ~named:!named in
      expect p Semi "';' after pat";
      named := (name, pat) :: !named;
      toplevel ()
    | Ident state_name ->
      advance p;
      expect p Colon "':' after the state name";
      let rules = parse_rules () in
      if state_name = "all" then all_rules := !all_rules @ rules
      else states := (state_name, rules) :: !states;
      toplevel ()
    | _ ->
      raise
        (Parse_error ("expected decl, pat, or a state definition", cur_loc p))
  in
  toplevel ();
  {
    sm_name = s.src_name;
    decls = List.rev !decls;
    named_patterns = List.rev !named;
    states = List.rev !states;
    all_rules = !all_rules;
  }

(* ------------------------------------------------------------------ *)
(* Compilation to a runnable state machine                             *)
(* ------------------------------------------------------------------ *)

(** Compile a parsed metal checker into an engine-ready state machine.
    States are their metal names; execution starts in the first state
    defined, as in metal; [==> stop] abandons the path. *)
let to_sm (t : t) : string Sm.t =
  (* a checker may consist only of [all:] rules (like the Section 11
     refcount objection); give it a vacuous start state *)
  let t =
    if t.states = [] && t.all_rules <> [] then
      { t with states = [ ("start", []) ] }
    else t
  in
  let start_state =
    match t.states with
    | (first, _) :: _ -> first
    | [] -> raise (Parse_error (t.sm_name ^ " defines no states", Loc.none))
  in
  let compile_rule (r : rule) : string Sm.rule =
    Sm.rule r.rule_pattern (fun ctx ->
        (match r.target.err with
        | Some msg -> Sm.err ~checker:t.sm_name ctx "%s" msg
        | None -> ());
        match r.target.goto with
        | Some "stop" -> Sm.Stop
        | Some state -> Sm.Goto state
        | None -> Sm.Stay)
  in
  (* state names are interned so the per-dispatch rule lookup is an
     int-keyed table probe, not a string-compare assoc walk *)
  let compiled_states : (int, string Sm.rule list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (name, rules) ->
      Hashtbl.replace compiled_states (Symtab.intern name)
        (List.map compile_rule rules))
    t.states;
  let all = List.map compile_rule t.all_rules in
  Sm.make ~name:t.sm_name
    ~start:(fun _ -> Some start_state)
    ~rules:(fun state ->
      Option.value ~default:[]
        (Hashtbl.find_opt compiled_states (Symtab.intern state)))
    ~all
    ~state_to_string:(fun s -> s)
    ()

(** Parse a metal source string and return the runnable checker. *)
let load ?file (src : string) : string Sm.t = to_sm (parse ?file src)

(** Load a .metal file from disk; parse errors carry [path:line:col]. *)
let load_file (path : string) : string Sm.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  load ~file:path src
