(** Diagnostics emitted by checkers. *)

type severity = Error | Warning | Note

type t = {
  checker : string;  (** checker name, e.g. ["wait_for_db"] *)
  severity : severity;
  loc : Loc.t;  (** primary source location *)
  message : string;
  func : string;  (** enclosing function *)
  trace : Loc.t list;
      (** the execution path that reached the error, entry first — the
          paper's "back trace" *)
}

val make :
  ?severity:severity ->
  ?trace:Loc.t list ->
  checker:string ->
  loc:Loc.t ->
  func:string ->
  string ->
  t

val severity_string : severity -> string
val pp : Format.formatter -> t -> unit
val pp_with_trace : Format.formatter -> t -> unit
val to_string : t -> string

val compare : t -> t -> int
(** source order, then severity, then message — a stable presentation
    order *)

val normalize : t list -> t list
(** sort and drop duplicates: the same violation is often reachable along
    many paths, but is reported once per site *)

val errors : t list -> t list
val warnings : t list -> t list
