(** Mcheck_api — the session-oriented facade over the whole checking
    pipeline.

    One {!Session.t} wraps frontend → {!Prep} → {!Registry}/{!Mcd} →
    {!Robust} exit policy behind four calls ([create] / [check_*] /
    [stats] / [close]), and is the single entry point every driver —
    [bin/mcheck], [bin/mcheckd], the serve bench — goes through.  A
    session owns the warm state that makes repeated checks cheap: the
    content-hash {!Mcd_cache} survives across [check_*] calls, so a
    long-lived holder (the [mcheckd] daemon) pays the cold cost once and
    serves every later request incrementally.

    Sessions are not thread-safe: concurrent holders (the daemon)
    serialize [check_*] calls externally. *)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  jobs : int;  (** Mcd domain count; 1 = sequential *)
  incremental : bool;
      (** keep the content-hash result cache warm across [check_*]
          calls (and across processes via [cache_file]), plus a
          session-local whole-request memo: a content-identical
          re-check is answered without re-parsing or re-scheduling
          (sound — the pipeline is deterministic in its inputs) *)
  cache_file : string option;
      (** load the cache here at [create], persist it at [close] *)
  cache_dir : string option;
      (** multi-writer shared cache directory: merge every valid
          segment at [create], publish this session's entries with
          {!Session.publish_cache} (and at [close]) — the discipline
          that lets concurrent worker processes share warm results *)
  budget : Engine.budget;  (** per-unit fuel / deadline under Mcd *)
  strict : bool;
      (** fail fast on unreadable or unparseable input instead of
          recovering *)
  checkers : string list;
      (** report only these checkers ([] = all); containment-layer
          ["internal"] entries always pass the filter *)
  metal : (string * Mrun.t) list;
      (** when non-empty, run these loaded metal specs instead of the
          nine built-in checkers — compiled to transition tables or
          interpreted, per {!load_metal}'s mode *)
}

val default_config : config
(** sequential, non-incremental, no budget, recovering parser, all
    checkers — exactly what bare [mcheck FILE] runs *)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  r_parse : Diag.t list;
      (** lex/parse recovery diagnostics, in file order *)
  r_results : (string * Diag.t list) list;
      (** checker-grouped results, selection applied; the containment
          layer's [("internal", _)] entry rides along when present *)
  r_findings : int;  (** non-internal checker diagnostics *)
  r_outcome : Robust.outcome;
  r_sched : Mcd.stats option;  (** present when the Mcd pool ran *)
}

val report_diags : report -> Diag.t list
(** every diagnostic in print order: parse/lex first, then checker
    groups in registry order *)

type render_opts = {
  ro_explain : bool;
  ro_verbose : bool;
  ro_quiet : bool;
}

val render_diag : render_opts -> Diag.t -> string
(** exactly the bytes [mcheck] prints for one diagnostic (trailing
    newline included) — shared by the local CLI path and the daemon's
    streamed frames so the two are byte-identical *)

val print_report : render_opts -> report -> unit
(** the CLI's stdout for a file-mode run: every diagnostic, the
    ["no violations found"] trailer when clean, and the partial/unusable
    outcome log line (via the Mcobs sink) *)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session : sig
  type t

  type stats = {
    requests : int;  (** [check_*] calls served *)
    files_checked : int;
    diags_emitted : int;
    findings : int;
    units_run : int;  (** Mcd units executed (cache misses) *)
    cache_hits : int;
    cache_entries : int;  (** current warm-cache size *)
    check_wall_ms : float;  (** time spent inside [check_*] *)
    uptime_s : float;
  }

  val create : ?config:config -> unit -> t

  (** Every [check_*] call takes an optional [?checkers] selection that
      overrides [config.checkers] for that call only — the daemon uses
      it to honour each request's [-c] flags against the one shared
      session, keeping findings counts (and therefore exit codes)
      identical to a local run with the same flags. *)

  val check_files : ?checkers:string list -> t -> string list -> report
  (** read, parse (recovering unless [strict]), derive the default
      handler spec, run the configured pipeline.  Unreadable files are
      reported on stderr and skipped (or fail the run under
      [strict]). *)

  val check_file : ?checkers:string list -> t -> string -> report

  val check_buffer :
    ?checkers:string list -> t -> name:string -> contents:string -> report
  (** check an in-memory buffer as if it were a file named [name] —
      the editor-traffic entry point *)

  val check_units :
    ?checkers:string list ->
    t -> spec:Flash_api.spec -> Ast.tunit list -> report
  (** check already-parsed units under an explicit protocol spec (the
      corpus path); no parse diagnostics, selection still applies *)

  val check_jobs :
    t -> Mcd.job list -> (string * Diag.t list) list list * report
  (** check several protocols in one pass — one Mcd pool over the whole
      job list, exactly like [mcheck] with no file arguments; the
      per-job result lists keep checker grouping for per-protocol
      printing, the report aggregates *)

  val stats : t -> stats
  val pp_stats : Format.formatter -> stats -> unit

  val publish_cache : t -> unit
  (** publish the warm cache as a content-addressed segment in
      [config.cache_dir] (no-op otherwise); lock-free, atomic, and
      failure-tolerant — errors are counted, never raised *)

  val close : t -> unit
  (** publish to [cache_dir] and persist to [cache_file] when set;
      idempotent *)
end

(* ------------------------------------------------------------------ *)
(* Shared pipeline-wiring helpers (were duplicated across the bins)    *)
(* ------------------------------------------------------------------ *)

val default_spec : Ast.tunit list -> Flash_api.spec
(** the CLI's default protocol spec: every void/no-arg function is a
    hardware handler, as xg++'s default tables assumed *)

val read_sources :
  strict:bool -> string list -> (string * string) list * int
(** read input files (prelude prepended), reporting and skipping
    unreadable ones; returns the survivors and the skip count.
    @raise Robust_exit under [strict] on the first unreadable file *)

exception Robust_exit of Robust.outcome
(** raised by strict-mode input failures after the error has been
    printed; drivers map it to [Robust.exit_code] *)

val parse_strict : (string * string) list -> Ast.tunit list
(** [Frontend.of_strings] with the CLI's fail-fast error reporting.
    @raise Robust_exit on the first parse or lexical error *)

val load_metal :
  ?mode:Mrun.mode -> string list -> ((string * Mrun.t) list, string) result
(** load metal spec files — compiled to transition tables by default
    ([Mrun.Mode_compiled]), or through the interpreter with
    [~mode:Mrun.Mode_interp] (the [--metal-interp] escape hatch).  The
    first unreadable or rejected spec fails the whole load (a broken
    spec makes any run meaningless); the error string carries the
    compiler's located, classified diagnostics, newline-separated *)

val corpus_jobs : Corpus.t -> Mcd.job list
(** one {!Mcd.job} per corpus protocol *)

val render_results : (string * Diag.t list) list list -> string
(** the order-sensitive rendering benches byte-compare pipelines with *)

val time_ms : (unit -> 'a) -> 'a * float

val write_file : string -> string -> unit
(** write [contents] to [path] (the JSON-report helper the bins
    shared) *)
