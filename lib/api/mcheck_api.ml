(* Mcheck_api — the session facade.  See the interface for the contract;
   the implementation is the pipeline wiring that used to live, four
   times over, in bin/mcheck.ml, bin/mcfuzz.ml, bin/mcfault.ml and
   bench/main.ml. *)

type config = {
  jobs : int;
  incremental : bool;
  cache_file : string option;
  cache_dir : string option;
  budget : Engine.budget;
  strict : bool;
  checkers : string list;
  metal : (string * Mrun.t) list;
}

let default_config =
  {
    jobs = 1;
    incremental = false;
    cache_file = None;
    cache_dir = None;
    budget = Engine.no_budget;
    strict = false;
    checkers = [];
    metal = [];
  }

type report = {
  r_parse : Diag.t list;
  r_results : (string * Diag.t list) list;
  r_findings : int;
  r_outcome : Robust.outcome;
  r_sched : Mcd.stats option;
}

let report_diags r = r.r_parse @ List.concat_map snd r.r_results

type render_opts = {
  ro_explain : bool;
  ro_verbose : bool;
  ro_quiet : bool;
}

(* --explain wins, then -v (with path) — the CLI's precedence *)
let render_diag opts d =
  if opts.ro_explain then Format.asprintf "%a@." Diag.pp_explain d
  else if opts.ro_verbose then Format.asprintf "%a@." Diag.pp_with_trace d
  else Format.asprintf "%a@." Diag.pp d

let print_report opts r =
  List.iter (fun d -> print_string (render_diag opts d)) (report_diags r);
  if r.r_findings = 0 && not opts.ro_quiet then
    print_string "no violations found\n";
  if r.r_outcome <> Robust.Clean && r.r_outcome <> Robust.Findings then
    Mcobs.logf Mcobs.Normal "mcheck: run was %s (exit %d)"
      (Robust.to_string r.r_outcome)
      (Robust.exit_code r.r_outcome)

exception Robust_exit of Robust.outcome

(* ------------------------------------------------------------------ *)
(* Shared wiring helpers                                               *)
(* ------------------------------------------------------------------ *)

(* the CLI's default protocol spec: without a protocol specification,
   treat every void/no-arg function as a hardware handler, which is what
   xg++'s default tables did *)
let default_spec (tus : Ast.tunit list) : Flash_api.spec =
  {
    Flash_api.p_name = "<cli>";
    p_handlers =
      List.concat_map
        (fun tu ->
          List.filter_map
            (fun (f : Ast.func) ->
              if Ctype.equal f.Ast.f_ret Ctype.Void && f.Ast.f_params = []
              then
                Some
                  {
                    Flash_api.h_name = f.Ast.f_name;
                    h_kind = Flash_api.Hw_handler;
                    h_lane_allowance = [| 1; 1; 1; 1 |];
                    h_no_stack = false;
                  }
              else None)
            (Ast.functions tu))
        tus;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }

let read_sources ~strict files =
  let skipped = ref 0 in
  let srcs =
    List.filter_map
      (fun path ->
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | src -> Some (path, Prelude.text ^ src)
        | exception Sys_error msg ->
          Printf.eprintf "%s: cannot read: %s\n%!" path msg;
          if strict then raise (Robust_exit Robust.Unusable);
          incr skipped;
          None)
      files
  in
  (srcs, !skipped)

let parse_strict srcs =
  match Frontend.of_strings srcs with
  | tus -> tus
  | exception Parser.Error (msg, loc) ->
    Printf.eprintf "%s: parse error: %s\n%!" (Loc.to_string loc) msg;
    raise (Robust_exit Robust.Unusable)
  | exception Lexer.Error (msg, loc) ->
    Printf.eprintf "%s: lexical error: %s\n%!" (Loc.to_string loc) msg;
    raise (Robust_exit Robust.Unusable)

let load_metal ?(mode = Mrun.Mode_compiled) paths =
  (* errors without a position still name the offending spec file *)
  let render path (e : Mir.error) =
    if Loc.is_none e.Mir.e_loc then
      Printf.sprintf "%s: metal %s: %s" path e.Mir.e_class e.Mir.e_msg
    else Mir.render_error e
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
      match Mrun.load_file ~mode path with
      | Ok m -> go ((path, m) :: acc) rest
      | Error errs ->
        Error (String.concat "\n" (List.map (render path) errs))
      | exception Sys_error msg ->
        Error (Printf.sprintf "%s: cannot read metal spec: %s" path msg))
  in
  go [] paths

let corpus_jobs (c : Corpus.t) =
  List.map
    (fun (p : Corpus.protocol) ->
      { Mcd.spec = p.Corpus.spec; tus = p.Corpus.tus })
    c.Corpus.protocols

let render_results (results : (string * Diag.t list) list list) : string =
  String.concat "\n"
    (List.concat_map
       (fun per_checker ->
         List.concat_map
           (fun (name, ds) -> name :: List.map Diag.to_string ds)
           per_checker)
       results)

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type stats = {
    requests : int;
    files_checked : int;
    diags_emitted : int;
    findings : int;
    units_run : int;
    cache_hits : int;
    cache_entries : int;
    check_wall_ms : float;
    uptime_s : float;
  }

  type t = {
    cfg : config;
    cache : Mcd_cache.t option;
    (* the whole-request memo: an incremental session answers a content-
       identical re-check without re-parsing or re-scheduling at all —
       the unit-level Mcd cache below it handles partial edits.  Sound
       because the pipeline is deterministic in (sources, selection). *)
    memo : (string, report) Hashtbl.t option;
    created_at : float;
    mutable closed : bool;
    mutable requests : int;
    mutable files_checked : int;
    mutable diags_emitted : int;
    mutable findings : int;
    mutable units_run : int;
    mutable cache_hits : int;
    mutable check_wall_ms : float;
  }

  let create ?(config = default_config) () =
    let cache =
      if config.incremental then begin
        let c =
          match config.cache_file with
          | Some f -> Mcd_cache.load f
          | None -> Mcd_cache.create ()
        in
        (* warm up from the shared multi-writer directory: segments
           other worker processes published merge in on top *)
        (match config.cache_dir with
        | Some dir -> Mcd_cache.merge ~into:c (Mcd_cache.load_dir dir)
        | None -> ());
        Some c
      end
      else None
    in
    {
      cfg = config;
      cache;
      memo = (if config.incremental then Some (Hashtbl.create 64) else None);
      created_at = Unix.gettimeofday ();
      closed = false;
      requests = 0;
      files_checked = 0;
      diags_emitted = 0;
      findings = 0;
      units_run = 0;
      cache_hits = 0;
      check_wall_ms = 0.;
    }

  let use_mcd t = t.cfg.jobs > 1 || t.cfg.incremental

  (* per-call selection override (the daemon's per-request [-c] flags)
     falls back to the session config *)
  let effective_checkers t = function
    | Some (_ :: _ as names) -> names
    | Some [] | None -> t.cfg.checkers

  (* containment-layer entries ("internal") always pass the selection:
     they say where coverage was lost *)
  let selected names name =
    names = [] || List.mem name names || String.equal name "internal"

  let count_findings results =
    List.fold_left
      (fun acc (_, ds) ->
        acc
        + List.length (List.filter (fun d -> not (Robust.is_internal d)) ds))
      0 results

  (* the scheduler summary the CLI prints after --jobs/--incremental
     runs; lives here so local and daemon runs log identically *)
  let report_sched_stats stats =
    Mcobs.logf Mcobs.Normal "%a" Mcd.pp_stats_line stats;
    Mcobs.logf Mcobs.Verbose "scheduler: %a" Mcd.pp_stats stats

  (* session-level live metrics: cumulative across every session in
     the process (the daemon swaps sessions on reload; the series must
     not reset with them) *)
  let m_requests =
    Mctel.Metrics.counter ~help:"session check_* calls"
      "mcheck_session_requests_total"

  let m_findings =
    Mctel.Metrics.counter ~help:"non-internal findings reported"
      "mcheck_findings_total"

  let m_check_ms =
    Mctel.Metrics.hist ~help:"wall time inside check_* calls, ms"
      "mcheck_check_ms"

  let m_unit_probes =
    Mctel.Metrics.counter ~help:"Mcd unit cache probes"
      "mcheck_unit_cache_probes_total"

  let m_unit_hits =
    Mctel.Metrics.counter ~help:"Mcd unit cache hits"
      "mcheck_unit_cache_hits_total"

  let m_units_run =
    Mctel.Metrics.counter ~help:"Mcd units executed (cache misses)"
      "mcheck_units_run_total"

  let m_units_faulted =
    Mctel.Metrics.counter ~help:"units ended by the per-unit fault barrier"
      "mcheck_units_faulted_total"

  let m_memo_probes =
    Mctel.Metrics.counter ~help:"whole-request memo probes"
      "mcheck_memo_probes_total"

  let m_memo_hits =
    Mctel.Metrics.counter ~help:"whole-request memo hits"
      "mcheck_memo_hits_total"

  let observe_sched (stats : Mcd.stats) =
    Mctel.Metrics.inc ~by:stats.Mcd.units_total m_unit_probes;
    Mctel.Metrics.inc ~by:stats.Mcd.cache_hits m_unit_hits;
    Mctel.Metrics.inc ~by:stats.Mcd.units_run m_units_run;
    Mctel.Metrics.inc ~by:stats.Mcd.units_faulted m_units_faulted

  (* one checking pass over parsed units: metal specs when configured,
     else the Mcd pool (warm cache) or the product-automaton sequential
     driver *)
  let run_pipeline t ~names ~spec tus =
    if t.cfg.metal <> [] then
      (* one Prep per function, shared across every loaded spec;
         machine-major concatenation keeps the output identical to
         running each spec alone *)
      let diags =
        List.concat
          (Mrun.check_program_fused (List.map snd t.cfg.metal) tus)
      in
      ((if diags = [] then [] else [ ("metal", diags) ]), None, false)
    else if use_mcd t then begin
      let results, stats =
        Mcd.check_corpus ?cache:t.cache ~budget:t.cfg.budget
          ~jobs:t.cfg.jobs ~spec tus
      in
      report_sched_stats stats;
      t.units_run <- t.units_run + stats.Mcd.units_run;
      t.cache_hits <- t.cache_hits + stats.Mcd.cache_hits;
      observe_sched stats;
      ( List.filter (fun (name, _) -> selected names name) results,
        Some stats,
        stats.Mcd.units_faulted > 0 || stats.Mcd.workers_crashed > 0 )
    end
    else
      let results = Registry.run_all_product ~spec tus in
      ( List.filter (fun (name, _) -> selected names name) results,
        None,
        List.exists
          (fun (name, ds) -> String.equal name "internal" && ds <> [])
          results )

  let record t report ~files ~wall_ms =
    t.requests <- t.requests + 1;
    t.files_checked <- t.files_checked + files;
    t.diags_emitted <- t.diags_emitted + List.length (report_diags report);
    t.findings <- t.findings + report.r_findings;
    t.check_wall_ms <- t.check_wall_ms +. wall_ms;
    Mctel.Metrics.inc m_requests;
    Mctel.Metrics.inc ~by:report.r_findings m_findings;
    Mctel.Metrics.observe m_check_ms wall_ms

  (* everything the report depends on, digested *)
  let memo_key ~names srcs ~skipped ~had_input =
    let b = Buffer.create 256 in
    List.iter
      (fun (name, src) ->
        Buffer.add_string b name;
        Buffer.add_char b '\000';
        Buffer.add_string b (Digest.string src))
      srcs;
    Buffer.add_string b (String.concat "," names);
    Buffer.add_string b (Printf.sprintf "|%d|%b" skipped had_input);
    Digest.string (Buffer.contents b)

  let memo_find t key =
    match (t.memo, key) with
    | Some memo, Some key -> Hashtbl.find_opt memo key
    | _ -> None

  let memo_store t key report =
    match (t.memo, key) with
    | Some memo, Some key ->
      (* crude bound: a reset beats an eviction policy at this size *)
      if Hashtbl.length memo >= 512 then Hashtbl.reset memo;
      Hashtbl.replace memo key report
    | _ -> ()

  (* the shared back half: parse the (path, source) pairs, run, classify *)
  let check_sources_uncached t ~names srcs ~skipped ~had_input =
    let (report : report), wall_ms =
      time_ms (fun () ->
          let tus, parse_diags =
            if t.cfg.strict then (parse_strict srcs, [])
            else Frontend.parse_strings srcs
          in
          let spec = default_spec tus in
          let results, sched, units_degraded =
            run_pipeline t ~names ~spec tus
          in
          let findings = count_findings results in
          (* a run where no function survived parsing checked nothing *)
          let survived =
            List.exists (fun tu -> Ast.functions tu <> []) tus
          in
          let outcome =
            Robust.classify
              ~usable:
                (survived
                || (parse_diags = [] && skipped = 0 && had_input))
              ~degraded:(parse_diags <> [] || skipped > 0 || units_degraded)
              ~has_findings:(findings > 0)
          in
          {
            r_parse = parse_diags;
            r_results = results;
            r_findings = findings;
            r_outcome = outcome;
            r_sched = sched;
          })
    in
    record t report ~files:(List.length srcs) ~wall_ms;
    report

  let check_sources t ~names srcs ~skipped ~had_input =
    let key =
      match t.memo with
      | Some _ -> Some (memo_key ~names srcs ~skipped ~had_input)
      | None -> None
    in
    if key <> None then Mctel.Metrics.inc m_memo_probes;
    match memo_find t key with
    | Some report ->
      Mcobs.count "api.memo.hit";
      Mctel.Metrics.inc m_memo_hits;
      t.cache_hits <- t.cache_hits + 1;
      record t report ~files:(List.length srcs) ~wall_ms:0.;
      report
    | None ->
      let report = check_sources_uncached t ~names srcs ~skipped ~had_input in
      memo_store t key report;
      report

  let check_files ?checkers t files =
    Mcobs.with_span "api.check_files" (fun () ->
        let names = effective_checkers t checkers in
        let srcs, skipped = read_sources ~strict:t.cfg.strict files in
        check_sources t ~names srcs ~skipped ~had_input:(files <> []))

  let check_file ?checkers t file = check_files ?checkers t [ file ]

  let check_buffer ?checkers t ~name ~contents =
    Mcobs.with_span "api.check_buffer" (fun () ->
        check_sources t
          ~names:(effective_checkers t checkers)
          [ (name, Prelude.text ^ contents) ]
          ~skipped:0 ~had_input:true)

  let check_units ?checkers t ~spec tus =
    Mcobs.with_span "api.check_units" (fun () ->
        let names = effective_checkers t checkers in
        let report, wall_ms =
          time_ms (fun () ->
              let results, sched, units_degraded =
                run_pipeline t ~names ~spec tus
              in
              let findings = count_findings results in
              let survived =
                List.exists (fun tu -> Ast.functions tu <> []) tus
              in
              let outcome =
                Robust.classify ~usable:survived ~degraded:units_degraded
                  ~has_findings:(findings > 0)
              in
              {
                r_parse = [];
                r_results = results;
                r_findings = findings;
                r_outcome = outcome;
                r_sched = sched;
              })
        in
        record t report ~files:0 ~wall_ms;
        report)

  (* the corpus path: every protocol through one scheduling pass (one
     Mcd pool over the whole job list), per-job result lists preserved
     for per-protocol printing *)
  let check_jobs t (jobs : Mcd.job list) =
    Mcobs.with_span "api.check_jobs" (fun () ->
        let names = t.cfg.checkers in
        let select = List.filter (fun (name, _) -> selected names name) in
        let (results, (report : report)), wall_ms =
          time_ms (fun () ->
              let results, sched, degraded =
                if t.cfg.metal <> [] then
                  ( List.map
                      (fun (j : Mcd.job) ->
                        let diags =
                          List.concat
                            (Mrun.check_program_fused
                               (List.map snd t.cfg.metal)
                               j.Mcd.tus)
                        in
                        if diags = [] then [] else [ ("metal", diags) ])
                      jobs,
                    None,
                    false )
                else if use_mcd t then begin
                  let results, stats =
                    Mcd.check_jobs ?cache:t.cache ~budget:t.cfg.budget
                      ~jobs:t.cfg.jobs jobs
                  in
                  report_sched_stats stats;
                  t.units_run <- t.units_run + stats.Mcd.units_run;
                  t.cache_hits <- t.cache_hits + stats.Mcd.cache_hits;
                  observe_sched stats;
                  ( List.map select results,
                    Some stats,
                    stats.Mcd.units_faulted > 0
                    || stats.Mcd.workers_crashed > 0 )
                end
                else
                  let results =
                    List.map
                      (fun (j : Mcd.job) ->
                        Registry.run_all_product ~spec:j.Mcd.spec j.Mcd.tus)
                      jobs
                  in
                  ( List.map select results,
                    None,
                    List.exists
                      (List.exists (fun (name, ds) ->
                           String.equal name "internal" && ds <> []))
                      results )
              in
              let flat = List.concat results in
              let findings = count_findings flat in
              let survived =
                List.exists
                  (fun (j : Mcd.job) ->
                    List.exists
                      (fun tu -> Ast.functions tu <> [])
                      j.Mcd.tus)
                  jobs
              in
              let outcome =
                Robust.classify ~usable:survived ~degraded
                  ~has_findings:(findings > 0)
              in
              ( results,
                {
                  r_parse = [];
                  r_results = flat;
                  r_findings = findings;
                  r_outcome = outcome;
                  r_sched = sched;
                } ))
        in
        record t report ~files:0 ~wall_ms;
        (results, report))

  let stats t =
    {
      requests = t.requests;
      files_checked = t.files_checked;
      diags_emitted = t.diags_emitted;
      findings = t.findings;
      units_run = t.units_run;
      cache_hits = t.cache_hits;
      cache_entries =
        (match t.cache with Some c -> Mcd_cache.size c | None -> 0);
      check_wall_ms = t.check_wall_ms;
      uptime_s = Unix.gettimeofday () -. t.created_at;
    }

  let pp_stats ppf (s : stats) =
    Format.fprintf ppf
      "requests %d, files %d, diags %d, findings %d, units run %d, cache \
       hits %d, cache entries %d, check wall %.1f ms, uptime %.1f s"
      s.requests s.files_checked s.diags_emitted s.findings s.units_run
      s.cache_hits s.cache_entries s.check_wall_ms s.uptime_s

  (* share this session's warm results with concurrent writers; safe
     to call any time — failures are counted, never raised (a worker
     must not die because the cache directory got hostile) *)
  let publish_cache t =
    match (t.cache, t.cfg.cache_dir) with
    | Some cache, Some dir -> (
      match Mcd_cache.publish_dir cache dir with
      | Ok _ -> ()
      | Error msg ->
        Mcobs.count "mcd.cache.publish.failed";
        Mcobs.logf Mcobs.Verbose "cache publish: %s\n" msg)
    | _ -> ()

  let close t =
    if not t.closed then begin
      t.closed <- true;
      publish_cache t;
      match (t.cache, t.cfg.cache_file) with
      | Some cache, Some path -> Mcd_cache.save cache path
      | _ -> ()
    end
end
