(** The incremental result cache.

    Maps a content-hash key — the per-function-checker set x protocol
    spec x the pretty-printed AST of a function (or, for whole-program
    checkers, the checker identity x spec x its callgraph-reachable
    dependency set) — to the per-checker diagnostic slices that unit
    produced.  Because the key covers everything a unit's result depends
    on, invalidation is automatic: an edited function hashes to a fresh
    key and simply misses.

    A value is one [Diag.t list array]: a function-batched unit stores
    one slice per per-function checker (in registry order); a
    whole-program unit stores a single-element array.

    The scheduler does every lookup and store from the coordinating
    domain (hits are resolved before work is enqueued, misses are stored
    after the pool joins), so the table itself needs no locking; a mutex
    guards it anyway so ad-hoc callers cannot corrupt it.

    [save]/[load] marshal the table to disk, which is what makes
    [mcheck --incremental] re-checks warm across process runs. *)

type t = {
  mutex : Mutex.t;
  table : (string, Diag.t list array) Hashtbl.t;
}

(* bump when the key derivation or the marshalled shape changes *)
let format_tag = "mcd-cache-v3" (* v3: function-batched units, array values *)

let create () = { mutex = Mutex.create (); table = Hashtbl.create 1024 }

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find c key =
  let r = locked c (fun () -> Hashtbl.find_opt c.table key) in
  Mcobs.count "mcd.cache.probe";
  Mcobs.count (if r = None then "mcd.cache.miss" else "mcd.cache.hit");
  r

let add c key diags =
  Mcobs.count "mcd.cache.store";
  locked c (fun () -> Hashtbl.replace c.table key diags)

let size c = locked c (fun () -> Hashtbl.length c.table)

let copy c = locked c (fun () -> { mutex = Mutex.create (); table = Hashtbl.copy c.table })

let save c path =
  locked c (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Marshal.to_channel oc (format_tag, c.table) []))

(* A missing, unreadable or stale-format file is just a cold cache. *)
let load path =
  if not (Sys.file_exists path) then create ()
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          (Marshal.from_channel ic
            : string * (string, Diag.t list array) Hashtbl.t))
    with
    | tag, table when String.equal tag format_tag ->
      { mutex = Mutex.create (); table }
    | _ -> create ()
    | exception _ -> create ()
