(** The incremental result cache.

    Maps a content-hash key — the per-function-checker set x protocol
    spec x the pretty-printed AST of a function (or, for whole-program
    checkers, the checker identity x spec x its callgraph-reachable
    dependency set) — to the per-checker diagnostic slices that unit
    produced.  Because the key covers everything a unit's result depends
    on, invalidation is automatic: an edited function hashes to a fresh
    key and simply misses.

    A value is one [Diag.t list array]: a function-batched unit stores
    one slice per per-function checker (in registry order); a
    whole-program unit stores a single-element array.

    The scheduler does every lookup and store from the coordinating
    domain (hits are resolved before work is enqueued, misses are stored
    after the pool joins), so the table itself needs no locking; a mutex
    guards it anyway so ad-hoc callers cannot corrupt it.

    [save]/[load] marshal the table to disk, which is what makes
    [mcheck --incremental] re-checks warm across process runs.

    {2 Crash safety}

    [Marshal.from_channel] on attacker- or crash-shaped bytes can do
    anything from raising to segfaulting, so the on-disk format defends
    itself *before* unmarshalling: the marshalled payload is followed by
    a fixed 32-byte footer — magic, payload length, MD5 digest — and
    [load] verifies all three against the bytes actually read.  A torn
    write (power loss mid-[save]) fails the length or digest check; a
    flipped byte fails the digest; a file from an older build fails the
    magic or the format tag inside the payload.  Every such file is
    treated as a cold cache, never an error — and [save] itself writes
    to a temp file in the destination directory and [rename]s it into
    place, so a crash mid-save leaves the previous cache intact. *)

type t = {
  mutex : Mutex.t;
  table : (string, Diag.t list array) Hashtbl.t;
}

(* bump when the key derivation or the marshalled shape changes *)
let format_tag = "mcd-cache-v4" (* v4: footer-validated container *)

(* the container: [payload][magic 8][payload length 8][MD5(payload) 16] *)
let footer_magic = "MCDCACH1"
let footer_len = 8 + 8 + 16

let create () = { mutex = Mutex.create (); table = Hashtbl.create 1024 }

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find c key =
  let r = locked c (fun () -> Hashtbl.find_opt c.table key) in
  Mcobs.count "mcd.cache.probe";
  Mcobs.count (if r = None then "mcd.cache.miss" else "mcd.cache.hit");
  r

let add c key diags =
  Mcobs.count "mcd.cache.store";
  locked c (fun () -> Hashtbl.replace c.table key diags)

let size c = locked c (fun () -> Hashtbl.length c.table)

let copy c = locked c (fun () -> { mutex = Mutex.create (); table = Hashtbl.copy c.table })

(* Atomic save: marshal to a string, append the footer, write the whole
   container to a temp file next to [path], then [rename] it into place.
   Readers either see the old cache or the complete new one, never a
   torn file — and if we crash mid-write only the temp file is lost. *)
let save c path =
  locked c (fun () ->
      let payload = Marshal.to_string (format_tag, c.table) [] in
      let footer = Buffer.create footer_len in
      Buffer.add_string footer footer_magic;
      Buffer.add_int64_le footer (Int64.of_int (String.length payload));
      Buffer.add_string footer (Digest.string payload);
      let dir = Filename.dirname path in
      let tmp = Filename.temp_file ~temp_dir:dir "mcd-cache" ".tmp" in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () ->
             output_string oc payload;
             Buffer.output_buffer oc footer);
         Sys.rename tmp path
       with exn ->
         (try Sys.remove tmp with Sys_error _ -> ());
         raise exn))

(* Why a load was cold, for the Mcobs counters: a crash-truncated file
   looks different from a corrupted or stale one, and the fault-injection
   harness asserts each class lands in the right bucket. *)
type load_failure = Partial | Corrupt

let classify_container (data : string) : (string, load_failure) result =
  let len = String.length data in
  if len < footer_len then Error Partial
  else begin
    let payload_len = len - footer_len in
    let magic = String.sub data payload_len 8 in
    let stored_len = String.get_int64_le data (payload_len + 8) in
    let stored_digest = String.sub data (payload_len + 16) 16 in
    if not (String.equal magic footer_magic) then Error Corrupt
    else if stored_len <> Int64.of_int payload_len then Error Partial
    else
      let payload = String.sub data 0 payload_len in
      if not (String.equal (Digest.string payload) stored_digest) then
        Error Corrupt
      else Ok payload
  end

(* A missing, truncated, corrupt or stale-format file is just a cold
   cache — [Marshal.from_string] only ever runs on a payload whose
   length and digest already checked out. *)
let load path =
  let cold reason =
    Mcobs.count ("mcd.cache.load." ^ reason);
    create ()
  in
  if not (Sys.file_exists path) then cold "missing"
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception _ -> cold "error"
    | data -> (
      match classify_container data with
      | Error Partial -> cold "partial"
      | Error Corrupt -> cold "corrupt"
      | Ok payload -> (
        match
          (Marshal.from_string payload 0
            : string * (string, Diag.t list array) Hashtbl.t)
        with
        | tag, table when String.equal tag format_tag ->
          Mcobs.count "mcd.cache.load.ok";
          { mutex = Mutex.create (); table }
        | _ -> cold "stale"
        | exception _ -> cold "corrupt"))

(* ------------------------------------------------------------------ *)
(* Multi-writer cache directories                                      *)
(* ------------------------------------------------------------------ *)

(* Concurrent worker processes share warm results through a directory
   of content-addressed segments: [seg-<md5(payload)>.mc], each a
   complete footer-validated container.  Content addressing makes
   publish races benign — two writers with the same entries race to
   the same name and the loser simply skips — and the claim-file dance
   (O_CREAT|O_EXCL, lock-free) keeps even *different* writers of the
   same segment from doing duplicate work.  Publication itself is the
   classic temp-in-dir + rename, so readers never observe a torn
   segment; corrupt or partial segments (crashed writers, chaos
   injection) are classified and skipped at load exactly like the
   single-file path. *)

let merge ~into src =
  locked src (fun () ->
      locked into (fun () ->
          Hashtbl.iter
            (fun k v ->
              if not (Hashtbl.mem into.table k) then Hashtbl.add into.table k v)
            src.table))

let segment_path dir hex = Filename.concat dir (Printf.sprintf "seg-%s.mc" hex)

let publish_dir c dir =
  let payload =
    locked c (fun () -> Marshal.to_string (format_tag, c.table) [])
  in
  let hex = Digest.to_hex (Digest.string payload) in
  let seg = segment_path dir hex in
  if Sys.file_exists seg then begin
    (* someone already published identical content *)
    Mcobs.count "mcd.cache.publish.dup";
    Ok seg
  end
  else begin
    let claim = seg ^ ".claim" in
    match
      Unix.openfile claim [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644
    with
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      (* another writer is publishing this very content right now —
         its rename will land the same bytes, so ours is redundant *)
      Mcobs.count "mcd.cache.publish.contended";
      Ok seg
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cache claim %s: %s" claim (Unix.error_message e))
    | claim_fd -> (
      (try Unix.close claim_fd with _ -> ());
      let release () = try Sys.remove claim with Sys_error _ -> () in
      match
        let footer = Buffer.create footer_len in
        Buffer.add_string footer footer_magic;
        Buffer.add_int64_le footer (Int64.of_int (String.length payload));
        Buffer.add_string footer (Digest.string payload);
        let tmp = Filename.temp_file ~temp_dir:dir "seg" ".tmp" in
        (try
           let oc = open_out_bin tmp in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc payload;
               Buffer.output_buffer oc footer);
           Sys.rename tmp seg
         with exn ->
           (try Sys.remove tmp with Sys_error _ -> ());
           raise exn)
      with
      | () ->
        release ();
        Mcobs.count "mcd.cache.publish.ok";
        Ok seg
      | exception exn ->
        release ();
        Error (Printexc.to_string exn))
  end

let is_segment name =
  String.length name > 7
  && String.sub name 0 4 = "seg-"
  && Filename.check_suffix name ".mc"

let load_dir dir =
  let acc = create () in
  let cold reason = Mcobs.count ("mcd.cache.dir." ^ reason) in
  (match Sys.readdir dir with
  | exception Sys_error _ -> cold "missing"
  | names ->
    Array.sort String.compare names;
    Array.iter
      (fun name ->
        if is_segment name then begin
          let path = Filename.concat dir name in
          match
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | exception _ -> cold "error"
          | data -> (
            match classify_container data with
            | Error Partial -> cold "partial"
            | Error Corrupt -> cold "corrupt"
            | Ok payload -> (
              match
                (Marshal.from_string payload 0
                  : string * (string, Diag.t list array) Hashtbl.t)
              with
              | tag, table when String.equal tag format_tag ->
                cold "ok";
                merge ~into:acc { mutex = Mutex.create (); table }
              | _ -> cold "stale"
              | exception _ -> cold "corrupt"))
        end)
      names);
  acc
