(** The incremental result cache: content-hash keys (checker set x spec x
    function text) to per-checker diagnostic slices.  Invalidation is
    automatic — editing a function changes its key.  Persistable with
    [save]/[load] for warm re-checks across process runs
    ([mcheck --incremental]). *)

type t

val create : unit -> t

val find : t -> string -> Diag.t list array option
(** a hit returns the unit's per-checker slices: one slice per
    per-function checker for a function-batched unit, a single-element
    array for a whole-program unit *)

val add : t -> string -> Diag.t list array -> unit
val size : t -> int

val copy : t -> t
(** an independent snapshot (used by tests to replay warm runs) *)

val save : t -> string -> unit
(** atomic: the marshalled table plus a magic / length / digest footer is
    written to a temp file in the destination directory and renamed into
    place, so a crash mid-save leaves the previous cache file intact *)

val load : string -> t
(** a missing, truncated, corrupt, or stale-format file yields an empty
    cache — the footer is validated before any unmarshalling runs, and
    the failure class is recorded as an [mcd.cache.load.*] counter
    ([ok] / [missing] / [partial] / [corrupt] / [stale] / [error]) *)

(** {2 Multi-writer cache directories}

    Concurrent worker processes share warm results through a directory
    of content-addressed segments ([seg-<md5>.mc]), each a complete
    footer-validated container.  Writers never take a lock: identical
    content races to the same name (the loser skips), a lock-free claim
    file ([O_CREAT|O_EXCL]) suppresses duplicate publication work, and
    the segment itself lands by temp-file + [rename], so readers never
    observe a torn write.  Corrupt, partial, or stale segments are
    classified and skipped at load ([mcd.cache.dir.*] counters). *)

val merge : into:t -> t -> unit
(** fold [src]'s entries into [into]; existing keys win (results are
    content-addressed, so a duplicate key carries identical value) *)

val publish_dir : t -> string -> (string, string) result
(** atomically publish this cache's entries as one segment in [dir];
    returns the segment path (which may already have existed — identical
    content is deduplicated, a concurrent identical publish is skipped) *)

val load_dir : string -> t
(** merge every valid segment in [dir] into a fresh cache; a missing
    directory or invalid segment is cold data, never an error *)
