(** Mcd — the meta-checking daemon core: a parallel, incremental
    scheduler for function-batched work units.

    A work unit is one function batch: every per-function checker run
    back to back over one shared {!Prep.t} (the CFG and event arrays are
    built once per function per run).  Whole-program checkers contribute
    one unit each.

    Determinism guarantee: for any domain count and any cache state, the
    result lists are diagnostic-for-diagnostic identical — including
    order — to the sequential [Registry.run_all].  Work units write into
    pre-assigned slots and reassembly walks slots in canonical
    (job, function) order, so domain scheduling never shows.

    Incrementality: unit results are cached under content-hash keys
    (the per-function checker set x spec digest x the function's
    pretty-printed AST; whole-program checkers hash their
    callgraph-reachable dependency set instead), so a re-check after
    editing one function re-runs only that function's batch plus any
    inter-procedural checker whose closure the edit invalidates. *)

type job = {
  spec : Flash_api.spec;
  tus : Ast.tunit list;
}
(** one protocol to check *)

type stats = {
  units_total : int;  (** work units scheduled *)
  units_run : int;  (** units actually executed (= cache misses) *)
  cache_hits : int;
  units_faulted : int;
      (** units where a checker crashed or blew its budget and a degraded
          flow-insensitive result was substituted; their ["internal"]
          diagnostics appear as an extra result entry, and their slices
          are never cached *)
  workers_crashed : int;
      (** pool workers whose claim loop died; their orphaned units were
          re-claimed by the coordinator *)
  domains : int;  (** domains actually spawned (after the core clamp) *)
  workers : Mcd_pool.worker_stats array;
      (** per-domain pool statistics, in domain order — derived from the
          domains' [mcd.worker] Mcobs spans, measured once *)
  wall_ms : float;  (** end-to-end wall time of the call *)
}

val domain_wall_ms : stats -> float array
(** wall time per domain, domain order.
    @deprecated derived view over [stats.workers]; prefer the
    [mcd.worker] spans in an [Mcobs.snapshot] *)

val domain_units : stats -> int array
(** units executed per domain.
    @deprecated derived view over [stats.workers]; prefer the
    [mcd.worker] spans in an [Mcobs.snapshot] *)

val check_jobs :
  ?cache:Mcd_cache.t ->
  ?budget:Engine.budget ->
  jobs:int ->
  job list ->
  (string * Diag.t list) list list * stats
(** check every job; per-job results are exactly
    [Registry.run_all ~spec tus].  [jobs] is the requested domain count,
    clamped to [1 .. Domain.recommended_domain_count ()]: oversubscribing
    a small host only adds minor-GC contention, so [--jobs 4] on one core
    degrades to the sequential loop instead of running slower than it.
    With [?cache], hits are resolved before scheduling and misses are
    stored after the pool joins.

    Fault isolation: each checker within a unit runs under [?budget]
    (default {!Engine.no_budget}); an exception or an exhausted budget
    becomes a Warning-severity ["internal"] diagnostic — appended as an
    extra [("internal", _)] entry on that job's result list — plus a
    degraded flow-insensitive retry, while the pool keeps draining.
    Faulted slots are never cached.  On the clean path the results are
    byte-identical to a run without the barrier. *)

val check_corpus :
  ?cache:Mcd_cache.t ->
  ?budget:Engine.budget ->
  jobs:int ->
  spec:Flash_api.spec ->
  Ast.tunit list ->
  (string * Diag.t list) list * stats
(** single-job convenience wrapper *)

val func_digest : string -> Ast.func -> string
(** content hash of one function (file, start location, pretty-printed
    AST) — the per-function half of a cache key *)

val pp_stats : Format.formatter -> stats -> unit

val pp_stats_line : Format.formatter -> stats -> unit
(** the one-line cache-hit / parallel-efficiency summary mcheck prints
    by default after [--jobs]/[--incremental] runs *)
