(** A hand-rolled OCaml 5 domain work pool: [Domain] + an [Atomic] chunk
    cursor over the task array, no locks, no external dependencies.

    Result determinism is the caller's job: tasks should write into
    pre-assigned slots so domain scheduling never shows in the output. *)

type worker_stats = {
  tasks_done : int;  (** work units this domain executed *)
  wall_ms : float;
      (** wall-clock time this domain spent alive — a derived view over
          the single [Mcobs] measurement that also produces the domain's
          [mcd.worker] span *)
}

val run :
  ?chunk:int -> domains:int -> (unit -> unit) array -> worker_stats array
(** Execute every task exactly once across [domains] worker domains
    (clamped to at least 1; the calling domain is worker 0, so
    [~domains:1] is a plain sequential loop).  Workers claim [chunk]
    consecutive tasks per cursor bump (default 1, clamped to at least 1);
    larger chunks amortise contention when tasks are small.  Per-domain
    statistics come back in domain order.  The first exception a task
    raises is re-raised after all domains have joined. *)
