(** A hand-rolled OCaml 5 domain work pool: [Domain] + an [Atomic] chunk
    cursor over the task array, no locks, no external dependencies.

    Result determinism is the caller's job: tasks should write into
    pre-assigned slots so domain scheduling never shows in the output.

    Failure containment: a task exception is remembered and re-raised
    after the join; a *worker* death (an exception escaping the claim
    loop itself) is recorded in that worker's stats and every task it
    had claimed but not completed is re-run by the coordinating domain
    before {!run} returns, so result slots are always complete. *)

type worker_stats = {
  tasks_done : int;  (** work units this domain executed *)
  wall_ms : float;
      (** wall-clock time this domain spent alive — a derived view over
          the single [Mcobs] measurement that also produces the domain's
          [mcd.worker] span *)
  crashed : bool;
      (** the claim loop died (not a mere task exception); its orphaned
          tasks were re-claimed by the coordinator *)
}

exception Killed of string
(** what the test kill hook raises, outside the per-task guard — it
    models a dying worker, not a failing task *)

val set_test_kill : (worker:int -> task:int -> bool) option -> unit
(** test-only: a worker about to start the matching task dies instead
    (raises {!Killed} from its claim loop).  [None] clears the hook.
    Install before {!run}, clear after. *)

val run :
  ?chunk:int -> domains:int -> (unit -> unit) array -> worker_stats array
(** Execute every task exactly once across [domains] worker domains
    (clamped to at least 1; the calling domain is worker 0, so
    [~domains:1] is a plain sequential loop).  Workers claim [chunk]
    consecutive tasks per cursor bump (default 1, clamped to at least 1);
    larger chunks amortise contention when tasks are small.  Per-domain
    statistics come back in domain order.  The first exception a task
    raises is re-raised after all domains have joined and orphaned tasks
    have been re-claimed. *)
