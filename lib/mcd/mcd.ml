(** Mcd — the meta-checking daemon core.

    Schedules *(checker x function)* work units across OCaml 5 domains
    and caches unit results by content hash, so a corpus re-check after
    editing one handler only re-runs the affected units.

    {2 Scheduling model}

    The two-phase checker API ({!Registry.phase}) is what makes the unit
    decomposition sound: every intra-procedural checker runs its state
    machine over one function CFG at a time with no shared state, so a
    [Per_function] checker contributes one unit per function, while a
    [Whole_program] checker ([lanes]) contributes a single unit.  Units
    are drained from an {!Mcd_pool} work queue by worker domains, and
    every unit writes into a pre-assigned result slot; reassembly walks
    the slots in the canonical (job, checker, function) order and applies
    the checker's [finalize], so the output is diagnostic-for-diagnostic
    identical — including order — to the sequential [Registry.run_all],
    whatever the domain count.

    {2 Hashing and invalidation}

    A per-function unit's cache key is
    [checker @ digest(spec) @ digest(file:loc:pretty-printed AST)].  The
    key covers everything the result depends on, so invalidation is
    automatic: editing a function changes its digest and the unit misses;
    every untouched function hits.  A whole-program unit's key replaces
    the function digest with a digest of the checker's *dependency set* —
    the callgraph closure reachable from the spec's handlers — so an
    edit anywhere in that closure (equivalently: any function whose
    reverse-dependency closure meets a handler) re-runs the
    inter-procedural checker, and an edit to dead code does not. *)

type job = { spec : Flash_api.spec; tus : Ast.tunit list }

type stats = {
  units_total : int;
  units_run : int;  (** units actually executed (= cache misses) *)
  cache_hits : int;
  domains : int;
  workers : Mcd_pool.worker_stats array;
      (** per-domain pool statistics, themselves derived from the
          domains' [mcd.worker] Mcobs spans *)
  wall_ms : float;
}

(* Derived accessors over [workers] — these replace the duplicated
   [domain_wall_ms]/[domain_units] array fields, so the per-domain wall
   time is measured exactly once (by the pool, on the Mcobs clock). *)
let domain_wall_ms s =
  Array.map (fun (w : Mcd_pool.worker_stats) -> w.Mcd_pool.wall_ms) s.workers

let domain_units s =
  Array.map
    (fun (w : Mcd_pool.worker_stats) -> w.Mcd_pool.tasks_done)
    s.workers

let checkers = Array.of_list Registry.all

let spec_digest (spec : Flash_api.spec) : string =
  Digest.to_hex (Digest.string (Marshal.to_string spec []))

(* [file] and the function's own location are part of the key: two
   textually identical functions in different places must not share
   diagnostics, whose locations differ.  (Inner locations that shift
   while the function text *and* its start location stay identical are
   not covered — post-cpp text, the paper's input, cannot do that.) *)
let func_digest (file : string) (f : Ast.func) : string =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s:%d:%d:%s" file f.Ast.f_loc.Loc.line
          f.Ast.f_loc.Loc.col
          (Format.asprintf "%a" Pp.pp_func f)))

type prepared = {
  p_job : job;
  p_ctx : Registry.ctx;
  p_funcs : Ast.func array;  (** every function, in source order *)
  p_fdigests : string array Lazy.t;
  p_sdigest : string Lazy.t;
}

let prepare (j : job) : prepared =
  let with_files =
    List.concat_map
      (fun tu ->
        List.map (fun f -> (tu.Ast.tu_file, f)) (Ast.functions tu))
      j.tus
  in
  let funcs = Array.of_list (List.map snd with_files) in
  let files = Array.of_list (List.map fst with_files) in
  {
    p_job = j;
    p_ctx = Registry.make_ctx j.tus;
    p_funcs = funcs;
    p_fdigests =
      lazy (Array.mapi (fun i f -> func_digest files.(i) f) funcs);
    p_sdigest = lazy (spec_digest j.spec);
  }

(* The dependency set of a whole-program checker: every function the
   callgraph can reach from the spec's handlers, digested in sorted name
   order.  Functions outside the closure do not appear, so edits to them
   leave the key — and the cached result — valid. *)
let global_key (p : prepared) (c : Registry.checker) : string =
  let cg = Lazy.force p.p_ctx.Registry.callgraph in
  let roots =
    List.map
      (fun (h : Flash_api.handler_spec) -> h.Flash_api.h_name)
      p.p_job.spec.Flash_api.p_handlers
  in
  let reach =
    List.sort_uniq String.compare (Callgraph.reachable_from cg roots)
  in
  let digests = Lazy.force p.p_fdigests in
  let by_name = Hashtbl.create (Array.length p.p_funcs) in
  Array.iteri
    (fun i (f : Ast.func) ->
      if not (Hashtbl.mem by_name f.Ast.f_name) then
        Hashtbl.add by_name f.Ast.f_name digests.(i))
    p.p_funcs;
  let parts =
    List.map
      (fun n ->
        n ^ "="
        ^ Option.value (Hashtbl.find_opt by_name n) ~default:"undef")
      reach
  in
  Printf.sprintf "%s@%s@%s" c.Registry.name
    (Lazy.force p.p_sdigest)
    (Digest.to_hex (Digest.string (String.concat ";" parts)))

let fn_key (p : prepared) (c : Registry.checker) (fi : int) : string =
  Printf.sprintf "%s@%s@%s" c.Registry.name
    (Lazy.force p.p_sdigest)
    (Lazy.force p.p_fdigests).(fi)

(* Walk every work unit in the canonical (job, checker, function) order,
   assigning consecutive slots.  Used twice — once to build the schedule,
   once to reassemble — so the orders cannot drift apart. *)
let iter_units (prepared : prepared array)
    (per_fn : slot:int -> job:int -> checker:int -> fn:int -> unit)
    (global : slot:int -> job:int -> checker:int -> unit) : int =
  let slot = ref 0 in
  Array.iteri
    (fun ji p ->
      Array.iteri
        (fun ci (c : Registry.checker) ->
          match c.Registry.phase with
          | Registry.Per_function _ ->
            Array.iteri
              (fun fi _ ->
                per_fn ~slot:!slot ~job:ji ~checker:ci ~fn:fi;
                incr slot)
              p.p_funcs
          | Registry.Whole_program _ ->
            global ~slot:!slot ~job:ji ~checker:ci;
            incr slot)
        checkers)
    prepared;
  !slot

let check_jobs ?cache ~jobs (job_list : job list) :
    (string * Diag.t list) list list * stats =
  (* one wall measurement, on the Mcobs clock: it produces both the
     [mcd.schedule] span and [stats.wall_ms] *)
  let t0 = Mcobs.now_us () in
  let prepared =
    Mcobs.with_span "mcd.prepare" (fun () ->
        Array.of_list (List.map prepare job_list))
  in
  let total =
    iter_units prepared
      (fun ~slot:_ ~job:_ ~checker:_ ~fn:_ -> ())
      (fun ~slot:_ ~job:_ ~checker:_ -> ())
  in
  let results = Array.make total [] in
  (* resolve cache hits up front, in the coordinating domain; only the
     misses become pool tasks.  A miss's task is wrapped in an
     [mcd.unit] span carrying its (checker, unit) identity, plus a
     queue-wait histogram sample measured from scheduling to execution
     start on whichever domain picks it up. *)
  let hits = ref 0 in
  let miss_slots = ref [] in
  let miss_keys = ref [] in
  let consider ~slot ~cname ~uname key_of run_of =
    match Option.bind cache (fun c -> Mcd_cache.find c (key_of ())) with
    | Some diags ->
      results.(slot) <- diags;
      incr hits
    | None ->
      let run_of =
        if Mcobs.enabled () then begin
          let enqueued_us = Mcobs.now_us () in
          fun () ->
            Mcobs.observe "mcd.queue_wait_ms"
              ((Mcobs.now_us () -. enqueued_us) /. 1000.);
            Mcobs.with_span "mcd.unit"
              ~args:[ ("checker", cname); ("unit", uname) ]
              run_of
        end
        else run_of
      in
      miss_slots := (slot, run_of) :: !miss_slots;
      if cache <> None then miss_keys := (slot, key_of ()) :: !miss_keys
  in
  (* staged per-function closures are domain-local: a fresh DLS key per
     call keeps one staging table per worker, so spec-dependent state
     machines compile once per (domain, job, checker) and are never
     shared across domains *)
  let stage_key :
      (int * int, Ast.func -> Diag.t list) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 32)
  in
  let staged ~job ~checker : Ast.func -> Diag.t list =
    let tbl = Domain.DLS.get stage_key in
    match Hashtbl.find_opt tbl (job, checker) with
    | Some fn -> fn
    | None ->
      let p = prepared.(job) in
      let fn =
        match checkers.(checker).Registry.phase with
        | Registry.Per_function { check_fn; _ } ->
          check_fn ~spec:p.p_job.spec ~ctx:p.p_ctx
        | Registry.Whole_program _ -> assert false
      in
      Hashtbl.add tbl (job, checker) fn;
      fn
  in
  Mcobs.with_span "mcd.resolve" (fun () ->
      ignore
        (iter_units prepared
           (fun ~slot ~job ~checker ~fn ->
             consider ~slot ~cname:checkers.(checker).Registry.name
               ~uname:prepared.(job).p_funcs.(fn).Ast.f_name
               (fun () -> fn_key prepared.(job) checkers.(checker) fn)
               (fun () ->
                 results.(slot) <-
                   staged ~job ~checker prepared.(job).p_funcs.(fn)))
           (fun ~slot ~job ~checker ->
             consider ~slot ~cname:checkers.(checker).Registry.name
               ~uname:"<whole-program>"
               (fun () -> global_key prepared.(job) checkers.(checker))
               (fun () ->
                 let p = prepared.(job) in
                 match checkers.(checker).Registry.phase with
                 | Registry.Whole_program g ->
                   results.(slot) <- g ~spec:p.p_job.spec p.p_job.tus
                 | Registry.Per_function _ -> assert false))));
  let tasks =
    Array.of_list (List.rev_map (fun (_, run) -> run) !miss_slots)
  in
  let worker_stats =
    Mcobs.with_span "mcd.pool"
      ~args:
        [
          ("domains", string_of_int (max 1 jobs));
          ("tasks", string_of_int (Array.length tasks));
        ]
      (fun () -> Mcd_pool.run ~domains:jobs tasks)
  in
  (* store the fresh results; done after the join so the cache is only
     ever touched from this domain *)
  (match cache with
  | Some c ->
    Mcobs.with_span "mcd.store" (fun () ->
        List.iter (fun (slot, key) -> Mcd_cache.add c key results.(slot))
          !miss_keys)
  | None -> ());
  (* reassemble in canonical order: identical to the sequential run *)
  let out = Array.make (Array.length prepared) [] in
  let acc : Diag.t list list array =
    Array.make (Array.length checkers) []
  in
  let flush_job ji =
    out.(ji) <-
      Array.to_list
        (Array.mapi
           (fun ci (c : Registry.checker) ->
             let ds = List.concat (List.rev acc.(ci)) in
             let ds =
               match c.Registry.phase with
               | Registry.Per_function { finalize; _ } -> finalize ds
               | Registry.Whole_program _ -> ds
             in
             (c.Registry.name, ds))
           checkers);
    Array.fill acc 0 (Array.length acc) []
  in
  let current_job = ref 0 in
  let feed ~slot ~job ~checker =
    if job <> !current_job then begin
      flush_job !current_job;
      current_job := job
    end;
    acc.(checker) <- results.(slot) :: acc.(checker)
  in
  Mcobs.with_span "mcd.reassemble" (fun () ->
      ignore
        (iter_units prepared
           (fun ~slot ~job ~checker ~fn:_ -> feed ~slot ~job ~checker)
           (fun ~slot ~job ~checker -> feed ~slot ~job ~checker));
      if Array.length prepared > 0 then flush_job !current_job);
  let dur_us = Mcobs.now_us () -. t0 in
  Mcobs.record_span ~name:"mcd.schedule"
    ~args:
      [
        ("units", string_of_int total);
        ("hits", string_of_int !hits);
        ("domains", string_of_int (max 1 jobs));
      ]
    ~begin_us:t0 ~dur_us ();
  Mcobs.count ~by:total "mcd.units_total";
  Mcobs.count ~by:(Array.length tasks) "mcd.units_run";
  let stats =
    {
      units_total = total;
      units_run = Array.length tasks;
      cache_hits = !hits;
      domains = max 1 jobs;
      workers = worker_stats;
      wall_ms = dur_us /. 1000.;
    }
  in
  (Array.to_list out, stats)

(** Check one protocol; the result pairs are exactly
    [Registry.run_all ~spec tus]. *)
let check_corpus ?cache ~jobs ~spec (tus : Ast.tunit list) :
    (string * Diag.t list) list * stats =
  match check_jobs ?cache ~jobs [ { spec; tus } ] with
  | [ r ], stats -> (r, stats)
  | _ -> assert false

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d unit(s): %d run, %d cached; %d domain(s), %.1f ms wall"
    s.units_total s.units_run s.cache_hits s.domains s.wall_ms;
  let units = domain_units s in
  Array.iteri
    (fun i ms ->
      Format.fprintf ppf "@\n  domain %d: %d unit(s), %.1f ms" i units.(i)
        ms)
    (domain_wall_ms s)

(* The one-line summary mcheck prints by default after a --jobs or
   --incremental run: cache-hit rate plus parallel efficiency (total
   domain busy time over wall time). *)
let pp_stats_line ppf (s : stats) =
  let busy_ms =
    Array.fold_left
      (fun acc (w : Mcd_pool.worker_stats) -> acc +. w.Mcd_pool.wall_ms)
      0. s.workers
  in
  let hit_pct =
    if s.units_total = 0 then 0.
    else 100. *. float_of_int s.cache_hits /. float_of_int s.units_total
  in
  Format.fprintf ppf
    "mcd: %d unit(s), %d cached (%.1f%% hit), %d run on %d domain(s); \
     %.1f ms wall, %.2fx parallel efficiency"
    s.units_total s.cache_hits hit_pct s.units_run s.domains s.wall_ms
    (if s.wall_ms > 0. then busy_ms /. s.wall_ms else 0.)
