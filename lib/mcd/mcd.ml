(** Mcd — the meta-checking daemon core.

    Schedules function-batched work units across OCaml 5 domains and
    caches unit results by content hash, so a corpus re-check after
    editing one handler only re-runs the affected units.

    {2 Scheduling model}

    The two-phase checker API ({!Registry.phase}) is what makes the unit
    decomposition sound: every intra-procedural checker runs its state
    machine over one function CFG at a time with no shared state.  A work
    unit is one *function batch*: all per-function checkers run back to
    back over one shared {!Prep.t}, so the CFG and event arrays are built
    once per function per run instead of once per (checker x function)
    pair — and a unit is big enough that scheduling overhead cannot
    dominate it.  A [Whole_program] checker ([lanes]) contributes a
    single unit of its own.  Units are claimed in chunks from an
    {!Mcd_pool} atomic cursor by worker domains, and every unit writes
    into a pre-assigned result slot; reassembly walks the slots in the
    canonical (job, function) order and applies each checker's
    [finalize], so the output is diagnostic-for-diagnostic identical —
    including order — to the sequential [Registry.run_all], whatever the
    domain count.

    {2 Hashing and invalidation}

    A function batch's cache key is
    [fnbatch @ digest(per-function checker set) @ digest(spec)
     @ digest(file:loc:pretty-printed AST)].  The key covers everything
    the result depends on, so invalidation is automatic: editing a
    function changes its digest and the unit misses; every untouched
    function hits.  A whole-program unit's key replaces the function
    digest with a digest of the checker's *dependency set* — the
    callgraph closure reachable from the spec's handlers — so an edit
    anywhere in that closure (equivalently: any function whose
    reverse-dependency closure meets a handler) re-runs the
    inter-procedural checker, and an edit to dead code does not. *)

type job = { spec : Flash_api.spec; tus : Ast.tunit list }

type stats = {
  units_total : int;
  units_run : int;  (** units actually executed (= cache misses) *)
  cache_hits : int;
  units_faulted : int;
      (** units where at least one checker crashed or blew its budget
          and a degraded result was substituted *)
  workers_crashed : int;  (** pool workers whose claim loop died *)
  domains : int;
  workers : Mcd_pool.worker_stats array;
      (** per-domain pool statistics, themselves derived from the
          domains' [mcd.worker] Mcobs spans *)
  wall_ms : float;
}

(* Derived accessors over [workers] — these replace the duplicated
   [domain_wall_ms]/[domain_units] array fields, so the per-domain wall
   time is measured exactly once (by the pool, on the Mcobs clock). *)
let domain_wall_ms s =
  Array.map (fun (w : Mcd_pool.worker_stats) -> w.Mcd_pool.wall_ms) s.workers

let domain_units s =
  Array.map
    (fun (w : Mcd_pool.worker_stats) -> w.Mcd_pool.tasks_done)
    s.workers

let checkers = Array.of_list Registry.all

(* indices into [checkers] of the per-function checkers, registry
   order — the order of slices within a batch unit's result *)
let pf_indices : int array =
  checkers
  |> Array.to_seqi
  |> Seq.filter_map (fun (i, (c : Registry.checker)) ->
         match c.Registry.phase with
         | Registry.Per_function _ -> Some i
         | Registry.Whole_program _ -> None)
  |> Array.of_seq

let n_pf = Array.length pf_indices

(* the checker-set half of every batch key: a batch result is only
   reusable by a run scheduling the same per-function checkers in the
   same order *)
let pf_set_digest : string =
  Digest.to_hex
    (Digest.string
       (String.concat ","
          (List.map
             (fun i -> checkers.(i).Registry.name)
             (Array.to_list pf_indices))))

let spec_digest (spec : Flash_api.spec) : string =
  Digest.to_hex (Digest.string (Marshal.to_string spec []))

(* [file] and the function's own location are part of the key: two
   textually identical functions in different places must not share
   diagnostics, whose locations differ.  (Inner locations that shift
   while the function text *and* its start location stay identical are
   not covered — post-cpp text, the paper's input, cannot do that.) *)
let func_digest (file : string) (f : Ast.func) : string =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s:%d:%d:%s" file f.Ast.f_loc.Loc.line
          f.Ast.f_loc.Loc.col
          (Format.asprintf "%a" Pp.pp_func f)))

type prepared = {
  p_job : job;
  p_ctx : Registry.ctx;
  p_funcs : Ast.func array;  (** every function, in source order *)
  p_fdigests : string array Lazy.t;
  p_sdigest : string Lazy.t;
}

let prepare (j : job) : prepared =
  let with_files =
    List.concat_map
      (fun tu ->
        List.map (fun f -> (tu.Ast.tu_file, f)) (Ast.functions tu))
      j.tus
  in
  let funcs = Array.of_list (List.map snd with_files) in
  let files = Array.of_list (List.map fst with_files) in
  {
    p_job = j;
    p_ctx = Registry.make_ctx j.tus;
    p_funcs = funcs;
    p_fdigests =
      lazy (Array.mapi (fun i f -> func_digest files.(i) f) funcs);
    p_sdigest = lazy (spec_digest j.spec);
  }

(* The dependency set of a whole-program checker: every function the
   callgraph can reach from the spec's handlers, digested in sorted name
   order.  Functions outside the closure do not appear, so edits to them
   leave the key — and the cached result — valid. *)
let global_key (p : prepared) (c : Registry.checker) : string =
  let cg = Lazy.force p.p_ctx.Registry.callgraph in
  let roots =
    List.map
      (fun (h : Flash_api.handler_spec) -> h.Flash_api.h_name)
      p.p_job.spec.Flash_api.p_handlers
  in
  let reach =
    List.sort_uniq String.compare (Callgraph.reachable_from cg roots)
  in
  let digests = Lazy.force p.p_fdigests in
  let by_name = Hashtbl.create (Array.length p.p_funcs) in
  Array.iteri
    (fun i (f : Ast.func) ->
      if not (Hashtbl.mem by_name f.Ast.f_name) then
        Hashtbl.add by_name f.Ast.f_name digests.(i))
    p.p_funcs;
  let parts =
    List.map
      (fun n ->
        n ^ "="
        ^ Option.value (Hashtbl.find_opt by_name n) ~default:"undef")
      reach
  in
  Printf.sprintf "%s@%s@%s" c.Registry.name
    (Lazy.force p.p_sdigest)
    (Digest.to_hex (Digest.string (String.concat ";" parts)))

let batch_key (p : prepared) (fi : int) : string =
  Printf.sprintf "fnbatch@%s@%s@%s" pf_set_digest
    (Lazy.force p.p_sdigest)
    (Lazy.force p.p_fdigests).(fi)

(* Walk every work unit in the canonical (job, function batch, global
   checker) order, assigning consecutive slots.  Used twice — once to
   build the schedule, once to reassemble — so the orders cannot drift
   apart. *)
let iter_units (prepared : prepared array)
    (per_batch : slot:int -> job:int -> fn:int -> unit)
    (global : slot:int -> job:int -> checker:int -> unit) : int =
  let slot = ref 0 in
  Array.iteri
    (fun ji p ->
      Array.iteri
        (fun fi _ ->
          per_batch ~slot:!slot ~job:ji ~fn:fi;
          incr slot)
        p.p_funcs;
      Array.iteri
        (fun ci (c : Registry.checker) ->
          match c.Registry.phase with
          | Registry.Whole_program _ ->
            global ~slot:!slot ~job:ji ~checker:ci;
            incr slot
          | Registry.Per_function _ -> ())
        checkers)
    prepared;
  !slot

let describe_fault = Engine.describe_fault

let check_jobs ?cache ?(budget = Engine.no_budget) ~jobs
    (job_list : job list) : (string * Diag.t list) list list * stats =
  (* one wall measurement, on the Mcobs clock: it produces both the
     [mcd.schedule] span and [stats.wall_ms] *)
  let t0 = Mcobs.now_us () in
  let prepared =
    Mcobs.with_span "mcd.prepare" (fun () ->
        Array.of_list (List.map prepare job_list))
  in
  let total =
    iter_units prepared
      (fun ~slot:_ ~job:_ ~fn:_ -> ())
      (fun ~slot:_ ~job:_ ~checker:_ -> ())
  in
  (* a slot holds one unit's per-checker slices: [n_pf] for a function
     batch, one for a whole-program unit *)
  let results : Diag.t list array array = Array.make total [||] in
  (* per-slot fault diagnostics ([checker = "internal"]): written only
     by the worker that owns the slot, like [results] — non-empty means
     the unit degraded and its result must not be cached *)
  let faults : Diag.t list array = Array.make total [] in
  (* resolve cache hits up front, in the coordinating domain; only the
     misses become pool tasks.  A miss's task is wrapped in an
     [mcd.unit] span carrying its (checker, unit) identity, plus a
     queue-wait histogram sample measured from scheduling to execution
     start on whichever domain picks it up. *)
  let hits = ref 0 in
  let miss_slots = ref [] in
  let miss_keys = ref [] in
  let consider ~slot ~cname ~uname key_of run_of =
    match Option.bind cache (fun c -> Mcd_cache.find c (key_of ())) with
    | Some slices ->
      results.(slot) <- slices;
      incr hits
    | None ->
      let run_of =
        if Mcobs.enabled () then begin
          let enqueued_us = Mcobs.now_us () in
          fun () ->
            Mcobs.observe "mcd.queue_wait_ms"
              ((Mcobs.now_us () -. enqueued_us) /. 1000.);
            Mcobs.with_span "mcd.unit"
              ~args:[ ("checker", cname); ("unit", uname) ]
              run_of
        end
        else run_of
      in
      miss_slots := (slot, run_of) :: !miss_slots;
      if cache <> None then miss_keys := (slot, key_of ()) :: !miss_keys
  in
  (* staged per-function closures are domain-local: a fresh DLS key per
     call keeps one staging table per worker, so spec-dependent state
     machines compile once per (domain, job) and are never shared across
     domains.  Alongside the per-checker closures we stage the product
     machines: a batch first runs the composed product walk, and only
     the checkers whose machine turned dirty (or that have no machine)
     re-run individually — same detect-then-rerun contract as
     [Registry.run_all_product], so the slices stay byte-identical. *)
  let stage_key :
      (int, (Prep.t -> Diag.t list) array * Engine.pmachine option array)
      Hashtbl.t
      Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 8)
  in
  let staged ~job :
      (Prep.t -> Diag.t list) array * Engine.pmachine option array =
    let tbl = Domain.DLS.get stage_key in
    match Hashtbl.find_opt tbl job with
    | Some fns -> fns
    | None ->
      let p = prepared.(job) in
      let fns =
        Array.map
          (fun ci ->
            match checkers.(ci).Registry.phase with
            | Registry.Per_function { check_fn; _ } ->
              check_fn ~spec:p.p_job.spec ~ctx:p.p_ctx
            | Registry.Whole_program _ -> assert false)
          pf_indices
      in
      let machines =
        Array.map
          (fun ci ->
            match checkers.(ci).Registry.phase with
            | Registry.Per_function { product; _ } ->
              product ~spec:p.p_job.spec
            | Registry.Whole_program _ -> assert false)
          pf_indices
      in
      Hashtbl.add tbl job (fns, machines);
      (fns, machines)
  in
  (* The per-unit fault barrier.  Each checker within a batch runs under
     the unit budget; an exception (checker bug, injected fault) or an
     exhausted budget is converted into an ["internal"] diagnostic and a
     degraded flow-insensitive retry, and the unit completes either way —
     the pool keeps draining, the other checkers of the batch are
     untouched, and the faulted slot is never cached. *)
  let fault ~loc ~func msg =
    Mcobs.count "mcd.unit.checker_faults";
    Diag.make ~severity:Diag.Warning ~checker:"internal" ~loc ~func msg
  in
  let run_batch ~slot ~job ~fn () =
    let p = prepared.(job) in
    let f = p.p_funcs.(fn) in
    match
      let fns = staged ~job in
      let prep = Prep.build f in
      (fns, prep)
    with
    | exception exn ->
      (* the batch never got off the ground: empty slices for every
         checker, one fault covering the whole unit *)
      results.(slot) <- Array.make n_pf [];
      faults.(slot) <-
        [
          fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
            (Printf.sprintf "function batch could not be prepared (%s); \
                             all checkers skipped for this function"
               (describe_fault exn));
        ]
    | (fns, machines), prep ->
      let out = Array.make n_pf [] in
      let unit_faults = ref [] in
      (* Product fast path: one composed walk detects which machines
         are dirty; clean machine-backed checkers are done (their slice
         is [] by construction).  Only legal when nothing can interfere
         with per-checker semantics — a real budget, degraded mode or
         an armed fault hook sends every checker down the ordinary
         per-checker path, exactly like [Registry.run_all_product]. *)
      let needs_run = Array.make n_pf true in
      if budget = Engine.no_budget && not (Engine.containment_active ())
      then begin
        let idx = ref [] and ms = ref [] in
        Array.iteri
          (fun k m ->
            match m with
            | Some pm ->
              idx := k :: !idx;
              ms := pm :: !ms
            | None -> ())
          machines;
        let pms = Array.of_list (List.rev !ms) in
        let ks = Array.of_list (List.rev !idx) in
        match Engine.product_scan prep pms with
        | dirty ->
          Array.iteri
            (fun mi k -> if not dirty.(mi) then needs_run.(k) <- false)
            ks
        | exception _ ->
          (* overflow or a machine crash: every checker re-runs, and
             any real fault surfaces through its own barrier below *)
          ()
      end;
      Array.iteri
        (fun k chk ->
          if needs_run.(k) then
            match Engine.with_budget budget (fun () -> chk prep) with
            | slices -> out.(k) <- slices
            | exception exn ->
              let cname = checkers.(pf_indices.(k)).Registry.name in
              unit_faults :=
                fault ~loc:f.Ast.f_loc ~func:f.Ast.f_name
                  (Printf.sprintf
                     "checker %s failed (%s); a degraded flow-insensitive \
                      pass was substituted"
                     cname (describe_fault exn))
                :: !unit_faults;
              out.(k) <-
                (try Engine.with_degraded (fun () -> chk prep)
                 with _ -> []))
        fns;
      results.(slot) <- out;
      faults.(slot) <- List.rev !unit_faults
  in
  let run_global ~slot ~job ~checker () =
    let p = prepared.(job) in
    match checkers.(checker).Registry.phase with
    | Registry.Whole_program g ->
      let go () = g ~spec:p.p_job.spec p.p_job.tus in
      (match Engine.with_budget budget go with
      | slice -> results.(slot) <- [| slice |]
      | exception exn ->
        faults.(slot) <-
          [
            fault ~loc:Loc.none ~func:"<whole-program>"
              (Printf.sprintf
                 "whole-program checker %s failed (%s); a degraded \
                  flow-insensitive pass was substituted"
                 checkers.(checker).Registry.name (describe_fault exn));
          ];
        results.(slot) <-
          [| (try Engine.with_degraded go with _ -> []) |])
    | Registry.Per_function _ -> assert false
  in
  Mcobs.with_span "mcd.resolve" (fun () ->
      ignore
        (iter_units prepared
           (fun ~slot ~job ~fn ->
             consider ~slot ~cname:"fnbatch"
               ~uname:prepared.(job).p_funcs.(fn).Ast.f_name
               (fun () -> batch_key prepared.(job) fn)
               (run_batch ~slot ~job ~fn))
           (fun ~slot ~job ~checker ->
             consider ~slot ~cname:checkers.(checker).Registry.name
               ~uname:"<whole-program>"
               (fun () -> global_key prepared.(job) checkers.(checker))
               (run_global ~slot ~job ~checker))));
  let tasks =
    Array.of_list (List.rev_map (fun (_, run) -> run) !miss_slots)
  in
  (* never spawn more domains than the host has cores: extra domains
     only add minor-GC contention, so requesting [--jobs 4] on a 1-core
     box must degrade to the sequential loop, not run slower than it *)
  let domains = min (max 1 jobs) (Domain.recommended_domain_count ()) in
  (* chunked claiming: aim for ~8 chunks per worker so the tail still
     balances while the cursor is touched rarely *)
  let chunk = max 1 (Array.length tasks / (domains * 8)) in
  let worker_stats =
    Mcobs.with_span "mcd.pool"
      ~args:
        [
          ("domains", string_of_int domains);
          ("tasks", string_of_int (Array.length tasks));
          ("chunk", string_of_int chunk);
        ]
      (fun () -> Mcd_pool.run ~chunk ~domains tasks)
  in
  (* store the fresh results; done after the join so the cache is only
     ever touched from this domain.  Faulted slots are not stored: a
     degraded slice must not impersonate a clean result on the next
     run. *)
  (match cache with
  | Some c ->
    Mcobs.with_span "mcd.store" (fun () ->
        List.iter
          (fun (slot, key) ->
            if faults.(slot) = [] then Mcd_cache.add c key results.(slot))
          !miss_keys)
  | None -> ());
  (* reassemble in canonical order: identical to the sequential run.
     [acc_pf.(k)] collects per-function slices for the k-th per-function
     checker, newest first; [acc_g.(ci)] holds a whole-program checker's
     single slice. *)
  let out = Array.make (Array.length prepared) [] in
  let acc_pf : Diag.t list list array = Array.make n_pf [] in
  let acc_g : Diag.t list array = Array.make (Array.length checkers) [] in
  (* a job's unit faults, newest first; a non-empty collection appends
     one ("internal", ...) entry to that job's result list — the clean
     path stays byte-identical to the sequential pipeline *)
  let acc_faults : Diag.t list list ref = ref [] in
  let flush_job ji =
    let pf_pos = ref 0 in
    let entries =
      Array.to_list
        (Array.map
           (fun (c : Registry.checker) ->
             match c.Registry.phase with
             | Registry.Per_function { finalize; _ } ->
               let k = !pf_pos in
               incr pf_pos;
               (c.Registry.name, finalize (List.concat (List.rev acc_pf.(k))))
             | Registry.Whole_program _ ->
               let ci =
                 (* position of [c] in [checkers]; whole-program checkers
                    are rare enough that a scan is fine *)
                 let rec find i =
                   if checkers.(i).Registry.name = c.Registry.name then i
                   else find (i + 1)
                 in
                 find 0
               in
               (c.Registry.name, acc_g.(ci)))
           checkers)
    in
    out.(ji) <-
      (match List.concat (List.rev !acc_faults) with
      | [] -> entries
      | fs -> entries @ [ ("internal", Diag.normalize fs) ]);
    acc_faults := [];
    Array.fill acc_pf 0 n_pf [];
    Array.fill acc_g 0 (Array.length acc_g) []
  in
  let current_job = ref 0 in
  let switch_to job =
    if job <> !current_job then begin
      flush_job !current_job;
      current_job := job
    end
  in
  Mcobs.with_span "mcd.reassemble" (fun () ->
      ignore
        (iter_units prepared
           (fun ~slot ~job ~fn:_ ->
             switch_to job;
             Array.iteri
               (fun k slice -> acc_pf.(k) <- slice :: acc_pf.(k))
               results.(slot);
             match faults.(slot) with
             | [] -> ()
             | fs -> acc_faults := fs :: !acc_faults)
           (fun ~slot ~job ~checker ->
             switch_to job;
             acc_g.(checker) <- results.(slot).(0);
             match faults.(slot) with
             | [] -> ()
             | fs -> acc_faults := fs :: !acc_faults));
      if Array.length prepared > 0 then flush_job !current_job);
  let dur_us = Mcobs.now_us () -. t0 in
  (* the ambient request trace (when a daemon set one) is recorded on
     every span already; naming it in the args makes the scheduler the
     visible join point between server-side spans and the worker spans
     harvested after the pool joins *)
  Mcobs.record_span ~name:"mcd.schedule"
    ~args:
      (("units", string_of_int total)
       :: ("hits", string_of_int !hits)
       :: ("domains", string_of_int domains)
       ::
       (match Mcobs.current_trace () with
       | "" -> []
       | trace -> [ ("trace", trace) ]))
    ~begin_us:t0 ~dur_us ();
  Mcobs.count ~by:total "mcd.units_total";
  Mcobs.count ~by:(Array.length tasks) "mcd.units_run";
  let units_faulted =
    Array.fold_left (fun acc fs -> if fs = [] then acc else acc + 1) 0 faults
  in
  let workers_crashed =
    Array.fold_left
      (fun acc (w : Mcd_pool.worker_stats) ->
        if w.Mcd_pool.crashed then acc + 1 else acc)
      0 worker_stats
  in
  if units_faulted > 0 then Mcobs.count ~by:units_faulted "mcd.units_faulted";
  let stats =
    {
      units_total = total;
      units_run = Array.length tasks;
      cache_hits = !hits;
      units_faulted;
      workers_crashed;
      domains;
      workers = worker_stats;
      wall_ms = dur_us /. 1000.;
    }
  in
  (Array.to_list out, stats)

(** Check one protocol; the result pairs are exactly
    [Registry.run_all ~spec tus]. *)
let check_corpus ?cache ?budget ~jobs ~spec (tus : Ast.tunit list) :
    (string * Diag.t list) list * stats =
  match check_jobs ?cache ?budget ~jobs [ { spec; tus } ] with
  | [ r ], stats -> (r, stats)
  | _ -> assert false

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d unit(s): %d run, %d cached; %d domain(s), %.1f ms wall"
    s.units_total s.units_run s.cache_hits s.domains s.wall_ms;
  let units = domain_units s in
  Array.iteri
    (fun i ms ->
      Format.fprintf ppf "@\n  domain %d: %d unit(s), %.1f ms" i units.(i)
        ms)
    (domain_wall_ms s)

(* The one-line summary mcheck prints by default after a --jobs or
   --incremental run: cache-hit rate plus parallel efficiency (total
   domain busy time over wall time). *)
let pp_stats_line ppf (s : stats) =
  let busy_ms =
    Array.fold_left
      (fun acc (w : Mcd_pool.worker_stats) -> acc +. w.Mcd_pool.wall_ms)
      0. s.workers
  in
  let hit_pct =
    if s.units_total = 0 then 0.
    else 100. *. float_of_int s.cache_hits /. float_of_int s.units_total
  in
  Format.fprintf ppf
    "mcd: %d unit(s), %d cached (%.1f%% hit), %d run on %d domain(s); \
     %.1f ms wall, %.2fx parallel efficiency"
    s.units_total s.cache_hits hit_pct s.units_run s.domains s.wall_ms
    (if s.wall_ms > 0. then busy_ms /. s.wall_ms else 0.);
  if s.units_faulted > 0 then
    Format.fprintf ppf "; %d unit(s) DEGRADED" s.units_faulted;
  if s.workers_crashed > 0 then
    Format.fprintf ppf "; %d worker(s) crashed and re-claimed"
      s.workers_crashed
