(** A hand-rolled OCaml 5 domain work pool.

    [Domain] + [Mutex] + [Condition] and nothing else: tasks are pushed
    onto a mutex-protected queue, worker domains block on the condition
    variable while the queue is empty, and the pool is closed once every
    task has been submitted.  Determinism is the *caller's* job — tasks
    write their results into pre-assigned slots, so the order in which
    domains happen to execute them never shows in the output.

    A task that raises does not bring the pool down: the first exception
    is remembered and re-raised from {!run} after every domain has
    joined, so no work unit is silently dropped mid-queue. *)

type worker_stats = {
  tasks_done : int;  (** work units this domain executed *)
  wall_ms : float;
      (** wall-clock time this domain spent alive — derived from the
          same single [Mcobs] clock measurement that backs the domain's
          [mcd.worker] span *)
}

type 'a queue_state = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  pending : 'a Queue.t;
  mutable closed : bool;
  mutable failure : exn option;
}

let create_queue () =
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    pending = Queue.create ();
    closed = false;
    failure = None;
  }

let push q x =
  Mutex.lock q.mutex;
  Queue.push x q.pending;
  Condition.signal q.nonempty;
  Mutex.unlock q.mutex

let close q =
  Mutex.lock q.mutex;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.mutex

(* Blocking pop: [None] once the queue is closed and drained. *)
let pop q =
  Mutex.lock q.mutex;
  let rec wait () =
    match Queue.take_opt q.pending with
    | Some x ->
      Mutex.unlock q.mutex;
      Some x
    | None ->
      if q.closed then begin
        Mutex.unlock q.mutex;
        None
      end
      else begin
        Condition.wait q.nonempty q.mutex;
        wait ()
      end
  in
  wait ()

let record_failure q exn =
  Mutex.lock q.mutex;
  if q.failure = None then q.failure <- Some exn;
  Mutex.unlock q.mutex

(** Execute every task of [tasks] exactly once across [domains] worker
    domains (clamped to at least 1).  Returns per-domain statistics, in
    domain order.  Re-raises the first task exception after joining.

    Each worker's lifetime is measured exactly once (with the [Mcobs]
    clock): the measurement is recorded as an [mcd.worker] span — the
    per-domain timeline in the Chrome trace — and the same numbers back
    the returned {!worker_stats}, so the two can never disagree. *)
let run ~domains (tasks : (unit -> unit) array) : worker_stats array =
  let domains = max 1 domains in
  let q = create_queue () in
  Array.iter (fun t -> push q t) tasks;
  close q;
  let worker () =
    let t0 = Mcobs.now_us () in
    let count = ref 0 in
    let rec loop () =
      match pop q with
      | None -> ()
      | Some task ->
        (try task () with exn -> record_failure q exn);
        incr count;
        loop ()
    in
    loop ();
    let dur = Mcobs.now_us () -. t0 in
    Mcobs.record_span ~name:"mcd.worker"
      ~args:[ ("tasks", string_of_int !count) ]
      ~begin_us:t0 ~dur_us:dur ();
    { tasks_done = !count; wall_ms = dur /. 1000. }
  in
  let spawned =
    Array.init (domains - 1) (fun _ -> Domain.spawn worker)
  in
  (* the calling domain is worker 0: with [~domains:1] the pool degrades
     to a plain sequential loop with no spawn at all *)
  let mine = worker () in
  let others = Array.map Domain.join spawned in
  (match q.failure with Some exn -> raise exn | None -> ());
  Array.append [| mine |] others
