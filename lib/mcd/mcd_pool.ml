(** A hand-rolled OCaml 5 domain work pool.

    [Domain] + [Atomic] and nothing else: tasks live in an array and
    workers claim contiguous chunks with a single [Atomic.fetch_and_add]
    on a shared cursor.  Claiming is wait-free — no mutex, no condition
    variable, no per-task wakeup — so with one worker the pool degrades
    to a plain [for] loop plus one atomic add per chunk, and oversubscribed
    configurations (more domains than cores) never pay lock-convoy costs.
    Determinism is the *caller's* job — tasks write their results into
    pre-assigned slots, so the order in which domains happen to execute
    them never shows in the output.

    {2 Failure containment}

    A task that raises does not bring the pool down: the first exception
    is remembered (atomically) and re-raised from {!run} after every
    domain has joined, so no work unit is silently dropped mid-queue.

    A *worker* that dies — an exception escaping the claim loop itself
    rather than a task (in practice only the test kill hook, or a
    runtime failure like [Stack_overflow] outside the per-task guard) —
    is contained too: the crash is recorded in that worker's stats, the
    surviving workers keep draining the cursor, and after the join the
    coordinating domain re-claims every task the dead worker had claimed
    but not completed.  Per-task completion flags are what make the
    orphans identifiable; they are plain [bool]s because each slot has a
    single writer and the reader only looks after [Domain.join]'s
    happens-before edge (the coordinator's own re-claim writes are
    trivially safe). *)

type worker_stats = {
  tasks_done : int;  (** work units this domain executed *)
  wall_ms : float;
      (** wall-clock time this domain spent alive — derived from the
          same single [Mcobs] clock measurement that backs the domain's
          [mcd.worker] span *)
  crashed : bool;
      (** the claim loop died (not a mere task exception); any tasks it
          had claimed were re-run by the coordinator *)
}

exception Killed of string
(** what the test kill hook raises — deliberately *outside* the
    per-task guard, so it models a dying worker, not a failing task *)

(* Test-only: the fault-injection harness installs a predicate and a
   worker about to start the matching task dies instead.  Installed
   before [run], cleared after. *)
let kill_hook : (worker:int -> task:int -> bool) option ref = ref None

let set_test_kill h = kill_hook := h

(** Execute every task of [tasks] exactly once across [domains] worker
    domains (clamped to at least 1).  Workers claim [chunk] consecutive
    tasks at a time (default 1); a larger chunk amortises the shared
    cursor when tasks are small and plentiful.  Returns per-domain
    statistics, in domain order.  Re-raises the first task exception
    after joining (and after re-claiming crashed workers' tasks, so the
    result slots are complete either way).

    Each worker's lifetime is measured exactly once (with the [Mcobs]
    clock): the measurement is recorded as an [mcd.worker] span — the
    per-domain timeline in the Chrome trace — and the same numbers back
    the returned {!worker_stats}, so the two can never disagree. *)
let run ?(chunk = 1) ~domains (tasks : (unit -> unit) array) :
    worker_stats array =
  let domains = max 1 domains in
  let chunk = max 1 chunk in
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let completed = Array.make n false in
  let run_task i =
    (try tasks.(i) () with
    | exn -> ignore (Atomic.compare_and_set failure None (Some exn)));
    completed.(i) <- true
  in
  let worker wid () =
    let t0 = Mcobs.now_us () in
    let count = ref 0 in
    let crashed = ref false in
    (try
       let rec loop () =
         let start = Atomic.fetch_and_add next chunk in
         if start < n then begin
           let stop = min n (start + chunk) in
           for i = start to stop - 1 do
             (match !kill_hook with
             | Some k when k ~worker:wid ~task:i ->
               raise (Killed (Printf.sprintf "worker %d at task %d" wid i))
             | _ -> ());
             run_task i;
             incr count
           done;
           loop ()
         end
       in
       loop ()
     with _ ->
       crashed := true;
       Mcobs.count "mcd.pool.worker_crashed");
    let dur = Mcobs.now_us () -. t0 in
    Mcobs.record_span ~name:"mcd.worker"
      ~args:[ ("tasks", string_of_int !count) ]
      ~begin_us:t0 ~dur_us:dur ();
    { tasks_done = !count; wall_ms = dur /. 1000.; crashed = !crashed }
  in
  let spawned =
    Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ()))
  in
  (* the calling domain is worker 0: with [~domains:1] the pool degrades
     to a plain sequential loop with no spawn at all *)
  let mine = worker 0 () in
  let others = Array.map Domain.join spawned in
  (* re-claim: any task a dead worker claimed but never ran.  The kill
     hook is not consulted here, so the sweep always terminates. *)
  let orphans = ref 0 in
  Array.iteri
    (fun i done_ ->
      if not done_ then begin
        incr orphans;
        run_task i
      end)
    completed;
  if !orphans > 0 then Mcobs.count ~by:!orphans "mcd.pool.reclaimed";
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  Array.append [| mine |] others
