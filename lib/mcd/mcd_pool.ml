(** A hand-rolled OCaml 5 domain work pool.

    [Domain] + [Atomic] and nothing else: tasks live in an array and
    workers claim contiguous chunks with a single [Atomic.fetch_and_add]
    on a shared cursor.  Claiming is wait-free — no mutex, no condition
    variable, no per-task wakeup — so with one worker the pool degrades
    to a plain [for] loop plus one atomic add per chunk, and oversubscribed
    configurations (more domains than cores) never pay lock-convoy costs.
    Determinism is the *caller's* job — tasks write their results into
    pre-assigned slots, so the order in which domains happen to execute
    them never shows in the output.

    A task that raises does not bring the pool down: the first exception
    is remembered (atomically) and re-raised from {!run} after every
    domain has joined, so no work unit is silently dropped mid-queue. *)

type worker_stats = {
  tasks_done : int;  (** work units this domain executed *)
  wall_ms : float;
      (** wall-clock time this domain spent alive — derived from the
          same single [Mcobs] clock measurement that backs the domain's
          [mcd.worker] span *)
}

(** Execute every task of [tasks] exactly once across [domains] worker
    domains (clamped to at least 1).  Workers claim [chunk] consecutive
    tasks at a time (default 1); a larger chunk amortises the shared
    cursor when tasks are small and plentiful.  Returns per-domain
    statistics, in domain order.  Re-raises the first task exception
    after joining.

    Each worker's lifetime is measured exactly once (with the [Mcobs]
    clock): the measurement is recorded as an [mcd.worker] span — the
    per-domain timeline in the Chrome trace — and the same numbers back
    the returned {!worker_stats}, so the two can never disagree. *)
let run ?(chunk = 1) ~domains (tasks : (unit -> unit) array) :
    worker_stats array =
  let domains = max 1 domains in
  let chunk = max 1 chunk in
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let worker () =
    let t0 = Mcobs.now_us () in
    let count = ref 0 in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          (try tasks.(i) () with
          | exn -> ignore (Atomic.compare_and_set failure None (Some exn)));
          incr count
        done;
        loop ()
      end
    in
    loop ();
    let dur = Mcobs.now_us () -. t0 in
    Mcobs.record_span ~name:"mcd.worker"
      ~args:[ ("tasks", string_of_int !count) ]
      ~begin_us:t0 ~dur_us:dur ();
    { tasks_done = !count; wall_ms = dur /. 1000. }
  in
  let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
  (* the calling domain is worker 0: with [~domains:1] the pool degrades
     to a plain sequential loop with no spawn at all *)
  let mine = worker () in
  let others = Array.map Domain.join spawned in
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  Array.append [| mine |] others
