(** Mcfuzz program generator.

    Produces seeded, deterministic, *clean* FLASH-style Clite programs:
    every generated program obeys all nine checker disciplines (buffers
    freed exactly once per path, sends length-consistent and within lane
    allowances, directory entries loaded/written back, simulator hooks in
    place, no floats), so any diagnostic difference after {!Fuzz_mutate}
    seeds a bug is attributable to that bug.

    Unlike {!Skeletons} — hand-shaped handler templates for the paper's
    tables — this generator composes handlers from a pool of independent,
    checker-neutral segments in random order, with random arithmetic,
    branches, loops, struct and pointer traffic in between, then
    materialises the program exactly as xg++ consumed post-cpp text:
    pretty-printed and re-parsed through the full front end. *)

open Cb

type program = {
  seed : int;
  spec : Flash_api.spec;
  raw : Ast.tunit;  (** generated AST, prelude not included *)
  src : string;  (** prelude + pretty-printed program *)
  tus : Ast.tunit list;  (** [src] parsed and type-annotated *)
}

(* ------------------------------------------------------------------ *)
(* Generation context                                                  *)
(* ------------------------------------------------------------------ *)

type gctx = {
  rng : Rng.t;
  mutable locals : string list;  (** scalar locals, newest first *)
  mutable n_locals : int;
  mutable uses_ptr : bool;
  helpers : string list;  (** callable pure procedures *)
}

let fresh g =
  let v = Printf.sprintf "fzv%d" g.n_locals in
  g.n_locals <- g.n_locals + 1;
  g.locals <- v :: g.locals;
  v

let pick g = match g.locals with [] -> fresh g | l -> Rng.choose g.rng l

let fld r f = Ast.mk_expr (Ast.Field (r, f))
let addrof e = Ast.mk_expr (Ast.Unop (Ast.Addrof, e))
let deref e = Ast.mk_expr (Ast.Unop (Ast.Deref, e))

(* a small integer-typed expression; never touches dirEntry or buffers *)
let rec value g depth =
  if depth <= 0 then atom g
  else
    match Rng.int g.rng 8 with
    | 0 | 1 -> atom g
    | 2 -> value g (depth - 1) +: atom g
    | 3 -> value g (depth - 1) -: atom g
    | 4 -> value g (depth - 1) ^: atom g
    | 5 -> value g (depth - 1) &: num (Rng.range g.rng 1 255)
    | 6 -> value g (depth - 1) <<: num (Rng.range g.rng 1 3)
    | _ -> value g (depth - 1) |: atom g

and atom g =
  match Rng.int g.rng 8 with
  | 0 -> id (pick g)
  | 1 -> num (Rng.range g.rng 0 4095)
  | 2 -> hg "header.nh.misc"
  | 3 -> id "nodeId"
  | 4 -> fld (id "fzState") (Rng.choose g.rng [ "acc"; "mask" ])
  | 5 ->
    Ast.mk_expr (Ast.Index (id "protoStats", id (pick g) &: num 63))
  | 6 -> Ast.mk_expr (Ast.Cond (atom g, atom g, atom g))
  | _ -> id (pick g)

(* ------------------------------------------------------------------ *)
(* Checker-neutral segments                                            *)
(* ------------------------------------------------------------------ *)

let seg_arith g =
  match Rng.int g.rng 4 with
  | 0 -> [ assign (id (pick g)) (value g 2) ]
  | 1 ->
    [ op_assign (Rng.choose g.rng [ Ast.Add; Ast.Bxor; Ast.Bor ])
        (id (pick g)) (value g 1) ]
  | 2 ->
    [ expr (Ast.mk_expr (Ast.Unop (Ast.Postinc, id (pick g)))) ]
  | _ ->
    [ assign
        (Ast.mk_expr (Ast.Index (id "protoStats", id (pick g) &: num 63)))
        (value g 1) ]

(* strings and character literals through DEBUG_PRINT: grammar coverage
   for the printer's C escaping *)
let seg_debug g =
  let strs =
    [ "fz trace"; "line1\nline2"; "tab\there"; "quo\"te"; "back\\slash";
      "cr\rend" ]
  in
  let chars = [ 'A'; 'z'; '0'; '\n'; '\t'; '\''; '\\' ] in
  [
    do_call "DEBUG_PRINT" [ str (Rng.choose g.rng strs); value g 1 ];
    assign (id (pick g))
      (Ast.mk_expr (Ast.Char_lit (Rng.choose g.rng chars)));
  ]

let seg_for g =
  let v = pick g in
  let init = Ast.Fi_expr (Ast.mk_expr (Ast.Assign (id v, num 0))) in
  let cond = id v <: num (Rng.range g.rng 1 7) in
  let step = Ast.mk_expr (Ast.Assign (id v, id v +: num 1)) in
  [
    Ast.mk_stmt
      (Ast.Sfor (Some init, Some cond, Some step, block (seg_arith g)));
  ]

let seg_do g =
  let v = pick g in
  [
    assign (id v) (num (Rng.range g.rng 1 5));
    Ast.mk_stmt
      (Ast.Sdo
         ( block (seg_arith g @ [ assign (id v) (id v -: num 1) ]),
           id v >: num 0 ));
  ]

let seg_switch g =
  [
    sswitch
      (value g 1 &: num 3)
      [ (num 0, seg_arith g); (num 1, seg_arith g) ]
      (Some (seg_arith g));
  ]

let seg_struct g =
  [
    assign (fld (id "fzState") "acc") (value g 1);
    assign (id (pick g)) (fld (id "fzState") "acc" +: fld (id "fzState") "mask");
  ]

let seg_pointer g =
  g.uses_ptr <- true;
  let v = pick g in
  [
    assign (id "fzp") (addrof (id v));
    assign (deref (id "fzp")) (deref (id "fzp") +: num (Rng.range g.rng 1 9));
  ]

let seg_branch g =
  let arm () =
    match Rng.int g.rng 3 with
    | 0 -> seg_arith g
    | 1 -> seg_struct g
    | _ -> seg_arith g @ seg_arith g
  in
  if Rng.bool g.rng then
    [ sif (value g 1 >: value g 1) (arm ()) ]
  else [ sif_else (value g 1 ==: value g 1) (arm ()) (arm ()) ]

(* a bounded countdown loop; never sends, so the lane fixed-point rule
   ignores it *)
let seg_loop g =
  let v = pick g in
  [
    assign (id v) (num (Rng.range g.rng 1 7));
    swhile
      (id v >: num 0)
      (seg_arith g @ [ assign (id v) (id v -: num 1) ]);
  ]

(* helper calls splice a summary into the caller's lane analysis; the
   helpers are pure so the summary is zero *)
let seg_helper_call g =
  match g.helpers with
  | [] -> seg_arith g
  | hs -> [ assign (id (pick g)) (call (Rng.choose g.rng hs) [ value g 1 ]) ]

(* WAIT_FOR_DB_FULL before the first data-buffer read on the path *)
let seg_wait_read g =
  let v = pick g in
  [
    wait_db (id "addr");
    assign (id v) (read_db (id "addr") (4 * Rng.int g.rng 4));
  ]

(* load / modify / write back, all through DIR_ADDR *)
let seg_dir g =
  [
    load_dir (dir_addr (id "addr"));
    op_assign Ast.Bor (hg "dirEntry.vector") (num (1 lsl Rng.int g.rng 8));
    assign (hg "dirEntry.dirty") (num (Rng.int g.rng 2));
    writeback_dir (dir_addr (id "addr"));
  ]

(* a synchronous send on the processor or I/O interface, paired with the
   matching reply wait *)
let seg_sync_send g ~iface =
  let send, wait =
    match iface with
    | `PI -> (pi_send, Flash_api.wait_for_pi_reply)
    | `IO -> (io_send, Flash_api.wait_for_io_reply)
  in
  ignore g;
  [
    len_assign Flash_api.len_nodata;
    send ~wait:Flash_api.w_wait ~flag:Flash_api.f_nodata ();
    do_call wait [];
  ]

(* an extra asynchronous send, kept within the lane allowance by an
   explicit space check *)
let seg_guarded_send g =
  ignore g;
  [
    do_call Flash_api.wait_for_output_space [ num Flash_api.lane_pi ];
    len_assign Flash_api.len_nodata;
    pi_send ~flag:Flash_api.f_nodata ();
  ]

(* segments legal anywhere in a hardware handler (buffer held) *)
let hw_segment g =
  match Rng.int g.rng 13 with
  | 0 -> seg_arith g
  | 1 -> seg_struct g
  | 2 -> seg_pointer g
  | 3 -> seg_branch g
  | 4 -> seg_loop g
  | 5 -> seg_helper_call g
  | 6 -> seg_wait_read g
  | 7 -> seg_dir g
  | 8 -> seg_debug g
  | 9 -> seg_for g
  | 10 -> seg_do g
  | 11 -> seg_switch g
  | _ -> seg_guarded_send g

(* segments legal in a software handler before it allocates (no buffer:
   no sends, no data-buffer reads) *)
let sw_segment g =
  match Rng.int g.rng 10 with
  | 0 -> seg_arith g
  | 1 -> seg_struct g
  | 2 -> seg_pointer g
  | 3 -> seg_branch g
  | 4 -> seg_loop g
  | 5 -> seg_debug g
  | 6 -> seg_for g
  | 7 -> seg_do g
  | 8 -> seg_switch g
  | _ -> seg_helper_call g

(* ------------------------------------------------------------------ *)
(* Epilogues: every handler path ends having freed its buffer          *)
(* ------------------------------------------------------------------ *)

let data_reply_epilogue g =
  let len, op =
    if Rng.bool g.rng then (Flash_api.len_cacheline, "MSG_PUT")
    else (Flash_api.len_word, "MSG_UNCACHED_REPLY")
  in
  [
    len_assign len;
    type_assign op;
    ni_send ~opcode:op ~flag:Flash_api.f_data ();
    free_db ();
  ]

let nak_epilogue g =
  ignore g;
  [
    type_assign Flash_api.msg_nak;
    len_assign Flash_api.len_nodata;
    ni_send ~opcode:Flash_api.msg_nak ~flag:Flash_api.f_nodata ();
    free_db ();
  ]

(* free the incoming buffer, allocate a fresh reply buffer, check the
   allocation, fill and send it *)
let realloc_epilogue g =
  let buf = fresh g in
  [
    free_db ();
    assign (id buf) (call Flash_api.allocate_db []);
    sif (call Flash_api.alloc_failed [ id buf ]) [ sreturn ];
    write_db (id buf) 0 (hg "header.nh.misc");
    len_assign Flash_api.len_cacheline;
    ni_send ~opcode:"MSG_PUT" ~flag:Flash_api.f_data ();
    free_db ();
  ]

let helper_free_epilogue ~free_helper g =
  ignore g;
  [ do_call free_helper [] ]

let hw_epilogue ?free_helper g =
  match (Rng.int g.rng 4, free_helper) with
  | 0, _ -> data_reply_epilogue g
  | 1, _ -> nak_epilogue g
  | 2, _ -> realloc_epilogue g
  | _, Some h -> helper_free_epilogue ~free_helper:h g
  | _, None -> data_reply_epilogue g

(* ------------------------------------------------------------------ *)
(* Whole functions                                                     *)
(* ------------------------------------------------------------------ *)

let hook_of = function
  | Flash_api.Hw_handler -> Flash_api.sim_handler_hook
  | Flash_api.Sw_handler -> Flash_api.sim_swhandler_hook
  | Flash_api.Procedure -> Flash_api.sim_procedure_hook

let handler_prologue kind =
  [ do_call Flash_api.handler_defs []; do_call (hook_of kind) [] ]

let assemble g ~kind ~name body =
  let decls =
    (if g.uses_ptr then [ decl "fzp" (Ctype.Ptr Ctype.Long) ] else [])
    @ List.rev_map (fun v -> decl_long v) g.locals
    @ [ decl_long "addr"; decl_long "src" ]
  in
  let unpack =
    [
      assign (id "addr") (hg "header.nh.address");
      assign (id "src") (hg "header.nh.src");
    ]
  in
  func name (handler_prologue kind @ decls @ unpack @ body)

let mk_gctx rng helpers =
  { rng; locals = []; n_locals = 0; uses_ptr = false; helpers }

(* The anchor handler: carries one instance of every mutation target —
   a wait/read pair, a directory update, a synchronous send — and ends
   with a data reply (no NAK, so a dropped writeback is never pruned). *)
let main_handler rng helpers =
  let g = mk_gctx rng helpers in
  for _ = 1 to Rng.range g.rng 1 3 do
    ignore (fresh g)
  done;
  let anchors =
    [ seg_wait_read g; seg_dir g;
      seg_sync_send g ~iface:(if Rng.bool g.rng then `PI else `IO) ]
  in
  let extras = List.init (Rng.int g.rng 3) (fun _ -> hw_segment g) in
  (* deterministic shuffle of anchor/extra order: anchors are mutually
     independent, so any interleaving stays clean *)
  let rec weave acc pools =
    match List.filter (( <> ) []) pools with
    | [] -> acc
    | pools ->
      let i = Rng.int g.rng (List.length pools) in
      let seg = List.nth pools i in
      let pools = List.filteri (fun j _ -> j <> i) pools in
      weave (acc @ seg) pools
  in
  let body = weave [] (anchors @ extras) in
  assemble g ~kind:Flash_api.Hw_handler ~name:"FzMain"
    (body @ data_reply_epilogue g)

(* A software-scheduled handler: starts without a buffer, allocates one
   (checked), fills it and sends — the alloc-check mutation target. *)
let sched_handler rng helpers =
  let g = mk_gctx rng helpers in
  let middle = List.concat (List.init (Rng.int g.rng 3) (fun _ -> sw_segment g)) in
  let buf = fresh g in
  let body =
    middle
    @ [
        assign (id buf) (call Flash_api.allocate_db []);
        sif (call Flash_api.alloc_failed [ id buf ]) [ sreturn ];
        write_db (id buf) 0 (hg "header.nh.misc");
        len_assign Flash_api.len_cacheline;
        ni_send ~opcode:"MSG_PUTX" ~flag:Flash_api.f_data ();
        free_db ();
      ]
  in
  assemble g ~kind:Flash_api.Sw_handler ~name:"FzSched" body

let aux_handler rng helpers ?free_helper i =
  let g = mk_gctx rng helpers in
  let segs =
    List.concat (List.init (Rng.range g.rng 1 4) (fun _ -> hw_segment g))
  in
  assemble g ~kind:Flash_api.Hw_handler
    ~name:(Printf.sprintf "FzAux%d" i)
    (segs @ hw_epilogue ?free_helper g)

(* pure integer procedure, callable from any handler *)
let calc_helper rng i =
  let g = mk_gctx rng [] in
  let t = fresh g in
  let body =
    [ do_call Flash_api.sim_procedure_hook []; decl_long t ]
    @ List.concat (List.init (Rng.range g.rng 1 3) (fun _ -> seg_arith g))
    @ [ assign (id t) (value g 2); sreturn_e (id t) ]
  in
  {
    (func
       ~ret:Ctype.Long
       ~params:[ ("x", Ctype.Long) ]
       (Printf.sprintf "FzCalc%d" i)
       body)
    with
    Ast.f_loc = Loc.none;
  }

(* a spec-listed freeing routine: ends without the buffer *)
let free_helper_fn () =
  func "FzFreeBuf"
    [ do_call Flash_api.sim_procedure_hook []; free_db () ]

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)
(* ------------------------------------------------------------------ *)

let struct_global =
  Ast.Gstruct
    ( "fz_state",
      [ ("acc", Ctype.Long); ("mask", Ctype.Long); ("mode", Ctype.Int) ],
      Loc.none )

let state_global =
  Ast.Gvar
    {
      Ast.v_name = "fzState";
      v_type = Ctype.Struct "fz_state";
      v_init = None;
      v_loc = Loc.none;
      v_static = false;
    }

let handler_spec name =
  {
    Flash_api.h_name = name;
    h_kind = Flash_api.Hw_handler;
    h_lane_allowance = [| 1; 1; 1; 1 |];
    h_no_stack = false;
  }

let generate ?(file = "fz.c") ~seed () : program =
  let rng = Rng.create ~seed in
  let n_calc = Rng.range rng 1 2 in
  let helpers = List.init n_calc (Printf.sprintf "FzCalc%d") in
  let with_free_helper = Rng.bool rng in
  let free_helper = if with_free_helper then Some "FzFreeBuf" else None in
  let n_aux = Rng.range rng 1 2 in
  let funcs =
    List.init n_calc (calc_helper rng)
    @ (if with_free_helper then [ free_helper_fn () ] else [])
    @ [ main_handler rng helpers; sched_handler rng helpers ]
    @ List.init n_aux (aux_handler rng helpers ?free_helper)
  in
  let raw =
    {
      Ast.tu_file = file;
      tu_globals =
        (struct_global :: state_global
        :: List.map (fun f -> Ast.Gfunc f) funcs);
    }
  in
  let hw_names =
    "FzMain" :: List.init n_aux (Printf.sprintf "FzAux%d")
  in
  let spec =
    {
      Flash_api.p_name = Printf.sprintf "fuzz-%d" seed;
      p_handlers =
        List.map handler_spec hw_names
        @ [ { (handler_spec "FzSched") with Flash_api.h_kind = Flash_api.Sw_handler } ];
      p_free_funcs = (match free_helper with Some h -> [ h ] | None -> []);
      p_use_funcs = [];
      p_cond_free_funcs = [];
    }
  in
  let src = Prelude.text ^ Pp.tunit_to_string raw in
  let tus = Frontend.of_strings [ (file, src) ] in
  { seed; spec; raw; src; tus }

(** Re-materialise a (possibly mutated) raw unit the same way
    [generate] does. *)
let materialize ?(file = "fz.c") (raw : Ast.tunit) : string * Ast.tunit list =
  let src = Prelude.text ^ Pp.tunit_to_string raw in
  (src, Frontend.of_strings [ (file, src) ])
