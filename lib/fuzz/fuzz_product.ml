(** O8 [product]: the product-automaton driver must equal the fused and
    sequential drivers.

    {!Registry.run_all_product} walks each function once over the
    composed automaton and re-runs only the machines the scan flags
    dirty, so its entire claim is behavioural equivalence: rendered
    diagnostics — per-checker order and content, witnesses upstream of
    the rendering — must be byte-identical to {!Registry.run_all_fused}
    and to the per-checker {!Registry.run_all}.  Every program the
    fuzzer produces is checked under all three drivers.

    [sweep] is the one-shot fixed-input pass — the five corpus
    protocols and both golden-protocol variants — run once per fuzz
    session before the seeded loop; [oracle] is the per-program hook
    shaped for {!Fuzz_driver.run}'s [extra_oracle]. *)

(* product vs fused vs sequential on one program *)
let compare_on ~(seed : int) ~(label : string) ~(spec : Flash_api.spec)
    (tus : Ast.tunit list) : Fuzz_oracle.failure list =
  let rp = Fuzz_oracle.render (Registry.run_all_product ~spec tus)
  and rf = Fuzz_oracle.render (Registry.run_all_fused ~spec tus)
  and rs = Fuzz_oracle.render (Registry.run_all ~spec tus) in
  let diff oracle a b =
    if a <> b then
      Some
        {
          Fuzz_oracle.f_seed = seed;
          f_oracle = oracle;
          f_detail = label ^ ": " ^ Fuzz_oracle.first_diff a b;
        }
    else None
  in
  List.filter_map Fun.id
    [ diff "product-fused" rp rf; diff "product-seq" rp rs ]

(** the per-generated-program hook for {!Fuzz_driver.run}'s
    [extra_oracle] *)
let oracle (p : Fuzz_gen.program) : Fuzz_oracle.failure list =
  compare_on ~seed:p.Fuzz_gen.seed ~label:"fuzz program"
    ~spec:p.Fuzz_gen.spec p.Fuzz_gen.tus

(** the fixed-input pass: every corpus protocol plus both golden
    variants, reported under seed 0 *)
let sweep () : Fuzz_oracle.failure list =
  let corpus = Corpus.generate () in
  let corpus_fs =
    List.concat_map
      (fun (p : Corpus.protocol) ->
        compare_on ~seed:0
          ~label:("corpus " ^ p.Corpus.name)
          ~spec:p.Corpus.spec p.Corpus.tus)
      corpus.Corpus.protocols
  in
  let golden_fs =
    List.concat_map
      (fun (v, lbl) ->
        compare_on ~seed:0 ~label:lbl ~spec:Golden.spec (Golden.program v))
      [ (Golden.Clean, "golden-clean"); (Golden.Buggy, "golden-buggy") ]
  in
  corpus_fs @ golden_fs
