(** O7 [metalc]: the compiled metal back end must equal the interpreter.

    The three in-tree specs are loaded twice — through {!Mrun.compile}
    (parser → typed IR → transition tables → prebuilt engine dispatch)
    and through {!Mrun.interp} ({!Mdsl.load} unchanged) — and every
    program the fuzzer produces is checked under both.  The rendered
    diagnostics (order included) must be byte-identical; since
    {!Fuzz_oracle.keyset} is a projection of the same diagnostics, key
    sets are byte-identical a fortiori.  A third differential holds the
    fused multi-machine driver ({!Mrun.check_program_fused}) to the
    standalone compiled runs, so the [mcheck --metal A --metal B] path
    is covered too.

    [sweep] is the one-shot fixed-input pass — the five corpus
    protocols and both golden-protocol variants — run once per fuzz
    session before the seeded loop; [oracle] is the per-program hook
    shaped for {!Fuzz_driver.run}'s [extra_oracle]. *)

type t = {
  specs : (string * Mrun.t * Mrun.t) list;
      (** name, compiled back end, interpreted back end *)
}

let spec_names = [ "wait_for_db"; "msglen_check"; "refcount" ]

(* the test and bench binaries run from _build/default/<dir>; walk up
   until the in-tree metal/ directory appears *)
let find_spec_dir () =
  List.find_opt
    (fun d -> Sys.file_exists (Filename.concat d "wait_for_db.metal"))
    [
      "metal";
      "../metal";
      "../../metal";
      "../../../metal";
      "../../../../metal";
    ]

let create () : (t, string) result =
  match find_spec_dir () with
  | None -> Error "metalc oracle: cannot locate the in-tree metal/ directory"
  | Some dir ->
    let load1 name =
      let path = Filename.concat dir (name ^ ".metal") in
      match
        ( Mrun.load_file ~mode:Mrun.Mode_compiled path,
          Mrun.load_file ~mode:Mrun.Mode_interp path )
      with
      | Ok c, Ok i -> Ok (name, c, i)
      | Error es, _ | _, Error es ->
        Error
          (Printf.sprintf "metalc oracle: %s: %s" path
             (String.concat "; " (List.map Mir.render_error es)))
    in
    let rec load acc = function
      | [] -> Ok { specs = List.rev acc }
      | n :: rest -> (
        match load1 n with
        | Ok s -> load (s :: acc) rest
        | Error e -> Error e)
    in
    load [] spec_names

(* compiled vs interpreted on one program, all three machines *)
let compare_on (t : t) ~(seed : int) ~(label : string)
    (tus : Ast.tunit list) : Fuzz_oracle.failure list =
  let per_machine =
    List.filter_map
      (fun (name, compiled, interp) ->
        let rc = Fuzz_oracle.render [ (name, Mrun.check compiled (`Program tus)) ]
        and ri = Fuzz_oracle.render [ (name, Mrun.check interp (`Program tus)) ] in
        if rc <> ri then
          Some
            {
              Fuzz_oracle.f_seed = seed;
              f_oracle = "metalc-" ^ name;
              f_detail = label ^ ": " ^ Fuzz_oracle.first_diff rc ri;
            }
        else None)
      t.specs
  in
  (* fused driver (one shared Prep.t per function across machines) must
     equal the standalone compiled runs *)
  let fused =
    Mrun.check_program_fused (List.map (fun (_, c, _) -> c) t.specs) tus
  in
  let fused_diffs =
    List.map2
      (fun (name, compiled, _) ds ->
        let rf = Fuzz_oracle.render [ (name, ds) ]
        and rs = Fuzz_oracle.render [ (name, Mrun.check compiled (`Program tus)) ] in
        if rf <> rs then
          Some
            {
              Fuzz_oracle.f_seed = seed;
              f_oracle = "metalc-fused-" ^ name;
              f_detail = label ^ ": " ^ Fuzz_oracle.first_diff rf rs;
            }
        else None)
      t.specs fused
    |> List.filter_map Fun.id
  in
  per_machine @ fused_diffs

(** the per-generated-program hook for {!Fuzz_driver.run}'s
    [extra_oracle] *)
let oracle (t : t) (p : Fuzz_gen.program) : Fuzz_oracle.failure list =
  compare_on t ~seed:p.Fuzz_gen.seed ~label:"fuzz program" p.Fuzz_gen.tus

(** the fixed-input pass: every corpus protocol plus both golden
    variants, reported under seed 0 *)
let sweep (t : t) : Fuzz_oracle.failure list =
  let corpus = Corpus.generate () in
  let corpus_fs =
    List.concat_map
      (fun (p : Corpus.protocol) ->
        compare_on t ~seed:0 ~label:("corpus " ^ p.Corpus.name) p.Corpus.tus)
      corpus.Corpus.protocols
  in
  let golden_fs =
    List.concat_map
      (fun (v, lbl) -> compare_on t ~seed:0 ~label:lbl (Golden.program v))
      [ (Golden.Clean, "golden-clean"); (Golden.Buggy, "golden-buggy") ]
  in
  corpus_fs @ golden_fs
