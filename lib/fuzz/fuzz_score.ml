(** Recall/precision scoring of seeded bugs.

    For every mutant we diff the mutant's diagnostics against its clean
    parent's (as location-free multisets).  A seeded bug is *detected*
    when the diff contains a new diagnostic from the expected checker
    blaming the mutated function.  New diagnostics from other checkers
    are cross-talk and charge those checkers' precision — echoing the
    shape of the paper's Tables 1-7 (bugs vs false positives per
    checker). *)

type row = {
  mutable seeded : int;  (** mutations labelled with this checker *)
  mutable detected : int;  (** ... where the checker blamed the function *)
  mutable expected_new : int;  (** new diags from the expected checker *)
  mutable cross : int;  (** new diags charged while another checker was
                            the expected one *)
}

type t = {
  rows : (string, row) Hashtbl.t;
  mutable programs : int;
  mutable mutants : int;
  mutable oracle_failures : int;
}

let create () =
  { rows = Hashtbl.create 16; programs = 0; mutants = 0; oracle_failures = 0 }

let row t name =
  match Hashtbl.find_opt t.rows name with
  | Some r -> r
  | None ->
    let r = { seeded = 0; detected = 0; expected_new = 0; cross = 0 } in
    Hashtbl.add t.rows name r;
    r

(* location-free multiset difference: keys of [mutated] minus [baseline] *)
let new_diags ~(baseline : (string * Diag.t list) list)
    ~(mutated : (string * Diag.t list) list) : Diag.t list =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun d ->
          let k = Diag.key d in
          Hashtbl.replace counts k
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        ds)
    baseline;
  List.concat_map
    (fun (_, ds) ->
      List.filter
        (fun d ->
          let k = Diag.key d in
          match Hashtbl.find_opt counts k with
          | Some n when n > 0 ->
            Hashtbl.replace counts k (n - 1);
            false
          | _ -> true)
        ds)
    mutated

let record_program t = t.programs <- t.programs + 1
let record_oracle_failures t n = t.oracle_failures <- t.oracle_failures + n

(** Score one mutant against its clean parent. *)
let record_mutant t (m : Fuzz_mutate.mutation)
    ~(baseline : (string * Diag.t list) list)
    ~(mutated : (string * Diag.t list) list) =
  t.mutants <- t.mutants + 1;
  let fresh = new_diags ~baseline ~mutated in
  let expected = row t m.Fuzz_mutate.m_checker in
  expected.seeded <- expected.seeded + 1;
  let hit =
    List.exists
      (fun d ->
        String.equal d.Diag.checker m.Fuzz_mutate.m_checker
        && String.equal d.Diag.func m.Fuzz_mutate.m_func)
      fresh
  in
  if hit then expected.detected <- expected.detected + 1;
  List.iter
    (fun d ->
      if String.equal d.Diag.checker m.Fuzz_mutate.m_checker then
        expected.expected_new <- expected.expected_new + 1
      else (row t d.Diag.checker).cross <- (row t d.Diag.checker).cross + 1)
    fresh;
  hit

let checkers_sorted t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rows []
  |> List.sort String.compare

let recall r = if r.seeded = 0 then 1.0 else float r.detected /. float r.seeded

let precision r =
  let reported = r.expected_new + r.cross in
  if reported = 0 then 1.0 else float r.expected_new /. float reported

let overall_recall t =
  let seeded = Hashtbl.fold (fun _ r a -> a + r.seeded) t.rows 0 in
  let detected = Hashtbl.fold (fun _ r a -> a + r.detected) t.rows 0 in
  if seeded = 0 then 1.0 else float detected /. float seeded

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let table t : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-14s %8s %9s %11s %11s %7s %10s\n" "checker" "seeded"
       "detected" "recall" "new-diags" "cross" "precision");
  List.iter
    (fun c ->
      let r = Hashtbl.find t.rows c in
      Buffer.add_string b
        (Printf.sprintf "%-14s %8d %9d %10.1f%% %11d %7d %9.1f%%\n" c r.seeded
           r.detected (100. *. recall r) r.expected_new r.cross
           (100. *. precision r)))
    (checkers_sorted t);
  Buffer.add_string b
    (Printf.sprintf
       "overall: %d programs, %d mutants, recall %.1f%%, %d oracle \
        disagreement(s)\n"
       t.programs t.mutants
       (100. *. overall_recall t)
       t.oracle_failures);
  Buffer.contents b

let to_json t : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"programs\": %d,\n" t.programs);
  Buffer.add_string b (Printf.sprintf "  \"mutants\": %d,\n" t.mutants);
  Buffer.add_string b
    (Printf.sprintf "  \"oracle_failures\": %d,\n" t.oracle_failures);
  Buffer.add_string b
    (Printf.sprintf "  \"overall_recall\": %.4f,\n" (overall_recall t));
  Buffer.add_string b "  \"checkers\": [\n";
  let cs = checkers_sorted t in
  List.iteri
    (fun i c ->
      let r = Hashtbl.find t.rows c in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"checker\": %S, \"seeded\": %d, \"detected\": %d, \
            \"recall\": %.4f, \"expected_new\": %d, \"cross\": %d, \
            \"precision\": %.4f}%s\n"
           c r.seeded r.detected (recall r) r.expected_new r.cross
           (precision r)
           (if i < List.length cs - 1 then "," else "")))
    cs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_json t path =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc
