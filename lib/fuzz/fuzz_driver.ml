(** The Mcfuzz campaign loop, shared by [bin/mcfuzz], [bench fuzz] and
    the test-suite smoke run.

    Per seed: generate a clean program, run the five differential
    oracles on it, then (optionally) seed every applicable mutation,
    re-materialise, score detection against the clean baseline, and
    cross-check each mutant's parallel run against a cache warmed by its
    clean sibling — the incremental-invalidation differential. *)

type outcome = {
  score : Fuzz_score.t;
  failures : Fuzz_oracle.failure list;
}

(* [extra_oracle] lets a caller bolt an additional differential onto
   every clean program — the daemon-vs-CLI oracle lives behind it, so
   this library never depends on the serving stack *)
let run ?(log = fun _ -> ()) ?(kinds = Fuzz_mutate.all_kinds)
    ?(extra_oracle = fun (_ : Fuzz_gen.program) -> []) ~base_seed ~count
    ~mutate () : outcome =
  let score = Fuzz_score.create () in
  let failures = ref [] in
  let shared_cache = Mcd_cache.create () in
  for i = 0 to count - 1 do
    let seed = base_seed + i in
    let p = Fuzz_gen.generate ~seed () in
    let baseline, fs =
      Fuzz_oracle.check ~shared_cache ~seed ~spec:p.Fuzz_gen.spec
        ~tus:p.Fuzz_gen.tus ()
    in
    let efs = extra_oracle p in
    failures := efs @ fs @ !failures;
    Fuzz_score.record_program score;
    Fuzz_score.record_oracle_failures score (List.length fs + List.length efs);
    if mutate then begin
      let mrng = Rng.create ~seed:(seed lxor 0x5EED0) in
      List.iter
        (fun kind ->
          match Fuzz_mutate.apply mrng kind p.Fuzz_gen.raw with
          | None -> ()
          | Some (raw', m) ->
            let _src, tus' = Fuzz_gen.materialize raw' in
            let seq = Registry.run_all ~spec:p.Fuzz_gen.spec tus' in
            (* the shared cache holds this mutant's clean sibling: stale
               entries for the mutated function must be invalidated *)
            let par =
              fst
                (Mcd.check_corpus ~cache:shared_cache ~jobs:2
                   ~spec:p.Fuzz_gen.spec tus')
            in
            if Fuzz_oracle.render par <> Fuzz_oracle.render seq then begin
              failures :=
                {
                  Fuzz_oracle.f_seed = seed;
                  f_oracle = "mutant-cache";
                  f_detail = m.Fuzz_mutate.m_desc;
                }
                :: !failures;
              Fuzz_score.record_oracle_failures score 1
            end;
            ignore (Fuzz_score.record_mutant score m ~baseline ~mutated:seq))
        kinds
    end;
    log (i + 1)
  done;
  { score; failures = List.rev !failures }
