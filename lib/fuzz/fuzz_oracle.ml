(** Differential oracles over the checking pipeline.

    Every generated program (clean or mutated) is pushed through five
    pipelines that must agree:

    + O1 [mcd-jobs2]: {!Mcd.check_corpus} with two domains must equal the
      sequential {!Registry.run_all}, diagnostic for diagnostic,
      including order;
    + O2 [mcd-jobs4]: the same with four domains;
    + O3 [cache]: a cold-cache run, an immediately repeated warm-cache
      run, and runs against a long-lived cache shared across many
      programs (so entries from *other* programs — and from the clean
      sibling of a mutant — must never leak in) all equal the sequential
      results;
    + O4 [fused]: {!Registry.run_all_fused} — one shared {!Prep.t} per
      function across all checkers — must equal the per-checker
      sequential path;
    + O5 [roundtrip]: pretty-print, re-lex, re-parse, re-check: printing
      must reach a fixpoint, the AST must survive structurally, and the
      re-checked diagnostics must match modulo source locations. *)

type failure = {
  f_seed : int;
  f_oracle : string;
  f_detail : string;
}

let pp_failure ppf f =
  Format.fprintf ppf "seed %d: oracle %s: %s" f.f_seed f.f_oracle f.f_detail

(* the order-sensitive rendering used for Mcd comparisons *)
let render (results : (string * Diag.t list) list) : string list =
  List.concat_map
    (fun (checker, ds) ->
      List.map (fun d -> checker ^ " | " ^ Diag.to_string d) ds)
    results

(* the location-free multiset used for roundtrip comparisons *)
let keyset (results : (string * Diag.t list) list) : string list =
  List.concat_map (fun (_, ds) -> List.map Diag.key ds) results
  |> List.sort String.compare

let first_diff (a : string list) (b : string list) : string =
  let rec go i a b =
    match (a, b) with
    | [], [] -> "lists equal?"
    | x :: _, [] -> Printf.sprintf "extra at %d: %s" i x
    | [], y :: _ -> Printf.sprintf "missing at %d: %s" i y
    | x :: a, y :: b ->
      if String.equal x y then go (i + 1) a b
      else Printf.sprintf "at %d: %S vs %S" i x y
  in
  go 0 a b

let seq_check ~spec tus = Registry.run_all ~spec tus

(** [check ?shared_cache ~seed ~spec ~tus ()] runs all five oracles and
    returns the disagreements (empty = all pipelines agree).  Also
    returns the sequential results so callers can reuse them. *)
let check ?shared_cache ~seed ~(spec : Flash_api.spec) ~(tus : Ast.tunit list)
    () : (string * Diag.t list) list * failure list =
  let failures = ref [] in
  let fail oracle detail =
    failures := { f_seed = seed; f_oracle = oracle; f_detail = detail }
      :: !failures
  in
  let seq = seq_check ~spec tus in
  let seq_r = render seq in
  let compare_mcd oracle results =
    let r = render results in
    if r <> seq_r then fail oracle (first_diff r seq_r)
  in
  (* O1/O2: parallel must equal sequential *)
  compare_mcd "mcd-jobs2" (fst (Mcd.check_corpus ~jobs:2 ~spec tus));
  compare_mcd "mcd-jobs4" (fst (Mcd.check_corpus ~jobs:4 ~spec tus));
  (* O3: cold, warm, and shared caches *)
  let cache = Mcd_cache.create () in
  compare_mcd "cache-cold" (fst (Mcd.check_corpus ~cache ~jobs:2 ~spec tus));
  compare_mcd "cache-warm" (fst (Mcd.check_corpus ~cache ~jobs:2 ~spec tus));
  (match shared_cache with
  | Some cache ->
    compare_mcd "cache-shared"
      (fst (Mcd.check_corpus ~cache ~jobs:2 ~spec tus))
  | None -> ());
  (* O4: the fused single-prep driver must equal the per-checker path *)
  compare_mcd "fused" (Registry.run_all_fused ~spec tus);
  (* O5: print -> re-lex -> re-parse -> re-check *)
  let printed = List.map Pp.tunit_to_string tus in
  (match
     List.map2
       (fun tu src -> Frontend.of_string ~file:tu.Ast.tu_file src)
       tus printed
   with
  | exception exn ->
    fail "roundtrip-parse" (Printexc.to_string exn)
  | tus2 ->
    let printed2 = List.map Pp.tunit_to_string tus2 in
    if not (List.for_all2 String.equal printed printed2) then
      fail "roundtrip-fixpoint"
        (first_diff
           (List.concat_map (String.split_on_char '\n') printed2)
           (List.concat_map (String.split_on_char '\n') printed));
    if not (List.for_all2 Ast.equal_tunit tus tus2) then
      fail "roundtrip-ast" "re-parsed unit differs structurally";
    let seq2 = seq_check ~spec tus2 in
    let k1 = keyset seq and k2 = keyset seq2 in
    if k1 <> k2 then fail "roundtrip-diags" (first_diff k2 k1));
  (seq, List.rev !failures)
