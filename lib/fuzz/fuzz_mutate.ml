(** Mutation-based bug seeding.

    Each mutation injects one of the paper's bug classes into a clean
    generated program and records a ground-truth label: the checker that
    must fire and the function it must blame.  Mutations are small AST
    edits on the raw unit (before materialisation), so the seeded program
    goes through exactly the same print/re-parse pipeline as the clean
    one. *)

type kind =
  | Drop_wait_reply  (** remove the wait after a synchronous send *)
  | Double_free  (** free the data buffer twice *)
  | Drop_free  (** leak the buffer on the exit path *)
  | Float_in_handler  (** declare and use a double *)
  | Len_mismatch  (** flip a length assignment against its send *)
  | Lane_overrun  (** duplicate a network send past the allowance *)
  | Drop_writeback  (** lose a directory-entry writeback *)
  | Drop_db_sync  (** read the data buffer without waiting for it *)
  | Drop_hook  (** omit the simulator hook *)
  | Drop_alloc_check  (** use an allocation before ALLOC_FAILED *)

let all_kinds =
  [
    Drop_wait_reply; Double_free; Drop_free; Float_in_handler; Len_mismatch;
    Lane_overrun; Drop_writeback; Drop_db_sync; Drop_hook; Drop_alloc_check;
  ]

let checker_of = function
  | Drop_wait_reply -> "send_wait"
  | Double_free | Drop_free -> "buffer_mgmt"
  | Float_in_handler -> "no_float"
  | Len_mismatch -> "msg_length"
  | Lane_overrun -> "lanes"
  | Drop_writeback -> "dir_entry"
  | Drop_db_sync -> "wait_for_db"
  | Drop_hook -> "exec_restrict"
  | Drop_alloc_check -> "alloc_check"

let kind_name = function
  | Drop_wait_reply -> "drop_wait_reply"
  | Double_free -> "double_free"
  | Drop_free -> "drop_free"
  | Float_in_handler -> "float_in_handler"
  | Len_mismatch -> "len_mismatch"
  | Lane_overrun -> "lane_overrun"
  | Drop_writeback -> "drop_writeback"
  | Drop_db_sync -> "drop_db_sync"
  | Drop_hook -> "drop_hook"
  | Drop_alloc_check -> "drop_alloc_check"

type mutation = {
  m_kind : kind;
  m_checker : string;  (** the checker that must fire *)
  m_func : string;  (** the function it must blame *)
  m_desc : string;
}

(* ------------------------------------------------------------------ *)
(* Statement surgery                                                   *)
(* ------------------------------------------------------------------ *)

let is_call_to names s =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> (
    match Ast.callee_name e with
    | Some n when List.mem n names -> true
    | _ -> false)
  | _ -> false

(* [edit_nth pred edit n stmts]: apply [edit] to the [n]-th statement (in
   pre-order over nested blocks/branches/loops) satisfying [pred];
   [edit s] returns the replacement statement list.  Returns [None] when
   fewer than [n+1] statements match. *)
let edit_nth pred edit n stmts =
  let counter = ref n in
  let rec go_list stmts =
    match stmts with
    | [] -> None
    | s :: rest ->
      if pred s && (decr counter; !counter = -1) then Some (edit s @ rest)
      else (
        match go_stmt s with
        | Some s' -> Some (s' :: rest)
        | None -> (
          match go_list rest with
          | Some rest' -> Some (s :: rest')
          | None -> None))
  and go_stmt s =
    match s.Ast.sdesc with
    | Ast.Sblock b ->
      Option.map (fun b' -> { s with Ast.sdesc = Ast.Sblock b' }) (go_list b)
    | Ast.Sif (c, t, e) -> (
      match go_stmt t with
      | Some t' -> Some { s with Ast.sdesc = Ast.Sif (c, t', e) }
      | None ->
        Option.bind e (fun e' ->
            Option.map
              (fun e'' -> { s with Ast.sdesc = Ast.Sif (c, t, Some e'') })
              (go_stmt e')))
    | Ast.Swhile (c, b) ->
      Option.map
        (fun b' -> { s with Ast.sdesc = Ast.Swhile (c, b') })
        (go_stmt b)
    | Ast.Sdo (b, c) ->
      Option.map (fun b' -> { s with Ast.sdesc = Ast.Sdo (b', c) }) (go_stmt b)
    | Ast.Sfor (i, c, st, b) ->
      Option.map
        (fun b' -> { s with Ast.sdesc = Ast.Sfor (i, c, st, b') })
        (go_stmt b)
    | Ast.Sswitch (e, b) ->
      Option.map
        (fun b' -> { s with Ast.sdesc = Ast.Sswitch (e, b') })
        (go_stmt b)
    | _ -> None
  in
  go_list stmts

let count_matching pred stmts =
  let n = ref 0 in
  List.iter
    (fun s -> Ast.iter_stmt (fun s -> if pred s then incr n) s)
    stmts;
  !n

(* ------------------------------------------------------------------ *)
(* Site predicates                                                     *)
(* ------------------------------------------------------------------ *)

let is_wait_reply =
  is_call_to [ Flash_api.wait_for_pi_reply; Flash_api.wait_for_io_reply ]

let is_free = is_call_to [ Flash_api.free_db ]
let is_writeback = is_call_to [ Flash_api.writeback_dir_entry ]
let is_wait_db = is_call_to [ Flash_api.wait_for_db_full ]
let is_ni_send = is_call_to [ Flash_api.ni_send ]

let is_hook =
  is_call_to
    [
      Flash_api.sim_handler_hook; Flash_api.sim_swhandler_hook;
      Flash_api.sim_procedure_hook; Flash_api.handler_prologue;
    ]

let is_alloc_check_if s =
  match s.Ast.sdesc with
  | Ast.Sif (c, _, _) -> Ast.callee_name c = Some Flash_api.alloc_failed
  | _ -> false

(* HANDLER_GLOBALS(header.nh.len) = LEN_xxx, returning the constant *)
let len_assign_rhs s =
  match s.Ast.sdesc with
  | Ast.Sexpr
      {
        Ast.edesc =
          Ast.Assign
            ( { Ast.edesc = Ast.Call ({ edesc = Ast.Ident hg; _ }, [ path ]); _ },
              { Ast.edesc = Ast.Ident rhs; _ } );
        _;
      }
    when String.equal hg Flash_api.handler_globals -> (
    match path.Ast.edesc with
    | Ast.Field (_, "len") -> Some rhs
    | _ -> None)
  | _ -> None

(* functions that ever prepare a NAK reply: a dropped writeback there can
   be pruned by the checker's speculative-path rule, so skip them *)
let sets_nak f =
  count_matching
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Sexpr
          {
            Ast.edesc =
              Ast.Assign (_, { Ast.edesc = Ast.Ident rhs; _ });
            _;
          } ->
        String.equal rhs Flash_api.msg_nak
      | _ -> false)
    f.Ast.f_body
  > 0

(* a send with the wait bit set *)
let has_sync_send f =
  count_matching
    (fun s ->
      match s.Ast.sdesc with
      | Ast.Sexpr { Ast.edesc = Ast.Call ({ edesc = Ast.Ident m; _ }, args); _ }
        when List.mem m [ Flash_api.pi_send; Flash_api.io_send ] ->
        List.exists
          (fun a ->
            match a.Ast.edesc with
            | Ast.Ident w -> String.equal w Flash_api.w_wait
            | _ -> false)
          args
      | _ -> false)
    f.Ast.f_body
  > 0

(* ------------------------------------------------------------------ *)
(* The mutations                                                       *)
(* ------------------------------------------------------------------ *)

let float_decl =
  Ast.mk_stmt
    (Ast.Sdecl
       {
         Ast.v_name = "fzflt";
         v_type = Ctype.Double;
         v_init = Some (Ast.mk_expr (Ast.Float_lit (1.5, "1.5")));
         v_loc = Loc.none;
         v_static = false;
       })

(* per-kind: (eligible function filter, site predicate, edit, site picker)
   where the picker chooses WHICH matching site — some rules are only
   guaranteed to fire on the first or last site *)
type site_choice = First | Last | Random

let plan kind =
  match kind with
  | Drop_wait_reply -> (has_sync_send, is_wait_reply, (fun _ -> []), First)
  | Double_free -> ((fun _ -> true), is_free, (fun s -> [ s; s ]), Random)
  | Drop_free -> ((fun _ -> true), is_free, (fun _ -> []), Last)
  | Float_in_handler ->
    ((fun _ -> true), is_hook, (fun s -> [ s; float_decl ]), First)
  | Len_mismatch ->
    ( (fun _ -> true),
      (fun s -> len_assign_rhs s <> None),
      (fun s ->
        let flipped =
          match len_assign_rhs s with
          | Some l when String.equal l Flash_api.len_nodata ->
            Flash_api.len_cacheline
          | _ -> Flash_api.len_nodata
        in
        [ Cb.len_assign flipped ]),
      Random )
  | Lane_overrun -> ((fun _ -> true), is_ni_send, (fun s -> [ s; s ]), Random)
  | Drop_writeback ->
    ((fun f -> not (sets_nak f)), is_writeback, (fun _ -> []), Last)
  | Drop_db_sync -> ((fun _ -> true), is_wait_db, (fun _ -> []), First)
  | Drop_hook -> ((fun _ -> true), is_hook, (fun _ -> []), First)
  | Drop_alloc_check ->
    ((fun _ -> true), is_alloc_check_if, (fun _ -> []), First)

(** [apply rng kind raw] seeds one bug of [kind] into a uniformly chosen
    eligible function of [raw]; [None] when no function has a matching
    site. *)
let apply rng kind (raw : Ast.tunit) : (Ast.tunit * mutation) option =
  let eligible, pred, edit, choice = plan kind in
  let candidates =
    List.filter_map
      (fun g ->
        match g with
        | Ast.Gfunc f when eligible f ->
          let n = count_matching pred f.Ast.f_body in
          if n > 0 then Some (f.Ast.f_name, n) else None
        | _ -> None)
      raw.Ast.tu_globals
  in
  match candidates with
  | [] -> None
  | _ ->
    let fname, n_sites = Rng.choose rng candidates in
    let site =
      match choice with
      | First -> 0
      | Last -> n_sites - 1
      | Random -> Rng.int rng n_sites
    in
    let mutated = ref false in
    let tu_globals =
      List.map
        (fun g ->
          match g with
          | Ast.Gfunc f when String.equal f.Ast.f_name fname && not !mutated
            -> (
            match edit_nth pred edit site f.Ast.f_body with
            | Some body ->
              mutated := true;
              Ast.Gfunc { f with Ast.f_body = body }
            | None -> g)
          | _ -> g)
        raw.Ast.tu_globals
    in
    if not !mutated then None
    else
      Some
        ( { raw with Ast.tu_globals },
          {
            m_kind = kind;
            m_checker = checker_of kind;
            m_func = fname;
            m_desc =
              Printf.sprintf "%s at site %d of %s" (kind_name kind) site fname;
          } )
