(** An interpreter for Clite protocol code against the MAGIC machine model.

    The execution half of the FlashLite substitute: handlers parsed by the
    front end run directly on a model node (buffer pool, lanes, handler
    globals), with every MAGIC macro given its hardware semantics and
    runtime failures surfacing as {!fault}s — the same classes the static
    checkers hunt. *)

exception Fatal of string

type fault =
  | F_buffer of Buffers.fault
  | F_lane of Lanes.fault
  | F_len_mismatch of string  (** opcode of the inconsistent send *)
  | F_fatal of string

val fault_to_string : fault -> string

(** The mutable per-node state handlers run against. *)
type node = {
  id : int;
  n_nodes : int;
  buffers : Buffers.t;
  lanes : Lanes.t;
  globals : (string, int) Hashtbl.t;
      (** handler globals addressed by dotted path ("header.nh.len",
          "dirEntry.vector", plain names for scalars) *)
  mutable current_buffer : Buffers.buffer option;
  mutable db_synchronized : bool;
  mutable outstanding_wait : string option;
  mutable faults : fault list;
  mutable sent : Message.t list;
  mutable hook_calls : int;
  intervention_data : int -> int;
  mutable custom : string -> int list -> int option;
      (** simulator-provided builtins (memory and cache services) *)
}

val create_node :
  ?n_nodes:int ->
  ?buffer_count:int ->
  ?intervention_data:(int -> int) ->
  int ->
  node

val global : node -> string -> int
val set_global : node -> string -> int -> unit

type env

val make_env :
  ?max_steps:int ->
  node:node ->
  program:Callgraph.t ->
  consts:(string, int) Hashtbl.t ->
  unit ->
  env

val consts_of_program : Ast.tunit list -> (string, int) Hashtbl.t
(** enum constants, so protocol code can refer to them *)

val call_function : env -> Ast.func -> int list -> int
(** call a function with arguments; loops/recursion bounded by the env's
    fuel *)

val run_handler :
  ?max_steps:int ->
  node:node ->
  program:Callgraph.t ->
  consts:(string, int) Hashtbl.t ->
  Ast.func ->
  fault list * Message.t list
(** run one handler to completion; returns the faults recorded during the
    run and the messages it sent, in order *)
