(** The FlashLite substitute: a multi-node protocol simulator.

    Drives processor reads, writes and uncached reads through the
    {!Golden} protocol handlers running on {!Interp} nodes, with a
    directory, per-node caches and main memory, NAK/retry, random fill
    latency on incoming data buffers, random reply-queue pressure, and
    silent cache evictions — the machinery needed to make the paper's
    rare corner paths (dirty-remote, queue-full, replacement races)
    reachable, occasionally.

    The simulator both *executes* the protocol and *watches* it: data
    integrity is checked against a write oracle, and the machine model
    records buffer/lane/length faults.  [run] reports when (in
    transaction count) each fault class first manifested, which is the
    number the static-vs-dynamic comparison needs. *)

type config = {
  n_nodes : int;
  n_lines : int;
  transactions : int;
  seed : int;
  variant : Golden.variant;
  directory : Directory.packed;
      (** which of the five directory organisations backs the home state;
          handlers see the same bit-vector view either way *)
  fill_delay_pct : int;  (** chance an arriving body is still streaming *)
  corner_flag_pct : int;  (** chance header.nh.misc is set (corner paths) *)
  queue_pressure_pct : int;  (** chance the home reply lane looks full *)
  evict_pct : int;  (** chance a cached line was silently replaced *)
  write_pct : int;
  uncached_pct : int;
}

let default_config =
  {
    n_nodes = 4;
    n_lines = 8;
    transactions = 10_000;
    seed = 42;
    variant = Golden.Clean;
    directory = (module Directory.Bitvector);
    fill_delay_pct = 10;
    corner_flag_pct = 3;
    queue_pressure_pct = 3;
    evict_pct = 2;
    write_pct = 30;
    uncached_pct = 10;
  }

type op = Read of int * int | Write of int * int * int | Uncached of int * int
(* node, line (, value) *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable uncached : int;
  mutable messages : int;
  mutable naks : int;
  mutable handler_runs : int;
  mutable corruptions : int;
  mutable stalled : int;
}

type result = {
  config : config;
  stats : stats;
  faults : (string * Interp.fault) list;  (** handler name, fault *)
  first_detection : (string * int) list;
      (** fault class -> 1-based transaction index of first manifestation *)
  leaked_buffers : int;  (** buffers lost across the whole run *)
  directory_ok : bool;  (** the directory's own invariant at the end *)
}

(* the directory organisation, packed with its state *)
type dir_state =
  | Dir : (module Directory.S with type t = 'd) * 'd -> dir_state

type t = {
  cfg : config;
  program : Callgraph.t;
  consts : (string, int) Hashtbl.t;
  nodes : Interp.node array;
  memory : int array array;  (** authoritative line data, by line *)
  caches : (int * int, int array) Hashtbl.t;  (** (node, line) -> copy *)
  dir : dir_state;
  rng : Rng.t;
  network : Message.t Queue.t;
  stats : stats;
  mutable faults : (string * Interp.fault) list;
  mutable first_detection : (string * int) list;
  mutable current_transaction : int;
  expected : int array;  (** oracle: last value written to word 0 *)
}

let words = Buffers.words_per_buffer

let home t line = line mod t.cfg.n_nodes

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let fault_class (f : Interp.fault) : string =
  match f with
  | Interp.F_buffer (Buffers.Double_free _) -> "double free"
  | Interp.F_buffer (Buffers.Use_after_free _) -> "use after free"
  | Interp.F_buffer (Buffers.Read_before_fill _) -> "fill race"
  | Interp.F_buffer Buffers.Pool_exhausted -> "pool exhausted"
  | Interp.F_lane _ -> "lane overflow"
  | Interp.F_len_mismatch _ -> "length mismatch"
  | Interp.F_fatal _ -> "fatal"

let record_fault t ~handler (f : Interp.fault) =
  t.faults <- (handler, f) :: t.faults;
  let cls = fault_class f in
  if not (List.mem_assoc cls t.first_detection) then
    t.first_detection <- (cls, t.current_transaction) :: t.first_detection

let install_services t (node : Interp.node) =
  let copy_to_buffer data =
    match node.Interp.current_buffer with
    | Some b ->
      Array.iteri
        (fun i v -> Buffers.write node.Interp.buffers b ~word:i ~value:v)
        data;
      Buffers.mark_full b
    | None -> ()
  in
  let copy_from_buffer target =
    match node.Interp.current_buffer with
    | Some b ->
      Array.iteri
        (fun i _ ->
          target.(i) <-
            Buffers.read node.Interp.buffers b ~synchronized:true ~word:i)
        target
    | None -> ()
  in
  node.Interp.custom <-
    (fun name args ->
      let line addr = ((addr :> int) / words) mod t.cfg.n_lines in
      match (name, args) with
      | "MEMORY_READ_LINE", addr :: _ ->
        copy_to_buffer t.memory.(line addr);
        Some 0
      | "MEMORY_WRITE_LINE", addr :: _ ->
        copy_from_buffer t.memory.(line addr);
        Some 0
      | "CACHE_READ_LINE", addr :: _ -> (
        match Hashtbl.find_opt t.caches (node.Interp.id, line addr) with
        | Some data ->
          copy_to_buffer data;
          Some 0
        | None ->
          copy_to_buffer (Array.make words 0);
          Some 0)
      | "CACHE_WRITE_LINE", addr :: _ ->
        let data = Array.make words 0 in
        copy_from_buffer data;
        Hashtbl.replace t.caches (node.Interp.id, line addr) data;
        Some 0
      | "CACHE_INVALIDATE", addr :: _ ->
        Hashtbl.remove t.caches (node.Interp.id, line addr);
        Some 0
      | "CACHE_PRESENT", addr :: _ ->
        Some
          (if Hashtbl.mem t.caches (node.Interp.id, line addr) then 1 else 0)
      | "WAIT_FOR_OUTPUT_SPACE", lane :: _ ->
        (* the hardware suspends the handler until the lane drains; we
           model the drain by moving queued messages onto the network *)
        while Lanes.space node.Interp.lanes lane = 0 do
          List.iter
            (fun (m : Message.t) ->
              if
                (not
                   (List.mem m.Message.opcode [ "PI_REPLY"; "IO_REPLY" ]))
                && (m.Message.opcode <> "MSG_NAK"
                   || m.Message.dst <> m.Message.src)
              then Queue.add m t.network)
            (Lanes.drain node.Interp.lanes)
        done;
        Some 0
      | _ -> None)

let create (cfg : config) : t =
  let program = Callgraph.build (Golden.program cfg.variant) in
  let consts = Interp.consts_of_program (Golden.program cfg.variant) in
  let rng = Rng.create ~seed:cfg.seed in
  let t =
    {
      cfg;
      program;
      consts;
      nodes =
        Array.init cfg.n_nodes (fun id ->
            Interp.create_node ~n_nodes:cfg.n_nodes id);
      memory =
        Array.init cfg.n_lines (fun line ->
            Array.init words (fun w -> (line * 97) + w));
      caches = Hashtbl.create 64;
      dir =
        (let (module D) = cfg.directory in
         Dir ((module D), D.create ~n_nodes:cfg.n_nodes ~n_lines:cfg.n_lines));
      rng;
      network = Queue.create ();
      stats =
        {
          reads = 0;
          writes = 0;
          uncached = 0;
          messages = 0;
          naks = 0;
          handler_runs = 0;
          corruptions = 0;
          stalled = 0;
        };
      faults = [];
      first_detection = [];
      current_transaction = 0;
      expected = Array.init cfg.n_lines (fun line -> line * 97);
    }
  in
  Array.iter
    (fun node ->
      install_services t node;
      Interp.set_global node "numNodes" cfg.n_nodes;
      Interp.set_global node "nodeId" node.Interp.id)
    t.nodes;
  t

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let line_of_addr t addr = (addr / words) mod t.cfg.n_lines
let addr_of_line line = line * words

(* the handlers' bit-vector view of the directory entry *)
let dir_view t line : int * bool * int =
  let (Dir ((module D), d)) = t.dir in
  let vector =
    List.fold_left (fun acc n -> acc lor (1 lsl n)) 0 (D.sharers d ~line)
  in
  let dirty = D.is_dirty d ~line in
  let owner = Option.value ~default:(-1) (D.owner d ~line) in
  (vector, dirty, owner)

(* apply a written-back bit-vector view to the directory organisation *)
let dir_apply t line ~vector ~dirty ~owner =
  let (Dir ((module D), d)) = t.dir in
  for node = 0 to t.cfg.n_nodes - 1 do
    let want = vector land (1 lsl node) <> 0 in
    if want && not (D.is_sharer d ~line ~node) then D.add_sharer d ~line ~node
    else if (not want) && D.is_sharer d ~line ~node then
      D.remove_sharer d ~line ~node
  done;
  if dirty && owner >= 0 then D.set_dirty d ~line ~owner
  else if (not dirty) && D.is_dirty d ~line then D.clear_dirty d ~line

let dir_dirty t line =
  let _, dirty, _ = dir_view t line in
  dirty

let dir_owner_of t line =
  let _, _, owner = dir_view t line in
  owner

let directory_well_formed t =
  let (Dir ((module D), d)) = t.dir in
  D.well_formed d

(* deliver one message: run the destination handler, drain its lanes *)
let deliver t (msg : Message.t) : int option =
  let node = t.nodes.(msg.Message.dst) in
  let line = line_of_addr t msg.Message.addr in
  t.stats.messages <- t.stats.messages + 1;
  Mcobs.count "sim.messages";
  if String.equal msg.Message.opcode "MSG_NAK" then begin
    t.stats.naks <- t.stats.naks + 1;
    Mcobs.count "sim.naks"
  end;
  (* hardware: allocate the buffer and stream the body in *)
  let filling =
    msg.Message.has_data && Rng.percent t.rng t.cfg.fill_delay_pct
  in
  (match Buffers.allocate ~filling node.Interp.buffers with
  | Some b ->
    (* the payload is in the buffer, but an unsynchronised read while the
       body is still streaming sees zeros (modelled by the pool) *)
    Array.iteri
      (fun i v -> b.Buffers.words.(i mod words) <- v)
      msg.Message.data;
    node.Interp.current_buffer <- Some b
  | None -> ());
  node.Interp.db_synchronized <- not filling;
  (* set up handler globals from the header *)
  Interp.set_global node "header.nh.address" msg.Message.addr;
  Interp.set_global node "header.nh.src" msg.Message.src;
  Interp.set_global node "header.nh.dest" msg.Message.src;
  Interp.set_global node "header.nh.type" 0;
  Interp.set_global node "header.nh.len"
    (match msg.Message.len with
    | Message.Len_nodata -> 0
    | Message.Len_word -> 1
    | Message.Len_cacheline -> 16);
  Interp.set_global node "header.nh.misc"
    (if Rng.percent t.rng t.cfg.corner_flag_pct then 1 else 0);
  (* the home's directory entry copy *)
  let vector, dirty, owner = dir_view t line in
  Interp.set_global node "dirEntry.vector" vector;
  Interp.set_global node "dirEntry.dirty" (if dirty then 1 else 0);
  Interp.set_global node "dirEntry.owner" owner;
  Interp.set_global node "dirEntry.written_back" 0;
  (* occasional reply-lane pressure so OUTPUT_QUEUE_FULL paths run *)
  let pressure =
    Rng.percent t.rng t.cfg.queue_pressure_pct
    && List.mem msg.Message.opcode [ "MSG_UNCACHED_READ" ]
  in
  let dummy =
    {
      Message.opcode = "MSG_NAK";
      src = node.Interp.id;
      dst = node.Interp.id;
      addr = 0;
      len = Message.Len_nodata;
      has_data = false;
      data = [||];
      lane = Flash_api.lane_net_reply;
    }
  in
  if pressure then
    while Lanes.space node.Interp.lanes Flash_api.lane_net_reply > 0 do
      ignore (Lanes.send node.Interp.lanes dummy)
    done;
  (* dispatch *)
  let result = ref None in
  (match List.assoc_opt msg.Message.opcode Golden.handler_map with
  | None -> ()
  | Some handler_name -> (
    match Callgraph.find_func t.program handler_name with
    | None -> ()
    | Some handler ->
      t.stats.handler_runs <- t.stats.handler_runs + 1;
      Mcobs.count "sim.handler_runs";
      let faults, sent =
        Interp.run_handler ~node ~program:t.program ~consts:t.consts handler
      in
      List.iter (fun f -> record_fault t ~handler:handler_name f) faults;
      (* apply a written-back directory entry *)
      if Interp.global node "dirEntry.written_back" = 1 then
        dir_apply t line
          ~vector:(Interp.global node "dirEntry.vector")
          ~dirty:(Interp.global node "dirEntry.dirty" <> 0)
          ~owner:(Interp.global node "dirEntry.owner");
      (* the processor interface completes the transaction *)
      List.iter
        (fun (m : Message.t) ->
          if String.equal m.Message.opcode "PI_REPLY" then
            result :=
              Some
                (if Array.length m.Message.data > 0 then m.Message.data.(0)
                 else 0))
        sent));
  (* drain the node's output lanes onto the network *)
  if pressure then begin
    (* release the artificial pressure before collecting real output *)
    let real =
      List.filter
        (fun (m : Message.t) -> not (m == dummy))
        (let rec drain acc =
           match Lanes.drain node.Interp.lanes with
           | [] -> List.rev acc
           | ms -> drain (List.rev_append ms acc)
         in
         drain [])
    in
    List.iter
      (fun (m : Message.t) ->
        if
          (m.Message.opcode <> "MSG_NAK" || m.Message.dst <> m.Message.src)
          && not
               (List.mem m.Message.opcode [ "PI_REPLY"; "IO_REPLY" ])
        then Queue.add m t.network)
      real
  end
  else begin
    let rec drain () =
      match Lanes.drain node.Interp.lanes with
      | [] -> ()
      | ms ->
        List.iter
          (fun (m : Message.t) ->
            (* PI/IO replies complete locally; they never hit the wire *)
            if not (List.mem m.Message.opcode [ "PI_REPLY"; "IO_REPLY" ])
            then Queue.add m t.network)
          ms;
        drain ()
    in
    drain ()
  end;
  !result

(* run the network to quiescence; returns the PI data delivered, if any *)
let quiesce t : int option =
  let delivered = ref None in
  let budget = ref 200 in
  while (not (Queue.is_empty t.network)) && !budget > 0 do
    decr budget;
    let msg = Queue.pop t.network in
    match deliver t msg with
    | Some v -> delivered := Some v
    | None -> ()
  done;
  !delivered

(* ------------------------------------------------------------------ *)
(* Processor operations                                                *)
(* ------------------------------------------------------------------ *)

let send_request t ~src ~line ~opcode =
  Queue.add
    {
      Message.opcode;
      src;
      dst = home t line;
      addr = addr_of_line line;
      len = Message.Len_nodata;
      has_data = false;
      data = [||];
      lane = Flash_api.lane_net_request;
    }
    t.network

let maybe_evict t node line =
  if
    Hashtbl.mem t.caches (node, line)
    && Rng.percent t.rng t.cfg.evict_pct
    && not (dir_dirty t line && dir_owner_of t line = node)
  then
    (* silent replacement: the home still believes this node shares the
       line — the replacement-hint-free design FLASH actually used *)
    Hashtbl.remove t.caches (node, line)

let rec do_op t ?(retries = 6) (op : op) : unit =
  if retries = 0 then t.stats.stalled <- t.stats.stalled + 1
  else
    match op with
    | Read (node, line) -> (
      maybe_evict t node line;
      match Hashtbl.find_opt t.caches (node, line) with
      | Some data ->
        if data.(0) <> t.expected.(line) then
          t.stats.corruptions <- t.stats.corruptions + 1
      | None -> (
        send_request t ~src:node ~line ~opcode:"MSG_GET";
        match quiesce t with
        | Some v ->
          if v <> t.expected.(line) then
            t.stats.corruptions <- t.stats.corruptions + 1
        | None ->
          (* NAKed: the owner is writing back; retry *)
          do_op t ~retries:(retries - 1) op))
    | Write (node, line, value) -> (
      let exclusive =
        dir_dirty t line
        && dir_owner_of t line = node
        && Hashtbl.mem t.caches (node, line)
      in
      if exclusive then begin
        let data = Hashtbl.find t.caches (node, line) in
        data.(0) <- value;
        t.expected.(line) <- value
      end
      else begin
        send_request t ~src:node ~line ~opcode:"MSG_GETX";
        match quiesce t with
        | Some _ -> (
          (* exclusive copy arrived; perform the store *)
          match Hashtbl.find_opt t.caches (node, line) with
          | Some data ->
            data.(0) <- value;
            t.expected.(line) <- value
          | None -> t.stats.stalled <- t.stats.stalled + 1)
        | None -> do_op t ~retries:(retries - 1) op
      end)
    | Uncached (node, line) -> (
      send_request t ~src:node ~line ~opcode:"MSG_UNCACHED_READ";
      match quiesce t with
      | Some v ->
        if v <> t.expected.(line) then
          t.stats.corruptions <- t.stats.corruptions + 1
      | None -> do_op t ~retries:(retries - 1) op)

let random_op t : op =
  let node = Rng.int t.rng t.cfg.n_nodes in
  let line = Rng.int t.rng t.cfg.n_lines in
  if Rng.percent t.rng t.cfg.uncached_pct then Uncached (node, line)
  else if Rng.percent t.rng t.cfg.write_pct then
    Write (node, line, Rng.int t.rng 1_000_000)
  else Read (node, line)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* buffers still held while the machine is quiescent are leaks *)
let leaked_buffers t =
  Array.fold_left
    (fun acc (node : Interp.node) ->
      acc + (16 - Buffers.free_count node.Interp.buffers))
    0 t.nodes

(** Run the configured number of transactions. *)
let run (cfg : config) : result =
  Mcobs.with_span "sim.run"
    ~args:[ ("transactions", string_of_int cfg.transactions) ]
    (fun () ->
      let t = create cfg in
      for i = 1 to cfg.transactions do
        t.current_transaction <- i;
        Mcobs.count "sim.transactions";
        let op = random_op t in
        (match op with
        | Read _ -> t.stats.reads <- t.stats.reads + 1
        | Write _ -> t.stats.writes <- t.stats.writes + 1
        | Uncached _ -> t.stats.uncached <- t.stats.uncached + 1);
        do_op t op;
        (* detect slow leaks as they cross the "node wedged" threshold *)
        Array.iter
          (fun (node : Interp.node) ->
            if Buffers.free_count node.Interp.buffers = 0 then
              record_fault t ~handler:"<pool>"
                (Interp.F_buffer Buffers.Pool_exhausted))
          t.nodes
      done;
      {
        config = cfg;
        stats = t.stats;
        faults = List.rev t.faults;
        first_detection = List.rev t.first_detection;
        leaked_buffers = leaked_buffers t;
        directory_ok = directory_well_formed t;
      })

let pp_result ppf (r : result) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "transactions: %d (reads %d, writes %d, uncached %d)@,\
     messages: %d  handler runs: %d  NAK retries: %d@,\
     corruptions detected: %d  stalled ops: %d  leaked buffers: %d@,\
     fault classes first manifested:"
    r.config.transactions r.stats.reads r.stats.writes r.stats.uncached
    r.stats.messages r.stats.handler_runs r.stats.naks r.stats.corruptions
    r.stats.stalled r.leaked_buffers;
  if r.first_detection = [] then Format.fprintf ppf "@,  (none)"
  else
    List.iter
      (fun (cls, at) ->
        Format.fprintf ppf "@,  %-16s first at transaction %d" cls at)
      r.first_detection;
  Format.fprintf ppf "@]" 
