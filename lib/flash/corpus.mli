(** The synthetic FLASH protocol corpus.

    [generate ()] deterministically produces the five protocols plus the
    common code: Clite sources (printed, then re-parsed through the full
    front end, exactly as xg++ consumed post-cpp text), the
    protocol-writer-supplied specification the checkers need, and the
    ground-truth manifest of seeded faults. *)

type protocol = {
  name : string;
  config : Profile.config;
  files : (string * string) list;  (** file name, full source text *)
  tus : Ast.tunit list;  (** parsed and type-annotated *)
  spec : Flash_api.spec;
  manifest : Manifest.entry list;
  loc : int;  (** protocol LOC, headers (prelude) excluded *)
}

type t = { protocols : protocol list; seed : int }

val generate : ?seed:int -> unit -> t
val find : t -> string -> protocol option

val write_to_dir : t -> string -> unit
(** write every protocol's .c files into a directory *)
