(** An interpreter for Clite protocol code against the MAGIC machine model.

    This is the execution half of the FlashLite substitute: handlers parsed
    by the front end run directly on a model node (buffer pool, lanes,
    directory copy, message header), with every MAGIC macro given its
    hardware semantics.  Runtime failures (double frees, fill races, lane
    overflows, length/data mismatches) surface as {!fault}s — the same
    classes the static checkers hunt, so the simulator-vs-checker
    comparison of the paper's motivation can be made concrete. *)

exception Fatal of string

type fault =
  | F_buffer of Buffers.fault
  | F_lane of Lanes.fault
  | F_len_mismatch of string  (** opcode of the inconsistent send *)
  | F_fatal of string

let fault_to_string = function
  | F_buffer f -> Buffers.fault_to_string f
  | F_lane f -> Lanes.fault_to_string f
  | F_len_mismatch op ->
    Printf.sprintf "length/data mismatch on %s send" op
  | F_fatal msg -> "FATAL_ERROR: " ^ msg

(** The mutable per-node state handlers run against. *)
type node = {
  id : int;
  n_nodes : int;
  buffers : Buffers.t;
  lanes : Lanes.t;
  globals : (string, int) Hashtbl.t;
      (** handler globals addressed by dotted path ("header.nh.len",
          "dirEntry.vector", plain names for scalars) *)
  mutable current_buffer : Buffers.buffer option;
  mutable db_synchronized : bool;  (** WAIT_FOR_DB_FULL called *)
  mutable outstanding_wait : string option;  (** interface of a W_WAIT send *)
  mutable faults : fault list;
  mutable sent : Message.t list;  (** sends recorded this handler run *)
  mutable hook_calls : int;
  intervention_data : int -> int;
      (** what the processor/IO interface answers to an intervention *)
  mutable custom : string -> int list -> int option;
      (** simulator-provided builtins (memory and cache services) *)
}

let create_node ?(n_nodes = 4) ?(buffer_count = 16)
    ?(intervention_data = fun _ -> 0) id : node =
  {
    id;
    n_nodes;
    buffers = Buffers.create ~size:buffer_count ();
    lanes = Lanes.create ();
    globals = Hashtbl.create 32;
    current_buffer = None;
    db_synchronized = false;
    outstanding_wait = None;
    faults = [];
    sent = [];
    hook_calls = 0;
    intervention_data;
    custom = (fun _ _ -> None);
  }

let fault node f = node.faults <- f :: node.faults

let global node path = Option.value ~default:0 (Hashtbl.find_opt node.globals path)
let set_global node path v = Hashtbl.replace node.globals path v

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

type env = {
  node : node;
  program : Callgraph.t;  (** for calls to protocol subroutines *)
  mutable scopes : (string, int ref) Hashtbl.t list;
  consts : (string, int) Hashtbl.t;  (** enum constants from the program *)
  mutable steps : int;  (** fuel: bounds loops and recursion *)
  max_steps : int;
}

exception Return_value of int
exception Break_loop
exception Continue_loop
exception Out_of_fuel

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let declare env name v =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] ->
    let scope = Hashtbl.create 8 in
    Hashtbl.replace scope name (ref v);
    env.scopes <- [ scope ]

let find_var env name : int ref option =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some r -> Some r
      | None -> go rest)
  in
  go env.scopes

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then raise Out_of_fuel

(* dotted path of a HANDLER_GLOBALS argument *)
let rec global_path (e : Ast.expr) : string option =
  match e.Ast.edesc with
  | Ast.Ident name -> Some name
  | Ast.Field (inner, f) ->
    Option.map (fun p -> p ^ "." ^ f) (global_path inner)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Builtins: the MAGIC macros                                          *)
(* ------------------------------------------------------------------ *)

let length_of_int v : Message.length =
  if v = 0 then Message.Len_nodata
  else if v = 1 then Message.Len_word
  else Message.Len_cacheline

let opcode_name_of_int (env : env) v : string =
  let all = Flash_api.msg_opcodes_request @ Flash_api.msg_opcodes_reply in
  match
    List.find_opt
      (fun op -> Hashtbl.find_opt env.consts op = Some v)
      all
  with
  | Some op -> op
  | None -> Printf.sprintf "OP_%d" v

let do_send env ~macro ~(args : int list) : unit =
  let node = env.node in
  let header_len = length_of_int (global node "header.nh.len") in
  let opcode, has_data, wait_flag =
    match (macro, args) with
    | m, [ flag; _keep; _swap; wait; _dec; _null ]
      when String.equal m Flash_api.pi_send || String.equal m Flash_api.io_send
      ->
      let op = if String.equal m Flash_api.pi_send then "PI_REPLY" else "IO_REPLY" in
      (op, flag <> 0, wait)
    | _, [ ty; flag; _keep; wait; _dec; _null ] ->
      (opcode_name_of_int env ty, flag <> 0, wait)
    | _, _ -> ("OP_BAD", false, 0)
  in
  (* the hardware reads the length field, not the has-data flag: this is
     exactly the decoupling the msg_length checker protects *)
  let lane =
    match
      Flash_api.lane_of_send ~macro
        ~opcode:(if String.equal macro Flash_api.ni_send then Some opcode else None)
    with
    | Some l -> l
    | None -> Flash_api.lane_net_request
  in
  let payload_words = Message.length_words header_len in
  let data =
    match node.current_buffer with
    | Some b when payload_words > 0 ->
      Array.init payload_words (fun i ->
          Buffers.read node.buffers b ~synchronized:true ~word:i)
    | _ -> Array.make payload_words 0
  in
  let msg =
    {
      Message.opcode;
      src = node.id;
      dst = global node "header.nh.dest";
      addr = global node "header.nh.address";
      len = header_len;
      has_data;
      data;
      lane;
    }
  in
  if not (Message.length_consistent msg) then
    fault node (F_len_mismatch opcode);
  if not (Lanes.send node.lanes msg) then
    (match Lanes.faults node.lanes with
    | f :: _ -> fault node (F_lane f)
    | [] -> ());
  node.sent <- msg :: node.sent;
  if wait_flag = 1 then
    node.outstanding_wait <-
      Some (if String.equal macro Flash_api.io_send then "IO" else "PI")

(* returns Some value when [name] is a builtin *)
let builtin env (name : string) (arg_exprs : Ast.expr list)
    (args : int list) : int option =
  let node = env.node in
  let one = match args with a :: _ -> a | [] -> 0 in
  if String.equal name Flash_api.handler_globals then begin
    match arg_exprs with
    | [ e ] -> (
      match global_path e with
      | Some path -> Some (global node path)
      | None -> Some 0)
    | _ -> Some 0
  end
  else if List.mem name Flash_api.send_macros then begin
    do_send env ~macro:name ~args;
    Some 0
  end
  else if String.equal name Flash_api.wait_for_db_full then begin
    Option.iter Buffers.mark_full node.current_buffer;
    node.db_synchronized <- true;
    Some 0
  end
  else if
    String.equal name Flash_api.miscbus_read_db
    || String.equal name Flash_api.miscbus_read_db_old
  then begin
    match node.current_buffer with
    | Some b ->
      let word = match args with _ :: w :: _ -> w | _ -> 0 in
      let v =
        Buffers.read node.buffers b ~synchronized:node.db_synchronized ~word
      in
      (match Buffers.faults node.buffers with
      | _ ->
        (* surface any newly recorded pool fault *)
        ());
      Some v
    | None ->
      fault node (F_buffer (Buffers.Use_after_free (-1)));
      Some 0
  end
  else if String.equal name Flash_api.miscbus_write_db then begin
    (match node.current_buffer with
    | Some b ->
      let word, value =
        match args with _ :: w :: v :: _ -> (w, v) | _ -> (0, 0)
      in
      Buffers.write node.buffers b ~word ~value
    | None -> fault node (F_buffer (Buffers.Use_after_free (-1))));
    Some 0
  end
  else if String.equal name Flash_api.allocate_db then begin
    match Buffers.allocate node.buffers with
    | Some b ->
      (match node.current_buffer with
      | Some _ ->
        (* rule 4: the handler just lost track of its current buffer *)
        ()
      | None -> ());
      node.current_buffer <- Some b;
      node.db_synchronized <- true;
      Some b.Buffers.index
    | None ->
      fault node (F_buffer Buffers.Pool_exhausted);
      Some (-1)
  end
  else if String.equal name Flash_api.alloc_failed then
    Some (if one < 0 then 1 else 0)
  else if String.equal name Flash_api.free_db then begin
    (match node.current_buffer with
    | Some b ->
      Buffers.free node.buffers b;
      if b.Buffers.refcount = 0 then node.current_buffer <- None
    | None -> fault node (F_buffer (Buffers.Double_free (-1))));
    Some 0
  end
  else if String.equal name Flash_api.db_inc_refcount then begin
    Option.iter Buffers.incr_refcount node.current_buffer;
    Some 0
  end
  else if String.equal name Flash_api.load_dir_entry then Some 0
    (* directory copies are provided by the simulator before dispatch *)
  else if String.equal name Flash_api.writeback_dir_entry then begin
    set_global node "dirEntry.written_back" 1;
    Some 0
  end
  else if String.equal name Flash_api.dir_addr_macro then Some (one * 8)
  else if String.equal name Flash_api.wait_for_output_space then
    (* the simulator models the suspension (custom service); standalone
       interpretation treats it as an immediate grant *)
    Some (Option.value ~default:0 (node.custom name args))
  else if
    String.equal name Flash_api.wait_for_pi_reply
    || String.equal name Flash_api.wait_for_io_reply
  then begin
    (* the interface answers with the intervention data *)
    node.outstanding_wait <- None;
    set_global node "header.nh.misc"
      (node.intervention_data (global node "header.nh.address"));
    Some 0
  end
  else if String.equal name "OUTPUT_QUEUE_FULL" then
    Some (if Lanes.space node.lanes one = 0 then 1 else 0)
  else if
    List.mem name
      [
        Flash_api.handler_defs;
        Flash_api.sim_handler_hook;
        Flash_api.sim_swhandler_hook;
        Flash_api.sim_procedure_hook;
        Flash_api.handler_prologue;
        Flash_api.no_stack;
        Flash_api.set_stackptr;
        Flash_api.ann_has_buffer;
        Flash_api.ann_no_free_needed;
      ]
  then begin
    node.hook_calls <- node.hook_calls + 1;
    Some 0
  end
  else if String.equal name "FATAL_ERROR" then
    raise (Fatal "unimplemented handler invoked")
  else if String.equal name "DEBUG_PRINT" then Some 0
  else if String.equal name "ALLOC_LINK" then Some (one lor 0x1000)
  else if String.equal name "LINK_INSERT" then
    Some (match args with h :: l :: _ -> (h lxor l) lor 1 | _ -> 1)
  else if String.equal name "LINK_NEXT" then Some (one lsr 1)
  else if String.equal name "LIST_CLEAR" then Some 0
  else if String.equal name "BACKOUT_REQUEST" then Some 0
  else None

(* ------------------------------------------------------------------ *)
(* Expression and statement evaluation                                 *)
(* ------------------------------------------------------------------ *)

let to_bool v = v <> 0
let of_bool b = if b then 1 else 0

let rec eval (env : env) (e : Ast.expr) : int =
  tick env;
  match e.Ast.edesc with
  | Ast.Int_lit (v, _) -> Int64.to_int v
  | Ast.Float_lit (v, _) -> int_of_float v
  | Ast.Str_lit _ -> 0
  | Ast.Char_lit c -> Char.code c
  | Ast.Ident name -> (
    match find_var env name with
    | Some r -> !r
    | None -> (
      match Hashtbl.find_opt env.consts name with
      | Some v -> v
      | None -> Option.value ~default:0
          (Hashtbl.find_opt env.node.globals name)))
  | Ast.Call ({ edesc = Ast.Ident name; _ }, args) -> eval_call env name args
  | Ast.Call (_, _) -> 0
  | Ast.Unop (op, a) -> eval_unop env op a
  | Ast.Binop (op, a, b) -> eval_binop env op a b
  | Ast.Assign (lhs, rhs) ->
    let v = eval env rhs in
    assign env lhs v;
    v
  | Ast.Op_assign (op, lhs, rhs) ->
    let cur = eval env lhs in
    let v = apply_binop op cur (eval env rhs) in
    assign env lhs v;
    v
  | Ast.Cond (c, t, f) -> if to_bool (eval env c) then eval env t else eval env f
  | Ast.Cast (_, a) -> eval env a
  | Ast.Field (_, _) | Ast.Arrow (_, _) ->
    (* bare struct fields only appear under HANDLER_GLOBALS *)
    0
  | Ast.Index (a, i) ->
    (* arrays are modelled as indexed globals *)
    let base =
      match a.Ast.edesc with Ast.Ident n -> n | _ -> "<arr>"
    in
    let idx = eval env i in
    global env.node (Printf.sprintf "%s[%d]" base idx)
  | Ast.Comma (a, b) ->
    ignore (eval env a);
    eval env b
  | Ast.Sizeof_expr _ -> 4
  | Ast.Sizeof_type t -> Ctype.sizeof t

and eval_unop env op a =
  match op with
  | Ast.Neg -> -eval env a
  | Ast.Not -> of_bool (not (to_bool (eval env a)))
  | Ast.Bnot -> lnot (eval env a)
  | Ast.Deref -> eval env a
  | Ast.Addrof -> eval env a
  | Ast.Preinc ->
    let v = eval env a + 1 in
    assign env a v;
    v
  | Ast.Predec ->
    let v = eval env a - 1 in
    assign env a v;
    v
  | Ast.Postinc ->
    let v = eval env a in
    assign env a (v + 1);
    v
  | Ast.Postdec ->
    let v = eval env a in
    assign env a (v - 1);
    v

and apply_binop op a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then 0 else a / b
  | Ast.Mod -> if b = 0 then 0 else a mod b
  | Ast.Shl -> a lsl (b land 62)
  | Ast.Shr -> a asr (b land 62)
  | Ast.Lt -> of_bool (a < b)
  | Ast.Gt -> of_bool (a > b)
  | Ast.Le -> of_bool (a <= b)
  | Ast.Ge -> of_bool (a >= b)
  | Ast.Eq -> of_bool (a = b)
  | Ast.Ne -> of_bool (a <> b)
  | Ast.Band -> a land b
  | Ast.Bxor -> a lxor b
  | Ast.Bor -> a lor b
  | Ast.Land | Ast.Lor -> assert false (* short-circuited below *)

and eval_binop env op a b =
  match op with
  | Ast.Land -> if to_bool (eval env a) then of_bool (to_bool (eval env b)) else 0
  | Ast.Lor -> if to_bool (eval env a) then 1 else of_bool (to_bool (eval env b))
  | _ ->
    (* left-to-right, like the MIPS code the handlers compiled to *)
    let va = eval env a in
    let vb = eval env b in
    apply_binop op va vb

and assign env (lhs : Ast.expr) (v : int) : unit =
  match lhs.Ast.edesc with
  | Ast.Ident name -> (
    match find_var env name with
    | Some r -> r := v
    | None -> set_global env.node name v)
  | Ast.Call ({ edesc = Ast.Ident hg; _ }, [ arg ])
    when String.equal hg Flash_api.handler_globals -> (
    match global_path arg with
    | Some path -> set_global env.node path v
    | None -> ())
  | Ast.Index (a, i) ->
    let base = match a.Ast.edesc with Ast.Ident n -> n | _ -> "<arr>" in
    let idx = eval env i in
    set_global env.node (Printf.sprintf "%s[%d]" base idx) v
  | Ast.Unop (Ast.Deref, inner) -> assign env inner v
  | _ -> ()

and eval_call env name (args : Ast.expr list) : int =
  let argv = List.map (eval env) args in
  match builtin env name args argv with
  | Some v -> v
  | None -> (
    match env.node.custom name argv with
    | Some v -> v
    | None -> (
      match Callgraph.find_func env.program name with
      | Some f -> call_function env f argv
      | None -> 0))

and call_function env (f : Ast.func) (argv : int list) : int =
  push_scope env;
  List.iteri
    (fun i (pname, _) ->
      if pname <> "" then
        declare env pname (Option.value ~default:0 (List.nth_opt argv i)))
    f.Ast.f_params;
  let result =
    try
      exec_stmts env f.Ast.f_body;
      0
    with Return_value v -> v
  in
  pop_scope env;
  result

and exec_stmts env stmts = List.iter (exec_stmt env) stmts

and exec_stmt env (s : Ast.stmt) : unit =
  tick env;
  match s.Ast.sdesc with
  | Ast.Sexpr e -> ignore (eval env e)
  | Ast.Sdecl d ->
    let v = match d.Ast.v_init with Some e -> eval env e | None -> 0 in
    declare env d.Ast.v_name v
  | Ast.Sblock body ->
    push_scope env;
    (try exec_stmts env body
     with exn ->
       pop_scope env;
       raise exn);
    pop_scope env
  | Ast.Sif (c, t, f) ->
    if to_bool (eval env c) then exec_stmt env t
    else Option.iter (exec_stmt env) f
  | Ast.Swhile (c, body) ->
    (try
       while to_bool (eval env c) do
         try exec_stmt env body with Continue_loop -> ()
       done
     with Break_loop -> ())
  | Ast.Sdo (body, c) ->
    (try
       let continue = ref true in
       while !continue do
         (try exec_stmt env body with Continue_loop -> ());
         continue := to_bool (eval env c)
       done
     with Break_loop -> ())
  | Ast.Sfor (init, cond, step, body) ->
    push_scope env;
    (match init with
    | Some (Ast.Fi_expr e) -> ignore (eval env e)
    | Some (Ast.Fi_decl d) ->
      let v = match d.Ast.v_init with Some e -> eval env e | None -> 0 in
      declare env d.Ast.v_name v
    | None -> ());
    (try
       while
         match cond with Some c -> to_bool (eval env c) | None -> true
       do
         (try exec_stmt env body with Continue_loop -> ());
         Option.iter (fun e -> ignore (eval env e)) step
       done
     with Break_loop -> ());
    pop_scope env
  | Ast.Sswitch (e, body) -> exec_switch env e body
  | Ast.Scase _ | Ast.Sdefault -> ()
  | Ast.Sreturn (Some e) -> raise (Return_value (eval env e))
  | Ast.Sreturn None -> raise (Return_value 0)
  | Ast.Sbreak -> raise Break_loop
  | Ast.Scontinue -> raise Continue_loop
  | Ast.Sgoto _ ->
    (* goto is supported by the checkers but not by the interpreter;
       the golden protocols do not use it *)
    ()
  | Ast.Slabel _ | Ast.Snull -> ()

and exec_switch env scrutinee body =
  let v = eval env scrutinee in
  let stmts = match body.Ast.sdesc with Ast.Sblock b -> b | _ -> [ body ] in
  (* find the matching case (or default) and execute with fall-through *)
  let rec find i found_default =
    if i >= List.length stmts then
      if found_default >= 0 then Some found_default else None
    else
      match (List.nth stmts i).Ast.sdesc with
      | Ast.Scase ce when eval env ce = v -> Some i
      | Ast.Sdefault -> find (i + 1) i
      | _ -> find (i + 1) found_default
  in
  match find 0 (-1) with
  | None -> ()
  | Some start ->
    (try
       List.iteri
         (fun i s -> if i > start then exec_stmt env s)
         stmts
     with Break_loop -> ())

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Gather enum constants so protocol code can refer to them. *)
let consts_of_program (tus : Ast.tunit list) : (string, int) Hashtbl.t =
  let consts = Hashtbl.create 64 in
  List.iter
    (fun tu ->
      List.iter
        (function
          | Ast.Genum (_, items, _) ->
            let next = ref 0 in
            List.iter
              (fun (name, value) ->
                let v = match value with Some v -> v | None -> !next in
                Hashtbl.replace consts name v;
                next := v + 1)
              items
          | _ -> ())
        tu.Ast.tu_globals)
    tus;
  consts

let make_env ?(max_steps = 200_000) ~node ~program ~consts () : env =
  { node; program; scopes = [ Hashtbl.create 8 ]; consts; steps = 0;
    max_steps }

(** Run one handler to completion on [node].  Returns the faults recorded
    during this run (newest first) and the messages sent. *)
let run_handler ?(max_steps = 200_000) ~(node : node)
    ~(program : Callgraph.t) ~(consts : (string, int) Hashtbl.t)
    (handler : Ast.func) : fault list * Message.t list =
  let env = make_env ~max_steps ~node ~program ~consts () in
  let before_pool_faults = List.length (Buffers.faults node.buffers) in
  let before_faults = node.faults in
  node.sent <- [];
  (try ignore (call_function env handler [])
   with
  | Fatal msg -> fault node (F_fatal msg)
  | Out_of_fuel -> fault node (F_fatal "handler exceeded its fuel budget"));
  (* surface buffer-pool faults newly recorded inside the pool *)
  let pool_faults = Buffers.faults node.buffers in
  List.iteri
    (fun i f -> if i >= before_pool_faults then fault node (F_buffer f))
    pool_faults;
  let new_faults =
    let rec take acc = function
      | rest when rest == before_faults -> List.rev acc
      | f :: rest -> take (f :: acc) rest
      | [] -> List.rev acc
    in
    take [] node.faults
  in
  (new_faults, List.rev node.sent)
