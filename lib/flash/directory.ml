(** Directory organisations of the five FLASH protocols.

    The protocols the paper checks differ mainly in the data structure
    used to record sharing information (Section 2.1): a bit vector
    (bitvector / coarsevector), dynamically allocated pointer lists
    (dyn ptr), an SCI-style distributed linked list, COMA attraction-memory
    tags, and a remote-access cache (RAC).  All five are implemented here
    behind one interface so the simulator and the examples can drive any of
    them; the sharing-set semantics is the common denominator the
    coherence engine needs. *)

module type S = sig
  type t

  val create : n_nodes:int -> n_lines:int -> t
  val name : string

  val add_sharer : t -> line:int -> node:int -> unit
  val remove_sharer : t -> line:int -> node:int -> unit
  val sharers : t -> line:int -> int list
  val is_sharer : t -> line:int -> node:int -> bool

  val set_dirty : t -> line:int -> owner:int -> unit
  val clear_dirty : t -> line:int -> unit
  val is_dirty : t -> line:int -> bool
  val owner : t -> line:int -> int option

  val clear : t -> line:int -> unit

  val well_formed : t -> bool
  (** internal-consistency invariant, exercised by property tests *)
end

(* ------------------------------------------------------------------ *)
(* Bit vector                                                          *)
(* ------------------------------------------------------------------ *)

module Bitvector : S = struct
  type entry = { mutable bits : int; mutable dirty : bool; mutable own : int }
  type t = { entries : entry array; n_nodes : int }

  let name = "bitvector"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ -> { bits = 0; dirty = false; own = -1 });
      n_nodes;
    }

  let entry t line = t.entries.(line)
  let add_sharer t ~line ~node =
    (entry t line).bits <- (entry t line).bits lor (1 lsl node)

  let remove_sharer t ~line ~node =
    (entry t line).bits <- (entry t line).bits land lnot (1 lsl node)

  let is_sharer t ~line ~node = (entry t line).bits land (1 lsl node) <> 0

  let sharers t ~line =
    List.filter (fun node -> is_sharer t ~line ~node)
      (List.init t.n_nodes Fun.id)

  let set_dirty t ~line ~owner =
    let e = entry t line in
    e.dirty <- true;
    e.own <- owner

  let clear_dirty t ~line =
    let e = entry t line in
    e.dirty <- false;
    e.own <- -1

  let is_dirty t ~line = (entry t line).dirty
  let owner t ~line = if is_dirty t ~line then Some (entry t line).own else None

  let clear t ~line =
    let e = entry t line in
    e.bits <- 0;
    e.dirty <- false;
    e.own <- -1

  let well_formed t =
    Array.for_all
      (fun e -> (not e.dirty) || (e.own >= 0 && e.own < t.n_nodes))
      t.entries
end

(* ------------------------------------------------------------------ *)
(* Dynamic pointer allocation                                          *)
(* ------------------------------------------------------------------ *)

module Dyn_ptr : S = struct
  (* a shared pool of links; each directory entry holds a head index *)
  type link = { l_node : int; mutable l_next : int }

  type entry = { mutable head : int; mutable dirty : bool; mutable own : int }

  type t = {
    entries : entry array;
    pool : (int, link) Hashtbl.t;
    mutable next_link : int;
    n_nodes : int;
  }

  let name = "dyn_ptr"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ -> { head = -1; dirty = false; own = -1 });
      pool = Hashtbl.create 256;
      next_link = 0;
      n_nodes;
    }

  let entry t line = t.entries.(line)

  let rec mem_list t idx node =
    if idx < 0 then false
    else
      let link = Hashtbl.find t.pool idx in
      link.l_node = node || mem_list t link.l_next node

  let is_sharer t ~line ~node = mem_list t (entry t line).head node

  let add_sharer t ~line ~node =
    if not (is_sharer t ~line ~node) then begin
      let idx = t.next_link in
      t.next_link <- t.next_link + 1;
      Hashtbl.replace t.pool idx { l_node = node; l_next = (entry t line).head };
      (entry t line).head <- idx
    end

  let remove_sharer t ~line ~node =
    let e = entry t line in
    let rec unlink prev idx =
      if idx >= 0 then begin
        let link = Hashtbl.find t.pool idx in
        if link.l_node = node then begin
          (match prev with
          | None -> e.head <- link.l_next
          | Some p -> p.l_next <- link.l_next);
          Hashtbl.remove t.pool idx
        end
        else unlink (Some link) link.l_next
      end
    in
    unlink None e.head

  let sharers t ~line =
    let rec collect idx acc =
      if idx < 0 then List.rev acc
      else
        let link = Hashtbl.find t.pool idx in
        collect link.l_next (link.l_node :: acc)
    in
    List.sort compare (collect (entry t line).head [])

  let set_dirty t ~line ~owner =
    let e = entry t line in
    e.dirty <- true;
    e.own <- owner

  let clear_dirty t ~line =
    let e = entry t line in
    e.dirty <- false;
    e.own <- -1

  let is_dirty t ~line = (entry t line).dirty
  let owner t ~line = if is_dirty t ~line then Some (entry t line).own else None

  let clear t ~line =
    let e = entry t line in
    List.iter (fun node -> remove_sharer t ~line ~node) (sharers t ~line);
    e.dirty <- false;
    e.own <- -1

  let well_formed t =
    Array.for_all
      (fun e ->
        ((not e.dirty) || (e.own >= 0 && e.own < t.n_nodes))
        && (e.head < 0 || Hashtbl.mem t.pool e.head))
      t.entries
end

(* ------------------------------------------------------------------ *)
(* SCI-style distributed linked list                                   *)
(* ------------------------------------------------------------------ *)

module Sci : S = struct
  (* SCI chains sharers in a distributed doubly-linked list whose head
     lives at the home node.  We model each node's forward/backward line
     pointers centrally: [fwd.(n)] is the next sharer after n, [back.(n)]
     the previous one (or the home sentinel [-2] when n is the head);
     [-1] means "not on the list". *)
  let off_list = -1
  let home_sentinel = -2

  type entry = {
    mutable head : int;
    mutable dirty : bool;
    fwd : int array;
    back : int array;
  }

  type t = { entries : entry array; n_nodes : int }

  let name = "sci"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ ->
            {
              head = off_list;
              dirty = false;
              fwd = Array.make n_nodes off_list;
              back = Array.make n_nodes off_list;
            });
      n_nodes;
    }

  let entry t line = t.entries.(line)

  let is_sharer t ~line ~node =
    let e = entry t line in
    e.back.(node) <> off_list

  let add_sharer t ~line ~node =
    let e = entry t line in
    if not (is_sharer t ~line ~node) then begin
      (* newest sharer prepends and becomes head, as in SCI *)
      let old = e.head in
      e.fwd.(node) <- old;
      e.back.(node) <- home_sentinel;
      if old >= 0 then e.back.(old) <- node;
      e.head <- node
    end

  let remove_sharer t ~line ~node =
    let e = entry t line in
    if is_sharer t ~line ~node then begin
      let next = e.fwd.(node) in
      let prev = e.back.(node) in
      if prev = home_sentinel then e.head <- next
      else if prev >= 0 then e.fwd.(prev) <- next;
      if next >= 0 then e.back.(next) <- prev;
      e.fwd.(node) <- off_list;
      e.back.(node) <- off_list
    end

  let sharers t ~line =
    let e = entry t line in
    let rec walk node acc steps =
      if node < 0 || steps > t.n_nodes then List.rev acc
      else walk e.fwd.(node) (node :: acc) (steps + 1)
    in
    List.sort compare (walk e.head [] 0)

  let set_dirty t ~line ~owner =
    let e = entry t line in
    e.dirty <- true;
    (* the dirty owner sits at the head of the chain *)
    if e.head <> owner then begin
      remove_sharer t ~line ~node:owner;
      add_sharer t ~line ~node:owner
    end

  let clear_dirty t ~line = (entry t line).dirty <- false
  let is_dirty t ~line = (entry t line).dirty

  let owner t ~line =
    let e = entry t line in
    if e.dirty && e.head >= 0 then Some e.head else None

  let clear t ~line =
    let e = entry t line in
    Array.fill e.fwd 0 t.n_nodes off_list;
    Array.fill e.back 0 t.n_nodes off_list;
    e.head <- off_list;
    e.dirty <- false

  let well_formed t =
    Array.for_all
      (fun e ->
        (* the chain from head terminates and links are mutually
           consistent *)
        let rec ok node steps =
          if node < 0 then true
          else if steps > t.n_nodes then false
          else
            let next = e.fwd.(node) in
            (next < 0 || e.back.(next) = node) && ok next (steps + 1)
        in
        (e.head < 0 || e.back.(e.head) = home_sentinel) && ok e.head 0)
      t.entries
end

(* ------------------------------------------------------------------ *)
(* COMA attraction memory                                              *)
(* ------------------------------------------------------------------ *)

module Coma : S = struct
  (* each line has a master copy that migrates; sharing is tracked by
     per-node presence tags, with the master bit standing in for dirty
     ownership *)
  type entry = {
    tags : bool array;
    mutable master : int;  (** node holding the master copy *)
    mutable exclusive : bool;
  }

  type t = { entries : entry array; n_nodes : int }

  let name = "coma"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ ->
            { tags = Array.make n_nodes false; master = -1; exclusive = false });
      n_nodes;
    }

  let entry t line = t.entries.(line)

  let add_sharer t ~line ~node =
    let e = entry t line in
    e.tags.(node) <- true;
    if e.master < 0 then e.master <- node

  let remove_sharer t ~line ~node =
    let e = entry t line in
    e.tags.(node) <- false;
    if e.master = node then begin
      (* the master copy migrates to another holder, if any *)
      e.master <- -1;
      Array.iteri (fun i present -> if present && e.master < 0 then e.master <- i) e.tags;
      if e.master < 0 then e.exclusive <- false
    end

  let is_sharer t ~line ~node = (entry t line).tags.(node)

  let sharers t ~line =
    let e = entry t line in
    List.filter (fun node -> e.tags.(node)) (List.init t.n_nodes Fun.id)

  let set_dirty t ~line ~owner =
    let e = entry t line in
    Array.fill e.tags 0 t.n_nodes false;
    e.tags.(owner) <- true;
    e.master <- owner;
    e.exclusive <- true

  let clear_dirty t ~line = (entry t line).exclusive <- false
  let is_dirty t ~line = (entry t line).exclusive

  let owner t ~line =
    let e = entry t line in
    if e.exclusive && e.master >= 0 then Some e.master else None

  let clear t ~line =
    let e = entry t line in
    Array.fill e.tags 0 t.n_nodes false;
    e.master <- -1;
    e.exclusive <- false

  let well_formed t =
    Array.for_all
      (fun e ->
        (e.master < 0 && not (Array.exists Fun.id e.tags))
        || (e.master >= 0 && e.tags.(e.master)))
      t.entries
end

(* ------------------------------------------------------------------ *)
(* Remote access cache                                                 *)
(* ------------------------------------------------------------------ *)

module Rac : S = struct
  (* a bitvector directory augmented with a small remote-access cache of
     recently used remote lines; the RAC state machine is what made the
     rac protocol's handlers the largest in Table 1 *)
  type rac_state = R_invalid | R_shared | R_dirty

  type entry = {
    mutable bits : int;
    mutable dirty : bool;
    mutable own : int;
    rac : rac_state array;  (** per-node cached state of this line *)
  }

  type t = { entries : entry array; n_nodes : int }

  let name = "rac"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ ->
            {
              bits = 0;
              dirty = false;
              own = -1;
              rac = Array.make n_nodes R_invalid;
            });
      n_nodes;
    }

  let entry t line = t.entries.(line)

  let add_sharer t ~line ~node =
    let e = entry t line in
    e.bits <- e.bits lor (1 lsl node);
    if e.rac.(node) <> R_dirty then e.rac.(node) <- R_shared

  let remove_sharer t ~line ~node =
    let e = entry t line in
    e.bits <- e.bits land lnot (1 lsl node);
    e.rac.(node) <- R_invalid;
    if e.dirty && e.own = node then begin
      e.dirty <- false;
      e.own <- -1
    end

  let is_sharer t ~line ~node = (entry t line).bits land (1 lsl node) <> 0

  let sharers t ~line =
    List.filter (fun node -> is_sharer t ~line ~node)
      (List.init t.n_nodes Fun.id)

  let set_dirty t ~line ~owner =
    let e = entry t line in
    (* exclusive ownership: everyone else's RAC entry is invalidated *)
    Array.fill e.rac 0 t.n_nodes R_invalid;
    e.bits <- 1 lsl owner;
    e.dirty <- true;
    e.own <- owner;
    e.rac.(owner) <- R_dirty

  let clear_dirty t ~line =
    let e = entry t line in
    (if e.own >= 0 then e.rac.(e.own) <- R_shared);
    e.dirty <- false;
    e.own <- -1

  let is_dirty t ~line = (entry t line).dirty
  let owner t ~line = if is_dirty t ~line then Some (entry t line).own else None

  let clear t ~line =
    let e = entry t line in
    e.bits <- 0;
    e.dirty <- false;
    e.own <- -1;
    Array.fill e.rac 0 t.n_nodes R_invalid

  let well_formed t =
    Array.for_all
      (fun e ->
        (not e.dirty)
        || (e.own >= 0 && e.own < t.n_nodes && e.rac.(e.own) = R_dirty))
      t.entries
end

(* ------------------------------------------------------------------ *)
(* Coarse vector                                                       *)
(* ------------------------------------------------------------------ *)

module Coarsevector : S = struct
  (* the bitvector's big-machine variant (the paper calls the protocol
     "bitvector/coarsevector"): each bit stands for a *group* of nodes,
     so invalidations over-approximate the sharer set.  [sharers] returns
     every node in a marked group, which is exactly the conservative set
     the protocol must invalidate. *)
  let group_size = 2

  type entry = { mutable bits : int; mutable dirty : bool; mutable own : int }

  type t = { entries : entry array; n_nodes : int }

  let name = "coarsevector"

  let create ~n_nodes ~n_lines =
    {
      entries =
        Array.init n_lines (fun _ -> { bits = 0; dirty = false; own = -1 });
      n_nodes;
    }

  let entry t line = t.entries.(line)
  let group node = node / group_size

  let add_sharer t ~line ~node =
    (entry t line).bits <- (entry t line).bits lor (1 lsl group node)

  let remove_sharer t ~line ~node =
    (* without per-node state the directory cannot know whether another
       node of the group still shares the line, so the bit stays set: the
       sharer set is an over-approximation and the protocol tolerates the
       resulting spurious invalidations.  Bits are reclaimed wholesale by
       [clear]. *)
    ignore (t, line, node)

  let is_sharer t ~line ~node =
    (entry t line).bits land (1 lsl group node) <> 0

  let sharers t ~line =
    List.filter (fun node -> is_sharer t ~line ~node)
      (List.init t.n_nodes Fun.id)

  let set_dirty t ~line ~owner =
    let e = entry t line in
    e.dirty <- true;
    e.own <- owner

  let clear_dirty t ~line =
    let e = entry t line in
    e.dirty <- false;
    e.own <- -1

  let is_dirty t ~line = (entry t line).dirty
  let owner t ~line = if is_dirty t ~line then Some (entry t line).own else None

  let clear t ~line =
    let e = entry t line in
    e.bits <- 0;
    e.dirty <- false;
    e.own <- -1

  let well_formed t =
    Array.for_all
      (fun e -> (not e.dirty) || (e.own >= 0 && e.own < t.n_nodes))
      t.entries
end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type packed = (module S)

let of_protocol : string -> packed option = function
  | "bitvector" -> Some (module Bitvector)
  | "coarsevector" -> Some (module Coarsevector)
  | "dyn_ptr" -> Some (module Dyn_ptr)
  | "sci" -> Some (module Sci)
  | "coma" -> Some (module Coma)
  | "rac" -> Some (module Rac)
  | _ -> None

let all : packed list =
  [
    (module Bitvector);
    (module Coarsevector);
    (module Dyn_ptr);
    (module Sci);
    (module Coma);
    (module Rac);
  ]
