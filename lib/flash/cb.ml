(** Code-building combinators for the corpus generator.

    Thin sugar over {!Ast} constructors so handler skeletons read almost
    like the C they generate. *)

let id name = Ast.ident name
let num n = Ast.int_lit n
let str s = Ast.mk_expr (Ast.Str_lit s)
let call name args = Ast.call name args

(** [HANDLER_GLOBALS(a.b.c)] for the dotted path ["a.b.c"]. *)
let hg path =
  let parts = String.split_on_char '.' path in
  match parts with
  | [] -> invalid_arg "Cb.hg: empty path"
  | root :: fields ->
    let e =
      List.fold_left
        (fun acc f -> Ast.mk_expr (Ast.Field (acc, f)))
        (id root) fields
    in
    call Flash_api.handler_globals [ e ]

let binop op a b = Ast.mk_expr (Ast.Binop (op, a, b))
let ( +: ) a b = binop Ast.Add a b
let ( -: ) a b = binop Ast.Sub a b
let ( *: ) a b = binop Ast.Mul a b
let ( ==: ) a b = binop Ast.Eq a b
let ( <>: ) a b = binop Ast.Ne a b
let ( <: ) a b = binop Ast.Lt a b
let ( >: ) a b = binop Ast.Gt a b
let ( &&: ) a b = binop Ast.Land a b
let ( ||: ) a b = binop Ast.Lor a b
let ( |: ) a b = binop Ast.Bor a b
let ( &: ) a b = binop Ast.Band a b
let ( ^: ) a b = binop Ast.Bxor a b
let ( <<: ) a b = binop Ast.Shl a b
let ( >>: ) a b = binop Ast.Shr a b
let not_ e = Ast.mk_expr (Ast.Unop (Ast.Not, e))

let assign lhs rhs = Ast.mk_stmt (Ast.Sexpr (Ast.mk_expr (Ast.Assign (lhs, rhs))))
let op_assign op lhs rhs =
  Ast.mk_stmt (Ast.Sexpr (Ast.mk_expr (Ast.Op_assign (op, lhs, rhs))))

let expr e = Ast.mk_stmt (Ast.Sexpr e)
let do_call name args = expr (call name args)
let block stmts = Ast.mk_stmt (Ast.Sblock stmts)
let sif cond then_ = Ast.mk_stmt (Ast.Sif (cond, block then_, None))
let sif_else cond then_ else_ =
  Ast.mk_stmt (Ast.Sif (cond, block then_, Some (block else_)))

let swhile cond body = Ast.mk_stmt (Ast.Swhile (cond, block body))
let sreturn = Ast.mk_stmt (Ast.Sreturn None)
let sreturn_e e = Ast.mk_stmt (Ast.Sreturn (Some e))
let sbreak = Ast.mk_stmt Ast.Sbreak

(** [switch e [(case_expr, body); ...] default] with a break after each
    case body (fall-through is introduced deliberately where wanted). *)
let sswitch e cases default =
  let case_stmts =
    List.concat_map
      (fun (ce, body) -> (Ast.mk_stmt (Ast.Scase ce) :: body) @ [ sbreak ])
      cases
  in
  let default_stmts =
    match default with
    | Some body -> (Ast.mk_stmt Ast.Sdefault :: body) @ [ sbreak ]
    | None -> []
  in
  Ast.mk_stmt (Ast.Sswitch (e, block (case_stmts @ default_stmts)))

let decl ?init name ty =
  Ast.mk_stmt
    (Ast.Sdecl
       { Ast.v_name = name; v_type = ty; v_init = init; v_loc = Loc.none;
         v_static = false })

let decl_long ?init name = decl ?init name Ctype.Long
let decl_int ?init name = decl ?init name Ctype.Int

let func ?(static = false) ?(ret = Ctype.Void) ?(params = []) name body =
  {
    Ast.f_name = name;
    f_ret = ret;
    f_params = params;
    f_body = body;
    f_loc = Loc.none;
    f_static = static;
    f_end_loc = Loc.none;
  }

(* ------------------------------------------------------------------ *)
(* FLASH idioms                                                        *)
(* ------------------------------------------------------------------ *)

(** The two mandatory first statements of a handler. *)
let handler_prologue () =
  [ do_call Flash_api.handler_defs []; do_call Flash_api.handler_prologue [] ]

let sim_procedure_hook () = do_call Flash_api.sim_procedure_hook []

let len_assign value = assign (hg "header.nh.len") (id value)
let type_assign opcode = assign (hg "header.nh.type") (id opcode)

(** [NI_SEND(opcode, flag, keep, wait, dec, null)]. *)
let ni_send ?(wait = Flash_api.w_nowait) ~opcode ~flag () =
  do_call Flash_api.ni_send
    [ id opcode; id flag; num 0; id wait; num 1; num 0 ]

(** [PI_SEND(flag, keep, swap, wait, dec, null)]. *)
let pi_send ?(wait = Flash_api.w_nowait) ~flag () =
  do_call Flash_api.pi_send [ id flag; num 0; num 0; id wait; num 1; num 0 ]

(** [IO_SEND(flag, keep, swap, wait, dec, null)]. *)
let io_send ?(wait = Flash_api.w_nowait) ~flag () =
  do_call Flash_api.io_send [ id flag; num 0; num 0; id wait; num 1; num 0 ]

let free_db () = do_call Flash_api.free_db []
let load_dir addr = do_call Flash_api.load_dir_entry [ addr ]
let writeback_dir addr = do_call Flash_api.writeback_dir_entry [ addr ]
let dir_addr e = call Flash_api.dir_addr_macro [ e ]
let wait_db e = do_call Flash_api.wait_for_db_full [ e ]
let read_db addr off = call Flash_api.miscbus_read_db [ addr; num off ]
let write_db addr off v =
  do_call Flash_api.miscbus_write_db [ addr; num off; v ]
