(** Ground truth for the synthetic corpus.

    Every fault (and every intentional checker-confusing construct) seeded
    into the generated protocols is recorded here, so the experiment
    harness can classify each reported diagnostic as a true error, a minor
    violation, or a false positive, and verify that no seeded fault is
    missed.  This plays the role of the paper authors' manual triage of
    checker output. *)

type kind =
  | Bug  (** a real error the checker should report *)
  | Minor  (** technically a violation: unreachable/harmless/abstraction *)
  | False_positive
      (** valid code the checker is expected to flag (unpruned paths,
          debug idioms, subroutine conventions) *)

type entry = {
  checker : string;  (** checker expected to fire *)
  protocol : string;
  func : string;  (** function containing the seeded site *)
  kind : kind;
  count : int;  (** how many distinct reports this site produces *)
  note : string;
}

let entry ?(count = 1) ~checker ~protocol ~func ~kind note =
  { checker; protocol; func; kind; count; note }

let kind_to_string = function
  | Bug -> "bug"
  | Minor -> "minor"
  | False_positive -> "false positive"

(** Classify a diagnostic against the manifest: find an entry for the same
    checker/protocol/function. *)
let classify (entries : entry list) ~checker ~protocol ~func : entry option =
  List.find_opt
    (fun e ->
      String.equal e.checker checker
      && String.equal e.protocol protocol
      && String.equal e.func func)
    entries

(** Expected totals for one checker in one protocol. *)
let expected_counts (entries : entry list) ~checker ~protocol : int * int * int
    =
  List.fold_left
    (fun (bugs, minors, fps) e ->
      if String.equal e.checker checker && String.equal e.protocol protocol
      then
        match e.kind with
        | Bug -> (bugs + e.count, minors, fps)
        | Minor -> (bugs, minors + e.count, fps)
        | False_positive -> (bugs, minors, fps + e.count)
      else (bugs, minors, fps))
    (0, 0, 0) entries
