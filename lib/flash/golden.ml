(** An executable bitvector coherence protocol, hand-written in Clite.

    This is the protocol the FlashLite-substitute simulator runs.  Two
    variants are provided: [clean] (correct) and [buggy], which seeds four
    of the paper's bug classes on the same rare corner paths the checkers
    find them on statically:

    + a double free on the dirty-remote GET path (deadlocks the node after
      the pool drains);
    + a message-length/data mismatch on the uncached-read path taken only
      when the line is dirty remotely *and* the reply queue is full
      (silent data corruption);
    + an unsynchronised first-byte read of the data buffer in the PUT
      receive handler, on a corner path (data race);
    + a buffer leak in the invalidation handler when the line is not
      actually cached (slow leak; the node wedges days later).

    The simulator drives processor reads/writes/uncached reads through
    these handlers and checks data integrity, so the paper's
    motivating claim — rare-path bugs survive simulation while the static
    checkers pinpoint them immediately — can be measured. *)

let preamble =
  {|
/* handlers compute a line's home node as addr % numNodes */
void CACHE_WRITE_LINE(long addr);
void CACHE_READ_LINE(long addr);
void CACHE_INVALIDATE(long addr);
int CACHE_PRESENT(long addr);
void MEMORY_READ_LINE(long addr);
void MEMORY_WRITE_LINE(long addr);
|}

(* The handlers, with [%BUG_x%] markers replaced per variant. *)
let template =
  {|
/* home node: a remote processor wants a shared copy */
void NILocalGet(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  long src;
  addr = HANDLER_GLOBALS(header.nh.address);
  src = HANDLER_GLOBALS(header.nh.src);
  LOAD_DIR_ENTRY(DIR_ADDR(addr));
  if (HANDLER_GLOBALS(dirEntry.dirty)) {
    /* dirty in a remote cache: ask the owner to write back and make
       the requester retry */
    HANDLER_GLOBALS(header.nh.dest) = HANDLER_GLOBALS(dirEntry.owner);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_INTERVENTION, F_NODATA, 0, W_NOWAIT, 1, 0);
    HANDLER_GLOBALS(header.nh.dest) = src;
    HANDLER_GLOBALS(header.nh.type) = MSG_NAK;
    NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0);
    WRITEBACK_DIR_ENTRY(DIR_ADDR(addr));
    FREE_DB();
    %BUG_DOUBLE_FREE%
    return;
  }
  HANDLER_GLOBALS(dirEntry.vector) = HANDLER_GLOBALS(dirEntry.vector) | (1 << src);
  WRITEBACK_DIR_ENTRY(DIR_ADDR(addr));
  MEMORY_READ_LINE(addr);
  HANDLER_GLOBALS(header.nh.dest) = src;
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  NI_SEND(MSG_PUT, F_DATA, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* home node: a remote processor wants an exclusive copy */
void NILocalGetX(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  long src;
  long node;
  addr = HANDLER_GLOBALS(header.nh.address);
  src = HANDLER_GLOBALS(header.nh.src);
  LOAD_DIR_ENTRY(DIR_ADDR(addr));
  if (HANDLER_GLOBALS(dirEntry.dirty)) {
    HANDLER_GLOBALS(header.nh.dest) = HANDLER_GLOBALS(dirEntry.owner);
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_INTERVENTION, F_NODATA, 0, W_NOWAIT, 1, 0);
    HANDLER_GLOBALS(header.nh.dest) = src;
    HANDLER_GLOBALS(header.nh.type) = MSG_NAK;
    NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0);
    WRITEBACK_DIR_ENTRY(DIR_ADDR(addr));
    FREE_DB();
    return;
  }
  /* invalidate every current sharer except the requester */
  node = 0;
  while (node < numNodes) {
    if (node != src && (HANDLER_GLOBALS(dirEntry.vector) & (1 << node))) {
      WAIT_FOR_OUTPUT_SPACE(2);
      HANDLER_GLOBALS(header.nh.dest) = node;
      HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
      NI_SEND(MSG_INVAL, F_NODATA, 0, W_NOWAIT, 1, 0);
    }
    node = node + 1;
  }
  HANDLER_GLOBALS(dirEntry.vector) = 0;
  HANDLER_GLOBALS(dirEntry.dirty) = 1;
  HANDLER_GLOBALS(dirEntry.owner) = src;
  WRITEBACK_DIR_ENTRY(DIR_ADDR(addr));
  MEMORY_READ_LINE(addr);
  HANDLER_GLOBALS(header.nh.dest) = src;
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  NI_SEND(MSG_PUTX, F_DATA, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* home node: the owner writes a dirty line back */
void NILocalWB(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  long src;
  addr = HANDLER_GLOBALS(header.nh.address);
  src = HANDLER_GLOBALS(header.nh.src);
  WAIT_FOR_DB_FULL(addr);
  MEMORY_WRITE_LINE(addr);
  LOAD_DIR_ENTRY(DIR_ADDR(addr));
  HANDLER_GLOBALS(dirEntry.dirty) = 0;
  HANDLER_GLOBALS(dirEntry.owner) = 0 - 1;
  WRITEBACK_DIR_ENTRY(DIR_ADDR(addr));
  HANDLER_GLOBALS(header.nh.dest) = src;
  HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
  NI_SEND(MSG_WB_ACK, F_NODATA, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* owner node: the home asks for the dirty line back */
void NIIntervention(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  addr = HANDLER_GLOBALS(header.nh.address);
  CACHE_READ_LINE(addr);
  CACHE_INVALIDATE(addr);
  HANDLER_GLOBALS(header.nh.dest) = addr % numNodes;
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  NI_SEND(MSG_WB, F_DATA, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* requester node: shared data arrives */
void NIRemotePut(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  long v;
  addr = HANDLER_GLOBALS(header.nh.address);
  %BUG_RACE_READ%
  WAIT_FOR_DB_FULL(addr);
  CACHE_WRITE_LINE(addr);
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  PI_SEND(F_DATA, 0, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* requester node: exclusive data arrives */
void NIRemotePutX(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  addr = HANDLER_GLOBALS(header.nh.address);
  WAIT_FOR_DB_FULL(addr);
  CACHE_WRITE_LINE(addr);
  HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
  PI_SEND(F_DATA, 0, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* requester node: home said retry */
void NIRemoteNAK(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  FREE_DB();
}

/* sharer node: invalidate the local copy */
void NIInval(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  addr = HANDLER_GLOBALS(header.nh.address);
  %BUG_LEAK%
  CACHE_INVALIDATE(addr);
  FREE_DB();
}

/* home node: writeback acknowledged (nothing to do) */
void NIWBAck(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  FREE_DB();
}

/* home node: uncached read of one word */
void NIUncachedRead(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  long src;
  addr = HANDLER_GLOBALS(header.nh.address);
  src = HANDLER_GLOBALS(header.nh.src);
  LOAD_DIR_ENTRY(DIR_ADDR(addr));
  HANDLER_GLOBALS(header.nh.dest) = src;
  if (HANDLER_GLOBALS(dirEntry.dirty)) {
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    HANDLER_GLOBALS(header.nh.type) = MSG_NAK;
    if (OUTPUT_QUEUE_FULL(3)) {
      /* the rare corner: dirty in another node's cache concurrent with
         a full reply queue on the local node */
      %BUG_LEN_MISMATCH%
    } else {
      HANDLER_GLOBALS(header.nh.dest) = HANDLER_GLOBALS(dirEntry.owner);
      NI_SEND(MSG_INTERVENTION, F_NODATA, 0, W_NOWAIT, 1, 0);
      HANDLER_GLOBALS(header.nh.dest) = src;
      WAIT_FOR_OUTPUT_SPACE(3);
      NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0);
    }
    FREE_DB();
    return;
  }
  MEMORY_READ_LINE(addr);
  HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
  WAIT_FOR_OUTPUT_SPACE(3);
  NI_SEND(MSG_UNCACHED_REPLY, F_DATA, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}

/* requester node: the uncached word arrives */
void NIUncachedReply(void)
{
  HANDLER_DEFS();
  SIM_HANDLER_HOOK();
  long addr;
  addr = HANDLER_GLOBALS(header.nh.address);
  WAIT_FOR_DB_FULL(addr);
  HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
  PI_SEND(F_DATA, 0, 0, W_NOWAIT, 1, 0);
  FREE_DB();
}
|}

let clean_substitutions =
  [
    ("%BUG_DOUBLE_FREE%", "");
    ("%BUG_RACE_READ%", "");
    ( "%BUG_LEN_MISMATCH%",
      "WAIT_FOR_OUTPUT_SPACE(3);\n      NI_SEND(MSG_NAK, F_NODATA, 0, W_NOWAIT, 1, 0);" );
    ("%BUG_LEAK%", "");
  ]

let buggy_substitutions =
  [
    (* double free on a rare corner of the dirty-remote path *)
    ( "%BUG_DOUBLE_FREE%",
      "if (HANDLER_GLOBALS(header.nh.misc)) {\n      FREE_DB();\n    }" );
    (* first-byte peek before synchronising, on a corner path *)
    ( "%BUG_RACE_READ%",
      "if (HANDLER_GLOBALS(header.nh.misc)) {\n\
      \    v = MISCBUS_READ_DB(addr, 0);\n\
      \    protoStats[9] = protoStats[9] + v;\n\
      \  }" );
    (* forgets the length is still LEN_NODATA from the NAK set-up *)
    ( "%BUG_LEN_MISMATCH%",
      "WAIT_FOR_OUTPUT_SPACE(3);\n\
      \      MEMORY_READ_LINE(addr);\n\
      \      NI_SEND(MSG_UNCACHED_REPLY, F_DATA, 0, W_NOWAIT, 1, 0);" );
    (* returns without freeing when the line is not cached here *)
    ( "%BUG_LEAK%",
      "if (!CACHE_PRESENT(addr)) {\n\
      \    return;\n\
      \  }" );
  ]

(* split a string on a literal substring *)
let split_on_string ~sep s =
  let sl = String.length sep in
  if sl = 0 then [ s ]
  else begin
    let parts = ref [] in
    let start = ref 0 in
    let i = ref 0 in
    let n = String.length s in
    while !i <= n - sl do
      if String.sub s !i sl = sep then begin
        parts := String.sub s !start (!i - !start) :: !parts;
        i := !i + sl;
        start := !i
      end
      else incr i
    done;
    parts := String.sub s !start (n - !start) :: !parts;
    List.rev !parts
  end

let replace_all subs text =
  List.fold_left
    (fun acc (marker, replacement) ->
      String.concat replacement (split_on_string ~sep:marker acc))
    text subs

(** Which handler runs for each incoming network message. *)
let handler_map : (string * string) list =
  [
    ("MSG_GET", "NILocalGet");
    ("MSG_GETX", "NILocalGetX");
    ("MSG_WB", "NILocalWB");
    ("MSG_INTERVENTION", "NIIntervention");
    ("MSG_PUT", "NIRemotePut");
    ("MSG_PUTX", "NIRemotePutX");
    ("MSG_NAK", "NIRemoteNAK");
    ("MSG_INVAL", "NIInval");
    ("MSG_WB_ACK", "NIWBAck");
    ("MSG_UNCACHED_READ", "NIUncachedRead");
    ("MSG_UNCACHED_REPLY", "NIUncachedReply");
  ]

type variant = Clean | Buggy

(** The protocol source for a variant. *)
let source (v : variant) : string =
  let subs =
    match v with Clean -> clean_substitutions | Buggy -> buggy_substitutions
  in
  Prelude.text ^ preamble ^ replace_all subs template

(** Parse a variant into a checked program. *)
let program (v : variant) : Ast.tunit list =
  Frontend.of_strings [ ("golden.c", source v) ]

(** Protocol spec for the golden handlers (used when static-checking the
    same source the simulator runs). *)
let spec : Flash_api.spec =
  {
    Flash_api.p_name = "golden";
    p_handlers =
      List.map
        (fun (_, h) ->
          {
            Flash_api.h_name = h;
            h_kind = Flash_api.Hw_handler;
            h_lane_allowance = [| 1; 0; 2; 1 |];
            h_no_stack = false;
          })
        handler_map;
    p_free_funcs = [];
    p_use_funcs = [];
    p_cond_free_funcs = [];
  }
