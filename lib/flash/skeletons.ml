(** Handler skeletons for the synthetic FLASH protocol corpus.

    The paper distills every FLASH protocol into three handler classes
    (Section 2.1): pass-thru handlers, directory-consulting handlers, and
    intervention handlers.  Each generator below produces a realistic
    member of one class — prologue hooks, header-field unpacking, directory
    traffic in the protocol's own directory idiom, sends with the
    length/data discipline, and buffer deallocation — with optional seeded
    faults at the exact corner-case sites the paper describes (uncached
    reads, eager mode, queue-full paths). *)

open Cb

type bug =
  | No_bug
  | Race_read  (** unsynchronised MISCBUS_READ_DB on a corner path *)
  | Race_read_debug_fp  (** intentional unsynchronised read (debug code) *)
  | Len_data_mismatch  (** LEN_NODATA inherited into an F_DATA send *)
  | Len_var_fp  (** correlated branches: infeasible-path false positives *)
  | Double_free
  | Buffer_leak
  | Buf_minor  (** buffer violation inside unimplemented code *)
  | Buf_annot_useful  (** legitimate no_free_needed() special path *)
  | Buf_annot_fp  (** if/else twice on one condition: 2 infeasible paths *)
  | Buf_data_fp  (** data-dependent free: 1 infeasible leak report *)
  | Lane_overrun  (** one reply-lane send beyond the allowance *)
  | Hook_omission  (** simulator hook missing *)
  | Hook_unimplemented  (** hook missing in a FATAL_ERROR stub *)
  | Alloc_unchecked_fp  (** DEBUG_PRINT of the buffer before ALLOC_FAILED *)
  | Dir_no_writeback  (** modified entry never written back: real bug *)
  | Dir_spec_nak  (** speculative modify backed out with a NAK: pruned *)
  | Dir_spec_backout_fp  (** speculative modify, no NAK: false positive *)
  | Dir_abstraction_fp  (** directory address computed by hand *)
  | Sendwait_barrier_fp  (** hand-rolled wait loop instead of the macro *)

(** Directory idiom: how this protocol's handlers update sharing state.
    This is what actually distinguishes the five protocols' source. *)
type flavor = Bitvector | Dyn_ptr | Sci | Coma | Rac | Common

let flavor_name = function
  | Bitvector -> "bitvector"
  | Dyn_ptr -> "dyn_ptr"
  | Sci -> "sci"
  | Coma -> "coma"
  | Rac -> "rac"
  | Common -> "common"

type gctx = {
  rng : Rng.t;
  flavor : flavor;
  mutable n_locals : int;
  mutable locals : string list;  (** long-typed scratch locals, newest first *)
}

let gctx ~rng ~flavor = { rng; flavor; n_locals = 0; locals = [] }

let fresh_local g =
  let name = Printf.sprintf "tmp%d" g.n_locals in
  g.n_locals <- g.n_locals + 1;
  g.locals <- name :: g.locals;
  name

let pick_local g =
  match g.locals with
  | [] -> fresh_local g
  | ls -> Rng.choose g.rng ls

(* ------------------------------------------------------------------ *)
(* Padding: realistic straight-line bookkeeping                        *)
(* ------------------------------------------------------------------ *)

(* One straight-line statement: stat updates, bit fiddling on header
   fields, scratch arithmetic.  Never branches, never touches buffers,
   sends or the directory, so padding cannot perturb any checker. *)
let pad_stmt g =
  let v = pick_local g in
  let w = pick_local g in
  match Rng.int g.rng 8 with
  | 0 ->
    op_assign Ast.Add
      (Ast.mk_expr (Ast.Index (id "protoStats", num (Rng.int g.rng 64))))
      (num 1)
  | 1 -> assign (id v) (id w <<: num (Rng.range g.rng 1 4))
  | 2 -> assign (id v) (id w ^: hg "header.nh.misc")
  | 3 -> assign (hg "header.nh.misc") (id v &: num 255)
  | 4 -> assign (id v) ((id w >>: num 2) +: num (Rng.int g.rng 16))
  | 5 -> assign (id v) (hg "header.nh.src" *: num 4)
  | 6 -> op_assign Ast.Bor (id v) (num (1 lsl Rng.int g.rng 8))
  | _ -> assign (id v) (id w -: num (Rng.range g.rng 1 9))

let padding g n = List.init n (fun _ -> pad_stmt g)

(* A small self-contained branch used to reach per-function path targets;
   bodies are pure padding. *)
let pad_branch g =
  let v = pick_local g in
  let body = padding g (Rng.range g.rng 1 4) in
  if Rng.percent g.rng 30 then
    sif_else
      (id v >: num (Rng.range g.rng 10 100))
      body
      (padding g (Rng.range g.rng 1 3))
  else sif (id v <>: num 0) body

(* ------------------------------------------------------------------ *)
(* Protocol-specific directory updates                                 *)
(* ------------------------------------------------------------------ *)

(** Record [src] as a sharer, in this protocol's own idiom. *)
let dir_add_sharer g ~src =
  match g.flavor with
  | Bitvector | Common ->
    [ assign (hg "dirEntry.vector")
        (hg "dirEntry.vector" |: (num 1 <<: id src)) ]
  | Dyn_ptr ->
    let link = fresh_local g in
    [
      assign (id link) (call "ALLOC_LINK" [ id src ]);
      assign (hg "dirEntry.head")
        (call "LINK_INSERT" [ hg "dirEntry.head"; id link ]);
    ]
  | Sci ->
    [
      assign (hg "dirEntry.fwd") (hg "dirEntry.head");
      assign (hg "dirEntry.back") (num (-2));
      assign (hg "dirEntry.head") (id src);
    ]
  | Coma ->
    [
      assign (hg "dirEntry.tags") (hg "dirEntry.tags" |: (num 1 <<: id src));
      sif (hg "dirEntry.master" <: num 0)
        [ assign (hg "dirEntry.master") (id src) ];
    ]
  | Rac ->
    [
      assign (hg "dirEntry.vector")
        (hg "dirEntry.vector" |: (num 1 <<: id src));
      assign (hg "dirEntry.state") (id "RAC_SHARED");
    ]

(** Transfer dirty ownership to [src]. *)
let dir_set_dirty g ~src =
  match g.flavor with
  | Bitvector | Common ->
    [
      assign (hg "dirEntry.dirty") (num 1);
      assign (hg "dirEntry.owner") (id src);
      assign (hg "dirEntry.vector") (num 0);
    ]
  | Dyn_ptr ->
    [
      assign (hg "dirEntry.head") (call "LIST_CLEAR" [ hg "dirEntry.head" ]);
      assign (hg "dirEntry.dirty") (num 1);
      assign (hg "dirEntry.owner") (id src);
    ]
  | Sci ->
    [
      assign (hg "dirEntry.head") (id src);
      assign (hg "dirEntry.dirty") (num 1);
    ]
  | Coma ->
    [
      assign (hg "dirEntry.tags") (num 1 <<: id src);
      assign (hg "dirEntry.master") (id src);
      assign (hg "dirEntry.state") (id "COMA_EXCL");
    ]
  | Rac ->
    [
      assign (hg "dirEntry.dirty") (num 1);
      assign (hg "dirEntry.owner") (id src);
      assign (hg "dirEntry.state") (id "RAC_DIRTY");
    ]

(* SCI keeps sharing state in a distributed list threaded through the
   caches; most of its handlers never touch the home directory and work
   on the chain pointers carried in the message header instead *)
let remote_pending_test () = hg "header.nh.misc" &: num 1
let remote_dirty_test () = hg "header.nh.misc" &: num 2

let remote_chain_ops g ~src =
  let v = pick_local g in
  [
    assign (id v) (call "LINK_NEXT" [ hg "header.nh.misc" ]);
    assign (hg "header.nh.misc")
      (call "LINK_INSERT" [ hg "header.nh.misc"; id src ]);
  ]

(* the dirty test each protocol uses *)
let dir_dirty_test g =
  match g.flavor with
  | Bitvector | Common | Dyn_ptr -> hg "dirEntry.dirty"
  | Sci -> hg "dirEntry.dirty" &&: (hg "dirEntry.head" >: num (-1))
  | Coma -> hg "dirEntry.state" ==: id "COMA_EXCL"
  | Rac -> hg "dirEntry.state" ==: id "RAC_DIRTY"

(* ------------------------------------------------------------------ *)
(* Prologue and common fragments                                       *)
(* ------------------------------------------------------------------ *)

let prologue ~kind ~(bug : bug) =
  let hook =
    match (kind : Flash_api.handler_kind) with
    | Flash_api.Hw_handler -> Flash_api.sim_handler_hook
    | Flash_api.Sw_handler -> Flash_api.sim_swhandler_hook
    | Flash_api.Procedure -> Flash_api.sim_procedure_hook
  in
  match (kind, bug) with
  | Flash_api.Procedure, Hook_omission -> []
  | Flash_api.Procedure, _ -> [ do_call hook [] ]
  | _, (Hook_omission | Hook_unimplemented) ->
    [ do_call Flash_api.handler_defs [] ]
  | _, _ -> [ do_call Flash_api.handler_defs []; do_call hook [] ]

(* unpack the header fields every handler starts from *)
let unpack g =
  let _ = g in
  [
    decl_long "addr";
    decl_long "src";
    assign (id "addr") (hg "header.nh.address");
    assign (id "src") (hg "header.nh.src");
  ]

let load_dir_stmt (bug : bug) =
  match bug with
  | Dir_abstraction_fp ->
    (* hand-computed entry address: the abstraction error *)
    load_dir ((id "addr" >>: num 7) *: num 8 +: num 4096)
  | _ -> load_dir (dir_addr (id "addr"))

let nak_reply () =
  [
    type_assign Flash_api.msg_nak;
    len_assign Flash_api.len_nodata;
    ni_send ~opcode:Flash_api.msg_nak ~flag:Flash_api.f_nodata ();
  ]

(* ------------------------------------------------------------------ *)
(* Handler classes                                                     *)
(* ------------------------------------------------------------------ *)

(** A directory-consulting handler: a request arrives at the home node;
    the handler consults the directory, replies (data, forward, or NAK),
    updates the entry, writes it back, and frees the incoming buffer. *)
let dir_consult_body g ?(realloc = false) ?(dir_extra = 0) ?(use_dir = true)
    ?(free_helper : string option) ~(bug : bug) ~pad ~branches () =
  let _scratch = List.init 3 (fun _ -> fresh_local g) in
  let pending_path =
    let spec_modify =
      match bug with
      | Dir_spec_nak ->
        (* speculative update, backed out by NAKing — the checker must
           recognise the NAK constant and stay quiet *)
        [ assign (hg "dirEntry.pending") (num 1) ]
      | Dir_spec_backout_fp ->
        (* same shape but without the NAK give-away: false positive *)
        [ assign (hg "dirEntry.pending") (num 1);
          do_call "BACKOUT_REQUEST" [ id "src" ] ]
      | _ -> []
    in
    let reply =
      match bug with
      | Dir_spec_backout_fp -> [ free_db (); sreturn ]
      | Lane_overrun ->
        (* the workaround/typo: a second reply-lane send beyond the
           handler's allowance *)
        nak_reply ()
        @ [
            ni_send ~opcode:"MSG_WB_ACK" ~flag:Flash_api.f_nodata ();
            free_db ();
            sreturn;
          ]
      | Double_free ->
        nak_reply () @ [ free_db (); free_db (); sreturn ]
      | Buffer_leak -> nak_reply () @ [ sreturn ]
      | _ -> (
        match free_helper with
        | Some helper ->
          (* the NAK-and-free subroutine: the checker's free-funcs table
             must treat this call as the deallocation *)
          [ do_call helper []; sreturn ]
        | None -> nak_reply () @ [ free_db (); sreturn ])
    in
    let test =
      if use_dir then hg "dirEntry.pending" else remote_pending_test ()
    in
    [ sif test (spec_modify @ reply) ]
  in
  let dirty_path =
    let update =
      if use_dir then dir_set_dirty g ~src:"src"
      else remote_chain_ops g ~src:"src"
    in
    let writeback =
      match bug with
      | Dir_no_writeback -> []
      | _ when not use_dir -> []
      | _ -> [ writeback_dir (dir_addr (id "addr")) ]
    in
    let test = if use_dir then dir_dirty_test g else remote_dirty_test () in
    let forward =
      if use_dir then assign (hg "header.nh.dest") (hg "dirEntry.owner")
      else assign (hg "header.nh.dest") (hg "header.nh.misc" >>: num 8)
    in
    [
      sif test
        ([
           forward;
           len_assign Flash_api.len_nodata;
           ni_send ~opcode:"MSG_INTERVENTION" ~flag:Flash_api.f_nodata ();
         ]
        @ update @ writeback
        @ [ free_db (); sreturn ]);
    ]
  in
  let main_path =
    let add_sharer =
      if use_dir then dir_add_sharer g ~src:"src"
      else remote_chain_ops g ~src:"src"
    in
    let wb =
      if use_dir then [ writeback_dir (dir_addr (id "addr")) ] else []
    in
    if realloc then
      (* rare paths re-allocate a fresh buffer for the outgoing data: the
         allocation-failure check is mandatory (Section 9) *)
      let buf = fresh_local g in
      add_sharer
      @ wb
      @ [
          free_db ();
          assign (id buf) (call Flash_api.allocate_db []);
          sif (call Flash_api.alloc_failed [ id buf ]) [ sreturn ];
          write_db (id buf) 0 (hg "header.nh.misc");
          len_assign Flash_api.len_cacheline;
          ni_send ~opcode:"MSG_PUT" ~flag:Flash_api.f_data ();
          free_db ();
        ]
    else
      add_sharer
      @ wb
      @ [
          len_assign Flash_api.len_cacheline;
          ni_send ~opcode:"MSG_PUT" ~flag:Flash_api.f_data ();
          free_db ();
        ]
  in
  let dir_read_stmts =
    List.init dir_extra (fun i ->
        let v = pick_local g in
        let field =
          match i mod 4 with
          | 0 -> "dirEntry.vector"
          | 1 -> "dirEntry.owner"
          | 2 -> "dirEntry.state"
          | _ -> "dirEntry.tags"
        in
        assign (id v) (hg field &: num 1023))
  in
  padding g (3 * pad / 4)
  @ (if use_dir then [ load_dir_stmt bug ] else [])
  @ (if use_dir then dir_read_stmts else [])
  @ pending_path
  @ List.init branches (fun _ -> pad_branch g)
  @ padding g (pad - (3 * pad / 4))
  @ dirty_path @ main_path

(** A reply-receive handler: the requesting node gets its data back and
    must synchronise with the hardware fill before reading the buffer.
    This is where the Section 4 races live. *)
let reply_receive_body g ~(bug : bug) ~pad ~branches ~reads =
  let v = fresh_local g in
  let corner =
    match bug with
    | Race_read ->
      (* the real bitvector bugs: only the first byte is read, without
         explicit synchronisation, on a rare corner path *)
      [
        sif (hg "header.nh.misc")
          [ assign (id v) (read_db (id "addr") 0);
            op_assign Ast.Add
              (Ast.mk_expr (Ast.Index (id "protoStats", num 9)))
              (id v) ];
      ]
    | Race_read_debug_fp ->
      [
        sif (id "protoDebug")
          [ do_call "DEBUG_PRINT" [ str "early"; read_db (id "addr") 0 ] ];
      ]
    | _ -> []
  in
  padding g (3 * pad / 4)
  @ corner
  @ List.init branches (fun _ -> pad_branch g)
  @ (if reads > 0 then
       [ wait_db (id "addr"); assign (id v) (read_db (id "addr") 0) ]
       @ List.init (reads - 1) (fun i ->
             assign (id v) (id v +: read_db (id "addr") (4 * (i + 1))))
       @ [ op_assign Ast.Add (hg "header.nh.misc") (id v) ]
     else [ assign (id v) (hg "header.nh.misc" &: num 63) ])
  @ padding g (pad - (3 * pad / 4))
  @ [
      len_assign Flash_api.len_cacheline;
      pi_send ~flag:Flash_api.f_data ();
      free_db ();
    ]

(** An intervention handler: ask the processor (or I/O system) for the
    most recent copy, wait for its reply, then respond over the network.
    Send/wait pairing errors deadlock the machine. *)
let intervention_body g ~(bug : bug) ~pad ~branches ~iface =
  let send_iface, wait_macro =
    match iface with
    | `PI -> (pi_send, Flash_api.wait_for_pi_reply)
    | `IO -> (io_send, Flash_api.wait_for_io_reply)
  in
  let wait_part =
    match bug with
    | Sendwait_barrier_fp ->
      (* breaking the abstraction barrier: a hand-rolled spin loop the
         checker cannot see through *)
      let v = pick_local g in
      [ swhile (hg "header.nh.misc" ==: num 0)
          [ assign (id v) (id v +: num 1) ] ]
    | _ -> [ do_call wait_macro [] ]
  in
  padding g (3 * pad / 4)
  @ [ send_iface ~wait:Flash_api.w_wait ~flag:Flash_api.f_nodata () ]
  @ wait_part
  @ List.init branches (fun _ -> pad_branch g)
  @ padding g (pad - (3 * pad / 4))
  @ [
      sif_else (hg "header.nh.misc")
        [
          len_assign Flash_api.len_cacheline;
          ni_send ~opcode:"MSG_INTERVENTION_REPLY" ~flag:Flash_api.f_data ();
        ]
        (nak_reply ());
      free_db ();
    ]

(** An uncached-read/-write handler: the rare case where the paper found
    most of the message-length bugs.  The buggy path needs the line dirty
    in a remote cache *and* the local output queue full. *)
let uncached_body g ?(use_dir = true) ~(bug : bug) ~pad ~branches ~write () =
  let reply_op = "MSG_UNCACHED_REPLY" in
  let queue_full_path =
    let dirty_arm =
      match bug with
      | Len_data_mismatch ->
        (* forgets that the length is still LEN_NODATA from the NAK
           set-up above: data send with a zero length *)
        [ ni_send ~opcode:reply_op ~flag:Flash_api.f_data () ]
      | _ ->
        [
          len_assign Flash_api.len_word;
          ni_send ~opcode:reply_op ~flag:Flash_api.f_data ();
        ]
    in
    sif
      (call "OUTPUT_QUEUE_FULL" [ num Flash_api.lane_net_reply ])
      ([
         len_assign Flash_api.len_nodata;
         type_assign Flash_api.msg_nak;
       ]
      @ [
          sif_else
            (if use_dir then dir_dirty_test g else remote_dirty_test ())
            dirty_arm
            [ ni_send ~opcode:Flash_api.msg_nak ~flag:Flash_api.f_nodata () ];
          free_db ();
          sreturn;
        ])
  in
  padding g (3 * pad / 4)
  @ (if use_dir || bug = Dir_abstraction_fp then [ load_dir_stmt bug ]
     else [])
  @ [ queue_full_path ]
  @ List.init branches (fun _ -> pad_branch g)
  @ padding g (pad - (3 * pad / 4))
  @ (if not use_dir then [ assign (hg "header.nh.misc") (num 0) ]
     else if write then
       [ assign (hg "dirEntry.io") (num 1);
         writeback_dir (dir_addr (id "addr")) ]
     else [ writeback_dir (dir_addr (id "addr")) ])
  @ [
      len_assign Flash_api.len_word;
      ni_send ~opcode:reply_op ~flag:Flash_api.f_data ();
      free_db ();
    ]

(** The coma-style handler that derives the send flavour from a variable:
    correct at run time, but the two correlated branches create two
    infeasible paths the checker flags (the paper's two coma FPs). *)
let len_var_body g ~pad =
  let have_data = fresh_local g in
  [
    load_dir_stmt No_bug;
    assign (id have_data) (hg "dirEntry.tags" <>: num 0);
    sif_else (id have_data)
      [ len_assign Flash_api.len_cacheline ]
      [ len_assign Flash_api.len_nodata ];
  ]
  @ padding g pad
  @ [
      sif_else (id have_data)
        [ ni_send ~opcode:"MSG_PUT" ~flag:Flash_api.f_data () ]
        [ ni_send ~opcode:Flash_api.msg_nak ~flag:Flash_api.f_nodata () ];
      free_db ();
    ]

(** A pass-thru handler: one to three instructions, as in the paper. *)
let passthru_body g ~(bug : bug) =
  let _ = g in
  match bug with
  | Hook_unimplemented ->
    [ do_call "FATAL_ERROR" []; free_db () ]
  | Buf_minor ->
    (* a legacy stub: technically a double free, but unreachable in the
       production protocol *)
    [ do_call "FATAL_ERROR" []; free_db (); free_db () ]
  | _ ->
    [
      assign (hg "header.nh.dest") (hg "header.nh.misc");
      ni_send ~opcode:"MSG_GET" ~flag:Flash_api.f_nodata ();
      free_db ();
    ]

(** A writeback handler: the owner wrote the line back; update the
    directory and acknowledge. *)
let writeback_body g ?(use_dir = true) ~(bug : bug) ~pad ~branches () =
  let annot_path =
    match bug with
    | Buf_annot_useful ->
      (* the buffer is intentionally kept for a subsequent handler; the
         annotation documents (and makes checkable) the special path *)
      [
        sif
          (if use_dir then hg "dirEntry.io" else remote_pending_test ())
          [ do_call Flash_api.ann_no_free_needed []; sreturn ];
      ]
    | Buf_annot_fp ->
      (* if/else twice on one condition: two of the four static paths
         cannot execute, and the checker flags both *)
      let c = fresh_local g in
      [
        assign (id c) (hg "header.nh.misc" &: num 1);
        sif_else (id c) [ free_db () ] (padding g 2);
        sif (id c) [ sreturn ];
      ]
    | _ -> []
  in
  padding g (3 * pad / 4)
  @ (if use_dir then [ load_dir_stmt bug ] else [])
  @ annot_path
  @ (if use_dir then
       [
         assign (hg "dirEntry.dirty") (num 0);
         assign (hg "dirEntry.owner") (num (-1));
       ]
     else [ assign (hg "header.nh.misc") (hg "header.nh.misc" &: num (-3)) ])
  @ List.init branches (fun _ -> pad_branch g)
  @ padding g (pad - (3 * pad / 4))
  @ (if use_dir then [ writeback_dir (dir_addr (id "addr")) ] else [])
  @ [
      len_assign Flash_api.len_nodata;
      ni_send ~opcode:"MSG_WB_ACK" ~flag:Flash_api.f_nodata ();
    ]
  @ (match bug with
    | Buf_data_fp ->
      (* a data-dependent action decides whether the buffer is freed; the
         checker cannot prune the leaking direction *)
      [ sif (hg "header.nh.misc" &: num 8) [ free_db () ] ]
    | _ -> [ free_db () ])

(** An invalidation handler: multicast MSG_INVAL to every sharer.  The
    per-sharer send sits in a loop, so it must be preceded by an explicit
    output-space check — the pattern the lanes checker's fixed-point rule
    has to accept. *)
let inval_body g ?(use_dir = true) ~(bug : bug) ~pad ~branches () =
  let _ = bug in
  let node = fresh_local g in
  padding g (3 * pad / 4)
  @ (if use_dir then [ load_dir_stmt bug ] else [])
  @ [
      assign (id node) (num 0);
      swhile
        (id node <: id "numNodes")
        [
          sif
            ((if use_dir then hg "dirEntry.vector" else hg "header.nh.misc")
            &: (num 1 <<: id node))
            [
              do_call Flash_api.wait_for_output_space
                [ num Flash_api.lane_net_request ];
              assign (hg "header.nh.dest") (id node);
              len_assign Flash_api.len_nodata;
              ni_send ~opcode:"MSG_INVAL" ~flag:Flash_api.f_nodata ();
            ];
          assign (id node) (id node +: num 1);
        ];
    ]
  @ List.init branches (fun _ -> pad_branch g)
  @ padding g (pad - (3 * pad / 4))
  @ (if use_dir then
       [
         assign (hg "dirEntry.vector") (num 0);
         writeback_dir (dir_addr (id "addr"));
       ]
     else [ assign (hg "header.nh.misc") (num 0) ])
  @ [
      len_assign Flash_api.len_nodata;
      ni_send ~opcode:"MSG_WB_ACK" ~flag:Flash_api.f_nodata ();
      free_db ();
    ]

(** A software handler: scheduled by the protocol itself, it starts with
    no buffer and must allocate (and check!) before sending data. *)
let sw_body g ~(bug : bug) ~pad ~branches ~alloc =
  if not alloc then
    (* a software handler that only does bookkeeping: it owns no buffer
       and must not send *)
    padding g (3 * pad / 4)
    @ List.init branches (fun _ -> pad_branch g)
    @ padding g (pad - (3 * pad / 4))
  else
  let buf = fresh_local g in
  let check =
    match bug with
    | Alloc_unchecked_fp ->
      [
        (* debug code peeks at the buffer before checking the flag: the
           checker cannot know the peek is harmless *)
        do_call "DEBUG_PRINT" [ str "db"; id buf ];
        sif (call Flash_api.alloc_failed [ id buf ]) [ sreturn ];
      ]
    | _ -> [ sif (call Flash_api.alloc_failed [ id buf ]) [ sreturn ] ]
  in
  padding g (3 * pad / 4)
  @ List.init branches (fun _ -> pad_branch g)
  @ [ assign (id buf) (call Flash_api.allocate_db []) ]
  @ check
  @ [ write_db (id buf) 0 (hg "header.nh.misc") ]
  @ padding g (pad - (3 * pad / 4))
  @ [
      len_assign Flash_api.len_word;
      ni_send ~opcode:"MSG_UNCACHED_REPLY" ~flag:Flash_api.f_data ();
      free_db ();
    ]

(* ------------------------------------------------------------------ *)
(* Procedures                                                          *)
(* ------------------------------------------------------------------ *)

type proc_style =
  | P_stats  (** counter bookkeeping *)
  | P_list_walk  (** pointer-list traversal (no sends): lanes fixed point *)
  | P_dir_helper  (** modifies dirEntry, caller writes back: Table 6 FP *)
  | P_free_helper  (** sends a NAK and frees the buffer: spec free_func *)
  | P_use_helper  (** uses the buffer without freeing: spec use_func *)
  | P_cond_free  (** returns 1 if it freed the buffer *)
  | P_compute  (** pure arithmetic helper *)
  | P_switch of int  (** dispatch utility with the given number of arms *)

let proc_body g ~(style : proc_style) ~(bug : bug) ~pad =
  match style with
  | P_stats ->
    padding g (max 2 pad)
  | P_list_walk ->
    let p = fresh_local g in
    let n = fresh_local g in
    [
      assign (id p) (hg "dirEntry.head");
      assign (id n) (num 0);
      swhile
        (id p <>: num 0)
        [ assign (id n) (id n +: num 1);
          assign (id p) (call "LINK_NEXT" [ id p ]) ];
      assign (hg "header.nh.misc") (id n);
    ]
    @ padding g pad
  | P_dir_helper ->
    (* the subroutine convention behind 14 of the paper's directory
       false positives: the caller is responsible for the writeback *)
    padding g (3 * pad / 4)
    @ [
        assign (hg "dirEntry.pending") (num 1);
        op_assign Ast.Bor (hg "dirEntry.vector") (num 1);
      ]
    @ padding g (pad - (3 * pad / 4))
  | P_free_helper ->
    padding g (3 * pad / 4)
    @ nak_reply ()
    @ (match bug with
      | Double_free -> [ free_db (); free_db () ]
      | _ -> [ free_db () ])
    @ padding g (pad - (3 * pad / 4))
  | P_use_helper ->
    padding g (3 * pad / 4)
    @ [
        wait_db (id "addrArg");
        assign (hg "header.nh.misc") (read_db (id "addrArg") 0);
        assign (hg "header.nh.misc")
          (hg "header.nh.misc" +: read_db (id "addrArg") 4);
      ]
    @ padding g (pad - (3 * pad / 4))
  | P_cond_free ->
    [
      sif (hg "header.nh.misc" &: num 4)
        [ free_db (); sreturn_e (num 1) ];
    ]
    @ padding g pad
    @ [ sreturn_e (num 0) ]
  | P_compute ->
    let v = fresh_local g in
    [ assign (id v) (id "x" *: num 8 +: num 64) ]
    @ padding g pad
    @ [ sreturn_e (id v >>: num 2) ]
  | P_switch arms ->
    (* the shared dispatch utilities that give the common code its high
       path counts: every path runs the long shared prologue/epilogue and
       exactly one (short) arm *)
    let cases = List.init arms (fun i -> (num i, padding g 3)) in
    padding g (pad / 2)
    @ [ sswitch (id "x" &: num 31) cases (Some (padding g 2)) ]
    @ padding g (pad / 2)
