(** Network output lanes with finite queues (Section 7).

    FLASH runs a handler only when its assigned lanes have space for its
    worst-case sends; sending beyond the allowance without an explicit
    space check can deadlock the machine.  This model enforces finite
    capacity and records overcommits. *)

type fault = Lane_overflow of int  (** lane index *)

val fault_to_string : fault -> string

type t

val create : ?capacity:int -> unit -> t
val space : t -> int -> int

val send : t -> Message.t -> bool
(** [false] (plus a recorded fault) when the lane is full *)

val drain : t -> Message.t list
(** at most one message per lane, reply lanes first (replies must make
    progress for deadlock avoidance to be sound) *)

val pending : t -> int
val faults : t -> fault list
