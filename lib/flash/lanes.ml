(** Network output lanes with finite queues.

    FLASH avoids message loss by running a handler only when its assigned
    lanes have enough space for the handler's worst-case sends; sending
    beyond the allowance without an explicit space check can deadlock the
    machine (Section 7).  This model enforces finite capacity and records
    overcommits. *)

type fault = Lane_overflow of int  (** lane index *)

let fault_to_string = function
  | Lane_overflow lane -> Printf.sprintf "output lane %d overflow" lane

type t = {
  capacity : int;  (** slots per lane *)
  queues : Message.t Queue.t array;
  mutable faults : fault list;
  mutable sends : int;
}

let create ?(capacity = 4) () =
  {
    capacity;
    queues = Array.init Flash_api.n_lanes (fun _ -> Queue.create ());
    faults = [];
    sends = 0;
  }

let space t lane = t.capacity - Queue.length t.queues.(lane)

(** Enqueue a message; a full lane records an overflow (the hardware
    would wedge) and drops the message. *)
let send t (msg : Message.t) : bool =
  let lane = msg.Message.lane in
  if Queue.length t.queues.(lane) >= t.capacity then begin
    t.faults <- Lane_overflow lane :: t.faults;
    false
  end
  else begin
    Queue.add msg t.queues.(lane);
    t.sends <- t.sends + 1;
    true
  end

(** Drain at most one message from each lane, reply lanes first (replies
    must make progress for the deadlock-avoidance scheme to be sound). *)
let drain t : Message.t list =
  let order =
    [
      Flash_api.lane_net_reply;
      Flash_api.lane_pi;
      Flash_api.lane_io;
      Flash_api.lane_net_request;
    ]
  in
  List.filter_map
    (fun lane ->
      if Queue.is_empty t.queues.(lane) then None
      else Some (Queue.pop t.queues.(lane)))
    order

let pending t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let faults t = List.rev t.faults
