(** Deterministic pseudo-random numbers (splitmix64) for corpus generation
    and workloads: runs must be bit-for-bit reproducible across machines. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** uniform in [0, bound) *)

val range : t -> int -> int -> int
(** uniform in [lo, hi] inclusive *)

val bool : t -> bool

val percent : t -> int -> bool
(** true with probability p/100 *)

val choose : t -> 'a list -> 'a

val split : t -> string -> t
(** derive an independent generator (e.g. one per protocol) *)
