(** The FlashLite substitute: a multi-node protocol simulator.

    Drives processor reads, writes and uncached reads through the
    {!Golden} handlers running on {!Interp} nodes, with a directory (any
    of the {!Directory} organisations), per-node caches, main memory,
    NAK/retry, random fill latency, reply-queue pressure and silent cache
    evictions — the machinery that makes the paper's rare corner paths
    reachable, occasionally.  Data integrity is checked against a write
    oracle; machine-model faults are recorded with the transaction number
    at which each class first manifested. *)

type config = {
  n_nodes : int;
  n_lines : int;
  transactions : int;
  seed : int;
  variant : Golden.variant;
  directory : Directory.packed;
      (** which directory organisation backs the home state; the handlers
          see the same bit-vector view either way *)
  fill_delay_pct : int;  (** chance an arriving body is still streaming *)
  corner_flag_pct : int;  (** chance header.nh.misc is set (corner paths) *)
  queue_pressure_pct : int;  (** chance the home reply lane looks full *)
  evict_pct : int;  (** chance a cached line was silently replaced *)
  write_pct : int;
  uncached_pct : int;
}

val default_config : config

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable uncached : int;
  mutable messages : int;
  mutable naks : int;
  mutable handler_runs : int;
  mutable corruptions : int;
  mutable stalled : int;
}

type result = {
  config : config;
  stats : stats;
  faults : (string * Interp.fault) list;  (** handler name, fault *)
  first_detection : (string * int) list;
      (** fault class -> 1-based transaction index of first manifestation *)
  leaked_buffers : int;
  directory_ok : bool;  (** the directory's own invariant at the end *)
}

val run : config -> result
val pp_result : Format.formatter -> result -> unit
