(** An executable bitvector coherence protocol, hand-written in Clite.

    Two variants: [Clean] (correct) and [Buggy], which seeds four of the
    paper's bug classes on the same rare corner paths the checkers find
    them on statically (double free on the dirty-remote path, a
    length/data mismatch on the queue-full uncached corner, an
    unsynchronised first-byte read, and a buffer leak in the invalidation
    handler).  {!Sim} executes these handlers; the static-vs-dynamic
    comparison checks the same source. *)

type variant = Clean | Buggy

val source : variant -> string
(** the complete Clite source (prelude included) *)

val program : variant -> Ast.tunit list
(** parsed and type-annotated *)

val handler_map : (string * string) list
(** which handler runs for each incoming network opcode *)

val spec : Flash_api.spec
(** protocol spec for static-checking the golden handlers *)
