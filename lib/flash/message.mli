(** Messages exchanged between FLASH nodes.

    The header's length field and the send's has-data flag are
    deliberately decoupled (it simplifies the MAGIC hardware), which is
    exactly what makes the paper's Section 5 checker necessary. *)

type length = Len_nodata | Len_word | Len_cacheline

type t = {
  opcode : string;
  src : int;
  dst : int;
  addr : int;
  len : length;
  has_data : bool;
  data : int array;
  lane : int;
}

val length_words : length -> int
val length_of_string : string -> length option
val string_of_length : length -> string

val length_consistent : t -> bool
(** false on the two inconsistencies the msg_length checker hunts: a data
    send with zero length, or a no-data send with a non-zero length *)

val is_reply : t -> bool
val pp : Format.formatter -> t -> unit
