(** Ground truth for the synthetic corpus.

    Every fault (and every intentional checker-confusing construct) seeded
    into the generated protocols is recorded, so the experiment harness
    can classify each diagnostic as a true error, a minor violation, or a
    false positive — the role the paper authors' manual triage played. *)

type kind =
  | Bug  (** a real error the checker should report *)
  | Minor  (** technically a violation: unreachable/harmless/abstraction *)
  | False_positive
      (** valid code the checker is expected to flag (unpruned paths,
          debug idioms, subroutine conventions) *)

type entry = {
  checker : string;
  protocol : string;
  func : string;  (** function containing the seeded site *)
  kind : kind;
  count : int;  (** distinct reports this site produces *)
  note : string;
}

val entry :
  ?count:int ->
  checker:string ->
  protocol:string ->
  func:string ->
  kind:kind ->
  string ->
  entry

val kind_to_string : kind -> string

val classify :
  entry list -> checker:string -> protocol:string -> func:string ->
  entry option

val expected_counts :
  entry list -> checker:string -> protocol:string -> int * int * int
(** (bugs, minors, false positives) expected for one checker in one
    protocol *)
