(** Assembly of the synthetic FLASH protocol corpus.

    [generate ()] produces the five protocols plus the common code:
    deterministic Clite sources (printed, then re-parsed through the full
    front end, exactly as xg++ consumed post-cpp text), the
    protocol-writer-supplied specification each checker needs (handler
    kinds, lane allowances, buffer-discipline tables), and the ground-truth
    manifest of seeded faults. *)

type protocol = {
  name : string;
  config : Profile.config;
  files : (string * string) list;  (** file name, full source text *)
  tus : Ast.tunit list;  (** parsed and type-annotated *)
  spec : Flash_api.spec;
  manifest : Manifest.entry list;
  loc : int;  (** protocol LOC, headers (prelude) excluded *)
}

type t = { protocols : protocol list; seed : int }

(* ------------------------------------------------------------------ *)
(* Handler descriptors                                                 *)
(* ------------------------------------------------------------------ *)

type hdesc = {
  d_name : string;
  d_style : Profile.hstyle;
  d_kind : Flash_api.handler_kind;
  d_realloc : bool;
  d_free_helper : string option;
}

let style_of_base name =
  List.assoc_opt name Profile.base_handlers

(* resolve the style of a (possibly variant, possibly "...2") name *)
let rec resolve_style name =
  match style_of_base name with
  | Some st -> Some st
  | None ->
    let n = String.length name in
    if n > 1 && name.[n - 1] = '2' then
      resolve_style (String.sub name 0 (n - 1))
    else
      List.find_map
        (fun suffix ->
          let sl = String.length suffix in
          if n > sl && String.sub name (n - sl) sl = suffix then
            style_of_base (String.sub name 0 (n - sl))
          else None)
        Profile.variant_suffixes

let is_interv = function Profile.Interv _ -> true | _ -> false

(* The deterministic handler roster for one protocol. *)
let hw_roster (cfg : Profile.config) : hdesc list =
  let mentioned =
    List.map fst cfg.Profile.bugs
    @ cfg.Profile.annot_useful @ cfg.Profile.free_helper_users
  in
  (* special one-off handlers that are not base-name variants *)
  let specials =
    List.filter_map
      (fun name ->
        match name with
        | "NIDebugDrain" | "IOStubFlush" | "SharedStubDrain" ->
          Some (name, Profile.Pass)
        | "NISharingTransfer" -> Some (name, Profile.Len_var)
        | _ -> None)
      mentioned
  in
  let needed_variants =
    List.filter
      (fun name ->
        style_of_base name = None
        && (not (List.mem_assoc name specials))
        && (not (String.length name > 1 && name.[0] = 'S' && name.[1] = 'W'))
        && (not (String.length name > 3 && String.sub name 0 4 = "Mark"))
        && resolve_style name <> None)
      mentioned
  in
  let base = Profile.base_handlers in
  let all_variants =
    List.concat_map
      (fun suffix ->
        List.map (fun (b, st) -> (b ^ suffix, st)) base)
      Profile.variant_suffixes
  in
  (* selection: base + forced variants + enough intervention variants +
     round-robin fill *)
  let selected = ref [] in
  let have name = List.exists (fun (n, _) -> String.equal n name) !selected in
  let add (name, st) = if not (have name) then selected := (name, st) :: !selected
  in
  List.iter add base;
  List.iter add specials;
  List.iter
    (fun name ->
      match resolve_style name with
      | Some st -> add (name, st)
      | None -> ())
    needed_variants;
  (* top up interventions *)
  let count_interv () =
    List.length (List.filter (fun (_, st) -> is_interv st) !selected)
  in
  List.iter
    (fun (name, st) ->
      if is_interv st && count_interv () < cfg.Profile.n_interv then
        add (name, st))
    all_variants;
  (* fill to n_hw with non-intervention variants *)
  List.iter
    (fun (name, st) ->
      if
        List.length !selected < cfg.Profile.n_hw
        && not (is_interv st)
      then add (name, st))
    all_variants;
  let roster = List.rev !selected in
  List.map
    (fun (name, st) ->
      {
        d_name = name;
        d_style = st;
        d_kind = Flash_api.Hw_handler;
        d_realloc = false (* assigned below *);
        d_free_helper =
          (if List.mem name cfg.Profile.free_helper_users then
             Some "SendNakAndFree"
           else None);
      })
    roster

(* mark the first [n_realloc] clean Dir handlers as re-allocating *)
let assign_realloc (cfg : Profile.config) (roster : hdesc list) : hdesc list =
  let remaining = ref cfg.Profile.n_realloc in
  List.map
    (fun d ->
      let buggy = List.mem_assoc d.d_name cfg.Profile.bugs in
      if
        d.d_style = Profile.Dir && !remaining > 0 && (not buggy)
        && d.d_free_helper = None
      then begin
        decr remaining;
        { d with d_realloc = true }
      end
      else d)
    roster

let sw_names flavor =
  match (flavor : Skeletons.flavor) with
  | Skeletons.Common ->
    [ "SWSharedFlush"; "SWSharedScrub"; "SWSharedStats"; "SWSharedTick" ]
  | _ ->
    [
      "SWPageMigrate";
      "SWTimerTick";
      "SWReplyQueue";
      "SWDebugDump";
      "SWRefill";
      "SWStatsFlush";
      "SWIOFlush";
      "SWRetryQueue";
    ]

let dir_helper_names =
  [ "MarkLinePending"; "MarkLineBusy"; "SetOwnerHint"; "ClearPendingBit";
    "SetMasterHint" ]

(* ------------------------------------------------------------------ *)
(* Function assembly                                                   *)
(* ------------------------------------------------------------------ *)

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let bug_of cfg name =
  match List.assoc_opt name cfg.Profile.bugs with
  | Some b -> b
  | None ->
    if List.mem name cfg.Profile.annot_useful then Skeletons.Buf_annot_useful
    else Skeletons.No_bug

(* build one handler function *)
let make_handler cfg rng (d : hdesc) : Ast.func =
  let g = Skeletons.gctx ~rng ~flavor:cfg.Profile.flavor in
  (* seed scratch locals so padding has material to work with *)
  for _ = 1 to 3 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug = bug_of cfg d.d_name in
  let lo, hi = cfg.Profile.pad in
  let pad =
    (* each protocol has one famously long handler *)
    if String.equal d.d_name "NILocalGetX"
       || String.equal d.d_name "SharedHomeGetX"
    then cfg.Profile.long_handler_pad
    else Rng.range rng lo hi
  in
  let blo, bhi = cfg.Profile.branches in
  (* big handlers carry the most branches, as in the real protocols: the
     path-length average is path-weighted, so the long handlers dominate *)
  let branches =
    if pad >= cfg.Profile.long_handler_pad then bhi + 2
    else blo + ((pad - lo) * (bhi - blo + 1) / max 1 (hi - lo + 1))
  in
  (* buffer reads in reply handlers: the shared base handlers read the
     message body; protocol-specific variants mostly do not (that is what
     keeps the per-protocol Applied counts of Table 2 so different) *)
  (* SCI: only the shared base handlers consult the home directory; the
     variants work on the distributed sharing list (this is why the
     paper's sci Applied count for the directory checker is so small) *)
  let use_dir =
    match cfg.Profile.flavor with
    | Skeletons.Sci ->
      style_of_base d.d_name <> None
      || bug = Skeletons.Dir_abstraction_fp
      || bug = Skeletons.Dir_spec_nak
    | Skeletons.Common ->
      (* the shared code has essentially no directory traffic (paper
         Table 6: one application in total) *)
      false
    | _ -> true
  in
  let reply_reads =
    if cfg.Profile.flavor = Skeletons.Sci then
      if String.equal d.d_name "NIRemotePut" then 2 else 0
    else if style_of_base d.d_name <> None then cfg.Profile.reply_reads
    else 0
  in
  let core =
    match (bug, d.d_style) with
    | (Skeletons.Buf_minor | Skeletons.Hook_unimplemented), _ ->
      Skeletons.passthru_body g ~bug
    | Skeletons.Len_data_mismatch, Profile.Dir ->
      (* the eager-mode handlers: get-path handlers whose rare queue-full
         corner inherits a stale length *)
      Skeletons.uncached_body g ~bug ~pad ~branches ~write:false ()
    | _, Profile.Dir ->
      Skeletons.dir_consult_body g ~realloc:d.d_realloc ~use_dir
        ~dir_extra:cfg.Profile.dir_extra ?free_helper:d.d_free_helper ~bug
        ~pad ~branches ()
    | _, Profile.Reply style_reads ->
      let reads = min style_reads reply_reads in
      Skeletons.reply_receive_body g ~bug ~pad ~branches ~reads
    | _, Profile.Interv iface ->
      Skeletons.intervention_body g ~bug ~pad ~branches ~iface
    | _, Profile.Unc write ->
      Skeletons.uncached_body g ~use_dir ~bug ~pad ~branches ~write ()
    | _, Profile.Wb -> Skeletons.writeback_body g ~use_dir ~bug ~pad ~branches ()
    | _, Profile.Inval -> Skeletons.inval_body g ~use_dir ~bug ~pad ~branches ()
    | _, Profile.Pass -> Skeletons.passthru_body g ~bug
    | _, Profile.Len_var -> Skeletons.len_var_body g ~pad
  in
  let no_stack = d.d_style = Profile.Pass in
  let sw = d.d_kind = Flash_api.Sw_handler in
  let prologue = Skeletons.prologue ~kind:d.d_kind ~bug in
  let no_stack_stmts =
    if no_stack then [ Cb.do_call Flash_api.no_stack [] ] else []
  in
  let unpack =
    if sw then []
    else
      [
        Cb.assign (Cb.id "addr") (Cb.hg "header.nh.address");
        Cb.assign (Cb.id "src") (Cb.hg "header.nh.src");
      ]
  in
  let decls =
    (if sw then [] else [ Cb.decl_long "addr"; Cb.decl_long "src" ])
    @ List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals
  in
  Cb.func d.d_name (prologue @ no_stack_stmts @ decls @ unpack @ core)

let make_sw_handler cfg rng ~name ~alloc : Ast.func =
  let g = Skeletons.gctx ~rng ~flavor:cfg.Profile.flavor in
  for _ = 1 to 2 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug = bug_of cfg name in
  let lo, hi = cfg.Profile.pad in
  let pad = Rng.range rng lo hi in
  let blo, bhi = cfg.Profile.branches in
  let branches = Rng.range rng blo bhi in
  let core = Skeletons.sw_body g ~bug ~pad ~branches ~alloc in
  let prologue = Skeletons.prologue ~kind:Flash_api.Sw_handler ~bug in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  Cb.func name (prologue @ decls @ core)

let make_proc cfg rng ~name ~style : Ast.func =
  let g = Skeletons.gctx ~rng ~flavor:cfg.Profile.flavor in
  for _ = 1 to 2 do
    ignore (Skeletons.fresh_local g)
  done;
  let bug = bug_of cfg name in
  let lo, hi = cfg.Profile.pad in
  let pad = max 2 (Rng.range rng lo hi) in
  let core = Skeletons.proc_body g ~style ~bug ~pad in
  let prologue = Skeletons.prologue ~kind:Flash_api.Procedure ~bug in
  let decls = List.rev_map (fun v -> Cb.decl_long v) g.Skeletons.locals in
  let ret, params =
    match style with
    | Skeletons.P_cond_free -> (Ctype.Int, [])
    | Skeletons.P_compute | Skeletons.P_switch _ ->
      (Ctype.Long, [ ("x", Ctype.Long) ])
    | Skeletons.P_use_helper -> (Ctype.Void, [ ("addrArg", Ctype.Long) ])
    | _ -> (Ctype.Void, [])
  in
  Cb.func ~ret ~params name (prologue @ decls @ core)

(* the procedure roster *)
let proc_roster (cfg : Profile.config) : (string * Skeletons.proc_style) list
    =
  let fixed =
    [
      ("SendNakAndFree", Skeletons.P_free_helper);
      ("DropAndNak", Skeletons.P_free_helper);
      ("TryFreeBuffer", Skeletons.P_cond_free);
    ]
    @ List.init cfg.Profile.n_use_helpers (fun i ->
          (Printf.sprintf "PeekMessageBody%d" (i + 1), Skeletons.P_use_helper))
    @ List.map
        (fun n -> (n, Skeletons.P_dir_helper))
        (take cfg.Profile.n_dir_helpers dir_helper_names)
    @ List.init cfg.Profile.n_list_walk (fun i ->
          (Printf.sprintf "WalkSharerList%d" (i + 1), Skeletons.P_list_walk))
  in
  let n_fill = max 0 (cfg.Profile.n_proc - List.length fixed) in
  let fill =
    List.init n_fill (fun i ->
        if cfg.Profile.proc_switch_cases > 0 then
          ( Printf.sprintf "DispatchOp%d" (i + 1),
            Skeletons.P_switch cfg.Profile.proc_switch_cases )
        else if i mod 3 = 1 then
          (Printf.sprintf "ComputeMask%d" (i + 1), Skeletons.P_compute)
        else (Printf.sprintf "UpdateStats%d" (i + 1), Skeletons.P_stats))
  in
  fixed @ fill

(* ------------------------------------------------------------------ *)
(* Common-code roster                                                  *)
(* ------------------------------------------------------------------ *)

let common_hw_roster (cfg : Profile.config) : hdesc list =
  let mk name st =
    {
      d_name = name;
      d_style = st;
      d_kind = Flash_api.Hw_handler;
      d_realloc = false;
      d_free_helper =
        (if List.mem name cfg.Profile.free_helper_users then
           Some "SendNakAndFree"
         else None);
    }
  in
  let named =
    [
      mk "SharedHomeGet" Profile.Dir;
      mk "SharedHomeGetX" Profile.Dir;
      mk "SharedWBFlushA" Profile.Wb;
      mk "SharedWBFlushB" Profile.Wb;
      mk "SharedWBFlushC" Profile.Wb;
      mk "SharedWBFlushD" Profile.Wb;
      mk "SharedWBKeepA" Profile.Wb;
      mk "SharedWBKeepB" Profile.Wb;
      mk "SharedWBKeepC" Profile.Wb;
      mk "SharedInterventionA" (Profile.Interv `PI);
      mk "SharedInterventionB" (Profile.Interv `PI);
      mk "SharedDebugDump" (Profile.Reply 0);
      mk "SharedReplyA" (Profile.Reply 0);
      mk "SharedReplyB" (Profile.Reply 0);
      mk "SharedStubDrain" Profile.Pass;
      mk "SharedInvalA" Profile.Inval;
    ]
  in
  let fill =
    List.init
      (max 0 (cfg.Profile.n_hw - List.length named))
      (fun i ->
        if i mod 2 = 0 then mk (Printf.sprintf "SharedFwd%d" (i + 1)) Profile.Pass
        else mk (Printf.sprintf "SharedHome%d" (i + 1)) Profile.Dir)
  in
  named @ fill

(* ------------------------------------------------------------------ *)
(* Protocol assembly                                                   *)
(* ------------------------------------------------------------------ *)

let lane_allowance (st : Profile.hstyle) : int array =
  match st with
  | Profile.Dir -> [| 0; 0; 1; 1 |]
  | Profile.Reply _ -> [| 1; 0; 0; 0 |]
  | Profile.Interv `PI -> [| 1; 0; 0; 1 |]
  | Profile.Interv `IO -> [| 0; 1; 0; 1 |]
  | Profile.Unc _ | Profile.Wb | Profile.Inval | Profile.Len_var ->
    [| 0; 0; 0; 1 |]
  | Profile.Pass -> [| 0; 0; 1; 0 |]

let sw_allowance = [| 0; 0; 0; 1 |]

let file_of_func name =
  if String.length name >= 2 && String.sub name 0 2 = "PI" then "pi"
  else if String.length name >= 2 && String.sub name 0 2 = "NI" then "ni"
  else if String.length name >= 2 && String.sub name 0 2 = "IO" then "io"
  else if String.length name >= 2 && String.sub name 0 2 = "SW" then "sw"
  else "util"

let generate_protocol ~seed (name : string) (cfg : Profile.config) : protocol
    =
  let rng = Rng.create ~seed:(seed + Hashtbl.hash name) in
  let hw =
    if cfg.Profile.flavor = Skeletons.Common then common_hw_roster cfg
    else assign_realloc cfg (hw_roster cfg)
  in
  let sw = take cfg.Profile.n_sw (sw_names cfg.Profile.flavor) in
  let procs = proc_roster cfg in
  let funcs =
    List.map (fun d -> make_handler cfg rng d) hw
    @ List.mapi
        (fun i n -> make_sw_handler cfg rng ~name:n
            ~alloc:(i < cfg.Profile.n_sw_alloc))
        sw
    @ List.map (fun (n, style) -> make_proc cfg rng ~name:n ~style) procs
  in
  (* bucket into files and print *)
  let buckets : (string, Ast.func list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let b = file_of_func f.Ast.f_name in
      let existing = Option.value ~default:[] (Hashtbl.find_opt buckets b) in
      Hashtbl.replace buckets b (f :: existing))
    funcs;
  let files =
    List.filter_map
      (fun b ->
        match Hashtbl.find_opt buckets b with
        | None -> None
        | Some fs ->
          let body =
            String.concat "\n\n"
              (List.rev_map (fun f -> Format.asprintf "%a" Pp.pp_func f) fs)
          in
          Some
            ( Printf.sprintf "%s_%s.c" name b,
              Prelude.text ^ "\n" ^ body ^ "\n" ))
      [ "pi"; "ni"; "io"; "sw"; "util" ]
  in
  let tus = Frontend.of_strings files in
  let loc =
    List.fold_left
      (fun acc (_, src) -> acc + Frontend.loc_count src - Prelude.loc)
      0 files
  in
  let spec =
    {
      Flash_api.p_name = name;
      p_handlers =
        List.map
          (fun d ->
            {
              Flash_api.h_name = d.d_name;
              h_kind = Flash_api.Hw_handler;
              h_lane_allowance = lane_allowance d.d_style;
              h_no_stack = d.d_style = Profile.Pass;
            })
          hw
        @ List.map
            (fun n ->
              {
                Flash_api.h_name = n;
                h_kind = Flash_api.Sw_handler;
                h_lane_allowance = sw_allowance;
                h_no_stack = false;
              })
            sw;
      p_free_funcs = [ "SendNakAndFree"; "DropAndNak" ];
      p_use_funcs =
        List.init cfg.Profile.n_use_helpers (fun i ->
            Printf.sprintf "PeekMessageBody%d" (i + 1));
      p_cond_free_funcs = [ "TryFreeBuffer" ];
    }
  in
  { name; config = cfg; files; tus; spec; manifest = cfg.Profile.manifest;
    loc }

(** Generate the full corpus: five protocols plus common code. *)
let generate ?(seed = 0xF1A54) () : t =
  {
    protocols =
      List.map (fun (name, cfg) -> generate_protocol ~seed name cfg)
        Profile.all;
    seed;
  }

let find t name =
  List.find_opt (fun p -> String.equal p.name name) t.protocols

(** Write the corpus to a directory as .c files (for browsing or for
    checking with the CLI). *)
let write_to_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun p ->
      List.iter
        (fun (file, src) ->
          let oc = open_out (Filename.concat dir file) in
          output_string oc src;
          close_out oc)
        p.files)
    t.protocols
