(** The per-node data-buffer pool, with manual reference counting.

    Every incoming message is assigned a buffer by the hardware; the
    handler must release it.  The pool detects at run time the failures
    the paper's checkers find statically: leaks (the node can no longer
    accept messages and the machine deadlocks), double frees,
    use-after-free, and reads that race the hardware fill (Section 4). *)

type fault =
  | Double_free of int  (** buffer index *)
  | Use_after_free of int
  | Read_before_fill of int  (** the Section 4 race *)
  | Pool_exhausted

exception Fault of fault

val fault_to_string : fault -> string

type buffer = {
  index : int;
  mutable refcount : int;
  mutable filling : bool;  (** hardware still streaming the body in *)
  mutable words : int array;
}

type t

val words_per_buffer : int

val create : ?size:int -> ?trap:bool -> unit -> t
(** [trap] raises {!Fault} on the first fault instead of recording it *)

val free_count : t -> int

val allocate : ?filling:bool -> t -> buffer option
(** [None] (plus a recorded fault) when the pool is exhausted *)

val mark_full : buffer -> unit
(** the hardware finished filling the body — what WAIT_FOR_DB_FULL
    waits for *)

val incr_refcount : buffer -> unit
val free : t -> buffer -> unit

val read : t -> buffer -> synchronized:bool -> word:int -> int
(** an unsynchronised read of a still-filling buffer records the race
    and returns the not-yet-arrived value (0) *)

val write : t -> buffer -> word:int -> value:int -> unit
val faults : t -> fault list
val well_formed : t -> bool
