(** The FLASH protocol-code vocabulary.

    FLASH protocol handlers are written against a fixed set of macros that
    drive the MAGIC node controller: waiting for and reading data buffers,
    sending messages on the processor/network/IO interfaces, loading and
    writing back directory entries, and calling back into the FlashLite
    simulator.  This module is the single source of truth for those names
    and constants — the corpus generator emits them, the checkers match on
    them, and the interpreter gives them semantics. *)

(* ------------------------------------------------------------------ *)
(* Message lengths and data flags (Section 5)                          *)
(* ------------------------------------------------------------------ *)

let len_nodata = "LEN_NODATA"
let len_word = "LEN_WORD"
let len_cacheline = "LEN_CACHELINE"
let f_data = "F_DATA"
let f_nodata = "F_NODATA"

(* The length field of the outgoing message header, as written in
    protocol source. *)
let len_field = "HANDLER_GLOBALS(header.nh.len)"

(* ------------------------------------------------------------------ *)
(* Data buffers (Sections 4 and 6)                                     *)
(* ------------------------------------------------------------------ *)

let wait_for_db_full = "WAIT_FOR_DB_FULL"
let miscbus_read_db = "MISCBUS_READ_DB"
let miscbus_read_db_old = "MISCBUS_READ_DB_OLD"  (* deprecated equivalent *)
let miscbus_write_db = "MISCBUS_WRITE_DB"
let allocate_db = "ALLOCATE_DB"
let free_db = "FREE_DB"
let alloc_failed = "ALLOC_FAILED"  (* tests an allocation for failure *)
let db_inc_refcount = "DB_INC_REFCOUNT"
    (* the "never used" manual refcount bump from the paper's Section 11
        anecdote; checkers aggressively object to it *)

(** Checker annotations (Section 6): reserved assertion functions. *)
let ann_has_buffer = "has_buffer"
let ann_no_free_needed = "no_free_needed"

(* ------------------------------------------------------------------ *)
(* Sends and lanes (Sections 5 and 7)                                  *)
(* ------------------------------------------------------------------ *)

let pi_send = "PI_SEND"  (* processor interface *)
let io_send = "IO_SEND"  (* I/O interface *)
let ni_send = "NI_SEND"  (* network interface; first arg is message type *)

let send_macros = [ pi_send; io_send; ni_send ]

let n_lanes = 4

(** Network output lanes.  PI and IO each own a lane; network sends use
    the request or reply lane depending on the message class. *)
let lane_pi = 0

let lane_io = 1
let lane_net_request = 2
let lane_net_reply = 3

(** Suspend until there is space for one more message on [lane] —
    mandatory before exceeding the handler's lane allowance. *)
let wait_for_output_space = "WAIT_FOR_OUTPUT_SPACE"

(* ------------------------------------------------------------------ *)
(* Send-wait discipline (Section 9)                                    *)
(* ------------------------------------------------------------------ *)

let w_wait = "W_WAIT"  (* send will be followed by an explicit wait *)
let w_nowait = "W_NOWAIT"
let wait_for_pi_reply = "WAIT_FOR_PI_REPLY"
let wait_for_io_reply = "WAIT_FOR_IO_REPLY"

(* ------------------------------------------------------------------ *)
(* Directory entries (Section 9)                                       *)
(* ------------------------------------------------------------------ *)

let load_dir_entry = "LOAD_DIR_ENTRY"
let writeback_dir_entry = "WRITEBACK_DIR_ENTRY"

(* Directory-entry fields live in handler globals and are written as
    [HANDLER_GLOBALS(dirEntry.<field>)]. *)
let dir_entry_prefix = "dirEntry"

(* Computing a directory-entry address by hand instead of calling this is
    the "abstraction error" the paper's directory checker flags. *)
let dir_addr_macro = "DIR_ADDR"

(* ------------------------------------------------------------------ *)
(* Handler structure and simulator hooks (Section 8)                   *)
(* ------------------------------------------------------------------ *)

let handler_globals = "HANDLER_GLOBALS"
let handler_defs = "HANDLER_DEFS"
let handler_prologue = "HANDLER_PROLOGUE"
let sim_handler_hook = "SIM_HANDLER_HOOK"
let sim_swhandler_hook = "SIM_SWHANDLER_HOOK"
let sim_procedure_hook = "SIM_PROCEDURE_HOOK"
let no_stack = "NO_STACK"
let set_stackptr = "SET_STACKPTR"

(* Macros that still parse but must no longer be used. *)
let deprecated_macros = [ miscbus_read_db_old; "OLD_SEND"; "DB_CONTENTS" ]

(* ------------------------------------------------------------------ *)
(* Message opcodes                                                     *)
(* ------------------------------------------------------------------ *)

(** Network message types, shared by every protocol.  Replies travel on
    the reply lane; requests on the request lane. *)
let msg_opcodes_request =
  [
    "MSG_GET";
    "MSG_GETX";
    "MSG_UNCACHED_READ";
    "MSG_UNCACHED_WRITE";
    "MSG_INVAL";
    "MSG_INTERVENTION";
    "MSG_WB";
    "MSG_IO_READ";
    "MSG_IO_WRITE";
  ]

let msg_opcodes_reply =
  [
    "MSG_PUT";
    "MSG_PUTX";
    "MSG_NAK";
    "MSG_INVAL_ACK";
    "MSG_UNCACHED_REPLY";
    "MSG_WB_ACK";
    "MSG_INTERVENTION_REPLY";
    "MSG_IO_REPLY";
  ]

let msg_nak = "MSG_NAK"

let is_reply_opcode op = List.mem op msg_opcodes_reply

(** Lane used by a send: PI/IO sends have their own lanes; NI sends use
    the request or reply network lane according to the opcode (the paper:
    lanes are virtual message slots assigned per handler when the protocol
    is designed). *)
let lane_of_send ~macro ~opcode =
  if String.equal macro pi_send then Some lane_pi
  else if String.equal macro io_send then Some lane_io
  else if String.equal macro ni_send then
    match opcode with
    | Some op when is_reply_opcode op -> Some lane_net_reply
    | Some _ -> Some lane_net_request
    | None -> Some lane_net_request
  else None

(* ------------------------------------------------------------------ *)
(* Protocol specifications                                             *)
(* ------------------------------------------------------------------ *)

type handler_kind =
  | Hw_handler  (** dispatched by hardware: begins execution with a buffer *)
  | Sw_handler  (** software-scheduled: begins without a buffer *)
  | Procedure  (** ordinary subroutine *)

type handler_spec = {
  h_name : string;
  h_kind : handler_kind;
  h_lane_allowance : int array;  (** max sends allowed per lane *)
  h_no_stack : bool;
}

(** The protocol-writer-supplied information the paper's checkers consume:
    which routines are handlers (extracted "from the protocol
    specification"), their lane allowances, and the buffer-discipline
    tables for subroutines. *)
type spec = {
  p_name : string;
  p_handlers : handler_spec list;
  p_free_funcs : string list;
      (** routines that expect the current buffer and free it *)
  p_use_funcs : string list;
      (** routines that expect the current buffer without freeing it *)
  p_cond_free_funcs : string list;
      (** routines returning 0/1 according to whether they freed the
          buffer — the paper's twelve-line fixed-point refinement *)
}

let find_handler spec name =
  List.find_opt (fun h -> String.equal h.h_name name) spec.p_handlers

let handler_kind spec name =
  match find_handler spec name with
  | Some h -> h.h_kind
  | None -> Procedure

let is_handler spec name =
  match handler_kind spec name with
  | Hw_handler | Sw_handler -> true
  | Procedure -> false
