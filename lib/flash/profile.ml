(** Per-protocol shapes and seeded-fault placement for the synthetic corpus.

    The numbers here are calibrated against the paper's Tables 1–7: routine
    counts and code sizes land in the published ballpark (Table 1/5), and
    every error, minor violation, and false positive from Tables 2–4, 6 and
    Sections 7–8 is seeded at the corresponding kind of site (uncached
    handlers, eager-mode handlers, queue-full paths, debug code, ...). *)

(** Handler styles, mapping onto the paper's three handler classes. *)
type hstyle =
  | Dir  (** directory-consulting *)
  | Reply of int  (** reply-receive; argument = buffer reads performed *)
  | Interv of [ `PI | `IO ]  (** intervention *)
  | Unc of bool  (** uncached access; [true] = write *)
  | Wb  (** writeback *)
  | Inval  (** invalidation multicast *)
  | Pass  (** pass-thru *)
  | Len_var  (** run-time-flag send (the coma FP shape) *)

(** The shared base handler set — protocols inherit these names from a
    common legacy, which is why the paper saw the same bug replicated in
    dyn_ptr, rac and bitvector. *)
let base_handlers : (string * hstyle) list =
  [
    ("PILocalGet", Dir);
    ("PILocalGetX", Dir);
    ("PILocalPut", Wb);
    ("PILocalWB", Wb);
    ("PIRemoteGet", Pass);
    ("PIRemoteGetX", Pass);
    ("PIUncachedRead", Unc false);
    ("PIUncachedWrite", Unc true);
    ("NILocalGet", Dir);
    ("NILocalGetX", Dir);
    ("NILocalUpgrade", Dir);
    ("NIRemotePut", Reply 2);
    ("NIRemotePutX", Reply 2);
    ("NIUncachedReply", Reply 2);
    ("NIIntervention", Interv `PI);
    ("NIInterventionReply", Dir);
    ("NIInval", Inval);
    ("NIInvalAck", Dir);
    ("NILocalWB", Wb);
    ("NIWBAck", Pass);
    ("NIUncachedRead", Unc false);
    ("NIUncachedWrite", Unc true);
    ("IOLocalRead", Interv `IO);
    ("IOLocalWrite", Interv `IO);
    ("IORemoteRead", Pass);
    ("IOReadReply", Reply 2);
    ("IOWrite", Unc true);
    ("IOWBAck", Pass);
    ("NIInterventionX", Interv `PI);
    ("IOFlushLine", Interv `IO);
  ]

let variant_suffixes = [ "Eager"; "Cohr"; "Retry"; "Fast" ]

type config = {
  flavor : Skeletons.flavor;
  n_hw : int;  (** hardware handlers, base + variants *)
  n_sw : int;
  n_sw_alloc : int;  (** software handlers that allocate a buffer *)
  n_proc : int;  (** ordinary subroutines *)
  n_realloc : int;  (** Dir handlers that re-allocate for the reply *)
  n_interv : int;  (** intervention handlers (for send-wait volume) *)
  reply_reads : int;  (** buffer reads in a reply handler (0 or 2) *)
  n_use_helpers : int;  (** buffer-peeking subroutines (2 reads each) *)
  n_dir_helpers : int;  (** subroutines that modify dirEntry for the caller *)
  n_list_walk : int;  (** loop-only subroutines (lanes fixed point food) *)
  dir_extra : int;  (** extra directory reads per Dir handler *)
  pad : int * int;  (** straight-line padding range per routine *)
  branches : int * int;  (** extra path-doubling branches per handler *)
  long_handler_pad : int;  (** padding for the protocol's longest handler *)
  proc_switch_cases : int;  (** switch arms in utility routines (0 = none) *)
  bugs : (string * Skeletons.bug) list;  (** function -> seeded fault *)
  annot_useful : string list;  (** handlers given a no_free_needed() path *)
  free_helper_users : string list;
      (** Dir handlers whose NAK path calls SendNakAndFree() *)
  manifest : Manifest.entry list;
}

let e = Manifest.entry

(* Shorthand checker names (must match Registry). *)
let c_race = "wait_for_db"
let c_len = "msg_length"
let c_buf = "buffer_mgmt"
let c_lanes = "lanes"
let c_exec = "exec_restrict"
let c_alloc = "alloc_check"
let c_dir = "dir_entry"
let c_sw = "send_wait"

let bitvector : config =
  let p = "bitvector" in
  {
    flavor = Skeletons.Bitvector;
    n_hw = 82;
    n_sw = 8;
    n_sw_alloc = 8;
    n_proc = 78;
    n_realloc = 9;
    n_interv = 16;
    reply_reads = 2;
    n_use_helpers = 1;
    n_dir_helpers = 1;
    n_list_walk = 4;
    dir_extra = 1;
    pad = (24, 50);
    branches = (0, 2);
    long_handler_pad = 470;
    proc_switch_cases = 0;
    bugs =
      [
        (* Table 2: four buffer races in rare corner cases *)
        ("NIRemotePut", Skeletons.Race_read);
        ("NIRemotePutX", Skeletons.Race_read);
        ("NIUncachedReply", Skeletons.Race_read);
        ("IOReadReply", Skeletons.Race_read);
        (* Table 3: one uncached-read bug, one eager-mode bug, one
           violation harmless on hardware but wrong in simulation *)
        ("NIUncachedRead", Skeletons.Len_data_mismatch);
        ("NILocalGetEager", Skeletons.Len_data_mismatch);
        ("NIUncachedWrite", Skeletons.Len_data_mismatch);
        (* Table 4: two double frees (one shared with dyn_ptr/rac via the
           common heritage), one stub violation, one data-dependent FP *)
        ("NILocalUpgrade", Skeletons.Double_free);
        ("NIInterventionReplyEager", Skeletons.Double_free);
        ("NIDebugDrain", Skeletons.Buf_minor);
        ("NILocalWBFast", Skeletons.Buf_data_fp);
        (* Section 7: the typo lane overrun *)
        ("NILocalGetXFast", Skeletons.Lane_overrun);
        (* Table 5: two missing simulator hooks *)
        ("PIRemoteGetEager", Skeletons.Hook_omission);
        ("IOWBAckFast", Skeletons.Hook_omission);
        (* Table 6: one real directory bug, two abstraction errors, and
           the speculative-NAK path the checker must prune *)
        ("NIInvalAck", Skeletons.Dir_no_writeback);
        ("PILocalGetCohr", Skeletons.Dir_abstraction_fp);
        ("NIUncachedReadFast", Skeletons.Dir_abstraction_fp);
        ("NILocalGetCohr", Skeletons.Dir_spec_nak);
        ("MarkLinePending", Skeletons.Dir_spec_backout_fp);
        (* Table 6: two hand-rolled waits *)
        ("NIInterventionEager", Skeletons.Sendwait_barrier_fp);
        ("IOLocalReadFast", Skeletons.Sendwait_barrier_fp);
      ];
    annot_useful = [];
    free_helper_users = [ "NILocalGet"; "NIInterventionReply" ];
    manifest =
      [
        e ~checker:c_race ~protocol:p ~func:"NIRemotePut" ~kind:Manifest.Bug
          "first-byte read without synchronisation";
        e ~checker:c_race ~protocol:p ~func:"NIRemotePutX" ~kind:Manifest.Bug
          "first-byte read without synchronisation";
        e ~checker:c_race ~protocol:p ~func:"NIUncachedReply"
          ~kind:Manifest.Bug "corner-path read without synchronisation";
        e ~checker:c_race ~protocol:p ~func:"IOReadReply" ~kind:Manifest.Bug
          "I/O reply read without synchronisation";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedRead" ~kind:Manifest.Bug
          "uncached read: stale LEN_NODATA on data send";
        e ~checker:c_len ~protocol:p ~func:"NILocalGetEager"
          ~kind:Manifest.Bug "eager-mode handler (simulation only)";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedWrite"
          ~kind:Manifest.Bug
          "harmless on hardware (implementation detail) but breaks \
           simulation";
        e ~checker:c_buf ~protocol:p ~func:"NILocalUpgrade" ~kind:Manifest.Bug
          "double free inherited from the common parent source";
        e ~checker:c_buf ~protocol:p ~func:"NIInterventionReplyEager"
          ~kind:Manifest.Bug "double free";
        e ~checker:c_buf ~protocol:p ~func:"NIDebugDrain" ~kind:Manifest.Minor
          "violation in a legacy stub nobody can diagnose";
        e ~checker:c_buf ~protocol:p ~func:"NILocalWBFast"
          ~kind:Manifest.False_positive
          "data-dependent free the checker cannot prune";
        e ~checker:c_lanes ~protocol:p ~func:"NILocalGetXFast"
          ~kind:Manifest.Bug "typo: one reply send beyond the lane allowance";
        e ~checker:c_exec ~protocol:p ~func:"PIRemoteGetEager"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"IOWBAckFast" ~kind:Manifest.Bug
          "simulator hook omitted";
        e ~checker:c_dir ~protocol:p ~func:"NIInvalAck" ~kind:Manifest.Bug
          "modified directory entry never written back";
        e ~checker:c_dir ~protocol:p ~func:"PILocalGetCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIUncachedReadFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"MarkLinePending"
          ~kind:Manifest.False_positive
          "subroutine relies on the caller's writeback";
        e ~checker:c_sw ~protocol:p ~func:"NIInterventionEager"
          ~kind:Manifest.False_positive
          "abstraction barrier broken: hand-rolled wait loop";
        e ~checker:c_sw ~protocol:p ~func:"IOLocalReadFast"
          ~kind:Manifest.False_positive
          "abstraction barrier broken: hand-rolled wait loop";
      ];
  }

let dyn_ptr : config =
  let p = "dyn_ptr" in
  {
    flavor = Skeletons.Dyn_ptr;
    n_hw = 126;
    n_sw = 8;
    n_sw_alloc = 8;
    n_proc = 93;
    n_realloc = 11;
    n_interv = 19;
    reply_reads = 2;
    n_use_helpers = 4;
    n_dir_helpers = 4;
    n_list_walk = 14;
    dir_extra = 2;
    pad = (26, 88);
    branches = (3, 4);
    long_handler_pad = 330;
    proc_switch_cases = 0;
    bugs =
      [
        (* Table 3: six uncached bugs plus one eager-mode bug *)
        ("NIUncachedRead", Skeletons.Len_data_mismatch);
        ("NIUncachedWrite", Skeletons.Len_data_mismatch);
        ("PIUncachedRead", Skeletons.Len_data_mismatch);
        ("PIUncachedWrite", Skeletons.Len_data_mismatch);
        ("NIUncachedReadRetry", Skeletons.Len_data_mismatch);
        ("NIUncachedWriteRetry", Skeletons.Len_data_mismatch);
        ("NILocalGetEager", Skeletons.Len_data_mismatch);
        (* Table 4 *)
        ("NILocalUpgrade", Skeletons.Double_free);
        ("NILocalGetRetry", Skeletons.Double_free);
        ("NIDebugDrain", Skeletons.Buf_minor);
        ("IOStubFlush", Skeletons.Buf_minor);
        ("NILocalWBFast", Skeletons.Buf_annot_fp);
        ("PILocalPutFast", Skeletons.Buf_data_fp);
        (* Section 7: hardware-bug workaround inserted by a non-author *)
        ("PILocalGetXRetry", Skeletons.Lane_overrun);
        (* Table 5 *)
        ("PIRemoteGetEager", Skeletons.Hook_omission);
        ("NIWBAckRetry", Skeletons.Hook_omission);
        ("IORemoteReadCohr", Skeletons.Hook_omission);
        ("SWRetryQueue", Skeletons.Hook_omission);
        (* Table 6 *)
        ("SWReplyQueue", Skeletons.Alloc_unchecked_fp);
        ("SWRefill", Skeletons.Alloc_unchecked_fp);
        ("NILocalGetXCohr", Skeletons.Dir_spec_backout_fp);
        ("PILocalGetCohr", Skeletons.Dir_abstraction_fp);
        ("PILocalGetXCohr", Skeletons.Dir_abstraction_fp);
        ("NILocalGetFast", Skeletons.Dir_abstraction_fp);
        ("NIUncachedReadFast", Skeletons.Dir_abstraction_fp);
        ("NIUncachedWriteFast", Skeletons.Dir_abstraction_fp);
        ("NIInvalAckCohr", Skeletons.Dir_abstraction_fp);
        ("NILocalWBCohr2", Skeletons.Dir_abstraction_fp);
        ("NIInterventionReplyCohr", Skeletons.Dir_abstraction_fp);
        ("NIInterventionEager", Skeletons.Sendwait_barrier_fp);
        ("IOLocalReadFast", Skeletons.Sendwait_barrier_fp);
        ("NILocalGetXEager", Skeletons.Dir_spec_nak);
      ];
    annot_useful = [ "NILocalWBCohr"; "PILocalPutCohr"; "PILocalWBCohr" ];
    free_helper_users = [ "NILocalGet"; "NILocalGetX"; "NIInvalAck" ];
    manifest =
      [
        e ~checker:c_len ~protocol:p ~func:"NIUncachedRead" ~kind:Manifest.Bug
          "uncached read: dirty-remote + queue-full corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedWrite"
          ~kind:Manifest.Bug "uncached write corner";
        e ~checker:c_len ~protocol:p ~func:"PIUncachedRead" ~kind:Manifest.Bug
          "uncached read corner";
        e ~checker:c_len ~protocol:p ~func:"PIUncachedWrite"
          ~kind:Manifest.Bug "uncached write corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedReadRetry"
          ~kind:Manifest.Bug "uncached retry corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedWriteRetry"
          ~kind:Manifest.Bug "uncached retry corner";
        e ~checker:c_len ~protocol:p ~func:"NILocalGetEager"
          ~kind:Manifest.Bug "eager-mode handler (simulation only)";
        e ~checker:c_buf ~protocol:p ~func:"NILocalUpgrade" ~kind:Manifest.Bug
          "double free inherited from the common parent source";
        e ~checker:c_buf ~protocol:p ~func:"NILocalGetRetry"
          ~kind:Manifest.Bug "very rare double free";
        e ~checker:c_buf ~protocol:p ~func:"NIDebugDrain" ~kind:Manifest.Minor
          "violation in unreachable handler";
        e ~checker:c_buf ~protocol:p ~func:"IOStubFlush" ~kind:Manifest.Minor
          "violation in unreachable handler";
        e ~checker:c_buf ~protocol:p ~func:"NILocalWBFast" ~count:2
          ~kind:Manifest.False_positive
          "if/else twice on one condition: two impossible paths";
        e ~checker:c_buf ~protocol:p ~func:"PILocalPutFast"
          ~kind:Manifest.False_positive "data-dependent free";
        e ~checker:c_lanes ~protocol:p ~func:"PILocalGetXRetry"
          ~kind:Manifest.Bug
          "hardware-bug workaround exceeds the lane allowance";
        e ~checker:c_exec ~protocol:p ~func:"PIRemoteGetEager"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"NIWBAckRetry" ~kind:Manifest.Bug
          "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"IORemoteReadCohr"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"SWRetryQueue" ~kind:Manifest.Bug
          "software-handler hook omitted";
        e ~checker:c_alloc ~protocol:p ~func:"SWReplyQueue"
          ~kind:Manifest.False_positive
          "debug print of the buffer before the failure check";
        e ~checker:c_alloc ~protocol:p ~func:"SWRefill"
          ~kind:Manifest.False_positive
          "debug print of the buffer before the failure check";
        e ~checker:c_dir ~protocol:p ~func:"NILocalGetXCohr"
          ~kind:Manifest.False_positive
          "speculative modification backed out without a NAK";
        e ~checker:c_dir ~protocol:p ~func:"PILocalGetCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"PILocalGetXCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NILocalGetFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIUncachedReadFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIUncachedWriteFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIInvalAckCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NILocalWBCohr2"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIInterventionReplyCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"MarkLinePending"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"MarkLineBusy"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"SetOwnerHint"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"ClearPendingBit"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_sw ~protocol:p ~func:"NIInterventionEager"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
        e ~checker:c_sw ~protocol:p ~func:"IOLocalReadFast"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
      ];
  }

let sci : config =
  let p = "sci" in
  {
    flavor = Skeletons.Sci;
    n_hw = 123;
    n_sw = 8;
    n_sw_alloc = 5;
    n_proc = 83;
    n_realloc = 0;
    n_interv = 5;
    reply_reads = 0;
    n_use_helpers = 0;
    n_dir_helpers = 0;
    n_list_walk = 12;
    dir_extra = 0;
    pad = (16, 34);
    branches = (1, 3);
    long_handler_pad = 270;
    proc_switch_cases = 0;
    bugs =
      [
        ("NIRemotePut", Skeletons.No_bug) (* keeps its 2 reads *);
        ("NIInterventionReplyCohr", Skeletons.Double_free);
        ("NILocalUpgradeCohr", Skeletons.Double_free);
        ("NIInvalAckCohr", Skeletons.Buffer_leak);
        ("NIDebugDrain", Skeletons.Buf_minor);
        ("IOStubFlush", Skeletons.Buf_minor);
        ("NILocalWBFast", Skeletons.Buf_annot_fp);
        ("PILocalPutFast", Skeletons.Buf_annot_fp);
        ("PILocalWBFast", Skeletons.Buf_annot_fp);
        ("NILocalWBRetry", Skeletons.Buf_annot_fp);
        ("PILocalPutRetry", Skeletons.Buf_data_fp);
        ("PILocalWBRetry", Skeletons.Buf_data_fp);
        ("IORemoteReadCohr", Skeletons.Hook_unimplemented);
        ("IOWBAckCohr", Skeletons.Hook_unimplemented);
        ("PIRemoteGetXCohr", Skeletons.Hook_unimplemented);
        ("PILocalGetCohr", Skeletons.Dir_abstraction_fp);
        ("NILocalGetEager", Skeletons.Dir_spec_nak);
      ];
    annot_useful =
      [
        "NILocalWBCohr";
        "PILocalPutCohr";
        "PILocalWBCohr";
        "NILocalWBEager";
        "PILocalPutEager";
        "PILocalWBEager";
        "NILocalWBCohr2";
        "PILocalPutCohr2";
        "PILocalWBCohr2";
        "NILocalWBFast2";
      ];
    free_helper_users = [ "NILocalGet" ];
    manifest =
      [
        e ~checker:c_buf ~protocol:p ~func:"NIInterventionReplyCohr"
          ~kind:Manifest.Bug "double free in partially implemented code";
        e ~checker:c_buf ~protocol:p ~func:"NILocalUpgradeCohr"
          ~kind:Manifest.Bug "double free in partially implemented code";
        e ~checker:c_buf ~protocol:p ~func:"NIInvalAckCohr"
          ~kind:Manifest.Bug "leak in partially implemented code";
        e ~checker:c_buf ~protocol:p ~func:"NIDebugDrain" ~kind:Manifest.Minor
          "abstraction violation";
        e ~checker:c_buf ~protocol:p ~func:"IOStubFlush" ~kind:Manifest.Minor
          "abstraction violation";
        e ~checker:c_buf ~protocol:p ~func:"NILocalWBFast" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"PILocalPutFast" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"PILocalWBFast" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"NILocalWBRetry" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"PILocalPutRetry"
          ~kind:Manifest.False_positive "data-dependent free";
        e ~checker:c_buf ~protocol:p ~func:"PILocalWBRetry"
          ~kind:Manifest.False_positive "data-dependent free";
        e ~checker:c_exec ~protocol:p ~func:"IORemoteReadCohr"
          ~kind:Manifest.Minor "unimplemented routine (fatal if called)";
        e ~checker:c_exec ~protocol:p ~func:"IOWBAckCohr"
          ~kind:Manifest.Minor "unimplemented routine (fatal if called)";
        e ~checker:c_exec ~protocol:p ~func:"PIRemoteGetXCohr"
          ~kind:Manifest.Minor "unimplemented routine (fatal if called)";
        e ~checker:c_dir ~protocol:p ~func:"PILocalGetCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
      ];
  }

let coma : config =
  let p = "coma" in
  {
    flavor = Skeletons.Coma;
    n_hw = 121;
    n_sw = 8;
    n_sw_alloc = 8;
    n_proc = 64;
    n_realloc = 24;
    n_interv = 3;
    reply_reads = 0;
    n_use_helpers = 0;
    n_dir_helpers = 5;
    n_list_walk = 2;
    dir_extra = 4;
    pad = (34, 96);
    branches = (1, 3);
    long_handler_pad = 190;
    proc_switch_cases = 0;
    bugs =
      [
        ("NISharingTransfer", Skeletons.Len_var_fp);
        ("PIRemoteGetEager", Skeletons.Hook_omission);
        ("NIWBAckCohr", Skeletons.Hook_omission);
        ("IORemoteReadFast", Skeletons.Hook_omission);
        ("NILocalGetEager", Skeletons.Dir_spec_nak);
      ];
    annot_useful = [];
    free_helper_users = [ "NILocalGet"; "NILocalGetX" ];
    manifest =
      [
        e ~checker:c_len ~protocol:p ~func:"NISharingTransfer" ~count:2
          ~kind:Manifest.False_positive
          "send flavour chosen by a run-time variable: two impossible \
           paths flagged in the same function";
        e ~checker:c_exec ~protocol:p ~func:"PIRemoteGetEager"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"NIWBAckCohr" ~kind:Manifest.Bug
          "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"IORemoteReadFast"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_dir ~protocol:p ~func:"MarkLinePending"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"MarkLineBusy"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"SetOwnerHint"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"ClearPendingBit"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"SetMasterHint"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
      ];
  }

let rac : config =
  let p = "rac" in
  {
    flavor = Skeletons.Rac;
    n_hw = 138;
    n_sw = 8;
    n_sw_alloc = 8;
    n_proc = 54;
    n_realloc = 12;
    n_interv = 17;
    reply_reads = 2;
    n_use_helpers = 1;
    n_dir_helpers = 4;
    n_list_walk = 3;
    dir_extra = 3;
    pad = (22, 78);
    branches = (2, 3);
    long_handler_pad = 420;
    proc_switch_cases = 0;
    bugs =
      [
        ("NIUncachedRead", Skeletons.Len_data_mismatch);
        ("NIUncachedWrite", Skeletons.Len_data_mismatch);
        ("PIUncachedRead", Skeletons.Len_data_mismatch);
        ("PIUncachedWrite", Skeletons.Len_data_mismatch);
        ("NIUncachedReadRetry", Skeletons.Len_data_mismatch);
        ("NIUncachedWriteRetry", Skeletons.Len_data_mismatch);
        ("NILocalGetEager", Skeletons.Len_data_mismatch);
        ("IOWrite", Skeletons.Len_data_mismatch);
        ("NILocalUpgrade", Skeletons.Double_free);
        ("NIInvalAckFast", Skeletons.Double_free);
        ("NILocalWBFast", Skeletons.Buf_annot_fp);
        ("PILocalPutFast", Skeletons.Buf_annot_fp);
        ("PIRemoteGetEager", Skeletons.Hook_omission);
        ("IOWBAckRetry", Skeletons.Hook_omission);
        ("NILocalGetXCohr", Skeletons.Dir_spec_backout_fp);
        ("NIInterventionReplyFast", Skeletons.Dir_spec_backout_fp);
        ("PILocalGetCohr", Skeletons.Dir_abstraction_fp);
        ("NILocalGetFast", Skeletons.Dir_abstraction_fp);
        ("NIUncachedReadFast", Skeletons.Dir_abstraction_fp);
        ("NIInterventionEager", Skeletons.Sendwait_barrier_fp);
        ("IOLocalReadFast", Skeletons.Sendwait_barrier_fp);
      ];
    annot_useful = [ "NILocalWBCohr"; "PILocalPutCohr" ];
    free_helper_users = [ "NILocalGet"; "NIInvalAck" ];
    manifest =
      [
        e ~checker:c_len ~protocol:p ~func:"NIUncachedRead" ~kind:Manifest.Bug
          "uncached read corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedWrite"
          ~kind:Manifest.Bug "uncached write corner";
        e ~checker:c_len ~protocol:p ~func:"PIUncachedRead" ~kind:Manifest.Bug
          "uncached read corner";
        e ~checker:c_len ~protocol:p ~func:"PIUncachedWrite"
          ~kind:Manifest.Bug "uncached write corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedReadRetry"
          ~kind:Manifest.Bug "uncached retry corner";
        e ~checker:c_len ~protocol:p ~func:"NIUncachedWriteRetry"
          ~kind:Manifest.Bug "uncached retry corner";
        e ~checker:c_len ~protocol:p ~func:"NILocalGetEager"
          ~kind:Manifest.Bug "eager-mode handler (simulation only)";
        e ~checker:c_len ~protocol:p ~func:"IOWrite" ~kind:Manifest.Bug
          "rac-only bug";
        e ~checker:c_buf ~protocol:p ~func:"NILocalUpgrade" ~kind:Manifest.Bug
          "double free inherited from the common parent source";
        e ~checker:c_buf ~protocol:p ~func:"NIInvalAckFast" ~kind:Manifest.Bug
          "double free";
        e ~checker:c_buf ~protocol:p ~func:"NILocalWBFast" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"PILocalPutFast" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_exec ~protocol:p ~func:"PIRemoteGetEager"
          ~kind:Manifest.Bug "simulator hook omitted";
        e ~checker:c_exec ~protocol:p ~func:"IOWBAckRetry" ~kind:Manifest.Bug
          "simulator hook omitted";
        e ~checker:c_dir ~protocol:p ~func:"NILocalGetXCohr"
          ~kind:Manifest.False_positive "speculative backout without a NAK";
        e ~checker:c_dir ~protocol:p ~func:"NIInterventionReplyFast"
          ~kind:Manifest.False_positive "speculative backout without a NAK";
        e ~checker:c_dir ~protocol:p ~func:"PILocalGetCohr"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NILocalGetFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"NIUncachedReadFast"
          ~kind:Manifest.False_positive "hand-computed directory address";
        e ~checker:c_dir ~protocol:p ~func:"MarkLinePending"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"MarkLineBusy"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"SetOwnerHint"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_dir ~protocol:p ~func:"ClearPendingBit"
          ~kind:Manifest.False_positive "caller-writes-back subroutine";
        e ~checker:c_sw ~protocol:p ~func:"NIInterventionEager"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
        e ~checker:c_sw ~protocol:p ~func:"IOLocalReadFast"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
      ];
  }

let common : config =
  let p = "common" in
  {
    flavor = Skeletons.Common;
    n_hw = 29;
    n_sw = 4;
    n_sw_alloc = 4;
    n_proc = 29;
    n_realloc = 0;
    n_interv = 2;
    reply_reads = 0;
    n_use_helpers = 8;
    n_dir_helpers = 0;
    n_list_walk = 2;
    dir_extra = 0;
    pad = (90, 150);
    branches = (2, 3);
    long_handler_pad = 360;
    proc_switch_cases = 26;
    bugs =
      [
        ("SharedDebugDump", Skeletons.Race_read_debug_fp);
        ("SharedStubDrain", Skeletons.Buf_minor);
        ("SharedWBFlushA", Skeletons.Buf_annot_fp);
        ("SharedWBFlushB", Skeletons.Buf_annot_fp);
        ("SharedWBFlushC", Skeletons.Buf_annot_fp);
        ("SharedWBFlushD", Skeletons.Buf_data_fp);
        ("SharedInterventionA", Skeletons.Sendwait_barrier_fp);
        ("SharedInterventionB", Skeletons.Sendwait_barrier_fp);
      ];
    annot_useful = [ "SharedWBKeepA"; "SharedWBKeepB"; "SharedWBKeepC" ];
    free_helper_users = [ "SharedHomeGet" ];
    manifest =
      [
        e ~checker:c_race ~protocol:p ~func:"SharedDebugDump"
          ~kind:Manifest.False_positive
          "debug code intentionally violates the invariant";
        e ~checker:c_buf ~protocol:p ~func:"SharedStubDrain"
          ~kind:Manifest.Minor "harmless violation";
        e ~checker:c_buf ~protocol:p ~func:"SharedWBFlushA" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"SharedWBFlushB" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"SharedWBFlushC" ~count:2
          ~kind:Manifest.False_positive "correlated branches";
        e ~checker:c_buf ~protocol:p ~func:"SharedWBFlushD"
          ~kind:Manifest.False_positive "data-dependent free";
        e ~checker:c_sw ~protocol:p ~func:"SharedInterventionA"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
        e ~checker:c_sw ~protocol:p ~func:"SharedInterventionB"
          ~kind:Manifest.False_positive "hand-rolled wait loop";
      ];
  }

let all : (string * config) list =
  [
    ("bitvector", bitvector);
    ("dyn_ptr", dyn_ptr);
    ("sci", sci);
    ("coma", coma);
    ("rac", rac);
    ("common", common);
  ]

let find name = List.assoc_opt name all
