(** The shared declarations prepended to every generated protocol file.

    Real FLASH protocol sources pull these from common headers
    ("flash-includes.h" in the paper's Figure 2); we inline them because
    the corpus is generated post-preprocessing, exactly what xg++ saw.
    The MAGIC macros are declared as function prototypes so that the
    type checker knows their shapes. *)

let text =
  {|/* ---- flash-includes: shared protocol declarations (generated) ---- */
typedef unsigned long u32;
typedef long s32;

enum msg_length { LEN_NODATA = 0, LEN_WORD = 1, LEN_CACHELINE = 16 };
enum data_flag { F_NODATA = 0, F_DATA = 1 };
enum wait_flag { W_NOWAIT = 0, W_WAIT = 1 };

enum opcode {
  MSG_GET = 1,
  MSG_GETX = 2,
  MSG_PUT = 3,
  MSG_PUTX = 4,
  MSG_NAK = 5,
  MSG_INVAL = 6,
  MSG_INVAL_ACK = 7,
  MSG_WB = 8,
  MSG_WB_ACK = 9,
  MSG_INTERVENTION = 10,
  MSG_INTERVENTION_REPLY = 11,
  MSG_UNCACHED_READ = 12,
  MSG_UNCACHED_WRITE = 13,
  MSG_UNCACHED_REPLY = 14,
  MSG_IO_READ = 15,
  MSG_IO_WRITE = 16,
  MSG_IO_REPLY = 17
};

struct net_header {
  int len;
  int type;
  long address;
  int src;
  int dest;
  int misc;
};

struct msg_header {
  struct net_header nh;
};

struct dir_entry_s {
  int pending;
  int dirty;
  int io;
  long vector;
  int owner;
  int head;
  int tags;
  int state;
  int master;
  long fwd;
  long back;
};

/* handler globals (selected by HANDLER_GLOBALS) */
struct msg_header header;
struct dir_entry_s dirEntry;
long protoStats[64];
long nodeId;
long numNodes;

/* ---- MAGIC interface ---- */
long HANDLER_GLOBALS(long field);
void HANDLER_DEFS(void);
void HANDLER_PROLOGUE(void);
void NO_STACK(void);
void SET_STACKPTR(void);
void SIM_HANDLER_HOOK(void);
void SIM_SWHANDLER_HOOK(void);
void SIM_PROCEDURE_HOOK(void);

void WAIT_FOR_DB_FULL(long addr);
long MISCBUS_READ_DB(long addr, int off);
long MISCBUS_READ_DB_OLD(long addr, int off);
void MISCBUS_WRITE_DB(long addr, int off, long value);
long ALLOCATE_DB(void);
int ALLOC_FAILED(long buf);
void FREE_DB(void);
void DB_INC_REFCOUNT(void);

void PI_SEND(int flag, int keep, int swap, int wait, int dec, int null);
void IO_SEND(int flag, int keep, int swap, int wait, int dec, int null);
void NI_SEND(int type, int flag, int keep, int wait, int dec, int null);
void WAIT_FOR_OUTPUT_SPACE(int lane);
void WAIT_FOR_PI_REPLY(void);
void WAIT_FOR_IO_REPLY(void);

long DIR_ADDR(long address);
void LOAD_DIR_ENTRY(long dirAddr);
void WRITEBACK_DIR_ENTRY(long dirAddr);

/* checker annotations */
void has_buffer(void);
void no_free_needed(void);

/* protocol-specific directory state encodings */
enum rac_state { RAC_INVALID = 0, RAC_SHARED = 1, RAC_DIRTY = 2 };
enum coma_state { COMA_INVALID = 0, COMA_SHARED = 1, COMA_EXCL = 2 };

/* pointer-list support (dyn_ptr, sci) */
long ALLOC_LINK(long node);
long LINK_INSERT(long head, long link);
long LINK_NEXT(long p);
long LIST_CLEAR(long head);

/* miscellaneous runtime services */
int OUTPUT_QUEUE_FULL(int lane);
void FATAL_ERROR(void);
void BACKOUT_REQUEST(long src);
long protoDebug;

/* debug support */
void DEBUG_PRINT(char *fmt, long value);
/* ---- end flash-includes ---- */
|}

(** Number of source lines the prelude contributes to each file (excluded
    from protocol LOC, like the paper excluding header files). *)
let loc = Frontend.loc_count text
