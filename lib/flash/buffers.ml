(** The per-node data-buffer pool, with manual reference counting.

    Every incoming message is assigned a buffer by the hardware (reference
    count incremented); the handler must decrement it when done.  The pool
    detects at run time the three classic failures the paper's Section 6
    checker finds statically: leaks (all buffers lost — the node can no
    longer accept messages and the machine deadlocks), double frees, and
    use-after-free. *)

type fault =
  | Double_free of int  (** buffer index *)
  | Use_after_free of int
  | Read_before_fill of int  (** the Section 4 race: read while filling *)
  | Pool_exhausted  (** leak has consumed every buffer *)

exception Fault of fault

let fault_to_string = function
  | Double_free i -> Printf.sprintf "double free of buffer %d" i
  | Use_after_free i -> Printf.sprintf "use of freed buffer %d" i
  | Read_before_fill i ->
    Printf.sprintf "read of buffer %d before hardware finished filling it" i
  | Pool_exhausted -> "no free data buffers (leak): node deadlocks"

type buffer = {
  index : int;
  mutable refcount : int;
  mutable filling : bool;  (** hardware still streaming the body in *)
  mutable words : int array;
}

type t = {
  buffers : buffer array;
  mutable allocations : int;  (** statistics *)
  mutable frees : int;
  mutable faults : fault list;  (** recorded when [trap = false] *)
  trap : bool;  (** raise on fault instead of recording *)
}

let words_per_buffer = 16

let create ?(size = 16) ?(trap = false) () =
  {
    buffers =
      Array.init size (fun index ->
          {
            index;
            refcount = 0;
            filling = false;
            words = Array.make words_per_buffer 0;
          });
    allocations = 0;
    frees = 0;
    faults = [];
    trap;
  }

let report t fault =
  if t.trap then raise (Fault fault) else t.faults <- fault :: t.faults

let free_count t =
  Array.fold_left
    (fun acc b -> if b.refcount = 0 then acc + 1 else acc)
    0 t.buffers

(** Allocate a buffer (refcount 1).  Returns [None] when the pool is
    exhausted; callers model the protocol's mandatory failure check. *)
let allocate ?(filling = false) t : buffer option =
  match Array.find_opt (fun b -> b.refcount = 0) t.buffers with
  | Some b ->
    b.refcount <- 1;
    b.filling <- filling;
    Array.fill b.words 0 words_per_buffer 0;
    t.allocations <- t.allocations + 1;
    Some b
  | None ->
    report t Pool_exhausted;
    None

(** Hardware finished filling the buffer body (what WAIT_FOR_DB_FULL
    waits for). *)
let mark_full b = b.filling <- false

let incr_refcount b = b.refcount <- b.refcount + 1

let free t (b : buffer) =
  if b.refcount <= 0 then report t (Double_free b.index)
  else begin
    b.refcount <- b.refcount - 1;
    t.frees <- t.frees + 1
  end

let read t (b : buffer) ~synchronized ~word : int =
  if b.refcount <= 0 then begin
    report t (Use_after_free b.index);
    0
  end
  else if b.filling && not synchronized then begin
    report t (Read_before_fill b.index);
    (* model the race: the word may not have arrived yet *)
    0
  end
  else b.words.(word mod words_per_buffer)

let write t (b : buffer) ~word ~value =
  if b.refcount <= 0 then report t (Use_after_free b.index)
  else b.words.(word mod words_per_buffer) <- value

let faults t = List.rev t.faults

(** Invariant used by property tests: refcounts never negative, frees
    never exceed allocations plus hardware fills. *)
let well_formed t = Array.for_all (fun b -> b.refcount >= 0) t.buffers
