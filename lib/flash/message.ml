(** Messages exchanged between FLASH nodes.

    A message header carries an opcode, a length field and a has-data flag.
    The two are deliberately decoupled (it simplifies the MAGIC hardware),
    which is exactly what makes the paper's Section 5 checker necessary:
    nothing in the hardware keeps them consistent. *)

type length = Len_nodata | Len_word | Len_cacheline

type t = {
  opcode : string;  (** one of {!Flash_api.msg_opcodes_request}/[_reply] *)
  src : int;  (** sending node *)
  dst : int;  (** destination node *)
  addr : int;  (** cache-line address *)
  len : length;
  has_data : bool;  (** the send's data flag (F_DATA / F_NODATA) *)
  data : int array;  (** payload actually carried *)
  lane : int;
}

let length_words = function
  | Len_nodata -> 0
  | Len_word -> 1
  | Len_cacheline -> 16

let length_of_string s =
  if String.equal s Flash_api.len_nodata then Some Len_nodata
  else if String.equal s Flash_api.len_word then Some Len_word
  else if String.equal s Flash_api.len_cacheline then Some Len_cacheline
  else None

let string_of_length = function
  | Len_nodata -> Flash_api.len_nodata
  | Len_word -> Flash_api.len_word
  | Len_cacheline -> Flash_api.len_cacheline

(** The inconsistency the message-length checker hunts statically: a
    data send with a zero length (the interface transmits no payload and
    the receiver reads garbage), or a no-data send with a non-zero length
    (the interface transmits stale buffer words). *)
let length_consistent t =
  match (t.has_data, t.len) with
  | true, Len_nodata -> false
  | false, (Len_word | Len_cacheline) -> false
  | true, (Len_word | Len_cacheline) | false, Len_nodata -> true

let is_reply t = Flash_api.is_reply_opcode t.opcode

let pp ppf t =
  Format.fprintf ppf "%s %d->%d addr=0x%x len=%s%s lane=%d" t.opcode t.src
    t.dst t.addr
    (string_of_length t.len)
    (if t.has_data then " +data" else "")
    t.lane
