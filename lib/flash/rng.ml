(** Deterministic pseudo-random numbers for corpus generation.

    A splitmix64 generator: the synthetic protocol corpus must be
    bit-for-bit reproducible across runs and machines, so we do not use
    [Random] (whose default state is shared and whose algorithm is not
    pinned by this project). *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then 0
  else
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    r mod bound

(** Uniform int in [lo, hi] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(** True with probability [p] out of 100. *)
let percent t p = int t 100 < p

(** Pick a uniformly random element. *)
let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

(** Derive an independent generator (e.g. one per protocol) so that
    changing how many numbers one protocol consumes does not perturb the
    others. *)
let split t label =
  let h = Hashtbl.hash label in
  create ~seed:(Int64.to_int (next_int64 t) lxor h)
