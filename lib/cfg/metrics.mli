(** Protocol-size metrics: the paper's Table 1. *)

type protocol_metrics = {
  name : string;
  loc : int;
  n_paths : int;
  avg_path_length : int;  (** rounded, as in the paper *)
  max_path_length : int;
}

val measure :
  name:string ->
  sources:string list ->
  tus:Ast.tunit list ->
  protocol_metrics
