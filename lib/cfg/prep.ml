(** Prep — the shared per-function analysis cache.

    Every per-function client of a CFG (the nine checkers, the [Mcd]
    work units, [Paths], the fixer/optimizer) needs the same three
    derived artifacts: the graph itself, the flattened sub-expression
    event list of every node, and the loop structure.  Before this
    module each (checker x function) pairing rebuilt all three, so a
    nine-checker run paid for nine CFG constructions and nine event
    flattenings per function.  [Prep.build] computes them exactly once;
    a batched scheduler (or the fused sequential driver) builds one
    [Prep.t] per function and hands it to every checker.

    Two event views are precomputed because state machines differ in
    [observe_branches]: the observing view exposes branch/switch
    conditions as events, the non-observing view hides them.  Nodes
    whose events are identical in both views share the same physical
    array. *)

(** Structure-of-arrays view of the observing event stream: every event
    of every node, concatenated in node order into parallel int arrays
    allocated once per function.  The screening keys a dispatch loop
    needs (root tag, callee symbol, first-argument symbol, owning node,
    branch visibility) are dense ints read sequentially; [ev_expr] holds
    the expression itself for the rules that survive screening. *)
type soa = {
  ev_expr : Ast.expr array;  (** the event expression *)
  ev_class : int array;  (** root tag, [Ast.expr_tag] *)
  ev_callee : int array;
      (** callee symbol id for a direct call, [-1] otherwise *)
  ev_arg : int array;
      (** symbol id of a first plain-identifier argument, [-1] otherwise *)
  ev_node : int array;  (** owning CFG node id *)
  ev_flags : int array;
      (** bit 0: hidden from non-observing machines (branch/switch) *)
  node_off : int array;  (** per node: first event index *)
  node_len : int array;  (** per node: event count *)
}

type t = {
  func : Ast.func;
  cfg : Cfg.t;
  events_obs : Ast.expr array array;
      (** per node: sub-expressions in evaluation (post-) order,
          branch/switch conditions included *)
  events_noobs : Ast.expr array array;
      (** the same with branch/switch conditions hidden *)
  soa : soa;
  n_edges : int;
  back_edges : (int * int) list;
  paths : Paths.stats Lazy.t;
}

let soa_hidden_bit = 1

(* Sub-expressions of [e] in evaluation (post-) order, including [e].
   This is the one flattening the engine replays; it lived in [Engine]
   before the prep cache existed (Engine re-exports it). *)
let subexprs_post (e : Ast.expr) : Ast.expr list =
  let acc = ref [] in
  let rec post e =
    (match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Ident _ | Ast.Sizeof_type _ ->
      ()
    | Ast.Call (f, args) ->
      post f;
      List.iter post args
    | Ast.Unop (_, a)
    | Ast.Cast (_, a)
    | Ast.Field (a, _)
    | Ast.Arrow (a, _)
    | Ast.Sizeof_expr a ->
      post a
    | Ast.Binop (_, a, b)
    | Ast.Assign (a, b)
    | Ast.Op_assign (_, a, b)
    | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      post a;
      post b
    | Ast.Cond (a, b, c) ->
      post a;
      post b;
      post c);
    acc := e :: !acc
  in
  post e;
  List.rev !acc

(* The expressions a CFG node exposes to a state machine. *)
let node_exprs ~observe_branches (node : Cfg.node) : Ast.expr list =
  match node.Cfg.kind with
  | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ } -> [ e ]
  | Cfg.Stmt { Ast.sdesc = Ast.Sdecl d; _ } -> (
    match d.Ast.v_init with Some e -> [ e ] | None -> [])
  | Cfg.Branch e | Cfg.Switch e -> if observe_branches then [ e ] else []
  | Cfg.Return (Some e) -> [ e ]
  | Cfg.Stmt _ | Cfg.Return None | Cfg.Entry | Cfg.Exit | Cfg.Join -> []

let flatten exprs =
  match exprs with
  | [] -> [||]
  | exprs -> Array.of_list (List.concat_map subexprs_post exprs)

let empty_events : Ast.expr array = [||]

(* Arena fill value.  It must be a module-level (hence quickly promoted,
   thereafter old-generation) block: [Array.make n v] with [n] beyond
   the young-block limit and a *young* [v] forces a full minor
   collection per call — with one arena per function that is a
   stop-the-world rendezvous per function, which serialises the Mcd
   domains.  A shared old block makes the allocation GC-silent. *)
let arena_init : Ast.expr = Ast.int_lit 0

let build (func : Ast.func) : t =
  let cfg = Cfg.build func in
  let n = Array.length cfg.Cfg.nodes in
  let events_obs = Array.make n empty_events in
  let events_noobs = Array.make n empty_events in
  let n_edges = ref 0 in
  Array.iteri
    (fun i (node : Cfg.node) ->
      n_edges := !n_edges + List.length node.Cfg.succs;
      let obs = flatten (node_exprs ~observe_branches:true node) in
      events_obs.(i) <- obs;
      events_noobs.(i) <-
        (match node.Cfg.kind with
        | Cfg.Branch _ | Cfg.Switch _ -> empty_events
        | _ -> obs))
    cfg.Cfg.nodes;
  (* arena pass: one allocation per column for the whole function *)
  let total = Array.fold_left (fun a evs -> a + Array.length evs) 0 events_obs in
  let ev_expr = Array.make (max total 1) arena_init in
  let ev_class = Array.make total 0 in
  let ev_callee = Array.make total (-1) in
  let ev_arg = Array.make total (-1) in
  let ev_node = Array.make total 0 in
  let ev_flags = Array.make total 0 in
  let node_off = Array.make n 0 in
  let node_len = Array.make n 0 in
  let k = ref 0 in
  Array.iteri
    (fun i (node : Cfg.node) ->
      let evs = events_obs.(i) in
      node_off.(i) <- !k;
      node_len.(i) <- Array.length evs;
      let hidden =
        match node.Cfg.kind with
        | Cfg.Branch _ | Cfg.Switch _ -> soa_hidden_bit
        | _ -> 0
      in
      Array.iter
        (fun (e : Ast.expr) ->
          let j = !k in
          ev_expr.(j) <- e;
          ev_class.(j) <- Ast.expr_tag e;
          (match e.Ast.edesc with
          | Ast.Call ({ Ast.edesc = Ast.Ident f; _ }, args) ->
            ev_callee.(j) <- Symtab.intern f;
            (match args with
            | { Ast.edesc = Ast.Ident a; _ } :: _ ->
              ev_arg.(j) <- Symtab.intern a
            | _ -> ())
          | _ -> ());
          ev_node.(j) <- i;
          ev_flags.(j) <- hidden;
          incr k)
        evs)
    cfg.Cfg.nodes;
  Mcobs.count "prep.build";
  {
    func;
    cfg;
    events_obs;
    events_noobs;
    soa =
      {
        ev_expr =
          (if total = 0 then [||] else ev_expr);
        ev_class;
        ev_callee;
        ev_arg;
        ev_node;
        ev_flags;
        node_off;
        node_len;
      };
    n_edges = !n_edges;
    back_edges = Cfg.back_edges cfg;
    paths = lazy (Paths.analyze cfg);
  }

let events (p : t) ~observe_branches : Ast.expr array array =
  if observe_branches then p.events_obs else p.events_noobs

let paths (p : t) : Paths.stats = Lazy.force p.paths
let n_nodes (p : t) : int = Array.length p.cfg.Cfg.nodes
let n_edges (p : t) : int = p.n_edges
