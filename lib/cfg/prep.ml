(** Prep — the shared per-function analysis cache.

    Every per-function client of a CFG (the nine checkers, the [Mcd]
    work units, [Paths], the fixer/optimizer) needs the same three
    derived artifacts: the graph itself, the flattened sub-expression
    event list of every node, and the loop structure.  Before this
    module each (checker x function) pairing rebuilt all three, so a
    nine-checker run paid for nine CFG constructions and nine event
    flattenings per function.  [Prep.build] computes them exactly once;
    a batched scheduler (or the fused sequential driver) builds one
    [Prep.t] per function and hands it to every checker.

    Two event views are precomputed because state machines differ in
    [observe_branches]: the observing view exposes branch/switch
    conditions as events, the non-observing view hides them.  Nodes
    whose events are identical in both views share the same physical
    array. *)

type t = {
  func : Ast.func;
  cfg : Cfg.t;
  events_obs : Ast.expr array array;
      (** per node: sub-expressions in evaluation (post-) order,
          branch/switch conditions included *)
  events_noobs : Ast.expr array array;
      (** the same with branch/switch conditions hidden *)
  n_edges : int;
  back_edges : (int * int) list;
  paths : Paths.stats Lazy.t;
}

(* Sub-expressions of [e] in evaluation (post-) order, including [e].
   This is the one flattening the engine replays; it lived in [Engine]
   before the prep cache existed (Engine re-exports it). *)
let subexprs_post (e : Ast.expr) : Ast.expr list =
  let acc = ref [] in
  let rec post e =
    (match e.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Str_lit _ | Ast.Char_lit _
    | Ast.Ident _ | Ast.Sizeof_type _ ->
      ()
    | Ast.Call (f, args) ->
      post f;
      List.iter post args
    | Ast.Unop (_, a)
    | Ast.Cast (_, a)
    | Ast.Field (a, _)
    | Ast.Arrow (a, _)
    | Ast.Sizeof_expr a ->
      post a
    | Ast.Binop (_, a, b)
    | Ast.Assign (a, b)
    | Ast.Op_assign (_, a, b)
    | Ast.Index (a, b)
    | Ast.Comma (a, b) ->
      post a;
      post b
    | Ast.Cond (a, b, c) ->
      post a;
      post b;
      post c);
    acc := e :: !acc
  in
  post e;
  List.rev !acc

(* The expressions a CFG node exposes to a state machine. *)
let node_exprs ~observe_branches (node : Cfg.node) : Ast.expr list =
  match node.Cfg.kind with
  | Cfg.Stmt { Ast.sdesc = Ast.Sexpr e; _ } -> [ e ]
  | Cfg.Stmt { Ast.sdesc = Ast.Sdecl d; _ } -> (
    match d.Ast.v_init with Some e -> [ e ] | None -> [])
  | Cfg.Branch e | Cfg.Switch e -> if observe_branches then [ e ] else []
  | Cfg.Return (Some e) -> [ e ]
  | Cfg.Stmt _ | Cfg.Return None | Cfg.Entry | Cfg.Exit | Cfg.Join -> []

let flatten exprs =
  match exprs with
  | [] -> [||]
  | exprs -> Array.of_list (List.concat_map subexprs_post exprs)

let empty_events : Ast.expr array = [||]

let build (func : Ast.func) : t =
  let cfg = Cfg.build func in
  let n = Array.length cfg.Cfg.nodes in
  let events_obs = Array.make n empty_events in
  let events_noobs = Array.make n empty_events in
  let n_edges = ref 0 in
  Array.iteri
    (fun i (node : Cfg.node) ->
      n_edges := !n_edges + List.length node.Cfg.succs;
      let obs = flatten (node_exprs ~observe_branches:true node) in
      events_obs.(i) <- obs;
      events_noobs.(i) <-
        (match node.Cfg.kind with
        | Cfg.Branch _ | Cfg.Switch _ -> empty_events
        | _ -> obs))
    cfg.Cfg.nodes;
  Mcobs.count "prep.build";
  {
    func;
    cfg;
    events_obs;
    events_noobs;
    n_edges = !n_edges;
    back_edges = Cfg.back_edges cfg;
    paths = lazy (Paths.analyze cfg);
  }

let events (p : t) ~observe_branches : Ast.expr array array =
  if observe_branches then p.events_obs else p.events_noobs

let paths (p : t) : Paths.stats = Lazy.force p.paths
let n_nodes (p : t) : int = Array.length p.cfg.Cfg.nodes
let n_edges (p : t) : int = p.n_edges
