(** Exit-path statistics over a CFG.

    Reproduces the paper's Table 1 metrics: the number of unique paths from
    the beginning of a function to all of its exit points, and the
    average/maximum path length.  Loops are handled the way a path profiler
    must: back edges are excluded, so each "path" traverses every loop body
    at most once (the acyclic-path convention of Ball–Larus profiling).

    Counts are computed by dynamic programming on the acyclic graph, so they
    are exact even when the number of paths is astronomically large;
    saturating arithmetic guards against overflow. *)

type stats = {
  n_paths : int;  (** unique entry-to-exit paths (saturating) *)
  total_length : int;  (** summed length over all paths (saturating) *)
  max_length : int;  (** longest path, counted in source statements *)
}

let saturating_add a b =
  let s = a + b in
  if s < a || s < b then max_int else s

let saturating_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

(* Membership-testable back-edge set: [Cfg.back_edges] returns a list,
   and probing it with [List.exists] per successor made the DP (and the
   enumerator) quadratic in loop count on loop-heavy functions. *)
let back_edge_set (cfg : Cfg.t) : (int * int, unit) Hashtbl.t =
  let backs = Cfg.back_edges cfg in
  let set = Hashtbl.create (max 8 (2 * List.length backs)) in
  List.iter (fun edge -> Hashtbl.replace set edge ()) backs;
  set

(* Path length is measured in distinct source lines touched, which tracks
   the paper's "length of the path (as LOC)".  Each statement-bearing node
   contributes one. *)
let node_weight (n : Cfg.node) =
  match n.Cfg.kind with
  | Cfg.Stmt _ | Cfg.Branch _ | Cfg.Switch _ | Cfg.Return _ -> 1
  | Cfg.Entry | Cfg.Exit | Cfg.Join -> 0

(** Compute path statistics for one CFG. *)
let analyze (cfg : Cfg.t) : stats =
  let n = Cfg.n_nodes cfg in
  let backs = back_edge_set cfg in
  let is_back src dst = Hashtbl.mem backs (src, dst) in
  (* memo.(id) = Some (count, sum, max) of paths from id to exit *)
  let memo : (int * int * int) option array = Array.make n None in
  let rec solve id =
    match memo.(id) with
    | Some r -> r
    | None ->
      let node = Cfg.node cfg id in
      let w = node_weight node in
      let r =
        if id = cfg.Cfg.exit then (1, 0, 0)
        else begin
          let fwd =
            List.filter (fun (_, s) -> not (is_back id s)) node.Cfg.succs
          in
          match fwd with
          | [] ->
            (* dead end other than exit (e.g. infinite loop): count the
               truncated path itself *)
            (1, w, w)
          | _ ->
            List.fold_left
              (fun (c, s, m) (_, succ) ->
                let c', s', m' = solve succ in
                ( saturating_add c c',
                  saturating_add s
                    (saturating_add s' (saturating_mul w c')),
                  max m (w + m') ))
              (0, 0, 0) fwd
        end
      in
      memo.(id) <- Some r;
      r
  in
  let count, sum, max_len = solve cfg.Cfg.entry in
  { n_paths = count; total_length = sum; max_length = max_len }

let average_length s =
  if s.n_paths = 0 then 0.0
  else float_of_int s.total_length /. float_of_int s.n_paths

(** Aggregate statistics over a set of functions (one protocol). *)
type aggregate = {
  functions : int;
  paths : int;
  avg_length : float;  (** averaged over all paths of all functions *)
  max_path_length : int;
}

let aggregate (stats : stats list) : aggregate =
  let functions = List.length stats in
  let paths =
    List.fold_left (fun acc s -> saturating_add acc s.n_paths) 0 stats
  in
  let total =
    List.fold_left (fun acc s -> saturating_add acc s.total_length) 0 stats
  in
  let max_path_length =
    List.fold_left (fun acc s -> max acc s.max_length) 0 stats
  in
  let avg_length =
    if paths = 0 then 0.0 else float_of_int total /. float_of_int paths
  in
  { functions; paths; avg_length; max_path_length }

(** Enumerate concrete paths (lists of node ids) up to [limit]; used by
    tests to cross-check the DP counts on small functions. *)
let enumerate ?(limit = 10_000) (cfg : Cfg.t) : int list list =
  let backs = back_edge_set cfg in
  let is_back src dst = Hashtbl.mem backs (src, dst) in
  let results = ref [] in
  let count = ref 0 in
  let rec go path id =
    if !count >= limit then ()
    else if id = cfg.Cfg.exit then begin
      incr count;
      results := List.rev (id :: path) :: !results
    end
    else
      let fwd =
        List.filter (fun (_, s) -> not (is_back id s)) (Cfg.succs cfg id)
      in
      match fwd with
      | [] ->
        incr count;
        results := List.rev (id :: path) :: !results
      | _ -> List.iter (fun (_, s) -> go (id :: path) s) fwd
  in
  go [] cfg.Cfg.entry;
  List.rev !results
