(** Exit-path statistics over a CFG — the paper's Table 1 metrics.

    "Paths" are unique entry-to-exit paths under the acyclic-path
    convention (back edges excluded, so each path traverses a loop body at
    most once, as in Ball–Larus path profiling).  Counts are computed by
    dynamic programming, exact even when huge; arithmetic saturates. *)

type stats = {
  n_paths : int;  (** unique entry-to-exit paths (saturating) *)
  total_length : int;  (** summed length over all paths (saturating) *)
  max_length : int;  (** longest path, in source statements *)
}

val analyze : Cfg.t -> stats
val average_length : stats -> float

(** aggregate over a set of functions (one protocol) *)
type aggregate = {
  functions : int;
  paths : int;
  avg_length : float;  (** averaged over all paths of all functions *)
  max_path_length : int;
}

val aggregate : stats list -> aggregate

val enumerate : ?limit:int -> Cfg.t -> int list list
(** concrete paths as node-id lists, up to [limit]; used by tests to
    cross-check the DP counts on small functions *)
