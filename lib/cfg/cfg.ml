(** Control-flow graphs for Clite functions.

    Each node holds at most one simple statement or branch condition, so the
    metal engine can replay the exact source events along any path.  The
    builder handles the full Clite statement language: structured control
    flow, [switch] with fall-through, [break]/[continue], labels and
    [goto]. *)



type kind =
  | Entry
  | Exit
  | Stmt of Ast.stmt  (** expression/decl/null/label statements *)
  | Branch of Ast.expr  (** out-edges labelled [True]/[False] *)
  | Switch of Ast.expr  (** out-edges labelled [Case]/[Default_case] *)
  | Return of Ast.expr option
  | Join  (** synthetic no-op anchor (loop heads, case labels) *)

type edge_label = Seq | True | False | Case of Ast.expr | Default_case

type node = {
  id : int;
  kind : kind;
  loc : Loc.t;
  mutable succs : (edge_label * int) list;
  mutable preds : int list;
}

type t = {
  func : Ast.func;
  nodes : node array;
  entry : int;
  exit : int;
}

exception Build_error of string

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable rev_nodes : node list;
  by_id : (int, node) Hashtbl.t;
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable pending_gotos : (string * int) list;  (** label, goto node id *)
}

let fresh b kind loc =
  let n = { id = b.count; kind; loc; succs = []; preds = [] } in
  b.count <- b.count + 1;
  b.rev_nodes <- n :: b.rev_nodes;
  Hashtbl.replace b.by_id n.id n;
  n

let find_node b id = Hashtbl.find b.by_id id

let link b ~from ~label ~target =
  let src = find_node b from in
  src.succs <- src.succs @ [ (label, target) ];
  let dst = find_node b target in
  dst.preds <- dst.preds @ [ from ]

(* A frontier is the set of dangling out-edges waiting for the next node. *)
type frontier = (int * edge_label) list

let connect b (frontier : frontier) (target : int) =
  List.iter (fun (from, label) -> link b ~from ~label ~target) frontier

type loop_ctx = {
  break_acc : frontier ref option;  (** where [break] edges accumulate *)
  continue_target : int option;
}

let no_ctx = { break_acc = None; continue_target = None }

(* Switch construction state: the switch node itself (case edges are added
   as case labels are found) and whether a default label was seen. *)
type switch_ctx = { switch_node : int; mutable saw_default : bool }

let rec build_stmt b (ctx : loop_ctx) (sw : switch_ctx option)
    (frontier : frontier) (s : Ast.stmt) : frontier =
  match s.Ast.sdesc with
  | Ast.Sexpr _ | Ast.Sdecl _ | Ast.Snull | Ast.Slabel _ ->
    let n = fresh b (Stmt s) s.Ast.sloc in
    connect b frontier n.id;
    (match s.Ast.sdesc with
    | Ast.Slabel name ->
      Hashtbl.replace b.labels name n.id;
      (* resolve any forward gotos now *)
      let resolved, pending =
        List.partition (fun (l, _) -> String.equal l name) b.pending_gotos
      in
      b.pending_gotos <- pending;
      List.iter
        (fun (_, goto_id) -> link b ~from:goto_id ~label:Seq ~target:n.id)
        resolved
    | _ -> ());
    [ (n.id, Seq) ]
  | Ast.Sblock body -> build_stmts b ctx sw frontier body
  | Ast.Sif (cond, then_s, else_s) -> (
    let n = fresh b (Branch cond) s.Ast.sloc in
    connect b frontier n.id;
    let after_then = build_stmt b ctx sw [ (n.id, True) ] then_s in
    match else_s with
    | Some e ->
      let after_else = build_stmt b ctx sw [ (n.id, False) ] e in
      after_then @ after_else
    | None -> after_then @ [ (n.id, False) ])
  | Ast.Swhile (cond, body) ->
    let head = fresh b (Branch cond) s.Ast.sloc in
    connect b frontier head.id;
    let break_acc = ref [] in
    let ctx' =
      { break_acc = Some break_acc; continue_target = Some head.id }
    in
    let after_body = build_stmt b ctx' sw [ (head.id, True) ] body in
    connect b after_body head.id;
    ((head.id, False) :: !break_acc)
  | Ast.Sdo (body, cond) ->
    let anchor = fresh b Join s.Ast.sloc in
    connect b frontier anchor.id;
    let tail = fresh b (Branch cond) s.Ast.sloc in
    let break_acc = ref [] in
    let ctx' =
      { break_acc = Some break_acc; continue_target = Some tail.id }
    in
    let after_body = build_stmt b ctx' sw [ (anchor.id, Seq) ] body in
    connect b after_body tail.id;
    link b ~from:tail.id ~label:True ~target:anchor.id;
    ((tail.id, False) :: !break_acc)
  | Ast.Sfor (init, cond, step, body) ->
    let frontier =
      match init with
      | Some (Ast.Fi_expr e) ->
        let n =
          fresh b (Stmt (Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sexpr e))) s.Ast.sloc
        in
        connect b frontier n.id;
        [ (n.id, Seq) ]
      | Some (Ast.Fi_decl d) ->
        let n =
          fresh b (Stmt (Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sdecl d))) s.Ast.sloc
        in
        connect b frontier n.id;
        [ (n.id, Seq) ]
      | None -> frontier
    in
    let head, loop_exit_frontier =
      match cond with
      | Some c ->
        let h = fresh b (Branch c) s.Ast.sloc in
        (h, [ (h.id, False) ])
      | None ->
        let h = fresh b Join s.Ast.sloc in
        (h, [])
    in
    connect b frontier head.id;
    let body_entry_label =
      match head.kind with Branch _ -> True | _ -> Seq
    in
    (* continue in a for loop goes to the step expression, or the head *)
    let step_node =
      match step with
      | Some e ->
        Some
          (fresh b
             (Stmt (Ast.mk_stmt ~loc:s.Ast.sloc (Ast.Sexpr e)))
             s.Ast.sloc)
      | None -> None
    in
    let continue_target =
      match step_node with Some n -> n.id | None -> head.id
    in
    let break_acc = ref [] in
    let ctx' =
      { break_acc = Some break_acc; continue_target = Some continue_target }
    in
    let after_body =
      build_stmt b ctx' sw [ (head.id, body_entry_label) ] body
    in
    (match step_node with
    | Some n ->
      connect b after_body n.id;
      link b ~from:n.id ~label:Seq ~target:head.id
    | None -> connect b after_body head.id);
    loop_exit_frontier @ !break_acc
  | Ast.Sswitch (scrutinee, body) ->
    let n = fresh b (Switch scrutinee) s.Ast.sloc in
    connect b frontier n.id;
    let break_acc = ref [] in
    let ctx' =
      { break_acc = Some break_acc; continue_target = ctx.continue_target }
    in
    let sw_ctx = { switch_node = n.id; saw_default = false } in
    (* the switch body starts unreachable except through case labels *)
    let after_body = build_stmt b ctx' (Some sw_ctx) [] body in
    let fallthrough =
      if sw_ctx.saw_default then [] else [ (n.id, Default_case) ]
    in
    after_body @ !break_acc @ fallthrough
  | Ast.Scase e ->
    let n = fresh b Join s.Ast.sloc in
    connect b frontier n.id;
    (match sw with
    | Some sw_ctx ->
      link b ~from:sw_ctx.switch_node ~label:(Case e) ~target:n.id
    | None -> raise (Build_error "case label outside switch"));
    [ (n.id, Seq) ]
  | Ast.Sdefault ->
    let n = fresh b Join s.Ast.sloc in
    connect b frontier n.id;
    (match sw with
    | Some sw_ctx ->
      sw_ctx.saw_default <- true;
      link b ~from:sw_ctx.switch_node ~label:Default_case ~target:n.id
    | None -> raise (Build_error "default label outside switch"));
    [ (n.id, Seq) ]
  | Ast.Sreturn e ->
    let n = fresh b (Return e) s.Ast.sloc in
    connect b frontier n.id;
    [] (* edges to exit are added in [build] *)
  | Ast.Sbreak -> (
    match ctx.break_acc with
    | Some acc ->
      acc := !acc @ frontier;
      []
    | None -> raise (Build_error "break outside loop or switch"))
  | Ast.Scontinue -> (
    match ctx.continue_target with
    | Some target ->
      connect b frontier target;
      []
    | None -> raise (Build_error "continue outside loop"))
  | Ast.Sgoto label -> (
    let n = fresh b (Stmt s) s.Ast.sloc in
    connect b frontier n.id;
    match Hashtbl.find_opt b.labels label with
    | Some target ->
      link b ~from:n.id ~label:Seq ~target;
      []
    | None ->
      b.pending_gotos <- (label, n.id) :: b.pending_gotos;
      [])

and build_stmts b ctx sw frontier stmts =
  List.fold_left (fun fr s -> build_stmt b ctx sw fr s) frontier stmts

(** Build the CFG for a function. *)
let build (f : Ast.func) : t =
  let b =
    {
      rev_nodes = [];
      by_id = Hashtbl.create 64;
      count = 0;
      labels = Hashtbl.create 8;
      pending_gotos = [];
    }
  in
  let entry = fresh b Entry f.Ast.f_loc in
  let frontier = build_stmts b no_ctx None [ (entry.id, Seq) ] f.Ast.f_body in
  let exit = fresh b Exit f.Ast.f_end_loc in
  connect b frontier exit.id;
  (* every return node flows to exit *)
  List.iter
    (fun n -> match n.kind with Return _ -> link b ~from:n.id ~label:Seq ~target:exit.id | _ -> ())
    b.rev_nodes;
  (* unresolved gotos (target label missing) dead-end at exit *)
  List.iter
    (fun (_, goto_id) -> link b ~from:goto_id ~label:Seq ~target:exit.id)
    b.pending_gotos;
  let nodes = Array.make b.count entry in
  List.iter (fun n -> nodes.(n.id) <- n) b.rev_nodes;
  { func = f; nodes; entry = entry.id; exit = exit.id }

(* ------------------------------------------------------------------ *)
(* Accessors and utilities                                             *)
(* ------------------------------------------------------------------ *)

let node t id = t.nodes.(id)
let n_nodes t = Array.length t.nodes
let succs t id = (node t id).succs
let preds t id = (node t id).preds

(** Nodes reachable from entry, in preorder. *)
let reachable t : int list =
  let seen = Array.make (n_nodes t) false in
  let order = ref [] in
  let rec go id =
    if not seen.(id) then begin
      seen.(id) <- true;
      order := id :: !order;
      List.iter (fun (_, s) -> go s) (succs t id)
    end
  in
  go t.entry;
  List.rev !order

(** Back edges (from, to) discovered by DFS from entry — each closes a
    source-level loop. *)
let back_edges t : (int * int) list =
  let state = Array.make (n_nodes t) `White in
  let backs = ref [] in
  let rec go id =
    state.(id) <- `Grey;
    List.iter
      (fun (_, s) ->
        match state.(s) with
        | `White -> go s
        | `Grey -> backs := (id, s) :: !backs
        | `Black -> ())
      (succs t id);
    state.(id) <- `Black
  in
  go t.entry;
  !backs

(** The statements replayed when visiting a node, for diagnostics. *)
let describe_kind = function
  | Entry -> "<entry>"
  | Exit -> "<exit>"
  | Join -> "<join>"
  | Stmt s -> Pp.stmt_to_string s
  | Branch e -> Printf.sprintf "branch (%s)" (Pp.expr_to_string e)
  | Switch e -> Printf.sprintf "switch (%s)" (Pp.expr_to_string e)
  | Return (Some e) -> Printf.sprintf "return %s" (Pp.expr_to_string e)
  | Return None -> "return"
