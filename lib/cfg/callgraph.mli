(** Whole-program call graph over a set of translation units.

    The linking half of the paper's inter-procedural framework.  Calls
    through function pointers are not resolved (the paper's lanes checker
    is conservative and sound only "for straight-line code without
    function pointers"). *)

type call_site = { cs_callee : string; cs_loc : Loc.t }

type t

val build : Ast.tunit list -> t
val find_func : t -> string -> Ast.func option

val callees : t -> string -> call_site list
(** call sites inside the named function, in syntactic order *)

val callers : t -> string -> string list

val functions : t -> Ast.func list
(** all defined functions, sorted by name *)

val reachable_from : t -> string list -> string list
(** functions transitively reachable from the given roots *)

val recursive_functions : t -> string list
(** names that can reach themselves through calls *)

val call_sites_of_func : Ast.func -> call_site list
