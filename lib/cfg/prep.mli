(** Prep — the shared per-function analysis cache.

    [build f] computes, exactly once per function, everything a
    per-function CFG client needs: the graph, each node's flattened
    sub-expression event array (in both the branch-observing and
    non-observing views), and the loop/path metadata.  The nine
    checkers, the [Mcd] function-batched work units, and the fused
    sequential driver all share one [t] per function instead of each
    rebuilding the CFG and re-deriving the event lists.

    Every [build] bumps the [prep.build] Mcobs counter, which is how the
    test suite pins "built exactly once per function per run" down. *)

type t = {
  func : Ast.func;
  cfg : Cfg.t;
  events_obs : Ast.expr array array;
      (** per node: sub-expressions in evaluation (post-) order,
          branch/switch conditions included *)
  events_noobs : Ast.expr array array;
      (** the same view with branch/switch conditions hidden — nodes
          identical in both views share the same physical array *)
  n_edges : int;
  back_edges : (int * int) list;  (** DFS back edges, one per loop *)
  paths : Paths.stats Lazy.t;  (** forced on first {!paths} call *)
}

val build : Ast.func -> t
(** @raise Cfg.Build_error on misplaced [break]/[continue]/[case] *)

val subexprs_post : Ast.expr -> Ast.expr list
(** sub-expressions in evaluation (post-) order, including the root —
    the event order state machines see *)

val events : t -> observe_branches:bool -> Ast.expr array array
(** the per-node event arrays in the requested view *)

val paths : t -> Paths.stats
(** exit-path statistics, computed once and cached *)

val n_nodes : t -> int
val n_edges : t -> int
