(** Prep — the shared per-function analysis cache.

    [build f] computes, exactly once per function, everything a
    per-function CFG client needs: the graph, each node's flattened
    sub-expression event array (in both the branch-observing and
    non-observing views), and the loop/path metadata.  The nine
    checkers, the [Mcd] function-batched work units, and the fused
    sequential driver all share one [t] per function instead of each
    rebuilding the CFG and re-deriving the event lists.

    Every [build] bumps the [prep.build] Mcobs counter, which is how the
    test suite pins "built exactly once per function per run" down. *)

(** Structure-of-arrays view of the observing event stream: all events
    of all nodes concatenated in node order into parallel int arrays,
    allocated once per function.  A dispatch loop reads the dense
    screening keys sequentially and touches [ev_expr] only for the rules
    that survive screening. *)
type soa = {
  ev_expr : Ast.expr array;  (** the event expression *)
  ev_class : int array;  (** root tag, [Ast.expr_tag] *)
  ev_callee : int array;
      (** callee symbol id ([Symtab]) for a direct call, [-1] otherwise *)
  ev_arg : int array;
      (** symbol id of a first plain-identifier argument, [-1] otherwise *)
  ev_node : int array;  (** owning CFG node id *)
  ev_flags : int array;
      (** bit 0 ({!soa_hidden_bit}): hidden from non-observing machines *)
  node_off : int array;  (** per node: first event index *)
  node_len : int array;  (** per node: event count *)
}

type t = {
  func : Ast.func;
  cfg : Cfg.t;
  events_obs : Ast.expr array array;
      (** per node: sub-expressions in evaluation (post-) order,
          branch/switch conditions included *)
  events_noobs : Ast.expr array array;
      (** the same view with branch/switch conditions hidden — nodes
          identical in both views share the same physical array *)
  soa : soa;  (** flat SoA view of [events_obs] *)
  n_edges : int;
  back_edges : (int * int) list;  (** DFS back edges, one per loop *)
  paths : Paths.stats Lazy.t;  (** forced on first {!paths} call *)
}

val soa_hidden_bit : int
(** [ev_flags] bit marking branch/switch events, which non-observing
    machines must skip *)

val build : Ast.func -> t
(** @raise Cfg.Build_error on misplaced [break]/[continue]/[case] *)

val subexprs_post : Ast.expr -> Ast.expr list
(** sub-expressions in evaluation (post-) order, including the root —
    the event order state machines see *)

val events : t -> observe_branches:bool -> Ast.expr array array
(** the per-node event arrays in the requested view *)

val paths : t -> Paths.stats
(** exit-path statistics, computed once and cached *)

val n_nodes : t -> int
val n_edges : t -> int
