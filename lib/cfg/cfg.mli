(** Control-flow graphs for Clite functions.

    Each node holds at most one simple statement or branch condition, so
    the metal engine can replay the exact source events along any path.
    The builder handles the full Clite statement language: structured
    control flow, [switch] with fall-through, [break]/[continue], labels
    and [goto]. *)

type kind =
  | Entry
  | Exit
  | Stmt of Ast.stmt  (** expression/decl/null/label statements *)
  | Branch of Ast.expr  (** out-edges labelled [True]/[False] *)
  | Switch of Ast.expr  (** out-edges labelled [Case]/[Default_case] *)
  | Return of Ast.expr option
  | Join  (** synthetic no-op anchor (loop heads, case labels) *)

type edge_label = Seq | True | False | Case of Ast.expr | Default_case

type node = {
  id : int;
  kind : kind;
  loc : Loc.t;
  mutable succs : (edge_label * int) list;
  mutable preds : int list;
}

type t = {
  func : Ast.func;
  nodes : node array;
  entry : int;
  exit : int;
}

exception Build_error of string

val build : Ast.func -> t
(** @raise Build_error on misplaced [break]/[continue]/[case] *)

val node : t -> int -> node
val n_nodes : t -> int
val succs : t -> int -> (edge_label * int) list
val preds : t -> int -> int list

val reachable : t -> int list
(** nodes reachable from entry, in preorder *)

val back_edges : t -> (int * int) list
(** DFS back edges (from, to) — each closes a source-level loop *)

val describe_kind : kind -> string
