(** Protocol-size metrics: the paper's Table 1.

    For a protocol (a set of translation units plus their source text), we
    report lines of code, the number of unique exit paths across all
    functions, and the average/maximum path length. *)



type protocol_metrics = {
  name : string;
  loc : int;
  n_paths : int;
  avg_path_length : int;  (** rounded, as in the paper *)
  max_path_length : int;
}

(** Measure one protocol.  [sources] are the raw source strings (for LOC);
    [tus] the parsed units (for path statistics). *)
let measure ~name ~(sources : string list) ~(tus : Ast.tunit list) :
    protocol_metrics =
  let loc =
    List.fold_left (fun acc src -> acc + Frontend.loc_count src) 0 sources
  in
  let stats =
    List.concat_map
      (fun tu ->
        List.map (fun f -> Paths.analyze (Cfg.build f)) (Ast.functions tu))
      tus
  in
  let agg = Paths.aggregate stats in
  {
    name;
    loc;
    n_paths = agg.Paths.paths;
    avg_path_length = int_of_float (Float.round agg.Paths.avg_length);
    max_path_length = agg.Paths.max_path_length;
  }
