(** Whole-program call graph over a set of translation units.

    This is the linking half of the paper's inter-procedural framework: the
    local pass (the metal engine) annotates functions, then a global pass
    links per-function flow graphs by call edges and traverses them.  Calls
    through function pointers are not resolved (the paper's lanes checker is
    conservative and sound only "for straight-line code without function
    pointers"). *)



type call_site = { cs_callee : string; cs_loc : Loc.t }

type t = {
  funcs : (string, Ast.func) Hashtbl.t;
  calls : (string, call_site list) Hashtbl.t;  (** caller -> sites *)
  callers : (string, string list) Hashtbl.t;  (** callee -> callers *)
}

(* Call sites of [f], in syntactic order. *)
let call_sites_of_func (f : Ast.func) : call_site list =
  let sites = ref [] in
  let visit_expr e =
    Ast.iter_expr
      (fun e ->
        match e.Ast.edesc with
        | Ast.Call ({ edesc = Ast.Ident name; _ }, _) ->
          sites := { cs_callee = name; cs_loc = e.Ast.eloc } :: !sites
        | _ -> ())
      e
  in
  List.iter (fun s -> Ast.iter_stmt_exprs visit_expr s) f.Ast.f_body;
  List.rev !sites

let build (tus : Ast.tunit list) : t =
  let t =
    {
      funcs = Hashtbl.create 128;
      calls = Hashtbl.create 128;
      callers = Hashtbl.create 128;
    }
  in
  List.iter
    (fun tu ->
      List.iter
        (function
          | Ast.Gfunc f ->
            Hashtbl.replace t.funcs f.Ast.f_name f;
            let sites = call_sites_of_func f in
            Hashtbl.replace t.calls f.Ast.f_name sites;
            List.iter
              (fun site ->
                let existing =
                  Option.value ~default:[]
                    (Hashtbl.find_opt t.callers site.cs_callee)
                in
                if not (List.mem f.Ast.f_name existing) then
                  Hashtbl.replace t.callers site.cs_callee
                    (f.Ast.f_name :: existing))
              sites
          | _ -> ())
        tu.Ast.tu_globals)
    tus;
  t

let find_func t name = Hashtbl.find_opt t.funcs name

let callees t name : call_site list =
  Option.value ~default:[] (Hashtbl.find_opt t.calls name)

let callers t name : string list =
  Option.value ~default:[] (Hashtbl.find_opt t.callers name)

let functions t : Ast.func list =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.funcs []
  |> List.sort (fun a b -> String.compare a.Ast.f_name b.Ast.f_name)

(** All functions transitively reachable from [roots] (including roots that
    exist in the program). *)
let reachable_from t (roots : string list) : string list =
  let seen = Hashtbl.create 64 in
  let rec go name =
    if (not (Hashtbl.mem seen name)) && Hashtbl.mem t.funcs name then begin
      Hashtbl.replace seen name ();
      List.iter (fun site -> go site.cs_callee) (callees t name)
    end
  in
  List.iter go roots;
  Hashtbl.fold (fun name () acc -> name :: acc) seen []
  |> List.sort String.compare

(** Strongly-recursive functions: names that can reach themselves. *)
let recursive_functions t : string list =
  let names = List.map (fun f -> f.Ast.f_name) (functions t) in
  List.filter
    (fun name ->
      let seen = Hashtbl.create 16 in
      let found = ref false in
      let rec go n =
        if not !found then
          List.iter
            (fun site ->
              if String.equal site.cs_callee name then found := true
              else if
                (not (Hashtbl.mem seen site.cs_callee))
                && Hashtbl.mem t.funcs site.cs_callee
              then begin
                Hashtbl.replace seen site.cs_callee ();
                go site.cs_callee
              end)
            (callees t n)
      in
      go name;
      !found)
    names
