(** Abstract syntax for Clite, the C subset FLASH-style protocol code is
    written in.

    The representation stays close to the source: FLASH "macros" such as
    [WAIT_FOR_DB_FULL(addr)] appear as ordinary calls, and assignments
    keep their left-hand side as a full expression so that patterns like
    [HANDLER_GLOBALS(header.nh.len) = LEN_NODATA] are directly
    matchable. *)

type unop =
  | Neg
  | Not
  | Bnot
  | Preinc
  | Predec
  | Postinc
  | Postdec
  | Deref
  | Addrof

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Band
  | Bxor
  | Bor
  | Land
  | Lor

type expr = {
  edesc : edesc;
  eloc : Loc.t;
  mutable ety : Ctype.t option;  (** filled in by {!Typecheck} *)
}

and edesc =
  | Int_lit of int64 * string  (** value and original spelling *)
  | Float_lit of float * string
  | Str_lit of string
  | Char_lit of char
  | Ident of string
  | Call of expr * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Op_assign of binop * expr * expr  (** [+=], [-=], ... *)
  | Cond of expr * expr * expr
  | Cast of Ctype.t * expr
  | Field of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Index of expr * expr
  | Comma of expr * expr
  | Sizeof_expr of expr
  | Sizeof_type of Ctype.t

type var_decl = {
  v_name : string;
  v_type : Ctype.t;
  v_init : expr option;
  v_loc : Loc.t;
  v_static : bool;
}

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sdecl of var_decl
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of forinit option * expr option * expr option * stmt
  | Sswitch of expr * stmt
  | Scase of expr
  | Sdefault
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string
  | Snull

and forinit = Fi_expr of expr | Fi_decl of var_decl

type func = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_body : stmt list;
  f_loc : Loc.t;
  f_static : bool;
  f_end_loc : Loc.t;  (** location of the closing brace *)
}

type global =
  | Gfunc of func
  | Gvar of var_decl
  | Gtypedef of string * Ctype.t * Loc.t
  | Gstruct of string * (string * Ctype.t) list * Loc.t
  | Gunion of string * (string * Ctype.t) list * Loc.t
  | Genum of string * (string * int option) list * Loc.t
  | Gfunc_decl of string * Ctype.t * Ctype.t list * Loc.t
      (** prototype: name, return type, parameter types *)

type tunit = { tu_file : string; tu_globals : global list }

(** {2 Constructors} *)

val mk_expr : ?loc:Loc.t -> edesc -> expr
val mk_stmt : ?loc:Loc.t -> sdesc -> stmt
val int_lit : ?loc:Loc.t -> int -> expr
val ident : ?loc:Loc.t -> string -> expr
val call : ?loc:Loc.t -> string -> expr list -> expr

(** {2 Traversal} *)

val iter_expr : (expr -> unit) -> expr -> unit
(** [f] applied to the expression and every sub-expression, outermost
    first *)

val iter_stmt : (stmt -> unit) -> stmt -> unit
(** [f] applied to the statement and every sub-statement, outermost first;
    expressions are not visited *)

val iter_stmt_exprs : (expr -> unit) -> stmt -> unit
(** [f] applied to every top-level expression occurring in the statement
    or its sub-statements (conditions, initialisers, expression
    statements) *)

(** {2 Queries} *)

val equal_expr : expr -> expr -> bool
(** structural, ignoring locations and inferred types — the pattern
    matcher's wildcard-consistency notion *)

val equal_stmt : stmt -> stmt -> bool
(** structural, ignoring locations and inferred types *)

val equal_func : func -> func -> bool
val equal_global : global -> global -> bool

val equal_tunit : tunit -> tunit -> bool
(** structural equality of whole units, ignoring file names, locations
    and inferred types — what a printer/parser round trip must
    preserve *)

val callee_name : expr -> string option
(** the called function's name when the callee is a plain identifier
    (FLASH macros always are) *)

val n_expr_tags : int
(** number of distinct {!expr_tag} values *)

val tag_call : int
(** the tag {!expr_tag} assigns to [Call] expressions *)

val expr_tag : expr -> int
(** dense tag of the root constructor, in [0, n_expr_tags) — the
    root-dispatch key shared by the pattern index and the
    structure-of-arrays event buffers *)

val functions : tunit -> func list
val find_function : tunit -> string -> func option
