(** C types for the Clite subset.

    The type language covers what FLASH-style protocol code needs: the
    integer and floating families, pointers, fixed-size arrays, named
    struct/union/enum types, and function types.  Typedef names are kept as
    [Named] references until {!Typecheck} resolves them against the
    translation unit's typedef table. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Uchar
  | Ushort
  | Uint
  | Ulong
  | Float
  | Double
  | Ptr of t
  | Array of t * int option  (** element type, optional static length *)
  | Struct of string
  | Union of string
  | Enum of string
  | Func of t * t list  (** return type, parameter types *)
  | Named of string  (** unresolved typedef reference *)

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Char -> Format.pp_print_string ppf "char"
  | Short -> Format.pp_print_string ppf "short"
  | Int -> Format.pp_print_string ppf "int"
  | Long -> Format.pp_print_string ppf "long"
  | Uchar -> Format.pp_print_string ppf "unsigned char"
  | Ushort -> Format.pp_print_string ppf "unsigned short"
  | Uint -> Format.pp_print_string ppf "unsigned"
  | Ulong -> Format.pp_print_string ppf "unsigned long"
  | Float -> Format.pp_print_string ppf "float"
  | Double -> Format.pp_print_string ppf "double"
  | Ptr t -> Format.fprintf ppf "%a *" pp t
  | Array (t, None) -> Format.fprintf ppf "%a []" pp t
  | Array (t, Some n) -> Format.fprintf ppf "%a [%d]" pp t n
  | Struct s -> Format.fprintf ppf "struct %s" s
  | Union s -> Format.fprintf ppf "union %s" s
  | Enum s -> Format.fprintf ppf "enum %s" s
  | Func (r, args) ->
    Format.fprintf ppf "%a (*)(%a)" pp r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      args
  | Named s -> Format.pp_print_string ppf s

let to_string t = Format.asprintf "%a" pp t

let rec equal a b =
  match (a, b) with
  | Void, Void
  | Char, Char
  | Short, Short
  | Int, Int
  | Long, Long
  | Uchar, Uchar
  | Ushort, Ushort
  | Uint, Uint
  | Ulong, Ulong
  | Float, Float
  | Double, Double ->
    true
  | Ptr a, Ptr b -> equal a b
  | Array (a, la), Array (b, lb) -> equal a b && la = lb
  | Struct a, Struct b | Union a, Union b | Enum a, Enum b | Named a, Named b
    ->
    String.equal a b
  | Func (ra, aa), Func (rb, ab) ->
    equal ra rb
    && List.length aa = List.length ab
    && List.for_all2 equal aa ab
  | _ -> false

let is_floating = function Float | Double -> true | _ -> false

let is_integer = function
  | Char | Short | Int | Long | Uchar | Ushort | Uint | Ulong | Enum _ -> true
  | _ -> false

let is_unsigned = function Uchar | Ushort | Uint | Ulong -> true | _ -> false

let is_pointer = function Ptr _ | Array _ -> true | _ -> false

let is_scalar t = is_integer t || is_pointer t

(* Widths follow a conventional ILP32 model (the MIPS target FLASH used). *)
let rec sizeof = function
  | Void -> 0
  | Char | Uchar -> 1
  | Short | Ushort -> 2
  | Int | Uint | Long | Ulong | Float | Enum _ -> 4
  | Double -> 8
  | Ptr _ | Func _ -> 4
  | Array (t, Some n) -> n * sizeof t
  | Array (t, None) -> sizeof t
  | Struct _ | Union _ | Named _ -> 4 (* resolved properly by Typecheck *)

(* The usual arithmetic conversions, simplified: float wins, then width,
   then unsignedness. *)
let join a b =
  if equal a b then a
  else
    match (a, b) with
    | Double, _ | _, Double -> Double
    | Float, _ | _, Float -> Float
    | (Ptr _ as p), _ | _, (Ptr _ as p) -> p
    | _ ->
      let rank = function
        | Char | Uchar -> 1
        | Short | Ushort -> 2
        | Int | Uint | Enum _ -> 3
        | Long | Ulong -> 4
        | _ -> 3
      in
      let ra = rank a and rb = rank b in
      let unsigned = is_unsigned a || is_unsigned b in
      let r = max ra rb in
      if r <= 3 then if unsigned then Uint else Int
      else if unsigned then Ulong
      else Long
