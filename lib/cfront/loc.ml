(** Source locations for Clite programs.

    Every AST node carries a [Loc.t] so that checkers can report errors that
    point back into the protocol source, exactly as xg++ did. *)

type t = {
  file : string;  (** source file name, or ["<string>"] for inline input *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

let none = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_none t = t.line = 0

let pp ppf t =
  if is_none t then Format.fprintf ppf "<no location>"
  else Format.fprintf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Format.asprintf "%a" pp t

(* Order by file, then line, then column: used to sort diagnostics into a
   stable, source-order presentation. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let equal a b = compare a b = 0
