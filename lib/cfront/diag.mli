(** Diagnostics emitted by checkers. *)

type severity = Error | Warning | Note

type step = {
  w_loc : Loc.t;  (** where the transition fired *)
  w_event : string;  (** the matched event (source expression, compact) *)
  w_from : string;  (** checker state before the event *)
  w_to : string;  (** checker state after ([stop] for abandoned paths) *)
}
(** one step of a diagnostic explanation: the state machine saw
    [w_event] at [w_loc] and moved from [w_from] to [w_to] *)

type t = {
  checker : string;  (** checker name, e.g. ["wait_for_db"] *)
  severity : severity;
  loc : Loc.t;  (** primary source location *)
  message : string;
  func : string;  (** enclosing function *)
  trace : Loc.t list;
      (** the execution path that reached the error, entry first — the
          paper's "back trace" *)
  witness : step list;
      (** the diagnostic explanation, in firing order; never empty (the
          engine attaches the real transition sequence, and [make]
          synthesises a one-step witness at the report site otherwise) *)
}

val step :
  loc:Loc.t -> event:string -> from_state:string -> to_state:string -> step

val make :
  ?severity:severity ->
  ?trace:Loc.t list ->
  ?witness:step list ->
  checker:string ->
  loc:Loc.t ->
  func:string ->
  string ->
  t

val with_witness : step list -> t -> t
(** replace the witness (no-op on an empty list) — how the engine
    attaches the real transition sequence to diagnostics the checker
    actions built with a synthetic one *)

val severity_string : severity -> string
val pp : Format.formatter -> t -> unit
val pp_with_trace : Format.formatter -> t -> unit

val pp_explain : Format.formatter -> t -> unit
(** the [--explain] rendering: the diagnostic plus its witness path, one
    (location, event, transition) line per step *)

val to_string : t -> string

val key : t -> string
(** location-free identity [checker|severity|func|message] — the
    comparison key for differential oracles whose two pipelines see the
    same program at different source positions (e.g. across a printer
    round trip) *)

val compare : t -> t -> int
(** source order, then severity, then message — a stable presentation
    order *)

val normalize : t list -> t list
(** sort and drop duplicates: the same violation is often reachable along
    many paths, but is reported once per site *)

val errors : t list -> t list
val warnings : t list -> t list
