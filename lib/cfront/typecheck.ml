(** Lightweight type annotation for Clite.

    Resolves typedefs, records struct/union layouts and enum constants, and
    fills in the [ety] field of every expression.  This is not a conformance
    checker: unknown identifiers get type [Int] (protocol code is full of
    macro-constants declared elsewhere), and implicit conversions are
    accepted silently.  What matters for the checkers is that *float-typed*
    expressions and *unsigned/scalar* classifications are computed reliably,
    which only needs declarations actually present in the unit. *)

type env = {
  typedefs : (string, Ctype.t) Hashtbl.t;
  structs : (string, (string * Ctype.t) list) Hashtbl.t;
  unions : (string, (string * Ctype.t) list) Hashtbl.t;
  enum_consts : (string, unit) Hashtbl.t;
  globals : (string, Ctype.t) Hashtbl.t;
  funcs : (string, Ctype.t) Hashtbl.t;  (** name -> return type *)
  mutable locals : (string * Ctype.t) list list;  (** scope stack *)
}

let create_env () =
  {
    typedefs = Hashtbl.create 16;
    structs = Hashtbl.create 16;
    unions = Hashtbl.create 16;
    enum_consts = Hashtbl.create 16;
    globals = Hashtbl.create 64;
    funcs = Hashtbl.create 64;
    locals = [];
  }

let rec resolve env (ty : Ctype.t) : Ctype.t =
  match ty with
  | Ctype.Named name -> (
    match Hashtbl.find_opt env.typedefs name with
    | Some t -> resolve env t
    | None -> Ctype.Int)
  | Ctype.Ptr t -> Ctype.Ptr (resolve env t)
  | Ctype.Array (t, n) -> Ctype.Array (resolve env t, n)
  | t -> t

let push_scope env = env.locals <- [] :: env.locals

let pop_scope env =
  match env.locals with [] -> () | _ :: rest -> env.locals <- rest

let bind_local env name ty =
  match env.locals with
  | scope :: rest -> env.locals <- ((name, ty) :: scope) :: rest
  | [] -> env.locals <- [ [ (name, ty) ] ]

let lookup_var env name : Ctype.t option =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some t -> Some t
      | None -> in_scopes rest)
  in
  match in_scopes env.locals with
  | Some t -> Some t
  | None -> Hashtbl.find_opt env.globals name

let field_type env ty field : Ctype.t =
  match resolve env ty with
  | Ctype.Struct tag | Ctype.Ptr (Ctype.Struct tag) -> (
    match Hashtbl.find_opt env.structs tag with
    | Some fields -> (
      match List.assoc_opt field fields with
      | Some t -> resolve env t
      | None -> Ctype.Int)
    | None -> Ctype.Int)
  | Ctype.Union tag | Ctype.Ptr (Ctype.Union tag) -> (
    match Hashtbl.find_opt env.unions tag with
    | Some fields -> (
      match List.assoc_opt field fields with
      | Some t -> resolve env t
      | None -> Ctype.Int)
    | None -> Ctype.Int)
  | _ -> Ctype.Int

(* Annotate [e] and all sub-expressions; returns the type of [e]. *)
let rec infer env (e : Ast.expr) : Ctype.t =
  let ty =
    match e.Ast.edesc with
    | Ast.Int_lit (_, s) ->
      if String.contains s 'u' || String.contains s 'U' then Ctype.Uint
      else Ctype.Int
    | Ast.Float_lit (_, s) ->
      if
        String.length s > 0
        && (s.[String.length s - 1] = 'f' || s.[String.length s - 1] = 'F')
      then Ctype.Float
      else Ctype.Double
    | Ast.Str_lit _ -> Ctype.Ptr Ctype.Char
    | Ast.Char_lit _ -> Ctype.Char
    | Ast.Ident name -> (
      match lookup_var env name with
      | Some t -> resolve env t
      | None ->
        if Hashtbl.mem env.enum_consts name then Ctype.Int else Ctype.Int)
    | Ast.Call (callee, args) -> (
      (match callee.Ast.edesc with
      | Ast.Ident _ -> callee.Ast.ety <- Some (Ctype.Func (Ctype.Int, []))
      | _ -> ignore (infer env callee));
      List.iter (fun a -> ignore (infer env a)) args;
      match callee.Ast.edesc with
      | Ast.Ident name -> (
        match Hashtbl.find_opt env.funcs name with
        | Some ret -> resolve env ret
        | None -> Ctype.Int)
      | _ -> Ctype.Int)
    | Ast.Unop (op, a) -> (
      let ta = infer env a in
      match op with
      | Ast.Not -> Ctype.Int
      | Ast.Deref -> (
        match ta with
        | Ctype.Ptr t | Ctype.Array (t, _) -> t
        | _ -> Ctype.Int)
      | Ast.Addrof -> Ctype.Ptr ta
      | Ast.Neg | Ast.Bnot | Ast.Preinc | Ast.Predec | Ast.Postinc
      | Ast.Postdec ->
        ta)
    | Ast.Binop (op, a, b) -> (
      let ta = infer env a in
      let tb = infer env b in
      match op with
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land
      | Ast.Lor ->
        Ctype.Int
      | Ast.Add | Ast.Sub
        when Ctype.is_pointer ta && not (Ctype.is_pointer tb) ->
        ta
      | Ast.Sub when Ctype.is_pointer ta && Ctype.is_pointer tb -> Ctype.Int
      | _ -> Ctype.join ta tb)
    | Ast.Assign (l, r) ->
      let tl = infer env l in
      ignore (infer env r);
      tl
    | Ast.Op_assign (_, l, r) ->
      let tl = infer env l in
      ignore (infer env r);
      tl
    | Ast.Cond (c, t, f) ->
      ignore (infer env c);
      let tt = infer env t in
      let tf = infer env f in
      Ctype.join tt tf
    | Ast.Cast (ty, a) ->
      ignore (infer env a);
      resolve env ty
    | Ast.Field (a, f) ->
      let ta = infer env a in
      field_type env ta f
    | Ast.Arrow (a, f) ->
      let ta = infer env a in
      field_type env ta f
    | Ast.Index (a, i) -> (
      let ta = infer env a in
      ignore (infer env i);
      match ta with
      | Ctype.Ptr t | Ctype.Array (t, _) -> t
      | _ -> Ctype.Int)
    | Ast.Comma (a, b) ->
      ignore (infer env a);
      infer env b
    | Ast.Sizeof_expr a ->
      ignore (infer env a);
      Ctype.Uint
    | Ast.Sizeof_type _ -> Ctype.Uint
  in
  e.Ast.ety <- Some ty;
  ty

let rec check_stmt env (s : Ast.stmt) : unit =
  match s.Ast.sdesc with
  | Ast.Sexpr e -> ignore (infer env e)
  | Ast.Sdecl d ->
    Option.iter (fun e -> ignore (infer env e)) d.Ast.v_init;
    bind_local env d.Ast.v_name (resolve env d.Ast.v_type)
  | Ast.Sblock body ->
    push_scope env;
    List.iter (check_stmt env) body;
    pop_scope env
  | Ast.Sif (c, t, f) ->
    ignore (infer env c);
    check_stmt env t;
    Option.iter (check_stmt env) f
  | Ast.Swhile (c, body) ->
    ignore (infer env c);
    check_stmt env body
  | Ast.Sdo (body, c) ->
    check_stmt env body;
    ignore (infer env c)
  | Ast.Sfor (init, cond, step, body) ->
    push_scope env;
    (match init with
    | Some (Ast.Fi_expr e) -> ignore (infer env e)
    | Some (Ast.Fi_decl d) ->
      Option.iter (fun e -> ignore (infer env e)) d.Ast.v_init;
      bind_local env d.Ast.v_name (resolve env d.Ast.v_type)
    | None -> ());
    Option.iter (fun e -> ignore (infer env e)) cond;
    Option.iter (fun e -> ignore (infer env e)) step;
    check_stmt env body;
    pop_scope env
  | Ast.Sswitch (e, body) ->
    ignore (infer env e);
    check_stmt env body
  | Ast.Scase e -> ignore (infer env e)
  | Ast.Sreturn e -> Option.iter (fun e -> ignore (infer env e)) e
  | Ast.Sdefault | Ast.Sbreak | Ast.Scontinue | Ast.Sgoto _ | Ast.Slabel _
  | Ast.Snull ->
    ()

let load_globals env (tu : Ast.tunit) =
  List.iter
    (fun g ->
      match g with
      | Ast.Gtypedef (name, ty, _) -> Hashtbl.replace env.typedefs name ty
      | Ast.Gstruct (tag, fields, _) -> Hashtbl.replace env.structs tag fields
      | Ast.Gunion (tag, fields, _) -> Hashtbl.replace env.unions tag fields
      | Ast.Genum (_, items, _) ->
        List.iter
          (fun (name, _) ->
            Hashtbl.replace env.enum_consts name ();
            Hashtbl.replace env.globals name Ctype.Int)
          items
      | Ast.Gvar d -> Hashtbl.replace env.globals d.Ast.v_name d.Ast.v_type
      | Ast.Gfunc f -> Hashtbl.replace env.funcs f.Ast.f_name f.Ast.f_ret
      | Ast.Gfunc_decl (name, ret, _, _) ->
        Hashtbl.replace env.funcs name ret)
    tu.Ast.tu_globals

let check_func env (f : Ast.func) =
  push_scope env;
  List.iter
    (fun (name, ty) -> if name <> "" then bind_local env name (resolve env ty))
    f.Ast.f_params;
  List.iter (check_stmt env) f.Ast.f_body;
  pop_scope env

(** Annotate a whole translation unit in place, returning the environment
    (useful to typecheck several units sharing headers: thread the same env
    through [load_globals] first for every unit, then [annotate_unit]). *)
let annotate ?(env = create_env ()) (tu : Ast.tunit) : env =
  Mcobs.with_span "cfront.typecheck"
    ~args:[ ("file", tu.Ast.tu_file) ]
    (fun () ->
      load_globals env tu;
      List.iter
        (function Ast.Gfunc f -> check_func env f | _ -> ())
        tu.Ast.tu_globals;
      env)

(** Annotate several translation units as one program: all globals are
    loaded first so cross-unit references resolve. *)
let annotate_program (tus : Ast.tunit list) : env =
  Mcobs.with_span "cfront.typecheck"
    ~args:[ ("units", string_of_int (List.length tus)) ]
    (fun () ->
      let env = create_env () in
      List.iter (load_globals env) tus;
      List.iter
        (fun tu ->
          List.iter
            (function Ast.Gfunc f -> check_func env f | _ -> ())
            tu.Ast.tu_globals)
        tus;
      env)

(** The inferred type of an annotated expression; [Int] if the expression
    was never annotated. *)
let type_of (e : Ast.expr) : Ctype.t =
  match e.Ast.ety with Some t -> t | None -> Ctype.Int
