(** Lightweight type annotation for Clite.

    Resolves typedefs, records struct/union layouts and enum constants,
    and fills the [ety] field of every expression in place.  Not a
    conformance checker: unknown identifiers default to [Int] (protocol
    code is full of macro-constants declared elsewhere).  What the
    checkers rely on is that float-typed expressions and unsigned/scalar
    classifications are computed reliably. *)

type env

val create_env : unit -> env

val resolve : env -> Ctype.t -> Ctype.t
(** resolve typedef names; unknown names default to [Int] *)

val load_globals : env -> Ast.tunit -> unit
(** register a unit's typedefs, struct layouts, enum constants, globals
    and function signatures *)

val annotate : ?env:env -> Ast.tunit -> env
(** annotate a whole translation unit in place *)

val annotate_program : Ast.tunit list -> env
(** annotate several units as one program: all globals are loaded first so
    cross-unit references resolve *)

val type_of : Ast.expr -> Ctype.t
(** the inferred type of an annotated expression; [Int] if never
    annotated *)
