(** Convenience drivers: parse and type-annotate Clite programs. *)

val of_string : ?file:string -> string -> Ast.tunit
(** parse and annotate one source string
    @raise Parser.Error / Lexer.Error on malformed input *)

val of_file : string -> Ast.tunit

val of_strings : (string * string) list -> Ast.tunit list
(** parse several (file name, source) pairs as one program: typedefs from
    earlier units are visible in later ones, and type annotation sees all
    globals *)

val parse : ?file:string -> string -> Ast.tunit * Diag.t list
(** total variant of {!of_string}: lexical and syntax errors are
    recovered from (panic-mode resynchronisation at [;] / [}] /
    top-level declaration boundaries) and returned as [lex]/[parse]
    diagnostics; every syntactically-intact function is kept.  Never
    raises. *)

val parse_strings : (string * string) list -> Ast.tunit list * Diag.t list
(** total variant of {!of_strings}; diagnostics are returned in file
    order *)

val loc_count : string -> int
(** non-blank source lines — the paper's LOC metric *)
