(** Hand-written lexer for Clite.

    Both comment styles, character/string escapes, decimal/octal/hex
    integer literals with [u]/[l] suffixes, floating literals.
    Preprocessor lines are skipped wholesale: the corpus is generated
    post-expansion, with macros as ordinary calls, mirroring what xg++
    saw after cpp. *)

exception Error of string * Loc.t

type t

val create : ?file:string -> string -> t

val next : t -> Token.t * Loc.t
(** the next token with the location of its first character;
    @raise Error on malformed input *)

val tokens : ?file:string -> string -> (Token.t * Loc.t) list
(** the whole input, ending with [EOF] *)

val tokens_recovering :
  ?file:string -> string -> (Token.t * Loc.t) list * Diag.t list
(** total variant: a malformed character or truncated literal is skipped
    and recorded as a [lex] diagnostic (capped at 100 per input) instead
    of raising; the stream always ends with [EOF] *)
