(** Global symbol interner.

    Every identifier the lexer produces is interned here, so one
    spelling maps to one id and — just as important for the hot paths —
    one physical [string].  Downstream comparisons ([Pattern.match_e],
    root dispatch, event-class screening) then start with a pointer
    equality that almost always decides, and the structure-of-arrays
    event buffers in [Prep] carry the dense ids directly.

    The table is process-global and append-only.  Interning takes a
    mutex, but each domain keeps a private cache of strings it has
    already resolved, so the steady-state cost of [intern]/[canon] on a
    repeated identifier is one local hashtable probe and no lock.
    [name] is lock-free: ids are published by writing the slot first
    and only then bumping the atomic count, so any id a reader can
    legally hold already has its slot filled. *)

let mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 1024

(* snapshot array: grows geometrically; [count] is the publication
   barrier — slot [i] is written before [count] moves past [i] *)
let names : string array Atomic.t = Atomic.make (Array.make 64 "")
let count = Atomic.make 0

(* per-domain read-through cache: string -> id.  Lexers in separate Mcd
   domains intern the same handful of identifiers over and over; the
   cache keeps them off the global mutex. *)
let local_key : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern_slow (s : string) : int =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt ids s with
      | Some id -> id
      | None ->
        let id = Atomic.get count in
        let arr = Atomic.get names in
        let arr =
          if id < Array.length arr then arr
          else begin
            let bigger = Array.make (2 * Array.length arr) "" in
            Array.blit arr 0 bigger 0 (Array.length arr);
            Atomic.set names bigger;
            bigger
          end
        in
        arr.(id) <- s;
        Hashtbl.add ids s id;
        (* publish: the slot write above must be visible before the
           count moves — sequential consistency of [Atomic.set] gives
           readers the happens-before edge *)
        Atomic.set count (id + 1);
        id)

let intern (s : string) : int =
  let local = Domain.DLS.get local_key in
  match Hashtbl.find_opt local s with
  | Some id -> id
  | None ->
    let id = intern_slow s in
    Hashtbl.add local s id;
    id

let name (id : int) : string =
  if id < 0 || id >= Atomic.get count then
    invalid_arg (Printf.sprintf "Symtab.name: unknown id %d" id)
  else (Atomic.get names).(id)

(* the canonical spelling is the string stored at intern time: every
   [canon] of an equal string returns that same physical string *)
let canon (s : string) : string = name (intern s)

let find (s : string) : int option =
  let local = Domain.DLS.get local_key in
  match Hashtbl.find_opt local s with
  | Some id -> Some id
  | None ->
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        match Hashtbl.find_opt ids s with
        | Some id ->
          Hashtbl.add local s id;
          Some id
        | None -> None)

let size () : int = Atomic.get count
