(** Abstract syntax for Clite, the C subset FLASH-style protocol code is
    written in.

    The representation stays close to the source: FLASH "macros" such as
    [WAIT_FOR_DB_FULL(addr)] appear as ordinary calls, and assignments keep
    their left-hand side as a full expression so that patterns like
    [HANDLER_GLOBALS(header.nh.len) = LEN_NODATA] are directly matchable. *)

type unop =
  | Neg
  | Not
  | Bnot
  | Preinc
  | Predec
  | Postinc
  | Postdec
  | Deref
  | Addrof

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Band
  | Bxor
  | Bor
  | Land
  | Lor

type expr = {
  edesc : edesc;
  eloc : Loc.t;
  mutable ety : Ctype.t option;  (** filled in by {!Typecheck} *)
}

and edesc =
  | Int_lit of int64 * string  (** value and original spelling *)
  | Float_lit of float * string
  | Str_lit of string
  | Char_lit of char
  | Ident of string
  | Call of expr * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr
  | Op_assign of binop * expr * expr  (** [+=], [-=], ... *)
  | Cond of expr * expr * expr
  | Cast of Ctype.t * expr
  | Field of expr * string  (** [e.f] *)
  | Arrow of expr * string  (** [e->f] *)
  | Index of expr * expr
  | Comma of expr * expr
  | Sizeof_expr of expr
  | Sizeof_type of Ctype.t

type var_decl = {
  v_name : string;
  v_type : Ctype.t;
  v_init : expr option;
  v_loc : Loc.t;
  v_static : bool;
}

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Sexpr of expr
  | Sdecl of var_decl
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of forinit option * expr option * expr option * stmt
  | Sswitch of expr * stmt
  | Scase of expr
  | Sdefault
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string
  | Snull

and forinit = Fi_expr of expr | Fi_decl of var_decl

type func = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_body : stmt list;
  f_loc : Loc.t;
  f_static : bool;
  f_end_loc : Loc.t;  (** location of the closing brace; used for LOC *)
}

type global =
  | Gfunc of func
  | Gvar of var_decl
  | Gtypedef of string * Ctype.t * Loc.t
  | Gstruct of string * (string * Ctype.t) list * Loc.t
  | Gunion of string * (string * Ctype.t) list * Loc.t
  | Genum of string * (string * int option) list * Loc.t
  | Gfunc_decl of string * Ctype.t * Ctype.t list * Loc.t
      (** prototype: name, return type, parameter types *)

type tunit = { tu_file : string; tu_globals : global list }

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk_expr ?(loc = Loc.none) edesc = { edesc; eloc = loc; ety = None }
let mk_stmt ?(loc = Loc.none) sdesc = { sdesc; sloc = loc }

let int_lit ?loc n = mk_expr ?loc (Int_lit (Int64.of_int n, string_of_int n))
let ident ?loc name = mk_expr ?loc (Ident name)
let call ?loc name args = mk_expr ?loc (Call (ident ?loc name, args))

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** [iter_expr f e] applies [f] to [e] and every sub-expression of [e],
    outermost first. *)
let rec iter_expr f e =
  f e;
  match e.edesc with
  | Int_lit _ | Float_lit _ | Str_lit _ | Char_lit _ | Ident _
  | Sizeof_type _ ->
    ()
  | Call (callee, args) ->
    iter_expr f callee;
    List.iter (iter_expr f) args
  | Unop (_, a) | Cast (_, a) | Field (a, _) | Arrow (a, _) | Sizeof_expr a ->
    iter_expr f a
  | Binop (_, a, b)
  | Assign (a, b)
  | Op_assign (_, a, b)
  | Index (a, b)
  | Comma (a, b) ->
    iter_expr f a;
    iter_expr f b
  | Cond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c

(** [iter_stmt f s] applies [f] to [s] and every sub-statement, outermost
    first.  Expressions are not visited; use {!iter_stmt_exprs}. *)
let rec iter_stmt f s =
  f s;
  match s.sdesc with
  | Sexpr _ | Sdecl _ | Scase _ | Sdefault | Sreturn _ | Sbreak | Scontinue
  | Sgoto _ | Slabel _ | Snull ->
    ()
  | Sblock body -> List.iter (iter_stmt f) body
  | Sif (_, then_s, else_s) ->
    iter_stmt f then_s;
    Option.iter (iter_stmt f) else_s
  | Swhile (_, body) | Sdo (body, _) | Sfor (_, _, _, body) ->
    iter_stmt f body
  | Sswitch (_, body) -> iter_stmt f body

(** [iter_stmt_exprs f s] applies [f] to every top-level expression occurring
    in [s] or its sub-statements (conditions, initialisers, expression
    statements). *)
let iter_stmt_exprs f s =
  let on_stmt s =
    match s.sdesc with
    | Sexpr e | Scase e -> f e
    | Sdecl d -> Option.iter f d.v_init
    | Sif (c, _, _) | Swhile (c, _) | Sdo (_, c) | Sswitch (c, _) -> f c
    | Sfor (init, cond, step, _) ->
      (match init with
      | Some (Fi_expr e) -> f e
      | Some (Fi_decl d) -> Option.iter f d.v_init
      | None -> ());
      Option.iter f cond;
      Option.iter f step
    | Sreturn e -> Option.iter f e
    | Sblock _ | Sdefault | Sbreak | Scontinue | Sgoto _ | Slabel _ | Snull ->
      ()
  in
  iter_stmt on_stmt s

(** Structural equality on expressions, ignoring locations and inferred
    types.  Used by the pattern matcher for wildcard-consistency checks. *)
let rec equal_expr a b =
  match (a.edesc, b.edesc) with
  | Int_lit (x, _), Int_lit (y, _) -> Int64.equal x y
  | Float_lit (x, _), Float_lit (y, _) -> Float.equal x y
  | Str_lit x, Str_lit y -> String.equal x y
  | Char_lit x, Char_lit y -> Char.equal x y
  | Ident x, Ident y -> String.equal x y
  | Call (fa, aa), Call (fb, ab) ->
    equal_expr fa fb
    && List.length aa = List.length ab
    && List.for_all2 equal_expr aa ab
  | Unop (oa, a1), Unop (ob, b1) -> oa = ob && equal_expr a1 b1
  | Binop (oa, a1, a2), Binop (ob, b1, b2) ->
    oa = ob && equal_expr a1 b1 && equal_expr a2 b2
  | Assign (a1, a2), Assign (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Op_assign (oa, a1, a2), Op_assign (ob, b1, b2) ->
    oa = ob && equal_expr a1 b1 && equal_expr a2 b2
  | Cond (a1, a2, a3), Cond (b1, b2, b3) ->
    equal_expr a1 b1 && equal_expr a2 b2 && equal_expr a3 b3
  | Cast (ta, a1), Cast (tb, b1) -> Ctype.equal ta tb && equal_expr a1 b1
  | Field (a1, fa), Field (b1, fb) | Arrow (a1, fa), Arrow (b1, fb) ->
    String.equal fa fb && equal_expr a1 b1
  | Index (a1, a2), Index (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Comma (a1, a2), Comma (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Sizeof_expr a1, Sizeof_expr b1 -> equal_expr a1 b1
  | Sizeof_type ta, Sizeof_type tb -> Ctype.equal ta tb
  | _ -> false

let equal_var_decl a b =
  String.equal a.v_name b.v_name
  && Ctype.equal a.v_type b.v_type
  && Option.equal equal_expr a.v_init b.v_init
  && Bool.equal a.v_static b.v_static

(** Structural equality on statements, ignoring locations and inferred
    types — what a printer/parser round trip must preserve. *)
let rec equal_stmt a b =
  match (a.sdesc, b.sdesc) with
  | Sexpr x, Sexpr y | Scase x, Scase y -> equal_expr x y
  | Sdecl x, Sdecl y -> equal_var_decl x y
  | Sblock x, Sblock y ->
    List.length x = List.length y && List.for_all2 equal_stmt x y
  | Sif (ca, ta, ea), Sif (cb, tb, eb) ->
    equal_expr ca cb && equal_stmt ta tb && Option.equal equal_stmt ea eb
  | Swhile (ca, ba), Swhile (cb, bb) -> equal_expr ca cb && equal_stmt ba bb
  | Sdo (ba, ca), Sdo (bb, cb) -> equal_stmt ba bb && equal_expr ca cb
  | Sfor (ia, ca, sa, ba), Sfor (ib, cb, sb, bb) ->
    Option.equal equal_forinit ia ib
    && Option.equal equal_expr ca cb
    && Option.equal equal_expr sa sb
    && equal_stmt ba bb
  | Sswitch (ea, ba), Sswitch (eb, bb) -> equal_expr ea eb && equal_stmt ba bb
  | Sreturn ea, Sreturn eb -> Option.equal equal_expr ea eb
  | Sgoto x, Sgoto y | Slabel x, Slabel y -> String.equal x y
  | Sdefault, Sdefault | Sbreak, Sbreak | Scontinue, Scontinue | Snull, Snull
    ->
    true
  | _ -> false

and equal_forinit a b =
  match (a, b) with
  | Fi_expr x, Fi_expr y -> equal_expr x y
  | Fi_decl x, Fi_decl y -> equal_var_decl x y
  | _ -> false

let equal_func a b =
  String.equal a.f_name b.f_name
  && Ctype.equal a.f_ret b.f_ret
  && List.length a.f_params = List.length b.f_params
  && List.for_all2
       (fun (na, ta) (nb, tb) -> String.equal na nb && Ctype.equal ta tb)
       a.f_params b.f_params
  && Bool.equal a.f_static b.f_static
  && List.length a.f_body = List.length b.f_body
  && List.for_all2 equal_stmt a.f_body b.f_body

let equal_global a b =
  match (a, b) with
  | Gfunc x, Gfunc y -> equal_func x y
  | Gvar x, Gvar y -> equal_var_decl x y
  | Gtypedef (na, ta, _), Gtypedef (nb, tb, _) ->
    String.equal na nb && Ctype.equal ta tb
  | Gstruct (na, fa, _), Gstruct (nb, fb, _)
  | Gunion (na, fa, _), Gunion (nb, fb, _) ->
    String.equal na nb
    && List.length fa = List.length fb
    && List.for_all2
         (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && Ctype.equal t1 t2)
         fa fb
  | Genum (na, ca, _), Genum (nb, cb, _) ->
    String.equal na nb
    && List.length ca = List.length cb
    && List.for_all2
         (fun (n1, v1) (n2, v2) ->
           String.equal n1 n2 && Option.equal Int.equal v1 v2)
         ca cb
  | Gfunc_decl (na, ra, pa, _), Gfunc_decl (nb, rb, pb, _) ->
    String.equal na nb && Ctype.equal ra rb
    && List.length pa = List.length pb
    && List.for_all2 Ctype.equal pa pb
  | _ -> false

let equal_tunit a b =
  List.length a.tu_globals = List.length b.tu_globals
  && List.for_all2 equal_global a.tu_globals b.tu_globals

(** Name of the function being called, when the callee is a plain
    identifier.  FLASH macros always take this form. *)
let callee_name e =
  match e.edesc with
  | Call ({ edesc = Ident name; _ }, _) -> Some name
  | _ -> None

(* One dense tag per [edesc] constructor: the root-dispatch key shared
   by the pattern index ([Pattern.tag_of_expr]) and the
   structure-of-arrays event buffers ([Prep]). *)
let n_expr_tags = 18
let tag_call = 5

let expr_tag e =
  match e.edesc with
  | Int_lit _ -> 0
  | Float_lit _ -> 1
  | Str_lit _ -> 2
  | Char_lit _ -> 3
  | Ident _ -> 4
  | Call _ -> 5
  | Unop _ -> 6
  | Binop _ -> 7
  | Assign _ -> 8
  | Op_assign _ -> 9
  | Cond _ -> 10
  | Cast _ -> 11
  | Field _ -> 12
  | Arrow _ -> 13
  | Index _ -> 14
  | Comma _ -> 15
  | Sizeof_expr _ -> 16
  | Sizeof_type _ -> 17

let functions tu =
  List.filter_map (function Gfunc f -> Some f | _ -> None) tu.tu_globals

let find_function tu name =
  List.find_opt (fun f -> String.equal f.f_name name) (functions tu)
