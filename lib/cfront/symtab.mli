(** Global symbol interner: one spelling, one id, one physical string.

    Thread-safe: interning is serialized behind a mutex with a
    per-domain read-through cache; [name] and [canon] on already-known
    strings are lock-free. *)

val intern : string -> int
(** [intern s] returns the dense id for [s], allocating one the first
    time the spelling is seen.  Ids are stable for the process
    lifetime. *)

val name : int -> string
(** [name id] is the canonical spelling interned under [id].  Raises
    [Invalid_argument] on an id never returned by {!intern}. *)

val canon : string -> string
(** [canon s] is the canonical physical string equal to [s]: every call
    with an equal string returns the same pointer, so [==] decides
    equality between canonicalized strings. *)

val find : string -> int option
(** [find s] is [Some id] when [s] is already interned, without
    allocating an id for unseen spellings. *)

val size : unit -> int
(** Number of distinct symbols interned so far. *)
