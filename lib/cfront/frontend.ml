(** Convenience drivers: parse and annotate Clite programs. *)

(** Parse and type-annotate a single source string. *)
let of_string ?(file = "<string>") src : Ast.tunit =
  let tu = Parser.parse_string ~file src in
  ignore (Typecheck.annotate tu);
  tu

(** Parse and type-annotate a source file on disk. *)
let of_file path : Ast.tunit =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string ~file:path src

(** Parse several (file name, source) pairs as one program: typedefs from
    earlier units are visible in later ones (FLASH protocols share common
    headers), and type annotation sees all globals. *)
let of_strings (units : (string * string) list) : Ast.tunit list =
  let typedefs = ref [] in
  let tus =
    List.map
      (fun (file, src) ->
        let tu =
          Parser.parse_string_with_typedefs ~file ~typedefs:!typedefs src
        in
        List.iter
          (function
            | Ast.Gtypedef (name, _, _) -> typedefs := name :: !typedefs
            | _ -> ())
          tu.Ast.tu_globals;
        tu)
      units
  in
  ignore (Typecheck.annotate_program tus);
  tus

(* ------------------------------------------------------------------ *)
(* Recovering (total) entry points                                     *)
(* ------------------------------------------------------------------ *)

(** Parse and type-annotate one source string, recovering from lexical
    and syntax errors: malformed regions are skipped and reported as
    diagnostics, every intact function survives.  Never raises. *)
let parse ?(file = "<string>") src : Ast.tunit * Diag.t list =
  let tu, diags = Parser.parse_string_recovering ~file src in
  ignore (Typecheck.annotate tu);
  (tu, diags)

(** Recovering variant of {!of_strings}: each unit is parsed with
    panic-mode recovery (typedefs from earlier units stay visible), the
    surviving globals are annotated as one program, and every parse
    diagnostic is returned, in file order.  Never raises. *)
let parse_strings (units : (string * string) list) :
    Ast.tunit list * Diag.t list =
  let typedefs = ref [] in
  let all_diags = ref [] in
  let tus =
    List.map
      (fun (file, src) ->
        let tu, diags =
          Parser.parse_string_recovering ~file ~typedefs:!typedefs src
        in
        all_diags := List.rev_append diags !all_diags;
        List.iter
          (function
            | Ast.Gtypedef (name, _, _) -> typedefs := name :: !typedefs
            | _ -> ())
          tu.Ast.tu_globals;
        tu)
      units
  in
  ignore (Typecheck.annotate_program tus);
  (tus, List.rev !all_diags)

(** Count of non-blank source lines in [src] — the paper's LOC metric
    (all source lines excluding headers; we exclude blank lines). *)
let loc_count src =
  String.split_on_char '\n' src
  |> List.filter (fun line -> String.trim line <> "")
  |> List.length
