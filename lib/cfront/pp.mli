(** Pretty-printer for Clite.

    Emits compilable C text.  The corpus generator uses it to write the
    synthetic protocol sources, and the test suite uses it for
    parse/print round-trip properties: the printed form always re-parses
    to a structurally equal AST. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_var_decl : Format.formatter -> Ast.var_decl -> unit
val pp_stmt : ?indent:int -> Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_global : Format.formatter -> Ast.global -> unit
val pp_tunit : Format.formatter -> Ast.tunit -> unit

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val tunit_to_string : Ast.tunit -> string
