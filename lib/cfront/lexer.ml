(** Hand-written lexer for Clite.

    Supports both comment styles, character/string escapes, decimal, octal
    and hexadecimal integer literals (with [u]/[l] suffixes), and floating
    literals.  Preprocessor lines ([#include], [#define], ...) are skipped
    wholesale: the synthetic FLASH corpus is generated post-expansion, with
    macros represented as ordinary calls, mirroring what xg++ saw after
    cpp. *)

exception Error of string * Loc.t

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create ?(file = "<string>") src = { src; file; pos = 0; line = 1; bol = 0 }

let loc lx =
  Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let error lx msg = raise (Error (msg, loc lx))

let at_end lx = lx.pos >= String.length lx.src
let peek lx = if at_end lx then '\000' else lx.src.[lx.pos]

let peek2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  if not (at_end lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
    end;
    lx.pos <- lx.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia lx =
  match peek lx with
  | ' ' | '\t' | '\r' | '\n' ->
    advance lx;
    skip_trivia lx
  | '/' when peek2 lx = '/' ->
    while (not (at_end lx)) && peek lx <> '\n' do
      advance lx
    done;
    skip_trivia lx
  | '/' when peek2 lx = '*' ->
    advance lx;
    advance lx;
    let rec close () =
      if at_end lx then error lx "unterminated comment"
      else if peek lx = '*' && peek2 lx = '/' then begin
        advance lx;
        advance lx
      end
      else begin
        advance lx;
        close ()
      end
    in
    close ();
    skip_trivia lx
  | '#' when lx.pos = lx.bol || only_blank_before lx ->
    (* preprocessor line: skip to end of line, honouring continuations *)
    let rec to_eol () =
      if at_end lx then ()
      else if peek lx = '\\' && peek2 lx = '\n' then begin
        advance lx;
        advance lx;
        to_eol ()
      end
      else if peek lx = '\n' then advance lx
      else begin
        advance lx;
        to_eol ()
      end
    in
    to_eol ();
    skip_trivia lx

  | _ -> ()

and only_blank_before lx =
  let rec check i =
    if i >= lx.pos then true
    else
      match lx.src.[i] with ' ' | '\t' -> check (i + 1) | _ -> false
  in
  check lx.bol

let read_escape lx =
  advance lx;
  (* past backslash *)
  let c = peek lx in
  advance lx;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> c

let read_char lx =
  advance lx;
  (* past opening quote *)
  let c = if peek lx = '\\' then read_escape lx else (
    let c = peek lx in
    advance lx;
    c)
  in
  if peek lx <> '\'' then error lx "unterminated character literal";
  advance lx;
  Token.CHAR c

let read_string lx =
  advance lx;
  (* past opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end lx then error lx "unterminated string literal"
    else
      match peek lx with
      | '"' -> advance lx
      | '\\' -> (
        Buffer.add_char buf (read_escape lx);
        go ())
      | c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let read_number lx =
  let start = lx.pos in
  let hex = peek lx = '0' && (peek2 lx = 'x' || peek2 lx = 'X') in
  if hex then begin
    advance lx;
    advance lx;
    while is_hex (peek lx) do
      advance lx
    done
  end
  else begin
    while is_digit (peek lx) do
      advance lx
    done
  end;
  let is_float =
    (not hex) && (peek lx = '.' || peek lx = 'e' || peek lx = 'E')
  in
  if is_float then begin
    if peek lx = '.' then begin
      advance lx;
      while is_digit (peek lx) do
        advance lx
      done
    end;
    if peek lx = 'e' || peek lx = 'E' then begin
      advance lx;
      if peek lx = '+' || peek lx = '-' then advance lx;
      while is_digit (peek lx) do
        advance lx
      done
    end;
    if peek lx = 'f' || peek lx = 'F' then advance lx;
    let text = String.sub lx.src start (lx.pos - start) in
    let numeric =
      if String.length text > 0 && (text.[String.length text - 1] = 'f'
                                   || text.[String.length text - 1] = 'F')
      then String.sub text 0 (String.length text - 1)
      else text
    in
    let value =
      try float_of_string numeric
      with _ -> error lx (Printf.sprintf "bad float literal %S" text)
    in
    Token.FLOAT (value, text)
  end
  else begin
    (* integer suffixes *)
    while
      match peek lx with 'u' | 'U' | 'l' | 'L' -> true | _ -> false
    do
      advance lx
    done;
    let text = String.sub lx.src start (lx.pos - start) in
    let digits =
      let n = ref (String.length text) in
      while
        !n > 0
        && match text.[!n - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false
      do
        decr n
      done;
      String.sub text 0 !n
    in
    let value =
      try Int64.of_string digits
      with _ -> error lx (Printf.sprintf "bad integer literal %S" text)
    in
    Token.INT (value, text)
  end

let read_ident lx =
  let start = lx.pos in
  while is_ident_char (peek lx) do
    advance lx
  done;
  Token.of_ident (String.sub lx.src start (lx.pos - start))

(** Read the next token, returning it with the location of its first
    character. *)
let next lx : Token.t * Loc.t =
  skip_trivia lx;
  let l = loc lx in
  if at_end lx then (Token.EOF, l)
  else
    let tok =
      match peek lx with
      | c when is_ident_start c -> read_ident lx
      | c when is_digit c -> read_number lx
      | '\'' -> read_char lx
      | '"' -> read_string lx
      | c -> (
        let op2 tok =
          advance lx;
          advance lx;
          tok
        in
        let op1 tok =
          advance lx;
          tok
        in
        match (c, peek2 lx) with
        | '-', '>' -> op2 Token.ARROW
        | '+', '+' -> op2 Token.PLUSPLUS
        | '-', '-' -> op2 Token.MINUSMINUS
        | '+', '=' -> op2 Token.PLUSEQ
        | '-', '=' -> op2 Token.MINUSEQ
        | '*', '=' -> op2 Token.STAREQ
        | '/', '=' -> op2 Token.SLASHEQ
        | '%', '=' -> op2 Token.PERCENTEQ
        | '&', '=' -> op2 Token.AMPEQ
        | '|', '=' -> op2 Token.PIPEEQ
        | '^', '=' -> op2 Token.CARETEQ
        | '&', '&' -> op2 Token.AMPAMP
        | '|', '|' -> op2 Token.PIPEPIPE
        | '=', '=' -> op2 Token.EQEQ
        | '!', '=' -> op2 Token.BANGEQ
        | '<', '=' -> op2 Token.LE
        | '>', '=' -> op2 Token.GE
        | '<', '<' ->
          advance lx;
          advance lx;
          if peek lx = '=' then op1 Token.LSHIFTEQ else Token.LSHIFT
        | '>', '>' ->
          advance lx;
          advance lx;
          if peek lx = '=' then op1 Token.RSHIFTEQ else Token.RSHIFT
        | '.', '.' when lx.pos + 2 < String.length lx.src
                        && lx.src.[lx.pos + 2] = '.' ->
          advance lx;
          advance lx;
          op1 Token.ELLIPSIS
        | '(', _ -> op1 Token.LPAREN
        | ')', _ -> op1 Token.RPAREN
        | '{', _ -> op1 Token.LBRACE
        | '}', _ -> op1 Token.RBRACE
        | '[', _ -> op1 Token.LBRACKET
        | ']', _ -> op1 Token.RBRACKET
        | ';', _ -> op1 Token.SEMI
        | ',', _ -> op1 Token.COMMA
        | '.', _ -> op1 Token.DOT
        | '?', _ -> op1 Token.QUESTION
        | ':', _ -> op1 Token.COLON
        | '+', _ -> op1 Token.PLUS
        | '-', _ -> op1 Token.MINUS
        | '*', _ -> op1 Token.STAR
        | '/', _ -> op1 Token.SLASH
        | '%', _ -> op1 Token.PERCENT
        | '&', _ -> op1 Token.AMP
        | '|', _ -> op1 Token.PIPE
        | '^', _ -> op1 Token.CARET
        | '~', _ -> op1 Token.TILDE
        | '!', _ -> op1 Token.BANG
        | '<', _ -> op1 Token.LT
        | '>', _ -> op1 Token.GT
        | '=', _ -> op1 Token.ASSIGN
        | _ -> error lx (Printf.sprintf "unexpected character %C" c))
    in
    (tok, l)

(** Tokenise a whole string. *)
let tokens ?file src =
  let lx = create ?file src in
  let rec go acc =
    let tok, l = next lx in
    if tok = Token.EOF then List.rev ((tok, l) :: acc)
    else go ((tok, l) :: acc)
  in
  go []

(* More than this many lexical diagnostics means the input is not C at
   all (a binary splice, say); keep consuming so the token stream still
   ends in EOF, but stop recording. *)
let max_lex_diags = 100

(** Tokenise a whole string, recovering from lexical errors: the
    offending character (or truncated literal) is skipped, a [Diag.t] is
    recorded, and lexing continues.  Always returns an EOF-terminated
    stream; never raises. *)
let tokens_recovering ?(file = "<string>") src :
    (Token.t * Loc.t) list * Diag.t list =
  let lx = create ~file src in
  let diags = ref [] in
  let n_diags = ref 0 in
  let rec go acc =
    match next lx with
    | Token.EOF, l -> (List.rev ((Token.EOF, l) :: acc), List.rev !diags)
    | tok, l -> go ((tok, l) :: acc)
    | exception Error (msg, l) ->
      incr n_diags;
      if !n_diags <= max_lex_diags then
        diags :=
          Diag.make ~checker:"lex" ~loc:l ~func:"<toplevel>" msg :: !diags;
      (* guaranteed progress: [next] raises either at the bad character
         (skip it) or at end of input (the next [next] returns EOF) *)
      advance lx;
      go acc
  in
  go []
