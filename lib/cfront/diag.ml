(** Diagnostics emitted by checkers. *)

type severity = Error | Warning | Note

type step = {
  w_loc : Loc.t;  (** where the transition fired *)
  w_event : string;  (** the matched event (source expression, compact) *)
  w_from : string;  (** checker state before the event *)
  w_to : string;  (** checker state after ([stop] for abandoned paths) *)
}

type t = {
  checker : string;  (** checker name, e.g. ["wait_for_db"] *)
  severity : severity;
  loc : Loc.t;  (** primary source location *)
  message : string;
  func : string;  (** enclosing function *)
  trace : Loc.t list;
      (** the execution path that reached the error, entry first — the
          paper's "back trace" *)
  witness : step list;
      (** the diagnostic explanation: the sequence of
          (location, matched pattern, state transition) steps that drove
          the checker's state machine to the report, in firing order.
          The engine attaches the real sequence; a diagnostic built
          outside the engine gets a one-step synthetic witness at its
          report site, so the list is never empty. *)
}

let step ~loc ~event ~from_state ~to_state =
  { w_loc = loc; w_event = event; w_from = from_state; w_to = to_state }

let make ?(severity = Error) ?(trace = []) ?(witness = []) ~checker ~loc
    ~func message =
  let witness =
    match witness with
    | [] ->
      [ step ~loc ~event:"report" ~from_state:"-" ~to_state:"error" ]
    | w -> w
  in
  { checker; severity; loc; message; func; trace; witness }

let with_witness witness t =
  match witness with [] -> t | w -> { t with witness = w }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf t =
  Format.fprintf ppf "%a: %s: [%s] %s (in %s)" Loc.pp t.loc
    (severity_string t.severity)
    t.checker t.message t.func

let pp_with_trace ppf t =
  pp ppf t;
  match t.trace with
  | [] -> ()
  | trace ->
    Format.fprintf ppf "@\n  path:";
    List.iter (fun loc -> Format.fprintf ppf "@\n    %a" Loc.pp loc) trace

(* The --explain rendering: the witness path, one transition per line,
   in firing order. *)
let pp_explain ppf t =
  pp ppf t;
  Format.fprintf ppf "@\n  witness:";
  List.iter
    (fun s ->
      Format.fprintf ppf "@\n    %a: %s  [%s -> %s]" Loc.pp s.w_loc
        s.w_event s.w_from s.w_to)
    t.witness

let to_string t = Format.asprintf "%a" pp t

(* Location-free identity.  Differential oracles compare diagnostics
   across pipelines whose inputs are textually different renderings of
   the same program (e.g. before and after a printer round trip), where
   every location shifts but nothing else may. *)
let key t =
  Printf.sprintf "%s|%s|%s|%s" t.checker
    (severity_string t.severity)
    t.func t.message

(* Presentation order: source order, then severity, then message, so runs
   are reproducible. *)
let compare a b =
  let c = Loc.compare a.loc b.loc in
  if c <> 0 then c
  else
    let c = compare a.severity b.severity in
    if c <> 0 then c else String.compare a.message b.message

(** Sort and drop exact duplicates (the same invariant violation is often
    reachable along many paths; the paper reports each site once). *)
let normalize (ds : t list) : t list =
  let sorted = List.sort compare ds in
  let rec dedup = function
    | a :: b :: rest ->
      if Loc.equal a.loc b.loc && String.equal a.message b.message
         && String.equal a.checker b.checker
      then dedup (a :: rest)
      else a :: dedup (b :: rest)
    | short -> short
  in
  dedup sorted

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
