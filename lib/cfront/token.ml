(** Tokens produced by the Clite lexer. *)

type t =
  (* literals and names *)
  | INT of int64 * string
  | FLOAT of float * string
  | STRING of string
  | CHAR of char
  | IDENT of string
  (* keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_UNSIGNED
  | KW_SIGNED
  | KW_FLOAT
  | KW_DOUBLE
  | KW_STRUCT
  | KW_UNION
  | KW_ENUM
  | KW_TYPEDEF
  | KW_STATIC
  | KW_EXTERN
  | KW_CONST
  | KW_VOLATILE
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_GOTO
  | KW_SIZEOF
  | KW_INLINE
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ARROW
  | QUESTION
  | COLON
  | ELLIPSIS
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSPLUS
  | MINUSMINUS
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LSHIFT
  | RSHIFT
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | BANGEQ
  | AMPAMP
  | PIPEPIPE
  | ASSIGN
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | AMPEQ
  | PIPEEQ
  | CARETEQ
  | LSHIFTEQ
  | RSHIFTEQ
  | EOF

let keyword_table : (string * t) list =
  [
    ("void", KW_VOID);
    ("char", KW_CHAR);
    ("short", KW_SHORT);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("unsigned", KW_UNSIGNED);
    ("signed", KW_SIGNED);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("struct", KW_STRUCT);
    ("union", KW_UNION);
    ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF);
    ("static", KW_STATIC);
    ("extern", KW_EXTERN);
    ("const", KW_CONST);
    ("volatile", KW_VOLATILE);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("switch", KW_SWITCH);
    ("case", KW_CASE);
    ("default", KW_DEFAULT);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("goto", KW_GOTO);
    ("sizeof", KW_SIZEOF);
    ("inline", KW_INLINE);
  ]

let of_ident s =
  match List.assoc_opt s keyword_table with
  | Some kw -> kw
  | None -> IDENT (Symtab.canon s)

let to_string = function
  | INT (_, s) -> s
  | FLOAT (_, s) -> s
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "'%c'" c
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_UNSIGNED -> "unsigned"
  | KW_SIGNED -> "signed"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | KW_STATIC -> "static"
  | KW_EXTERN -> "extern"
  | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_GOTO -> "goto"
  | KW_SIZEOF -> "sizeof"
  | KW_INLINE -> "inline"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> "->"
  | QUESTION -> "?"
  | COLON -> ":"
  | ELLIPSIS -> "..."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LSHIFT -> "<<"
  | RSHIFT -> ">>"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | BANGEQ -> "!="
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | ASSIGN -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PERCENTEQ -> "%="
  | AMPEQ -> "&="
  | PIPEEQ -> "|="
  | CARETEQ -> "^="
  | LSHIFTEQ -> "<<="
  | RSHIFTEQ -> ">>="
  | EOF -> "<eof>"
