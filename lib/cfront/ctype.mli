(** C types for the Clite subset.

    Covers what FLASH-style protocol code needs: the integer and floating
    families, pointers, fixed-size arrays, named struct/union/enum types,
    and function types.  Typedef names stay [Named] until {!Typecheck}
    resolves them. *)

type t =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Uchar
  | Ushort
  | Uint
  | Ulong
  | Float
  | Double
  | Ptr of t
  | Array of t * int option  (** element type, optional static length *)
  | Struct of string
  | Union of string
  | Enum of string
  | Func of t * t list  (** return type, parameter types *)
  | Named of string  (** unresolved typedef reference *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val is_floating : t -> bool
val is_integer : t -> bool
val is_unsigned : t -> bool
val is_pointer : t -> bool
val is_scalar : t -> bool

val sizeof : t -> int
(** conventional ILP32 widths (the MIPS target FLASH used) *)

val join : t -> t -> t
(** the usual arithmetic conversions, simplified *)
